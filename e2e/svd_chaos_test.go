package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
)

// The chaos walk: a fleet of journaled svd backends behind the router, a
// SIGKILL mid-run-batch, and the two recovery mechanisms under test — run
// failover (the batch must still answer, via re-deploy on the survivor) and
// journal replay (the restarted victim must come back with its full
// deployment table and zero compilations). SPLITVM_FAULTS latency injection
// at the backends' run endpoint holds the batch open long enough for the
// kill to land mid-flight deterministically.

// startSVDAt launches the svd binary on a fixed address with extra
// environment, returning the process (for SIGKILL) and its exit channel.
func startSVDAt(t *testing.T, bin, addr string, env []string, extraArgs ...string) (*exec.Cmd, chan error) {
	t.Helper()
	args := append([]string{"-addr", addr}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), env...)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting svd: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		<-exited
	})
	waitHealthy(t, "http://"+addr, exited)
	return cmd, exited
}

// sigkill hard-kills a backend and waits for the process to be gone.
func sigkill(t *testing.T, cmd *exec.Cmd, exited chan error) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	select {
	case err := <-exited:
		exited <- err
	case <-time.After(10 * time.Second):
		t.Fatal("svd survived SIGKILL for 10s")
	}
}

func getStatsRaw(t *testing.T, base string, out any) {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("GET %s/v1/stats: %v", base, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
}

// TestSVDChaosFailoverAndReplay is the fault-tolerance acceptance walk:
//
//  1. Two journaled backends over one shared cache volume, router in front.
//  2. Deploy two replicas (both land on the module's ring owner).
//  3. Fire a run-batch and SIGKILL the owner while the batch is in flight
//     (fault-injected run latency keeps it there). Every batch item must
//     still succeed — the router re-deploys on the survivor and retries.
//  4. Restart the victim over its journal + cache: the deployment table
//     must be back, identical ids, zero compilations.
func TestSVDChaosFailoverAndReplay(t *testing.T) {
	if os.Getenv("SVD_CHAOS") == "" {
		t.Skip("set SVD_CHAOS=1 to run the svd chaos test")
	}
	bin := buildSVD(t)
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "shared-cache")
	journals := []string{filepath.Join(dir, "b0.journal"), filepath.Join(dir, "b1.journal")}

	// Backends answer runs ~300ms late so the SIGKILL lands mid-batch.
	backendEnv := []string{"SPLITVM_FAULTS=server.run:latency:300ms"}
	addrs := []string{freeAddr(t), freeAddr(t)}
	cmds := make([]*exec.Cmd, 2)
	exits := make([]chan error, 2)
	for i := range addrs {
		cmds[i], exits[i] = startSVDAt(t, bin, addrs[i], backendEnv,
			"-cache-dir", cacheDir, "-journal", journals[i])
	}
	routerAddr := freeAddr(t)
	startSVDAt(t, bin, routerAddr, nil,
		"-router", "-backends", "http://"+addrs[0]+",http://"+addrs[1],
		"-health-interval", "200ms", "-breaker-failures", "2", "-breaker-cooldown", "500ms")
	frontBase := "http://" + routerAddr

	stream, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID string `json:"id"`
	}
	postJSON(t, frontBase+"/v1/modules", stream, http.StatusCreated, &up)

	deployBody, _ := json.Marshal(map[string]any{
		"module": up.ID, "targets": []string{"x86-sse"}, "replicas": 2,
	})
	var dr struct {
		Deployments []struct {
			ID string `json:"id"`
		} `json:"deployments"`
	}
	postJSON(t, frontBase+"/v1/deploy", deployBody, http.StatusCreated, &dr)
	if len(dr.Deployments) != 2 {
		t.Fatalf("deployed %d replicas, want 2", len(dr.Deployments))
	}
	victim := 0
	if strings.HasPrefix(dr.Deployments[0].ID, "b1.") {
		victim = 1
	}

	// Fire the batch, then kill the owner while its runs sit in the
	// injected latency window.
	batchBody, _ := json.Marshal(map[string]any{
		"deployments": []string{dr.Deployments[0].ID, dr.Deployments[1].ID},
		"entry":       corpus.SyntheticEntryPoint,
		"args":        []string{"12"},
	})
	type batchOut struct {
		Results []struct {
			Deployment string `json:"deployment"`
			Value      int64  `json:"value"`
			Error      string `json:"error"`
			ErrorClass string `json:"error_class"`
		} `json:"results"`
	}
	batchDone := make(chan batchOut, 1)
	go func() {
		var out batchOut
		resp, err := http.Post(frontBase+"/v1/run-batch", "application/json", strings.NewReader(string(batchBody)))
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				_ = json.NewDecoder(resp.Body).Decode(&out)
			}
		}
		batchDone <- out
	}()
	time.Sleep(100 * time.Millisecond)
	sigkill(t, cmds[victim], exits[victim])

	var out batchOut
	select {
	case out = <-batchDone:
	case <-time.After(60 * time.Second):
		t.Fatal("run-batch did not return within 60s of the SIGKILL")
	}
	if len(out.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2 (batch must survive the kill)", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Value != 506 {
			t.Errorf("batch item %d after SIGKILL = %+v, want value 506 via failover", i, r)
		}
	}
	var rst struct {
		Router struct {
			Failovers int64 `json:"failovers"`
		} `json:"router"`
	}
	getStatsRaw(t, frontBase, &rst)
	if rst.Router.Failovers == 0 {
		t.Error("router counted no failovers after the SIGKILL")
	}

	// Restart the victim over the same journal + cache volume: the full
	// deployment table must come back without a single recompilation.
	startSVDAt(t, bin, addrs[victim], backendEnv,
		"-cache-dir", cacheDir, "-journal", journals[victim])
	var bst struct {
		Deployments int `json:"deployments"`
		Journal     *struct {
			ReplayedDeployments int `json:"replayed_deployments"`
			ReplayFailed        int `json:"replay_failed"`
		} `json:"journal"`
		Compile struct {
			Compilations int64 `json:"compilations"`
		} `json:"compile"`
	}
	getStatsRaw(t, "http://"+addrs[victim], &bst)
	if bst.Deployments != 2 {
		t.Fatalf("restarted victim has %d deployments, want 2 (journal replay lost deployments)", bst.Deployments)
	}
	if bst.Journal == nil || bst.Journal.ReplayedDeployments != 2 || bst.Journal.ReplayFailed != 0 {
		t.Fatalf("journal stats after replay = %+v", bst.Journal)
	}
	if bst.Compile.Compilations != 0 {
		t.Fatalf("replay recompiled %d images, want 0 (shared disk cache)", bst.Compile.Compilations)
	}

	// And the restored machines answer, by their original backend-local ids.
	runBody, _ := json.Marshal(map[string]any{
		"entry": corpus.SyntheticEntryPoint,
		"args":  []string{"12"},
	})
	local := strings.TrimPrefix(dr.Deployments[0].ID, fmt.Sprintf("b%d.", victim))
	var run struct {
		Value int64 `json:"value"`
	}
	postJSON(t, fmt.Sprintf("http://%s/v1/deployments/%s/run", addrs[victim], local), runBody, http.StatusOK, &run)
	if run.Value != 506 {
		t.Errorf("replayed deployment computed %d, want 506", run.Value)
	}
}

// TestSVDChaosCorruptCacheDegrades pins the cross-fault interaction: a
// journaled restart over a corrupted disk cache must still restore every
// deployment — it degrades to recompiling, never to losing machines.
func TestSVDChaosCorruptCacheDegrades(t *testing.T) {
	if os.Getenv("SVD_CHAOS") == "" {
		t.Skip("set SVD_CHAOS=1 to run the svd chaos test")
	}
	bin := buildSVD(t)
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	journal := filepath.Join(dir, "svd.journal")
	addr := freeAddr(t)

	cmd, exited := startSVDAt(t, bin, addr, nil, "-cache-dir", cacheDir, "-journal", journal)
	base := "http://" + addr

	stream, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/modules", stream, http.StatusCreated, &up)
	deployBody, _ := json.Marshal(map[string]any{"module": up.ID, "targets": []string{"x86-sse", "mcu"}})
	postJSON(t, base+"/v1/deploy", deployBody, http.StatusCreated, nil)
	sigkill(t, cmd, exited)

	// Restart with every disk-cache read corrupted: replay must fall back
	// to recompiling both images and still restore both deployments.
	startSVDAt(t, bin, addr, []string{"SPLITVM_FAULTS=diskcache.get:corrupt"},
		"-cache-dir", cacheDir, "-journal", journal)
	var st struct {
		Deployments int `json:"deployments"`
		Compile     struct {
			Compilations int64 `json:"compilations"`
		} `json:"compile"`
	}
	getStatsRaw(t, base, &st)
	if st.Deployments != 2 {
		t.Fatalf("restart over corrupted cache restored %d deployments, want 2", st.Deployments)
	}
	if st.Compile.Compilations != 2 {
		t.Errorf("restart over corrupted cache compiled %d times, want 2 (degrade to recompile)", st.Compile.Compilations)
	}
}

// TestSVDChaosSIGKILLDuringLazyFirstCall kills a backend while a lazy
// deployment's first call sits inside its method compilation (held open by
// fault-injected latency at the JIT's lazy-compile site). The contract: the
// interrupted compilation must be invisible after restart — journal replay
// restores the deployment as a lazy stub table (zero compilations, nothing
// half-patched), and the retried call compiles and answers correctly.
func TestSVDChaosSIGKILLDuringLazyFirstCall(t *testing.T) {
	if os.Getenv("SVD_CHAOS") == "" {
		t.Skip("set SVD_CHAOS=1 to run the svd chaos test")
	}
	bin := buildSVD(t)
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	journal := filepath.Join(dir, "svd.journal")
	addr := freeAddr(t)

	// First-call compilations hang in the fault's latency window so the
	// SIGKILL deterministically lands mid-compilation.
	slowEnv := []string{"SPLITVM_FAULTS=core.lazy_compile:latency:2s"}
	cmd, exited := startSVDAt(t, bin, addr, slowEnv, "-cache-dir", cacheDir, "-journal", journal)
	base := "http://" + addr

	stream, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/modules", stream, http.StatusCreated, &up)

	deployBody, _ := json.Marshal(map[string]any{
		"module": up.ID, "targets": []string{"x86-sse"}, "lazy": true,
	})
	var dr struct {
		Deployments []struct {
			ID              string `json:"id"`
			Lazy            bool   `json:"lazy"`
			MethodsCompiled int    `json:"methods_compiled"`
			MethodsTotal    int    `json:"methods_total"`
		} `json:"deployments"`
	}
	postJSON(t, base+"/v1/deploy", deployBody, http.StatusCreated, &dr)
	if len(dr.Deployments) != 1 {
		t.Fatalf("deployed %d machines, want 1", len(dr.Deployments))
	}
	dep := dr.Deployments[0]
	if !dep.Lazy || dep.MethodsCompiled != 0 || dep.MethodsTotal == 0 {
		t.Fatalf("lazy deploy info = %+v, want lazy with 0/%d methods compiled", dep, dep.MethodsTotal)
	}

	// Fire the first call; it blocks inside the injected compile latency.
	runBody, _ := json.Marshal(map[string]any{
		"entry": corpus.SyntheticEntryPoint,
		"args":  []string{"12"},
	})
	go func() {
		resp, err := http.Post(base+"/v1/deployments/"+dep.ID+"/run", "application/json", strings.NewReader(string(runBody)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(300 * time.Millisecond)
	sigkill(t, cmd, exited)

	// Restart without the fault, over the same journal + cache. The lazy
	// deployment must be back as a clean stub table: zero compilations at
	// replay, nothing left over from the interrupted first call.
	startSVDAt(t, bin, addr, nil, "-cache-dir", cacheDir, "-journal", journal)
	var st struct {
		Deployments int `json:"deployments"`
		Journal     *struct {
			ReplayedDeployments int `json:"replayed_deployments"`
			ReplayFailed        int `json:"replay_failed"`
		} `json:"journal"`
		Compile struct {
			Compilations int64 `json:"compilations"`
			LazyCompiles int64 `json:"lazy_compiles"`
		} `json:"compile"`
	}
	getStatsRaw(t, base, &st)
	if st.Deployments != 1 || st.Journal == nil || st.Journal.ReplayedDeployments != 1 || st.Journal.ReplayFailed != 0 {
		t.Fatalf("replay after mid-compile SIGKILL = %+v", st)
	}
	if st.Compile.Compilations != 0 || st.Compile.LazyCompiles != 0 {
		t.Fatalf("replay compiled (%d eager, %d lazy), want 0/0 — lazy replay must restore stubs only",
			st.Compile.Compilations, st.Compile.LazyCompiles)
	}

	// The retried first call compiles for real now and answers correctly.
	var run struct {
		Value int64 `json:"value"`
	}
	postJSON(t, base+"/v1/deployments/"+dep.ID+"/run", runBody, http.StatusOK, &run)
	if run.Value != 506 {
		t.Fatalf("retried first call = %d, want 506", run.Value)
	}
	getStatsRaw(t, base, &st)
	if st.Compile.LazyCompiles < 1 {
		t.Error("retried first call did not register a lazy compilation")
	}
}

// TestSVDChaosPanicMidBatch drives guest panics through the serving stack:
// backends run with a probabilistic sim.panic fault, so batch items panic
// inside the simulator mid-batch. The panic firewall must turn each one into
// a structured per-item execution error, quarantine and transparently
// rebuild the machine (later items and iterations keep answering), and the
// router must treat it all as application outcome — the backends stay
// healthy and nothing fails over or re-deploys.
func TestSVDChaosPanicMidBatch(t *testing.T) {
	if os.Getenv("SVD_CHAOS") == "" {
		t.Skip("set SVD_CHAOS=1 to run the svd chaos test")
	}
	bin := buildSVD(t)

	// Every guest call panics with probability 0.5: enough runs hit the
	// firewall to exercise quarantine + rebuild, enough survive to prove
	// rebuilt machines still answer.
	backendEnv := []string{"SPLITVM_FAULTS=sim.panic:error:0.5"}
	addrs := []string{freeAddr(t), freeAddr(t)}
	for i := range addrs {
		startSVDAt(t, bin, addrs[i], backendEnv)
	}
	routerAddr := freeAddr(t)
	startSVDAt(t, bin, routerAddr, nil,
		"-router", "-backends", "http://"+addrs[0]+",http://"+addrs[1],
		"-health-interval", "200ms")
	frontBase := "http://" + routerAddr

	stream, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID string `json:"id"`
	}
	postJSON(t, frontBase+"/v1/modules", stream, http.StatusCreated, &up)
	deployBody, _ := json.Marshal(map[string]any{
		"module": up.ID, "targets": []string{"x86-sse"}, "replicas": 2,
	})
	var dr struct {
		Deployments []struct {
			ID string `json:"id"`
		} `json:"deployments"`
	}
	postJSON(t, frontBase+"/v1/deploy", deployBody, http.StatusCreated, &dr)

	batchBody, _ := json.Marshal(map[string]any{
		"deployments": []string{dr.Deployments[0].ID, dr.Deployments[1].ID},
		"entry":       corpus.SyntheticEntryPoint,
		"args":        []string{"12"},
	})
	// Run batches until both outcomes have been observed, then a couple
	// more: a machine quarantined by the loop's last panic only rebuilds on
	// its next run, and the ledger check below wants that rebuild on record.
	panicked, answered, extra := 0, 0, 0
	for i := 0; i < 64 && extra < 2; i++ {
		if panicked > 0 && answered > 0 {
			extra++
		}
		var out struct {
			Results []struct {
				Value      int64  `json:"value"`
				Error      string `json:"error"`
				ErrorClass string `json:"error_class"`
				Retryable  bool   `json:"retryable"`
			} `json:"results"`
		}
		postJSON(t, frontBase+"/v1/run-batch", batchBody, http.StatusOK, &out)
		if len(out.Results) != 2 {
			t.Fatalf("batch returned %d results, want 2", len(out.Results))
		}
		for _, r := range out.Results {
			switch {
			case r.Error == "" && r.Value == 506:
				answered++
			case r.Error != "" && r.ErrorClass == "execution":
				panicked++
			default:
				t.Fatalf("batch item under injected panics = %+v, want value 506 or a structured execution error", r)
			}
		}
	}
	if panicked == 0 || answered == 0 {
		t.Fatalf("60 batches produced %d panics and %d answers; need both to prove the firewall", panicked, answered)
	}

	// The firewall's ledger: quarantines for the recovered panics, rebuilds
	// for the transparent recoveries that kept the batches answering.
	var quarantines, rebuilds int64
	for _, addr := range addrs {
		var st struct {
			Guard struct {
				Quarantines int64 `json:"quarantines"`
				Rebuilds    int64 `json:"rebuilds"`
			} `json:"guard"`
		}
		getStatsRaw(t, "http://"+addr, &st)
		quarantines += st.Guard.Quarantines
		rebuilds += st.Guard.Rebuilds
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %s unhealthy after recovered panics: %v", addr, err)
		}
		resp.Body.Close()
	}
	if quarantines < int64(panicked) {
		t.Errorf("backends counted %d quarantines for %d recovered panics", quarantines, panicked)
	}
	if rebuilds < 1 {
		t.Error("no machine was ever rebuilt despite answers after panics")
	}

	// Guest panics are application outcomes, not infrastructure failures:
	// the router never failed over or re-deployed anything.
	var rst struct {
		Router struct {
			Failovers         int64 `json:"failovers"`
			FailoverRedeploys int64 `json:"failover_redeploys"`
		} `json:"router"`
	}
	getStatsRaw(t, frontBase, &rst)
	if rst.Router.Failovers != 0 || rst.Router.FailoverRedeploys != 0 {
		t.Errorf("guest panics triggered failover: %+v", rst.Router)
	}
}

// TestSVDChaosOverloadSoak floods one governed backend at roughly 10x its
// admission capacity for a sustained window and holds the overload contract:
// every response is a success or a retryable 429 shed (never a 5xx), memory
// stays bounded while shedding, and when the flood stops the backend drains
// clean — the next request is admitted and answers.
func TestSVDChaosOverloadSoak(t *testing.T) {
	if os.Getenv("SVD_CHAOS") == "" {
		t.Skip("set SVD_CHAOS=1 to run the svd chaos test")
	}
	soak := 10 * time.Second
	if d, err := time.ParseDuration(os.Getenv("SVD_SOAK")); err == nil && d > 0 {
		soak = d
	}
	bin := buildSVD(t)
	addr := freeAddr(t)
	// 50ms injected run latency x 4 slots caps throughput at ~80 runs/s;
	// 32 back-to-back clients offer ~10x that.
	cmd, _ := startSVDAt(t, bin, addr, []string{"SPLITVM_FAULTS=server.run:latency:50ms"},
		"-max-inflight-per-tenant", "4")
	base := "http://" + addr

	stream, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/modules", stream, http.StatusCreated, &up)
	deployBody, _ := json.Marshal(map[string]any{"module": up.ID, "targets": []string{"x86-sse"}})
	var dr struct {
		Deployments []struct {
			ID string `json:"id"`
		} `json:"deployments"`
	}
	postJSON(t, base+"/v1/deploy", deployBody, http.StatusCreated, &dr)
	runURL := base + "/v1/deployments/" + dr.Deployments[0].ID + "/run"
	runBody, _ := json.Marshal(map[string]any{"entry": corpus.SyntheticEntryPoint, "args": []string{"12"}})

	var okRuns, shed, badStatus, badBody atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(runURL, "application/json", bytes.NewReader(runBody))
				if err != nil {
					continue // client-side churn (socket exhaustion) is not the backend's failure
				}
				var eb struct {
					ErrorClass string `json:"error_class"`
					Retryable  bool   `json:"retryable"`
				}
				dec := json.NewDecoder(resp.Body)
				switch resp.StatusCode {
				case http.StatusOK:
					okRuns.Add(1)
				case http.StatusTooManyRequests:
					if dec.Decode(&eb) != nil || eb.ErrorClass != "resource_exhausted" || !eb.Retryable {
						badBody.Add(1)
					}
					shed.Add(1)
				default:
					badStatus.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}

	// Sample RSS through the soak: shedding must keep memory flat, not queue
	// requests into an ever-growing heap.
	var peakRSS int64
	deadline := time.Now().Add(soak)
	for time.Now().Before(deadline) {
		if rss := readRSS(t, cmd.Process.Pid); rss > peakRSS {
			peakRSS = rss
		}
		time.Sleep(250 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if badStatus.Load() != 0 {
		t.Errorf("%d responses were neither 200 nor a 429 shed", badStatus.Load())
	}
	if badBody.Load() != 0 {
		t.Errorf("%d sheds lacked the retryable resource_exhausted body", badBody.Load())
	}
	if okRuns.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("soak saw %d successes and %d sheds; overload never materialized", okRuns.Load(), shed.Load())
	}
	const rssCap = 512 << 20
	if peakRSS > rssCap {
		t.Errorf("peak RSS %d MiB exceeds %d MiB — overload is buffering, not shedding", peakRSS>>20, rssCap>>20)
	}

	// Clean drain: with the flood gone the very next request is admitted.
	time.Sleep(500 * time.Millisecond)
	var run struct {
		Value int64 `json:"value"`
	}
	postJSON(t, runURL, runBody, http.StatusOK, &run)
	if run.Value != 506 {
		t.Fatalf("post-drain run = %d, want 506", run.Value)
	}
	var st struct {
		RunsShed int64 `json:"runs_shed"`
	}
	getStatsRaw(t, base, &st)
	if st.RunsShed != shed.Load() {
		t.Errorf("server counted %d sheds, clients saw %d", st.RunsShed, shed.Load())
	}
}

// readRSS returns the process's resident set size in bytes via /proc.
func readRSS(t *testing.T, pid int) int64 {
	t.Helper()
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0 // process gone or non-Linux; the status checks catch real failures
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			kb, err := strconv.ParseInt(fields[1], 10, 64)
			if err == nil {
				return kb << 10
			}
		}
	}
	return 0
}
