// Package e2e exercises the shipped binaries end to end — real processes,
// real sockets — where the unit suites stop at httptest. The tests are
// opt-in via SVD_SMOKE=1 (CI's svd-smoke job sets it) so the ordinary
// `go test ./...` tier stays hermetic and fast.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/corpus"
)

// TestSVDSmokeBinary boots cmd/svd as a real process and walks the deploy
// lifecycle the README documents: upload a module, batch-deploy it to two
// targets, invoke an entry point, and read /v1/stats. The uploaded module is
// the corpus's synthetic version-99 stream, so the walk also proves the
// annotation-fallback path end to end: both deployments must degrade to
// online-only compilation, succeed anyway, and show up in the stats
// counter.
func TestSVDSmokeBinary(t *testing.T) {
	if os.Getenv("SVD_SMOKE") == "" {
		t.Skip("set SVD_SMOKE=1 to run the svd binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "svd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/svd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building svd: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting svd: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		select {
		case err := <-exited:
			if err != nil {
				t.Errorf("svd exited uncleanly after SIGTERM: %v", err)
			}
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			t.Error("svd did not drain within 15s of SIGTERM")
		}
	}()

	base := "http://" + addr
	waitHealthy(t, base, exited)

	// Upload the synthetic future stream: regalloc section declares v99.
	stream, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		t.Fatal(err)
	}
	var upload struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/modules", stream, http.StatusCreated, &upload)
	if upload.ID == "" {
		t.Fatal("upload returned no module id")
	}

	// Batch deploy on a SIMD desktop core and the MCU.
	deployReq, _ := json.Marshal(map[string]any{
		"module":  upload.ID,
		"targets": []string{"x86-sse", "mcu"},
	})
	var deploy struct {
		Deployments []struct {
			ID                  string `json:"id"`
			Target              string `json:"target"`
			AnnotationFallbacks int    `json:"annotation_fallbacks"`
		} `json:"deployments"`
	}
	postJSON(t, base+"/v1/deploy", deployReq, http.StatusCreated, &deploy)
	if len(deploy.Deployments) != 2 {
		t.Fatalf("deployed %d machines, want 2", len(deploy.Deployments))
	}
	for _, d := range deploy.Deployments {
		if d.AnnotationFallbacks < 1 {
			t.Errorf("deployment %s on %s: annotation_fallbacks = %d, want >= 1 (v99 stream must degrade)",
				d.ID, d.Target, d.AnnotationFallbacks)
		}
	}

	// The degraded deployments still run correctly: work(12) = sum i^2 = 506.
	runReq, _ := json.Marshal(map[string]any{
		"entry": corpus.SyntheticEntryPoint,
		"args":  []string{"12"},
	})
	for _, d := range deploy.Deployments {
		var run struct {
			Value  int64 `json:"value"`
			Cycles int64 `json:"cycles"`
		}
		postJSON(t, fmt.Sprintf("%s/v1/deployments/%s/run", base, d.ID), runReq, http.StatusOK, &run)
		if run.Value != 506 {
			t.Errorf("work(12) on %s = %d, want 506", d.Target, run.Value)
		}
		if run.Cycles <= 0 {
			t.Errorf("run on %s reported %d cycles", d.Target, run.Cycles)
		}
	}

	// The fallback compilations are visible in the stats counter.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Compile struct {
			Compilations         int64 `json:"compilations"`
			FallbackCompilations int64 `json:"fallback_compilations"`
		} `json:"compile"`
		Deployments int `json:"deployments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Compile.FallbackCompilations < 1 {
		t.Errorf("/v1/stats compile.fallback_compilations = %d, want >= 1", stats.Compile.FallbackCompilations)
	}
	if stats.Compile.Compilations < 2 {
		t.Errorf("/v1/stats compile.compilations = %d, want >= 2 (two targets JIT-compiled)", stats.Compile.Compilations)
	}
	if stats.Deployments != 2 {
		t.Errorf("/v1/stats deployments = %d, want 2", stats.Deployments)
	}

	// The profile loop, end to end against the real binary: deploy tiered,
	// run past the promotion threshold, export the observed profile, and
	// warm a second tiered deployment with the exported blob.
	tieredReq, _ := json.Marshal(map[string]any{
		"module":        upload.ID,
		"targets":       []string{"mcu"},
		"tiering":       true,
		"promote_calls": 2,
	})
	var tiered struct {
		Deployments []struct {
			ID      string `json:"id"`
			Tiering bool   `json:"tiering"`
		} `json:"deployments"`
	}
	postJSON(t, base+"/v1/deploy", tieredReq, http.StatusCreated, &tiered)
	if len(tiered.Deployments) != 1 || !tiered.Deployments[0].Tiering {
		t.Fatalf("tiered deploy = %+v", tiered.Deployments)
	}
	tid := tiered.Deployments[0].ID
	for i := 0; i < 3; i++ {
		var run struct {
			Value int64 `json:"value"`
		}
		postJSON(t, fmt.Sprintf("%s/v1/deployments/%s/run", base, tid), runReq, http.StatusOK, &run)
		if run.Value != 506 {
			t.Fatalf("tiered work(12) = %d, want 506 (tier 2 must be bit-identical)", run.Value)
		}
	}

	presp, err := http.Get(fmt.Sprintf("%s/v1/deployments/%s/profile", base, tid))
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	var prof struct {
		Profile []byte `json:"profile"`
		Bytes   int    `json:"bytes"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK || len(prof.Profile) == 0 || prof.Bytes != len(prof.Profile) {
		t.Fatalf("profile export: status %d, %d bytes", presp.StatusCode, len(prof.Profile))
	}

	warmReq, _ := json.Marshal(map[string]any{
		"module":        upload.ID,
		"targets":       []string{"mcu"},
		"promote_calls": 2,
		"profile":       prof.Profile,
	})
	var warm struct {
		Deployments []struct {
			ID              string `json:"id"`
			Tiering         bool   `json:"tiering"`
			ProfileFallback string `json:"profile_fallback"`
		} `json:"deployments"`
	}
	postJSON(t, base+"/v1/deploy", warmReq, http.StatusCreated, &warm)
	if len(warm.Deployments) != 1 || !warm.Deployments[0].Tiering || warm.Deployments[0].ProfileFallback != "" {
		t.Fatalf("warm deploy = %+v", warm.Deployments)
	}
	// One call both imports the warm counters (seeding happens when the
	// function is first decoded) and — since the exporter ran past the
	// threshold — promotes immediately.
	var warmRun struct {
		Value int64 `json:"value"`
	}
	postJSON(t, fmt.Sprintf("%s/v1/deployments/%s/run", base, warm.Deployments[0].ID), runReq, http.StatusOK, &warmRun)
	if warmRun.Value != 506 {
		t.Fatalf("warm work(12) = %d, want 506", warmRun.Value)
	}

	// The tiering activity shows up in /v1/stats.
	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var tstats struct {
		TieredDeployments int `json:"tiered_deployments"`
		Tier              struct {
			Promotions int64 `json:"promotions"`
			WarmSeeded int64 `json:"warm_seeded"`
		} `json:"tier"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&tstats); err != nil {
		t.Fatal(err)
	}
	if tstats.TieredDeployments < 2 {
		t.Errorf("/v1/stats tiered_deployments = %d, want >= 2", tstats.TieredDeployments)
	}
	if tstats.Tier.Promotions < 1 {
		t.Errorf("/v1/stats tier.promotions = %d, want >= 1", tstats.Tier.Promotions)
	}
	if tstats.Tier.WarmSeeded < 1 {
		t.Errorf("/v1/stats tier.warm_seeded = %d, want >= 1", tstats.Tier.WarmSeeded)
	}
}

// freeAddr reserves an ephemeral localhost port and releases it for svd.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHealthy polls /healthz until the server answers (or the process dies).
func waitHealthy(t *testing.T, base string, exited chan error) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			exited <- err // keep it observable for the shutdown check
			t.Fatalf("svd exited before becoming healthy: %v", err)
		default:
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("svd did not become healthy within 15s")
}

// postJSON posts a body, asserts the status and decodes the response.
func postJSON(t *testing.T, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d; body: %s", url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("POST %s: decoding %s: %v", url, buf.String(), err)
		}
	}
}
