package e2e

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/corpus"
)

// startSVD boots the svd binary with extra flags and returns its base URL
// and a stop function (SIGTERM, wait for drain).
func startSVD(t *testing.T, bin string, extraArgs ...string) (string, func()) {
	t.Helper()
	addr := freeAddr(t)
	args := append([]string{"-addr", addr}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting svd: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	stop := func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		select {
		case err := <-exited:
			if err != nil {
				t.Errorf("svd exited uncleanly after SIGTERM: %v", err)
			}
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			t.Error("svd did not drain within 15s of SIGTERM")
		}
	}
	base := "http://" + addr
	waitHealthy(t, base, exited)
	return base, stop
}

// buildSVD compiles the svd binary into a temp dir.
func buildSVD(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "svd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/svd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building svd: %v\n%s", err, out)
	}
	return bin
}

// TestSVDWarmRestart is the horizontal-scalability acceptance walk against
// the real binary: run svd with -cache-dir, deploy (cold JIT compile), kill
// the process, restart it over the same cache directory, and demand the
// re-deploy is served from the persistent cache — from_cache true, zero
// compilations after the restart.
func TestSVDWarmRestart(t *testing.T) {
	if os.Getenv("SVD_SMOKE") == "" {
		t.Skip("set SVD_SMOKE=1 to run the svd binary smoke test")
	}
	bin := buildSVD(t)
	cacheDir := filepath.Join(t.TempDir(), "jit-cache")

	stream, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		t.Fatal(err)
	}
	deployBody := func(id string) []byte {
		b, _ := json.Marshal(map[string]any{"module": id, "targets": []string{"x86-sse"}})
		return b
	}
	runBody, _ := json.Marshal(map[string]any{
		"entry": corpus.SyntheticEntryPoint,
		"args":  []string{"12"},
	})

	// Generation 1: cold. Upload, deploy, run; the compile spills to disk.
	base, stop := startSVD(t, bin, "-cache-dir", cacheDir)
	var up struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/modules", stream, http.StatusCreated, &up)
	var cold struct {
		Deployments []struct {
			ID        string `json:"id"`
			FromCache bool   `json:"from_cache"`
		} `json:"deployments"`
	}
	postJSON(t, base+"/v1/deploy", deployBody(up.ID), http.StatusCreated, &cold)
	if len(cold.Deployments) != 1 || cold.Deployments[0].FromCache {
		t.Fatalf("cold deploy = %+v, want one fresh compilation", cold.Deployments)
	}
	var coldRun struct {
		Value int64 `json:"value"`
	}
	postJSON(t, fmt.Sprintf("%s/v1/deployments/%s/run", base, cold.Deployments[0].ID), runBody, http.StatusOK, &coldRun)
	if coldRun.Value != 506 {
		t.Fatalf("cold work(12) = %d, want 506", coldRun.Value)
	}
	stop()

	// Generation 2: the restart. Same cache dir, fresh process and engine.
	base2, stop2 := startSVD(t, bin, "-cache-dir", cacheDir)
	defer stop2()
	postJSON(t, base2+"/v1/modules", stream, http.StatusCreated, &up)
	var warm struct {
		Deployments []struct {
			ID        string `json:"id"`
			FromCache bool   `json:"from_cache"`
		} `json:"deployments"`
	}
	postJSON(t, base2+"/v1/deploy", deployBody(up.ID), http.StatusCreated, &warm)
	if len(warm.Deployments) != 1 {
		t.Fatalf("warm deploy = %+v", warm.Deployments)
	}
	if !warm.Deployments[0].FromCache {
		t.Error("warm deploy from_cache = false, want true (persistent cache must survive the restart)")
	}

	var stats struct {
		Cache struct {
			DiskHits int64 `json:"disk_hits"`
			Disk     *struct {
				Entries int `json:"entries"`
			} `json:"disk"`
		} `json:"cache"`
		Compile struct {
			Compilations int64 `json:"compilations"`
		} `json:"compile"`
	}
	resp, err := http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compile.Compilations != 0 {
		t.Errorf("compilations after restart = %d, want 0", stats.Compile.Compilations)
	}
	if stats.Cache.DiskHits != 1 {
		t.Errorf("disk_hits after restart = %d, want 1", stats.Cache.DiskHits)
	}
	if stats.Cache.Disk == nil || stats.Cache.Disk.Entries == 0 {
		t.Errorf("stats.cache.disk = %+v, want a populated store", stats.Cache.Disk)
	}

	// And the warm machine still computes the same answer.
	var warmRun struct {
		Value int64 `json:"value"`
	}
	postJSON(t, fmt.Sprintf("%s/v1/deployments/%s/run", base2, warm.Deployments[0].ID), runBody, http.StatusOK, &warmRun)
	if warmRun.Value != 506 {
		t.Errorf("warm work(12) = %d, want 506", warmRun.Value)
	}
}

// TestSVDRouterTopology boots the 1-router/2-backend topology from
// docs/operations.md as real processes: deploys route through the router
// with namespaced IDs, runs proxy to the owning backend, and the router's
// stats aggregate the fleet.
func TestSVDRouterTopology(t *testing.T) {
	if os.Getenv("SVD_SMOKE") == "" {
		t.Skip("set SVD_SMOKE=1 to run the svd binary smoke test")
	}
	bin := buildSVD(t)
	cacheDir := filepath.Join(t.TempDir(), "shared-cache")

	// Two backends sharing one cache volume, one router in front.
	b0, stop0 := startSVD(t, bin, "-cache-dir", cacheDir)
	defer stop0()
	b1, stop1 := startSVD(t, bin, "-cache-dir", cacheDir)
	defer stop1()
	front, stopRouter := startSVD(t, bin, "-router", "-backends", b0+","+b1)
	defer stopRouter()

	stream, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID string `json:"id"`
	}
	postJSON(t, front+"/v1/modules", stream, http.StatusCreated, &up)

	deployBody, _ := json.Marshal(map[string]any{"module": up.ID, "targets": []string{"x86-sse", "mcu"}})
	var dr struct {
		Deployments []struct {
			ID string `json:"id"`
		} `json:"deployments"`
	}
	postJSON(t, front+"/v1/deploy", deployBody, http.StatusCreated, &dr)
	if len(dr.Deployments) != 2 {
		t.Fatalf("deployed %d machines through the router, want 2", len(dr.Deployments))
	}

	runBody, _ := json.Marshal(map[string]any{
		"entry": corpus.SyntheticEntryPoint,
		"args":  []string{"12"},
	})
	for _, d := range dr.Deployments {
		var run struct {
			Value int64 `json:"value"`
		}
		postJSON(t, fmt.Sprintf("%s/v1/deployments/%s/run", front, d.ID), runBody, http.StatusOK, &run)
		if run.Value != 506 {
			t.Errorf("work(12) via router on %s = %d, want 506", d.ID, run.Value)
		}
	}

	// Batch-run the module across the fleet through the router.
	batchBody, _ := json.Marshal(map[string]any{
		"module": up.ID,
		"entry":  corpus.SyntheticEntryPoint,
		"args":   []string{"12"},
	})
	var br struct {
		Results []struct {
			Deployment string `json:"deployment"`
			Value      int64  `json:"value"`
			Error      string `json:"error"`
		} `json:"results"`
	}
	postJSON(t, front+"/v1/run-batch", batchBody, http.StatusOK, &br)
	if len(br.Results) != 2 {
		t.Fatalf("run-batch returned %d results, want 2", len(br.Results))
	}
	for _, r := range br.Results {
		if r.Error != "" || r.Value != 506 {
			t.Errorf("run-batch result %+v", r)
		}
	}

	// The router's aggregated stats cover its backends.
	resp, err := http.Get(front + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Router struct {
			Backends []struct {
				Healthy bool `json:"healthy"`
			} `json:"backends"`
		} `json:"router"`
		Backends map[string]json.RawMessage `json:"backends"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Router.Backends) != 2 || len(st.Backends) != 2 {
		t.Errorf("router stats cover %d/%d backends, want 2/2", len(st.Router.Backends), len(st.Backends))
	}
	for i, b := range st.Router.Backends {
		if !b.Healthy {
			t.Errorf("backend %d reported unhealthy", i)
		}
	}
}
