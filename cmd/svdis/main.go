// Command svdis disassembles an encoded bytecode module: signatures, locals,
// annotations and the instruction stream. With -native it also prints the
// native code a JIT would generate for the given target.
//
// Usage:
//
//	svdis app.svbc
//	svdis -native -target powerpc app.svbc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/target"
	"repro/pkg/splitvm"
)

func main() {
	native := flag.Bool("native", false, "also print the JIT-generated native code")
	arch := flag.String("target", string(target.X86SSE), "target architecture for -native")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "svdis: missing bytecode file")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svdis: %v\n", err)
		os.Exit(1)
	}
	eng := splitvm.New()
	mod, err := eng.Load(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svdis: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(mod.Disassemble())
	if !*native {
		return
	}
	dep, err := eng.Deploy(mod, splitvm.WithTarget(target.Arch(*arch)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svdis: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(dep.DisassembleNative())
}
