// Command svdis disassembles an encoded bytecode module: signatures, locals,
// annotations and the instruction stream. With -anno it dumps the annotation
// envelopes — declared versions, section tables, and whether this build's
// reader supports each stream. With -native it also prints the native code a
// JIT would generate for the given target.
//
// Usage:
//
//	svdis app.svbc
//	svdis -anno app.svbc
//	svdis -native -target powerpc app.svbc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/target"
	"repro/pkg/splitvm"
)

func main() {
	native := flag.Bool("native", false, "also print the JIT-generated native code")
	annoDump := flag.Bool("anno", false, "dump the annotation envelopes (versions, sections, support)")
	arch := flag.String("target", string(target.X86SSE), "target architecture for -native")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "svdis: missing bytecode file")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svdis: %v\n", err)
		os.Exit(1)
	}
	eng := splitvm.New()
	mod, err := eng.Load(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svdis: %v\n", err)
		os.Exit(1)
	}
	if *annoDump {
		dumpAnnotations(os.Stdout, mod)
	} else {
		fmt.Print(mod.Disassemble())
	}
	if !*native {
		return
	}
	dep, err := eng.Deploy(mod, splitvm.WithTarget(target.Arch(*arch)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svdis: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(dep.DisassembleNative())
}

// dumpAnnotations renders the per-method annotation versions recorded at
// load time: one line per annotation value, with the envelope's section
// table and the negotiation verdict of this build's reader. A consumable
// execution profile is additionally decoded and pretty-printed.
func dumpAnnotations(w io.Writer, mod *splitvm.Module) {
	infos := mod.AnnotationInfo()
	fmt.Fprintf(w, "module %s: %d annotation value(s)\n", mod.Name(), len(infos))
	for _, info := range infos {
		owner := info.Method
		if owner == "" {
			owner = "<module>"
		}
		form := "v0 legacy stream"
		switch {
		case info.Enveloped && info.Version == 0 && !info.Supported:
			form = "envelope" // unreadable: no trustworthy version to print
		case info.Enveloped:
			form = fmt.Sprintf("v%d envelope", info.Version)
		}
		verdict := "ok"
		if !info.Supported {
			verdict = "FALLBACK: " + info.Reason
		}
		fmt.Fprintf(w, "  %-12s %-16s %-14s %4d bytes  %s\n", owner, info.Key, form, info.Bytes, verdict)
		for _, s := range info.Sections {
			fmt.Fprintf(w, "  %-12s   section %s@%d (%d bytes)\n", "", s.Name, s.Version, s.Bytes)
		}
	}
	if p := mod.Profile(); p != nil {
		fmt.Fprintf(w, "profile: %d function(s)\n", len(p.Funcs))
		for _, f := range p.Funcs {
			fmt.Fprintf(w, "  %-12s %d call(s)\n", f.Name, f.Calls)
			for i, b := range f.Branches {
				fmt.Fprintf(w, "  %-12s   branch %d: taken %d, not taken %d\n", "", i, b.Taken, b.NotTaken)
			}
		}
	}
}
