package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/pkg/splitvm"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// corpusDir is the golden annotation corpus the disassembly is pinned over:
// checked-in streams that never change, so the rendered output is stable.
const corpusDir = "../../internal/anno/testdata/annocorpus"

// TestAnnoDumpGolden pins the -anno rendering over corpus streams: the
// profiled entry exercises the profile pretty-printer, the future-schema
// entry the fallback verdict line. Regenerate with `go test ./cmd/svdis
// -update` after an intentional format change.
func TestAnnoDumpGolden(t *testing.T) {
	man, err := corpus.LoadManifest(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	subjects := map[string]string{
		corpus.ProfiledKernel:       "profiled_anno.golden",
		corpus.ProfiledFutureKernel: "profiled_future_anno.golden",
	}
	eng := splitvm.New()
	for _, e := range man.Entries {
		golden, ok := subjects[e.Kernel]
		if !ok {
			continue
		}
		delete(subjects, e.Kernel)
		data, err := os.ReadFile(filepath.Join(corpusDir, e.File))
		if err != nil {
			t.Fatal(err)
		}
		mod, err := eng.Load(data)
		if err != nil {
			t.Fatalf("%s: %v", e.File, err)
		}
		var buf bytes.Buffer
		dumpAnnotations(&buf, mod)

		path := filepath.Join("testdata", golden)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: -anno output drifted from %s:\ngot:\n%swant:\n%s", e.File, golden, buf.Bytes(), want)
		}
	}
	for k := range subjects {
		t.Errorf("corpus has no %s entry to pin the golden output over", k)
	}
}
