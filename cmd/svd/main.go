// Command svd is the batch deploy daemon: one long-lived process wrapping a
// shared splitvm.Engine behind the HTTP API of pkg/splitvm/server. Upload a
// module once, deploy it on many simulated targets in batches, invoke entry
// points on the live machines, and watch the code cache amortize the JIT
// work across the fleet.
//
// Usage:
//
//	svd [-addr :7420] [-workers 4] [-queue 64] [-cache-size 0] [-retry-after 1s]
//	    [-deploy-ttl 0] [-compile-workers 0]
//
// A walkthrough with curl lives in the repository README. SIGINT/SIGTERM
// trigger a graceful shutdown: the listener drains, then the worker pools.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/pkg/splitvm"
	"repro/pkg/splitvm/server"
)

func main() {
	addr := flag.String("addr", ":7420", "listen address")
	workers := flag.Int("workers", 4, "deploy workers per target")
	queue := flag.Int("queue", 64, "pending deployments per target before batches are rejected with 429")
	cacheSize := flag.Int("cache-size", 0, "max native images kept in the code cache (0 = unbounded)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	maxModule := flag.Int64("max-module-bytes", 4<<20, "largest accepted module upload")
	deployTTL := flag.Duration("deploy-ttl", 0, "evict deployments idle for this long (0 = keep forever)")
	compileWorkers := flag.Int("compile-workers", 0, "JIT worker pool per compilation (0 = GOMAXPROCS, 1 = sequential)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	flag.Parse()

	eng := splitvm.New(splitvm.WithCacheSize(*cacheSize), splitvm.WithCompileWorkers(*compileWorkers))
	srv := server.New(eng, server.Config{
		WorkersPerTarget: *workers,
		QueueDepth:       *queue,
		RetryAfter:       *retryAfter,
		MaxModuleBytes:   *maxModule,
		DeployTTL:        *deployTTL,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("svd: serving on %s (workers/target=%d, queue=%d, cache-size=%d)",
		*addr, *workers, *queue, *cacheSize)

	select {
	case err := <-errc:
		// Listener died on its own (port in use, ...).
		srv.Close()
		log.Fatalf("svd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("svd: shutting down (draining for up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("svd: drain: %v", err)
	}
	srv.Close()

	st := eng.CacheStats()
	fmt.Printf("svd: final cache stats: %d hits, %d misses, %d evictions, %d entries\n",
		st.Hits, st.Misses, st.Evictions, st.Entries)
}
