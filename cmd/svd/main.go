// Command svd is the batch deploy daemon: one long-lived process wrapping a
// shared splitvm.Engine behind the HTTP API of pkg/splitvm/server. Upload a
// module once, deploy it on many simulated targets in batches, invoke entry
// points on the live machines, and watch the code cache amortize the JIT
// work across the fleet.
//
// Usage:
//
//	svd [-addr :7420] [-workers 4] [-queue 64] [-cache-size 0] [-cache-dir DIR]
//	    [-journal FILE] [-retry-after 1s] [-deploy-ttl 0] [-compile-workers 0]
//	    [-max-deploys-per-module 0] [-max-deploys-per-tenant 0]
//	    [-max-inflight-per-tenant 0]
//
// With -cache-dir the code cache is backed by a persistent on-disk store:
// restarts deploy warm (from_cache without recompiling) and replicas
// pointed at one shared volume reuse each other's JIT work. With -journal
// the deployment table itself survives crashes: every upload, deploy and
// eviction is appended to the journal and replayed on startup, so a
// SIGKILLed backend restarts with its machines live (and, combined with
// -cache-dir, without recompiling anything).
//
// Router mode turns the same binary into a stateless front door over a
// fleet of svd replicas, consistent-hash sharding deployments by module:
//
//	svd -router -backends http://host1:7420,http://host2:7420 [-addr :7421]
//	    [-load-factor 1.25] [-health-interval 2s] [-breaker-failures 3]
//	    [-breaker-successes 2] [-breaker-cooldown 5s] [-run-deadline 60s]
//
// The router ejects backends through per-backend circuit breakers and fails
// runs over to surviving replicas; see docs/operations.md for the failure
// model. SIGINT/SIGTERM trigger a graceful shutdown: the listener drains
// for up to -drain, then in-flight simulations are force-cancelled, bounded
// overall by -shutdown-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/pkg/splitvm"
	"repro/pkg/splitvm/server"
)

func main() {
	addr := flag.String("addr", ":7420", "listen address")
	workers := flag.Int("workers", 4, "deploy workers per target")
	queue := flag.Int("queue", 64, "pending deployments per target before batches are rejected with 429")
	cacheSize := flag.Int("cache-size", 0, "max native images kept in the code cache (0 = unbounded)")
	cacheDir := flag.String("cache-dir", "", "persistent disk cache directory (empty = memory only); share it between replicas for fleet-wide JIT reuse")
	journalPath := flag.String("journal", "", "deployment journal file (empty = in-memory deployments); replayed on startup so restarts keep the deployment table")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	maxModule := flag.Int64("max-module-bytes", 4<<20, "largest accepted module upload")
	deployTTL := flag.Duration("deploy-ttl", 0, "evict deployments idle for this long (0 = keep forever)")
	compileWorkers := flag.Int("compile-workers", 0, "JIT worker pool per compilation (0 = GOMAXPROCS, 1 = sequential)")
	maxPerModule := flag.Int("max-deploys-per-module", 0, "cap live deployments per module (0 = unlimited)")
	maxPerTenant := flag.Int("max-deploys-per-tenant", 0, "cap live deployments per X-Tenant header value (0 = unlimited)")
	maxInflight := flag.Int("max-inflight-per-tenant", 0, "cap in-flight run/run-batch requests per tenant; excess is shed with 429 resource_exhausted (0 = unlimited)")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain: how long in-flight requests may finish on their own after SIGTERM")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "hard shutdown bound: after -drain, in-flight simulations are force-cancelled; the process exits within this total")

	router := flag.Bool("router", false, "run as a consistent-hash router over -backends instead of a backend")
	backends := flag.String("backends", "", "comma-separated backend base URLs (router mode)")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load headroom over the fair share (router mode)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "backend probe interval (router mode)")
	breakerFailures := flag.Int("breaker-failures", 3, "consecutive failures that open a backend's circuit breaker (router mode)")
	breakerSuccesses := flag.Int("breaker-successes", 2, "consecutive half-open successes that close the breaker again (router mode)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker blocks a backend before the first half-open probe (router mode)")
	runDeadline := flag.Duration("run-deadline", 60*time.Second, "end-to-end bound on one run, including failover re-deploys and retries (router mode; negative disables)")
	flag.Parse()

	if *router {
		var urls []string
		for _, b := range strings.Split(*backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				urls = append(urls, b)
			}
		}
		runRouter(*addr, *drain, server.RouterConfig{
			Backends:         urls,
			LoadFactor:       *loadFactor,
			HealthInterval:   *healthInterval,
			MaxModuleBytes:   *maxModule,
			BreakerFailures:  *breakerFailures,
			BreakerSuccesses: *breakerSuccesses,
			BreakerCooldown:  *breakerCooldown,
			RunDeadline:      *runDeadline,
		})
		return
	}

	opts := []splitvm.Option{
		splitvm.WithCacheSize(*cacheSize),
		splitvm.WithCompileWorkers(*compileWorkers),
	}
	if *cacheDir != "" {
		opts = append(opts, splitvm.WithDiskCache(*cacheDir))
	}
	eng := splitvm.New(opts...)
	if err := eng.DiskCacheErr(); err != nil {
		// An operator who asked for durability gets a hard failure, not a
		// silent memory-only daemon.
		log.Fatalf("svd: disk cache: %v", err)
	}
	srv := server.New(eng, server.Config{
		WorkersPerTarget:        *workers,
		QueueDepth:              *queue,
		RetryAfter:              *retryAfter,
		MaxModuleBytes:          *maxModule,
		DeployTTL:               *deployTTL,
		MaxDeploymentsPerModule: *maxPerModule,
		MaxDeploymentsPerTenant: *maxPerTenant,
		MaxInflightPerTenant:    *maxInflight,
		JournalPath:             *journalPath,
	})
	if err := srv.JournalErr(); err != nil {
		// Same contract as the disk cache: asked-for durability that cannot
		// be provided is a startup failure, not a silent downgrade.
		log.Fatalf("svd: journal: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("svd: serving on %s (workers/target=%d, queue=%d, cache-size=%d, cache-dir=%q, journal=%q)",
		*addr, *workers, *queue, *cacheSize, *cacheDir, *journalPath)

	select {
	case err := <-errc:
		// Listener died on its own (port in use, ...).
		srv.Close()
		log.Fatalf("svd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("svd: shutting down (draining for up to %s, hard stop within %s)", *drain, *shutdownTimeout)
	deadline := time.Now().Add(*shutdownTimeout)
	drainBound := *drain
	if drainBound > *shutdownTimeout {
		drainBound = *shutdownTimeout
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainBound)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// A stuck simulation outlived the drain; close the listener's
		// remaining connections and let srv.Close cancel the run contexts —
		// the interpreters observe the cancellation within one interrupt
		// stride and their handlers return.
		log.Printf("svd: drain incomplete (%v); force-cancelling in-flight simulations", err)
		httpSrv.Close()
	}
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(time.Until(deadline)):
		log.Printf("svd: shutdown timeout %s exceeded; exiting with work in flight", *shutdownTimeout)
		os.Exit(1)
	}

	st := eng.CacheStats()
	fmt.Printf("svd: final cache stats: %d hits (%d from disk), %d misses, %d evictions, %d entries\n",
		st.Hits, st.DiskHits, st.Misses, st.Evictions, st.Entries)
}

// runRouter is svd's router mode: no engine of its own, just the
// consistent-hash front door of server.NewRouter over the listed backends.
func runRouter(addr string, drain time.Duration, cfg server.RouterConfig) {
	rt, err := server.NewRouter(cfg)
	if err != nil {
		log.Fatalf("svd: router: %v (pass -backends url1,url2,...)", err)
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("svd: routing on %s across %d backends (load-factor=%.2f)", addr, len(cfg.Backends), cfg.LoadFactor)

	select {
	case err := <-errc:
		rt.Close()
		log.Fatalf("svd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("svd: router shutting down (draining for up to %s)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("svd: drain: %v", err)
	}
	rt.Close()

	st := rt.Stats()
	routed := int64(0)
	for _, b := range st.Backends {
		routed += b.Routed
	}
	fmt.Printf("svd: router final stats: %d requests routed, %d retries, %d fanouts, %d failovers\n",
		routed, st.Retries, st.Fanouts, st.Failovers)
}
