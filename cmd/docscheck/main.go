// Command docscheck is the documentation gate behind CI's docs-lint job.
// It enforces two properties that otherwise rot silently:
//
//   - Every relative markdown link in README.md and docs/ resolves to a
//     file or directory that actually exists in the repository (external
//     http(s) links are not fetched — the gate must stay hermetic).
//
//   - Every exported top-level symbol of the public packages (pkg/...)
//     carries a doc comment, so `go doc` never shows a bare name.
//
// Usage:
//
//	docscheck [-root .] [-pkg pkg/splitvm -pkg pkg/splitvm/server]
//
// Exit status is non-zero if any check fails; every violation is listed.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are rare in this repository and skipped.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	root := flag.String("root", ".", "repository root")
	var pkgs multiFlag
	flag.Var(&pkgs, "pkg", "package directory (relative to -root) whose exported symbols must be documented; repeatable")
	flag.Parse()
	if len(pkgs) == 0 {
		pkgs = multiFlag{"pkg/splitvm", "pkg/splitvm/server"}
	}

	var problems []string
	problems = append(problems, checkLinks(*root)...)
	for _, p := range pkgs {
		problems = append(problems, checkDocComments(*root, p)...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// markdownFiles returns README.md plus every .md file under docs/.
func markdownFiles(root string) ([]string, error) {
	files := []string{filepath.Join(root, "README.md")}
	docs := filepath.Join(root, "docs")
	entries, err := os.ReadDir(docs)
	if os.IsNotExist(err) {
		return files, nil
	}
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join(docs, e.Name()))
		}
	}
	return files, nil
}

func checkLinks(root string) []string {
	files, err := markdownFiles(root)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: %v", err)}
	}
	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skipLink(target) {
					continue
				}
				// Strip a #fragment; a bare fragment links within the page.
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
					if target == "" {
						continue
					}
				}
				// Relative links resolve against the containing file.
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken link %q (no %s)", file, i+1, m[1], resolved))
				}
			}
		}
	}
	return problems
}

// skipLink reports whether a link target is outside the gate's scope:
// external URLs and non-path schemes.
func skipLink(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

// checkDocComments parses one package directory (tests excluded) and
// reports every exported top-level declaration without a doc comment.
func checkDocComments(root, pkg string) []string {
	dir := filepath.Join(root, pkg)
	fset := token.NewFileSet()
	pkgsMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: parsing %s: %v", dir, err)}
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, p := range pkgsMap {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					// Methods included: an exported method on an exported
					// receiver shows up in go doc too.
					if d.Name.IsExported() && d.Doc == nil && exportedReceiver(d) {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					problems = append(problems, checkGenDecl(fset, d)...)
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a FuncDecl is a plain function or a
// method on an exported type (methods on unexported types are invisible
// in go doc and need no comment).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// checkGenDecl handles const/var/type declarations. A doc comment on the
// grouped decl covers its specs; otherwise each exported spec needs its
// own.
func checkGenDecl(fset *token.FileSet, d *ast.GenDecl) []string {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return nil
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), d.Tok.String(), name.Name)
				}
			}
		}
	}
	return problems
}
