package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLinks(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "README.md"), strings.Join([]string{
		"# Title",
		"[good](docs/page.md) and [external](https://example.com/x) stay quiet.",
		"[fragment](docs/page.md#section) resolves without the fragment.",
		"[inpage](#local) is a bare fragment.",
		"[broken](docs/missing.md) must be reported.",
	}, "\n"))
	write(t, filepath.Join(root, "docs", "page.md"),
		"[up](../README.md) resolves relative to the containing file.\n[bad](nope.md)\n")

	problems := checkLinks(root)
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly the two broken links", problems)
	}
	if !strings.Contains(problems[0], "missing.md") || !strings.Contains(problems[1], "nope.md") {
		t.Errorf("problems = %v", problems)
	}
}

func TestCheckDocComments(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "pkg", "demo", "demo.go"), `// Package demo is a fixture.
package demo

// Documented is fine.
const Documented = 1

const Bare = 2

// Grouped docs cover the whole decl.
const (
	A = 1
	B = 2
)

// T is documented.
type T struct{}

type U struct{}

// M is documented.
func (t T) M() {}

func (t T) N() {}

// onHidden methods need no comment: the receiver is unexported.
type hidden struct{}

func (h hidden) Exported() {}
`)
	write(t, filepath.Join(root, "pkg", "demo", "demo_test.go"), `package demo

func Helper() {}
`)

	problems := checkDocComments(root, "pkg/demo")
	var names []string
	for _, p := range problems {
		names = append(names, p[strings.LastIndex(p, "exported "):])
	}
	want := map[string]bool{
		"exported const Bare has no doc comment": false,
		"exported type U has no doc comment":     false,
		"exported function N has no doc comment": false,
	}
	for _, n := range names {
		if _, ok := want[n]; !ok {
			t.Errorf("unexpected problem %q", n)
			continue
		}
		want[n] = true
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("missing problem %q (got %v)", n, problems)
		}
	}
}
