// Command dacbench regenerates the evaluation artifacts of the paper: Table 1
// (split automatic vectorization), Figure 1 (the split compilation flow,
// quantified), the split register allocation claim, the bytecode compactness
// claim and the Section 3 heterogeneous offload scenario.
//
// Besides the human-readable tables it writes the reports of the experiments
// it ran to a machine-readable JSON file (per-kernel cycles and speedups,
// code sizes, spill counts), so successive runs can be tracked as a
// performance trajectory.
//
// Usage:
//
//	dacbench -exp table1|figure1|regalloc|codesize|hetero|all [-n 4096] [-frames 8] [-json BENCH_results.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/pkg/splitvm"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, figure1, regalloc, codesize, hetero or all")
	n := flag.Int("n", 4096, "elements per kernel invocation (table1)")
	frames := flag.Int("frames", 8, "frames for the heterogeneous scenario")
	jsonPath := flag.String("json", "BENCH_results.json", "write the reports of the executed experiments to this JSON file (empty to skip)")
	flag.Parse()

	// The artifact schema is shared with cmd/benchdiff (splitvm.Results), so
	// successive runs can be gated against a committed baseline.
	var res splitvm.Results
	run := func(name string) error {
		switch name {
		case "table1":
			r, err := splitvm.RunTable1(splitvm.Table1Options{N: *n})
			if err != nil {
				return err
			}
			res.Table1 = r
			fmt.Println(r)
		case "figure1":
			r, err := splitvm.RunFigure1()
			if err != nil {
				return err
			}
			res.Figure1 = r
			fmt.Println(r)
		case "regalloc":
			r, err := splitvm.RunRegAlloc(splitvm.RegAllocOptions{})
			if err != nil {
				return err
			}
			res.RegAlloc = r
			fmt.Println(r)
		case "codesize":
			r, err := splitvm.RunCodeSize()
			if err != nil {
				return err
			}
			res.CodeSize = r
			fmt.Println(r)
		case "hetero":
			r, err := splitvm.RunHetero(splitvm.HeteroOptions{Frames: *frames})
			if err != nil {
				return err
			}
			res.Hetero = r
			fmt.Println(r)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	experiments := []string{*exp}
	if *exp == "all" {
		experiments = []string{"table1", "figure1", "regalloc", "codesize", "hetero"}
	}
	for _, e := range experiments {
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "dacbench: %s: %v\n", e, err)
			os.Exit(1)
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dacbench: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dacbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dacbench: wrote %s\n", *jsonPath)
	}
}
