// Command dacbench regenerates the evaluation artifacts of the paper: Table 1
// (split automatic vectorization), Figure 1 (the split compilation flow,
// quantified), the split register allocation claim, the bytecode compactness
// claim and the Section 3 heterogeneous offload scenario.
//
// Usage:
//
//	dacbench -exp table1|figure1|regalloc|codesize|hetero|all [-n 4096] [-frames 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, figure1, regalloc, codesize, hetero or all")
	n := flag.Int("n", 4096, "elements per kernel invocation (table1)")
	frames := flag.Int("frames", 8, "frames for the heterogeneous scenario")
	flag.Parse()

	run := func(name string) error {
		switch name {
		case "table1":
			r, err := bench.RunTable1(bench.Table1Options{N: *n})
			if err != nil {
				return err
			}
			fmt.Println(r)
		case "figure1":
			r, err := bench.RunFigure1()
			if err != nil {
				return err
			}
			fmt.Println(r)
		case "regalloc":
			r, err := bench.RunRegAlloc(bench.RegAllocOptions{})
			if err != nil {
				return err
			}
			fmt.Println(r)
		case "codesize":
			r, err := bench.RunCodeSize()
			if err != nil {
				return err
			}
			fmt.Println(r)
		case "hetero":
			r, err := bench.RunHetero(bench.HeteroOptions{Frames: *frames})
			if err != nil {
				return err
			}
			fmt.Println(r)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	experiments := []string{*exp}
	if *exp == "all" {
		experiments = []string{"table1", "figure1", "regalloc", "codesize", "hetero"}
	}
	for _, e := range experiments {
		if err := run(e); err != nil {
			fmt.Fprintf(os.Stderr, "dacbench: %s: %v\n", e, err)
			os.Exit(1)
		}
	}
}
