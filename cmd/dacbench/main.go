// Command dacbench regenerates the evaluation artifacts of the paper: Table 1
// (split automatic vectorization), Figure 1 (the split compilation flow,
// quantified), the split register allocation claim, the bytecode compactness
// claim and the Section 3 heterogeneous offload scenario.
//
// Besides the human-readable tables it writes the reports of the experiments
// it ran to a machine-readable JSON file (per-kernel cycles and speedups,
// code sizes, spill counts), so successive runs can be tracked as a
// performance trajectory.
//
// Besides the deterministic simulated metrics, the host experiment records
// how fast the simulator itself runs on this host (ns/run, allocs/run,
// simulated instructions per host-second) and the compile experiment records
// how fast the online JIT runs (ns/compile, allocs/compile, methods/sec,
// parallel-pipeline speedup) and the tier experiment records the tiered
// execution trajectory (promotion latency cold versus profile-warmed,
// tier-2 host speedup, fused superinstruction pairs, profile sizes); those
// numbers are tracked in the artifact but never gated by cmd/benchdiff.
//
// Usage:
//
//	dacbench -exp table1|figure1|regalloc|codesize|hetero|host|anno|compile|tier|all [-n 4096] [-frames 8]
//	         [-compileruns 24] [-compile-workers 0]
//	         [-json BENCH_results.json] [-cpuprofile cpu.prof] [-memprofile mem.prof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"

	"repro/pkg/splitvm"
	"repro/pkg/splitvm/server"
)

// serveHarness wires the svd HTTP servers into the serve experiment. The
// bench package cannot import pkg/splitvm/server (it sits below pkg/splitvm
// in the import graph), so this command supplies the constructors.
func serveHarness() *splitvm.ServeHarness {
	return &splitvm.ServeHarness{
		NewBackend: func(cacheDir, journalPath string) (http.Handler, func()) {
			opts := []splitvm.Option{}
			if cacheDir != "" {
				opts = append(opts, splitvm.WithDiskCache(cacheDir))
			}
			srv := server.New(splitvm.New(opts...), server.Config{JournalPath: journalPath})
			return srv, srv.Close
		},
		NewRouter: func(backends []string) (http.Handler, func(), error) {
			rt, err := server.NewRouter(server.RouterConfig{Backends: backends})
			if err != nil {
				return nil, nil, err
			}
			return rt, rt.Close, nil
		},
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, figure1, regalloc, codesize, hetero, host, anno, compile, tier, serve or all")
	n := flag.Int("n", 4096, "elements per kernel invocation (table1, host)")
	frames := flag.Int("frames", 8, "frames for the heterogeneous scenario")
	hostRuns := flag.Int("hostruns", 16, "timed executions per cell of the host-throughput experiment")
	compileRuns := flag.Int("compileruns", 24, "timed compilations per cell of the compile-throughput experiment")
	serveRuns := flag.Int("serveruns", 48, "timed requests per latency distribution of the serve experiment")
	compileWorkers := flag.Int("compile-workers", 0, "pin the JIT worker pool for every compilation in this run (0 = GOMAXPROCS); equivalent to SPLITVM_COMPILE_WORKERS")
	jsonPath := flag.String("json", "BENCH_results.json", "write the reports of the executed experiments to this JSON file (empty to skip)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	flag.Parse()

	// The worker-pool pin must be in place before the first JIT call reads
	// it (the jit package resolves the override once). CI uses this to
	// prove the gated metrics are identical under sequential and parallel
	// compilation.
	if *compileWorkers > 0 {
		os.Setenv("SPLITVM_COMPILE_WORKERS", strconv.Itoa(*compileWorkers))
	}

	// fail flushes the CPU profile before exiting: os.Exit skips deferred
	// calls, and a truncated profile of a failing run would be useless
	// exactly when it is wanted most.
	var profileOut *os.File
	fail := func(format string, args ...any) {
		if profileOut != nil {
			pprof.StopCPUProfile()
			profileOut.Close()
		}
		fmt.Fprintf(os.Stderr, format, args...)
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail("dacbench: %v\n", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fail("dacbench: %v\n", err)
		}
		profileOut = f
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// The artifact schema is shared with cmd/benchdiff (splitvm.Results), so
	// successive runs can be gated against a committed baseline.
	var res splitvm.Results
	run := func(name string) error {
		switch name {
		case "table1":
			r, err := splitvm.RunTable1(splitvm.Table1Options{N: *n})
			if err != nil {
				return err
			}
			res.Table1 = r
			fmt.Println(r)
		case "figure1":
			r, err := splitvm.RunFigure1()
			if err != nil {
				return err
			}
			res.Figure1 = r
			fmt.Println(r)
		case "regalloc":
			r, err := splitvm.RunRegAlloc(splitvm.RegAllocOptions{})
			if err != nil {
				return err
			}
			res.RegAlloc = r
			fmt.Println(r)
		case "codesize":
			r, err := splitvm.RunCodeSize()
			if err != nil {
				return err
			}
			res.CodeSize = r
			fmt.Println(r)
		case "hetero":
			r, err := splitvm.RunHetero(splitvm.HeteroOptions{Frames: *frames})
			if err != nil {
				return err
			}
			res.Hetero = r
			fmt.Println(r)
		case "host":
			r, err := splitvm.RunHost(splitvm.HostOptions{N: *n, Runs: *hostRuns})
			if err != nil {
				return err
			}
			res.Host = r
			fmt.Println(r)
		case "anno":
			r, err := splitvm.RunAnno()
			if err != nil {
				return err
			}
			res.Anno = r
			fmt.Println(r)
		case "compile":
			r, err := splitvm.RunCompile(splitvm.CompileOptions{Runs: *compileRuns})
			if err != nil {
				return err
			}
			res.Compile = r
			fmt.Println(r)
		case "tier":
			r, err := splitvm.RunTier(splitvm.TierBenchOptions{N: *n, Runs: *hostRuns})
			if err != nil {
				return err
			}
			res.Tier = r
			fmt.Println(r)
		case "serve":
			r, err := splitvm.RunServe(splitvm.ServeOptions{Runs: *serveRuns, Harness: serveHarness()})
			if err != nil {
				return err
			}
			res.Serve = r
			fmt.Println(r)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	experiments := []string{*exp}
	if *exp == "all" {
		experiments = []string{"table1", "figure1", "regalloc", "codesize", "hetero", "host", "anno", "compile", "tier", "serve"}
	}
	for _, e := range experiments {
		if err := run(e); err != nil {
			fail("dacbench: %s: %v\n", e, err)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail("dacbench: %v\n", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("dacbench: %v\n", err)
		}
		fmt.Printf("dacbench: wrote heap profile to %s\n", *memProfile)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			fail("dacbench: %v\n", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fail("dacbench: %v\n", err)
		}
		fmt.Printf("dacbench: wrote %s\n", *jsonPath)
	}
}
