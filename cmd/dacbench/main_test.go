package main

import (
	"testing"

	"repro/pkg/splitvm"
)

// TestServeExperiment runs the serve family end to end through the real
// harness wiring: backend latency, the disk-cache warm restart, and the
// router phase. The wall-clock numbers are free to vary; the structural
// claims (warm restart serves from cache without compiling) are not.
func TestServeExperiment(t *testing.T) {
	r, err := splitvm.RunServe(splitvm.ServeOptions{Runs: 4, Harness: serveHarness()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Deploy.Count != 4 || r.Run.Count != 4 || r.RouterRun.Count != 4 {
		t.Errorf("distribution counts = %d/%d/%d, want 4 each", r.Deploy.Count, r.Run.Count, r.RouterRun.Count)
	}
	if !r.WarmFromCache {
		t.Error("warm restart did not deploy from cache")
	}
	if r.WarmCompilations != 0 {
		t.Errorf("warm restart compiled %d times, want 0", r.WarmCompilations)
	}
	if r.ColdDeployNanos <= 0 || r.WarmDeployNanos <= 0 {
		t.Errorf("deploy nanos = %d cold / %d warm, want > 0", r.ColdDeployNanos, r.WarmDeployNanos)
	}
	if r.RouterBackends != 2 {
		t.Errorf("router backends = %d, want 2", r.RouterBackends)
	}
	if r.FailoverRunNanos <= 0 {
		t.Errorf("failover run nanos = %d, want > 0 (run must survive backend death)", r.FailoverRunNanos)
	}
	if r.JournalReplayDeployments != 1 || r.JournalReplayCompilations != 0 {
		t.Errorf("journal replay restored %d deployments with %d compilations, want 1 / 0",
			r.JournalReplayDeployments, r.JournalReplayCompilations)
	}
	if r.JournalReplayNanos <= 0 {
		t.Errorf("journal replay nanos = %d, want > 0", r.JournalReplayNanos)
	}
}
