// Command benchdiff is the performance-regression gate: it compares the
// BENCH_results.json artifact of a fresh cmd/dacbench run against a
// committed baseline and exits non-zero when any cycle count, JIT effort,
// spill weight or code size regressed beyond tolerance — or when an
// experiment silently disappeared from the run.
//
// The simulated targets are deterministic, so the gate can be tight: the
// default tolerance is 2% relative plus a small absolute allowance for tiny
// metrics. After an intentional change in performance, refresh the baseline
// (-update) and commit it with the change that explains it.
//
// Usage:
//
//	benchdiff [-baseline BENCH_baseline.json] [-current BENCH_results.json]
//	          [-rel 0.02] [-abs 2] [-all] [-update]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pkg/splitvm"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline artifact")
	currentPath := flag.String("current", "BENCH_results.json", "artifact of the run under test")
	rel := flag.Float64("rel", 0.02, "relative tolerance (fractional increase allowed per metric)")
	abs := flag.Float64("abs", 2, "absolute tolerance added on top (for tiny metrics)")
	all := flag.Bool("all", false, "print every metric, not only the notable ones")
	update := flag.Bool("update", false, "overwrite the baseline with the current artifact and exit")
	flag.Parse()

	current, err := os.ReadFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v (run cmd/dacbench first)\n", err)
		os.Exit(2)
	}
	if *update {
		// The baseline only gates the deterministic simulated metrics, so
		// strip every non-gated section generically (host throughput,
		// annotation trajectory, whatever is added next): committing
		// tracked-only numbers would be meaningless churn on every refresh.
		data, err := splitvm.StripUngatedResults(current)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: baseline %s refreshed from %s (non-gated sections excluded)\n", *baselinePath, *currentPath)
		return
	}
	baseline, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v (generate one with -update)\n", err)
		os.Exit(2)
	}

	base, err := splitvm.ParseResults(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := splitvm.ParseResults(current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(2)
	}

	rep := splitvm.CompareResults(base, cur, splitvm.DiffOptions{RelTol: *rel, AbsTol: *abs})
	if *all {
		for _, row := range rep.Rows {
			fmt.Printf("%-11s %-46s %12.0f %12.0f %+7.1f%%\n",
				row.Status, row.Name, row.Baseline, row.Current, 100*row.Delta)
		}
	}
	fmt.Print(rep)
	if rep.Failed() {
		fmt.Fprintln(os.Stderr, "benchdiff: FAIL — performance regressed against the committed baseline")
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}
