// Command annocorpus maintains the golden annotation corpus: the checked-in
// encoded module streams (internal/anno/testdata/annocorpus/) that pin every
// annotation encoding the toolchain has ever shipped.
//
// -check regenerates every corpus subject with the current encoder and fails
// when its bytes are not already checked in — the CI `compat` job runs it so
// a PR that changes any annotation encoding must also add the stream it now
// produces (old streams are immutable: they stand for the installed base).
// -update adds the missing streams and refreshes the manifest.
//
// Usage:
//
//	annocorpus -check [-dir internal/anno/testdata/annocorpus]
//	annocorpus -update [-dir internal/anno/testdata/annocorpus]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
)

func main() {
	dir := flag.String("dir", "internal/anno/testdata/annocorpus", "corpus directory")
	check := flag.Bool("check", false, "fail if the current encoder's output is not in the corpus")
	update := flag.Bool("update", false, "add the current encoder's output to the corpus")
	flag.Parse()

	switch {
	case *check == *update:
		fmt.Fprintln(os.Stderr, "annocorpus: pass exactly one of -check or -update")
		os.Exit(2)
	case *update:
		added, err := corpus.Update(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "annocorpus: %v\n", err)
			os.Exit(1)
		}
		if len(added) == 0 {
			fmt.Println("annocorpus: corpus already covers the current encoder output")
			return
		}
		for _, f := range added {
			fmt.Printf("annocorpus: added %s\n", f)
		}
		fmt.Printf("annocorpus: %d stream(s) added; commit them together with the encoder change\n", len(added))
	case *check:
		problems, err := corpus.Check(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "annocorpus: %v\n", err)
			os.Exit(1)
		}
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "annocorpus: %s\n", p)
			}
			os.Exit(1)
		}
		fmt.Println("annocorpus: corpus covers the current encoder output")
	}
}
