// Command svrun deploys an encoded bytecode module on one simulated target
// (decode, verify, JIT) and runs an entry point with integer or float
// arguments, printing the result and the cycle count. With -interp it runs
// the reference interpreter instead of the JIT.
//
// Usage:
//
//	svrun -target x86-sse -entry sumsq app.svbc 1000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/target"
	"repro/pkg/splitvm"
)

func main() {
	arch := flag.String("target", string(target.X86SSE), "target architecture: x86-sse, ultrasparc, powerpc, spu, mcu")
	entry := flag.String("entry", "main", "entry point method")
	interp := flag.Bool("interp", false, "run on the reference interpreter instead of the JIT")
	regalloc := flag.String("regalloc", "split", "register allocation mode: online, split, optimal")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "svrun: missing bytecode file")
		os.Exit(2)
	}
	encoded, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	rawArgs := flag.Args()[1:]

	eng := splitvm.New()
	mod, err := eng.Load(encoded)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	sig, err := mod.Signature(*entry)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	args, err := sig.ParseArgs(rawArgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}

	if *interp {
		res, err := mod.Interpret(*entry, args...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
			os.Exit(1)
		}
		if res.Float {
			fmt.Printf("%s = %g (interpreted, %d bytecode steps)\n", *entry, res.Value.F, res.Steps)
		} else {
			fmt.Printf("%s = %d (interpreted, %d bytecode steps)\n", *entry, res.Value.I, res.Steps)
		}
		return
	}

	mode, ok := map[string]splitvm.RegAllocMode{
		"online": splitvm.RegAllocOnline, "split": splitvm.RegAllocSplit, "optimal": splitvm.RegAllocOptimal,
	}[*regalloc]
	if !ok {
		fmt.Fprintf(os.Stderr, "svrun: unknown register allocation mode %q (known: online, split, optimal)\n", *regalloc)
		os.Exit(2)
	}
	dep, err := eng.Deploy(mod,
		splitvm.WithTarget(target.Arch(*arch)),
		splitvm.WithRegAllocMode(mode),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	res, err := dep.Run(*entry, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	if sig.ReturnsFloat {
		fmt.Printf("%s = %g\n", *entry, res.F)
	} else {
		fmt.Printf("%s = %d\n", *entry, res.I)
	}
	stats := dep.Stats()
	fmt.Printf("target %s: %d cycles, %d instructions, %d spill accesses\n",
		dep.Target().Name, stats.Cycles, stats.Instructions,
		stats.SpillLoads+stats.SpillStores)
}
