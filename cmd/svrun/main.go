// Command svrun deploys an encoded bytecode module on one simulated target
// (decode, verify, JIT) and runs an entry point with integer or float
// arguments, printing the result and the cycle count. With -interp it runs
// the reference interpreter instead of the JIT.
//
// Usage:
//
//	svrun -target x86-sse -entry sumsq app.svbc 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/vm"
)

func main() {
	arch := flag.String("target", string(target.X86SSE), "target architecture: x86-sse, ultrasparc, powerpc, spu, mcu")
	entry := flag.String("entry", "main", "entry point method")
	interp := flag.Bool("interp", false, "run on the reference interpreter instead of the JIT")
	regalloc := flag.String("regalloc", "split", "register allocation mode: online, split, optimal")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "svrun: missing bytecode file")
		os.Exit(2)
	}
	encoded, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	rawArgs := flag.Args()[1:]

	if *interp {
		runInterp(encoded, *entry, rawArgs)
		return
	}

	tgt, err := target.Lookup(target.Arch(*arch))
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	mode := map[string]jit.RegAllocMode{
		"online": jit.RegAllocOnline, "split": jit.RegAllocSplit, "optimal": jit.RegAllocOptimal,
	}[*regalloc]
	dep, err := core.Deploy(encoded, tgt, jit.Options{RegAlloc: mode})
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	m := dep.Module.Method(*entry)
	if m == nil {
		fmt.Fprintf(os.Stderr, "svrun: no method %q in module\n", *entry)
		os.Exit(1)
	}
	simArgs, err := parseSimArgs(m, rawArgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	res, err := dep.Run(*entry, simArgs...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	if m.Ret.Kind.IsFloat() {
		fmt.Printf("%s = %g\n", *entry, res.F)
	} else {
		fmt.Printf("%s = %d\n", *entry, res.I)
	}
	fmt.Printf("target %s: %d cycles, %d instructions, %d spill accesses\n",
		tgt.Name, dep.Machine.Stats.Cycles, dep.Machine.Stats.Instructions,
		dep.Machine.Stats.SpillLoads+dep.Machine.Stats.SpillStores)
}

func parseSimArgs(m *cil.Method, raw []string) ([]sim.Value, error) {
	if len(raw) != len(m.Params) {
		return nil, fmt.Errorf("%s expects %d arguments, got %d", m.Name, len(m.Params), len(raw))
	}
	out := make([]sim.Value, len(raw))
	for i, s := range raw {
		p := m.Params[i]
		if p.IsArray() {
			return nil, fmt.Errorf("argument %d of %s is an array; array arguments are only supported programmatically", i+1, m.Name)
		}
		if p.Kind.IsFloat() || strings.Contains(s, ".") {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, err
			}
			out[i] = sim.FloatArg(v)
			continue
		}
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return nil, err
		}
		out[i] = sim.IntArg(v)
	}
	return out, nil
}

func runInterp(encoded []byte, entry string, raw []string) {
	rt, err := vm.Load(encoded)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	m := rt.Module.Method(entry)
	if m == nil {
		fmt.Fprintf(os.Stderr, "svrun: no method %q in module\n", entry)
		os.Exit(1)
	}
	args := make([]vm.Value, len(raw))
	for i, s := range raw {
		if i >= len(m.Params) {
			break
		}
		if m.Params[i].Kind.IsFloat() {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
				os.Exit(1)
			}
			args[i] = vm.FloatValue(m.Params[i].Kind, v)
			continue
		}
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
			os.Exit(1)
		}
		args[i] = vm.IntValue(m.Params[i].Kind, v)
	}
	res, err := rt.Call(entry, args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svrun: %v\n", err)
		os.Exit(1)
	}
	if m.Ret.Kind.IsFloat() {
		fmt.Printf("%s = %g (interpreted, %d bytecode steps)\n", entry, res.Float(), rt.Steps)
	} else {
		fmt.Printf("%s = %d (interpreted, %d bytecode steps)\n", entry, res.Int(), rt.Steps)
	}
}
