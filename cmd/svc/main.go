// Command svc is the offline compiler of the split toolchain: it compiles
// MiniC source files to the portable, annotated bytecode format.
//
// Usage:
//
//	svc -o app.svbc [-novec] [-noannot] [-disasm] file.mc...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/pkg/splitvm"
)

func main() {
	out := flag.String("o", "app.svbc", "output bytecode file")
	name := flag.String("name", "app", "module name")
	novec := flag.Bool("novec", false, "disable the auto-vectorizer")
	noannot := flag.Bool("noannot", false, "strip all split-compilation annotations")
	disasm := flag.Bool("disasm", false, "print the bytecode disassembly to stdout")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "svc: no input files")
		os.Exit(2)
	}
	var src strings.Builder
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svc: %v\n", err)
			os.Exit(1)
		}
		src.Write(data)
		src.WriteString("\n")
	}

	eng := splitvm.New()
	mod, err := eng.Compile(src.String(),
		splitvm.WithModuleName(*name),
		splitvm.WithVectorize(!*novec),
		splitvm.WithAnnotations(!*noannot),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svc: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, mod.Encoded(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "svc: %v\n", err)
		os.Exit(1)
	}
	stats := mod.Stats()
	fmt.Printf("svc: wrote %s (%d bytes, %d bytes of annotations, %d methods)\n",
		*out, stats.EncodedBytes, stats.AnnotationBytes, len(mod.Methods()))
	if *disasm {
		fmt.Println(mod.Disassemble())
	}
}
