// Package corpus builds and checks the golden annotation corpus: encoded
// module byte streams, checked in under internal/anno/testdata/annocorpus/,
// that pin down every annotation encoding the toolchain has ever shipped.
//
// The corpus is the compatibility contract of split compilation. Once a
// stream is in the corpus it never changes and never leaves: it stands for
// the installed base of modules compiled by older offline compilers, and
// every newer reader must keep loading it and deploying it with results
// identical to online-only compilation. When the encoder's output changes —
// a new schema version, a layout tweak — the change does not replace
// entries; it adds new ones (cmd/annocorpus -update), so the corpus grows
// monotonically with the format's history.
//
// cmd/annocorpus -check regenerates every (kernel, version) stream with the
// current encoder and fails when its bytes are not already in the corpus:
// the CI `compat` job uses this to force a PR that changes the encoder to
// also check in the stream it now produces. TestCorpus (internal/anno)
// decodes and deploys every checked-in stream.
package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/anno"
	"repro/internal/anno/envelope"
	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/target"
)

// Kernels are the corpus subjects: a float map kernel, a byte reduction and
// a 16-bit reduction — enough to cover the vector, regalloc and hwreq
// annotations across element kinds. Compilation is deterministic, so each
// (kernel, writer version) pair pins one exact byte stream.
var Kernels = []string{"saxpy_fp", "sum_u8", "sum_u16"}

// Versions are the writer versions the corpus covers.
var Versions = []uint32{anno.V0, anno.V1}

// SyntheticKernel names the hand-crafted corpus entry whose regalloc
// annotation declares schema version 99: a stream from the future, used to
// pin the fallback-to-online-compilation behavior.
const SyntheticKernel = "synthetic"

// SyntheticVersion is the unreadable schema version the synthetic entry
// declares.
const SyntheticVersion uint32 = 99

// syntheticSource is the MiniC source of the synthetic entry. Scalar-only,
// so the corpus test can invoke it without array marshalling.
const syntheticSource = `
i32 work(i32 n) {
    i32 acc = 0;
    for (i32 i = 0; i < n; i++) {
        acc = acc + i * i;
    }
    return acc;
}
`

// SyntheticEntryPoint is the entry point of the synthetic module, invoked
// with one small integer argument.
const SyntheticEntryPoint = "work"

// ProfiledKernel names the corpus entry whose module carries a runtime
// execution profile annotation (module-level anno.KeyProfile, schema v1):
// the stream a deployment re-exports after profiling, pinned so future
// readers keep negotiating and consuming it.
const ProfiledKernel = "profiled"

// ProfiledFutureKernel names the entry whose profile section declares
// schema version 99 — a profile from a future toolchain. Pre-profile and
// current readers must degrade to running unprofiled, never error.
const ProfiledFutureKernel = "profiled-future"

// ManifestName is the corpus index file.
const ManifestName = "MANIFEST.json"

// Entry is one checked-in stream.
type Entry struct {
	// File is the stream's file name within the corpus directory.
	File string `json:"file"`
	// Kernel is the kernel registry name, or SyntheticKernel.
	Kernel string `json:"kernel"`
	// Version is the annotation writer version the stream was produced
	// with (SyntheticVersion for the synthetic future stream).
	Version uint32 `json:"version"`
	// SHA256 is the hex digest of the file contents.
	SHA256 string `json:"sha256"`
}

// Manifest indexes the corpus.
type Manifest struct {
	Entries []Entry `json:"entries"`
}

// LoadManifest reads the corpus index; a missing file yields an empty
// manifest (the -update path starts from nothing).
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return &Manifest{}, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("corpus: parsing %s: %w", ManifestName, err)
	}
	return &m, nil
}

func (m *Manifest) save(dir string) error {
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].File < m.Entries[j].File })
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(data, '\n'), 0o644)
}

// find returns the entry matching kernel, version and digest, if any.
func (m *Manifest) find(kernel string, version uint32, sum string) *Entry {
	for i := range m.Entries {
		e := &m.Entries[i]
		if e.Kernel == kernel && e.Version == version && e.SHA256 == sum {
			return e
		}
	}
	return nil
}

// Generate produces the current encoder's byte stream for one corpus
// subject. Pass SyntheticKernel/SyntheticVersion for the future stream.
func Generate(kernel string, version uint32) ([]byte, error) {
	switch kernel {
	case SyntheticKernel:
		return generateSynthetic()
	case ProfiledKernel:
		return generateProfiled(false)
	case ProfiledFutureKernel:
		return generateProfiled(true)
	}
	res, _, err := core.CompileKernel(kernel, core.OfflineOptions{AnnotationVersion: version})
	if err != nil {
		return nil, err
	}
	return res.Encoded, nil
}

// generateSynthetic compiles the synthetic module and replaces its regalloc
// annotation with an envelope declaring schema version 99 (the current v1
// payload inside — a reader that understood 99 would still find bytes, but
// no reader does yet, which is the point).
func generateSynthetic() ([]byte, error) {
	res, err := core.CompileOffline(syntheticSource, core.OfflineOptions{
		ModuleName:        "synthetic",
		AnnotationVersion: anno.V1,
	})
	if err != nil {
		return nil, err
	}
	m := res.Module.Method(SyntheticEntryPoint)
	if m == nil {
		return nil, fmt.Errorf("corpus: synthetic module lost its entry point")
	}
	info := anno.RegAllocInfoOf(m)
	if info == nil {
		return nil, fmt.Errorf("corpus: synthetic module carries no regalloc annotation")
	}
	m.SetAnnotation(anno.KeyRegAlloc, envelope.Encode(&envelope.Envelope{Sections: []envelope.Section{
		{Name: "regalloc", Version: SyntheticVersion, Payload: anno.EncodeRegAllocInfo(info)},
	}}))
	return cil.Encode(res.Module), nil
}

// generateProfiled compiles the synthetic module, records an execution
// profile by running it in a profiling deployment, and attaches the profile
// as a module-level annotation. Execution is deterministic, so the profile
// — and with it the whole stream — is byte-stable. With future set the
// profile section declares schema version 99 instead of v1.
func generateProfiled(future bool) ([]byte, error) {
	res, err := core.CompileOffline(syntheticSource, core.OfflineOptions{
		ModuleName:        "profiled",
		AnnotationVersion: anno.V1,
	})
	if err != nil {
		return nil, err
	}
	tgt, err := target.Lookup(target.MCU)
	if err != nil {
		return nil, err
	}
	dep, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		return nil, err
	}
	dep.EnableTiering(core.TierOptions{Policy: profile.Policy{PromoteCalls: -1}}) // profile only
	for i := 0; i < 3; i++ {
		if _, err := dep.Run(SyntheticEntryPoint, sim.IntArg(16)); err != nil {
			return nil, err
		}
	}
	p := dep.ExportProfile()
	if future {
		res.Module.SetAnnotation(anno.KeyProfile, envelope.Encode(&envelope.Envelope{Sections: []envelope.Section{
			{Name: "profile", Version: SyntheticVersion, Payload: p.Encode()},
		}}))
	} else if err := anno.AttachProfileV(res.Module, p, anno.V1); err != nil {
		return nil, err
	}
	return cil.Encode(res.Module), nil
}

// subject is one (kernel, writer version) pair the corpus must cover.
type subject struct {
	kernel  string
	version uint32
}

// subjects enumerates every pair the corpus must cover.
func subjects() []subject {
	var out []subject
	for _, k := range Kernels {
		for _, v := range Versions {
			out = append(out, subject{kernel: k, version: v})
		}
	}
	out = append(out, subject{kernel: SyntheticKernel, version: SyntheticVersion})
	out = append(out, subject{kernel: ProfiledKernel, version: anno.V1})
	return append(out, subject{kernel: ProfiledFutureKernel, version: SyntheticVersion})
}

func digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Check verifies the corpus is complete and intact. It returns a list of
// problems (empty means the gate passes): a current encoder output whose
// bytes are not checked in, a manifest entry whose file is missing or
// altered, or a stream file the manifest does not know.
func Check(dir string) ([]string, error) {
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, s := range subjects() {
		data, err := Generate(s.kernel, s.version)
		if err != nil {
			return nil, fmt.Errorf("corpus: generating %s v%d: %w", s.kernel, s.version, err)
		}
		if man.find(s.kernel, s.version, digest(data)) == nil {
			problems = append(problems, fmt.Sprintf(
				"encoder output for %s (writer v%d) is not in the corpus — the encoding changed; run `go run ./cmd/annocorpus -update` and commit the new stream",
				s.kernel, s.version))
		}
	}
	known := map[string]bool{ManifestName: true}
	for _, e := range man.Entries {
		known[e.File] = true
		data, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			problems = append(problems, fmt.Sprintf("corpus entry %s: %v", e.File, err))
			continue
		}
		if digest(data) != e.SHA256 {
			problems = append(problems, fmt.Sprintf(
				"corpus entry %s was modified (checked-in streams are immutable; add new entries instead)", e.File))
		}
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		if !f.IsDir() && !known[f.Name()] {
			problems = append(problems, fmt.Sprintf("stray file %s not in %s", f.Name(), ManifestName))
		}
	}
	return problems, nil
}

// Update adds the current encoder outputs that are missing from the corpus
// and returns the files it created. Existing entries are never touched.
func Update(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	var added []string
	for _, s := range subjects() {
		data, err := Generate(s.kernel, s.version)
		if err != nil {
			return nil, fmt.Errorf("corpus: generating %s v%d: %w", s.kernel, s.version, err)
		}
		sum := digest(data)
		if man.find(s.kernel, s.version, sum) != nil {
			continue
		}
		name := fmt.Sprintf("%s_v%d_%s.svbc", s.kernel, s.version, sum[:8])
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return nil, err
		}
		man.Entries = append(man.Entries, Entry{File: name, Kernel: s.kernel, Version: s.version, SHA256: sum})
		added = append(added, name)
	}
	if len(added) > 0 {
		if err := man.save(dir); err != nil {
			return nil, err
		}
	}
	return added, nil
}

// verifyTargets are the deployment targets every corpus stream is checked
// on: one SIMD-capable desktop-class core and the register-starved
// microcontroller without a vector unit, so both the mapped and the
// scalarized lowering paths are pinned.
var verifyTargets = []target.Arch{target.X86SSE, target.MCU}

// VerifyEntry decodes one checked-in stream and deploys it twice per target
// — once consuming its annotations (split register allocation), once
// online-only from a fully stripped clone — and fails unless both produce
// identical results. For the synthetic future stream it additionally
// asserts that negotiation fell back (and that the fallback surfaced
// without any error).
func VerifyEntry(dir string, e Entry) error {
	data, err := os.ReadFile(filepath.Join(dir, e.File))
	if err != nil {
		return err
	}
	if digest(data) != e.SHA256 {
		return fmt.Errorf("%s: digest mismatch with manifest", e.File)
	}
	mod, err := cil.Decode(data)
	if err != nil {
		return fmt.Errorf("%s: stream no longer decodes: %w", e.File, err)
	}
	strippedBytes := cil.Encode(mod.StripAnnotations())

	// The profile entries additionally pin the negotiation outcome of the
	// module-level profile annotation itself: the v1 stream must still be
	// consumable, the future stream must degrade to nil (run unprofiled),
	// and neither may error.
	switch e.Kernel {
	case ProfiledKernel:
		if anno.ProfileOf(mod) == nil {
			return fmt.Errorf("%s: v1 profile annotation no longer negotiates", e.File)
		}
	case ProfiledFutureKernel:
		if anno.ProfileOf(mod) != nil {
			return fmt.Errorf("%s: future profile annotation unexpectedly negotiated", e.File)
		}
	}

	for _, arch := range verifyTargets {
		tgt, err := target.Lookup(arch)
		if err != nil {
			return err
		}
		annotated, err := core.Deploy(data, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
		if err != nil {
			return fmt.Errorf("%s on %s: deploying with annotations: %w", e.File, arch, err)
		}
		online, err := core.Deploy(strippedBytes, tgt, jit.Options{RegAlloc: jit.RegAllocOnline})
		if err != nil {
			return fmt.Errorf("%s on %s: deploying online-only: %w", e.File, arch, err)
		}

		wantFallbacks := e.Kernel == SyntheticKernel || e.Kernel == ProfiledFutureKernel
		if wantFallbacks && annotated.AnnotationFallbacks == 0 {
			return fmt.Errorf("%s on %s: future annotation did not register a fallback", e.File, arch)
		}
		if !wantFallbacks && annotated.AnnotationFallbacks != 0 {
			return fmt.Errorf("%s on %s: unexpected annotation fallbacks: %+v", e.File, arch, annotated.AnnotationOutcomes)
		}

		if e.Kernel == SyntheticKernel || e.Kernel == ProfiledKernel || e.Kernel == ProfiledFutureKernel {
			if err := compareScalarRun(annotated, online); err != nil {
				return fmt.Errorf("%s on %s: %w", e.File, arch, err)
			}
			continue
		}
		if err := compareKernelRun(e.Kernel, annotated, online); err != nil {
			return fmt.Errorf("%s on %s: %w", e.File, arch, err)
		}
	}
	return nil
}

func compareScalarRun(annotated, online *core.Deployment) error {
	const n = 37
	a, err := annotated.Run(SyntheticEntryPoint, sim.IntArg(n))
	if err != nil {
		return fmt.Errorf("running with annotations: %w", err)
	}
	b, err := online.Run(SyntheticEntryPoint, sim.IntArg(n))
	if err != nil {
		return fmt.Errorf("running online-only: %w", err)
	}
	if a.I != b.I || a.F != b.F {
		return fmt.Errorf("deploy results diverge: annotated %+v, online-only %+v", a, b)
	}
	return nil
}

func compareKernelRun(name string, annotated, online *core.Deployment) error {
	k, err := kernels.Get(name)
	if err != nil {
		return err
	}
	in, err := kernels.NewInputs(name, 512, 7)
	if err != nil {
		return err
	}
	a, err := annotated.RunKernel(k, in)
	if err != nil {
		return fmt.Errorf("running with annotations: %w", err)
	}
	b, err := online.RunKernel(k, in)
	if err != nil {
		return fmt.Errorf("running online-only: %w", err)
	}
	// Map kernels return void — their observable result is the output
	// arrays; only reductions have a meaningful scalar result.
	if k.Reduction && (a.Result.I != b.Result.I || a.Result.F != b.Result.F) {
		return fmt.Errorf("deploy results diverge: annotated %+v, online-only %+v", a.Result, b.Result)
	}
	if len(a.Outputs) != len(b.Outputs) {
		return fmt.Errorf("output array counts diverge: %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	for i := range a.Outputs {
		if !bytes.Equal(a.Outputs[i].Data, b.Outputs[i].Data) {
			return fmt.Errorf("output array %d diverges between annotated and online-only deploys", i)
		}
	}
	return nil
}
