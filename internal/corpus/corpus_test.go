package corpus

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUpdateThenCheck exercises the corpus life cycle in a scratch
// directory: -update populates it, -check passes, and -check flags a
// tampered stream, a stray file, and a missing coverage entry.
func TestUpdateThenCheck(t *testing.T) {
	dir := t.TempDir()

	added, err := Update(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := len(Kernels)*len(Versions) + 3 // + synthetic, profiled, profiled-future
	if len(added) != wantEntries {
		t.Fatalf("Update added %d streams, want %d", len(added), wantEntries)
	}
	problems, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("fresh corpus should check clean, got: %v", problems)
	}

	// A second update is a no-op: the corpus already covers the encoder.
	added, err = Update(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 {
		t.Fatalf("repeated Update added %v", added)
	}

	// Tampering with a checked-in stream must be flagged: corpus entries
	// are immutable stand-ins for the installed base.
	tampered := filepath.Join(dir, problemsFreeFirstFile(t, dir))
	data, err := os.ReadFile(tampered)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(tampered, data, 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err = Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !anyContains(problems, "was modified") {
		t.Errorf("tampered stream not flagged: %v", problems)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(tampered, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A stray unindexed file is flagged.
	stray := filepath.Join(dir, "stray.svbc")
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err = Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !anyContains(problems, "stray file") {
		t.Errorf("stray file not flagged: %v", problems)
	}
	if err := os.Remove(stray); err != nil {
		t.Fatal(err)
	}

	// Dropping an entry from the manifest makes the current encoder output
	// uncovered — the exact situation -check exists to catch.
	man, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Entries = man.Entries[1:]
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err = Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !anyContains(problems, "not in the corpus") {
		t.Errorf("missing coverage not flagged: %v", problems)
	}
}

// TestGenerateDeterministic pins the property the whole corpus scheme rests
// on: compiling the same subject twice yields identical bytes.
func TestGenerateDeterministic(t *testing.T) {
	for _, k := range Kernels {
		for _, v := range Versions {
			a, err := Generate(k, v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(k, v)
			if err != nil {
				t.Fatal(err)
			}
			if digest(a) != digest(b) {
				t.Errorf("Generate(%s, v%d) is not deterministic", k, v)
			}
		}
	}
	for _, k := range []string{SyntheticKernel, ProfiledKernel, ProfiledFutureKernel} {
		a, err := Generate(k, SyntheticVersion)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(k, SyntheticVersion)
		if err != nil {
			t.Fatal(err)
		}
		if digest(a) != digest(b) {
			t.Errorf("%s stream is not deterministic", k)
		}
	}
}

// TestV0V1SameDeployBehavior asserts the v1 envelope is a pure re-encoding:
// the decoded annotation info drives the split allocator to the same
// decisions as the v0 stream (identical spill statistics and cycles).
func TestV0V1SameDeployBehavior(t *testing.T) {
	dir := t.TempDir()
	if _, err := Update(dir); err != nil {
		t.Fatal(err)
	}
	man, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range man.Entries {
		if err := VerifyEntry(dir, e); err != nil {
			t.Errorf("%s: %v", e.File, err)
		}
	}
}

func problemsFreeFirstFile(t *testing.T, dir string) string {
	t.Helper()
	man, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Entries) == 0 {
		t.Fatal("empty manifest")
	}
	return man.Entries[0].File
}

func anyContains(list []string, substr string) bool {
	for _, s := range list {
		if strings.Contains(s, substr) {
			return true
		}
	}
	return false
}
