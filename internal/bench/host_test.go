package bench

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/target"
)

func TestRunHostMeasuresEveryCell(t *testing.T) {
	r, err := RunHost(HostOptions{N: 256, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kernels.Table1Names) * len(target.Table1()); len(r.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(r.Cells), want)
	}
	for _, c := range r.Cells {
		if c.SimInstructions <= 0 || c.SimCycles <= 0 {
			t.Errorf("%s/%s: missing simulated counts: %+v", c.Kernel, c.Target, c)
		}
		if c.HostNanosPerRun <= 0 || c.SimMIPS <= 0 {
			t.Errorf("%s/%s: missing host measurements: %+v", c.Kernel, c.Target, c)
		}
		// The steady-state dispatch loop is allocation-free; leave headroom
		// for incidental runtime allocations (GC bookkeeping) only.
		if c.AllocsPerRun > 1 {
			t.Errorf("%s/%s: %v allocs/run in the steady-state loop, want ~0", c.Kernel, c.Target, c.AllocsPerRun)
		}
	}
	if s := r.String(); !strings.Contains(s, "sim MIPS") || !strings.Contains(s, "saxpy_fp") {
		t.Errorf("report rendering looks wrong:\n%s", s)
	}
}

// TestHostSectionIsTrackedNotGated pins the compatibility contract of the
// host-throughput section: artifacts without it (old baselines) compare
// cleanly against artifacts with it, and none of its values ever become
// gated metrics.
func TestHostSectionIsTrackedNotGated(t *testing.T) {
	baseline := sampleResults() // pre-host schema: Host == nil
	current := clone(t, sampleResults())
	current.Host = &HostReport{
		Options: HostOptions{N: 256, Runs: 3},
		Cells: []HostCell{{
			Kernel: "saxpy_fp", Target: target.X86SSE, Runs: 3,
			SimInstructions: 1000, SimCycles: 4000,
			HostNanosPerRun: 12345, SimMIPS: 100,
		}},
	}

	for _, m := range current.Metrics() {
		if strings.HasPrefix(m.Name, "host/") {
			t.Errorf("host metric %q leaked into the gated metric set", m.Name)
		}
	}
	if got, want := len(current.Metrics()), len(baseline.Metrics()); got != want {
		t.Errorf("host section changed the gated metric count: %d != %d", got, want)
	}
	rep := Compare(baseline, current, DiffOptions{})
	if rep.Failed() {
		t.Fatalf("host section must not fail the gate:\n%s", rep)
	}
	if rep.New != 0 {
		t.Errorf("host section produced %d unexpected new gated metrics", rep.New)
	}

	// Round-tripping an artifact that carries the host section keeps it.
	if again := clone(t, current); again.Host == nil || len(again.Host.Cells) != 1 {
		t.Error("host section lost in the JSON round trip")
	}
}
