package bench

import (
	"testing"
	"time"
)

func TestServeSummarize(t *testing.T) {
	if s := summarize(nil); s.Count != 0 || s.P50Nanos != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		// Reverse order: summarize must sort before ranking.
		samples[i] = time.Duration(100-i) * time.Microsecond
	}
	s := summarize(samples)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := time.Duration(s.P50Nanos); got != 50*time.Microsecond {
		t.Errorf("p50 = %v", got)
	}
	if got := time.Duration(s.P95Nanos); got != 95*time.Microsecond {
		t.Errorf("p95 = %v", got)
	}
	if got := time.Duration(s.P99Nanos); got != 99*time.Microsecond {
		t.Errorf("p99 = %v", got)
	}
	if got := time.Duration(s.MaxNanos); got != 100*time.Microsecond {
		t.Errorf("max = %v", got)
	}
	if got := time.Duration(s.MeanNanos); got != 50500*time.Nanosecond {
		t.Errorf("mean = %v", got)
	}
}

func TestRunServeRequiresHarness(t *testing.T) {
	if _, err := RunServe(ServeOptions{}); err == nil {
		t.Error("RunServe without a harness did not error")
	}
}
