package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// The serve experiment measures the deploy daemon itself: request latency
// of the svd HTTP API (deploy and run percentiles), the warm-restart
// speedup a persistent disk cache buys, and the overhead of fronting the
// fleet with the consistent-hash router. Wall-clock and host-dependent like
// the host/compile/tier families, so tracked in BENCH_results.json but
// never gated by cmd/benchdiff.
//
// The package under measurement (pkg/splitvm/server) sits above this one in
// the import graph — pkg/splitvm re-exports internal/bench — so the servers
// are injected: cmd/dacbench wires server.New and server.NewRouter into a
// ServeHarness.

// ServeHarness wires the HTTP servers under measurement into RunServe.
type ServeHarness struct {
	// NewBackend returns a ready http.Handler over a fresh engine, its code
	// cache backed by cacheDir and its deployment table by journalPath when
	// non-empty ("" = memory only), plus a closer that releases the server's
	// pools. When journalPath exists, construction replays it.
	NewBackend func(cacheDir, journalPath string) (http.Handler, func())
	// NewRouter returns a router handler over the given backend base URLs,
	// plus a closer.
	NewRouter func(backends []string) (http.Handler, func(), error)
}

// ServeOptions parameterizes the serving-latency measurement.
type ServeOptions struct {
	// Runs is the number of timed requests per latency distribution.
	Runs int
	// N is the scalar workload size per run request.
	N int
	// Harness provides the servers under test (required; not serialized).
	Harness *ServeHarness `json:"-"`
}

func (o *ServeOptions) defaults() {
	if o.Runs == 0 {
		o.Runs = 48
	}
	if o.N == 0 {
		o.N = 512
	}
}

// serveSource is the module the servers deploy and run: scalar args only,
// so the run endpoint's textual argument parsing applies.
const serveSource = `
i64 sumsq(i32 n) {
    i64 s = 0;
    for (i32 i = 1; i <= n; i++) { s = s + (i64) (i * i); }
    return s;
}
`

// ServeLatency is one request-latency distribution (nanoseconds,
// nearest-rank percentiles over all Runs samples).
type ServeLatency struct {
	Count     int   `json:"count"`
	MeanNanos int64 `json:"mean_nanos"`
	P50Nanos  int64 `json:"p50_nanos"`
	P95Nanos  int64 `json:"p95_nanos"`
	P99Nanos  int64 `json:"p99_nanos"`
	MaxNanos  int64 `json:"max_nanos"`
}

func summarize(samples []time.Duration) ServeLatency {
	s := ServeLatency{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	rank := func(p int) int64 {
		r := (len(sorted)*p + 99) / 100
		if r < 1 {
			r = 1
		}
		return int64(sorted[r-1])
	}
	s.MeanNanos = int64(sum) / int64(len(sorted))
	s.P50Nanos = rank(50)
	s.P95Nanos = rank(95)
	s.P99Nanos = rank(99)
	s.MaxNanos = int64(sorted[len(sorted)-1])
	return s
}

// ServeReport is the serving-latency measurement.
type ServeReport struct {
	Options   ServeOptions
	GoVersion string
	NumCPU    int

	// Deploy is the latency of warm deploy requests (code-cache hits — the
	// steady state of a fleet); Run is the latency of run requests on one
	// deployment. Both against a single directly-hit backend.
	Deploy ServeLatency
	Run    ServeLatency

	// The warm-restart phase: one backend compiles cold into a disk cache,
	// is torn down, and a fresh backend over the same directory deploys the
	// same module. WarmFromCache and WarmCompilations are the correctness
	// half (must be true / 0); the speedup is the performance half.
	ColdDeployNanos  int64 `json:"cold_deploy_nanos"`
	WarmDeployNanos  int64 `json:"warm_deploy_nanos"`
	WarmFromCache    bool  `json:"warm_from_cache"`
	WarmCompilations int64 `json:"warm_compilations"`
	// WarmRestartSpeedup is ColdDeployNanos / WarmDeployNanos.
	WarmRestartSpeedup float64 `json:"warm_restart_speedup"`

	// RouterRun is the run-request latency through a router fronting two
	// backends; RouterOverheadNanos is its p50 minus the direct p50 — the
	// per-request cost of the extra hop.
	RouterBackends      int          `json:"router_backends"`
	RouterRun           ServeLatency `json:"router_run"`
	RouterOverheadNanos int64        `json:"router_overhead_nanos"`

	// The recovery phase: how fast the fault-tolerance machinery restores
	// service. FailoverRunNanos is one run through the router after its
	// deployment's backend was torn down — re-deploy on the survivor plus
	// the retried run. JournalReplayNanos is the construction time of a
	// backend restarted over its journal and disk cache;
	// JournalReplayDeployments and JournalReplayCompilations are the
	// correctness half (the deployment must be back, with zero compiles).
	FailoverRunNanos          int64 `json:"failover_run_nanos"`
	JournalReplayNanos        int64 `json:"journal_replay_nanos"`
	JournalReplayDeployments  int   `json:"journal_replay_deployments"`
	JournalReplayCompilations int64 `json:"journal_replay_compilations"`
}

// serveClient is the minimal HTTP client of the measurement; responses are
// decoded into anonymous structs so this package needs none of the server's
// types.
type serveClient struct {
	base   string
	client *http.Client
}

func (c *serveClient) postJSON(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.client.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, msg)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *serveClient) getJSON(path string, out any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, msg)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *serveClient) upload(encoded []byte) (string, error) {
	resp, err := c.client.Post(c.base+"/v1/modules", "application/octet-stream", bytes.NewReader(encoded))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var info struct {
		ID string `json:"id"`
	}
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("upload: status %d: %s", resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", err
	}
	return info.ID, nil
}

type serveDeployInfo struct {
	ID        string `json:"id"`
	FromCache bool   `json:"from_cache"`
}

// deployOnce posts one single-target deploy and returns the deployment and
// the request's wall-clock time.
func (c *serveClient) deployOnce(module string) (serveDeployInfo, time.Duration, error) {
	var dr struct {
		Deployments []serveDeployInfo `json:"deployments"`
	}
	start := time.Now()
	err := c.postJSON("/v1/deploy", map[string]any{"module": module, "targets": []string{"x86-sse"}}, &dr)
	elapsed := time.Since(start)
	if err != nil {
		return serveDeployInfo{}, 0, err
	}
	if len(dr.Deployments) != 1 {
		return serveDeployInfo{}, 0, fmt.Errorf("deploy returned %d deployments", len(dr.Deployments))
	}
	return dr.Deployments[0], elapsed, nil
}

// timeRuns posts runs invocations of the module's entry point against one
// deployment and returns the per-request durations.
func (c *serveClient) timeRuns(depID string, n, runs int) ([]time.Duration, error) {
	out := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		var rr struct {
			Value int64 `json:"value"`
		}
		start := time.Now()
		err := c.postJSON("/v1/deployments/"+depID+"/run",
			map[string]any{"entry": "sumsq", "args": []string{fmt.Sprint(n)}}, &rr)
		elapsed := time.Since(start)
		if err != nil {
			return nil, err
		}
		if rr.Value == 0 {
			return nil, fmt.Errorf("run returned 0")
		}
		out = append(out, elapsed)
	}
	return out, nil
}

// RunServe measures the deploy daemon: warm deploy and run latency against
// a single backend, the warm-restart speedup of the persistent disk cache,
// and the router's per-request overhead over a two-backend fleet.
func RunServe(opts ServeOptions) (*ServeReport, error) {
	opts.defaults()
	if opts.Harness == nil || opts.Harness.NewBackend == nil || opts.Harness.NewRouter == nil {
		return nil, errors.New("bench: ServeOptions.Harness is required (wired by cmd/dacbench)")
	}
	report := &ServeReport{Options: opts, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU()}

	offline, err := core.CompileOffline(serveSource, core.OfflineOptions{ModuleName: "servebench"})
	if err != nil {
		return nil, fmt.Errorf("bench: serve: %w", err)
	}
	encoded := offline.Encoded

	// Phase 1: deploy/run latency on one directly-hit backend.
	if err := func() error {
		h, closeBackend := opts.Harness.NewBackend("", "")
		ts := httptest.NewServer(h)
		defer func() { ts.Close(); closeBackend() }()
		c := &serveClient{base: ts.URL, client: ts.Client()}
		id, err := c.upload(encoded)
		if err != nil {
			return err
		}
		// First deploy compiles; the timed distribution is the steady state
		// (cache hits).
		first, _, err := c.deployOnce(id)
		if err != nil {
			return err
		}
		deploys := make([]time.Duration, 0, opts.Runs)
		for i := 0; i < opts.Runs; i++ {
			_, d, err := c.deployOnce(id)
			if err != nil {
				return err
			}
			deploys = append(deploys, d)
		}
		report.Deploy = summarize(deploys)
		runs, err := c.timeRuns(first.ID, opts.N, opts.Runs)
		if err != nil {
			return err
		}
		report.Run = summarize(runs)
		return nil
	}(); err != nil {
		return nil, fmt.Errorf("bench: serve: backend phase: %w", err)
	}

	// Phase 2: warm restart through the disk cache.
	if err := func() error {
		dir, err := os.MkdirTemp("", "servebench-cache-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)

		h, closeBackend := opts.Harness.NewBackend(dir, "")
		ts := httptest.NewServer(h)
		c := &serveClient{base: ts.URL, client: ts.Client()}
		id, err := c.upload(encoded)
		if err != nil {
			ts.Close()
			closeBackend()
			return err
		}
		cold, coldNanos, err := c.deployOnce(id)
		if err != nil {
			ts.Close()
			closeBackend()
			return err
		}
		if cold.FromCache {
			return errors.New("cold deploy reported from_cache")
		}
		ts.Close()
		closeBackend()

		// The restart: a new server and engine over the same cache volume.
		h2, closeBackend2 := opts.Harness.NewBackend(dir, "")
		ts2 := httptest.NewServer(h2)
		defer func() { ts2.Close(); closeBackend2() }()
		c2 := &serveClient{base: ts2.URL, client: ts2.Client()}
		if _, err := c2.upload(encoded); err != nil {
			return err
		}
		warm, warmNanos, err := c2.deployOnce(id)
		if err != nil {
			return err
		}
		var st struct {
			Compile struct {
				Compilations int64 `json:"compilations"`
			} `json:"compile"`
		}
		if err := c2.getJSON("/v1/stats", &st); err != nil {
			return err
		}
		report.ColdDeployNanos = coldNanos.Nanoseconds()
		report.WarmDeployNanos = warmNanos.Nanoseconds()
		report.WarmFromCache = warm.FromCache
		report.WarmCompilations = st.Compile.Compilations
		if warmNanos > 0 {
			report.WarmRestartSpeedup = float64(coldNanos) / float64(warmNanos)
		}
		return nil
	}(); err != nil {
		return nil, fmt.Errorf("bench: serve: warm-restart phase: %w", err)
	}

	// Phase 3: the router's extra hop over a two-backend fleet.
	if err := func() error {
		const fleet = 2
		report.RouterBackends = fleet
		var urls []string
		for i := 0; i < fleet; i++ {
			h, closeBackend := opts.Harness.NewBackend("", "")
			ts := httptest.NewServer(h)
			defer func() { ts.Close(); closeBackend() }()
			urls = append(urls, ts.URL)
		}
		rh, closeRouter, err := opts.Harness.NewRouter(urls)
		if err != nil {
			return err
		}
		front := httptest.NewServer(rh)
		defer func() { front.Close(); closeRouter() }()
		c := &serveClient{base: front.URL, client: front.Client()}
		id, err := c.upload(encoded)
		if err != nil {
			return err
		}
		dep, _, err := c.deployOnce(id)
		if err != nil {
			return err
		}
		runs, err := c.timeRuns(dep.ID, opts.N, opts.Runs)
		if err != nil {
			return err
		}
		report.RouterRun = summarize(runs)
		report.RouterOverheadNanos = report.RouterRun.P50Nanos - report.Run.P50Nanos
		return nil
	}(); err != nil {
		return nil, fmt.Errorf("bench: serve: router phase: %w", err)
	}

	// Phase 4: recovery. First the router's run failover — kill the backend
	// holding the deployment and time the run that re-homes it — then the
	// journal replay of a SIGKILLed backend over its disk cache.
	if err := func() error {
		var urls []string
		var servers []*httptest.Server
		for i := 0; i < 2; i++ {
			h, closeBackend := opts.Harness.NewBackend("", "")
			ts := httptest.NewServer(h)
			defer closeBackend()
			servers = append(servers, ts)
			urls = append(urls, ts.URL)
		}
		defer func() {
			for _, ts := range servers {
				ts.Close()
			}
		}()
		rh, closeRouter, err := opts.Harness.NewRouter(urls)
		if err != nil {
			return err
		}
		front := httptest.NewServer(rh)
		defer func() { front.Close(); closeRouter() }()
		c := &serveClient{base: front.URL, client: front.Client()}
		id, err := c.upload(encoded)
		if err != nil {
			return err
		}
		dep, _, err := c.deployOnce(id)
		if err != nil {
			return err
		}
		// The namespaced id names its backend ("b0." or "b1."); kill it.
		victim := 0
		if strings.HasPrefix(dep.ID, "b1.") {
			victim = 1
		}
		servers[victim].CloseClientConnections()
		servers[victim].Close()
		runs, err := c.timeRuns(dep.ID, opts.N, 1)
		if err != nil {
			return fmt.Errorf("failover run: %w", err)
		}
		report.FailoverRunNanos = int64(runs[0])
		return nil
	}(); err != nil {
		return nil, fmt.Errorf("bench: serve: failover phase: %w", err)
	}

	if err := func() error {
		dir, err := os.MkdirTemp("", "servebench-journal-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cacheDir := dir + "/cache"
		journalPath := dir + "/svd.journal"

		h, closeBackend := opts.Harness.NewBackend(cacheDir, journalPath)
		ts := httptest.NewServer(h)
		c := &serveClient{base: ts.URL, client: ts.Client()}
		id, err := c.upload(encoded)
		if err != nil {
			ts.Close()
			closeBackend()
			return err
		}
		if _, _, err := c.deployOnce(id); err != nil {
			ts.Close()
			closeBackend()
			return err
		}
		// SIGKILL-like: no graceful close of the server, just the listener.
		ts.Close()

		start := time.Now()
		h2, closeBackend2 := opts.Harness.NewBackend(cacheDir, journalPath)
		report.JournalReplayNanos = time.Since(start).Nanoseconds()
		ts2 := httptest.NewServer(h2)
		defer func() { ts2.Close(); closeBackend2(); closeBackend() }()
		c2 := &serveClient{base: ts2.URL, client: ts2.Client()}
		var st struct {
			Deployments int `json:"deployments"`
			Compile     struct {
				Compilations int64 `json:"compilations"`
			} `json:"compile"`
		}
		if err := c2.getJSON("/v1/stats", &st); err != nil {
			return err
		}
		report.JournalReplayDeployments = st.Deployments
		report.JournalReplayCompilations = st.Compile.Compilations
		return nil
	}(); err != nil {
		return nil, fmt.Errorf("bench: serve: journal-replay phase: %w", err)
	}

	return report, nil
}

// String renders the serving-latency report.
func (r *ServeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving latency: svd HTTP API on this host (%d runs/distribution, n=%d, %s, %d CPUs)\n",
		r.Options.Runs, r.Options.N, r.GoVersion, r.NumCPU)
	b.WriteString("wall-clock numbers are host-dependent; they are tracked, not gated\n\n")
	fmt.Fprintf(&b, "%-22s %8s %12s %12s %12s %12s\n", "distribution", "count", "p50", "p95", "p99", "max")
	b.WriteString(strings.Repeat("-", 84) + "\n")
	row := func(name string, l ServeLatency) {
		fmt.Fprintf(&b, "%-22s %8d %12s %12s %12s %12s\n", name, l.Count,
			time.Duration(l.P50Nanos), time.Duration(l.P95Nanos), time.Duration(l.P99Nanos), time.Duration(l.MaxNanos))
	}
	row("deploy (cache hit)", r.Deploy)
	row("run (direct)", r.Run)
	row("run (via router)", r.RouterRun)
	fmt.Fprintf(&b, "\nwarm restart: cold deploy %s -> warm deploy %s (%.1fx, from_cache=%t, %d compilations after restart)\n",
		time.Duration(r.ColdDeployNanos), time.Duration(r.WarmDeployNanos),
		r.WarmRestartSpeedup, r.WarmFromCache, r.WarmCompilations)
	fmt.Fprintf(&b, "router overhead: %s per run request at p50 across %d backends\n",
		time.Duration(r.RouterOverheadNanos), r.RouterBackends)
	fmt.Fprintf(&b, "run failover: %s to re-home and answer after backend death\n",
		time.Duration(r.FailoverRunNanos))
	fmt.Fprintf(&b, "journal replay: %s to restore %d deployments with %d compilations\n",
		time.Duration(r.JournalReplayNanos), r.JournalReplayDeployments, r.JournalReplayCompilations)
	return b.String()
}
