package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/target"
)

// sampleResults builds a small artifact by hand (running the real
// experiments is covered elsewhere; the gate logic is pure arithmetic).
func sampleResults() *Results {
	return &Results{
		Table1: &Table1Report{
			Rows: []Table1Row{
				{Kernel: "saxpy_fp", Cells: []Table1Cell{
					{Target: target.X86SSE, ScalarCycles: 10000, VectorCycles: 4000},
					{Target: target.Sparc, ScalarCycles: 20000, VectorCycles: 21000},
				}},
			},
		},
		Figure1: &Figure1Report{
			Rows: []Figure1Row{{Kernel: "saxpy_fp", JITStepsWithAnnotations: 120, AnnotationBytes: 30}},
		},
		RegAlloc: &RegAllocReport{
			Points: []RegAllocPoint{{IntRegs: 4, WeightedOnline: 900, WeightedSplit: 600, WeightedOptimal: 550}},
		},
		CodeSize: &CodeSizeReport{
			Rows: []CodeSizeRow{{
				Module:      "saxpy_fp",
				TotalBytes:  150,
				NativeBytes: map[target.Arch]int{target.X86SSE: 400, target.MCU: 220},
			}},
		},
		Hetero: &HeteroReport{HostOnlyCycles: 50000, OffloadedCycles: 21000},
	}
}

// clone round-trips through JSON — exactly what the CLI does with the two
// artifact files, so the test also covers schema symmetry.
func clone(t *testing.T, r *Results) *Results {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseResults(data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := sampleResults()
	rep := Compare(base, clone(t, base), DiffOptions{})
	if rep.Failed() {
		t.Fatalf("identical artifacts failed the gate:\n%s", rep)
	}
	if rep.Regressions != 0 || rep.Missing != 0 || rep.Improved != 0 || rep.New != 0 {
		t.Errorf("identical artifacts classified oddly: %+v", rep)
	}
	if len(rep.Rows) == 0 {
		t.Error("no metrics extracted; the gate would pass vacuously")
	}
}

// TestCompareCatchesDeliberateSlowdown is the CI contract: inflate one
// kernel's cycle count beyond the tolerance and the gate must fail, naming
// the offending metric.
func TestCompareCatchesDeliberateSlowdown(t *testing.T) {
	base := sampleResults()
	slow := clone(t, base)
	slow.Table1.Rows[0].Cells[0].VectorCycles = 4600 // +15% on saxpy_fp/x86-sse

	rep := Compare(base, slow, DiffOptions{RelTol: 0.02})
	if !rep.Failed() {
		t.Fatal("a 15% cycle regression passed the gate")
	}
	if rep.Regressions != 1 {
		t.Errorf("regressions = %d, want exactly the slowed metric", rep.Regressions)
	}
	if !strings.Contains(rep.String(), "table1/saxpy_fp/x86-sse/vector_cycles") {
		t.Errorf("report does not name the regressed metric:\n%s", rep)
	}
}

func TestCompareTolerances(t *testing.T) {
	base := sampleResults()

	// The zero value is the exact gate: any increase at all regresses (the
	// simulators are deterministic, so this is a usable configuration, and
	// an explicitly requested zero tolerance must not be "defaulted" away).
	exact := clone(t, base)
	exact.Table1.Rows[0].Cells[0].ScalarCycles = 10001
	if rep := Compare(base, exact, DiffOptions{}); !rep.Failed() {
		t.Error("+1 cycle passed the exact (zero-tolerance) gate")
	}

	// Within relative tolerance: +1% on a big metric.
	ok := clone(t, base)
	ok.Table1.Rows[0].Cells[0].ScalarCycles = 10100
	if rep := Compare(base, ok, DiffOptions{RelTol: 0.02}); rep.Failed() {
		t.Errorf("+1%% failed a 2%% gate:\n%s", rep)
	}

	// A tiny absolute bump on a tiny metric passes only with AbsTol.
	tiny := clone(t, base)
	tiny.Figure1.Rows[0].AnnotationBytes = 32 // 30 -> 32 is +6.7%
	if rep := Compare(base, tiny, DiffOptions{RelTol: 0.02}); !rep.Failed() {
		t.Error("+2 bytes on a 30-byte metric passed without absolute slack")
	}
	if rep := Compare(base, tiny, DiffOptions{RelTol: 0.02, AbsTol: 4}); rep.Failed() {
		t.Errorf("+2 bytes failed despite AbsTol=4:\n%s", rep)
	}

	// Improvements don't fail and are counted.
	fast := clone(t, base)
	fast.Hetero.OffloadedCycles = 15000
	rep := Compare(base, fast, DiffOptions{})
	if rep.Failed() || rep.Improved != 1 {
		t.Errorf("improvement misclassified: failed=%v improved=%d", rep.Failed(), rep.Improved)
	}
}

// TestCompareMissingExperimentFails: silently dropping an experiment from
// the current run must not pass the gate.
func TestCompareMissingExperimentFails(t *testing.T) {
	base := sampleResults()
	partial := clone(t, base)
	partial.Hetero = nil

	rep := Compare(base, partial, DiffOptions{})
	if !rep.Failed() {
		t.Fatal("dropping the hetero experiment passed the gate")
	}
	if rep.Missing != 2 {
		t.Errorf("missing = %d, want the 2 hetero metrics", rep.Missing)
	}

	// The reverse — current has more than baseline — is informational only.
	rep = Compare(partial, base, DiffOptions{})
	if rep.Failed() {
		t.Errorf("extra metrics in the current run failed the gate:\n%s", rep)
	}
	if rep.New != 2 {
		t.Errorf("new = %d, want 2", rep.New)
	}
}

// TestMetricsRealArtifact sanity-checks extraction against a real (small)
// experiment run end to end, so metric names track schema changes.
func TestMetricsRealArtifact(t *testing.T) {
	table1, err := RunTable1(Table1Options{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	res := &Results{Table1: table1}
	metrics := clone(t, res).Metrics()
	if len(metrics) == 0 {
		t.Fatal("no metrics from a real table1 run")
	}
	names := make(map[string]bool)
	for _, m := range metrics {
		if m.Value <= 0 {
			t.Errorf("metric %s = %v, want positive cycle counts", m.Name, m.Value)
		}
		if names[m.Name] {
			t.Errorf("duplicate metric name %s", m.Name)
		}
		names[m.Name] = true
	}
	if !names["table1/saxpy_fp/x86-sse/vector_cycles"] {
		t.Error("expected metric table1/saxpy_fp/x86-sse/vector_cycles not extracted")
	}
}
