package bench

import (
	"fmt"
	"strings"

	"repro/internal/anno"
	"repro/internal/anno/envelope"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/jit"
	"repro/internal/target"
)

// AnnoReport tracks the annotation-container trajectory: the encoded size of
// each corpus kernel's annotations per writer version, the negotiation
// outcome of deploying the current writer's streams, and the fallback
// behavior of a deliberately unreadable stream from the future.
//
// The report is recorded in the results artifact (the "anno" section) but —
// like the host-throughput section — never gated by the regression
// comparison: its numbers change whenever the annotation schema evolves,
// which is exactly when churning the committed baseline would be noise. The
// correctness side of the same facts is gated elsewhere, by the golden
// corpus test (go test ./internal/anno/ -run TestCorpus).
type AnnoReport struct {
	// WriterVersion is the newest schema version the toolchain emits.
	WriterVersion uint32 `json:"writer_version"`
	// ContainerVersion is the envelope container layout version.
	ContainerVersion uint32    `json:"container_version"`
	Rows             []AnnoRow `json:"rows"`
	// SyntheticFallbacks is the number of annotation sections of the
	// synthetic version-99 stream that degraded to online-only compilation
	// on deploy (at least 1 by construction — the stream exists to pin the
	// fallback path).
	SyntheticFallbacks int `json:"synthetic_fallbacks"`
}

// AnnoRow is the annotation accounting of one corpus kernel.
type AnnoRow struct {
	Kernel string `json:"kernel"`
	// V0Bytes and V1Bytes are the total annotation payload bytes of the
	// module at each writer version; the delta is the envelope overhead
	// plus the v1-only metadata.
	V0Bytes int `json:"v0_bytes"`
	V1Bytes int `json:"v1_bytes"`
	// Fallbacks counts sections that degraded when deploying the v1 stream
	// with the current reader (0 unless reader and writer have diverged).
	Fallbacks int `json:"fallbacks"`
}

// RunAnno measures the annotation-version trajectory over the corpus
// kernels and the synthetic future stream.
func RunAnno() (*AnnoReport, error) {
	rep := &AnnoReport{WriterVersion: anno.CurrentVersion, ContainerVersion: envelope.ContainerVersion}
	tgt, err := target.Lookup(target.X86SSE)
	if err != nil {
		return nil, err
	}
	for _, kernel := range corpus.Kernels {
		row := AnnoRow{Kernel: kernel}
		for _, version := range []uint32{anno.V0, anno.V1} {
			res, _, err := core.CompileKernel(kernel, core.OfflineOptions{AnnotationVersion: version})
			if err != nil {
				return nil, err
			}
			if version == anno.V0 {
				row.V0Bytes = res.AnnotationBytes
			} else {
				row.V1Bytes = res.AnnotationBytes
				img, err := core.BuildImage(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
				if err != nil {
					return nil, err
				}
				row.Fallbacks = img.AnnotationFallbacks
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	synthetic, err := corpus.Generate(corpus.SyntheticKernel, corpus.SyntheticVersion)
	if err != nil {
		return nil, err
	}
	img, err := core.BuildImage(synthetic, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		return nil, err
	}
	rep.SyntheticFallbacks = img.AnnotationFallbacks
	return rep, nil
}

// String renders the report as a table.
func (r *AnnoReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Annotation container trajectory (writer v%d, container v%d)\n",
		r.WriterVersion, r.ContainerVersion)
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "kernel", "v0 bytes", "v1 bytes", "fallbacks")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10d %10d %10d\n", row.Kernel, row.V0Bytes, row.V1Bytes, row.Fallbacks)
	}
	fmt.Fprintf(&b, "synthetic v%d stream: %d section(s) degraded to online-only compilation\n",
		corpus.SyntheticVersion, r.SyntheticFallbacks)
	return b.String()
}
