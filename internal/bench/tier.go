package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/anno"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/target"
)

// The tier experiment measures the tiered-execution machinery: how many
// calls a function stays in tier 1 before promotion (cold, and warmed with
// an exported profile), how fast the host executes the tier-1 versus the
// fused tier-2 code, how many superinstruction pairs fusion found, what the
// profile-guided register allocation validation concluded, and how many
// bytes the serialized profile costs on the wire. Like the host and compile
// experiments the wall-clock numbers are host-dependent, so the family is
// recorded in BENCH_results.json but never gated — what *is* gated about
// tiering is that it changes nothing: the simulated-cycle sections of the
// artifact are byte-identical with tiering on (CI runs the full gated
// benchdiff under SPLITVM_TIER=1 at zero tolerance), and RunTier itself
// hard-fails if a tier-2 run's simulated cycles diverge from tier 1.

// TierBenchOptions parameterizes the tiered-execution measurement.
type TierBenchOptions struct {
	// N is the number of elements per kernel invocation.
	N int
	// Runs is the number of timed executions per tier per cell.
	Runs int
	// PromoteCalls is the tier-2 promotion threshold for the cold
	// deployment (0 uses a bench-friendly low threshold).
	PromoteCalls int64
	// Seed makes the pseudo-random inputs reproducible.
	Seed int64
}

func (o *TierBenchOptions) defaults() {
	if o.N == 0 {
		o.N = 4096
	}
	if o.Runs == 0 {
		o.Runs = 16
	}
	if o.PromoteCalls == 0 {
		o.PromoteCalls = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// TierCell is the tiered-execution measurement of one kernel on one target.
type TierCell struct {
	Kernel string
	Target target.Arch
	// SimCycles is the deterministic per-run simulated cycle count —
	// identical in tier 1 and tier 2 by construction (RunTier verifies it).
	SimCycles int64
	// ColdPromoteCalls is the number of calls the entry function spent in
	// tier 1 before promotion on a cold deployment (the threshold).
	ColdPromoteCalls int64
	// WarmPromoteCalls is the same latency on a deployment warmed with the
	// cold deployment's exported profile (1 when the import succeeded: the
	// first call promotes).
	WarmPromoteCalls int64
	// Tier1NanosPerRun and Tier2NanosPerRun are the average wall-clock times
	// of one execution before and after promotion.
	Tier1NanosPerRun float64
	Tier2NanosPerRun float64
	// Tier2Speedup is Tier1NanosPerRun / Tier2NanosPerRun (host-dependent;
	// near 1.0 is expected — fusion removes dispatch overhead only).
	Tier2Speedup float64
	// FusedPairs is the number of superinstruction pairs tier 2 fused.
	FusedPairs int64
	// ReallocConfirmed and ReallocDiverged report the profile-guided
	// register allocation validation: whether recompiling with observed
	// block frequencies reproduced the deployed code.
	ReallocConfirmed int64
	ReallocDiverged  int64
	// ProfileBytes is the size of the exported profile serialized as a
	// versioned annotation value.
	ProfileBytes int
}

// TierReport is the tiered-execution measurement across the Table 1 matrix.
type TierReport struct {
	Options   TierBenchOptions
	GoVersion string
	NumCPU    int
	Cells     []TierCell
}

// RunTier measures the tiering machinery over the Table 1 kernels and
// targets. Each cell deploys the same image twice — plain and tiered —
// drives the tiered machine to promotion, checks the tier-2 simulated
// cycles against tier 1, times both steady states, and warms a third
// deployment with the exported profile to measure the warm-start latency.
func RunTier(opts TierBenchOptions) (*TierReport, error) {
	opts.defaults()
	report := &TierReport{Options: opts, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU()}

	for _, name := range kernels.Table1Names {
		k := kernels.MustGet(name)
		res, _, err := core.CompileKernel(name, core.OfflineOptions{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		for _, tgt := range target.Table1() {
			cell, err := measureTierCell(k, res.Encoded, tgt, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", name, tgt.Name, err)
			}
			report.Cells = append(report.Cells, cell)
		}
	}
	return report, nil
}

// timeRuns times runs steady-state executions and returns (ns/run,
// simulated cycles/run). Stats are reset first so the per-run cycle count
// comes out exact.
func timeRuns(dep *core.Deployment, entry string, args []sim.Value, runs int) (float64, int64, error) {
	m := dep.Machine
	m.ResetStats()
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := m.Call(entry, args...); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(runs), m.Stats.Cycles / int64(runs), nil
}

func measureTierCell(k kernels.Kernel, encoded []byte, tgt *target.Desc, opts TierBenchOptions) (TierCell, error) {
	in, err := kernels.NewInputs(k.Name, opts.N, opts.Seed)
	if err != nil {
		return TierCell{}, err
	}

	// Tier-1 baseline: a plain deployment, never promoted.
	plain, err := core.Deploy(encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		return TierCell{}, err
	}
	args, _ := MarshalKernelArgs(plain.Machine, in)
	if _, err := plain.Machine.Call(k.Entry, args...); err != nil { // warm-up
		return TierCell{}, err
	}
	t1ns, t1cyc, err := timeRuns(plain, k.Entry, args, opts.Runs)
	if err != nil {
		return TierCell{}, err
	}

	// Cold tiered deployment: run to promotion, then time the tier-2
	// steady state over the same inputs.
	tiered, err := core.Deploy(encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		return TierCell{}, err
	}
	tiered.EnableTiering(core.TierOptions{Policy: profile.Policy{PromoteCalls: opts.PromoteCalls}})
	targs, _ := MarshalKernelArgs(tiered.Machine, in)
	for i := int64(0); i < opts.PromoteCalls; i++ {
		if _, err := tiered.Machine.Call(k.Entry, targs...); err != nil {
			return TierCell{}, err
		}
	}
	ts := tiered.TierStats()
	if ts.Promotions == 0 {
		return TierCell{}, fmt.Errorf("no promotion after %d calls", opts.PromoteCalls)
	}
	t2ns, t2cyc, err := timeRuns(tiered, k.Entry, targs, opts.Runs)
	if err != nil {
		return TierCell{}, err
	}
	// The architectural-invariance contract, enforced rather than assumed:
	// tier 2 must simulate the exact same cycles as tier 1.
	if t2cyc != t1cyc {
		return TierCell{}, fmt.Errorf("tier-2 cycles %d != tier-1 cycles %d", t2cyc, t1cyc)
	}

	// Export the observed profile and warm a fresh deployment with it: the
	// promotion latency drops from the threshold to a single call.
	exported := tiered.ExportProfile()
	encProfile, err := anno.EncodeProfileV(exported, anno.CurrentVersion)
	if err != nil {
		return TierCell{}, err
	}
	warm, err := core.Deploy(encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		return TierCell{}, err
	}
	warm.EnableTiering(core.TierOptions{
		Policy:  profile.Policy{PromoteCalls: opts.PromoteCalls},
		Profile: exported,
	})
	wargs, _ := MarshalKernelArgs(warm.Machine, in)
	if _, err := warm.Machine.Call(k.Entry, wargs...); err != nil {
		return TierCell{}, err
	}
	ws := warm.TierStats()
	if ws.Promotions == 0 {
		return TierCell{}, fmt.Errorf("warm deployment did not promote on first call (seeded=%d degraded=%d)", ws.WarmSeeded, ws.WarmDegraded)
	}

	cell := TierCell{
		Kernel:           k.Name,
		Target:           tgt.Arch,
		SimCycles:        t1cyc,
		ColdPromoteCalls: ts.PromoteCallsSum / ts.Promotions,
		WarmPromoteCalls: ws.PromoteCallsSum / ws.Promotions,
		Tier1NanosPerRun: t1ns,
		Tier2NanosPerRun: t2ns,
		FusedPairs:       ts.FusedPairs,
		ReallocConfirmed: ts.ReallocConfirmed,
		ReallocDiverged:  ts.ReallocDiverged,
		ProfileBytes:     len(encProfile),
	}
	if t2ns > 0 {
		cell.Tier2Speedup = t1ns / t2ns
	}
	return cell, nil
}

// String renders the tiered-execution matrix.
func (r *TierReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tiered execution: promotion latency, tier-2 speedup and profile sizes (n=%d, %d runs/tier, threshold=%d, %s, %d CPUs)\n",
		r.Options.N, r.Options.Runs, r.Options.PromoteCalls, r.GoVersion, r.NumCPU)
	b.WriteString("wall-clock numbers are host-dependent; tracked, not gated — simulated cycles are tier-invariant by contract\n\n")
	fmt.Fprintf(&b, "%-12s %-12s %12s %10s %10s %12s %12s %8s %7s %9s %10s\n",
		"benchmark", "target", "sim cyc/run", "cold prom", "warm prom", "t1 ns/run", "t2 ns/run", "speedup", "fused", "realloc", "prof bytes")
	b.WriteString(strings.Repeat("-", 124) + "\n")
	for _, c := range r.Cells {
		realloc := "-"
		switch {
		case c.ReallocConfirmed > 0 && c.ReallocDiverged == 0:
			realloc = "confirm"
		case c.ReallocDiverged > 0:
			realloc = "diverge"
		}
		fmt.Fprintf(&b, "%-12s %-12s %12d %10d %10d %12.0f %12.0f %8.2fx %7d %9s %10d\n",
			c.Kernel, c.Target, c.SimCycles, c.ColdPromoteCalls, c.WarmPromoteCalls,
			c.Tier1NanosPerRun, c.Tier2NanosPerRun, c.Tier2Speedup, c.FusedPairs, realloc, c.ProfileBytes)
	}
	return b.String()
}
