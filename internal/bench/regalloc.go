package bench

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// RegAllocOptions parameterizes the split register allocation experiment.
type RegAllocOptions struct {
	// RegisterFiles lists the integer register file sizes to sweep
	// (embedded-class cores).
	RegisterFiles []int
}

func (o *RegAllocOptions) defaults() {
	if len(o.RegisterFiles) == 0 {
		o.RegisterFiles = []int{4, 6, 8, 12}
	}
}

// RegAllocPoint is the measurement for one register file size.
type RegAllocPoint struct {
	IntRegs int

	// Static spill counts (spilled variables summed over the suite).
	SpillsOnline  int
	SpillsSplit   int
	SpillsOptimal int

	// Static spill instructions (loads + stores) emitted by the JIT.
	SpillOpsOnline  int
	SpillOpsSplit   int
	SpillOpsOptimal int

	// Estimated dynamic spill accesses (loop-depth weighted uses of spilled
	// variables) — the quantity Diouf et al.'s "spills" measure tracks: how
	// often spilled values are actually touched at run time.
	WeightedOnline  int64
	WeightedSplit   int64
	WeightedOptimal int64

	// SavingsVsOnline is the fraction of (weighted) spills removed by the
	// annotation-driven allocator relative to the purely online baseline.
	SavingsVsOnline float64
	// GapToOptimal is how far the split allocator stays from the offline
	// quality reference (0 = identical).
	GapToOptimal float64
}

// RegAllocReport is the reproduction of the split register allocation claim
// of Section 4 (Diouf et al.): annotation-driven linear-time assignment of
// comparable quality to an optimal offline allocation, saving up to 40% of
// the spills relative to the baseline online allocator.
type RegAllocReport struct {
	Options RegAllocOptions
	Points  []RegAllocPoint
	// MaxSavings is the best spill reduction observed across the sweep
	// ("up to N%" in the paper's phrasing).
	MaxSavings float64
}

// regAllocSuite returns the MiniC sources of the methods used as the
// register-pressure benchmark suite: the Table 1 kernels, the control-heavy
// checksum, and synthetic methods with many simultaneously-live variables
// whose declaration order deliberately disagrees with their hotness.
func regAllocSuite() []string {
	var sources []string
	for _, k := range kernels.All() {
		sources = append(sources, k.Source)
	}
	sources = append(sources, pressureSource("pressure_a", 10, 4))
	sources = append(sources, pressureSource("pressure_b", 14, 6))
	sources = append(sources, pressureSource("pressure_c", 18, 8))
	return sources
}

// pressureSource generates a method with `cold` rarely-used variables
// declared first and `hot` loop-carried variables declared last, so that a
// declaration-order or interval-order heuristic without weights makes poor
// choices under small register files.
func pressureSource(name string, cold, hot int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "i32 %s(i32 n, i32 seed) {\n", name)
	for i := 0; i < cold; i++ {
		fmt.Fprintf(&b, "    i32 c%d = seed + %d;\n", i, i)
	}
	for i := 0; i < hot; i++ {
		fmt.Fprintf(&b, "    i32 h%d = %d;\n", i, i+1)
	}
	b.WriteString("    for (i32 i = 0; i < n; i++) {\n")
	for i := 0; i < hot; i++ {
		fmt.Fprintf(&b, "        h%d = h%d + i * %d;\n", i, (i+1)%hot, i+3)
	}
	b.WriteString("    }\n")
	b.WriteString("    i32 s = 0;\n")
	for i := 0; i < hot; i++ {
		fmt.Fprintf(&b, "    s = s + h%d;\n", i)
	}
	for i := 0; i < cold; i++ {
		fmt.Fprintf(&b, "    s = s + c%d;\n", i)
	}
	b.WriteString("    return s;\n}\n")
	return b.String()
}

// RunRegAlloc sweeps embedded-class register file sizes and compares the
// spills produced by the three allocation strategies.
func RunRegAlloc(opts RegAllocOptions) (*RegAllocReport, error) {
	opts.defaults()
	report := &RegAllocReport{Options: opts}

	// Compile the whole suite once (annotations included).
	var compiled []*core.OfflineResult
	for i, src := range regAllocSuite() {
		res, err := core.CompileOffline(src, core.OfflineOptions{ModuleName: fmt.Sprintf("suite%d", i)})
		if err != nil {
			return nil, fmt.Errorf("bench: regalloc suite: %w", err)
		}
		compiled = append(compiled, res)
	}

	base := target.MustLookup(target.MCU)
	for _, regs := range opts.RegisterFiles {
		tgt := base.WithIntRegs(regs)
		point := RegAllocPoint{IntRegs: regs}
		for _, res := range compiled {
			for _, mode := range []jit.RegAllocMode{jit.RegAllocOnline, jit.RegAllocSplit, jit.RegAllocOptimal} {
				dep, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: mode})
				if err != nil {
					return nil, err
				}
				// Spill statistics measure the produced code; a lazy deploy
				// (SPLITVM_LAZY) must materialize it all first.
				if err := dep.EnsureCompiled(context.Background()); err != nil {
					return nil, err
				}
				s, loads, stores := dep.SpillSummary()
				w := dep.SpillWeight()
				switch mode {
				case jit.RegAllocOnline:
					point.SpillsOnline += s
					point.SpillOpsOnline += loads + stores
					point.WeightedOnline += w
				case jit.RegAllocSplit:
					point.SpillsSplit += s
					point.SpillOpsSplit += loads + stores
					point.WeightedSplit += w
				case jit.RegAllocOptimal:
					point.SpillsOptimal += s
					point.SpillOpsOptimal += loads + stores
					point.WeightedOptimal += w
				}
			}
		}
		if point.WeightedOnline > 0 {
			point.SavingsVsOnline = 1 - float64(point.WeightedSplit)/float64(point.WeightedOnline)
		}
		if point.WeightedOptimal > 0 {
			point.GapToOptimal = float64(point.WeightedSplit-point.WeightedOptimal) / float64(point.WeightedOptimal)
		}
		if point.SavingsVsOnline > report.MaxSavings {
			report.MaxSavings = point.SavingsVsOnline
		}
		report.Points = append(report.Points, point)
	}
	return report, nil
}

// String renders the report.
func (r *RegAllocReport) String() string {
	var b strings.Builder
	b.WriteString("Split register allocation (Section 4, Diouf et al.): estimated dynamic spill accesses\n")
	b.WriteString("(loop-depth weighted uses of spilled variables; static spilled-variable counts in parentheses)\n\n")
	fmt.Fprintf(&b, "%-10s %20s %20s %20s %16s %15s\n",
		"int regs", "online", "split", "optimal", "saved vs online", "gap to optimal")
	b.WriteString(strings.Repeat("-", 106) + "\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10d %14d (%3d) %14d (%3d) %14d (%3d) %15.0f%% %14.0f%%\n",
			p.IntRegs,
			p.WeightedOnline, p.SpillsOnline,
			p.WeightedSplit, p.SpillsSplit,
			p.WeightedOptimal, p.SpillsOptimal,
			p.SavingsVsOnline*100, p.GapToOptimal*100)
	}
	fmt.Fprintf(&b, "\nmaximum spill reduction of the annotation-driven allocator: %.0f%% (paper: \"up to 40%%\")\n", r.MaxSavings*100)
	return b.String()
}
