package bench

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// Figure1Row quantifies the split-compilation flow of Figure 1 for one
// kernel: how much analysis work the offline step absorbs, how many bytes of
// annotations carry its results across the distribution boundary, and how
// much cheaper the online (JIT) step becomes when it can rely on them.
type Figure1Row struct {
	Kernel string

	// Offline side.
	OfflineSteps    int64 // vectorization legality + register allocation analysis + lowering
	AnnotationBytes int
	EncodedBytes    int

	// Online side (JIT compile effort, in elementary steps, on the x86
	// target).
	JITStepsWithAnnotations    int64 // split mode: trusts the annotations
	JITStepsWithoutAnnotations int64 // must recompute allocation quality online
	OnlineSavings              float64
}

// Figure1Report is the quantified version of the paper's Figure 1.
type Figure1Report struct {
	Rows []Figure1Row
}

// RunFigure1 measures, for every Table 1 kernel, the distribution of
// optimization effort between the offline and online compilation steps,
// with and without the coordinating annotations.
func RunFigure1() (*Figure1Report, error) {
	tgt := target.MustLookup(target.X86SSE)
	report := &Figure1Report{}
	for _, name := range kernels.Table1Names {
		annotated, _, err := core.CompileKernel(name, core.OfflineOptions{})
		if err != nil {
			return nil, err
		}
		stripped, _, err := core.CompileKernel(name, core.OfflineOptions{DisableAnnotations: true, DisableRegAllocAnnotations: true})
		if err != nil {
			return nil, err
		}

		// Online step with annotations: the split allocator follows the
		// offline priority order (linear time).
		withAnn, err := core.Deploy(annotated.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
		if err != nil {
			return nil, err
		}
		// Online step without annotations: to reach comparable code quality
		// the JIT has to recompute weights and interference itself.
		withoutAnn, err := core.Deploy(stripped.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocOptimal})
		if err != nil {
			return nil, err
		}
		// The JIT-step comparison measures the produced code, so a lazy
		// deployment (SPLITVM_LAZY) must materialize it all first.
		if err := withAnn.EnsureCompiled(context.Background()); err != nil {
			return nil, err
		}
		if err := withoutAnn.EnsureCompiled(context.Background()); err != nil {
			return nil, err
		}

		row := Figure1Row{
			Kernel:                     name,
			OfflineSteps:               annotated.OfflineSteps,
			AnnotationBytes:            annotated.AnnotationBytes,
			EncodedBytes:               len(annotated.Encoded),
			JITStepsWithAnnotations:    withAnn.JITSteps,
			JITStepsWithoutAnnotations: withoutAnn.JITSteps,
		}
		if row.JITStepsWithoutAnnotations > 0 {
			row.OnlineSavings = 1 - float64(row.JITStepsWithAnnotations)/float64(row.JITStepsWithoutAnnotations)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// String renders the report.
func (r *Figure1Report) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: split compilation flow — offline analyses feed annotation-driven online steps\n")
	b.WriteString("(JIT effort measured on the x86+SSE target, in elementary compilation steps)\n\n")
	fmt.Fprintf(&b, "%-12s %14s %12s %12s %18s %20s %10s\n",
		"kernel", "offline steps", "annot bytes", "module bytes", "JIT w/ annot", "JIT w/o annot", "saved")
	b.WriteString(strings.Repeat("-", 104) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %14d %12d %12d %18d %20d %9.0f%%\n",
			row.Kernel, row.OfflineSteps, row.AnnotationBytes, row.EncodedBytes,
			row.JITStepsWithAnnotations, row.JITStepsWithoutAnnotations, row.OnlineSavings*100)
	}
	return b.String()
}
