package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// The compile-throughput experiment measures how fast the online JIT itself
// runs on the host: nanoseconds and heap allocations per module compilation
// and methods compiled per host-second, for every Table 1 kernel on every
// Table 1 target (plus the wide-vector 256-bit machine) under each register
// allocation mode, and the wall-clock win of the parallel compile pipeline
// on a multi-method module. Like the host family these numbers are
// host-dependent and noisy, so they are recorded in BENCH_results.json for
// trend tracking but deliberately excluded from the benchdiff gate — the
// determinism of the *generated code* is gated separately (the workers=1
// versus workers=N artifact comparison in CI and the differential test in
// internal/jit).

// CompileOptions parameterizes the compile-throughput measurement.
type CompileOptions struct {
	// Runs is the number of timed warm compilations per cell.
	Runs int
	// ParallelMethods sizes the synthetic multi-method module of the
	// parallel pipeline measurement.
	ParallelMethods int
	// Workers is the worker count of the parallel measurement (0 =
	// GOMAXPROCS; the sequential leg always runs with 1).
	Workers int
}

func (o *CompileOptions) defaults() {
	if o.Runs == 0 {
		o.Runs = 24
	}
	if o.ParallelMethods == 0 {
		o.ParallelMethods = 16
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// CompileCell is the compile-path measurement of one kernel on one target
// under one register allocation mode.
type CompileCell struct {
	Kernel string      `json:"kernel"`
	Target target.Arch `json:"target"`
	// Mode is the register allocation mode ("online", "split", "optimal").
	Mode string `json:"mode"`
	// Methods is the number of methods the module compiles.
	Methods int `json:"methods"`
	// ColdNanos is one cold deployment-side build: decode + verify + first
	// JIT compilation, the cost a deploy server pays on a never-seen
	// module.
	ColdNanos int64 `json:"cold_nanos"`
	// WarmNanosPerCompile is the average wall-clock time of one warm
	// module compilation (decoded and verified module, warm scratch
	// pools): the marginal cost of re-JITting, e.g. for a new target
	// variant or with the cache disabled.
	WarmNanosPerCompile float64 `json:"warm_nanos_per_compile"`
	// AllocsPerCompile is the average heap allocations of one warm
	// compilation.
	AllocsPerCompile float64 `json:"allocs_per_compile"`
	// MethodsPerSec is the warm compile throughput in methods per second.
	MethodsPerSec float64 `json:"methods_per_sec"`
}

// CompileParallel is the parallel-pipeline measurement: the same
// multi-method module compiled with one worker and with Workers workers.
type CompileParallel struct {
	// Methods is the method count of the synthetic module.
	Methods int `json:"methods"`
	// Workers is the worker count of the parallel leg.
	Workers int `json:"workers"`
	// SeqNanosPerCompile and ParNanosPerCompile are the average wall-clock
	// times of one module compilation with workers=1 and workers=Workers.
	SeqNanosPerCompile float64 `json:"seq_nanos_per_compile"`
	ParNanosPerCompile float64 `json:"par_nanos_per_compile"`
	// Speedup is SeqNanosPerCompile / ParNanosPerCompile (1.0 on a single
	// logical CPU: the pipeline never makes compilation slower).
	Speedup float64 `json:"speedup"`
	// SeqAllocsPerCompile and ParAllocsPerCompile are the matching heap
	// allocation averages.
	SeqAllocsPerCompile float64 `json:"seq_allocs_per_compile"`
	ParAllocsPerCompile float64 `json:"par_allocs_per_compile"`
}

// CompileLazy is the lazy-deployment measurement on the same synthetic
// multi-method module: the up-front cost an eager deployment pays versus the
// near-zero stub installation of a lazy one, and the total first-call
// compile time once every method has been demanded. The generated code is
// bit-identical either way; the experiment shows *when* the compile cost is
// paid, which is the entire point of on-demand compilation.
type CompileLazy struct {
	// Methods is the method count of the synthetic module.
	Methods int `json:"methods"`
	// EagerDeployNanos is one eager image build: every method JIT-compiled
	// before the deployment can serve its first call.
	EagerDeployNanos int64 `json:"eager_deploy_nanos"`
	// LazyDeployNanos is one lazy deployment: per-method stubs installed,
	// zero methods compiled.
	LazyDeployNanos int64 `json:"lazy_deploy_nanos"`
	// MethodsCompiledAtDeploy counts methods holding native code right
	// after the lazy deployment (zero by construction).
	MethodsCompiledAtDeploy int `json:"methods_compiled_at_deploy"`
	// FirstCallNanosTotal sums the first-call JIT time over all methods —
	// the eager cost, amortized over the calls that actually need it.
	FirstCallNanosTotal int64 `json:"first_call_nanos_total"`
}

// CompileReport is the compile-throughput measurement across the kernel ×
// target × regalloc-mode matrix.
type CompileReport struct {
	Options CompileOptions `json:"options"`
	// GoVersion, NumCPU and GOMAXPROCS describe the host the numbers were
	// taken on.
	GoVersion  string           `json:"go_version"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Cells      []CompileCell    `json:"cells"`
	Parallel   *CompileParallel `json:"parallel,omitempty"`
	Lazy       *CompileLazy     `json:"lazy,omitempty"`
}

// compileTargets is the target matrix of the compile experiment: the Table 1
// columns plus the wide-vector machine (the one target whose 256-bit unit no
// paper machine shares).
func compileTargets() []*target.Desc {
	return append(target.Table1(), target.MustLookup(target.WideVec))
}

var compileModes = []jit.RegAllocMode{jit.RegAllocOnline, jit.RegAllocSplit, jit.RegAllocOptimal}

// RunCompile measures online compile throughput over the Table 1 kernels on
// the Table 1 targets plus the wide-vector machine, then measures the
// parallel pipeline on a synthetic multi-method module.
func RunCompile(opts CompileOptions) (*CompileReport, error) {
	opts.defaults()
	report := &CompileReport{
		Options:    opts,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	for _, name := range kernels.Table1Names {
		res, _, err := core.CompileKernel(name, core.OfflineOptions{AnnotationVersion: anno.CurrentVersion})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		for _, tgt := range compileTargets() {
			for _, mode := range compileModes {
				cell, err := measureCompileCell(name, res.Encoded, tgt, mode, opts.Runs)
				if err != nil {
					return nil, fmt.Errorf("bench: %s on %s: %w", name, tgt.Name, err)
				}
				report.Cells = append(report.Cells, cell)
			}
		}
	}

	par, err := measureCompileParallel(opts)
	if err != nil {
		return nil, err
	}
	report.Parallel = par
	lazy, err := measureCompileLazy(opts)
	if err != nil {
		return nil, err
	}
	report.Lazy = lazy
	return report, nil
}

// measureCompileLazy deploys the synthetic multi-method module eagerly and
// lazily and accounts for where the compile time goes: all up front, or
// spread over the first calls.
func measureCompileLazy(opts CompileOptions) (*CompileLazy, error) {
	res, err := core.CompileOffline(parallelCompileSource(opts.ParallelMethods),
		core.OfflineOptions{ModuleName: "parallel", AnnotationVersion: anno.CurrentVersion})
	if err != nil {
		return nil, err
	}
	mod, err := cil.Decode(res.Encoded)
	if err != nil {
		return nil, err
	}
	if err := cil.Verify(mod); err != nil {
		return nil, err
	}
	tgt := target.MustLookup(target.X86SSE)
	jopts := jit.Options{RegAlloc: jit.RegAllocSplit}

	start := time.Now()
	if _, err := core.ImageFromVerifiedModule(mod, tgt, jopts); err != nil {
		return nil, err
	}
	cell := &CompileLazy{
		Methods:          len(mod.Methods),
		EagerDeployNanos: time.Since(start).Nanoseconds(),
	}

	start = time.Now()
	lazyImg, err := core.LazyImageFromVerifiedModule(mod, tgt, jopts)
	if err != nil {
		return nil, err
	}
	lazyImg.Instantiate()
	cell.LazyDeployNanos = time.Since(start).Nanoseconds()
	cell.MethodsCompiledAtDeploy, _ = lazyImg.MethodCounts()

	// Demand every method once; each resolution is one first-call JIT.
	for _, m := range mod.Methods {
		if _, err := lazyImg.ResolveMethod(context.Background(), m.Name); err != nil {
			return nil, err
		}
	}
	cell.FirstCallNanosTotal = lazyImg.LazyCompileNanos()
	return cell, nil
}

func measureCompileCell(kernel string, encoded []byte, tgt *target.Desc, mode jit.RegAllocMode, runs int) (CompileCell, error) {
	jopts := jit.Options{RegAlloc: mode}

	// Cold: the full deployment-side build of a never-seen byte stream.
	start := time.Now()
	img, err := core.BuildImage(encoded, tgt, jopts)
	if err != nil {
		return CompileCell{}, err
	}
	cold := time.Since(start).Nanoseconds()

	// Warm: re-JIT the decoded, verified module. One untimed compilation
	// warms the scratch pools, then Runs timed ones measure steady state.
	mod := img.Module
	c := jit.New(tgt, jopts)
	if _, _, err := c.CompileModuleReport(mod); err != nil {
		return CompileCell{}, err
	}
	runtime.GC() // stabilize: the cold build's garbage must not bill the warm loop
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	for i := 0; i < runs; i++ {
		if _, _, err := c.CompileModuleReport(mod); err != nil {
			return CompileCell{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	cell := CompileCell{
		Kernel:              kernel,
		Target:              tgt.Arch,
		Mode:                mode.String(),
		Methods:             len(mod.Methods),
		ColdNanos:           cold,
		WarmNanosPerCompile: float64(elapsed.Nanoseconds()) / float64(runs),
		AllocsPerCompile:    float64(ms1.Mallocs-ms0.Mallocs) / float64(runs),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		cell.MethodsPerSec = float64(len(mod.Methods)*runs) / sec
	}
	return cell, nil
}

// parallelCompileSource synthesizes a module with n independent mid-size
// methods: the module shape the parallel pipeline exists for.
func parallelCompileSource(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
f64 pm%d(f64 a[], f64 b[], i32 n) {
    f64 s = 0.0;
    for (i32 i = 0; i < n; i++) {
        f64 t0 = a[i] * b[i];
        f64 t1 = a[i] + b[i];
        s = s + t0 * t1 - (f64) %d;
    }
    return s;
}`, i, i)
	}
	return b.String()
}

func measureCompileParallel(opts CompileOptions) (*CompileParallel, error) {
	res, err := core.CompileOffline(parallelCompileSource(opts.ParallelMethods),
		core.OfflineOptions{ModuleName: "parallel", AnnotationVersion: anno.CurrentVersion})
	if err != nil {
		return nil, err
	}
	mod, err := cil.Decode(res.Encoded)
	if err != nil {
		return nil, err
	}
	if err := cil.Verify(mod); err != nil {
		return nil, err
	}
	tgt := target.MustLookup(target.X86SSE)

	measure := func(workers int) (nanos, allocs float64, err error) {
		c := jit.New(tgt, jit.Options{RegAlloc: jit.RegAllocSplit, CompileWorkers: workers})
		if _, _, err := c.CompileModuleReport(mod); err != nil {
			return 0, 0, err
		}
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < opts.Runs; i++ {
			if _, _, err := c.CompileModuleReport(mod); err != nil {
				return 0, 0, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		return float64(elapsed.Nanoseconds()) / float64(opts.Runs),
			float64(ms1.Mallocs-ms0.Mallocs) / float64(opts.Runs), nil
	}

	par := &CompileParallel{Methods: len(mod.Methods), Workers: opts.Workers}
	if par.SeqNanosPerCompile, par.SeqAllocsPerCompile, err = measure(1); err != nil {
		return nil, err
	}
	if opts.Workers <= 1 {
		// One logical CPU: workers=N is the same configuration as
		// workers=1, so the legs coincide by definition — re-measuring
		// would only report timer noise as a "speedup".
		par.ParNanosPerCompile = par.SeqNanosPerCompile
		par.ParAllocsPerCompile = par.SeqAllocsPerCompile
		par.Speedup = 1
		return par, nil
	}
	if par.ParNanosPerCompile, par.ParAllocsPerCompile, err = measure(opts.Workers); err != nil {
		return nil, err
	}
	if par.ParNanosPerCompile > 0 {
		par.Speedup = par.SeqNanosPerCompile / par.ParNanosPerCompile
	}
	return par, nil
}

// String renders the compile-throughput matrix.
func (r *CompileReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compile throughput: online JIT speed on this host (%d runs/cell, %s, %d CPUs, GOMAXPROCS=%d)\n",
		r.Options.Runs, r.GoVersion, r.NumCPU, r.GOMAXPROCS)
	b.WriteString("wall-clock numbers are host-dependent; they are tracked, not gated\n\n")
	fmt.Fprintf(&b, "%-12s %-12s %-8s %12s %14s %12s %12s\n",
		"benchmark", "target", "regalloc", "cold ns", "warm ns/comp", "allocs/comp", "methods/s")
	b.WriteString(strings.Repeat("-", 88) + "\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-12s %-12s %-8s %12d %14.0f %12.1f %12.0f\n",
			c.Kernel, c.Target, c.Mode, c.ColdNanos, c.WarmNanosPerCompile, c.AllocsPerCompile, c.MethodsPerSec)
	}
	if p := r.Parallel; p != nil {
		fmt.Fprintf(&b, "\nparallel pipeline (%d-method module): %.0f ns/compile with 1 worker, %.0f ns/compile with %d workers (%.2fx)\n",
			p.Methods, p.SeqNanosPerCompile, p.ParNanosPerCompile, p.Workers, p.Speedup)
	}
	if l := r.Lazy; l != nil {
		fmt.Fprintf(&b, "lazy deployment (%d-method module): eager pays %d ns up front; lazy deploys in %d ns with %d methods compiled, then %d ns spread over first calls\n",
			l.Methods, l.EagerDeployNanos, l.LazyDeployNanos, l.MethodsCompiledAtDeploy, l.FirstCallNanosTotal)
	}
	return b.String()
}
