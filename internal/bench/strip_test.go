package bench

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestStripUngated pins the generic baseline-refresh behavior: non-gated
// sections (host, anno, and anything unknown from the future) disappear,
// gated metrics survive bit-for-bit, and the output is stable.
func TestStripUngated(t *testing.T) {
	artifact := map[string]any{
		"table1": map[string]any{"rows": []any{map[string]any{
			"kernel": "sum_u8",
			"cells": []any{map[string]any{
				"target": "x86-sse", "scalar_cycles": 100, "vector_cycles": 10, "relative": 10.0,
			}},
		}}},
		"host":           map[string]any{"rows": []any{}},
		"anno":           map[string]any{"writer_version": 1},
		"future_section": map[string]any{"tracked": true},
	}
	raw, err := json.Marshal(artifact)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := StripUngated(raw)
	if err != nil {
		t.Fatal(err)
	}
	var kept map[string]json.RawMessage
	if err := json.Unmarshal(stripped, &kept); err != nil {
		t.Fatal(err)
	}
	if _, ok := kept["table1"]; !ok {
		t.Error("gated section table1 was stripped")
	}
	for _, gone := range []string{"host", "anno", "future_section"} {
		if _, ok := kept[gone]; ok {
			t.Errorf("non-gated section %q survived the strip", gone)
		}
	}

	// The gated metrics are unchanged by the strip.
	before, err := ParseResults(raw)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ParseResults(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Metrics(), after.Metrics()) {
		t.Error("stripping changed the gated metrics")
	}

	// Stripping is idempotent and stable (sorted keys), so refreshed
	// baselines only churn when gated numbers move.
	again, err := StripUngated(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(stripped) {
		t.Error("StripUngated is not idempotent")
	}
}

// TestGatedSectionsCoverMetrics guards the invariant the generic strip
// rests on: every metric the gate compares lives under a gated section key,
// so stripping can never silently drop a gated metric.
func TestGatedSectionsCoverMetrics(t *testing.T) {
	full := &Results{
		Table1:   &Table1Report{Rows: []Table1Row{{Kernel: "k", Cells: []Table1Cell{{Target: "t"}}}}},
		Figure1:  &Figure1Report{Rows: []Figure1Row{{Kernel: "k"}}},
		RegAlloc: &RegAllocReport{Points: []RegAllocPoint{{IntRegs: 4}}},
		CodeSize: &CodeSizeReport{Rows: []CodeSizeRow{{Module: "m"}}},
		Hetero:   &HeteroReport{},
	}
	gated := map[string]bool{}
	for _, s := range GatedSections() {
		gated[s] = true
	}
	for _, m := range full.Metrics() {
		section := m.Name[:strings.Index(m.Name, "/")]
		if !gated[section] {
			t.Errorf("metric %q lives under non-gated section %q", m.Name, section)
		}
	}
}
