package bench

import (
	"strings"
	"testing"

	"repro/internal/target"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 takes a few seconds")
	}
	r, err := RunTable1(Table1Options{N: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	// Shape assertions mirroring the paper's qualitative result, not its
	// absolute numbers:
	//  1. every kernel speeds up substantially on the SIMD target;
	//  2. byte/halfword kernels gain more than f64 kernels there;
	//  3. targets without SIMD see no dramatic change in either direction;
	//  4. the JIT used the vector unit only on x86.
	for _, row := range r.Rows {
		x86, ok := r.Speedup(row.Kernel, target.X86SSE)
		if !ok {
			t.Fatalf("missing x86 cell for %s", row.Kernel)
		}
		if x86 < 1.3 {
			t.Errorf("%s: x86 speedup %.2f, want clear win (>1.3x)", row.Kernel, x86)
		}
		for _, arch := range []target.Arch{target.Sparc, target.PPC} {
			rel, _ := r.Speedup(row.Kernel, arch)
			if rel < 0.5 || rel > 3.5 {
				t.Errorf("%s on %s: scalarized relative %.2f outside the no-drama band", row.Kernel, arch, rel)
			}
		}
		for _, cell := range row.Cells {
			wantSIMD := cell.Target == target.X86SSE
			if cell.VectorLowered != wantSIMD {
				t.Errorf("%s on %s: vector unit used = %v, want %v", row.Kernel, cell.Target, cell.VectorLowered, wantSIMD)
			}
		}
	}
	maxU8, _ := r.Speedup("max_u8", target.X86SSE)
	vecadd, _ := r.Speedup("vecadd_fp", target.X86SSE)
	sumU8, _ := r.Speedup("sum_u8", target.X86SSE)
	sumU16, _ := r.Speedup("sum_u16", target.X86SSE)
	if maxU8 <= vecadd || sumU8 <= sumU16 {
		t.Errorf("x86 ordering wrong: max_u8 %.1f, sum_u8 %.1f, sum_u16 %.1f, vecadd %.1f (paper: 15.6, 5.3, 2.6, 2.2)",
			maxU8, sumU8, sumU16, vecadd)
	}
	if !strings.Contains(r.String(), "relative") {
		t.Error("report rendering looks wrong")
	}
}

func TestFigure1AnnotationsShrinkOnlineWork(t *testing.T) {
	r, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AnnotationBytes <= 0 {
			t.Errorf("%s: no annotation bytes", row.Kernel)
		}
		if row.AnnotationBytes > row.EncodedBytes/2 {
			t.Errorf("%s: annotations (%dB) are not compact relative to the module (%dB)", row.Kernel, row.AnnotationBytes, row.EncodedBytes)
		}
		if row.JITStepsWithAnnotations >= row.JITStepsWithoutAnnotations {
			t.Errorf("%s: JIT with annotations (%d steps) is not cheaper than without (%d steps)",
				row.Kernel, row.JITStepsWithAnnotations, row.JITStepsWithoutAnnotations)
		}
		if row.OfflineSteps <= 0 {
			t.Errorf("%s: offline step accounting missing", row.Kernel)
		}
	}
	if !strings.Contains(r.String(), "offline steps") {
		t.Error("report rendering looks wrong")
	}
}

func TestRegAllocSplitSavesSpills(t *testing.T) {
	r, err := RunRegAlloc(RegAllocOptions{RegisterFiles: []int{4, 6, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(r.Points))
	}
	for _, p := range r.Points {
		if p.SpillsOnline == 0 || p.WeightedOnline == 0 {
			t.Errorf("%d regs: the online baseline should spill on the pressure suite", p.IntRegs)
		}
		if p.WeightedSplit > p.WeightedOnline {
			t.Errorf("%d regs: split allocation (%d weighted spills) must not be worse than online (%d)",
				p.IntRegs, p.WeightedSplit, p.WeightedOnline)
		}
		if p.WeightedOptimal > p.WeightedSplit {
			t.Errorf("%d regs: 'optimal' (%d weighted spills) should not be worse than split (%d)",
				p.IntRegs, p.WeightedOptimal, p.WeightedSplit)
		}
		if p.GapToOptimal > 0.25 {
			t.Errorf("%d regs: split allocation is %.0f%% away from the offline-quality reference, want comparable quality",
				p.IntRegs, p.GapToOptimal*100)
		}
	}
	if r.MaxSavings < 0.15 {
		t.Errorf("max spill savings %.0f%%, want a substantial reduction (paper: up to 40%%)", r.MaxSavings*100)
	}
	if !strings.Contains(r.String(), "saved vs online") {
		t.Error("report rendering looks wrong")
	}
}

func TestCodeSizeBytecodeIsCompact(t *testing.T) {
	r, err := RunCodeSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	if r.AverageExpansion <= 1.0 {
		t.Errorf("native code should be larger than the deployable bytecode on average, got ratio %.2f", r.AverageExpansion)
	}
	for _, row := range r.Rows {
		for arch, n := range row.NativeBytes {
			if n <= 0 {
				t.Errorf("%s on %s: missing native size", row.Module, arch)
			}
		}
	}
	if !strings.Contains(r.String(), "bytecode") {
		t.Error("report rendering looks wrong")
	}
}

func TestHeteroOffloadWinsAndMatches(t *testing.T) {
	r, err := RunHetero(HeteroOptions{Frames: 2, Samples: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !r.ResultsMatch {
		t.Error("host-only and offloaded runs disagree on results")
	}
	if !r.NumericalOffloaded {
		t.Error("the numerical kernel should be offloaded under the annotation-guided policy")
	}
	if !r.ControlStayedOnHost {
		t.Error("the control-heavy kernel should stay on the host")
	}
	if r.Speedup <= 1.0 {
		t.Errorf("offloading should pay off, got speedup %.2f", r.Speedup)
	}
	if !strings.Contains(r.String(), "host only") {
		t.Error("report rendering looks wrong")
	}
}

func TestScalarizationAblation(t *testing.T) {
	ratio, err := ScalarizationAblation("sum_u8", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1 {
		t.Errorf("SIMD lowering should beat forced scalarization, got ratio %.2f", ratio)
	}
}

func TestPressureSourceCompiles(t *testing.T) {
	src := pressureSource("p", 6, 4)
	if !strings.Contains(src, "i32 p(") || !strings.Contains(src, "for (") {
		t.Errorf("unexpected generated source:\n%s", src)
	}
}
