package bench

import (
	"fmt"
	"strings"

	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/hetero"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/vm"
)

// HeteroOptions parameterizes the whole-system offload experiment.
type HeteroOptions struct {
	// Frames is the number of application iterations (each frame runs a
	// control-heavy pass on the host plus a numerical kernel that can be
	// offloaded).
	Frames int
	// Samples is the size of the numerical working set per frame.
	Samples int
	Seed    int64
}

func (o *HeteroOptions) defaults() {
	if o.Frames == 0 {
		o.Frames = 8
	}
	if o.Samples == 0 {
		o.Samples = 2048
	}
	if o.Seed == 0 {
		o.Seed = 3
	}
}

// HeteroReport compares running a mixed control + numerical application on
// the host core only against the annotation-guided mapping that offloads the
// numerical kernels to the vector accelerator (the Cell-like scenario of
// Section 3).
type HeteroReport struct {
	Options HeteroOptions
	System  string

	HostOnlyCycles  int64
	OffloadedCycles int64
	Speedup         float64

	// NumericalOffloaded reports whether the numerical kernel ran on an
	// accelerator under the annotation-guided policy.
	NumericalOffloaded bool
	// ControlStayedOnHost reports whether the control-heavy kernel stayed
	// on the host under the annotation-guided policy.
	ControlStayedOnHost bool
	// ResultsMatch confirms both mappings computed identical results.
	ResultsMatch bool
}

// heteroAppSource is the mixed application: a control-heavy checksum (scalar,
// branchy: belongs on the host) and a vectorizable numerical kernel (belongs
// on the accelerator).
func heteroAppSource() string {
	return kernels.MustGet("checksum").Source + kernels.MustGet("saxpy_fp").Source
}

// RunHetero runs the same deployable module on a Cell-like system under both
// placement policies and compares end-to-end cycles.
func RunHetero(opts HeteroOptions) (*HeteroReport, error) {
	opts.defaults()
	res, err := core.CompileOffline(heteroAppSource(), core.OfflineOptions{ModuleName: "hetero-app"})
	if err != nil {
		return nil, err
	}
	sys := hetero.CellLike()
	report := &HeteroReport{Options: opts, System: sys.Name, ResultsMatch: true, ControlStayedOnHost: true}

	run := func(policy hetero.Policy) (int64, []float64, []int64, error) {
		rt, err := hetero.NewRuntime(sys, res.Encoded, policy)
		if err != nil {
			return 0, nil, nil, err
		}
		var total int64
		var numeric []float64
		var control []int64
		for frame := 0; frame < opts.Frames; frame++ {
			header := vm.NewArray(cil.U8, 256)
			for i := 0; i < header.Len(); i++ {
				header.SetInt(i, int64((frame*31+i*7)%256))
			}
			cres, err := rt.Call("checksum",
				hetero.ArrayArg(header),
				hetero.ScalarArg(cil.I32, sim.IntArg(int64(header.Len()))))
			if err != nil {
				return 0, nil, nil, err
			}
			total += cres.Cycles
			control = append(control, cres.Result.I)
			if policy == hetero.Annotated && cres.Offloaded {
				report.ControlStayedOnHost = false
			}

			y := vm.NewArray(cil.F64, opts.Samples)
			x := vm.NewArray(cil.F64, opts.Samples)
			for i := 0; i < opts.Samples; i++ {
				y.SetFloat(i, float64((i+frame)%17))
				x.SetFloat(i, float64((i*3+frame)%13))
			}
			nres, err := rt.Call("saxpy",
				hetero.ArrayArg(y), hetero.ArrayArg(x),
				hetero.ScalarArg(cil.F64, sim.FloatArg(1.5)),
				hetero.ScalarArg(cil.I32, sim.IntArg(int64(opts.Samples))))
			if err != nil {
				return 0, nil, nil, err
			}
			total += nres.Cycles
			if policy == hetero.Annotated && nres.Offloaded {
				report.NumericalOffloaded = true
			}
			out := nres.Outputs[0]
			numeric = append(numeric, out.Float(opts.Samples/2), out.Float(opts.Samples-1))
		}
		return total, numeric, control, nil
	}

	hostCycles, hostNumeric, hostControl, err := run(hetero.HostOnly)
	if err != nil {
		return nil, err
	}
	offCycles, offNumeric, offControl, err := run(hetero.Annotated)
	if err != nil {
		return nil, err
	}
	report.HostOnlyCycles = hostCycles
	report.OffloadedCycles = offCycles
	if offCycles > 0 {
		report.Speedup = float64(hostCycles) / float64(offCycles)
	}
	for i := range hostNumeric {
		if hostNumeric[i] != offNumeric[i] {
			report.ResultsMatch = false
		}
	}
	for i := range hostControl {
		if hostControl[i] != offControl[i] {
			report.ResultsMatch = false
		}
	}
	return report, nil
}

// String renders the report.
func (r *HeteroReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Heterogeneous offload (Section 3, %s system): %d frames, %d samples/frame\n\n",
		r.System, r.Options.Frames, r.Options.Samples)
	fmt.Fprintf(&b, "%-28s %16s\n", "policy", "host cycles")
	b.WriteString(strings.Repeat("-", 46) + "\n")
	fmt.Fprintf(&b, "%-28s %16d\n", "host only", r.HostOnlyCycles)
	fmt.Fprintf(&b, "%-28s %16d\n", "annotation-guided offload", r.OffloadedCycles)
	fmt.Fprintf(&b, "\nspeedup from opening the accelerator to portable code: %.2fx\n", r.Speedup)
	fmt.Fprintf(&b, "numerical kernel offloaded: %v, control code stayed on host: %v, results match: %v\n",
		r.NumericalOffloaded, r.ControlStayedOnHost, r.ResultsMatch)
	return b.String()
}
