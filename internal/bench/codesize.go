package bench

import (
	"context"

	"fmt"
	"strings"

	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// CodeSizeRow compares the deployable bytecode size of one module with the
// native code the JIT generates for each target (Section 2.1: CLI bytecode is
// a compact deployment format for embedded systems). BytecodeBytes is the
// size of the code-only encoding (the representation the compactness claim is
// about); annotations and the full deployable size are reported separately.
type CodeSizeRow struct {
	Module          string
	BytecodeBytes   int
	AnnotationBytes int
	TotalBytes      int
	NativeBytes     map[target.Arch]int
}

// CodeSizeReport is the code-compactness experiment.
type CodeSizeReport struct {
	Rows []CodeSizeRow
	// AverageExpansion is the mean native/bytecode size ratio across
	// modules and targets.
	AverageExpansion float64
}

// RunCodeSize measures encoded bytecode sizes against generated native code
// sizes for the kernel suite and a combined application module.
func RunCodeSize() (*CodeSizeReport, error) {
	report := &CodeSizeReport{}
	modules := make(map[string]string)
	for _, k := range kernels.All() {
		modules[k.Name] = k.Source
	}
	var app strings.Builder
	for _, k := range kernels.All() {
		app.WriteString(k.Source)
	}
	modules["whole-app"] = app.String()

	names := append(append([]string{}, kernels.Table1Names...), "checksum", "fir", "whole-app")
	var ratioSum float64
	var ratioCount int
	for _, name := range names {
		src, ok := modules[name]
		if !ok {
			continue
		}
		res, err := core.CompileOffline(src, core.OfflineOptions{ModuleName: name})
		if err != nil {
			return nil, err
		}
		row := CodeSizeRow{
			Module:          name,
			BytecodeBytes:   cil.EncodedSize(res.Module.StripAnnotations()),
			AnnotationBytes: res.AnnotationBytes,
			TotalBytes:      len(res.Encoded),
			NativeBytes:     make(map[target.Arch]int),
		}
		for _, tgt := range target.Table1() {
			dep, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
			if err != nil {
				return nil, err
			}
			// Code size measures the produced code; a lazy deployment
			// (SPLITVM_LAZY) must materialize it all first.
			if err := dep.EnsureCompiled(context.Background()); err != nil {
				return nil, err
			}
			n := dep.NativeCodeBytes()
			row.NativeBytes[tgt.Arch] = n
			ratioSum += float64(n) / float64(row.BytecodeBytes)
			ratioCount++
		}
		report.Rows = append(report.Rows, row)
	}
	if ratioCount > 0 {
		report.AverageExpansion = ratioSum / float64(ratioCount)
	}
	return report, nil
}

// String renders the report.
func (r *CodeSizeReport) String() string {
	var b strings.Builder
	b.WriteString("Code size: deployable bytecode vs JIT-generated native code (Section 2.1 compactness claim)\n\n")
	fmt.Fprintf(&b, "%-12s %10s %8s", "module", "bytecode", "annot")
	for _, tgt := range target.Table1() {
		fmt.Fprintf(&b, " %12s", tgt.Arch)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 12+10+8+3+12*3) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %9dB %7dB", row.Module, row.BytecodeBytes, row.AnnotationBytes)
		for _, tgt := range target.Table1() {
			fmt.Fprintf(&b, " %11dB", row.NativeBytes[tgt.Arch])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\naverage native/bytecode expansion: %.2fx\n", r.AverageExpansion)
	return b.String()
}
