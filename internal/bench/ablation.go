package bench

import (
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// ScalarizationAblation measures, on the SIMD-capable x86 target, how much
// faster the same vectorized bytecode runs when the JIT uses the vector unit
// compared to being forced to scalarize the builtins (the design choice the
// paper's Table 1 isolates across targets, here isolated on a single target).
// It returns the cycles(forced-scalarized) / cycles(SIMD) ratio.
func ScalarizationAblation(kernel string, n int) (float64, error) {
	res, k, err := core.CompileKernel(kernel, core.OfflineOptions{})
	if err != nil {
		return 0, err
	}
	in, err := kernels.NewInputs(kernel, n, 11)
	if err != nil {
		return 0, err
	}
	tgt := target.MustLookup(target.X86SSE)

	simd, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		return 0, err
	}
	simdRun, err := simd.RunKernel(k, in)
	if err != nil {
		return 0, err
	}
	forced, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit, ForceScalarize: true})
	if err != nil {
		return 0, err
	}
	forcedRun, err := forced.RunKernel(k, in)
	if err != nil {
		return 0, err
	}
	return float64(forcedRun.Cycles) / float64(simdRun.Cycles), nil
}
