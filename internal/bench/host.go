package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/target"
)

// The host-throughput experiment measures how fast the simulator itself
// runs on the host: wall-clock nanoseconds, heap allocations and simulated
// instructions per host-second for each Table 1 kernel on each Table 1
// target. Unlike every other experiment these numbers are *not*
// deterministic — they depend on the host CPU and load — so they are
// recorded in BENCH_results.json for trend tracking but deliberately
// excluded from the metrics the cmd/benchdiff regression gate compares
// (see Results.Metrics).

// HostOptions parameterizes the host-throughput measurement.
type HostOptions struct {
	// N is the number of elements per kernel invocation.
	N int
	// Runs is the number of timed executions per (kernel, target) cell.
	Runs int
	// Seed makes the pseudo-random inputs reproducible.
	Seed int64
}

func (o *HostOptions) defaults() {
	if o.N == 0 {
		o.N = 4096
	}
	if o.Runs == 0 {
		o.Runs = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// HostCell is the host-side measurement of one kernel's vectorized
// deployment on one target.
type HostCell struct {
	Kernel string
	Target target.Arch
	// Runs is the number of timed executions averaged below.
	Runs int
	// SimInstructions and SimCycles are the deterministic per-run simulated
	// counts (they contextualize the host numbers).
	SimInstructions int64
	SimCycles       int64
	// HostNanosPerRun is the average wall-clock time of one execution.
	HostNanosPerRun float64
	// AllocsPerRun is the average number of heap allocations per execution
	// (0 in the steady state of the pre-decoded dispatch loop).
	AllocsPerRun float64
	// SimMIPS is simulated instructions executed per host second, in
	// millions: the headline throughput of the simulator's dispatch loop.
	SimMIPS float64
}

// HostReport is the host-throughput measurement across the Table 1 matrix.
type HostReport struct {
	Options HostOptions
	// GoVersion and NumCPU describe the host the numbers were taken on.
	GoVersion string
	NumCPU    int
	Cells     []HostCell
}

// RunHost measures host throughput of the simulator over the Table 1
// kernels and targets. Each cell deploys the vectorized bytecode, marshals
// the inputs once, warms the pre-decoded core up with one untimed run, then
// times Runs steady-state executions over the in-place inputs.
func RunHost(opts HostOptions) (*HostReport, error) {
	opts.defaults()
	report := &HostReport{Options: opts, GoVersion: runtime.Version(), NumCPU: runtime.NumCPU()}

	for _, name := range kernels.Table1Names {
		k := kernels.MustGet(name)
		res, _, err := core.CompileKernel(name, core.OfflineOptions{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		for _, tgt := range target.Table1() {
			dep, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
			if err != nil {
				return nil, err
			}
			in, err := kernels.NewInputs(name, opts.N, opts.Seed)
			if err != nil {
				return nil, err
			}
			cell, err := measureHostCell(k, dep, in, opts.Runs)
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", name, tgt.Name, err)
			}
			report.Cells = append(report.Cells, cell)
		}
	}
	return report, nil
}

// MarshalKernelArgs copies a kernel's array inputs into the machine's heap
// and builds the argument list for the kernel entry point, returning the
// arguments and the simulated addresses of the copied arrays (in
// in.Arrays order). It is the one marshalling protocol shared by the
// experiment harness, the wall-clock benchmarks and the differential tests.
func MarshalKernelArgs(m *sim.Machine, in *kernels.Inputs) ([]sim.Value, []sim.Addr) {
	args := make([]sim.Value, len(in.Args))
	addrs := make([]sim.Addr, 0, len(in.Arrays))
	arrIdx := 0
	for i, a := range in.Args {
		switch {
		case a.Kind == cil.Ref:
			addr := m.CopyInArray(in.Arrays[arrIdx])
			addrs = append(addrs, addr)
			arrIdx++
			args[i] = sim.IntArg(int64(addr))
		case a.Kind.IsFloat():
			args[i] = sim.FloatArg(a.Float())
		default:
			args[i] = sim.IntArg(a.Int())
		}
	}
	return args, addrs
}

func measureHostCell(k kernels.Kernel, dep *core.Deployment, in *kernels.Inputs, runs int) (HostCell, error) {
	m := dep.Machine
	// Marshal the inputs once. The Table 1 kernels execute the same
	// instruction sequence regardless of array contents, so re-running over
	// the same memory is a faithful steady state.
	args, _ := MarshalKernelArgs(m, in)
	// Warm-up: decodes the functions and grows the frame pool off the clock.
	if _, err := m.Call(k.Entry, args...); err != nil {
		return HostCell{}, err
	}
	m.ResetStats()

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := m.Call(k.Entry, args...); err != nil {
			return HostCell{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	cell := HostCell{
		Kernel:          k.Name,
		Target:          dep.Target.Arch,
		Runs:            runs,
		SimInstructions: m.Stats.Instructions / int64(runs),
		SimCycles:       m.Stats.Cycles / int64(runs),
		HostNanosPerRun: float64(elapsed.Nanoseconds()) / float64(runs),
		AllocsPerRun:    float64(ms1.Mallocs-ms0.Mallocs) / float64(runs),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		cell.SimMIPS = float64(m.Stats.Instructions) / sec / 1e6
	}
	return cell, nil
}

// String renders the host-throughput matrix.
func (r *HostReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Host throughput: simulator dispatch-loop speed on this host (n=%d, %d runs/cell, %s, %d CPUs)\n",
		r.Options.N, r.Options.Runs, r.GoVersion, r.NumCPU)
	b.WriteString("wall-clock numbers are host-dependent; they are tracked, not gated\n\n")
	fmt.Fprintf(&b, "%-12s %-12s %14s %14s %12s %10s %10s\n",
		"benchmark", "target", "sim instr/run", "sim cyc/run", "host ns/run", "allocs/run", "sim MIPS")
	b.WriteString(strings.Repeat("-", 90) + "\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-12s %-12s %14d %14d %12.0f %10.1f %10.1f\n",
			c.Kernel, c.Target, c.SimInstructions, c.SimCycles, c.HostNanosPerRun, c.AllocsPerRun, c.SimMIPS)
	}
	return b.String()
}
