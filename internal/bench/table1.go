// Package bench implements the experiment harness: one entry point per table
// or figure of the paper (plus the quantified claims of Sections 2-4), each
// producing a structured report and a formatted table that mirrors the
// paper's presentation. The testing.B benchmarks in the repository root and
// the cmd/dacbench tool are thin wrappers around this package.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// Table1Options parameterizes the split-vectorization experiment.
type Table1Options struct {
	// N is the number of elements per kernel invocation (the paper does not
	// state its vector length; 4096 keeps the working set cache-resident).
	N int
	// Seed makes the pseudo-random inputs reproducible.
	Seed int64
}

func (o *Table1Options) defaults() {
	if o.N == 0 {
		o.N = 4096
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Table1Cell is one (kernel, target) measurement.
type Table1Cell struct {
	Target        target.Arch
	ScalarCycles  int64
	VectorCycles  int64
	Relative      float64 // scalar / vectorized, the paper's "relative" column
	ScalarMillis  float64 // scaled by the paper's iteration counts and the target clock
	VectorMillis  float64
	Iterations    int64
	VectorLowered bool // true when the JIT used the SIMD unit, false when it scalarized
}

// Table1Row is one kernel of Table 1 across the three targets.
type Table1Row struct {
	Kernel string
	Cells  []Table1Cell
}

// Table1Report is the full reproduction of Table 1.
type Table1Report struct {
	Options Table1Options
	Rows    []Table1Row
}

// paperIterations mirrors the outer iteration counts of the paper's Table 1
// header (10^6 on x86, 10^5 on UltraSparc and PowerPC).
func paperIterations(arch target.Arch) int64 {
	if arch == target.X86SSE {
		return 1_000_000
	}
	return 100_000
}

// RunTable1 reproduces Table 1: each kernel is compiled once to scalar
// bytecode and once to vectorized bytecode (portable builtins), deployed on
// the three simulated targets, and timed for one pass over N elements.
func RunTable1(opts Table1Options) (*Table1Report, error) {
	opts.defaults()
	report := &Table1Report{Options: opts}

	for _, name := range kernels.Table1Names {
		k := kernels.MustGet(name)
		scalar, _, err := core.CompileKernel(name, core.OfflineOptions{DisableVectorize: true})
		if err != nil {
			return nil, fmt.Errorf("bench: %s scalar: %w", name, err)
		}
		vector, _, err := core.CompileKernel(name, core.OfflineOptions{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s vectorized: %w", name, err)
		}
		inputs, err := kernels.NewInputs(name, opts.N, opts.Seed)
		if err != nil {
			return nil, err
		}

		row := Table1Row{Kernel: k.Name}
		for _, tgt := range target.Table1() {
			cell, err := measureCell(k, scalar, vector, inputs, tgt)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, cell)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

func measureCell(k kernels.Kernel, scalar, vector *core.OfflineResult, in *kernels.Inputs, tgt *target.Desc) (Table1Cell, error) {
	jopts := jit.Options{RegAlloc: jit.RegAllocSplit}

	depScalar, err := core.Deploy(scalar.Encoded, tgt, jopts)
	if err != nil {
		return Table1Cell{}, err
	}
	runScalar, err := depScalar.RunKernel(k, in)
	if err != nil {
		return Table1Cell{}, err
	}
	depVector, err := core.Deploy(vector.Encoded, tgt, jopts)
	if err != nil {
		return Table1Cell{}, err
	}
	runVector, err := depVector.RunKernel(k, in)
	if err != nil {
		return Table1Cell{}, err
	}

	iters := paperIterations(tgt.Arch)
	toMillis := func(cycles int64) float64 {
		return float64(cycles) * float64(iters) / (float64(tgt.ClockMHz) * 1e3)
	}
	cell := Table1Cell{
		Target:        tgt.Arch,
		ScalarCycles:  runScalar.Cycles,
		VectorCycles:  runVector.Cycles,
		Relative:      float64(runScalar.Cycles) / float64(runVector.Cycles),
		ScalarMillis:  toMillis(runScalar.Cycles),
		VectorMillis:  toMillis(runVector.Cycles),
		Iterations:    iters,
		VectorLowered: depVector.Program.Func(k.Entry).Stats.VectorLowered > 0,
	}
	return cell, nil
}

// String renders the report in the layout of the paper's Table 1.
func (r *Table1Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: run times and speedup of split automatic vectorization (n=%d elements per call)\n", r.Options.N)
	b.WriteString("run times are scaled to the paper's iteration counts; 'relative' = scalar/vectorized\n\n")
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, tgt := range target.Table1() {
		fmt.Fprintf(&b, " | %-32s", fmt.Sprintf("%s (10^%d iter)", tgt.Name, exp10(paperIterations(tgt.Arch))))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "")
	for range target.Table1() {
		fmt.Fprintf(&b, " | %10s %10s %8s", "scalar", "vect.", "relative")
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 12+3*36) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s", row.Kernel)
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " | %10.0f %10.0f %8.2f", c.ScalarMillis, c.VectorMillis, c.Relative)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func exp10(v int64) int {
	e := 0
	for v >= 10 {
		v /= 10
		e++
	}
	return e
}

// Speedup returns the relative speedup measured for a kernel on a target.
func (r *Table1Report) Speedup(kernel string, arch target.Arch) (float64, bool) {
	for _, row := range r.Rows {
		if row.Kernel != kernel {
			continue
		}
		for _, c := range row.Cells {
			if c.Target == arch {
				return c.Relative, true
			}
		}
	}
	return 0, false
}
