package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/target"
)

// Results is the schema of the machine-readable artifact cmd/dacbench
// writes (BENCH_results.json): the report of every experiment that ran.
// cmd/benchdiff compares two such artifacts to gate performance regressions
// in CI.
type Results struct {
	Table1   *Table1Report   `json:"table1,omitempty"`
	Figure1  *Figure1Report  `json:"figure1,omitempty"`
	RegAlloc *RegAllocReport `json:"regalloc,omitempty"`
	CodeSize *CodeSizeReport `json:"codesize,omitempty"`
	Hetero   *HeteroReport   `json:"hetero,omitempty"`
	// Host carries the host-throughput measurement (wall-clock speed of the
	// simulator itself). It is tracked in the artifact but host-dependent
	// and noisy, so Metrics deliberately ignores it: the regression gate
	// only compares the deterministic simulated metrics above. Artifacts
	// written before this field existed simply decode with Host == nil.
	Host *HostReport `json:"host,omitempty"`
	// Anno tracks the annotation-container trajectory (encoded sizes per
	// writer version, fallback counts). Like Host it is recorded but never
	// gated: its numbers change exactly when the annotation schema evolves,
	// and the correctness contract is enforced by the golden corpus test
	// instead. New non-gated sections belong in this pattern — add them
	// here and leave them out of both Metrics and gatedSections.
	Anno *AnnoReport `json:"anno,omitempty"`
	// Compile carries the compile-throughput measurement (wall-clock speed
	// of the online JIT itself: ns/compile, allocs/compile, methods/sec,
	// parallel-pipeline speedup). Host-dependent like Host, so tracked but
	// never gated; what *is* gated about compilation — that the generated
	// code stays bit-identical — is covered by the deterministic sections
	// above plus the workers=1 vs workers=N comparison in CI.
	Compile *CompileReport `json:"compile,omitempty"`
	// Tier carries the tiered-execution measurement (promotion latency cold
	// versus profile-warmed, tier-2 host speedup, fused pairs, profile
	// sizes). Host-dependent like Host and Compile, so tracked but never
	// gated; what *is* gated about tiering is its absence from every other
	// number — CI re-runs the full gated benchdiff with tiering enabled and
	// demands zero drift.
	Tier *TierReport `json:"tier,omitempty"`
	// Serve carries the serving-latency measurement (svd HTTP deploy/run
	// percentiles, warm-restart speedup through the disk cache, router hop
	// overhead). Host-dependent like Host, Compile and Tier, so tracked but
	// never gated; what *is* gated about serving — warm restarts deploying
	// from cache with zero compilations — is asserted by the svd-smoke CI
	// job and the e2e warm-restart test.
	Serve *ServeReport `json:"serve,omitempty"`
}

// gatedSections are the top-level artifact keys whose metrics the
// regression gate compares (the sections Metrics flattens). Everything else
// — host throughput, annotation trajectory, future tracked-only sections —
// is recorded but never gated, and StripUngated removes it generically when
// a baseline is refreshed.
var gatedSections = []string{"table1", "figure1", "regalloc", "codesize", "hetero"}

// GatedSections lists the artifact sections the regression gate compares.
func GatedSections() []string { return append([]string(nil), gatedSections...) }

// StripUngated removes every non-gated top-level section from a raw results
// artifact, returning the canonical baseline form (sorted keys, indented).
// It operates on the JSON generically so future tracked-only sections are
// stripped without anyone remembering to special-case them.
func StripUngated(data []byte) ([]byte, error) {
	var all map[string]json.RawMessage
	if err := json.Unmarshal(data, &all); err != nil {
		return nil, fmt.Errorf("bench: parsing results: %w", err)
	}
	kept := make(map[string]json.RawMessage, len(gatedSections))
	for _, k := range gatedSections {
		if v, ok := all[k]; ok {
			kept[k] = v
		}
	}
	out, err := json.MarshalIndent(kept, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseResults decodes a BENCH_results.json artifact.
func ParseResults(data []byte) (*Results, error) {
	var r Results
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing results: %w", err)
	}
	return &r, nil
}

// Metric is one lower-is-better scalar extracted from a Results artifact:
// simulated cycles, JIT effort, spill weights, code sizes.
type Metric struct {
	Name  string
	Value float64
}

// Metrics flattens the artifact into named lower-is-better scalars, in a
// stable order. The names are hierarchical (experiment/case/quantity) so a
// regression report reads without cross-referencing the JSON. Only the
// deterministic simulated metrics are included; the host-throughput section
// (Results.Host) is wall-clock noise and never gated.
func (r *Results) Metrics() []Metric {
	var out []Metric
	add := func(name string, v float64) { out = append(out, Metric{Name: name, Value: v}) }

	if r.Table1 != nil {
		for _, row := range r.Table1.Rows {
			for _, cell := range row.Cells {
				base := fmt.Sprintf("table1/%s/%s/", row.Kernel, cell.Target)
				add(base+"scalar_cycles", float64(cell.ScalarCycles))
				add(base+"vector_cycles", float64(cell.VectorCycles))
			}
		}
	}
	if r.Figure1 != nil {
		for _, row := range r.Figure1.Rows {
			add(fmt.Sprintf("figure1/%s/jit_steps_annotated", row.Kernel), float64(row.JITStepsWithAnnotations))
			add(fmt.Sprintf("figure1/%s/annotation_bytes", row.Kernel), float64(row.AnnotationBytes))
		}
	}
	if r.RegAlloc != nil {
		for _, pt := range r.RegAlloc.Points {
			base := fmt.Sprintf("regalloc/r%d/", pt.IntRegs)
			add(base+"weighted_online", float64(pt.WeightedOnline))
			add(base+"weighted_split", float64(pt.WeightedSplit))
			add(base+"weighted_optimal", float64(pt.WeightedOptimal))
		}
	}
	if r.CodeSize != nil {
		for _, row := range r.CodeSize.Rows {
			base := fmt.Sprintf("codesize/%s/", row.Module)
			add(base+"total_bytes", float64(row.TotalBytes))
			archs := make([]string, 0, len(row.NativeBytes))
			for a := range row.NativeBytes {
				archs = append(archs, string(a))
			}
			sort.Strings(archs)
			for _, a := range archs {
				add(base+"native_"+a, float64(row.NativeBytes[target.Arch(a)]))
			}
		}
	}
	if r.Hetero != nil {
		add("hetero/host_only_cycles", float64(r.Hetero.HostOnlyCycles))
		add("hetero/offloaded_cycles", float64(r.Hetero.OffloadedCycles))
	}
	return out
}

// DiffOptions tunes the regression gate. The zero value is the exact gate:
// any increase at all is a regression — a meaningful choice here because
// the simulated targets are deterministic. cmd/benchdiff defaults to a
// slightly looser 2% + 2 to absorb intentional low-noise drift.
type DiffOptions struct {
	// RelTol is the allowed fractional increase of a metric before it counts
	// as a regression (0 = exact).
	RelTol float64
	// AbsTol is an absolute allowance added on top, so tiny metrics (a
	// 3-cycle kernel growing to 4) don't trip the relative gate.
	AbsTol float64
}

// DiffStatus classifies one metric comparison.
type DiffStatus string

// The comparison outcomes.
const (
	// DiffOK: within tolerance.
	DiffOK DiffStatus = "ok"
	// DiffRegression: the current value exceeds baseline by more than the
	// tolerance. Fails the gate.
	DiffRegression DiffStatus = "regression"
	// DiffImproved: the current value undercuts baseline by more than the
	// tolerance; informational (refresh the baseline to lock it in).
	DiffImproved DiffStatus = "improved"
	// DiffMissing: present in the baseline but absent from the current run —
	// an experiment silently stopped running. Fails the gate.
	DiffMissing DiffStatus = "missing"
	// DiffNew: present only in the current run; informational.
	DiffNew DiffStatus = "new"
)

// DiffRow is one compared metric.
type DiffRow struct {
	Name     string
	Baseline float64
	Current  float64
	// Delta is the fractional change (current/baseline - 1); 0 when the
	// baseline is 0 or the metric is missing on either side.
	Delta  float64
	Status DiffStatus
}

// DiffReport is the outcome of comparing a current Results artifact against
// a baseline.
type DiffReport struct {
	Options     DiffOptions
	Rows        []DiffRow
	Regressions int
	Missing     int
	Improved    int
	New         int
}

// Failed reports whether the gate should fail the build: any metric
// regressed beyond tolerance, or the baseline covers an experiment the
// current run skipped.
func (d *DiffReport) Failed() bool { return d.Regressions > 0 || d.Missing > 0 }

// Compare evaluates every baseline metric against the current run. Metrics
// are lower-is-better; a current value above baseline*(1+RelTol)+AbsTol is
// a regression, below baseline*(1-RelTol)-AbsTol an improvement.
func Compare(baseline, current *Results, opts DiffOptions) *DiffReport {
	rep := &DiffReport{Options: opts}

	cur := make(map[string]float64)
	var curOrder []string
	for _, m := range current.Metrics() {
		if _, dup := cur[m.Name]; !dup {
			curOrder = append(curOrder, m.Name)
		}
		cur[m.Name] = m.Value
	}

	seen := make(map[string]bool)
	for _, b := range baseline.Metrics() {
		if seen[b.Name] {
			continue
		}
		seen[b.Name] = true
		row := DiffRow{Name: b.Name, Baseline: b.Value}
		c, ok := cur[b.Name]
		if !ok {
			row.Status = DiffMissing
			rep.Missing++
			rep.Rows = append(rep.Rows, row)
			continue
		}
		row.Current = c
		if b.Value != 0 {
			row.Delta = c/b.Value - 1
		}
		switch {
		case c > b.Value*(1+opts.RelTol)+opts.AbsTol:
			row.Status = DiffRegression
			rep.Regressions++
		case c < b.Value*(1-opts.RelTol)-opts.AbsTol:
			row.Status = DiffImproved
			rep.Improved++
		default:
			row.Status = DiffOK
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, name := range curOrder {
		if !seen[name] {
			rep.Rows = append(rep.Rows, DiffRow{Name: name, Current: cur[name], Status: DiffNew})
			rep.New++
		}
	}
	return rep
}

// String renders the non-OK rows and a one-line verdict (the full row list
// stays available programmatically).
func (d *DiffReport) String() string {
	var b strings.Builder
	for _, row := range d.Rows {
		switch row.Status {
		case DiffOK:
			continue
		case DiffMissing:
			fmt.Fprintf(&b, "MISSING     %-46s baseline %.0f, absent from current run\n", row.Name, row.Baseline)
		case DiffNew:
			fmt.Fprintf(&b, "new         %-46s %.0f (no baseline)\n", row.Name, row.Current)
		default:
			fmt.Fprintf(&b, "%-11s %-46s %.0f -> %.0f (%+.1f%%)\n",
				strings.ToUpper(string(row.Status)), row.Name, row.Baseline, row.Current, 100*row.Delta)
		}
	}
	total := len(d.Rows)
	fmt.Fprintf(&b, "%d metrics: %d regressed, %d missing, %d improved, %d new (tolerance %.1f%% + %.0f)\n",
		total, d.Regressions, d.Missing, d.Improved, d.New, 100*d.Options.RelTol, d.Options.AbsTol)
	return b.String()
}
