package bench

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/target"
)

func TestRunTierMeasuresEveryCell(t *testing.T) {
	r, err := RunTier(TierBenchOptions{N: 256, Runs: 3, PromoteCalls: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kernels.Table1Names) * len(target.Table1()); len(r.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(r.Cells), want)
	}
	for _, c := range r.Cells {
		// RunTier itself errors on a cycle mismatch, so a returned cell
		// already passed the tier-invariance check.
		if c.SimCycles <= 0 || c.Tier1NanosPerRun <= 0 || c.Tier2NanosPerRun <= 0 {
			t.Errorf("%s/%s: missing measurements: %+v", c.Kernel, c.Target, c)
		}
		if c.ColdPromoteCalls != 2 {
			t.Errorf("%s/%s: cold promotion latency %d, want the threshold 2", c.Kernel, c.Target, c.ColdPromoteCalls)
		}
		// The exported profile must measurably speed up the fresh
		// deployment: warm promotion on the first call.
		if c.WarmPromoteCalls != 1 {
			t.Errorf("%s/%s: warm promotion latency %d, want 1", c.Kernel, c.Target, c.WarmPromoteCalls)
		}
		if c.FusedPairs < 1 {
			t.Errorf("%s/%s: no fused pairs", c.Kernel, c.Target)
		}
		if c.ProfileBytes <= 0 {
			t.Errorf("%s/%s: empty serialized profile", c.Kernel, c.Target)
		}
		if c.ReallocConfirmed+c.ReallocDiverged == 0 {
			t.Errorf("%s/%s: profile-guided regalloc validation never ran", c.Kernel, c.Target)
		}
	}
	if s := r.String(); !strings.Contains(s, "prof bytes") || !strings.Contains(s, "saxpy_fp") {
		t.Errorf("report rendering looks wrong:\n%s", s)
	}
}

// TestTierSectionIsTrackedNotGated pins the compatibility contract of the
// tier section: artifacts without it (old baselines) compare cleanly
// against artifacts with it, and none of its values ever become gated
// metrics.
func TestTierSectionIsTrackedNotGated(t *testing.T) {
	baseline := sampleResults() // pre-tier schema: Tier == nil
	current := clone(t, sampleResults())
	current.Tier = &TierReport{
		Options: TierBenchOptions{N: 256, Runs: 3, PromoteCalls: 2},
		Cells: []TierCell{{
			Kernel: "saxpy_fp", Target: target.X86SSE,
			SimCycles: 4000, ColdPromoteCalls: 2, WarmPromoteCalls: 1,
			Tier1NanosPerRun: 12345, Tier2NanosPerRun: 11000, Tier2Speedup: 1.12,
			FusedPairs: 3, ReallocDiverged: 1, ProfileBytes: 42,
		}},
	}

	for _, m := range current.Metrics() {
		if strings.HasPrefix(m.Name, "tier/") {
			t.Errorf("tier metric %q leaked into the gated metric set", m.Name)
		}
	}
	if got, want := len(current.Metrics()), len(baseline.Metrics()); got != want {
		t.Errorf("tier section changed the gated metric count: %d != %d", got, want)
	}
	rep := Compare(baseline, current, DiffOptions{})
	if rep.Failed() {
		t.Fatalf("tier section must not fail the gate:\n%s", rep)
	}
	if rep.New != 0 {
		t.Errorf("tier section produced %d unexpected new gated metrics", rep.New)
	}

	// Round-tripping an artifact that carries the tier section keeps it.
	if again := clone(t, current); again.Tier == nil || len(again.Tier.Cells) != 1 {
		t.Error("tier section lost in the JSON round trip")
	}
}
