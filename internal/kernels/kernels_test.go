package kernels

import (
	"testing"

	"repro/internal/cil"
	"repro/internal/minic"
)

func TestAllKernelsParseAndCheck(t *testing.T) {
	for _, k := range All() {
		prog, err := minic.Parse(k.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", k.Name, err)
			continue
		}
		if _, err := minic.Check(prog); err != nil {
			t.Errorf("%s: check: %v", k.Name, err)
		}
		if prog.Func(k.Entry) == nil {
			t.Errorf("%s: entry point %q not defined", k.Name, k.Entry)
		}
		if k.Description == "" {
			t.Errorf("%s: missing description", k.Name)
		}
	}
}

func TestGetAndTable1(t *testing.T) {
	if len(Table1()) != 6 || len(Table1Names) != 6 {
		t.Fatal("Table 1 must have six kernels")
	}
	if _, err := Get("vecadd_fp"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet should panic on unknown kernels")
		}
	}()
	MustGet("nope")
}

func TestInputsAreReproducibleAndCloned(t *testing.T) {
	a, err := NewInputs("sum_u8", 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInputs("sum_u8", 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if a.Arrays[0].Int(i) != b.Arrays[0].Int(i) {
			t.Fatal("same seed must give identical inputs")
		}
	}
	c := a.Clone()
	c.Arrays[0].SetInt(0, 111)
	if a.Arrays[0].Int(0) == 111 {
		t.Error("Clone must not share storage")
	}
	if c.Args[0].Ref == a.Args[0].Ref {
		t.Error("Clone must rebind array arguments to the copies")
	}
	if _, err := NewInputs("nope", 8, 1); err == nil {
		t.Error("unknown kernel accepted by NewInputs")
	}
}

func TestReferenceImplementations(t *testing.T) {
	for _, k := range All() {
		in, err := NewInputs(k.Name, 50, 4)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		res, err := Reference(k.Name, in)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if k.Reduction && k.Name != "min_u8" && res == 0 && k.Elem != cil.F64 {
			t.Errorf("%s: reference reduction returned 0, inputs look degenerate", k.Name)
		}
	}
	// Spot check sum_u8 against a manual sum.
	in, _ := NewInputs("sum_u8", 10, 7)
	want := 0.0
	for i := 0; i < 10; i++ {
		want += float64(in.Arrays[0].Int(i))
	}
	got, _ := Reference("sum_u8", in)
	if got != want {
		t.Errorf("sum_u8 reference = %v, want %v", got, want)
	}
	if _, err := Reference("nope", in); err == nil {
		t.Error("unknown kernel accepted by Reference")
	}
}
