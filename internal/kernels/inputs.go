package kernels

import (
	"math/rand"

	"repro/internal/cil"
	"repro/internal/vm"
)

// Inputs bundles the VM-level argument values for one kernel invocation plus
// the Go-side copies the reference implementations operate on.
type Inputs struct {
	// Args are the values passed to the kernel entry point, in order.
	Args []vm.Value
	// Arrays holds the managed arrays referenced by Args (in Args order for
	// array-typed parameters), so tests and harnesses can inspect outputs.
	Arrays []*vm.Array
	// N is the element count.
	N int
}

// NewInputs builds deterministic pseudo-random inputs of n elements for the
// named kernel, seeded so experiments are reproducible.
func NewInputs(name string, n int, seed int64) (*Inputs, error) {
	k, err := Get(name)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	in := &Inputs{N: n}

	newFloatArr := func(scale float64) *vm.Array {
		a := vm.NewArray(k.Elem, n)
		for i := 0; i < n; i++ {
			// Small integer-valued contents keep float map kernels exactly
			// comparable between scalar and vectorized code.
			a.SetFloat(i, float64(r.Intn(64))*scale)
		}
		in.Arrays = append(in.Arrays, a)
		return a
	}
	newIntArr := func(kind cil.Kind, mod int64) *vm.Array {
		a := vm.NewArray(kind, n)
		for i := 0; i < n; i++ {
			a.SetInt(i, r.Int63n(mod))
		}
		in.Arrays = append(in.Arrays, a)
		return a
	}

	switch name {
	case "vecadd_fp":
		c := vm.NewArray(cil.F64, n)
		in.Arrays = append(in.Arrays, c)
		a := newFloatArr(1)
		b := newFloatArr(0.5)
		in.Args = []vm.Value{vm.RefValue(c), vm.RefValue(a), vm.RefValue(b), vm.IntValue(cil.I32, int64(n))}
	case "saxpy_fp":
		y := newFloatArr(1)
		x := newFloatArr(0.25)
		in.Args = []vm.Value{vm.RefValue(y), vm.RefValue(x), vm.FloatValue(cil.F64, 2.0), vm.IntValue(cil.I32, int64(n))}
	case "dscal_fp":
		x := newFloatArr(1)
		in.Args = []vm.Value{vm.RefValue(x), vm.FloatValue(cil.F64, 0.5), vm.IntValue(cil.I32, int64(n))}
	case "max_u8", "sum_u8", "min_u8", "checksum":
		a := newIntArr(cil.U8, 256)
		in.Args = []vm.Value{vm.RefValue(a), vm.IntValue(cil.I32, int64(n))}
	case "sum_u16":
		a := newIntArr(cil.U16, 65536)
		in.Args = []vm.Value{vm.RefValue(a), vm.IntValue(cil.I32, int64(n))}
	case "sum_i32":
		a := newIntArr(cil.I32, 1<<20)
		in.Args = []vm.Value{vm.RefValue(a), vm.IntValue(cil.I32, int64(n))}
	case "dotprod_fp":
		a := newFloatArr(1)
		b := newFloatArr(1)
		in.Args = []vm.Value{vm.RefValue(a), vm.RefValue(b), vm.IntValue(cil.I32, int64(n))}
	case "scale_add_f32":
		d := vm.NewArray(cil.F32, n)
		in.Arrays = append(in.Arrays, d)
		x := vm.NewArray(cil.F32, n)
		y := vm.NewArray(cil.F32, n)
		for i := 0; i < n; i++ {
			x.SetFloat(i, float64(r.Intn(32)))
			y.SetFloat(i, float64(r.Intn(32)))
		}
		in.Arrays = append(in.Arrays, x, y)
		in.Args = []vm.Value{vm.RefValue(d), vm.RefValue(x), vm.RefValue(y),
			vm.FloatValue(cil.F32, 3), vm.FloatValue(cil.F32, 0.5), vm.IntValue(cil.I32, int64(n))}
	case "fir":
		out := vm.NewArray(cil.F64, n)
		in.Arrays = append(in.Arrays, out)
		src := newFloatArr(1)
		in.Args = []vm.Value{vm.RefValue(out), vm.RefValue(src),
			vm.FloatValue(cil.F64, 0.25), vm.FloatValue(cil.F64, 0.5), vm.FloatValue(cil.F64, 0.25),
			vm.IntValue(cil.I32, int64(n))}
	default:
		return nil, errUnknownInputs(name)
	}
	return in, nil
}

type errUnknownInputs string

func (e errUnknownInputs) Error() string { return "kernels: no input generator for " + string(e) }

// Clone deep-copies the inputs so that a kernel with in/out arrays can be run
// several times (or by several back ends) from identical initial state.
func (in *Inputs) Clone() *Inputs {
	c := &Inputs{N: in.N}
	replaced := make(map[*vm.Array]*vm.Array)
	for _, a := range in.Arrays {
		na := vm.NewArray(a.Elem, a.Len())
		copy(na.Data, a.Data)
		replaced[a] = na
		c.Arrays = append(c.Arrays, na)
	}
	for _, v := range in.Args {
		if v.Kind == cil.Ref && v.Ref != nil {
			c.Args = append(c.Args, vm.RefValue(replaced[v.Ref]))
		} else {
			c.Args = append(c.Args, v)
		}
	}
	return c
}

// Reference computes the expected result of the kernel on the (current)
// contents of the inputs using a plain Go implementation. For map kernels it
// returns 0 and fills the output array in place; callers compare arrays.
func Reference(name string, in *Inputs) (float64, error) {
	switch name {
	case "vecadd_fp":
		c, a, b := in.Arrays[0], in.Arrays[1], in.Arrays[2]
		for i := 0; i < in.N; i++ {
			c.SetFloat(i, a.Float(i)+b.Float(i))
		}
		return 0, nil
	case "saxpy_fp":
		y, x := in.Arrays[0], in.Arrays[1]
		alpha := in.Args[2].Float()
		for i := 0; i < in.N; i++ {
			y.SetFloat(i, alpha*x.Float(i)+y.Float(i))
		}
		return 0, nil
	case "dscal_fp":
		x := in.Arrays[0]
		alpha := in.Args[1].Float()
		for i := 0; i < in.N; i++ {
			x.SetFloat(i, alpha*x.Float(i))
		}
		return 0, nil
	case "max_u8":
		a := in.Arrays[0]
		m := int64(0)
		for i := 0; i < in.N; i++ {
			if v := a.Int(i); v > m {
				m = v
			}
		}
		return float64(m), nil
	case "min_u8":
		a := in.Arrays[0]
		m := int64(255)
		for i := 0; i < in.N; i++ {
			if v := a.Int(i); v < m {
				m = v
			}
		}
		return float64(m), nil
	case "sum_u8", "sum_u16":
		a := in.Arrays[0]
		s := uint32(0)
		for i := 0; i < in.N; i++ {
			s += uint32(a.Int(i))
		}
		return float64(s), nil
	case "sum_i32":
		a := in.Arrays[0]
		s := int64(0)
		for i := 0; i < in.N; i++ {
			s += a.Int(i)
		}
		return float64(s), nil
	case "dotprod_fp":
		a, b := in.Arrays[0], in.Arrays[1]
		s := 0.0
		for i := 0; i < in.N; i++ {
			s += a.Float(i) * b.Float(i)
		}
		return s, nil
	case "scale_add_f32":
		d, x, y := in.Arrays[0], in.Arrays[1], in.Arrays[2]
		a := float32(in.Args[3].Float())
		b := float32(in.Args[4].Float())
		for i := 0; i < in.N; i++ {
			d.SetFloat(i, float64(a*float32(x.Float(i))+b*float32(y.Float(i))))
		}
		return 0, nil
	case "fir":
		out, src := in.Arrays[0], in.Arrays[1]
		c0, c1, c2 := in.Args[2].Float(), in.Args[3].Float(), in.Args[4].Float()
		for i := 0; i < in.N-2; i++ {
			out.SetFloat(i, c0*src.Float(i)+c1*src.Float(i+1)+c2*src.Float(i+2))
		}
		return 0, nil
	case "checksum":
		a := in.Arrays[0]
		acc := uint32(0)
		for i := 0; i < in.N; i++ {
			v := uint32(a.Int(i))
			if v&1 == 1 {
				acc += v * 3
			} else {
				acc ^= v << 1
			}
			acc %= 65521
		}
		return float64(acc), nil
	}
	return 0, errUnknownInputs(name)
}
