// Package kernels provides the MiniC sources of the benchmark kernels used
// throughout the evaluation — in particular the six kernels of the paper's
// Table 1 (vecadd fp, saxpy fp, dscal fp, max u8, sum u8, sum u16) — together
// with pure-Go reference implementations and deterministic input generators
// used by the differential tests and the benchmark harness.
package kernels

import (
	"fmt"

	"repro/internal/cil"
)

// Kernel describes one benchmark kernel.
type Kernel struct {
	// Name is the kernel identifier used in Table 1 ("vecadd_fp", ...).
	Name string
	// Entry is the MiniC function name to invoke.
	Entry string
	// Source is the MiniC source text of the kernel (it may define helper
	// functions as well).
	Source string
	// Elem is the element kind the kernel processes.
	Elem cil.Kind
	// Reduction reports whether the kernel produces a scalar result
	// (reduction) rather than writing an output array (map).
	Reduction bool
	// Description is a one-line summary used by reports.
	Description string
}

// Table1Names lists the kernels of the paper's Table 1, in the paper's row
// order.
var Table1Names = []string{"vecadd_fp", "saxpy_fp", "dscal_fp", "max_u8", "sum_u8", "sum_u16"}

// table1 holds the kernel definitions, keyed by name.
var table1 = map[string]Kernel{
	"vecadd_fp": {
		Name:        "vecadd_fp",
		Entry:       "vecadd",
		Elem:        cil.F64,
		Description: "element-wise double-precision vector addition c[i] = a[i] + b[i]",
		Source: `
void vecadd(f64 c[], f64 a[], f64 b[], i32 n) {
    for (i32 i = 0; i < n; i++) {
        c[i] = a[i] + b[i];
    }
}
`,
	},
	"saxpy_fp": {
		Name:        "saxpy_fp",
		Entry:       "saxpy",
		Elem:        cil.F64,
		Description: "scalar-alpha-x-plus-y y[i] = a*x[i] + y[i] in double precision",
		Source: `
void saxpy(f64 y[], f64 x[], f64 a, i32 n) {
    for (i32 i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}
`,
	},
	"dscal_fp": {
		Name:        "dscal_fp",
		Entry:       "dscal",
		Elem:        cil.F64,
		Description: "in-place scaling x[i] = a * x[i] in double precision",
		Source: `
void dscal(f64 x[], f64 a, i32 n) {
    for (i32 i = 0; i < n; i++) {
        x[i] = a * x[i];
    }
}
`,
	},
	"max_u8": {
		Name:        "max_u8",
		Entry:       "max_u8",
		Elem:        cil.U8,
		Reduction:   true,
		Description: "maximum of an unsigned byte array",
		Source: `
u32 max_u8(u8 a[], i32 n) {
    u32 m = 0;
    for (i32 i = 0; i < n; i++) {
        m = max(m, a[i]);
    }
    return m;
}
`,
	},
	"sum_u8": {
		Name:        "sum_u8",
		Entry:       "sum_u8",
		Elem:        cil.U8,
		Reduction:   true,
		Description: "sum of an unsigned byte array (32-bit accumulator)",
		Source: `
u32 sum_u8(u8 a[], i32 n) {
    u32 s = 0;
    for (i32 i = 0; i < n; i++) {
        s = s + a[i];
    }
    return s;
}
`,
	},
	"sum_u16": {
		Name:        "sum_u16",
		Entry:       "sum_u16",
		Elem:        cil.U16,
		Reduction:   true,
		Description: "sum of an unsigned 16-bit array (32-bit accumulator)",
		Source: `
u32 sum_u16(u16 a[], i32 n) {
    u32 s = 0;
    for (i32 i = 0; i < n; i++) {
        s = s + a[i];
    }
    return s;
}
`,
	},
}

// extra holds kernels beyond Table 1 used by the examples, the heterogeneous
// offload scenario and the register-pressure suite.
var extra = map[string]Kernel{
	"dotprod_fp": {
		Name:        "dotprod_fp",
		Entry:       "dotprod",
		Elem:        cil.F64,
		Reduction:   true,
		Description: "double-precision dot product (scalar only: FP reductions are not reassociated)",
		Source: `
f64 dotprod(f64 a[], f64 b[], i32 n) {
    f64 s = 0.0;
    for (i32 i = 0; i < n; i++) {
        s = s + a[i] * b[i];
    }
    return s;
}
`,
	},
	"min_u8": {
		Name:        "min_u8",
		Entry:       "min_u8",
		Elem:        cil.U8,
		Reduction:   true,
		Description: "minimum of an unsigned byte array",
		Source: `
u32 min_u8(u8 a[], i32 n) {
    u32 m = 255;
    for (i32 i = 0; i < n; i++) {
        m = min(m, a[i]);
    }
    return m;
}
`,
	},
	"sum_i32": {
		Name:        "sum_i32",
		Entry:       "sum_i32",
		Elem:        cil.I32,
		Reduction:   true,
		Description: "sum of a 32-bit integer array (64-bit accumulator)",
		Source: `
i64 sum_i32(i32 a[], i32 n) {
    i64 s = 0;
    for (i32 i = 0; i < n; i++) {
        s = s + a[i];
    }
    return s;
}
`,
	},
	"scale_add_f32": {
		Name:        "scale_add_f32",
		Entry:       "scale_add",
		Elem:        cil.F32,
		Description: "single-precision fused scale-and-add d[i] = a*x[i] + b*y[i]",
		Source: `
void scale_add(f32 d[], f32 x[], f32 y[], f32 a, f32 b, i32 n) {
    for (i32 i = 0; i < n; i++) {
        d[i] = a * x[i] + b * y[i];
    }
}
`,
	},
	"fir": {
		Name:        "fir",
		Entry:       "fir",
		Elem:        cil.F64,
		Description: "small FIR filter (not vectorizable: shifted subscripts), exercises the vectorizer's rejection path",
		Source: `
void fir(f64 out[], f64 in[], f64 c0, f64 c1, f64 c2, i32 n) {
    for (i32 i = 0; i < n - 2; i++) {
        out[i] = c0 * in[i] + c1 * in[i + 1] + c2 * in[i + 2];
    }
}
`,
	},
	"checksum": {
		Name:        "checksum",
		Entry:       "checksum",
		Elem:        cil.U8,
		Reduction:   true,
		Description: "control-heavy byte checksum with data-dependent branches (host-core workload)",
		Source: `
u32 checksum(u8 a[], i32 n) {
    u32 acc = 0;
    for (i32 i = 0; i < n; i++) {
        u32 v = a[i];
        if ((v & 1) == 1) {
            acc = acc + v * 3;
        } else {
            acc = acc ^ (v << 1);
        }
        acc = acc % 65521;
    }
    return acc;
}
`,
	},
}

// Get returns the kernel with the given name (Table 1 or extra).
func Get(name string) (Kernel, error) {
	if k, ok := table1[name]; ok {
		return k, nil
	}
	if k, ok := extra[name]; ok {
		return k, nil
	}
	return Kernel{}, fmt.Errorf("kernels: unknown kernel %q", name)
}

// MustGet is Get for known-good names; it panics on unknown names.
func MustGet(name string) Kernel {
	k, err := Get(name)
	if err != nil {
		panic(err)
	}
	return k
}

// All returns every kernel, Table 1 first, then the extras, in a stable
// order.
func All() []Kernel {
	var out []Kernel
	for _, name := range Table1Names {
		out = append(out, table1[name])
	}
	for _, name := range []string{"dotprod_fp", "min_u8", "sum_i32", "scale_add_f32", "fir", "checksum"} {
		out = append(out, extra[name])
	}
	return out
}

// Table1 returns the six kernels of the paper's Table 1 in row order.
func Table1() []Kernel {
	out := make([]Kernel, 0, len(Table1Names))
	for _, name := range Table1Names {
		out = append(out, table1[name])
	}
	return out
}
