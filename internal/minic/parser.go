package minic

import "repro/internal/cil"

// Parse lexes and parses a MiniC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(stripBOM(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(TokEOF) {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	return prog, nil
}

// kindOf maps a type keyword to its cil.Kind.
func kindOf(k TokKind) cil.Kind {
	switch k {
	case TokKwVoid:
		return cil.Void
	case TokKwBool:
		return cil.Bool
	case TokKwI8:
		return cil.I8
	case TokKwU8:
		return cil.U8
	case TokKwI16:
		return cil.I16
	case TokKwU16:
		return cil.U16
	case TokKwI32:
		return cil.I32
	case TokKwU32:
		return cil.U32
	case TokKwI64:
		return cil.I64
	case TokKwU64:
		return cil.U64
	case TokKwF32:
		return cil.F32
	case TokKwF64:
		return cil.F64
	}
	return cil.Void
}

// parseType parses "kw" optionally followed by "[]" (array-of-kw).
func (p *parser) parseType() (cil.Type, error) {
	t := p.cur()
	if !t.Kind.IsTypeKeyword() {
		return cil.Type{}, errf(t.Pos, "expected a type, found %s", t)
	}
	p.next()
	k := kindOf(t.Kind)
	if p.at(TokLBracket) && p.toks[p.pos+1].Kind == TokRBracket {
		p.next()
		p.next()
		if k == cil.Void {
			return cil.Type{}, errf(t.Pos, "void[] is not a valid type")
		}
		return cil.Array(k), nil
	}
	return cil.Scalar(k), nil
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	start := p.cur().Pos
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []Param
	for !p.at(TokRParen) {
		if len(params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		// Allow the C-style suffix form "u8 a[]".
		if p.at(TokLBracket) && p.toks[p.pos+1].Kind == TokRBracket {
			p.next()
			p.next()
			if pt.IsArray() {
				return nil, errf(pn.Pos, "parameter %q declared as array twice", pn.Text)
			}
			if pt.Kind == cil.Void {
				return nil, errf(pn.Pos, "void[] is not a valid type")
			}
			pt = cil.Array(pt.Kind)
		}
		params = append(params, Param{Pos: pn.Pos, Name: pn.Text, Type: pt})
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Pos: start, Name: nameTok.Text, Params: params, Ret: ret, Body: body}, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.at(TokRBrace) {
		if p.at(TokEOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next()
	return blk, nil
}

// parseBlockOrStmt parses either a braced block or a single statement
// wrapped in a block.
func (p *parser) parseBlockOrStmt() (*BlockStmt, error) {
	if p.at(TokLBrace) {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &BlockStmt{Pos: p.cur().Pos, Stmts: []Stmt{s}}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokLBrace:
		return p.parseBlock()
	case t.Kind.IsTypeKeyword():
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case t.Kind == TokKwIf:
		return p.parseIf()
	case t.Kind == TokKwWhile:
		return p.parseWhile()
	case t.Kind == TokKwFor:
		return p.parseFor()
	case t.Kind == TokKwReturn:
		p.next()
		r := &ReturnStmt{Pos: t.Pos}
		if !p.at(TokSemi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return r, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseDecl parses "type ident (= expr)?" without the trailing semicolon.
func (p *parser) parseDecl() (Stmt, error) {
	start := p.cur().Pos
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	// Allow the C-style suffix form "i32 a[] = ...".
	if p.at(TokLBracket) && p.toks[p.pos+1].Kind == TokRBracket {
		p.next()
		p.next()
		if typ.IsArray() {
			return nil, errf(nameTok.Pos, "variable %q declared as array twice", nameTok.Text)
		}
		if typ.Kind == cil.Void {
			return nil, errf(nameTok.Pos, "void[] is not a valid type")
		}
		typ = cil.Array(typ.Kind)
	}
	d := &DeclStmt{Pos: start, Name: nameTok.Text, Typ: typ}
	if p.accept(TokAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: t.Pos, Cond: cond, Then: then}
	if p.accept(TokKwElse) {
		els, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &ForStmt{Pos: t.Pos}
	if !p.at(TokSemi) {
		var err error
		if p.cur().Kind.IsTypeKeyword() {
			f.Init, err = p.parseDecl()
		} else {
			f.Init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokSemi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if !p.at(TokRParen) {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// parseSimpleStmt parses an assignment, increment/decrement, compound
// assignment or expression statement (without the trailing semicolon).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokAssign:
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := checkLValue(lhs); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: start, LHS: lhs, RHS: rhs}, nil
	case TokPlusEq, TokMinusEq, TokStarEq:
		opTok := p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := checkLValue(lhs); err != nil {
			return nil, err
		}
		op := map[TokKind]BinOp{TokPlusEq: OpAdd, TokMinusEq: OpSub, TokStarEq: OpMul}[opTok.Kind]
		return &AssignStmt{Pos: start, LHS: lhs, RHS: &BinaryExpr{Pos: start, Op: op, L: cloneLValue(lhs), R: rhs}}, nil
	case TokPlusPlus, TokMinusMinus:
		opTok := p.next()
		if err := checkLValue(lhs); err != nil {
			return nil, err
		}
		op := OpAdd
		if opTok.Kind == TokMinusMinus {
			op = OpSub
		}
		one := &IntLit{Pos: start, Value: 1}
		return &AssignStmt{Pos: start, LHS: lhs, RHS: &BinaryExpr{Pos: start, Op: op, L: cloneLValue(lhs), R: one}}, nil
	default:
		return &ExprStmt{Pos: start, X: lhs}, nil
	}
}

// checkLValue verifies that an expression can appear on the left of an
// assignment: a variable or an array element.
func checkLValue(e Expr) error {
	switch e.(type) {
	case *Ident, *IndexExpr:
		return nil
	}
	return errf(e.Position(), "expression is not assignable")
}

// cloneLValue builds a fresh read of the same location, used to desugar
// compound assignments (x += e becomes x = x + e).
func cloneLValue(e Expr) Expr {
	switch v := e.(type) {
	case *Ident:
		return &Ident{Pos: v.Pos, Name: v.Name}
	case *IndexExpr:
		return &IndexExpr{Pos: v.Pos, Arr: cloneLValue(v.Arr), Index: v.Index}
	}
	return e
}

// ---- Expressions (precedence climbing) ----

var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokLe: 7, TokGt: 7, TokGe: 7,
	TokShl: 8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

var binOpOf = map[TokKind]BinOp{
	TokOrOr: OpLogOr, TokAndAnd: OpLogAnd,
	TokPipe: OpOr, TokCaret: OpXor, TokAmp: OpAnd,
	TokEq: OpEq, TokNe: OpNe,
	TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
	TokShl: OpShl, TokShr: OpShr,
	TokPlus: OpAdd, TokMinus: OpSub,
	TokStar: OpMul, TokSlash: OpDiv, TokPercent: OpRem,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Pos: opTok.Pos, Op: binOpOf[opTok.Kind], L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: OpNeg, X: x}, nil
	case TokBang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: OpNot, X: x}, nil
	case TokTilde:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: OpCompl, X: x}, nil
	case TokLParen:
		// A cast if the parenthesis is followed by a type keyword.
		if p.toks[p.pos+1].Kind.IsTypeKeyword() {
			p.next()
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Pos: t.Pos, To: typ, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokLBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{Pos: lb.Pos, Arr: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit, TokCharLit:
		p.next()
		return &IntLit{Pos: t.Pos, Value: t.Int}, nil
	case TokFloatLit:
		p.next()
		return &FloatLit{Pos: t.Pos, Value: t.Float}, nil
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			p.next()
			var args []Expr
			for !p.at(TokRParen) {
				if len(args) > 0 {
					if _, err := p.expect(TokComma); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.next()
			if t.Text == "len" && len(args) == 1 {
				return &LenExpr{Pos: t.Pos, Arr: args[0]}, nil
			}
			return &CallExpr{Pos: t.Pos, Name: t.Text, Args: args}, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokKwNew:
		p.next()
		elemTok := p.cur()
		if !elemTok.Kind.IsTypeKeyword() || elemTok.Kind == TokKwVoid {
			return nil, errf(elemTok.Pos, "expected an element type after new, found %s", elemTok)
		}
		p.next()
		if _, err := p.expect(TokLBracket); err != nil {
			return nil, err
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		return &NewArrayExpr{Pos: t.Pos, Elem: kindOf(elemTok.Kind), Len: n}, nil
	}
	return nil, errf(t.Pos, "unexpected %s in expression", t)
}
