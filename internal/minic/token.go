// Package minic implements the offline compiler front end for MiniC, the C
// subset used to express the paper's kernels and applications: scalar
// numeric types, one-dimensional arrays, functions, loops and conditionals.
//
// MiniC stands in for the C front end of GCC in the paper's toolchain: the
// offline compiler parses and type-checks MiniC, the optimizer
// (internal/opt) analyzes and annotates its loops, and the offline code
// generator (internal/codegen) lowers it to the portable bytecode.
package minic

import "fmt"

// TokKind classifies a lexical token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokCharLit

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign     // =
	TokPlus       // +
	TokMinus      // -
	TokStar       // *
	TokSlash      // /
	TokPercent    // %
	TokAmp        // &
	TokPipe       // |
	TokCaret      // ^
	TokShl        // <<
	TokShr        // >>
	TokLt         // <
	TokLe         // <=
	TokGt         // >
	TokGe         // >=
	TokEq         // ==
	TokNe         // !=
	TokAndAnd     // &&
	TokOrOr       // ||
	TokBang       // !
	TokTilde      // ~
	TokPlusPlus   // ++
	TokMinusMinus // --
	TokPlusEq     // +=
	TokMinusEq    // -=
	TokStarEq     // *=

	// Keywords.
	TokKwIf
	TokKwElse
	TokKwWhile
	TokKwFor
	TokKwReturn
	TokKwNew
	TokKwVoid
	TokKwBool
	TokKwI8
	TokKwU8
	TokKwI16
	TokKwU16
	TokKwI32
	TokKwU32
	TokKwI64
	TokKwU64
	TokKwF32
	TokKwF64
)

var tokNames = map[TokKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokIntLit: "integer literal",
	TokFloatLit: "float literal", TokCharLit: "char literal",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokAmp: "&", TokPipe: "|", TokCaret: "^",
	TokShl: "<<", TokShr: ">>", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokEq: "==", TokNe: "!=", TokAndAnd: "&&", TokOrOr: "||",
	TokBang: "!", TokTilde: "~", TokPlusPlus: "++", TokMinusMinus: "--",
	TokPlusEq: "+=", TokMinusEq: "-=", TokStarEq: "*=",
	TokKwIf: "if", TokKwElse: "else", TokKwWhile: "while", TokKwFor: "for",
	TokKwReturn: "return", TokKwNew: "new", TokKwVoid: "void", TokKwBool: "bool",
	TokKwI8: "i8", TokKwU8: "u8", TokKwI16: "i16", TokKwU16: "u16",
	TokKwI32: "i32", TokKwU32: "u32", TokKwI64: "i64", TokKwU64: "u64",
	TokKwF32: "f32", TokKwF64: "f64",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokKind{
	"if": TokKwIf, "else": TokKwElse, "while": TokKwWhile, "for": TokKwFor,
	"return": TokKwReturn, "new": TokKwNew, "void": TokKwVoid, "bool": TokKwBool,
	"i8": TokKwI8, "u8": TokKwU8, "i16": TokKwI16, "u16": TokKwU16,
	"i32": TokKwI32, "u32": TokKwU32, "i64": TokKwI64, "u64": TokKwU64,
	"f32": TokKwF32, "f64": TokKwF64,
}

// IsTypeKeyword reports whether the token kind names a MiniC type.
func (k TokKind) IsTypeKeyword() bool {
	switch k {
	case TokKwVoid, TokKwBool, TokKwI8, TokKwU8, TokKwI16, TokKwU16,
		TokKwI32, TokKwU32, TokKwI64, TokKwU64, TokKwF32, TokKwF64:
		return true
	}
	return false
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position and literal payload.
type Token struct {
	Kind  TokKind
	Pos   Pos
	Text  string  // identifier text or raw literal text
	Int   int64   // value for TokIntLit and TokCharLit
	Float float64 // value for TokFloatLit
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokIntLit, TokFloatLit, TokCharLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
