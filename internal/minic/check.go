package minic

import (
	"fmt"

	"repro/internal/cil"
)

// Symbol is the resolved storage location of a named variable.
type Symbol struct {
	Name    string
	Type    cil.Type
	IsParam bool
	Index   int // parameter index or local slot index
}

// FuncInfo is the checker's per-function summary used by the optimizer and
// the code generator.
type FuncInfo struct {
	Decl      *FuncDecl
	Locals    []*Symbol // local slots in allocation order
	NumParams int
}

// Checked is a type-checked program: the AST (with every expression
// annotated with its type, every identifier resolved, and implicit
// conversions made explicit) plus per-function symbol information.
type Checked struct {
	Prog  *Program
	Funcs map[string]*FuncInfo
}

// Intrinsic function names recognized by the front end. min and max are the
// portable intrinsics the vectorizer pattern-matches for max/min reductions;
// abs is provided for completeness.
const (
	IntrinsicMin = "min"
	IntrinsicMax = "max"
	IntrinsicAbs = "abs"
)

// IsIntrinsic reports whether name denotes a front-end intrinsic rather than
// a user function.
func IsIntrinsic(name string) bool {
	return name == IntrinsicMin || name == IntrinsicMax || name == IntrinsicAbs
}

// Check type-checks the program.
func Check(prog *Program) (*Checked, error) {
	c := &checker{
		prog:  prog,
		sigs:  make(map[string]*FuncDecl),
		funcs: make(map[string]*FuncInfo),
	}
	for _, f := range prog.Funcs {
		if IsIntrinsic(f.Name) || f.Name == "len" {
			return nil, errf(f.Pos, "cannot define function %q: the name is reserved for an intrinsic", f.Name)
		}
		if _, dup := c.sigs[f.Name]; dup {
			return nil, errf(f.Pos, "duplicate function %q", f.Name)
		}
		c.sigs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return nil, err
		}
	}
	return &Checked{Prog: prog, Funcs: c.funcs}, nil
}

type checker struct {
	prog  *Program
	sigs  map[string]*FuncDecl
	funcs map[string]*FuncInfo

	// per-function state
	cur    *FuncDecl
	info   *FuncInfo
	scopes []map[string]*Symbol
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) declare(pos Pos, name string, typ cil.Type, isParam bool) (*Symbol, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return nil, errf(pos, "%q redeclared in this scope", name)
	}
	sym := &Symbol{Name: name, Type: typ, IsParam: isParam}
	if isParam {
		sym.Index = c.info.NumParams
		c.info.NumParams++
	} else {
		sym.Index = len(c.info.Locals)
		c.info.Locals = append(c.info.Locals, sym)
	}
	top[name] = sym
	return sym, nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.cur = f
	c.info = &FuncInfo{Decl: f}
	c.funcs[f.Name] = c.info
	c.scopes = nil
	c.pushScope()
	defer c.popScope()
	seen := make(map[string]bool)
	for _, p := range f.Params {
		if seen[p.Name] {
			return errf(p.Pos, "duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		if p.Type.Kind == cil.Void {
			return errf(p.Pos, "parameter %q has type void", p.Name)
		}
		if _, err := c.declare(p.Pos, p.Name, p.Type, true); err != nil {
			return err
		}
	}
	if f.Ret.IsArray() {
		return errf(f.Pos, "array return types are not supported")
	}
	return c.checkBlock(f.Body)
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)
	case *DeclStmt:
		if st.Typ.Kind == cil.Void {
			return errf(st.Pos, "variable %q has type void", st.Name)
		}
		if st.Init != nil {
			init, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			conv, err := c.convert(init, st.Typ)
			if err != nil {
				return err
			}
			st.Init = conv
		}
		_, err := c.declare(st.Pos, st.Name, st.Typ, false)
		return err
	case *AssignStmt:
		lhs, err := c.checkExpr(st.LHS)
		if err != nil {
			return err
		}
		st.LHS = lhs
		rhs, err := c.checkExpr(st.RHS)
		if err != nil {
			return err
		}
		if lhs.Type().IsArray() {
			if !rhs.Type().IsArray() || rhs.Type() != lhs.Type() {
				return errf(st.Pos, "cannot assign %s to %s", rhs.Type(), lhs.Type())
			}
			st.RHS = rhs
			return nil
		}
		conv, err := c.convert(rhs, lhs.Type())
		if err != nil {
			return err
		}
		st.RHS = conv
		return nil
	case *IfStmt:
		cond, err := c.checkCond(st.Cond)
		if err != nil {
			return err
		}
		st.Cond = cond
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkBlock(st.Else)
		}
		return nil
	case *WhileStmt:
		cond, err := c.checkCond(st.Cond)
		if err != nil {
			return err
		}
		st.Cond = cond
		return c.checkBlock(st.Body)
	case *ForStmt:
		// The init declaration scopes over cond, post and body.
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			cond, err := c.checkCond(st.Cond)
			if err != nil {
				return err
			}
			st.Cond = cond
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		return c.checkBlock(st.Body)
	case *ReturnStmt:
		if c.cur.Ret.Kind == cil.Void {
			if st.Value != nil {
				return errf(st.Pos, "void function %q returns a value", c.cur.Name)
			}
			return nil
		}
		if st.Value == nil {
			return errf(st.Pos, "function %q must return a %s value", c.cur.Name, c.cur.Ret)
		}
		v, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		conv, err := c.convert(v, c.cur.Ret)
		if err != nil {
			return err
		}
		st.Value = conv
		return nil
	case *ExprStmt:
		x, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		if _, isCall := x.(*CallExpr); !isCall {
			return errf(st.Pos, "expression statement must be a call")
		}
		st.X = x
		return nil
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// checkCond checks a condition expression; any numeric or bool type is
// accepted (tested against zero by the code generator).
func (c *checker) checkCond(e Expr) (Expr, error) {
	x, err := c.checkExpr(e)
	if err != nil {
		return nil, err
	}
	t := x.Type()
	if t.IsArray() || t.Kind == cil.Void {
		return nil, errf(e.Position(), "condition has non-scalar type %s", t)
	}
	return x, nil
}

// checkExpr type-checks an expression and returns the (possibly rewritten)
// expression with its type annotation set.
func (c *checker) checkExpr(e Expr) (Expr, error) {
	switch ex := e.(type) {
	case *IntLit:
		ex.setType(cil.Scalar(cil.I32))
		if ex.Value > (1<<31)-1 || ex.Value < -(1<<31) {
			ex.setType(cil.Scalar(cil.I64))
		}
		return ex, nil
	case *FloatLit:
		ex.setType(cil.Scalar(cil.F64))
		return ex, nil
	case *Ident:
		sym := c.lookup(ex.Name)
		if sym == nil {
			return nil, errf(ex.Pos, "undefined variable %q", ex.Name)
		}
		ex.Sym = sym
		ex.setType(sym.Type)
		return ex, nil
	case *UnaryExpr:
		x, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		ex.X = x
		t := x.Type()
		switch ex.Op {
		case OpNeg:
			if !t.Kind.IsNumeric() {
				return nil, errf(ex.Pos, "operator - requires a numeric operand, got %s", t)
			}
			pt := promote(t)
			ex.X, _ = c.convert(x, pt)
			ex.setType(pt)
		case OpNot:
			if t.IsArray() || !t.Kind.IsNumeric() && t.Kind != cil.Bool {
				return nil, errf(ex.Pos, "operator ! requires a scalar operand, got %s", t)
			}
			ex.setType(cil.Scalar(cil.Bool))
		case OpCompl:
			if !t.Kind.IsInteger() {
				return nil, errf(ex.Pos, "operator ~ requires an integer operand, got %s", t)
			}
			pt := promote(t)
			ex.X, _ = c.convert(x, pt)
			ex.setType(pt)
		}
		return ex, nil
	case *BinaryExpr:
		return c.checkBinary(ex)
	case *IndexExpr:
		arr, err := c.checkExpr(ex.Arr)
		if err != nil {
			return nil, err
		}
		if !arr.Type().IsArray() {
			return nil, errf(ex.Pos, "indexing a non-array value of type %s", arr.Type())
		}
		idx, err := c.checkExpr(ex.Index)
		if err != nil {
			return nil, err
		}
		if !idx.Type().Kind.IsInteger() {
			return nil, errf(ex.Pos, "array index must be an integer, got %s", idx.Type())
		}
		idxConv, err := c.convert(idx, cil.Scalar(cil.I32))
		if err != nil {
			return nil, err
		}
		ex.Arr = arr
		ex.Index = idxConv
		ex.setType(cil.Scalar(arr.Type().Elem))
		return ex, nil
	case *CastExpr:
		x, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		ex.X = x
		if ex.To.IsArray() || !ex.To.Kind.IsNumeric() {
			return nil, errf(ex.Pos, "cannot cast to %s", ex.To)
		}
		if !x.Type().Kind.IsNumeric() && x.Type().Kind != cil.Bool {
			return nil, errf(ex.Pos, "cannot cast from %s", x.Type())
		}
		ex.setType(ex.To)
		return ex, nil
	case *LenExpr:
		arr, err := c.checkExpr(ex.Arr)
		if err != nil {
			return nil, err
		}
		if !arr.Type().IsArray() {
			return nil, errf(ex.Pos, "len requires an array argument, got %s", arr.Type())
		}
		ex.Arr = arr
		ex.setType(cil.Scalar(cil.I32))
		return ex, nil
	case *NewArrayExpr:
		n, err := c.checkExpr(ex.Len)
		if err != nil {
			return nil, err
		}
		if !n.Type().Kind.IsInteger() {
			return nil, errf(ex.Pos, "array length must be an integer, got %s", n.Type())
		}
		nc, err := c.convert(n, cil.Scalar(cil.I32))
		if err != nil {
			return nil, err
		}
		ex.Len = nc
		ex.setType(cil.Array(ex.Elem))
		return ex, nil
	case *CallExpr:
		return c.checkCall(ex)
	}
	return nil, fmt.Errorf("minic: unknown expression %T", e)
}

func (c *checker) checkBinary(ex *BinaryExpr) (Expr, error) {
	l, err := c.checkExpr(ex.L)
	if err != nil {
		return nil, err
	}
	r, err := c.checkExpr(ex.R)
	if err != nil {
		return nil, err
	}
	lt, rt := l.Type(), r.Type()
	if ex.Op.IsLogical() {
		if lt.IsArray() || rt.IsArray() {
			return nil, errf(ex.Pos, "operator %s requires scalar operands", ex.Op)
		}
		ex.L, ex.R = l, r
		ex.setType(cil.Scalar(cil.Bool))
		return ex, nil
	}
	if lt.IsArray() || rt.IsArray() || !lt.Kind.IsNumeric() && lt.Kind != cil.Bool || !rt.Kind.IsNumeric() && rt.Kind != cil.Bool {
		return nil, errf(ex.Pos, "operator %s requires numeric operands, got %s and %s", ex.Op, lt, rt)
	}
	switch ex.Op {
	case OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
		if lt.Kind.IsFloat() || rt.Kind.IsFloat() {
			return nil, errf(ex.Pos, "operator %s requires integer operands, got %s and %s", ex.Op, lt, rt)
		}
	}
	if ex.Op == OpShl || ex.Op == OpShr {
		// The result takes the promoted type of the left operand; the shift
		// count is converted to the same type so that the bytecode-level
		// operands agree (the count is masked at run time anyway).
		res := promote(lt)
		ex.L, _ = c.convert(l, res)
		ex.R, _ = c.convert(r, res)
		ex.setType(res)
		return ex, nil
	}
	common := commonType(lt, rt)
	ex.L, _ = c.convert(l, common)
	ex.R, _ = c.convert(r, common)
	if ex.Op.IsComparison() {
		ex.setType(cil.Scalar(cil.Bool))
	} else {
		ex.setType(common)
	}
	return ex, nil
}

func (c *checker) checkCall(ex *CallExpr) (Expr, error) {
	var args []Expr
	for _, a := range ex.Args {
		ca, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, ca)
	}
	ex.Args = args

	if IsIntrinsic(ex.Name) {
		switch ex.Name {
		case IntrinsicMin, IntrinsicMax:
			if len(args) != 2 {
				return nil, errf(ex.Pos, "%s expects 2 arguments, got %d", ex.Name, len(args))
			}
			if !args[0].Type().Kind.IsNumeric() || !args[1].Type().Kind.IsNumeric() {
				return nil, errf(ex.Pos, "%s expects numeric arguments", ex.Name)
			}
			common := commonType(args[0].Type(), args[1].Type())
			ex.Args[0], _ = c.convert(args[0], common)
			ex.Args[1], _ = c.convert(args[1], common)
			ex.setType(common)
		case IntrinsicAbs:
			if len(args) != 1 {
				return nil, errf(ex.Pos, "abs expects 1 argument, got %d", len(args))
			}
			if !args[0].Type().Kind.IsNumeric() {
				return nil, errf(ex.Pos, "abs expects a numeric argument")
			}
			pt := promote(args[0].Type())
			ex.Args[0], _ = c.convert(args[0], pt)
			ex.setType(pt)
		}
		return ex, nil
	}

	callee, ok := c.sigs[ex.Name]
	if !ok {
		return nil, errf(ex.Pos, "call to undefined function %q", ex.Name)
	}
	if len(args) != len(callee.Params) {
		return nil, errf(ex.Pos, "%q expects %d arguments, got %d", ex.Name, len(callee.Params), len(args))
	}
	for i, a := range args {
		want := callee.Params[i].Type
		if want.IsArray() {
			if a.Type() != want {
				return nil, errf(a.Position(), "argument %d of %q must be %s, got %s", i+1, ex.Name, want, a.Type())
			}
			continue
		}
		conv, err := c.convert(a, want)
		if err != nil {
			return nil, err
		}
		ex.Args[i] = conv
	}
	ex.setType(callee.Ret)
	return ex, nil
}

// convert wraps e in a CastExpr when its type differs from the target type.
func (c *checker) convert(e Expr, to cil.Type) (Expr, error) {
	from := e.Type()
	if from == to {
		return e, nil
	}
	if from.IsArray() || to.IsArray() {
		return nil, errf(e.Position(), "cannot convert %s to %s", from, to)
	}
	if (!from.Kind.IsNumeric() && from.Kind != cil.Bool) || (!to.Kind.IsNumeric() && to.Kind != cil.Bool) {
		return nil, errf(e.Position(), "cannot convert %s to %s", from, to)
	}
	cast := &CastExpr{Pos: e.Position(), To: to, X: e}
	cast.setType(to)
	return cast, nil
}

// promote applies the C integer promotions: sub-32-bit integers widen to
// i32, everything else is unchanged.
func promote(t cil.Type) cil.Type {
	switch t.Kind {
	case cil.Bool, cil.I8, cil.I16:
		return cil.Scalar(cil.I32)
	case cil.U8, cil.U16:
		return cil.Scalar(cil.I32) // they fit in i32, as in C
	default:
		return t
	}
}

// commonType implements the simplified usual arithmetic conversions.
func commonType(a, b cil.Type) cil.Type {
	a, b = promote(a), promote(b)
	ka, kb := a.Kind, b.Kind
	switch {
	case ka == cil.F64 || kb == cil.F64:
		return cil.Scalar(cil.F64)
	case ka == cil.F32 || kb == cil.F32:
		return cil.Scalar(cil.F32)
	}
	rank := func(k cil.Kind) int {
		switch k {
		case cil.I64, cil.U64:
			return 2
		default:
			return 1
		}
	}
	unsigned := func(k cil.Kind) bool { return k == cil.U32 || k == cil.U64 }
	ra, rb := rank(ka), rank(kb)
	maxRank := ra
	if rb > maxRank {
		maxRank = rb
	}
	isUnsigned := false
	if ra == maxRank && unsigned(ka) {
		isUnsigned = true
	}
	if rb == maxRank && unsigned(kb) {
		isUnsigned = true
	}
	if maxRank == 2 {
		if isUnsigned {
			return cil.Scalar(cil.U64)
		}
		return cil.Scalar(cil.I64)
	}
	if isUnsigned {
		return cil.Scalar(cil.U32)
	}
	return cil.Scalar(cil.I32)
}
