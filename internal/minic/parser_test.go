package minic

import (
	"strings"
	"testing"

	"repro/internal/cil"
)

const saxpySrc = `
// saxpy: y = a*x + y
void saxpy(f64 y[], f64 x[], f64 a, i32 n) {
    for (i32 i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}
`

func TestParseSaxpy(t *testing.T) {
	prog, err := Parse(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("saxpy")
	if f == nil {
		t.Fatal("saxpy not found")
	}
	if len(f.Params) != 4 {
		t.Fatalf("params = %d, want 4", len(f.Params))
	}
	if f.Params[0].Type != cil.Array(cil.F64) || f.Params[2].Type != cil.Scalar(cil.F64) {
		t.Errorf("param types wrong: %v", f.Params)
	}
	if f.Ret.Kind != cil.Void {
		t.Error("return type should be void")
	}
	if len(f.Body.Stmts) != 1 {
		t.Fatalf("body statements = %d, want 1", len(f.Body.Stmts))
	}
	loop, ok := f.Body.Stmts[0].(*ForStmt)
	if !ok {
		t.Fatalf("expected for loop, got %T", f.Body.Stmts[0])
	}
	if _, ok := loop.Init.(*DeclStmt); !ok {
		t.Errorf("loop init is %T, want DeclStmt", loop.Init)
	}
	if _, ok := loop.Post.(*AssignStmt); !ok {
		t.Errorf("loop post is %T, want AssignStmt (i++ desugars)", loop.Post)
	}
	asg, ok := loop.Body.Stmts[0].(*AssignStmt)
	if !ok {
		t.Fatalf("loop body stmt is %T", loop.Body.Stmts[0])
	}
	if _, ok := asg.LHS.(*IndexExpr); !ok {
		t.Errorf("assignment LHS is %T, want IndexExpr", asg.LHS)
	}
}

func TestParseParamSuffixArray(t *testing.T) {
	prog, err := Parse("i32 first(u8 a[]) { return a[0]; }")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Funcs[0].Params[0].Type != cil.Array(cil.U8) {
		t.Errorf("suffix array param type = %v", prog.Funcs[0].Params[0].Type)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("i32 f(i32 a, i32 b, i32 c) { return a + b * c; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	add, ok := ret.Value.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top-level operator should be +, got %v", ret.Value)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != OpMul {
		t.Fatalf("right operand of + should be *, got %T", add.R)
	}
}

func TestParseCastVsParen(t *testing.T) {
	prog, err := Parse("f64 f(i32 x) { return (f64) x * (x + 1); }")
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	mul := ret.Value.(*BinaryExpr)
	if _, ok := mul.L.(*CastExpr); !ok {
		t.Errorf("left operand should be a cast, got %T", mul.L)
	}
	if _, ok := mul.R.(*BinaryExpr); !ok {
		t.Errorf("right operand should be a parenthesized sum, got %T", mul.R)
	}
}

func TestParseControlFlowAndCompound(t *testing.T) {
	src := `
i32 f(i32 n) {
    i32 s = 0;
    i32 i = 0;
    while (i < n) {
        if (i % 2 == 0) s += i; else s -= 1;
        i++;
    }
    s *= 2;
    return s;
}
u8 g(u8 a[], i64 x, u64 y, f32 z, i16 w, u16 v, i8 q, bool flag) {
    if (flag && x > 0 || !(y == 0)) { return a[0]; }
    return (u8) (z + 1.0);
}
void h(i32 n) {
    i32 tmp[] = new i32[n];
    tmp[0] = len(tmp);
    f(~n << 1 >> 1);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 3 {
		t.Fatalf("parsed %d functions, want 3", len(prog.Funcs))
	}
	if prog.Func("missing") != nil {
		t.Error("Func should return nil for unknown name")
	}
	// h's first statement declares an array local via new.
	h := prog.Func("h")
	decl := h.Body.Stmts[0].(*DeclStmt)
	if decl.Typ != cil.Array(cil.I32) {
		t.Errorf("array local type = %v", decl.Typ)
	}
	if _, ok := decl.Init.(*NewArrayExpr); !ok {
		t.Errorf("array local init = %T, want NewArrayExpr", decl.Init)
	}
	asg := h.Body.Stmts[1].(*AssignStmt)
	if _, ok := asg.RHS.(*LenExpr); !ok {
		t.Errorf("len call should parse to LenExpr, got %T", asg.RHS)
	}
	if _, ok := h.Body.Stmts[2].(*ExprStmt); !ok {
		t.Errorf("call statement should be ExprStmt, got %T", h.Body.Stmts[2])
	}
}

func TestParseSingleStatementBodies(t *testing.T) {
	prog, err := Parse("i32 f(i32 n) { if (n > 0) return 1; else return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Funcs[0].Body.Stmts[0].(*IfStmt)
	if len(ifs.Then.Stmts) != 1 || len(ifs.Else.Stmts) != 1 {
		t.Error("single-statement branches should be wrapped in blocks")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing paren":       "i32 f( { return 0; }",
		"missing semi":        "i32 f() { return 0 }",
		"bad toplevel":        "return 1;",
		"assign to rvalue":    "void f() { 1 = 2; }",
		"assign to call":      "i32 f() { f() = 2; return 0; }",
		"unterminated block":  "void f() { ",
		"void array type":     "void f(void x[]) { }",
		"bad expression":      "i32 f() { return +; }",
		"new needs elem type": "void f() { i32 a[] = new [4]; }",
		"double array param":  "void f(i32[] a[]) { }",
		"incr of rvalue":      "void f() { (1+2)++; }",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse(%q) should fail", name, src)
		} else if !strings.Contains(err.Error(), "minic:") {
			t.Errorf("%s: error %q should carry a position", name, err)
		}
	}
}

func TestParseForVariants(t *testing.T) {
	// Empty init/cond/post must parse.
	prog, err := Parse("void f(i32 n) { i32 i = 0; for (;;) { i++; if (i >= n) return; } }")
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Funcs[0].Body.Stmts[1].(*ForStmt)
	if loop.Init != nil || loop.Cond != nil || loop.Post != nil {
		t.Error("empty for clauses should be nil")
	}
	// Assignment init without declaration.
	prog, err = Parse("void g(i32 n) { i32 i; for (i = 0; i < n; i += 2) { } }")
	if err != nil {
		t.Fatal(err)
	}
	loop = prog.Funcs[0].Body.Stmts[1].(*ForStmt)
	if _, ok := loop.Init.(*AssignStmt); !ok {
		t.Errorf("for init = %T, want AssignStmt", loop.Init)
	}
}
