package minic

import "testing"

func TestLexBasicTokens(t *testing.T) {
	src := "i32 main() { return 40 + 2; } // comment"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokKwI32, TokIdent, TokLParen, TokRParen, TokLBrace,
		TokKwReturn, TokIntLit, TokPlus, TokIntLit, TokSemi, TokRBrace, TokEOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "<< >> <= >= == != && || ++ -- += -= *= < > = ! ~ & | ^ %"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokShl, TokShr, TokLe, TokGe, TokEq, TokNe, TokAndAnd, TokOrOr,
		TokPlusPlus, TokMinusMinus, TokPlusEq, TokMinusEq, TokStarEq,
		TokLt, TokGt, TokAssign, TokBang, TokTilde, TokAmp, TokPipe, TokCaret, TokPercent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("0 42 0x1F 3.5 1e3 2.5e-2 .5")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIntLit || toks[0].Int != 0 {
		t.Error("0 mislexed")
	}
	if toks[1].Int != 42 {
		t.Error("42 mislexed")
	}
	if toks[2].Kind != TokIntLit || toks[2].Int != 31 {
		t.Errorf("0x1F mislexed: %+v", toks[2])
	}
	if toks[3].Kind != TokFloatLit || toks[3].Float != 3.5 {
		t.Error("3.5 mislexed")
	}
	if toks[4].Kind != TokFloatLit || toks[4].Float != 1000 {
		t.Error("1e3 mislexed")
	}
	if toks[5].Kind != TokFloatLit || toks[5].Float != 0.025 {
		t.Error("2.5e-2 mislexed")
	}
	if toks[6].Kind != TokFloatLit || toks[6].Float != 0.5 {
		t.Error(".5 mislexed")
	}
}

func TestLexCharLiterals(t *testing.T) {
	toks, err := Lex(`'a' '\n' '\0' '\\'`)
	if err != nil {
		t.Fatal(err)
	}
	wants := []int64{'a', '\n', 0, '\\'}
	for i, w := range wants {
		if toks[i].Kind != TokCharLit || toks[i].Int != w {
			t.Errorf("char literal %d = %+v, want %d", i, toks[i], w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a /* block\ncomment */ b // line\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Errorf("comments not skipped: %v", toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("line tracking wrong: %v", toks[2].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"$", "/* unterminated", "'x", `'\q'`}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if (Pos{Line: 2, Col: 3}).String() != "2:3" {
		t.Error("Pos.String format")
	}
}
