package minic

import "repro/internal/cil"

// Program is a parsed MiniC translation unit.
type Program struct {
	Funcs []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Ret    cil.Type
	Body   *BlockStmt
}

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type cil.Type
}

// Stmt is a MiniC statement.
type Stmt interface{ stmtNode() }

// Expr is a MiniC expression. After type checking, Type() returns the
// expression's static type.
type Expr interface {
	exprNode()
	Type() cil.Type
	Position() Pos
}

// ---- Statements ----

// BlockStmt is a brace-delimited statement list introducing a scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally with an initializer.
type DeclStmt struct {
	Pos  Pos
	Name string
	Typ  cil.Type
	Init Expr // may be nil
}

// AssignStmt assigns RHS to LHS (an *Ident or an *IndexExpr).
type AssignStmt struct {
	Pos Pos
	LHS Expr
	RHS Expr
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop. Init and Post may be nil.
//
// The offline vectorizer (internal/opt) attaches its decision to Plan; the
// code generator emits a vectorized main loop plus a scalar epilogue when
// Plan is non-nil. Plan is declared as an opaque interface here so that the
// front end does not depend on the optimizer.
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or AssignStmt or nil
	Cond Expr
	Post Stmt // AssignStmt or nil
	Body *BlockStmt

	Plan interface{}
}

// ReturnStmt returns from the enclosing function, with an optional value.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void returns
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()  {}
func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

// ---- Expressions ----

// typeInfo carries the type annotation set by the type checker.
type typeInfo struct{ typ cil.Type }

func (t *typeInfo) Type() cil.Type { return t.typ }

// SetType records the expression's static type. It is called by the type
// checker and by optimizer passes that synthesize new (already-typed) nodes.
func (t *typeInfo) SetType(x cil.Type) { t.typ = x }

func (t *typeInfo) setType(x cil.Type) { t.SetType(x) }

// Ident is a reference to a named variable or parameter. Sym is filled in by
// the type checker with the resolved storage location.
type Ident struct {
	typeInfo
	Pos  Pos
	Name string
	Sym  *Symbol
}

// IntLit is an integer (or character) literal.
type IntLit struct {
	typeInfo
	Pos   Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	typeInfo
	Pos   Pos
	Value float64
}

// BinOp identifies a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpLogAnd
	OpLogOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpLogAnd: "&&", OpLogOr: "||",
}

func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a boolean.
func (op BinOp) IsComparison() bool { return op >= OpLt && op <= OpNe }

// IsLogical reports whether the operator is && or ||.
func (op BinOp) IsLogical() bool { return op == OpLogAnd || op == OpLogOr }

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	typeInfo
	Pos  Pos
	Op   BinOp
	L, R Expr
}

// UnOp identifies a unary operator.
type UnOp int

// Unary operators.
const (
	OpNeg   UnOp = iota // -
	OpNot               // !
	OpCompl             // ~
)

func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpNot:
		return "!"
	default:
		return "~"
	}
}

// UnaryExpr is a unary operation.
type UnaryExpr struct {
	typeInfo
	Pos Pos
	Op  UnOp
	X   Expr
}

// CallExpr is a function call. Min/max intrinsics are represented as calls
// to "min"/"max" and resolved by the type checker.
type CallExpr struct {
	typeInfo
	Pos  Pos
	Name string
	Args []Expr
}

// IndexExpr is an array element access a[i].
type IndexExpr struct {
	typeInfo
	Pos   Pos
	Arr   Expr // always an *Ident after parsing
	Index Expr
}

// CastExpr is an explicit conversion (T) x.
type CastExpr struct {
	typeInfo
	Pos Pos
	To  cil.Type
	X   Expr
}

// LenExpr is the built-in len(a) returning the length of an array.
type LenExpr struct {
	typeInfo
	Pos Pos
	Arr Expr
}

// NewArrayExpr allocates a new array: new T[n].
type NewArrayExpr struct {
	typeInfo
	Pos  Pos
	Elem cil.Kind
	Len  Expr
}

func (*Ident) exprNode()        {}
func (*IntLit) exprNode()       {}
func (*FloatLit) exprNode()     {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*CallExpr) exprNode()     {}
func (*IndexExpr) exprNode()    {}
func (*CastExpr) exprNode()     {}
func (*LenExpr) exprNode()      {}
func (*NewArrayExpr) exprNode() {}

func (e *Ident) Position() Pos        { return e.Pos }
func (e *IntLit) Position() Pos       { return e.Pos }
func (e *FloatLit) Position() Pos     { return e.Pos }
func (e *BinaryExpr) Position() Pos   { return e.Pos }
func (e *UnaryExpr) Position() Pos    { return e.Pos }
func (e *CallExpr) Position() Pos     { return e.Pos }
func (e *IndexExpr) Position() Pos    { return e.Pos }
func (e *CastExpr) Position() Pos     { return e.Pos }
func (e *LenExpr) Position() Pos      { return e.Pos }
func (e *NewArrayExpr) Position() Pos { return e.Pos }
