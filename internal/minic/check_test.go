package minic

import (
	"strings"
	"testing"

	"repro/internal/cil"
)

func mustCheck(t *testing.T, src string) *Checked {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	chk, err := Check(prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return chk
}

func TestCheckSaxpyTypes(t *testing.T) {
	chk := mustCheck(t, saxpySrc)
	info := chk.Funcs["saxpy"]
	if info == nil {
		t.Fatal("missing FuncInfo for saxpy")
	}
	if info.NumParams != 4 {
		t.Errorf("NumParams = %d, want 4", info.NumParams)
	}
	if len(info.Locals) != 1 || info.Locals[0].Name != "i" || info.Locals[0].Type != cil.Scalar(cil.I32) {
		t.Errorf("locals = %+v, want a single i32 local i", info.Locals)
	}
	loop := info.Decl.Body.Stmts[0].(*ForStmt)
	asg := loop.Body.Stmts[0].(*AssignStmt)
	if asg.RHS.Type() != cil.Scalar(cil.F64) {
		t.Errorf("RHS type = %v, want f64", asg.RHS.Type())
	}
	idx := asg.LHS.(*IndexExpr)
	if idx.Type() != cil.Scalar(cil.F64) {
		t.Errorf("y[i] type = %v, want f64", idx.Type())
	}
	if ident := idx.Arr.(*Ident); ident.Sym == nil || !ident.Sym.IsParam || ident.Sym.Index != 0 {
		t.Errorf("y symbol not resolved to parameter 0: %+v", idx.Arr)
	}
}

func TestCheckImplicitConversions(t *testing.T) {
	chk := mustCheck(t, `
f64 mix(i32 a, f64 b, u8 c) {
    return a + b * c;
}`)
	ret := chk.Funcs["mix"].Decl.Body.Stmts[0].(*ReturnStmt)
	if ret.Value.Type() != cil.Scalar(cil.F64) {
		t.Errorf("result type = %v, want f64", ret.Value.Type())
	}
	add := ret.Value.(*BinaryExpr)
	if add.L.Type() != cil.Scalar(cil.F64) || add.R.Type() != cil.Scalar(cil.F64) {
		t.Error("operands of + must both be converted to f64")
	}
	if _, ok := add.L.(*CastExpr); !ok {
		t.Errorf("i32 operand should be wrapped in a cast, got %T", add.L)
	}
}

func TestCheckUsualArithmeticConversions(t *testing.T) {
	cases := []struct {
		expr string
		want cil.Kind
	}{
		{"a8 + b8", cil.I32},     // sub-word ints promote to i32
		{"a8 + i", cil.I32},      // u8 + i32 -> i32
		{"i + u", cil.U32},       // i32 + u32 -> u32
		{"i + l", cil.I64},       // i32 + i64 -> i64
		{"u + ul", cil.U64},      // u32 + u64 -> u64
		{"i + f", cil.F32},       // i32 + f32 -> f32
		{"f + d", cil.F64},       // f32 + f64 -> f64
		{"a8 << 2", cil.I32},     // shift takes the promoted left type
		{"l << i", cil.I64},      // shift keeps i64
		{"i < u", cil.Bool},      // comparisons yield bool
		{"b && i > 0", cil.Bool}, // logical ops yield bool
	}
	for _, c := range cases {
		src := "void f(u8 a8, u8 b8, i32 i, u32 u, i64 l, u64 ul, f32 f, f64 d, bool b) { " +
			"f64 sink = (f64)(" + c.expr + "); }"
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.expr, err)
		}
		chk, err := Check(prog)
		if err != nil {
			t.Fatalf("%s: check: %v", c.expr, err)
		}
		decl := chk.Funcs["f"].Decl.Body.Stmts[0].(*DeclStmt)
		cast := decl.Init.(*CastExpr)
		if cast.X.Type().Kind != c.want {
			t.Errorf("%s: type = %v, want %v", c.expr, cast.X.Type().Kind, c.want)
		}
	}
}

func TestCheckIntrinsics(t *testing.T) {
	chk := mustCheck(t, `
u32 m(u8 a, u8 b, f64 x) {
    f64 t = max(x, 1.0);
    i32 u = abs(0 - 3);
    return (u32) (min(a, b) + (i32) t + u);
}`)
	decl := chk.Funcs["m"].Decl.Body.Stmts[0].(*DeclStmt)
	call := decl.Init.(*CallExpr)
	if call.Name != "max" || call.Type() != cil.Scalar(cil.F64) {
		t.Errorf("max type = %v", call.Type())
	}
}

func TestCheckLargeIntLiteral(t *testing.T) {
	chk := mustCheck(t, "i64 big() { return 5000000000; }")
	ret := chk.Funcs["big"].Decl.Body.Stmts[0].(*ReturnStmt)
	if ret.Value.Type() != cil.Scalar(cil.I64) {
		t.Errorf("large literal type = %v, want i64", ret.Value.Type())
	}
}

func TestCheckArrayRules(t *testing.T) {
	// Arrays pass by reference and must match exactly.
	mustCheck(t, `
void fill(u8 dst[], i32 n) { for (i32 i = 0; i < n; i++) dst[i] = (u8) i; }
void run(u8 buf[]) { fill(buf, len(buf)); }
`)
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"undefined variable":   "i32 f() { return x; }",
		"undefined function":   "i32 f() { return g(); }",
		"duplicate function":   "i32 f() { return 0; } i32 f() { return 1; }",
		"duplicate param":      "i32 f(i32 a, i32 a) { return 0; }",
		"redeclared local":     "i32 f() { i32 x = 0; i32 x = 1; return x; }",
		"void variable":        "void f() { void x; }",
		"void param":           "void f(void x) { }",
		"arity mismatch":       "i32 g(i32 a) { return a; } i32 f() { return g(); }",
		"array arg mismatch":   "i32 g(u8 a[]) { return 0; } i32 f(i32 b[]) { return g(b); }",
		"array return":         "u8[] f(u8 a[]) { return a; }",
		"index non-array":      "i32 f(i32 x) { return x[0]; }",
		"float index":          "i32 f(i32 a[], f64 x) { return a[x]; }",
		"float modulo":         "f64 f(f64 a, f64 b) { return a % b; }",
		"float bitand":         "f64 f(f64 a, f64 b) { return a & b; }",
		"compl of float":       "i32 f(f64 a) { return ~a; }",
		"neg of array":         "i32 f(i32 a[]) { return -a; }",
		"not of array":         "i32 f(i32 a[]) { return !a; }",
		"return from void":     "void f() { return 1; }",
		"missing return value": "i32 f() { return; }",
		"condition is array":   "void f(i32 a[]) { if (a) { } }",
		"assign array mismatch": `
void f(u8 a[], i32 b[]) { i32 c[] = new i32[4]; a = c; }`,
		"non-call expr stmt": "void f(i32 x) { x + 1; }",
		"cast array":         "void f(i32 a[]) { f64 x = (f64) a; }",
		"reserved name":      "i32 max(i32 a, i32 b) { return a; }",
		"len of scalar":      "i32 f(i32 x) { return len(x); }",
		"arith on array":     "i32 f(i32 a[], i32 b[]) { return a + b; }",
		"min arity":          "i32 f() { return min(1); }",
		"abs arity":          "i32 f() { return abs(1, 2); }",
		"min of arrays":      "i32 f(i32 a[]) { return min(a, a); }",
		"new negative type":  "void f() { f64 x[] = new f64[1.5]; }",
		"intrinsic arg kind": "i32 f(i32 a[]) { return abs(a); }",
	}
	for name, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("%s: unexpected parse error: %v", name, err)
			continue
		}
		if _, err := Check(prog); err == nil {
			t.Errorf("%s: Check should fail for %q", name, src)
		} else if !strings.Contains(err.Error(), "minic:") {
			t.Errorf("%s: error %q lacks position info", name, err)
		}
	}
}

func TestCheckScoping(t *testing.T) {
	// A block-scoped variable may shadow an outer one and both get slots.
	chk := mustCheck(t, `
i32 f(i32 n) {
    i32 x = 1;
    if (n > 0) {
        i32 x = 2;
        n = n + x;
    }
    return x + n;
}`)
	if got := len(chk.Funcs["f"].Locals); got != 2 {
		t.Errorf("locals = %d, want 2 (shadowing allocates a second slot)", got)
	}
	// The for-init variable is scoped to the loop.
	prog, err := Parse("i32 f() { for (i32 i = 0; i < 3; i++) { } return i; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog); err == nil {
		t.Error("loop variable should not be visible after the loop")
	}
}
