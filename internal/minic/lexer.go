package minic

import (
	"strconv"
	"strings"
)

// Lexer turns MiniC source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over the given source text.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex scans the entire input and returns the token stream terminated by a
// TokEOF token, or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isLetter(c):
		return lx.lexIdent(pos), nil
	case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
		return lx.lexNumber(pos)
	case c == '\'':
		return lx.lexChar(pos)
	}
	lx.advance()
	two := func(next byte, ifTwo, ifOne TokKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: ifTwo, Pos: pos}
		}
		return Token{Kind: ifOne, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: TokPlusPlus, Pos: pos}, nil
		}
		return two('=', TokPlusEq, TokPlus), nil
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: TokMinusMinus, Pos: pos}, nil
		}
		return two('=', TokMinusEq, TokMinus), nil
	case '*':
		return two('=', TokStarEq, TokStar), nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '~':
		return Token{Kind: TokTilde, Pos: pos}, nil
	case '&':
		return two('&', TokAndAnd, TokAmp), nil
	case '|':
		return two('|', TokOrOr, TokPipe), nil
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return two('=', TokGe, TokGt), nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokBang), nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func (lx *Lexer) lexIdent(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if kw, ok := keywords[text]; ok {
		return Token{Kind: kw, Pos: pos, Text: text}
	}
	return Token{Kind: TokIdent, Pos: pos, Text: text}
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	isFloat := false
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseUint(text[2:], 16, 64)
		if err != nil {
			return Token{}, errf(pos, "bad hexadecimal literal %q", text)
		}
		return Token{Kind: TokIntLit, Pos: pos, Text: text, Int: int64(v)}, nil
	}
	for lx.off < len(lx.src) {
		c := lx.peek()
		if isDigit(c) {
			lx.advance()
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			lx.advance()
			continue
		}
		if (c == 'e' || c == 'E') && lx.off > start {
			isFloat = true
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			continue
		}
		break
	}
	text := lx.src[start:lx.off]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: TokFloatLit, Pos: pos, Text: text, Float: v}, nil
	}
	v, err := strconv.ParseUint(text, 10, 64)
	if err != nil {
		return Token{}, errf(pos, "bad integer literal %q", text)
	}
	return Token{Kind: TokIntLit, Pos: pos, Text: text, Int: int64(v)}, nil
}

func (lx *Lexer) lexChar(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, errf(pos, "unterminated character literal")
	}
	var v byte
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated character literal")
		}
		esc := lx.advance()
		switch esc {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\', '\'':
			v = esc
		default:
			return Token{}, errf(pos, "unknown escape \\%s", string(esc))
		}
	} else {
		v = c
	}
	if lx.off >= len(lx.src) || lx.peek() != '\'' {
		return Token{}, errf(pos, "unterminated character literal")
	}
	lx.advance()
	return Token{Kind: TokCharLit, Pos: pos, Text: string(v), Int: int64(v)}, nil
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

// stripBOM removes a UTF-8 byte-order mark if present; exported via Parse.
func stripBOM(src string) string {
	return strings.TrimPrefix(src, "\xef\xbb\xbf")
}
