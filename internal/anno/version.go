package anno

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/anno/envelope"
	"repro/internal/cil"
)

// Schema versions of the annotation payloads.
//
// V0 is the grandfathered pre-envelope encoding: the bare byte streams the
// toolchain has emitted since the beginning, with no container around them.
// Every such stream already in the wild keeps loading forever — a value that
// does not start with the envelope magic is a v0 stream by definition.
//
// V1 wraps the payloads in the self-describing container of
// internal/anno/envelope and extends the regalloc schema with the
// spill-class metadata the online allocator otherwise re-derives from the
// bytecode types.
const (
	V0 uint32 = 0
	V1 uint32 = 1
	// CurrentVersion is the newest schema the writers can emit and the
	// readers understand.
	CurrentVersion = V1
)

// Section names used inside the envelopes. The primary section of an
// annotation key carries the payload the legacy (v0) stream used to be;
// auxiliary sections (spill classes) extend it and degrade independently.
const (
	secVector     = "vec"
	secRegAlloc   = "regalloc"
	secHWReq      = "hwreq"
	secSpillClass = "spillclass"
	secProfile    = "profile"
)

// primarySection maps an annotation key to the envelope section holding its
// main payload.
var primarySection = map[string]string{
	KeyVector:   secVector,
	KeyRegAlloc: secRegAlloc,
	KeyHWReq:    secHWReq,
	KeyProfile:  secProfile,
}

// MaxSupported returns the newest schema version this reader understands for
// one of the known annotation keys (zero for keys it does not consume).
func MaxSupported(key string) uint32 {
	if _, ok := primarySection[key]; ok {
		return CurrentVersion
	}
	return 0
}

// Outcome reports how one annotation was negotiated at load/compile time.
// Negotiation never fails hard: an annotation the reader cannot understand —
// from the future, malformed, or below a configured minimum — comes back as
// a Fallback outcome and the JIT compiles that aspect online-only, exactly
// as if the annotation were absent.
type Outcome struct {
	Key string `json:"key"`
	// Version is the declared schema version of the primary section (0 for
	// grandfathered legacy streams).
	Version uint32 `json:"version"`
	// Enveloped reports whether the value uses the versioned container.
	Enveloped bool `json:"enveloped"`
	// Fallback is true when the annotation is present but unusable; the
	// compiler degraded to online-only for this aspect.
	Fallback bool `json:"fallback"`
	// Reason explains a fallback.
	Reason string `json:"reason,omitempty"`
}

// negotiate resolves one annotation value to the payload bytes of its
// primary section. For legacy values the payload is the value itself; for
// enveloped values it is the primary section's payload, and the returned
// envelope gives access to auxiliary sections. A nil payload means the
// annotation fell back (see Outcome.Reason); negotiation itself never
// returns an error.
func negotiate(key string, data []byte, minVersion uint32) ([]byte, *envelope.Envelope, Outcome) {
	out := Outcome{Key: key}
	if !envelope.Is(data) {
		if minVersion > V0 {
			out.Fallback = true
			out.Reason = fmt.Sprintf("legacy v0 stream below configured minimum version %d", minVersion)
			return nil, nil, out
		}
		return data, nil, out
	}
	out.Enveloped = true
	env, err := envelope.Parse(data)
	if err != nil {
		out.Fallback = true
		if errors.Is(err, envelope.ErrTooNew) {
			out.Version = uint32(env.Container)
			out.Reason = fmt.Sprintf("envelope container version %d newer than supported %d",
				env.Container, envelope.ContainerVersion)
		} else {
			out.Reason = "malformed envelope: " + err.Error()
		}
		return nil, nil, out
	}
	name := primarySection[key]
	sec := env.Section(name)
	if sec == nil {
		out.Fallback = true
		out.Reason = fmt.Sprintf("envelope carries no %q section", name)
		return nil, nil, out
	}
	out.Version = sec.Version
	if max := MaxSupported(key); sec.Version > max {
		out.Fallback = true
		out.Reason = fmt.Sprintf("section %q version %d newer than supported %d", name, sec.Version, max)
		return nil, nil, out
	}
	if sec.Version < minVersion {
		out.Fallback = true
		out.Reason = fmt.Sprintf("section %q version %d below configured minimum %d", name, sec.Version, minVersion)
		return nil, nil, out
	}
	return sec.Payload, env, out
}

// ReadVectorInfo negotiates and decodes the method's vectorization
// annotation. present reports whether the annotation exists at all; a nil
// info with present == true means the outcome fell back.
func ReadVectorInfo(m *cil.Method, minVersion uint32) (v *VectorInfo, out Outcome, present bool) {
	data, ok := m.Annotation(KeyVector)
	if !ok {
		return nil, Outcome{Key: KeyVector}, false
	}
	payload, _, out := negotiate(KeyVector, data, minVersion)
	if out.Fallback {
		return nil, out, true
	}
	// Versions V0 and V1 share the payload encoding; a future version would
	// dispatch to its own decoder here.
	v, err := DecodeVectorInfo(payload)
	if err != nil {
		out.Fallback = true
		out.Reason = err.Error()
		return nil, out, true
	}
	return v, out, true
}

// ReadRegAllocInfo negotiates and decodes the method's register-allocation
// annotation, including the v1 spill-class section when present. A
// malformed or too-new spill-class section only loses that metadata; the
// base intervals stay usable.
func ReadRegAllocInfo(m *cil.Method, minVersion uint32) (v *RegAllocInfo, out Outcome, present bool) {
	data, ok := m.Annotation(KeyRegAlloc)
	if !ok {
		return nil, Outcome{Key: KeyRegAlloc}, false
	}
	payload, env, out := negotiate(KeyRegAlloc, data, minVersion)
	if out.Fallback {
		return nil, out, true
	}
	v, err := DecodeRegAllocInfo(payload)
	if err != nil {
		out.Fallback = true
		out.Reason = err.Error()
		return nil, out, true
	}
	if env != nil {
		if sc := env.Section(secSpillClass); sc != nil && sc.Version <= CurrentVersion {
			if classes, err := decodeSpillClasses(sc.Payload, v.NumSlots); err == nil {
				v.Classes = classes
			}
		}
	}
	return v, out, true
}

// ReadHWReq negotiates and decodes the method's hardware-requirement
// annotation.
func ReadHWReq(m *cil.Method, minVersion uint32) (v *HWReq, out Outcome, present bool) {
	data, ok := m.Annotation(KeyHWReq)
	if !ok {
		return nil, Outcome{Key: KeyHWReq}, false
	}
	payload, _, out := negotiate(KeyHWReq, data, minVersion)
	if out.Fallback {
		return nil, out, true
	}
	v, err := DecodeHWReq(payload)
	if err != nil {
		out.Fallback = true
		out.Reason = err.Error()
		return nil, out, true
	}
	return v, out, true
}

// ---- versioned writers -----------------------------------------------------

func wrap(sections ...envelope.Section) []byte {
	return envelope.Encode(&envelope.Envelope{Container: envelope.ContainerVersion, Sections: sections})
}

func errVersion(version uint32) error {
	return fmt.Errorf("anno: writer cannot emit version %d (newest is %d)", version, CurrentVersion)
}

// EncodeVectorInfoV encodes at the given schema version: V0 produces the
// bare legacy stream, V1 the enveloped form.
func EncodeVectorInfoV(v *VectorInfo, version uint32) ([]byte, error) {
	switch version {
	case V0:
		return EncodeVectorInfo(v), nil
	case V1:
		return wrap(envelope.Section{Name: secVector, Version: V1, Payload: EncodeVectorInfo(v)}), nil
	}
	return nil, errVersion(version)
}

// EncodeRegAllocInfoV encodes at the given schema version. V1 adds a
// spill-class section when the info carries per-slot classes; V0 silently
// drops them (the legacy stream has no room for the metadata).
func EncodeRegAllocInfoV(v *RegAllocInfo, version uint32) ([]byte, error) {
	switch version {
	case V0:
		return EncodeRegAllocInfo(v), nil
	case V1:
		sections := []envelope.Section{{Name: secRegAlloc, Version: V1, Payload: EncodeRegAllocInfo(v)}}
		if len(v.Classes) > 0 {
			sections = append(sections, envelope.Section{Name: secSpillClass, Version: V1, Payload: encodeSpillClasses(v.Classes)})
		}
		return wrap(sections...), nil
	}
	return nil, errVersion(version)
}

// EncodeHWReqV encodes at the given schema version.
func EncodeHWReqV(v *HWReq, version uint32) ([]byte, error) {
	switch version {
	case V0:
		return EncodeHWReq(v), nil
	case V1:
		return wrap(envelope.Section{Name: secHWReq, Version: V1, Payload: EncodeHWReq(v)}), nil
	}
	return nil, errVersion(version)
}

// AttachVectorInfoV stores the vectorization annotation at the given schema
// version.
func AttachVectorInfoV(m *cil.Method, v *VectorInfo, version uint32) error {
	data, err := EncodeVectorInfoV(v, version)
	if err != nil {
		return err
	}
	m.SetAnnotation(KeyVector, data)
	return nil
}

// AttachRegAllocInfoV stores the register-allocation annotation at the given
// schema version.
func AttachRegAllocInfoV(m *cil.Method, v *RegAllocInfo, version uint32) error {
	data, err := EncodeRegAllocInfoV(v, version)
	if err != nil {
		return err
	}
	m.SetAnnotation(KeyRegAlloc, data)
	return nil
}

// AttachHWReqV stores the hardware-requirement annotation at the given
// schema version.
func AttachHWReqV(m *cil.Method, v *HWReq, version uint32) error {
	data, err := EncodeHWReqV(v, version)
	if err != nil {
		return err
	}
	m.SetAnnotation(KeyHWReq, data)
	return nil
}

// ---- spill classes (v1 regalloc metadata) ----------------------------------

// SpillClass is the register class of one variable slot, recorded offline so
// the online allocator can partition the annotation intervals per class
// without consulting the bytecode types.
type SpillClass uint8

// Spill classes. Unknown marks slots of v0 streams (no metadata) and slots
// the offline analysis could not classify.
const (
	SpillClassUnknown SpillClass = iota
	SpillClassInt
	SpillClassFloat
	SpillClassVec
)

func (c SpillClass) String() string {
	switch c {
	case SpillClassUnknown:
		return "unknown"
	case SpillClassInt:
		return "int"
	case SpillClassFloat:
		return "float"
	case SpillClassVec:
		return "vec"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// SpillClassOf classifies a slot type: floats to the FPU file, portable
// vectors to the SIMD file, everything else (integers, array references) to
// the integer file.
func SpillClassOf(t cil.Type) SpillClass {
	switch {
	case t.Kind == cil.Vec:
		return SpillClassVec
	case t.Kind.IsFloat():
		return SpillClassFloat
	default:
		return SpillClassInt
	}
}

func encodeSpillClasses(classes []SpillClass) []byte {
	w := &writer{}
	w.uvarint(uint64(len(classes)))
	for _, c := range classes {
		w.u8(uint8(c))
	}
	return w.buf
}

func decodeSpillClasses(data []byte, numSlots int) ([]SpillClass, error) {
	r := &reader{data: data}
	n := int(r.uvarint())
	if r.err == nil && (n < 0 || n != numSlots) {
		return nil, fmt.Errorf("anno: spill-class section covers %d slots, method has %d", n, numSlots)
	}
	out := make([]SpillClass, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, SpillClass(r.u8()))
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---- module-level negotiation and inspection -------------------------------

// MethodOutcome pairs a method name with one annotation outcome.
type MethodOutcome struct {
	Method string `json:"method"`
	Outcome
}

// NegotiateModule runs load-time negotiation for every known annotation of
// every method and returns the outcomes plus the number of sections that
// fell back to online-only compilation. Unknown annotation keys are skipped:
// nothing consumes them, so nothing can fall back.
func NegotiateModule(mod *cil.Module, minVersion uint32) ([]MethodOutcome, int) {
	var outcomes []MethodOutcome
	fallbacks := 0
	record := func(method string, out Outcome, present bool) {
		if !present {
			return
		}
		outcomes = append(outcomes, MethodOutcome{Method: method, Outcome: out})
		if out.Fallback {
			fallbacks++
		}
	}
	// Module-level annotations first (Method "" marks the module owner).
	_, out, present := ReadProfile(mod, minVersion)
	record("", out, present)
	for _, m := range mod.Methods {
		_, out, present := ReadVectorInfo(m, minVersion)
		record(m.Name, out, present)
		_, out, present = ReadRegAllocInfo(m, minVersion)
		record(m.Name, out, present)
		_, out, present = ReadHWReq(m, minVersion)
		record(m.Name, out, present)
	}
	return outcomes, fallbacks
}

// SectionHeader is one row of an envelope's section table, for inspection
// and disassembly.
type SectionHeader struct {
	Name    string `json:"name"`
	Version uint32 `json:"version"`
	Bytes   int    `json:"bytes"`
}

// SectionInfo describes one annotation value as recorded at module load
// time: its declared version, whether this reader supports it, and the
// envelope's section table when there is one.
type SectionInfo struct {
	// Method is the owning method's name; empty for module-level annotations.
	Method string `json:"method,omitempty"`
	Key    string `json:"key"`
	// Version is the declared schema version (0 for legacy streams).
	Version   uint32 `json:"version"`
	Enveloped bool   `json:"enveloped"`
	// Supported reports whether the current reader can consume the value
	// (true for unknown keys, which no reader consumes).
	Supported bool            `json:"supported"`
	Reason    string          `json:"reason,omitempty"`
	Bytes     int             `json:"bytes"`
	Sections  []SectionHeader `json:"sections,omitempty"`
}

func inspectValue(method, key string, data []byte) SectionInfo {
	info := SectionInfo{Method: method, Key: key, Supported: true, Bytes: len(data)}
	env, err := envelope.Parse(data)
	switch {
	case errors.Is(err, envelope.ErrNotEnvelope):
		// Grandfathered v0 stream: Version 0, not enveloped.
	case errors.Is(err, envelope.ErrTooNew):
		info.Enveloped = true
		info.Version = uint32(env.Container)
	case err != nil:
		info.Enveloped = true
	default:
		info.Enveloped = true
		for _, s := range env.Sections {
			info.Sections = append(info.Sections, SectionHeader{Name: s.Name, Version: s.Version, Bytes: len(s.Payload)})
			if s.Version > info.Version {
				info.Version = s.Version
			}
		}
	}
	if _, known := primarySection[key]; known {
		if _, _, out := negotiate(key, data, 0); out.Fallback {
			info.Supported = false
			info.Reason = out.Reason
			info.Version = out.Version
		} else {
			info.Version = out.Version
		}
	}
	return info
}

// InspectModule records the declared version and support status of every
// annotation in the module, module-level annotations first, then per method
// in declaration order (keys sorted within each owner).
func InspectModule(mod *cil.Module) []SectionInfo {
	var out []SectionInfo
	for _, k := range sortedAnnoKeys(mod.Annotations) {
		out = append(out, inspectValue("", k, mod.Annotations[k]))
	}
	for _, m := range mod.Methods {
		for _, k := range m.AnnotationKeys() {
			out = append(out, inspectValue(m.Name, k, m.Annotations[k]))
		}
	}
	return out
}

func sortedAnnoKeys(a map[string][]byte) []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
