package anno

import (
	"fmt"

	"repro/internal/anno/envelope"
	"repro/internal/cil"
	"repro/internal/profile"
)

// Runtime execution profiles (internal/profile) travel through the same
// versioned annotation envelope as the offline analyses: a module-level
// annotation under KeyProfile whose primary section is "profile", schema v1.
// Profiles close the split-compilation loop — the runtime generates the
// annotation, the next deployment consumes it — and are advisory exactly
// like every other section: a reader from before the profile era ignores
// the unknown key entirely, and a reader meeting a future profile schema
// falls back to running unprofiled, never to an error.

// EncodeProfileV encodes a module profile at the given schema version.
// Profiles have no grandfathered v0 form — they postdate the envelope — so
// only V1 is valid.
func EncodeProfileV(p *profile.ModuleProfile, version uint32) ([]byte, error) {
	if version != V1 {
		return nil, fmt.Errorf("anno: profile annotations require schema v1 (got %d)", version)
	}
	return wrap(envelope.Section{Name: secProfile, Version: V1, Payload: p.Encode()}), nil
}

// AttachProfileV stores the execution profile as a module-level annotation
// at the given schema version.
func AttachProfileV(mod *cil.Module, p *profile.ModuleProfile, version uint32) error {
	data, err := EncodeProfileV(p, version)
	if err != nil {
		return err
	}
	mod.SetAnnotation(KeyProfile, data)
	return nil
}

// ReadProfile negotiates and decodes the module's execution profile.
// present reports whether the annotation exists at all; a nil profile with
// present == true means the outcome fell back.
func ReadProfile(mod *cil.Module, minVersion uint32) (p *profile.ModuleProfile, out Outcome, present bool) {
	data, ok := mod.Annotation(KeyProfile)
	if !ok {
		return nil, Outcome{Key: KeyProfile}, false
	}
	p, out = ReadProfileValue(data, minVersion)
	return p, out, true
}

// ReadProfileValue negotiates and decodes a standalone profile annotation
// value — the blob a deployment exports and another imports without a
// module around it (svd's profile endpoints). A nil profile means the
// value fell back; see Outcome.Reason.
func ReadProfileValue(data []byte, minVersion uint32) (*profile.ModuleProfile, Outcome) {
	payload, _, out := negotiate(KeyProfile, data, minVersion)
	if out.Fallback {
		return nil, out
	}
	p, err := profile.Decode(payload)
	if err != nil {
		out.Fallback = true
		out.Reason = err.Error()
		return nil, out
	}
	return p, out
}

// ProfileOf returns the module's execution profile, or nil if the module
// carries none or it cannot be negotiated.
func ProfileOf(mod *cil.Module) *profile.ModuleProfile {
	p, _, _ := ReadProfile(mod, 0)
	return p
}
