package anno

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/anno/envelope"
	"repro/internal/cil"
	"repro/internal/profile"
)

func sampleProfile() *profile.ModuleProfile {
	return &profile.ModuleProfile{Funcs: []profile.FuncProfile{
		{Name: "kernel", Calls: 64, Branches: []profile.BranchCount{{Taken: 64, NotTaken: 4032}, {Taken: 4032}}},
	}}
}

func TestProfileRoundTrip(t *testing.T) {
	mod := &cil.Module{Name: "m"}
	if err := AttachProfileV(mod, sampleProfile(), V1); err != nil {
		t.Fatal(err)
	}
	got, out, present := ReadProfile(mod, 0)
	if !present || out.Fallback {
		t.Fatalf("ReadProfile: present=%v outcome=%+v", present, out)
	}
	if out.Version != V1 || !out.Enveloped {
		t.Fatalf("outcome = %+v, want enveloped v1", out)
	}
	if !reflect.DeepEqual(got, sampleProfile()) {
		t.Fatalf("profile mismatch: %+v", got)
	}
	if ProfileOf(mod) == nil {
		t.Fatal("ProfileOf returned nil")
	}
}

func TestProfileAbsent(t *testing.T) {
	mod := &cil.Module{Name: "m"}
	if p, _, present := ReadProfile(mod, 0); present || p != nil {
		t.Fatal("ReadProfile invented a profile")
	}
}

func TestProfileWriterRejectsOtherVersions(t *testing.T) {
	for _, v := range []uint32{V0, CurrentVersion + 1} {
		if _, err := EncodeProfileV(sampleProfile(), v); err == nil {
			t.Errorf("EncodeProfileV(%d) succeeded; profiles are v1-only", v)
		}
	}
}

func TestProfileFutureVersionFallsBack(t *testing.T) {
	future := wrap(envelope.Section{Name: secProfile, Version: 99, Payload: sampleProfile().Encode()})
	p, out := ReadProfileValue(future, 0)
	if p != nil || !out.Fallback {
		t.Fatalf("future profile did not fall back: %+v", out)
	}
	if !strings.Contains(out.Reason, "newer than supported") {
		t.Fatalf("unexpected reason %q", out.Reason)
	}

	mod := &cil.Module{Name: "m"}
	mod.SetAnnotation(KeyProfile, future)
	if _, out, present := ReadProfile(mod, 0); !present || !out.Fallback {
		t.Fatal("module-level future profile did not fall back")
	}
	// Negotiation surfaces the fallback as a module-level (Method "") outcome.
	outcomes, fallbacks := NegotiateModule(mod, 0)
	if fallbacks != 1 || len(outcomes) != 1 || outcomes[0].Method != "" || outcomes[0].Key != KeyProfile {
		t.Fatalf("NegotiateModule = %+v (%d fallbacks)", outcomes, fallbacks)
	}
}

func TestProfileMalformedPayloadFallsBack(t *testing.T) {
	bad := wrap(envelope.Section{Name: secProfile, Version: V1, Payload: []byte{42}})
	if p, out := ReadProfileValue(bad, 0); p != nil || !out.Fallback {
		t.Fatalf("malformed profile did not fall back: %+v", out)
	}
}

func TestProfileInspect(t *testing.T) {
	mod := &cil.Module{Name: "m"}
	if err := AttachProfileV(mod, sampleProfile(), V1); err != nil {
		t.Fatal(err)
	}
	infos := InspectModule(mod)
	if len(infos) != 1 {
		t.Fatalf("InspectModule returned %d entries", len(infos))
	}
	info := infos[0]
	if info.Method != "" || info.Key != KeyProfile || !info.Supported || info.Version != V1 {
		t.Fatalf("InspectModule entry = %+v", info)
	}
	if len(info.Sections) != 1 || info.Sections[0].Name != secProfile {
		t.Fatalf("section table = %+v", info.Sections)
	}
}
