package anno

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cil"
)

func TestVectorInfoRoundTrip(t *testing.T) {
	v := &VectorInfo{Loops: []VectorLoop{
		{LoopID: 0, Elem: cil.F64, Lanes: 2, Pattern: PatternMap, NoAliasProven: true},
		{LoopID: 3, Elem: cil.U8, Lanes: 16, Pattern: PatternReduceMax},
	}}
	got, err := DecodeVectorInfo(EncodeVectorInfo(v))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", v, got)
	}
}

func TestRegAllocInfoRoundTrip(t *testing.T) {
	v := &RegAllocInfo{
		NumSlots: 7,
		Intervals: []SlotInterval{
			{Slot: 2, Start: 0, End: 45, Weight: 900},
			{Slot: 0, Start: 0, End: 10, Weight: 12},
			{Slot: 6, Start: 20, End: 21, Weight: 1},
		},
	}
	got, err := DecodeRegAllocInfo(EncodeRegAllocInfo(v))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", v, got)
	}
}

func TestHWReqRoundTrip(t *testing.T) {
	v := &HWReq{UsesVector: true, UsesFloat: true, VectorKinds: []cil.Kind{cil.F64, cil.U8}, EstimatedWork: 123456}
	got, err := DecodeHWReq(EncodeHWReq(v))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", v, got)
	}
	empty := &HWReq{}
	got, err = DecodeHWReq(EncodeHWReq(empty))
	if err != nil || got.UsesVector || got.UsesFloat || len(got.VectorKinds) != 0 {
		t.Errorf("empty HWReq round trip failed: %+v (%v)", got, err)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := DecodeVectorInfo(nil); err == nil {
		t.Error("empty vector payload accepted")
	}
	if _, err := DecodeVectorInfo([]byte{99}); err == nil {
		t.Error("bad schema version accepted")
	}
	ok := EncodeRegAllocInfo(&RegAllocInfo{NumSlots: 1, Intervals: []SlotInterval{{Slot: 0, Start: 0, End: 5, Weight: 3}}})
	if _, err := DecodeRegAllocInfo(ok[:len(ok)-1]); err == nil {
		t.Error("truncated regalloc payload accepted")
	}
	if _, err := DecodeRegAllocInfo(append(ok, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeHWReq([]byte{schemaVersion}); err == nil {
		t.Error("truncated hwreq payload accepted")
	}
}

func TestMethodAttachAndLookup(t *testing.T) {
	m := cil.NewMethod("k", nil, cil.Scalar(cil.Void))
	if VectorInfoOf(m) != nil || RegAllocInfoOf(m) != nil || HWReqOf(m) != nil {
		t.Error("annotations reported on a method without any")
	}
	AttachVectorInfo(m, &VectorInfo{Loops: []VectorLoop{{LoopID: 1, Elem: cil.F32, Lanes: 4, Pattern: PatternReduceAdd, NoAliasProven: true}}})
	AttachRegAllocInfo(m, &RegAllocInfo{NumSlots: 3})
	AttachHWReq(m, &HWReq{UsesFloat: true})
	if v := VectorInfoOf(m); v == nil || v.Loops[0].Elem != cil.F32 {
		t.Error("VectorInfoOf failed")
	}
	if v := RegAllocInfoOf(m); v == nil || v.NumSlots != 3 {
		t.Error("RegAllocInfoOf failed")
	}
	if v := HWReqOf(m); v == nil || !v.UsesFloat {
		t.Error("HWReqOf failed")
	}
	// A corrupt annotation is treated as absent (annotations are advisory).
	m.SetAnnotation(KeyVector, []byte{0xFF, 0x00})
	if VectorInfoOf(m) != nil {
		t.Error("corrupt annotation should be ignored")
	}
}

func TestTotalAnnotationBytes(t *testing.T) {
	mod := cil.NewModule("m")
	mod.SetAnnotation("x", []byte{1, 2, 3})
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	m.SetAnnotation("y", []byte{4, 5})
	if err := mod.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	if got := TotalAnnotationBytes(mod); got != 5 {
		t.Errorf("TotalAnnotationBytes = %d, want 5", got)
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[VecPattern]string{
		PatternMap: "map", PatternReduceAdd: "reduce-add",
		PatternReduceMax: "reduce-max", PatternReduceMin: "reduce-min",
		VecPattern(9): "pattern(9)",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestRegAllocRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := &RegAllocInfo{NumSlots: r.Intn(64)}
		n := r.Intn(20)
		for i := 0; i < n; i++ {
			start := r.Intn(1000)
			v.Intervals = append(v.Intervals, SlotInterval{
				Slot:   r.Intn(64),
				Start:  start,
				End:    start + r.Intn(500),
				Weight: uint32(r.Intn(1 << 20)),
			})
		}
		got, err := DecodeRegAllocInfo(EncodeRegAllocInfo(v))
		if err != nil {
			return false
		}
		if len(v.Intervals) == 0 {
			return got.NumSlots == v.NumSlots && len(got.Intervals) == 0
		}
		return reflect.DeepEqual(v, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorInfoRoundTripProperty(t *testing.T) {
	kinds := []cil.Kind{cil.U8, cil.I8, cil.U16, cil.I16, cil.I32, cil.U32, cil.F32, cil.F64}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := &VectorInfo{}
		n := r.Intn(8)
		for i := 0; i < n; i++ {
			k := kinds[r.Intn(len(kinds))]
			v.Loops = append(v.Loops, VectorLoop{
				LoopID:        i,
				Elem:          k,
				Lanes:         k.Lanes(),
				Pattern:       VecPattern(r.Intn(4)),
				NoAliasProven: r.Intn(2) == 0,
			})
		}
		got, err := DecodeVectorInfo(EncodeVectorInfo(v))
		if err != nil {
			return false
		}
		if len(v.Loops) == 0 {
			return len(got.Loops) == 0
		}
		return reflect.DeepEqual(v, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
