package anno_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

const corpusDir = "testdata/annocorpus"

// TestCorpus is the compatibility gate over the golden annotation corpus:
// every checked-in byte stream — v0 streams predating the versioned
// envelope, v1 streams, and the synthetic version-99 stream from the future
// — must still decode with the current reader and deploy with results
// identical to online-only compilation. The synthetic stream must degrade
// to online-only compilation with the fallback surfaced, never an error.
func TestCorpus(t *testing.T) {
	man, err := corpus.LoadManifest(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Entries) == 0 {
		t.Fatalf("empty corpus in %s: regenerate with `go run ./cmd/annocorpus -update`", corpusDir)
	}
	versions := map[uint32]bool{}
	for _, e := range man.Entries {
		versions[e.Version] = true
		e := e
		t.Run(e.File, func(t *testing.T) {
			if err := corpus.VerifyEntry(corpusDir, e); err != nil {
				t.Fatal(err)
			}
		})
	}
	// The corpus must keep covering both shipped writer versions and the
	// future stream; losing one silently would hollow out the gate.
	for _, want := range []uint32{0, 1, corpus.SyntheticVersion} {
		if !versions[want] {
			t.Errorf("corpus has no version-%d entry", want)
		}
	}
}

// TestCorpusFilesMatchManifest guards the corpus directory itself: every
// file is indexed and unmodified (checked-in streams are immutable).
func TestCorpusFilesMatchManifest(t *testing.T) {
	man, err := corpus.LoadManifest(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	indexed := map[string]bool{corpus.ManifestName: true}
	for _, e := range man.Entries {
		indexed[e.File] = true
		if _, err := os.Stat(filepath.Join(corpusDir, e.File)); err != nil {
			t.Errorf("manifest entry %s: %v", e.File, err)
		}
	}
	files, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if !f.IsDir() && !indexed[f.Name()] {
			t.Errorf("stray file %s not indexed in %s", f.Name(), corpus.ManifestName)
		}
	}
}
