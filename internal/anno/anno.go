// Package anno defines the typed annotation schemas that the offline
// compiler embeds in bytecode metadata and the online (JIT) compiler
// consumes. These annotations are the concrete realization of split
// compilation in the paper: expensive offline analyses distill their results
// into compact, portable payloads so that the online step can apply
// straightforward transformations in linear time.
//
// Three schemas are defined:
//
//   - VectorInfo (KeyVector): which loops were auto-vectorized offline, with
//     element kinds and reduction patterns, certifying that the dependence
//     analysis was already performed.
//   - RegAllocInfo (KeyRegAlloc): the portable register-allocation plan of
//     the split register allocator (Diouf et al.): live intervals and spill
//     priorities for every variable slot, independent of the target's
//     register count.
//   - HWReq (KeyHWReq): hardware requirement/affinity hints used by the
//     heterogeneous runtime to map methods onto cores (Section 3's Cell-like
//     offload scenario).
//
// Annotations are advisory. A JIT that ignores them must still generate
// correct code; it merely loses compile-time or code quality.
//
// Annotation values are versioned (see version.go and
// internal/anno/envelope): v0 is the original bare encoding below,
// grandfathered forever; newer schemas travel in a self-describing envelope
// and are negotiated per section at load time. A reader that meets bytes
// from the future falls back to online-only compilation for that aspect —
// never a hard error, because the installed base must keep deploying.
package anno

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cil"
)

// Annotation keys used in cil method/module metadata.
const (
	KeyVector   = "split.vec"
	KeyRegAlloc = "split.regalloc"
	KeyHWReq    = "split.hwreq"
	// KeyProfile is the module-level runtime execution profile (see
	// internal/profile and profile.go): the one annotation produced by the
	// runtime rather than the offline compiler.
	KeyProfile = "split.profile"
)

// VecPattern classifies a vectorized loop.
type VecPattern uint8

// Vectorized loop patterns.
const (
	PatternMap       VecPattern = iota // element-wise computation, no cross-iteration dependence
	PatternReduceAdd                   // sum reduction
	PatternReduceMax                   // max reduction
	PatternReduceMin                   // min reduction
)

func (p VecPattern) String() string {
	switch p {
	case PatternMap:
		return "map"
	case PatternReduceAdd:
		return "reduce-add"
	case PatternReduceMax:
		return "reduce-max"
	case PatternReduceMin:
		return "reduce-min"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// VectorLoop describes one loop vectorized by the offline compiler.
type VectorLoop struct {
	// LoopID is the ordinal of the loop within the function (source order).
	LoopID int
	// Elem is the element kind processed by the loop.
	Elem cil.Kind
	// Lanes is the number of elements per portable vector operation.
	Lanes int
	// Pattern classifies the loop body.
	Pattern VecPattern
	// NoAliasProven records that the offline dependence analysis proved the
	// absence of loop-carried dependences, so the online compiler can use
	// the builtins without re-analysis.
	NoAliasProven bool
}

// VectorInfo is the per-method vectorization annotation payload.
type VectorInfo struct {
	Loops []VectorLoop
}

// SlotInterval is the live interval and spill priority of one variable slot
// (arguments first, then locals), expressed in bytecode instruction indices.
// The interval representation is target independent: the online allocator
// intersects it with the actual register file in a single linear pass.
type SlotInterval struct {
	// Slot is the variable index: 0..NumParams-1 are arguments,
	// NumParams..NumParams+NumLocals-1 are locals.
	Slot int
	// Start and End delimit the half-open live range [Start, End).
	Start int
	End   int
	// Weight is the estimated dynamic access count (spill cost); higher
	// weights are allocated to registers first.
	Weight uint32
}

// RegAllocInfo is the per-method split register-allocation annotation: the
// offline half has already ordered the slots by decreasing weight, so the
// online half assigns registers in one linear scan of this list.
type RegAllocInfo struct {
	// NumSlots is the total number of variable slots (args + locals).
	NumSlots int
	// Intervals is sorted by decreasing Weight (ties by Slot).
	Intervals []SlotInterval
	// Classes records the register class of every slot (indexed by slot
	// number, length NumSlots). It is the v1 schema extension: with it the
	// online allocator partitions the intervals per register class directly
	// instead of re-deriving each slot's class from the bytecode types. Nil
	// for v0 streams; always advisory.
	Classes []SpillClass
}

// HWReq is the hardware requirement/affinity annotation used by the
// heterogeneous runtime scheduler.
type HWReq struct {
	// UsesVector indicates the method contains portable vector builtins and
	// therefore benefits from a SIMD-capable core.
	UsesVector bool
	// UsesFloat indicates the method performs floating-point arithmetic and
	// benefits from a hardware FPU.
	UsesFloat bool
	// VectorKinds lists the element kinds of the vector operations used.
	VectorKinds []cil.Kind
	// EstimatedWork is a rough per-invocation operation count used to decide
	// whether offloading is worth the transfer latency.
	EstimatedWork int64
}

// ---- binary encoding -------------------------------------------------------
//
// All payloads use unsigned/zig-zag varints with a one-byte schema version so
// the annotations stay compact (the paper stresses "compact, portable
// annotations"); sizes are reported by the Figure-1 experiment.

const schemaVersion = 1

type writer struct{ buf []byte }

func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }
func (w *writer) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf = append(w.buf, tmp[:n]...)
}
func (w *writer) svarint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	w.buf = append(w.buf, tmp[:n]...)
}
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("anno: decode at %d: %s", r.pos, msg)
	}
}
func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("truncated")
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}
func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.pos += n
	return v
}
func (r *reader) svarint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.pos += n
	return v
}
func (r *reader) bool() bool { return r.u8() != 0 }
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("anno: %d trailing bytes", len(r.data)-r.pos)
	}
	return nil
}
func (r *reader) version(what string) {
	if v := r.u8(); r.err == nil && v != schemaVersion {
		r.fail(fmt.Sprintf("unsupported %s schema version %d", what, v))
	}
}

// EncodeVectorInfo serializes a VectorInfo payload.
func EncodeVectorInfo(v *VectorInfo) []byte {
	w := &writer{}
	w.u8(schemaVersion)
	w.uvarint(uint64(len(v.Loops)))
	for _, l := range v.Loops {
		w.uvarint(uint64(l.LoopID))
		w.u8(uint8(l.Elem))
		w.uvarint(uint64(l.Lanes))
		w.u8(uint8(l.Pattern))
		w.bool(l.NoAliasProven)
	}
	return w.buf
}

// DecodeVectorInfo parses a VectorInfo payload.
func DecodeVectorInfo(data []byte) (*VectorInfo, error) {
	r := &reader{data: data}
	r.version("vector")
	n := int(r.uvarint())
	v := &VectorInfo{}
	for i := 0; i < n && r.err == nil; i++ {
		l := VectorLoop{
			LoopID:  int(r.uvarint()),
			Elem:    cil.Kind(r.u8()),
			Lanes:   int(r.uvarint()),
			Pattern: VecPattern(r.u8()),
		}
		l.NoAliasProven = r.bool()
		v.Loops = append(v.Loops, l)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return v, nil
}

// EncodeRegAllocInfo serializes a RegAllocInfo payload.
func EncodeRegAllocInfo(v *RegAllocInfo) []byte {
	w := &writer{}
	w.u8(schemaVersion)
	w.uvarint(uint64(v.NumSlots))
	w.uvarint(uint64(len(v.Intervals)))
	for _, iv := range v.Intervals {
		w.uvarint(uint64(iv.Slot))
		w.svarint(int64(iv.Start))
		w.svarint(int64(iv.End))
		w.uvarint(uint64(iv.Weight))
	}
	return w.buf
}

// DecodeRegAllocInfo parses a RegAllocInfo payload.
func DecodeRegAllocInfo(data []byte) (*RegAllocInfo, error) {
	r := &reader{data: data}
	r.version("regalloc")
	v := &RegAllocInfo{NumSlots: int(r.uvarint())}
	n := int(r.uvarint())
	for i := 0; i < n && r.err == nil; i++ {
		v.Intervals = append(v.Intervals, SlotInterval{
			Slot:   int(r.uvarint()),
			Start:  int(r.svarint()),
			End:    int(r.svarint()),
			Weight: uint32(r.uvarint()),
		})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return v, nil
}

// EncodeHWReq serializes a HWReq payload.
func EncodeHWReq(v *HWReq) []byte {
	w := &writer{}
	w.u8(schemaVersion)
	w.bool(v.UsesVector)
	w.bool(v.UsesFloat)
	w.uvarint(uint64(len(v.VectorKinds)))
	for _, k := range v.VectorKinds {
		w.u8(uint8(k))
	}
	w.svarint(v.EstimatedWork)
	return w.buf
}

// DecodeHWReq parses a HWReq payload.
func DecodeHWReq(data []byte) (*HWReq, error) {
	r := &reader{data: data}
	r.version("hwreq")
	v := &HWReq{UsesVector: r.bool(), UsesFloat: r.bool()}
	n := int(r.uvarint())
	for i := 0; i < n && r.err == nil; i++ {
		v.VectorKinds = append(v.VectorKinds, cil.Kind(r.u8()))
	}
	v.EstimatedWork = r.svarint()
	if err := r.done(); err != nil {
		return nil, err
	}
	return v, nil
}

// ---- convenience accessors on methods --------------------------------------

// VectorInfoOf returns the method's vectorization annotation, or nil if the
// method carries none (or it cannot be negotiated — malformed, or from the
// future — in which case the annotation is treated as absent: annotations
// are advisory). Both legacy v0 streams and enveloped values are understood.
func VectorInfoOf(m *cil.Method) *VectorInfo {
	v, _, _ := ReadVectorInfo(m, 0)
	return v
}

// RegAllocInfoOf returns the method's register-allocation annotation, or nil.
func RegAllocInfoOf(m *cil.Method) *RegAllocInfo {
	v, _, _ := ReadRegAllocInfo(m, 0)
	return v
}

// HWReqOf returns the method's hardware-requirement annotation, or nil.
func HWReqOf(m *cil.Method) *HWReq {
	v, _, _ := ReadHWReq(m, 0)
	return v
}

// AttachVectorInfo stores the vectorization annotation on the method in the
// legacy v0 encoding (see AttachVectorInfoV for versioned streams).
func AttachVectorInfo(m *cil.Method, v *VectorInfo) { m.SetAnnotation(KeyVector, EncodeVectorInfo(v)) }

// AttachRegAllocInfo stores the register-allocation annotation on the method
// in the legacy v0 encoding, which has no room for the spill-class metadata
// (see AttachRegAllocInfoV).
func AttachRegAllocInfo(m *cil.Method, v *RegAllocInfo) {
	m.SetAnnotation(KeyRegAlloc, EncodeRegAllocInfo(v))
}

// AttachHWReq stores the hardware-requirement annotation on the method in
// the legacy v0 encoding (see AttachHWReqV).
func AttachHWReq(m *cil.Method, v *HWReq) { m.SetAnnotation(KeyHWReq, EncodeHWReq(v)) }

// TotalAnnotationBytes returns the number of annotation payload bytes in the
// module (method- plus module-level), used by the Figure-1 experiment to
// report the space overhead of split compilation.
func TotalAnnotationBytes(mod *cil.Module) int {
	total := 0
	for _, v := range mod.Annotations {
		total += len(v)
	}
	for _, m := range mod.Methods {
		for _, v := range m.Annotations {
			total += len(v)
		}
	}
	return total
}
