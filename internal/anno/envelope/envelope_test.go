package envelope

import (
	"bytes"
	"errors"
	"testing"
)

func sample() *Envelope {
	return &Envelope{Sections: []Section{
		{Name: "regalloc", Version: 1, Payload: []byte{1, 2, 3, 4}},
		{Name: "spillclass", Version: 1, Payload: []byte{9}},
		{Name: "empty", Version: 3, Payload: nil},
	}}
}

func TestRoundTrip(t *testing.T) {
	enc := Encode(sample())
	if !Is(enc) {
		t.Fatal("encoded envelope does not carry the magic")
	}
	e, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e.Container != ContainerVersion {
		t.Errorf("container = %d, want %d", e.Container, ContainerVersion)
	}
	if len(e.Sections) != 3 {
		t.Fatalf("got %d sections, want 3", len(e.Sections))
	}
	if s := e.Section("regalloc"); s == nil || s.Version != 1 || !bytes.Equal(s.Payload, []byte{1, 2, 3, 4}) {
		t.Errorf("regalloc section mismatch: %+v", s)
	}
	if s := e.Section("empty"); s == nil || s.Version != 3 || len(s.Payload) != 0 {
		t.Errorf("empty section mismatch: %+v", s)
	}
	if e.Section("absent") != nil {
		t.Error("lookup of absent section succeeded")
	}
}

func TestParseRejectsLegacy(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {1}, []byte("SVA"), []byte("not an envelope")} {
		if _, err := Parse(data); !errors.Is(err, ErrNotEnvelope) {
			t.Errorf("Parse(%q) = %v, want ErrNotEnvelope", data, err)
		}
		if Is(data) {
			t.Errorf("Is(%q) = true", data)
		}
	}
}

func TestParseTooNewContainer(t *testing.T) {
	enc := Encode(&Envelope{Container: ContainerVersion + 1})
	e, err := Parse(enc)
	if !errors.Is(err, ErrTooNew) {
		t.Fatalf("err = %v, want ErrTooNew", err)
	}
	if e == nil || e.Container != ContainerVersion+1 {
		t.Errorf("envelope should carry the declared container version, got %+v", e)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	enc := Encode(sample())
	cases := map[string][]byte{
		"truncated header":   enc[:5],
		"truncated table":    enc[:8],
		"truncated payloads": enc[:len(enc)-2],
		"trailing bytes":     append(append([]byte(nil), enc...), 0xAA),
	}
	// Flip one payload byte: checksum must catch it.
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-1] ^= 0xFF
	cases["checksum mismatch"] = flipped

	for name, data := range cases {
		_, err := Parse(data)
		if err == nil || errors.Is(err, ErrNotEnvelope) || errors.Is(err, ErrTooNew) {
			t.Errorf("%s: err = %v, want a corruption error", name, err)
		}
	}
}

func TestParseRejectsAbsurdLengths(t *testing.T) {
	// A section declaring a payload far beyond the input must error without
	// allocating it.
	data := []byte(Magic)
	data = append(data, ContainerVersion)
	data = append(data, 1)                               // one section
	data = append(data, 1, 'x')                          // name "x"
	data = append(data, 1)                               // version 1
	data = append(data, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 7) // huge uvarint length
	data = append(data, 0, 0, 0, 0)                      // "checksum"
	if _, err := Parse(data); err == nil {
		t.Error("absurd payload length accepted")
	}

	// An implausible section count is rejected before allocation.
	data = []byte(Magic)
	data = append(data, ContainerVersion)
	data = append(data, 0xFF, 0xFF, 0x3F) // count ~1M
	if _, err := Parse(data); err == nil {
		t.Error("absurd section count accepted")
	}
}

func TestEncodePanicsOnReaderLimits(t *testing.T) {
	expectPanic := func(name string, e *Envelope) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Encode did not panic", name)
			}
		}()
		Encode(e)
	}
	tooMany := &Envelope{Sections: make([]Section, maxSections+1)}
	for i := range tooMany.Sections {
		tooMany.Sections[i].Name = "s"
	}
	expectPanic("too many sections", tooMany)
	expectPanic("oversized name", &Envelope{Sections: []Section{
		{Name: string(make([]byte, maxNameLen+1)), Version: 1},
	}})
}

func TestDeclaredVersion(t *testing.T) {
	if v, env := DeclaredVersion([]byte{1, 2, 3}); v != 0 || env {
		t.Errorf("legacy: got (%d, %v)", v, env)
	}
	if v, env := DeclaredVersion(Encode(sample())); v != 3 || !env {
		t.Errorf("enveloped: got (%d, %v), want (3, true)", v, env)
	}
	if v, env := DeclaredVersion(Encode(&Envelope{Container: 9})); v != 9 || !env {
		t.Errorf("future container: got (%d, %v), want (9, true)", v, env)
	}
	corrupt := Encode(sample())
	corrupt[len(corrupt)-1] ^= 0xFF
	if v, env := DeclaredVersion(corrupt); v != 0 || !env {
		t.Errorf("corrupt: got (%d, %v), want (0, true)", v, env)
	}
}
