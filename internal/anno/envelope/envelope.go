// Package envelope implements the versioned annotation container format of
// the split-compilation toolchain.
//
// Annotation payloads cross the distribution boundary inside encoded modules
// and must stay deployable as their schemas evolve: yesterday's offline
// compiler and tomorrow's online JIT meet around these bytes. The container
// makes every annotation value self-describing:
//
//	magic    "SVAE" (4 bytes)
//	u8       container format version (ContainerVersion)
//	uvarint  section count
//	per section:
//	    uvarint  name length, then name bytes (UTF-8)
//	    uvarint  section schema version
//	    uvarint  payload length
//	u32le    IEEE CRC-32 of the concatenated payloads
//	payloads concatenated, in section-table order
//
// Version 0 of every annotation schema is, by definition, the historical
// bare payload with no container at all: a value that does not start with
// the magic is a grandfathered v0 stream. That rule keeps every byte stream
// already in the wild loadable forever.
//
// The container is deliberately dumb: it names sections and versions them,
// nothing more. What a section means — and which versions a reader
// understands — is the business of internal/anno, which negotiates
// per-section at load time and degrades to online-only compilation instead
// of erroring when it meets bytes from the future.
package envelope

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies an enveloped annotation value ("Split-Vm Annotation
// Envelope"). Values not starting with it are grandfathered v0 streams.
const Magic = "SVAE"

// ContainerVersion is the container layout version this package writes and
// understands. A parsed envelope with a newer container version returns
// ErrTooNew: the section table itself cannot be trusted to have this layout.
const ContainerVersion = 1

// Hard limits applied before any allocation, so hostile or corrupt inputs
// can neither panic the parser nor make it over-allocate.
const (
	maxSections = 64
	maxNameLen  = 255
)

// ErrNotEnvelope reports that the value does not start with the envelope
// magic and is therefore a grandfathered v0 stream (or something else
// entirely); the caller decides which.
var ErrNotEnvelope = errors.New("envelope: no magic, legacy v0 stream")

// ErrTooNew reports a container format version newer than ContainerVersion.
// The returned Envelope carries the declared Container number but no
// sections: the table layout of a future container is unknown.
var ErrTooNew = errors.New("envelope: container version newer than supported")

// Section is one named, versioned byte payload inside an envelope.
type Section struct {
	Name    string
	Version uint32
	// Payload aliases the parsed input on the read side; callers that keep
	// it beyond the input's lifetime must copy.
	Payload []byte
}

// Envelope is a parsed (or to-be-encoded) annotation container.
type Envelope struct {
	Container uint8
	Sections  []Section
}

// Section returns the first section with the given name, or nil.
func (e *Envelope) Section(name string) *Section {
	for i := range e.Sections {
		if e.Sections[i].Name == name {
			return &e.Sections[i]
		}
	}
	return nil
}

// Is reports whether the value starts with the envelope magic.
func Is(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

// Encode serializes the envelope. A zero Container encodes as
// ContainerVersion. It panics when the envelope violates the limits Parse
// enforces (section count, name length): shipping a stream every reader
// would silently degrade to online-only compilation is a programming error
// that must surface at write time, not in the field.
func Encode(e *Envelope) []byte {
	if len(e.Sections) > maxSections {
		panic(fmt.Sprintf("envelope: %d sections exceeds the limit of %d every reader enforces", len(e.Sections), maxSections))
	}
	for _, s := range e.Sections {
		if len(s.Name) > maxNameLen {
			panic(fmt.Sprintf("envelope: section name of %d bytes exceeds the limit of %d every reader enforces", len(s.Name), maxNameLen))
		}
	}
	container := e.Container
	if container == 0 {
		container = ContainerVersion
	}
	var tmp [binary.MaxVarintLen64]byte
	buf := append([]byte(nil), Magic...)
	buf = append(buf, container)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(e.Sections)))]...)
	crc := crc32.NewIEEE()
	for _, s := range e.Sections {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(s.Name)))]...)
		buf = append(buf, s.Name...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(s.Version))]...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(s.Payload)))]...)
		crc.Write(s.Payload)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	for _, s := range e.Sections {
		buf = append(buf, s.Payload...)
	}
	return buf
}

// Parse decodes an envelope, validating the section table, the payload
// lengths and the checksum. It returns ErrNotEnvelope for values without the
// magic and ErrTooNew (with the declared Container set) for future container
// layouts; any other error means the value is corrupt. Section payloads
// alias data.
func Parse(data []byte) (*Envelope, error) {
	if !Is(data) {
		return nil, ErrNotEnvelope
	}
	pos := len(Magic)
	if pos >= len(data) {
		return nil, errors.New("envelope: truncated before container version")
	}
	e := &Envelope{Container: data[pos]}
	pos++
	if e.Container > ContainerVersion {
		return e, fmt.Errorf("%w (container %d, supported %d)", ErrTooNew, e.Container, ContainerVersion)
	}
	uvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("envelope: bad %s at offset %d", what, pos)
		}
		pos += n
		return v, nil
	}
	count, err := uvarint("section count")
	if err != nil {
		return nil, err
	}
	if count > maxSections {
		return nil, fmt.Errorf("envelope: implausible section count %d (max %d)", count, maxSections)
	}
	var total uint64
	e.Sections = make([]Section, 0, count)
	lengths := make([]int, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := uvarint("name length")
		if err != nil {
			return nil, err
		}
		if nameLen > maxNameLen {
			return nil, fmt.Errorf("envelope: section name of %d bytes (max %d)", nameLen, maxNameLen)
		}
		if nameLen > uint64(len(data)-pos) {
			return nil, fmt.Errorf("envelope: truncated section name at offset %d", pos)
		}
		name := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		version, err := uvarint("section version")
		if err != nil {
			return nil, err
		}
		if version > 1<<31 {
			return nil, fmt.Errorf("envelope: implausible section version %d", version)
		}
		length, err := uvarint("payload length")
		if err != nil {
			return nil, err
		}
		if length > uint64(len(data)) {
			return nil, fmt.Errorf("envelope: section %q declares %d payload bytes, input has %d", name, length, len(data))
		}
		total += length
		if total > uint64(len(data)) {
			return nil, fmt.Errorf("envelope: section table declares %d payload bytes, input has %d", total, len(data))
		}
		e.Sections = append(e.Sections, Section{Name: name, Version: uint32(version)})
		lengths = append(lengths, int(length))
	}
	if pos+4 > len(data) {
		return nil, errors.New("envelope: truncated before checksum")
	}
	sum := binary.LittleEndian.Uint32(data[pos:])
	pos += 4
	if uint64(len(data)-pos) != total {
		return nil, fmt.Errorf("envelope: %d payload bytes follow the table, section lengths sum to %d", len(data)-pos, total)
	}
	if crc32.ChecksumIEEE(data[pos:]) != sum {
		return nil, errors.New("envelope: payload checksum mismatch")
	}
	for i := range e.Sections {
		n := lengths[i]
		e.Sections[i].Payload = data[pos : pos+n : pos+n]
		pos += n
	}
	return e, nil
}

// DeclaredVersion summarizes the version an annotation value declares: 0 for
// grandfathered v0 streams, the highest section version for a parseable
// envelope, and the container version for an envelope from the future. The
// boolean reports whether the value is enveloped at all.
func DeclaredVersion(data []byte) (uint32, bool) {
	e, err := Parse(data)
	switch {
	case errors.Is(err, ErrNotEnvelope):
		return 0, false
	case errors.Is(err, ErrTooNew):
		return uint32(e.Container), true
	case err != nil:
		return 0, true
	}
	var max uint32
	for _, s := range e.Sections {
		if s.Version > max {
			max = s.Version
		}
	}
	return max, true
}
