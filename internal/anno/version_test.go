package anno

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/anno/envelope"
	"repro/internal/cil"
)

func regInfo() *RegAllocInfo {
	return &RegAllocInfo{
		NumSlots: 3,
		Intervals: []SlotInterval{
			{Slot: 1, Start: 0, End: 20, Weight: 100},
			{Slot: 0, Start: 0, End: 5, Weight: 7},
		},
		Classes: []SpillClass{SpillClassInt, SpillClassFloat, SpillClassInt},
	}
}

func TestV1RegAllocRoundTripKeepsClasses(t *testing.T) {
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	if err := AttachRegAllocInfoV(m, regInfo(), V1); err != nil {
		t.Fatal(err)
	}
	got, out, present := ReadRegAllocInfo(m, 0)
	if !present || out.Fallback {
		t.Fatalf("negotiation failed: %+v", out)
	}
	if out.Version != V1 || !out.Enveloped {
		t.Errorf("outcome = %+v, want v1 enveloped", out)
	}
	if !reflect.DeepEqual(got, regInfo()) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestV0RegAllocDropsClasses(t *testing.T) {
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	if err := AttachRegAllocInfoV(m, regInfo(), V0); err != nil {
		t.Fatal(err)
	}
	got, out, present := ReadRegAllocInfo(m, 0)
	if !present || out.Fallback {
		t.Fatalf("negotiation failed: %+v", out)
	}
	if out.Version != V0 || out.Enveloped {
		t.Errorf("outcome = %+v, want bare v0", out)
	}
	if got.Classes != nil {
		t.Errorf("v0 stream carried classes: %v", got.Classes)
	}
	want := regInfo()
	want.Classes = nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestV1VectorAndHWReqRoundTrip(t *testing.T) {
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	vi := &VectorInfo{Loops: []VectorLoop{{LoopID: 2, Elem: cil.F32, Lanes: 4, Pattern: PatternReduceAdd, NoAliasProven: true}}}
	hw := &HWReq{UsesVector: true, VectorKinds: []cil.Kind{cil.F32}, EstimatedWork: 99}
	if err := AttachVectorInfoV(m, vi, V1); err != nil {
		t.Fatal(err)
	}
	if err := AttachHWReqV(m, hw, V1); err != nil {
		t.Fatal(err)
	}
	if got := VectorInfoOf(m); !reflect.DeepEqual(got, vi) {
		t.Errorf("vector round trip mismatch: %+v", got)
	}
	if got := HWReqOf(m); !reflect.DeepEqual(got, hw) {
		t.Errorf("hwreq round trip mismatch: %+v", got)
	}
}

func TestWriterRejectsUnknownVersion(t *testing.T) {
	if _, err := EncodeRegAllocInfoV(regInfo(), CurrentVersion+1); err == nil {
		t.Error("future writer version accepted")
	}
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	if err := AttachVectorInfoV(m, &VectorInfo{}, 7); err == nil {
		t.Error("AttachVectorInfoV accepted version 7")
	}
}

// futureMethod returns a method whose regalloc annotation declares schema
// version 99 — bytes from a future offline compiler.
func futureMethod() *cil.Method {
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	m.SetAnnotation(KeyRegAlloc, envelope.Encode(&envelope.Envelope{Sections: []envelope.Section{
		{Name: secRegAlloc, Version: 99, Payload: EncodeRegAllocInfo(regInfo())},
	}}))
	return m
}

func TestFutureVersionFallsBack(t *testing.T) {
	m := futureMethod()
	got, out, present := ReadRegAllocInfo(m, 0)
	if !present {
		t.Fatal("annotation not seen")
	}
	if got != nil || !out.Fallback {
		t.Fatalf("future section was consumed: info=%+v outcome=%+v", got, out)
	}
	if out.Version != 99 || !strings.Contains(out.Reason, "newer than supported") {
		t.Errorf("outcome = %+v", out)
	}
	// The advisory accessor treats it as absent.
	if RegAllocInfoOf(m) != nil {
		t.Error("RegAllocInfoOf returned a future annotation")
	}
}

func TestFutureContainerFallsBack(t *testing.T) {
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	m.SetAnnotation(KeyRegAlloc, envelope.Encode(&envelope.Envelope{Container: envelope.ContainerVersion + 1}))
	got, out, _ := ReadRegAllocInfo(m, 0)
	if got != nil || !out.Fallback || !strings.Contains(out.Reason, "container") {
		t.Errorf("future container not handled: info=%+v outcome=%+v", got, out)
	}
}

func TestMinVersionRejectsStaleStreams(t *testing.T) {
	legacy := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	AttachRegAllocInfo(legacy, regInfo())
	if got, out, _ := ReadRegAllocInfo(legacy, V1); got != nil || !out.Fallback {
		t.Errorf("v0 stream survived min version 1: info=%+v outcome=%+v", got, out)
	}
	v1 := cil.NewMethod("g", nil, cil.Scalar(cil.Void))
	if err := AttachRegAllocInfoV(v1, regInfo(), V1); err != nil {
		t.Fatal(err)
	}
	if got, out, _ := ReadRegAllocInfo(v1, V1); got == nil || out.Fallback {
		t.Errorf("v1 stream rejected by min version 1: %+v", out)
	}
}

func TestMalformedSpillClassesOnlyLoseMetadata(t *testing.T) {
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	m.SetAnnotation(KeyRegAlloc, envelope.Encode(&envelope.Envelope{Sections: []envelope.Section{
		{Name: secRegAlloc, Version: V1, Payload: EncodeRegAllocInfo(regInfo())},
		{Name: secSpillClass, Version: V1, Payload: []byte{0xFF, 0xFF}}, // corrupt
	}}))
	got, out, _ := ReadRegAllocInfo(m, 0)
	if got == nil || out.Fallback {
		t.Fatalf("base intervals lost to a bad aux section: %+v", out)
	}
	if got.Classes != nil {
		t.Errorf("corrupt spill classes decoded: %v", got.Classes)
	}
}

func TestNegotiateModuleCountsFallbacks(t *testing.T) {
	mod := cil.NewModule("m")
	good := cil.NewMethod("good", nil, cil.Scalar(cil.Void))
	if err := AttachRegAllocInfoV(good, regInfo(), V1); err != nil {
		t.Fatal(err)
	}
	if err := mod.AddMethod(good); err != nil {
		t.Fatal(err)
	}
	if err := mod.AddMethod(futureMethod()); err != nil {
		t.Fatal(err)
	}
	outcomes, fallbacks := NegotiateModule(mod, 0)
	if fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", fallbacks)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %+v, want 2 entries", outcomes)
	}
	if outcomes[0].Method != "good" || outcomes[0].Fallback {
		t.Errorf("good outcome: %+v", outcomes[0])
	}
	if outcomes[1].Method != "f" || !outcomes[1].Fallback {
		t.Errorf("future outcome: %+v", outcomes[1])
	}
}

func TestInspectModule(t *testing.T) {
	mod := cil.NewModule("m")
	mod.SetAnnotation("custom", []byte{1, 2, 3})
	legacy := cil.NewMethod("legacy", nil, cil.Scalar(cil.Void))
	AttachRegAllocInfo(legacy, regInfo())
	if err := mod.AddMethod(legacy); err != nil {
		t.Fatal(err)
	}
	if err := mod.AddMethod(futureMethod()); err != nil {
		t.Fatal(err)
	}
	infos := InspectModule(mod)
	if len(infos) != 3 {
		t.Fatalf("infos = %+v, want 3 entries", infos)
	}
	if infos[0].Key != "custom" || infos[0].Method != "" || !infos[0].Supported {
		t.Errorf("module-level info: %+v", infos[0])
	}
	if infos[1].Method != "legacy" || infos[1].Version != 0 || infos[1].Enveloped || !infos[1].Supported {
		t.Errorf("legacy info: %+v", infos[1])
	}
	fut := infos[2]
	if fut.Method != "f" || fut.Version != 99 || !fut.Enveloped || fut.Supported || fut.Reason == "" {
		t.Errorf("future info: %+v", fut)
	}
	if len(fut.Sections) != 1 || fut.Sections[0].Name != secRegAlloc || fut.Sections[0].Version != 99 {
		t.Errorf("future section table: %+v", fut.Sections)
	}
}

func TestCILAnnotationVersions(t *testing.T) {
	m := futureMethod()
	AttachHWReq(m, &HWReq{})
	vers := m.AnnotationVersions()
	if vers[KeyRegAlloc] != 99 || vers[KeyHWReq] != 0 {
		t.Errorf("AnnotationVersions = %v", vers)
	}
}
