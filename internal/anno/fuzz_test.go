package anno

import (
	"testing"

	"repro/internal/anno/envelope"
	"repro/internal/cil"
)

// FuzzEnvelope drives arbitrary bytes through the whole annotation read
// path: the container parser and every negotiated reader. The invariants
// are the deployment-side survival rules — truncated section tables, bad
// checksums and absurd declared lengths must come back as errors or
// fallback outcomes, never as panics or huge allocations — and that
// anything the writers produce round-trips.
//
// Run locally with:
//
//	go test -fuzz=FuzzEnvelope -fuzztime=30s ./internal/anno/
//
// CI (the compat job) executes the seed corpus on every run.
func FuzzEnvelope(f *testing.F) {
	// Seeds: every writer output plus targeted corruptions.
	ra := &RegAllocInfo{
		NumSlots:  3,
		Intervals: []SlotInterval{{Slot: 0, Start: 0, End: 9, Weight: 42}},
		Classes:   []SpillClass{SpillClassInt, SpillClassFloat, SpillClassVec},
	}
	vi := &VectorInfo{Loops: []VectorLoop{{LoopID: 0, Elem: cil.U8, Lanes: 16, Pattern: PatternReduceMax}}}
	hw := &HWReq{UsesVector: true, VectorKinds: []cil.Kind{cil.U8}, EstimatedWork: 7}
	for _, version := range []uint32{V0, V1} {
		for _, enc := range [][]byte{
			mustEncode(f, func() ([]byte, error) { return EncodeRegAllocInfoV(ra, version) }),
			mustEncode(f, func() ([]byte, error) { return EncodeVectorInfoV(vi, version) }),
			mustEncode(f, func() ([]byte, error) { return EncodeHWReqV(hw, version) }),
		} {
			f.Add(enc)
			if len(enc) > 2 {
				f.Add(enc[:len(enc)/2]) // truncation
				flipped := append([]byte(nil), enc...)
				flipped[len(flipped)-1] ^= 0xFF // checksum / payload corruption
				f.Add(flipped)
			}
		}
	}
	f.Add([]byte(envelope.Magic))
	f.Add([]byte("SVAE\x01\x01\x01x\x63\xff\xff\xff\xff\xff\x07")) // absurd length
	f.Add(envelope.Encode(&envelope.Envelope{Container: 200}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		// The container parser must confine itself to errors.
		if env, err := envelope.Parse(data); err == nil {
			// A parse-clean envelope re-encodes to something parseable.
			if _, err := envelope.Parse(envelope.Encode(env)); err != nil {
				t.Fatalf("re-encoded envelope does not parse: %v", err)
			}
		}
		envelope.DeclaredVersion(data)

		// The negotiated readers must never fail hard, whatever the bytes:
		// worst case is a fallback outcome (annotations are advisory).
		m := cil.NewMethod("fuzz", nil, cil.Scalar(cil.Void))
		m.SetAnnotation(KeyRegAlloc, data)
		m.SetAnnotation(KeyVector, data)
		m.SetAnnotation(KeyHWReq, data)
		if info, out, present := ReadRegAllocInfo(m, 0); present && !out.Fallback && info == nil {
			t.Fatal("regalloc: no fallback but nil info")
		}
		if info, out, present := ReadVectorInfo(m, 0); present && !out.Fallback && info == nil {
			t.Fatal("vector: no fallback but nil info")
		}
		if info, out, present := ReadHWReq(m, 0); present && !out.Fallback && info == nil {
			t.Fatal("hwreq: no fallback but nil info")
		}

		// Inspection over a module carrying the bytes must also survive.
		mod := cil.NewModule("fuzz")
		if err := mod.AddMethod(m); err != nil {
			t.Fatal(err)
		}
		InspectModule(mod)
		NegotiateModule(mod, 1)
	})
}

func mustEncode(f *testing.F, fn func() ([]byte, error)) []byte {
	f.Helper()
	data, err := fn()
	if err != nil {
		f.Fatal(err)
	}
	return data
}
