package core

import (
	"strings"
	"testing"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/vm"
)

const testSource = `
i32 weight(i32 n) {
    i32 acc = 0;
    for (i32 i = 0; i < n; i++) {
        acc = acc + i * 3;
    }
    return acc;
}
`

func TestCompileOfflineProducesAnnotatedModule(t *testing.T) {
	res, err := CompileOffline(testSource, OfflineOptions{ModuleName: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Module.Name != "m" || len(res.Encoded) == 0 {
		t.Fatal("missing module or encoding")
	}
	if res.AnnotationBytes == 0 || res.OfflineSteps == 0 {
		t.Error("expected annotations and offline step accounting")
	}
	m := res.Module.Method("weight")
	if anno.RegAllocInfoOf(m) == nil {
		t.Error("register allocation annotation missing")
	}
	if anno.HWReqOf(m) == nil {
		t.Error("hardware requirement annotation missing")
	}
	// The interpreter view of the offline result works.
	v, err := res.Interpret("weight", vm.IntValue(cil.I32, 10))
	if err != nil || v.Int() != 135 {
		t.Errorf("Interpret = %d (%v), want 135", v.Int(), err)
	}
}

func TestCompileOfflineOptions(t *testing.T) {
	plain, err := CompileOffline(kernels.MustGet("vecadd_fp").Source, OfflineOptions{DisableVectorize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range plain.Module.Method("vecadd").Code {
		if in.Op.IsVector() {
			t.Fatal("DisableVectorize left vector builtins in the code")
		}
	}
	stripped, err := CompileOffline(testSource, OfflineOptions{DisableAnnotations: true})
	if err != nil {
		t.Fatal(err)
	}
	if stripped.AnnotationBytes != 0 {
		t.Error("DisableAnnotations left annotations behind")
	}
	if _, err := CompileOffline("i32 broken(", OfflineOptions{}); err == nil {
		t.Error("syntax errors must propagate")
	}
	if _, err := CompileOffline("i32 f() { return x; }", OfflineOptions{}); err == nil {
		t.Error("type errors must propagate")
	}
	if _, _, err := CompileKernel("nope", OfflineOptions{}); err == nil {
		t.Error("unknown kernels must be rejected")
	}
}

func TestDeployAndRun(t *testing.T) {
	res, err := CompileOffline(testSource, OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range target.Table1() {
		dep, err := Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
		if err != nil {
			t.Fatal(err)
		}
		out, err := dep.Run("weight", sim.IntArg(100))
		if err != nil {
			t.Fatal(err)
		}
		if out.I != 14850 {
			t.Errorf("weight(100) on %s = %d, want 14850", tgt.Name, out.I)
		}
		if dep.Cycles() == 0 || dep.JITSteps == 0 || dep.NativeCodeBytes() == 0 {
			t.Error("deployment statistics missing")
		}
		dep.ResetCycles()
		if dep.Cycles() != 0 {
			t.Error("ResetCycles did not clear the counter")
		}
	}
	if _, err := Deploy([]byte("junk"), target.MustLookup(target.PPC), jit.Options{}); err == nil {
		t.Error("Deploy accepted junk bytes")
	}
}

func TestRunKernelMatchesReference(t *testing.T) {
	res, k, err := CompileKernel("sum_u16", OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := kernels.NewInputs("sum_u16", 333, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := kernels.Reference("sum_u16", in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(res.Encoded, target.MustLookup(target.X86SSE), jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		t.Fatal(err)
	}
	run, err := dep.RunKernel(k, in)
	if err != nil {
		t.Fatal(err)
	}
	if float64(run.Result.I) != want {
		t.Errorf("sum_u16 = %d, reference %v", run.Result.I, want)
	}
	if run.Cycles <= 0 {
		t.Error("cycle accounting missing")
	}
	// Map kernels return their outputs.
	resMap, km, err := CompileKernel("dscal_fp", OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inMap, _ := kernels.NewInputs("dscal_fp", 64, 5)
	refIn := inMap.Clone()
	if _, err := kernels.Reference("dscal_fp", refIn); err != nil {
		t.Fatal(err)
	}
	depMap, err := Deploy(resMap.Encoded, target.MustLookup(target.Sparc), jit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runMap, err := depMap.RunKernel(km, inMap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if runMap.Outputs[0].Float(i) != refIn.Arrays[0].Float(i) {
			t.Fatalf("dscal output %d mismatch", i)
		}
	}
}

func TestSpillSummaryAndWeight(t *testing.T) {
	src := strings.Replace(testSource, "weight", "w2", 1)
	res, err := CompileOffline(testSource+src, OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(res.Encoded, target.MustLookup(target.MCU).WithIntRegs(2), jit.Options{RegAlloc: jit.RegAllocOnline})
	if err != nil {
		t.Fatal(err)
	}
	slots, loads, stores := dep.SpillSummary()
	if slots == 0 || loads == 0 || stores == 0 || dep.SpillWeight() == 0 {
		t.Errorf("expected spills on a 2-register target: slots=%d loads=%d stores=%d weight=%d",
			slots, loads, stores, dep.SpillWeight())
	}
}
