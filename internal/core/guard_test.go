package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/sim"
	"repro/internal/target"
)

// deployGuardTest compiles and deploys the shared test module for the
// firewall tests.
func deployGuardTest(t *testing.T) *Deployment {
	t.Helper()
	res, err := CompileOffline(testSource, OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(res.Encoded, target.MustLookup(target.X86SSE), jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestPanicFirewallQuarantinesAndRebuilds(t *testing.T) {
	dep := deployGuardTest(t)
	want, err := dep.Run("weight", sim.IntArg(100))
	if err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Arm("sim.panic:error"); err != nil {
		t.Fatal(err)
	}
	_, err = dep.Run("weight", sim.IntArg(100))
	faultinject.Disarm()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("run under injected panic = %v, want *PanicError", err)
	}
	if !dep.Quarantined() {
		t.Fatal("machine not quarantined after a recovered panic")
	}
	if gs := dep.GuardStats(); gs.Quarantines != 1 || gs.Rebuilds != 0 {
		t.Fatalf("GuardStats after panic = %+v, want 1 quarantine, 0 rebuilds", gs)
	}

	// The next run transparently gets a rebuilt machine and the right answer.
	got, err := dep.Run("weight", sim.IntArg(100))
	if err != nil {
		t.Fatalf("run after quarantine: %v", err)
	}
	if got.I != want.I {
		t.Fatalf("rebuilt machine computed %d, want %d", got.I, want.I)
	}
	if dep.Quarantined() {
		t.Error("machine still quarantined after rebuild")
	}
	if gs := dep.GuardStats(); gs.Quarantines != 1 || gs.Rebuilds != 1 {
		t.Fatalf("GuardStats after rebuild = %+v, want 1 quarantine, 1 rebuild", gs)
	}
}

func TestRebuildPreservesGovernorAndTiering(t *testing.T) {
	dep := deployGuardTest(t)
	dep.SetMemLimit(1 << 20)
	dep.EnableTiering(TierOptions{})
	if !dep.Machine.TieringEnabled() {
		t.Fatal("tiering not enabled before the test even started")
	}

	if err := faultinject.Arm("sim.panic:error"); err != nil {
		t.Fatal(err)
	}
	_, err := dep.Run("weight", sim.IntArg(10))
	faultinject.Disarm()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("run under injected panic = %v, want *PanicError", err)
	}

	if _, err := dep.Run("weight", sim.IntArg(10)); err != nil {
		t.Fatalf("run after quarantine: %v", err)
	}
	if got := dep.MemLimit(); got != 1<<20 {
		t.Errorf("rebuild lost the memory limit: %d", got)
	}
	if dep.Machine.MemLimit != 1<<20 {
		t.Errorf("rebuilt machine not governed: MemLimit = %d", dep.Machine.MemLimit)
	}
	if !dep.Machine.TieringEnabled() {
		t.Error("rebuild lost tiering")
	}
}

func TestRunDeadlineBecomesResourceError(t *testing.T) {
	dep := deployGuardTest(t)
	dep.RunDeadline = time.Nanosecond // expires before the first stride check
	_, err := dep.RunContext(context.Background(), "weight", sim.IntArg(50_000_000))
	var re *sim.ResourceError
	if !errors.As(err, &re) || re.Kind != sim.ResourceDeadline {
		t.Fatalf("run past its deadline = %v, want ResourceError{deadline}", err)
	}
	if dep.Quarantined() {
		t.Error("a deadline breach must not quarantine the machine")
	}

	// A cancellation the caller's own context carries still reports as a
	// cancellation, not as a governor breach.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dep.RunDeadline = time.Hour
	_, err = dep.RunContext(ctx, "weight", sim.IntArg(50_000_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("caller-cancelled run = %v, want context.Canceled", err)
	}
	if errors.As(err, &re) {
		t.Fatalf("caller cancellation misreported as ResourceError: %v", err)
	}
}
