// Package core assembles the paper's proposal into one API: processor
// virtualization (compile once to portable bytecode, deploy the byte stream)
// combined with split compilation (expensive offline analyses whose results
// travel as annotations, cheap target-specific online steps).
//
// The package exposes the two halves explicitly:
//
//   - CompileOffline runs the developer-side toolchain: MiniC front end,
//     constant folding, auto-vectorization, lowering to bytecode, split
//     register allocation analysis, annotation attachment, and binary
//     encoding. Its output is the deployable byte stream.
//
//   - Deploy runs the device-side toolchain for one simulated target: decode,
//     verify, JIT-compile (mapping or scalarizing the portable vector
//     builtins, consuming the register allocation annotation) and instantiate
//     a cycle-approximate machine ready to Run entry points.
//
// Everything the experiments measure (cycles, spills, compile effort,
// annotation bytes, code sizes) is reachable from these two results.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/codegen"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/minic"
	"repro/internal/nisa"
	"repro/internal/opt"
	"repro/internal/regalloc"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/vm"
)

// OfflineOptions configures the developer-side (offline) compiler.
type OfflineOptions struct {
	// ModuleName names the produced module; defaults to "app".
	ModuleName string
	// DisableVectorize skips the auto-vectorizer (produces the scalar
	// bytecode baseline of Table 1).
	DisableVectorize bool
	// DisableRegAllocAnnotations skips the offline register allocation
	// analysis.
	DisableRegAllocAnnotations bool
	// DisableAnnotations strips every annotation from the produced module
	// while keeping the code identical (ablation for Figure 1).
	DisableAnnotations bool
	// DisableConstFold skips constant folding.
	DisableConstFold bool
	// AnnotationVersion selects the on-wire schema of the produced
	// annotations: anno.V0 (the zero value, matching the historical
	// behavior) emits the legacy bare streams, anno.V1 the versioned
	// envelope with the spill-class metadata.
	AnnotationVersion uint32
}

// OfflineResult is the outcome of the offline compilation step.
type OfflineResult struct {
	Module  *cil.Module
	Encoded []byte

	VectorizeResults []opt.VectorizeResult
	RegAllocAnalyses []*regalloc.Analysis

	// FoldedConstants counts constant-folding rewrites.
	FoldedConstants int
	// AnnotationBytes is the total size of all annotations in the module.
	AnnotationBytes int
	// OfflineSteps approximates the work spent in offline analyses
	// (vectorization legality tests, liveness, weights); it feeds the
	// Figure 1 comparison of offline versus online effort.
	OfflineSteps int64
}

// CompileOffline compiles MiniC source text into an encoded, annotated,
// deployable module.
func CompileOffline(source string, opts OfflineOptions) (*OfflineResult, error) {
	name := opts.ModuleName
	if name == "" {
		name = "app"
	}
	prog, err := minic.Parse(source)
	if err != nil {
		return nil, err
	}
	chk, err := minic.Check(prog)
	if err != nil {
		return nil, err
	}
	res := &OfflineResult{}
	if !opts.DisableConstFold {
		res.FoldedConstants = opt.FoldConstants(chk)
	}
	if !opts.DisableVectorize {
		res.VectorizeResults = opt.Vectorize(chk)
		for _, r := range res.VectorizeResults {
			res.OfflineSteps += int64(20 * len(r.Plans))    // dependence + shape analysis per loop
			res.OfflineSteps += int64(5 * (r.Rejected + 1)) // rejected candidates still cost analysis
		}
	}
	mod, err := codegen.Compile(chk, name, codegen.Options{
		DisableVectorPlans: opts.DisableVectorize,
		DisableAnnotations: opts.DisableAnnotations,
		AnnotationVersion:  opts.AnnotationVersion,
	})
	if err != nil {
		return nil, err
	}
	if !opts.DisableRegAllocAnnotations && !opts.DisableAnnotations {
		res.RegAllocAnalyses, err = regalloc.AnnotateModuleV(mod, opts.AnnotationVersion)
		if err != nil {
			return nil, err
		}
		for _, a := range res.RegAllocAnalyses {
			res.OfflineSteps += a.Steps
		}
	}
	for _, m := range mod.Methods {
		res.OfflineSteps += int64(len(m.Code))
	}
	res.Module = mod
	res.Encoded = cil.Encode(mod)
	res.AnnotationBytes = anno.TotalAnnotationBytes(mod)
	return res, nil
}

// CompileKernel compiles one named benchmark kernel (see internal/kernels).
func CompileKernel(name string, opts OfflineOptions) (*OfflineResult, kernels.Kernel, error) {
	k, err := kernels.Get(name)
	if err != nil {
		return nil, kernels.Kernel{}, err
	}
	if opts.ModuleName == "" {
		opts.ModuleName = name
	}
	res, err := CompileOffline(k.Source, opts)
	return res, k, err
}

// Image is the immutable, target-specific half of a deployment: the decoded
// and verified module together with the native program the JIT produced for
// one target. An Image holds no execution state, so it can be built once and
// instantiated into any number of machines — it is the unit the public
// engine's code cache stores and shares between concurrent deployments.
type Image struct {
	Target  *target.Desc
	Module  *cil.Module
	Program *nisa.Program
	// JITOpts is the online-compiler configuration that produced the
	// program (kept so tiering can re-run the same pipeline for its
	// profile-guided validation).
	JITOpts jit.Options

	// JITSteps approximates the work the online compiler performed; with
	// split compilation this stays small even when the generated code is
	// aggressive.
	JITSteps int64
	// CompileNanos is the wall-clock time the JIT spent producing this
	// image (the online compile cost a deployment pays on a cache miss).
	CompileNanos int64

	// AnnotationOutcomes is the per-method result of the load-time
	// annotation negotiation: which sections were consumed at which schema
	// version, and which fell back to online-only compilation.
	AnnotationOutcomes []anno.MethodOutcome
	// AnnotationFallbacks counts the sections that fell back (never an
	// error: annotations are advisory).
	AnnotationFallbacks int

	// lazy, when non-nil, marks the image as compile-on-first-call: Program
	// starts empty and methods move stub → compiling → ready through
	// ResolveMethod (see lazy.go). Nil — the default — is the eager image
	// with every method compiled up front.
	lazy *lazyState
}

// BuildImage decodes, verifies and JIT-compiles an encoded module for a
// target. This is everything that happens on the device side of the
// distribution boundary, short of instantiating a machine. Modules that
// import other modules are rejected here: their cross-module calls can only
// resolve through a link set (NewLinked), and failing at build time is what
// keeps a missing dependency from surfacing as a first-call panic.
func BuildImage(encoded []byte, tgt *target.Desc, jopts jit.Options) (*Image, error) {
	mod, err := cil.Decode(encoded)
	if err != nil {
		return nil, err
	}
	if err := requireNoImports(mod); err != nil {
		return nil, err
	}
	return ImageFromModule(mod, tgt, jopts)
}

// requireNoImports rejects standalone deployment of a module whose calls
// reach into other modules.
func requireNoImports(mod *cil.Module) error {
	if len(mod.Imports) == 0 {
		return nil
	}
	return fmt.Errorf("core: module %q imports %d other module(s); deploy it as a link set so cross-module calls resolve at link time", mod.Name, len(mod.Imports))
}

// ImageFromModule verifies and JIT-compiles an already-decoded module. The
// image keeps a reference to the module; callers that mutate the module
// afterwards must pass a clone.
func ImageFromModule(mod *cil.Module, tgt *target.Desc, jopts jit.Options) (*Image, error) {
	if err := cil.Verify(mod); err != nil {
		return nil, err
	}
	return ImageFromVerifiedModule(mod, tgt, jopts)
}

// ImageFromVerifiedModule JIT-compiles a module that has already passed
// verification. Verification writes per-method results (MaxStack) into the
// module, so callers building images for several targets concurrently must
// verify once up front and use this entry point: the JIT itself only reads
// the module.
func ImageFromVerifiedModule(mod *cil.Module, tgt *target.Desc, jopts jit.Options) (*Image, error) {
	start := time.Now()
	prog, rep, err := jit.New(tgt, jopts).CompileModuleReport(mod)
	if err != nil {
		return nil, err
	}
	img := &Image{
		Target:              tgt,
		Module:              mod,
		Program:             prog,
		JITOpts:             jopts,
		CompileNanos:        time.Since(start).Nanoseconds(),
		AnnotationOutcomes:  rep.Outcomes,
		AnnotationFallbacks: rep.Fallbacks,
	}
	for _, f := range prog.Funcs {
		img.JITSteps += f.Stats.CompileSteps
	}
	return img, nil
}

// Instantiate creates a fresh machine executing the image. The machine owns
// its memory and statistics; eager images share their immutable program
// between machines, so concurrent instantiations are safe. Lazy images give
// every machine its own program value — the machine patches it as methods
// resolve — pre-seeded with whatever methods earlier deployments already
// compiled, all resolving through the image's shared singleflight table.
func (img *Image) Instantiate() *Deployment {
	prog := img.Program
	var machine *sim.Machine
	if img.lazy != nil {
		prog = nisa.NewProgram(img.Target.Name)
		img.lazy.snapshot(prog)
		machine = sim.New(img.Target, prog)
		machine.SetResolver(lazyResolverFor(img))
	} else {
		machine = sim.New(img.Target, prog)
	}
	d := &Deployment{
		Target:              img.Target,
		Module:              img.Module,
		Program:             prog,
		JITOpts:             img.JITOpts,
		Machine:             machine,
		Image:               img,
		JITSteps:            img.JITSteps,
		CompileNanos:        img.CompileNanos,
		AnnotationOutcomes:  img.AnnotationOutcomes,
		AnnotationFallbacks: img.AnnotationFallbacks,
	}
	if envTier() {
		d.EnableTiering(TierOptions{})
	}
	if ml := envMemLimit(); ml > 0 {
		d.SetMemLimit(ml)
	}
	return d
}

// Deployment is a module deployed on one simulated target: the decoded and
// verified module, the JIT-compiled native image and the machine executing
// it.
type Deployment struct {
	Target  *target.Desc
	Module  *cil.Module
	Program *nisa.Program
	Machine *sim.Machine
	// Image is the image this deployment was instantiated from; for lazy
	// images it carries the live per-method compilation state
	// (Image.CompileState, Image.MethodCounts).
	Image *Image
	// JITOpts is the online-compiler configuration behind the deployed
	// program (see Image.JITOpts).
	JITOpts jit.Options

	// JITSteps approximates the work the online compiler performed; with
	// split compilation this stays small even when the generated code is
	// aggressive.
	JITSteps int64
	// CompileNanos is the wall-clock JIT time behind this deployment's
	// image (paid once per image; cache-hit deployments inherit the
	// original compilation's cost figure).
	CompileNanos int64

	// AnnotationOutcomes and AnnotationFallbacks carry the image's
	// load-time annotation negotiation result (see Image).
	AnnotationOutcomes  []anno.MethodOutcome
	AnnotationFallbacks int

	// RunDeadline, when positive, bounds the wall-clock time of each run:
	// the run context is derived with this timeout and the dispatch loop
	// aborts on its cancellation stride, reporting a *sim.ResourceError of
	// kind deadline (a caller-cancelled context still reports cancellation).
	RunDeadline time.Duration

	// linked is set on deployments instantiated from a link set; it lets
	// EnsureCompiled span every unit, not just the root image.
	linked *Linked

	// Panic-firewall state (guard.go): quarantined marks a machine whose
	// last run panicked, guard counts quarantines and rebuilds, and
	// memLimit/tierOpts remember the per-machine configuration a rebuild
	// must re-apply.
	quarantined bool
	guard       GuardStats
	memLimit    int64
	tierOpts    *TierOptions
}

// EnsureCompiled forces a lazy deployment fully compiled, as if every
// method (of every unit, on linked deployments) had already taken its first
// call: each resolution is the usual singleflight JIT, and the resulting
// code is patched into this deployment's program, including the
// hash-qualified alias symbols cross-module call sites use. Afterwards the
// code-derived statistics — NativeCodeBytes, SpillSummary, SpillWeight,
// JITSteps — equal those of an eager deployment of the same module(s).
// Eager deployments are a no-op. Cancelling ctx aborts between methods,
// leaving the usual consistent partial state.
func (d *Deployment) EnsureCompiled(ctx context.Context) error {
	if d.linked != nil {
		if err := d.linked.ensureCompiled(ctx, d.Program); err != nil {
			return err
		}
		var steps int64
		for _, u := range d.linked.Units {
			steps += u.Image.JITSteps + u.Image.LazyJITSteps()
		}
		d.JITSteps = steps
		return nil
	}
	if d.Image == nil || !d.Image.Lazy() {
		return nil
	}
	for _, m := range d.Module.Methods {
		f, err := d.Image.ResolveMethod(ctx, m.Name)
		if err != nil {
			return err
		}
		d.Program.Funcs[m.Name] = f
	}
	d.JITSteps = d.Image.JITSteps + d.Image.LazyJITSteps()
	return nil
}

// Deploy decodes, verifies and JIT-compiles an encoded module for a target,
// then instantiates a machine for it. Callers that deploy the same module
// repeatedly should build an Image once (or use the pkg/splitvm engine,
// which caches images) and instantiate it per deployment. With SPLITVM_LAZY
// set the image is built lazy — methods JIT on first call — which never
// changes results or simulated cycles, only when compile time is paid.
func Deploy(encoded []byte, tgt *target.Desc, jopts jit.Options) (*Deployment, error) {
	mod, err := cil.Decode(encoded)
	if err != nil {
		return nil, err
	}
	if err := requireNoImports(mod); err != nil {
		return nil, err
	}
	if err := cil.Verify(mod); err != nil {
		return nil, err
	}
	var img *Image
	if envLazy() {
		img, err = LazyImageFromVerifiedModule(mod, tgt, jopts)
	} else {
		img, err = ImageFromVerifiedModule(mod, tgt, jopts)
	}
	if err != nil {
		return nil, err
	}
	return img.Instantiate(), nil
}

// Run executes an entry point on the deployment's machine, behind the panic
// firewall (guard.go): a panic escaping dispatch is recovered into a
// *PanicError and the machine is rebuilt from its image on the next run.
func (d *Deployment) Run(entry string, args ...sim.Value) (sim.Value, error) {
	return d.guardedCall(context.Background(), entry, args...)
}

// RunContext executes an entry point like Run, aborting between simulated
// instructions once ctx is cancelled (the error wraps ctx.Err()).
// Uncancelled runs are instruction- and cycle-identical to Run.
func (d *Deployment) RunContext(ctx context.Context, entry string, args ...sim.Value) (sim.Value, error) {
	return d.guardedCall(ctx, entry, args...)
}

// Cycles returns the cycles consumed so far by the deployment's machine.
func (d *Deployment) Cycles() int64 { return d.Machine.Stats.Cycles }

// ResetCycles clears the machine's statistics (keeping its memory image).
func (d *Deployment) ResetCycles() { d.Machine.ResetStats() }

// SpillSummary sums the static spill statistics over all compiled functions.
func (d *Deployment) SpillSummary() (slots, loads, stores int) {
	for _, f := range d.Program.Funcs {
		slots += f.Stats.SpillSlots
		loads += f.Stats.SpillLoads
		stores += f.Stats.SpillStores
	}
	return
}

// SpillWeight sums the estimated dynamic spill accesses (loop-depth weighted
// use counts of spilled variables) over all compiled functions.
func (d *Deployment) SpillWeight() int64 {
	var total int64
	for _, f := range d.Program.Funcs {
		total += f.Stats.SpillWeight
	}
	return total
}

// NativeCodeBytes estimates the native code size of the deployment.
func (d *Deployment) NativeCodeBytes() int {
	return d.Program.CodeBytes(d.Target.BytesPerInstr)
}

// KernelRun is the result of running a kernel once on a deployment.
type KernelRun struct {
	Result sim.Value
	Cycles int64
	// Outputs are the kernel's array arguments copied back out of simulated
	// memory after the run (in the order of kernels.Inputs.Arrays).
	Outputs []*vm.Array
}

// RunKernel marshals kernel inputs into the deployment's memory, runs the
// kernel entry point once and returns the result, the cycles it took and the
// output arrays. The inputs are not modified (they are cloned first).
func (d *Deployment) RunKernel(k kernels.Kernel, in *kernels.Inputs) (*KernelRun, error) {
	// Rebuild a quarantined machine before marshalling: inputs copied into
	// the old machine's memory would be lost to the guardedCall rebuild.
	if d.quarantined {
		d.rebuild()
	}
	work := in.Clone()
	args := make([]sim.Value, len(work.Args))
	addrs := make([]sim.Addr, 0, len(work.Arrays))
	arrIdx := 0
	for i, a := range work.Args {
		switch {
		case a.Kind == cil.Ref:
			addr := d.Machine.CopyInArray(work.Arrays[arrIdx])
			addrs = append(addrs, addr)
			arrIdx++
			args[i] = sim.IntArg(int64(addr))
		case a.Kind.IsFloat():
			args[i] = sim.FloatArg(a.Float())
		default:
			args[i] = sim.IntArg(a.Int())
		}
	}
	before := d.Machine.Stats.Cycles
	res, err := d.guardedCall(context.Background(), k.Entry, args...)
	if err != nil {
		return nil, fmt.Errorf("core: running %s on %s: %w", k.Entry, d.Target.Name, err)
	}
	run := &KernelRun{Result: res, Cycles: d.Machine.Stats.Cycles - before}
	for i, addr := range addrs {
		out := vm.NewArray(work.Arrays[i].Elem, work.Arrays[i].Len())
		if err := d.Machine.CopyOutArray(addr, out); err != nil {
			return nil, err
		}
		run.Outputs = append(run.Outputs, out)
	}
	return run, nil
}

// Interpret runs an entry point of the offline result on the reference
// interpreter (the managed runtime), for functional cross-checking.
func (r *OfflineResult) Interpret(entry string, args ...vm.Value) (vm.Value, error) {
	rt, err := vm.NewRuntime(r.Module.Clone())
	if err != nil {
		return vm.Value{}, err
	}
	return rt.Call(entry, args...)
}
