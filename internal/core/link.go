package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/cil"
	"repro/internal/minic"
	"repro/internal/nisa"
	"repro/internal/sim"
)

// LinkUnit is one module of a link set: its image (eager or lazy) plus the
// content hash of its encoded bytes — the identity its dependents' import
// tables name it by.
type LinkUnit struct {
	Hash  [cil.HashSize]byte
	Image *Image
}

// Linked is a validated set of images whose cross-module calls all resolve
// at link time. NewLinked proves that every import names a unit of the set
// and an existing method with a matching signature, so instantiated
// deployments can never hit an unresolvable callee at run time — a missing
// dependency is a link error, not a first-call panic.
//
// Method names are globally unique across the set (enforced by NewLinked):
// entry points are called by their plain name, and hash-qualified import
// symbols dispatch to the owning unit.
type Linked struct {
	Units []LinkUnit

	byQual map[string]int // hex-qualifier of cil.ImportSym → unit index
	byName map[string]int // plain method name → owning unit index
}

// NewLinked validates a link set. All units must target the same processor
// with the same JIT options (they share one machine), every import hash must
// name a unit of the set whose module has the imported methods with matching
// signatures, and method names must be unique across the set.
func NewLinked(units []LinkUnit) (*Linked, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("core: link set is empty")
	}
	l := &Linked{
		Units:  units,
		byQual: make(map[string]int, len(units)),
		byName: make(map[string]int),
	}
	first := units[0].Image
	byHash := make(map[[cil.HashSize]byte]int, len(units))
	for i, u := range units {
		img := u.Image
		// Compare descriptors by value: cached images each hold a private
		// copy of the descriptor they were keyed under, so pointer identity
		// would spuriously reject identical targets.
		if *img.Target != *first.Target {
			return nil, fmt.Errorf("core: link set mixes targets %q and %q", first.Target.Name, img.Target.Name)
		}
		if img.JITOpts != first.JITOpts {
			return nil, fmt.Errorf("core: link set mixes JIT options across modules %q and %q", first.Module.Name, img.Module.Name)
		}
		if _, dup := byHash[u.Hash]; dup {
			return nil, fmt.Errorf("core: link set contains module %q twice (hash %x)", img.Module.Name, u.Hash[:8])
		}
		byHash[u.Hash] = i
		qual := cil.HashQualifier(u.Hash)
		if prev, dup := l.byQual[qual]; dup {
			return nil, fmt.Errorf("core: modules %q and %q collide on hash qualifier %s",
				units[prev].Image.Module.Name, img.Module.Name, qual)
		}
		l.byQual[qual] = i
		for _, m := range img.Module.Methods {
			if prev, dup := l.byName[m.Name]; dup {
				return nil, fmt.Errorf("core: method %q defined by both %q and %q; method names must be unique across a link set",
					m.Name, units[prev].Image.Module.Name, img.Module.Name)
			}
			l.byName[m.Name] = i
		}
	}
	// Every import of every unit must resolve inside the set, method by
	// method, signature by signature.
	for _, u := range units {
		mod := u.Image.Module
		for i := range mod.Imports {
			im := &mod.Imports[i]
			j, ok := byHash[im.Hash]
			if !ok {
				return nil, fmt.Errorf("core: module %q imports %q (hash %x) which is not in the link set",
					mod.Name, im.Module, im.Hash[:8])
			}
			dep := units[j].Image.Module
			for _, want := range im.Methods {
				got := dep.Method(want.Name)
				if got == nil {
					return nil, fmt.Errorf("core: module %q imports method %q from %q, which does not define it",
						mod.Name, want.Name, dep.Name)
				}
				if !sameSignature(got.Params, got.Ret, want.Params, want.Ret) {
					return nil, fmt.Errorf("core: module %q imports %q.%s with a signature that does not match the linked module",
						mod.Name, dep.Name, want.Name)
				}
			}
		}
	}
	return l, nil
}

func sameSignature(params []cil.Type, ret cil.Type, wantParams []cil.Type, wantRet cil.Type) bool {
	if len(params) != len(wantParams) || ret != wantRet {
		return false
	}
	for i := range params {
		if params[i] != wantParams[i] {
			return false
		}
	}
	return true
}

// Lazy reports whether any unit of the set compiles methods on first call.
func (l *Linked) Lazy() bool {
	for _, u := range l.Units {
		if u.Image.Lazy() {
			return true
		}
	}
	return false
}

// unitFor maps a call symbol — a plain method name or a hash-qualified
// import symbol — to the owning unit and the method's plain name.
func (l *Linked) unitFor(sym string) (*Image, string, error) {
	name := sym
	if cil.IsImportSym(sym) {
		var qual string
		name, qual = cil.SplitImportSym(sym)
		if i, ok := l.byQual[qual]; ok {
			return l.Units[i].Image, name, nil
		}
		return nil, "", fmt.Errorf("core: link set has no module with qualifier %q (symbol %q)", qual, sym)
	}
	if i, ok := l.byName[sym]; ok {
		return l.Units[i].Image, name, nil
	}
	return nil, "", fmt.Errorf("core: unknown method %q in link set", sym)
}

// ResolveMethod resolves a call symbol through the link set: the owning
// unit's image compiles the method on first use if it is lazy. Resolution is
// singleflight per (image, method) regardless of how many deployments —
// across the set's symbols — need it.
func (l *Linked) ResolveMethod(ctx context.Context, sym string) (*nisa.Func, error) {
	img, name, err := l.unitFor(sym)
	if err != nil {
		return nil, err
	}
	return img.ResolveMethod(ctx, name)
}

// CompileState reports the per-method state of every unit, keyed by the
// plain (globally unique) method name.
func (l *Linked) CompileState() map[string]MethodCompileState {
	out := make(map[string]MethodCompileState)
	for _, u := range l.Units {
		for name, st := range u.Image.CompileState() {
			out[name] = st
		}
	}
	return out
}

// MethodCounts sums Image.MethodCounts over the set.
func (l *Linked) MethodCounts() (compiled, total int) {
	for _, u := range l.Units {
		c, t := u.Image.MethodCounts()
		compiled += c
		total += t
	}
	return compiled, total
}

// LazyCompileNanos sums the first-call compile time spent so far across the
// set's lazy units (zero for all-eager sets).
func (l *Linked) LazyCompileNanos() int64 {
	var total int64
	for _, u := range l.Units {
		total += u.Image.LazyCompileNanos()
	}
	return total
}

// ensureCompiled resolves every method of every unit and patches prog with
// the results, plain names and import-symbol aliases alike — the bulk
// counterpart of the machine resolver's one-symbol-at-a-time patching.
func (l *Linked) ensureCompiled(ctx context.Context, prog *nisa.Program) error {
	for _, u := range l.Units {
		for _, m := range u.Image.Module.Methods {
			f, err := u.Image.ResolveMethod(ctx, m.Name)
			if err != nil {
				return err
			}
			prog.Funcs[m.Name] = f
		}
	}
	for _, u := range l.Units {
		mod := u.Image.Module
		for i := range mod.Imports {
			im := &mod.Imports[i]
			for _, want := range im.Methods {
				sym := cil.ImportSym(im.Hash, want.Name)
				if f := prog.Funcs[want.Name]; f != nil {
					prog.Funcs[sym] = f
				}
			}
		}
	}
	return nil
}

// Instantiate creates a machine spanning the whole link set: one program
// holding every resolved method under its plain name plus alias entries for
// the hash-qualified symbols cross-module call sites use. Eager sets start
// fully populated; lazy sets start with whatever is ready and resolve the
// rest on first call.
func (l *Linked) Instantiate() *Deployment {
	root := l.Units[0].Image
	prog := nisa.NewProgram(root.Target.Name)
	for _, u := range l.Units {
		if u.Image.lazy != nil {
			u.Image.lazy.snapshot(prog)
		} else {
			for name, f := range u.Image.Program.Funcs {
				prog.Funcs[name] = f
			}
		}
	}
	// Alias every import symbol that already has resolved code; the rest
	// resolve through the machine's resolver.
	for _, u := range l.Units {
		mod := u.Image.Module
		for i := range mod.Imports {
			im := &mod.Imports[i]
			for _, want := range im.Methods {
				sym := cil.ImportSym(im.Hash, want.Name)
				if f := prog.Funcs[want.Name]; f != nil {
					prog.Funcs[sym] = f
				}
			}
		}
	}
	machine := sim.New(root.Target, prog)
	machine.SetResolver(func(ctx context.Context, sym string) (*nisa.Func, error) {
		return l.ResolveMethod(ctx, sym)
	})
	d := &Deployment{
		Target:  root.Target,
		Module:  root.Module,
		Program: prog,
		JITOpts: root.JITOpts,
		Machine: machine,
		Image:   root,
		linked:  l,
	}
	for _, u := range l.Units {
		d.JITSteps += u.Image.JITSteps
		d.CompileNanos += u.Image.CompileNanos
		d.AnnotationOutcomes = append(d.AnnotationOutcomes, u.Image.AnnotationOutcomes...)
		d.AnnotationFallbacks += u.Image.AnnotationFallbacks
	}
	if envTier() {
		d.EnableTiering(TierOptions{})
	}
	if ml := envMemLimit(); ml > 0 {
		d.SetMemLimit(ml)
	}
	return d
}

// HashModule returns the content hash link sets identify a module by: the
// sha256 of its encoded bytes.
func HashModule(encoded []byte) [cil.HashSize]byte {
	return sha256.Sum256(encoded)
}

// CompileOfflineModules compiles several MiniC sources as one program split
// into one module per source. The sources are parsed separately — each owns
// the functions it declares — then checked, optimized and lowered together,
// so cross-source calls type-check exactly like same-source ones. Call sites
// that cross a source boundary are rewritten to hash-qualified import
// symbols and recorded in the caller's import table; the returned results
// are ordered dependencies-first (a module's hash must exist before an
// importer can name it), and dependency cycles between sources are an error.
// The per-module byte streams deploy as a link set.
func CompileOfflineModules(sources []string, names []string, opts OfflineOptions) ([]*OfflineResult, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: no sources")
	}
	if len(names) != len(sources) {
		return nil, fmt.Errorf("core: %d sources but %d module names", len(sources), len(names))
	}
	// Ownership: which source declares which function.
	owner := make(map[string]int)
	for i, src := range sources {
		prog, err := minic.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("core: module %q: %w", names[i], err)
		}
		for _, fn := range prog.Funcs {
			if prev, dup := owner[fn.Name]; dup {
				return nil, fmt.Errorf("core: function %q declared by both %q and %q; names must be unique across a link set",
					fn.Name, names[prev], names[i])
			}
			owner[fn.Name] = i
		}
	}
	// Compile the concatenation as one unit: shared front end, optimizer,
	// codegen and offline analyses, so splitting never changes the code.
	merged := ""
	for _, src := range sources {
		merged += src + "\n"
	}
	res, err := CompileOffline(merged, opts)
	if err != nil {
		return nil, err
	}
	// Partition the merged module's methods back to their owning sources.
	parts := make([]*cil.Module, len(sources))
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("core: module %d has no name", i)
		}
		parts[i] = cil.NewModule(name)
		for k, v := range res.Module.Annotations {
			parts[i].SetAnnotation(k, v)
		}
	}
	for _, m := range res.Module.Methods {
		i, ok := owner[m.Name]
		if !ok {
			return nil, fmt.Errorf("core: method %q has no owning source", m.Name)
		}
		parts[i].Methods = append(parts[i].Methods, m)
	}
	// Cross-part call graph for the dependencies-first hash ordering.
	deps := make([]map[int]bool, len(parts))
	for i := range deps {
		deps[i] = make(map[int]bool)
	}
	for i, part := range parts {
		for _, m := range part.Methods {
			for _, in := range m.Code {
				if in.Op != cil.Call {
					continue
				}
				j, ok := owner[in.Str]
				if !ok {
					continue // intrinsic or local helper resolved later by Verify
				}
				if j != i {
					deps[i][j] = true
				}
			}
		}
	}
	order, err := topoOrder(deps, names)
	if err != nil {
		return nil, err
	}
	// Encode dependencies-first, rewriting cross-part calls to import
	// symbols as each dependency's hash becomes known.
	hashes := make([][cil.HashSize]byte, len(parts))
	encoded := make(map[int][]byte, len(parts))
	for _, i := range order {
		part := parts[i]
		for _, m := range part.Methods {
			for pc := range m.Code {
				in := &m.Code[pc]
				if in.Op != cil.Call {
					continue
				}
				j, ok := owner[in.Str]
				if !ok || j == i {
					continue
				}
				dep := parts[j]
				callee := dep.Method(in.Str)
				part.AddImport(cil.Import{
					Hash:   hashes[j],
					Module: dep.Name,
					Methods: []cil.ImportedMethod{{
						Name:   callee.Name,
						Params: append([]cil.Type(nil), callee.Params...),
						Ret:    callee.Ret,
					}},
				})
				in.Str = cil.ImportSym(hashes[j], in.Str)
			}
		}
		if err := cil.Verify(part); err != nil {
			return nil, fmt.Errorf("core: module %q after split: %w", part.Name, err)
		}
		enc := cil.Encode(part)
		encoded[i] = enc
		hashes[i] = HashModule(enc)
	}
	out := make([]*OfflineResult, len(parts))
	for i, part := range parts {
		out[i] = &OfflineResult{Module: part, Encoded: encoded[i]}
	}
	return out, nil
}

// topoOrder orders part indices dependencies-first; a dependency cycle
// between parts is an error (a module's content hash cannot include itself).
func topoOrder(deps []map[int]bool, names []string) ([]int, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int, len(deps))
	order := make([]int, 0, len(deps))
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("core: dependency cycle through module %q; cyclic imports cannot be content-hashed", names[i])
		}
		state[i] = visiting
		targets := make([]int, 0, len(deps[i]))
		for j := range deps[i] {
			targets = append(targets, j)
		}
		sort.Ints(targets)
		for _, j := range targets {
			if err := visit(j); err != nil {
				return err
			}
		}
		state[i] = done
		order = append(order, i)
		return nil
	}
	for i := range deps {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}
