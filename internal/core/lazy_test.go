package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cil"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/target"
)

// lazyDeploy builds a lazy deployment from an encoded byte stream — the
// exact construction core.Deploy performs under SPLITVM_LAZY=1.
func lazyDeploy(t *testing.T, encoded []byte, tgt *target.Desc, jopts jit.Options) *Deployment {
	t.Helper()
	mod, err := cil.Decode(encoded)
	if err != nil {
		t.Fatal(err)
	}
	if err := cil.Verify(mod); err != nil {
		t.Fatal(err)
	}
	img, err := LazyImageFromVerifiedModule(mod, tgt, jopts)
	if err != nil {
		t.Fatal(err)
	}
	return img.Instantiate()
}

// TestLazyEagerTable1Differential is the acceptance differential: every
// Table 1 kernel, scalar and vectorized, on every Table 1 target, deployed
// eagerly and lazily, must produce identical results, identical output
// arrays and identical simulated cycle counts. Lazy compilation may move
// *when* methods compile, never *what* they compile to.
func TestLazyEagerTable1Differential(t *testing.T) {
	jopts := jit.Options{RegAlloc: jit.RegAllocSplit}
	for _, name := range kernels.Table1Names {
		for _, vectorize := range []struct {
			label string
			opts  OfflineOptions
		}{
			{"scalar", OfflineOptions{DisableVectorize: true}},
			{"vector", OfflineOptions{}},
		} {
			res, k, err := CompileKernel(name, vectorize.opts)
			if err != nil {
				t.Fatalf("%s %s: %v", name, vectorize.label, err)
			}
			in, err := kernels.NewInputs(name, 256, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, tgt := range target.Table1() {
				eager, err := Deploy(res.Encoded, tgt, jopts)
				if err != nil {
					t.Fatalf("%s %s on %s: eager deploy: %v", name, vectorize.label, tgt.Arch, err)
				}
				lazy := lazyDeploy(t, res.Encoded, tgt, jopts)
				re, err := eager.RunKernel(k, in)
				if err != nil {
					t.Fatalf("%s %s on %s: eager run: %v", name, vectorize.label, tgt.Arch, err)
				}
				rl, err := lazy.RunKernel(k, in)
				if err != nil {
					t.Fatalf("%s %s on %s: lazy run: %v", name, vectorize.label, tgt.Arch, err)
				}
				if re.Result != rl.Result {
					t.Errorf("%s %s on %s: result eager %v, lazy %v", name, vectorize.label, tgt.Arch, re.Result, rl.Result)
				}
				if re.Cycles != rl.Cycles {
					t.Errorf("%s %s on %s: cycles eager %d, lazy %d", name, vectorize.label, tgt.Arch, re.Cycles, rl.Cycles)
				}
				if !reflect.DeepEqual(re.Outputs, rl.Outputs) {
					t.Errorf("%s %s on %s: output arrays differ", name, vectorize.label, tgt.Arch)
				}
			}
		}
	}
}

// TestLazyResolveCancelledLeavesStub pins the half-patched-table guarantee:
// resolution under a cancelled context returns the context error without
// starting a compilation, the method stays a stub, and a later resolution
// succeeds normally.
func TestLazyResolveCancelledLeavesStub(t *testing.T) {
	res, err := CompileOffline("i64 idsq(i64 x) { return x * x; }", OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := target.MustLookup(target.X86SSE)
	dep := lazyDeploy(t, res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
	img := dep.Image

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := img.ResolveMethod(ctx, "idsq"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled resolve = %v, want context.Canceled", err)
	}
	if compiled, total := img.MethodCounts(); compiled != 0 || total != 1 {
		t.Fatalf("counts after cancelled resolve = %d/%d, want 0/1", compiled, total)
	}
	if st := img.CompileState()["idsq"]; st.State != MethodStub {
		t.Fatalf("state after cancelled resolve = %v, want stub", st.State)
	}
	if _, err := img.ResolveMethod(context.Background(), "idsq"); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if compiled, _ := img.MethodCounts(); compiled != 1 {
		t.Fatal("retry did not compile the method")
	}
}

// TestLazyResolveSingleflight: concurrent first resolutions of one method
// produce exactly one compilation, and every caller gets the same function.
func TestLazyResolveSingleflight(t *testing.T) {
	res, err := CompileOffline("i64 once(i64 x) { return x + 1; }", OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := target.MustLookup(target.X86SSE)
	dep := lazyDeploy(t, res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
	img := dep.Image

	var mu sync.Mutex
	compiles := 0
	img.OnLazyCompile(func(string, int64, bool) {
		mu.Lock()
		compiles++
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := img.ResolveMethod(context.Background(), "once"); err != nil {
				t.Errorf("resolve: %v", err)
			}
		}()
	}
	wg.Wait()
	if compiles != 1 {
		t.Fatalf("%d compilations for 16 concurrent first calls, want 1", compiles)
	}
}
