package core

// The panic firewall at the run boundary. The machine executes untrusted
// bytecode; a bug there (or hostile input that slipped past verification)
// must surface as a structured per-run error, never as a process crash and
// never as a machine left in a half-executed state. Every run therefore
// goes through guardedCall: a panic escaping dispatch is recovered into a
// *PanicError, the machine is quarantined, and the next run transparently
// rebuilds it from the deployment's image — the same cheap instantiation a
// fresh deployment performs, reusing the cached native code — before
// executing. Quarantines and rebuilds are counted on GuardStats, the
// deployment-level twin of TierStats.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"

	"repro/internal/sim"
)

// envMemLimit is the SPLITVM_MEM_LIMIT override, read once per process: a
// positive byte count governs the guest memory of every instantiated
// deployment. CI uses it to prove the governor's zero-drift property — the
// full gated benchmark suite runs generously governed and must match the
// ungoverned baseline exactly — without threading an option through every
// harness (the same pattern as SPLITVM_TIER and SPLITVM_LAZY).
var envMemLimit = sync.OnceValue(func() int64 {
	v := os.Getenv("SPLITVM_MEM_LIMIT")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
})

// PanicError is a guest panic recovered at the run boundary: the run failed,
// the machine was quarantined, and the next run gets a rebuilt machine.
type PanicError struct {
	// Val is the value the guest panicked with.
	Val any
}

// Error renders the recovered panic.
func (e *PanicError) Error() string { return fmt.Sprintf("core: guest panic: %v", e.Val) }

// GuardStats counts the panic firewall's activity on one deployment. Like
// TierStats this is host-side bookkeeping: none of it feeds the simulated
// statistics.
type GuardStats struct {
	// Quarantines counts runs that ended in a recovered panic, taking the
	// machine out of service until its rebuild.
	Quarantines int64 `json:"quarantines"`
	// Rebuilds counts machines transparently re-instantiated from their
	// image at the start of the run after a quarantine.
	Rebuilds int64 `json:"rebuilds"`
}

// GuardStats returns a snapshot of the deployment's firewall activity.
func (d *Deployment) GuardStats() GuardStats { return d.guard }

// Quarantined reports whether the last run panicked and the machine is
// waiting to be rebuilt (the next run clears it).
func (d *Deployment) Quarantined() bool { return d.quarantined }

// SetMemLimit bounds the guest memory the deployment's machine may consume
// (see sim.Machine.MemLimit); the limit survives quarantine rebuilds.
// 0 — the default — leaves guest memory ungoverned.
func (d *Deployment) SetMemLimit(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	d.memLimit = bytes
	d.Machine.MemLimit = bytes
}

// MemLimit returns the configured guest memory limit (0 = ungoverned).
func (d *Deployment) MemLimit() int64 { return d.memLimit }

// rebuild replaces a quarantined machine with a fresh one. Deployments
// instantiated from an image (or a link set) rebuild exactly like a new
// instantiation — sharing the cached native code, re-wiring the lazy
// resolver — and the per-machine configuration that is not part of the
// image (tiering, memory limit) is re-applied from what the deployment
// remembers. Machines constructed directly over a program fall back to a
// fresh machine on the same program.
func (d *Deployment) rebuild() {
	switch {
	case d.linked != nil:
		nd := d.linked.Instantiate()
		d.Machine, d.Program = nd.Machine, nd.Program
	case d.Image != nil:
		nd := d.Image.Instantiate()
		d.Machine, d.Program = nd.Machine, nd.Program
	default:
		d.Machine = sim.New(d.Target, d.Program)
	}
	if d.tierOpts != nil {
		d.EnableTiering(*d.tierOpts)
	}
	if d.memLimit > 0 {
		d.Machine.MemLimit = d.memLimit
	}
	d.quarantined = false
	d.guard.Rebuilds++
}

// guardedCall is the run boundary every Run/RunContext/RunKernel execution
// passes through: rebuild a quarantined machine, apply the wall-clock run
// deadline, execute, and catch anything that panics out of dispatch.
func (d *Deployment) guardedCall(ctx context.Context, entry string, args ...sim.Value) (res sim.Value, err error) {
	if d.quarantined {
		d.rebuild()
	}
	parent := ctx
	if d.RunDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.RunDeadline)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			d.quarantined = true
			d.guard.Quarantines++
			err = &PanicError{Val: r}
		}
	}()
	res, err = d.Machine.CallContext(ctx, entry, args...)
	// A deadline the governor imposed — not one the caller's own context
	// already carried — is a resource breach, not a cancellation.
	if err != nil && d.RunDeadline > 0 && ctx.Err() == context.DeadlineExceeded && parent.Err() == nil {
		err = &sim.ResourceError{Kind: sim.ResourceDeadline, Limit: int64(d.RunDeadline), Func: entry}
	}
	return res, err
}
