package core

import (
	"reflect"
	"testing"

	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/target"
)

// TestTieringBitIdenticalAcrossTable1 is the differential gate of the
// tiered runtime: every Table 1 kernel on every Table 1 target under every
// register allocation mode, run past tier-2 promotion, must produce
// results, outputs and simulated cycles bit-identical to a plain tier-1
// deployment of the same image.
func TestTieringBitIdenticalAcrossTable1(t *testing.T) {
	const n = 257 // odd length: exercises vector body + scalar remainder
	modes := []jit.RegAllocMode{jit.RegAllocOnline, jit.RegAllocSplit, jit.RegAllocOptimal}
	for _, name := range kernels.Table1Names {
		res, k, err := CompileKernel(name, OfflineOptions{AnnotationVersion: 1})
		if err != nil {
			t.Fatal(err)
		}
		in, err := kernels.NewInputs(name, n, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, tgt := range target.Table1() {
			for _, mode := range modes {
				img, err := BuildImage(res.Encoded, tgt, jit.Options{RegAlloc: mode})
				if err != nil {
					t.Fatal(err)
				}
				plain := img.Instantiate()
				tiered := img.Instantiate()
				tiered.EnableTiering(TierOptions{Policy: profile.Policy{PromoteCalls: 2}})
				for call := 0; call < 3; call++ {
					rp, errP := plain.RunKernel(k, in)
					rt, errT := tiered.RunKernel(k, in)
					if errP != nil || errT != nil {
						t.Fatalf("%s/%s/%v call %d: %v / %v", name, tgt.Arch, mode, call, errP, errT)
					}
					if rp.Result != rt.Result || rp.Cycles != rt.Cycles {
						t.Fatalf("%s/%s/%v call %d: result/cycles diverged: %v@%d vs %v@%d",
							name, tgt.Arch, mode, call, rp.Result, rp.Cycles, rt.Result, rt.Cycles)
					}
					if !reflect.DeepEqual(rp.Outputs, rt.Outputs) {
						t.Fatalf("%s/%s/%v call %d: outputs diverged", name, tgt.Arch, mode, call)
					}
				}
				if plain.Machine.Stats != tiered.Machine.Stats {
					t.Fatalf("%s/%s/%v: machine statistics diverged\nplain:  %+v\ntiered: %+v",
						name, tgt.Arch, mode, plain.Machine.Stats, tiered.Machine.Stats)
				}
				ts := tiered.TierStats()
				if ts.Promotions < 1 {
					t.Errorf("%s/%s/%v: no promotion after 3 calls: %+v", name, tgt.Arch, mode, ts)
				}
				if ts.ReallocChecked != ts.Promotions {
					t.Errorf("%s/%s/%v: realloc check did not run on every promotion: %+v",
						name, tgt.Arch, mode, ts)
				}
				if ts.ReallocConfirmed+ts.ReallocDiverged != ts.ReallocChecked {
					t.Errorf("%s/%s/%v: realloc accounting inconsistent: %+v", name, tgt.Arch, mode, ts)
				}
				if plain.TierStats() != (sim.TierStats{}) {
					t.Errorf("%s/%s/%v: plain deployment reports tiering", name, tgt.Arch, mode)
				}
			}
		}
	}
}

// TestTieringWarmStartAcrossDeployments exports the profile of one
// deployment and warms a fresh deployment of the same image with it: the
// warmed machine must promote on its first call (latency 1 instead of the
// threshold) and still match the cold machine's simulated behavior
// exactly — the measurable split-compilation payoff of the profile
// annotation.
func TestTieringWarmStartAcrossDeployments(t *testing.T) {
	res, k, err := CompileKernel("saxpy_fp", OfflineOptions{AnnotationVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	in, err := kernels.NewInputs("saxpy_fp", 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	img, err := BuildImage(res.Encoded, target.MustLookup(target.X86SSE), jit.Options{RegAlloc: jit.RegAllocSplit})
	if err != nil {
		t.Fatal(err)
	}

	exporter := img.Instantiate()
	exporter.EnableTiering(TierOptions{Policy: profile.Policy{PromoteCalls: -1}})
	for call := 0; call < 8; call++ {
		if _, err := exporter.RunKernel(k, in); err != nil {
			t.Fatal(err)
		}
	}
	exported := exporter.ExportProfile()
	if exported.Func(k.Entry) == nil {
		t.Fatalf("exported profile misses the entry point: %+v", exported)
	}

	const threshold = 5
	cold := img.Instantiate()
	cold.EnableTiering(TierOptions{Policy: profile.Policy{PromoteCalls: threshold}})
	warm := img.Instantiate()
	warm.EnableTiering(TierOptions{Policy: profile.Policy{PromoteCalls: threshold}, Profile: exported})

	for call := 0; call < threshold; call++ {
		rc, err := cold.RunKernel(k, in)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := warm.RunKernel(k, in)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Cycles != rw.Cycles || !reflect.DeepEqual(rc.Outputs, rw.Outputs) {
			t.Fatalf("call %d: warm deployment diverged from cold", call)
		}
	}

	tsCold, tsWarm := cold.TierStats(), warm.TierStats()
	if tsCold.Promotions != 1 || tsCold.PromoteCallsSum != threshold {
		t.Errorf("cold promotion latency = %+v, want %d calls", tsCold, threshold)
	}
	if tsWarm.Promotions != 1 || tsWarm.PromoteCallsSum != 1 {
		t.Errorf("warm promotion latency = %+v, want 1 call", tsWarm)
	}
	if tsWarm.WarmSeeded < 1 {
		t.Errorf("warm import did not seed counters: %+v", tsWarm)
	}
}
