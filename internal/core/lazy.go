package core

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cil"
	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/nisa"
	"repro/internal/sim"
	"repro/internal/target"
)

// MethodState is one method's position in the lazy compilation lifecycle.
// Methods start as stubs, pass through compiling exactly once (singleflight
// per image: concurrent first calls from any number of deployments block on
// the same flight), and end ready. A failed or cancelled compilation returns
// the method to the stub state, so the next call retries cleanly — the
// dispatch table is only ever patched with fully compiled code.
type MethodState int

// The lazy method states.
const (
	// MethodStub: not compiled yet; the first call will JIT it.
	MethodStub MethodState = iota
	// MethodCompiling: a first call is JIT-compiling it right now; other
	// callers wait on the flight instead of compiling again.
	MethodCompiling
	// MethodReady: native code is published; calls dispatch directly.
	MethodReady
)

func (s MethodState) String() string {
	switch s {
	case MethodStub:
		return "stub"
	case MethodCompiling:
		return "compiling"
	case MethodReady:
		return "ready"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// CompiledMethod is one method's native code as a MethodStore persists it:
// the function plus the wall-clock nanoseconds its original compilation took
// (so store hits report the cost that was actually paid, once, fleet-wide).
type CompiledMethod struct {
	Func         *nisa.Func
	CompileNanos int64
}

// MethodStore is a per-method code cache shared wider than one image —
// typically a disk volume mounted by every replica of a serving fleet. A
// lazy image consults the store before JIT-compiling a method and publishes
// what it compiled, so each method is compiled at most once fleet-wide.
// Implementations must be safe for concurrent use; Get misses return false.
type MethodStore interface {
	GetMethod(name string) (*CompiledMethod, bool)
	PutMethod(name string, cm *CompiledMethod)
}

// faultSiteLazyCompile is the fault-injection site armed by chaos tests to
// hold open (or crash inside) a first-call method compilation.
const faultSiteLazyCompile = "core.lazy_compile"

// methodEntry is one method's slot in the lazy image's state table, guarded
// by lazyState.mu. done is the current flight's completion signal: it is
// created when the state leaves stub and closed when it settles (ready, or
// back to stub on failure), so waiters re-examine the state afterwards.
type methodEntry struct {
	m         *cil.Method
	state     MethodState
	done      chan struct{}
	f         *nisa.Func
	nanos     int64
	fromStore bool
}

// lazyState is the mutable half of a lazy image: the per-method state table
// and the hooks the engine layer installs (fleet store, metrics callback).
type lazyState struct {
	compiler *jit.Compiler

	mu      sync.Mutex
	methods map[string]*methodEntry

	store     MethodStore
	onCompile func(method string, nanos int64, fromStore bool)
}

// LazyImageFromVerifiedModule builds an image whose methods are compiled on
// first call instead of up front. The module is fully decoded and verified —
// deployment-time validation is identical to the eager path — but the JIT
// runs per method, on demand, with singleflight per (image, method). The
// produced code is bit-identical to an eager build of the same module (both
// run the same per-method pipeline), so simulated results and cycle counts
// never depend on compilation timing.
func LazyImageFromVerifiedModule(mod *cil.Module, tgt *target.Desc, jopts jit.Options) (*Image, error) {
	ls := &lazyState{
		compiler: jit.New(tgt, jopts),
		methods:  make(map[string]*methodEntry, len(mod.Methods)),
	}
	for _, m := range mod.Methods {
		ls.methods[m.Name] = &methodEntry{m: m}
	}
	return &Image{
		Target:  tgt,
		Module:  mod,
		Program: nisa.NewProgram(tgt.Name),
		JITOpts: jopts,
		lazy:    ls,
	}, nil
}

// Lazy reports whether the image compiles methods on first call.
func (img *Image) Lazy() bool { return img.lazy != nil }

// SetMethodStore installs the fleet-wide per-method code cache consulted
// before (and published to after) each lazy compilation. It must be set
// before the first deployment resolves a method; it has no effect on eager
// images.
func (img *Image) SetMethodStore(s MethodStore) {
	if img.lazy != nil {
		img.lazy.store = s
	}
}

// OnLazyCompile installs a callback invoked after each method resolution
// that produced code — fromStore distinguishes a fleet-store hit from an
// actual JIT run. It must be set before the first deployment resolves a
// method; it has no effect on eager images.
func (img *Image) OnLazyCompile(fn func(method string, nanos int64, fromStore bool)) {
	if img.lazy != nil {
		img.lazy.onCompile = fn
	}
}

// MethodCompileState is one method's entry in a CompileState report.
type MethodCompileState struct {
	State MethodState
	// CompileNanos is the wall-clock JIT time of the method's compilation
	// (the original one, for store hits); zero until the method is ready,
	// and zero for eager images, whose cost is reported per image.
	CompileNanos int64
	// FromStore marks methods whose code came from the fleet store rather
	// than a local JIT run.
	FromStore bool
}

// CompileState reports the per-method compilation state of the image. Eager
// images report every method ready (their cost lives in Image.CompileNanos);
// lazy images report the live state table.
func (img *Image) CompileState() map[string]MethodCompileState {
	out := make(map[string]MethodCompileState, len(img.Module.Methods))
	if img.lazy == nil {
		for _, m := range img.Module.Methods {
			out[m.Name] = MethodCompileState{State: MethodReady}
		}
		return out
	}
	img.lazy.mu.Lock()
	defer img.lazy.mu.Unlock()
	for name, e := range img.lazy.methods {
		out[name] = MethodCompileState{State: e.state, CompileNanos: e.nanos, FromStore: e.fromStore}
	}
	return out
}

// MethodCounts returns how many of the image's methods have native code and
// how many it has in total.
func (img *Image) MethodCounts() (compiled, total int) {
	total = len(img.Module.Methods)
	if img.lazy == nil {
		return total, total
	}
	img.lazy.mu.Lock()
	defer img.lazy.mu.Unlock()
	for _, e := range img.lazy.methods {
		if e.state == MethodReady {
			compiled++
		}
	}
	return compiled, total
}

// LazyJITSteps sums the JIT-step counts of every method resolved so far,
// including fleet-store hits (steps describe the code's original
// compilation, mirroring how cache-hit eager deployments inherit the
// original cost figure). Zero for eager images, whose total is
// Image.JITSteps. Once every method is ready the sum equals the eager
// build's JITSteps exactly — both paths run the same per-method pipeline.
func (img *Image) LazyJITSteps() int64 {
	if img.lazy == nil {
		return 0
	}
	img.lazy.mu.Lock()
	defer img.lazy.mu.Unlock()
	var total int64
	for _, e := range img.lazy.methods {
		if e.state == MethodReady {
			total += e.f.Stats.CompileSteps
		}
	}
	return total
}

// LazyCompileNanos sums the wall-clock JIT time of every method compiled so
// far (zero for eager images, whose total is Image.CompileNanos).
func (img *Image) LazyCompileNanos() int64 {
	if img.lazy == nil {
		return 0
	}
	img.lazy.mu.Lock()
	defer img.lazy.mu.Unlock()
	var total int64
	for _, e := range img.lazy.methods {
		if e.state == MethodReady && !e.fromStore {
			total += e.nanos
		}
	}
	return total
}

// snapshot copies every ready method into prog, so a machine instantiated
// after some first calls already dispatches them without resolver round
// trips.
func (ls *lazyState) snapshot(prog *nisa.Program) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	for name, e := range ls.methods {
		if e.state == MethodReady {
			prog.Funcs[name] = e.f
		}
	}
}

// ResolveMethod returns the native code of one method, JIT-compiling it on
// first use. Concurrent resolutions of the same method — from any number of
// deployments sharing the image — coalesce into one compilation; waiters
// whose ctx is cancelled return early without observing or publishing any
// code, and a flight that fails returns the method to the stub state so the
// next call retries. For eager images this is a plain program lookup.
func (img *Image) ResolveMethod(ctx context.Context, name string) (*nisa.Func, error) {
	ls := img.lazy
	if ls == nil {
		if f := img.Program.Func(name); f != nil {
			return f, nil
		}
		return nil, fmt.Errorf("core: unknown method %q", name)
	}
	for {
		ls.mu.Lock()
		e, ok := ls.methods[name]
		if !ok {
			ls.mu.Unlock()
			return nil, fmt.Errorf("core: unknown method %q", name)
		}
		switch e.state {
		case MethodReady:
			f := e.f
			ls.mu.Unlock()
			return f, nil

		case MethodCompiling:
			done := e.done
			ls.mu.Unlock()
			select {
			case <-done:
				// The flight settled: loop to observe ready, or a stub
				// again if it failed (then this caller takes over).
			case <-ctx.Done():
				return nil, ctx.Err()
			}

		case MethodStub:
			if err := ctx.Err(); err != nil {
				// A cancelled run never starts a compilation, so it can
				// never leave a half-patched dispatch table behind.
				ls.mu.Unlock()
				return nil, err
			}
			e.state = MethodCompiling
			e.done = make(chan struct{})
			ls.mu.Unlock()

			f, nanos, fromStore, err := ls.compile(img.Module, e.m)

			ls.mu.Lock()
			if err != nil {
				e.state = MethodStub
				close(e.done)
				e.done = nil
				ls.mu.Unlock()
				return nil, err
			}
			e.state = MethodReady
			e.f, e.nanos, e.fromStore = f, nanos, fromStore
			close(e.done)
			ls.mu.Unlock()

			if !fromStore && ls.store != nil {
				ls.store.PutMethod(name, &CompiledMethod{Func: f, CompileNanos: nanos})
			}
			if ls.onCompile != nil {
				ls.onCompile(name, nanos, fromStore)
			}
			return f, nil
		}
	}
}

// compile produces one method's native code: fleet-store hit if available,
// otherwise a timed JIT run. The fault-injection site lets chaos tests hold
// the compilation open or crash the process inside it.
func (ls *lazyState) compile(mod *cil.Module, m *cil.Method) (f *nisa.Func, nanos int64, fromStore bool, err error) {
	if flt := faultinject.At(faultSiteLazyCompile); flt != nil {
		if err := flt.Apply(); err != nil {
			return nil, 0, false, fmt.Errorf("core: lazy compile of %q: %w", m.Name, err)
		}
	}
	if ls.store != nil {
		if cm, ok := ls.store.GetMethod(m.Name); ok && cm != nil && cm.Func != nil {
			return cm.Func, cm.CompileNanos, true, nil
		}
	}
	start := time.Now()
	f, _, err = ls.compiler.CompileMethodReport(mod, m)
	if err != nil {
		return nil, 0, false, err
	}
	return f, time.Since(start).Nanoseconds(), false, nil
}

// envLazy is the SPLITVM_LAZY override, read once per process: "1" (or "on")
// makes core.Deploy build lazy images. CI uses it to prove the zero-drift
// property — the full gated benchmark suite runs with lazy compilation
// enabled and must match the eager baseline exactly — without threading an
// option through every harness.
var envLazy = sync.OnceValue(func() bool {
	v := os.Getenv("SPLITVM_LAZY")
	return v == "1" || v == "on"
})

// lazyResolverFor wires a machine to the image's method table. The ctx the
// machine passes is the one its current CallContext run carries, so a
// cancelled run aborts resolution before any compilation starts.
func lazyResolverFor(img *Image) sim.Resolver {
	return func(ctx context.Context, sym string) (*nisa.Func, error) {
		return img.ResolveMethod(ctx, sym)
	}
}
