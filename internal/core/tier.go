package core

// Tiered execution at the deployment level: the simulator's profiling and
// promotion machinery (internal/sim) wired to the JIT, so a promotion can
// validate the deployed register allocation against the observed block
// frequencies — closing the split-compilation loop at runtime. The check
// recompiles the hot method with profile-derived weights and compares; the
// deployed code keeps executing either way, so tiering never changes
// simulated cycles, statistics or results (the differential tests pin this
// across the Table 1 matrix).

import (
	"os"
	"reflect"
	"sync"

	"repro/internal/cil"
	"repro/internal/jit"
	"repro/internal/nisa"
	"repro/internal/profile"
	"repro/internal/sim"
)

// TierOptions configures tiered execution on a deployment.
type TierOptions struct {
	// Policy sets the promotion threshold (zero value: the default
	// threshold; PromoteCalls < 0 profiles without promoting).
	Policy profile.Policy
	// Profile warms the machine with a previously exported profile, so
	// functions the exporter found hot promote on their first call here.
	Profile *profile.ModuleProfile
	// DisableReallocCheck skips the profile-guided register allocation
	// validation on promotion (fusion still happens).
	DisableReallocCheck bool
}

// EnableTiering turns on profiling and tier-2 promotion for this
// deployment. Must be called before or between runs, not concurrently
// with them.
func (d *Deployment) EnableTiering(opts TierOptions) {
	d.tierOpts = &opts // remembered so a quarantine rebuild re-applies it
	m := d.Machine
	m.EnableTiering(opts.Policy)
	if !opts.DisableReallocCheck {
		m.SetTierController(d.reallocController())
	}
	if opts.Profile != nil {
		m.WarmProfile(opts.Profile)
	}
}

// TierStats returns the machine's tiering activity.
func (d *Deployment) TierStats() sim.TierStats { return d.Machine.TierStats() }

// ExportProfile returns the observed execution profile of the
// deployment's machine — the annotation a later deployment imports via
// TierOptions.Profile.
func (d *Deployment) ExportProfile() *profile.ModuleProfile {
	return d.Machine.ProfileSnapshot()
}

// reallocController builds the promotion callback: recompile the hot
// method with the observed block frequencies as allocation weights and
// compare against the deployed code. The comparison validates the offline
// annotation online; the deployed code is never replaced.
func (d *Deployment) reallocController() sim.PromoteFunc {
	comp := jit.New(d.Target, d.JITOpts)
	methods := make(map[string]*cil.Method, len(d.Module.Methods))
	for _, m := range d.Module.Methods {
		methods[m.Name] = m
	}
	return func(f *nisa.Func, fp *profile.FuncProfile) sim.PromoteResult {
		m := methods[f.Name]
		if m == nil {
			return sim.PromoteResult{}
		}
		nf, err := comp.CompileMethodProfiled(d.Module, m, fp)
		if err != nil {
			// Shape mismatch (degraded warm import): could not check.
			return sim.PromoteResult{}
		}
		confirmed := nf.FrameSlots == f.FrameSlots && reflect.DeepEqual(nf.Code, f.Code)
		return sim.PromoteResult{ReallocChecked: true, ReallocConfirmed: confirmed}
	}
}

// envTier is the SPLITVM_TIER override, read once per process: "1" (or
// "on") enables tiering with the default policy on every instantiated
// deployment. CI uses it to prove the zero-drift property — the full gated
// benchmark suite runs with tiering enabled and must match the baseline
// exactly — without threading an option through every harness.
var envTier = sync.OnceValue(func() bool {
	v := os.Getenv("SPLITVM_TIER")
	return v == "1" || v == "on"
})
