package cil

import (
	"strings"
	"testing"
)

func moduleWith(t *testing.T, methods ...*Method) *Module {
	t.Helper()
	mod := NewModule("test")
	for _, m := range methods {
		if err := mod.AddMethod(m); err != nil {
			t.Fatal(err)
		}
	}
	return mod
}

func TestVerifyAcceptsStraightLine(t *testing.T) {
	m := buildAddMethod(t)
	mod := moduleWith(t, m)
	if err := Verify(mod); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.MaxStack != 2 {
		t.Errorf("MaxStack = %d, want 2", m.MaxStack)
	}
}

func TestVerifyAcceptsLoop(t *testing.T) {
	m := buildSumLoop(t)
	mod := moduleWith(t, m)
	if err := Verify(mod); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.MaxStack < 3 {
		t.Errorf("MaxStack = %d, want >= 3", m.MaxStack)
	}
}

func TestVerifyAcceptsCalls(t *testing.T) {
	callee := buildAddMethod(t)
	b := NewMethodBuilder("caller", []Type{Scalar(I32)}, Scalar(I32))
	b.LoadArg(0).ConstI(I32, 5).CallMethod("add").Return()
	caller := b.MustFinish()
	mod := moduleWith(t, callee, caller)
	if err := Verify(mod); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyAcceptsVectorOps(t *testing.T) {
	// vadd16(dst u8[], a u8[], b u8[]): one vector iteration at index 0.
	b := NewMethodBuilder("vadd16", []Type{Array(U8), Array(U8), Array(U8)}, Scalar(Void))
	b.LoadArg(0).ConstI(I32, 0)
	b.LoadArg(1).ConstI(I32, 0).OpK(VLoad, U8)
	b.LoadArg(2).ConstI(I32, 0).OpK(VLoad, U8)
	b.OpK(VAdd, U8)
	b.OpK(VStore, U8)
	b.Return()
	m := b.MustFinish()
	mod := moduleWith(t, m)
	if err := Verify(mod); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// Reduction result kinds are enforced.
	b2 := NewMethodBuilder("redmax", []Type{Array(U8)}, Scalar(U32))
	b2.LoadArg(0).ConstI(I32, 0).OpK(VLoad, U8).OpK(VRedMax, U8).Return()
	mod2 := moduleWith(t, b2.MustFinish())
	if err := Verify(mod2); err != nil {
		t.Fatalf("Verify reduction: %v", err)
	}
}

func TestVerifyAcceptsVectorLocalAccumulator(t *testing.T) {
	b := NewMethodBuilder("acc", []Type{Array(F64)}, Scalar(F64))
	acc := b.AddLocal(Scalar(Vec))
	b.ConstF(F64, 0).OpK(VSplat, F64).StoreLocal(acc)
	b.LoadLocal(acc).LoadArg(0).ConstI(I32, 0).OpK(VLoad, F64).OpK(VAdd, F64).StoreLocal(acc)
	b.LoadLocal(acc).OpK(VRedAdd, F64).Return()
	mod := moduleWith(t, b.MustFinish())
	if err := Verify(mod); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func rejectCase(t *testing.T, name string, build func(b *MethodBuilder), params []Type, ret Type, wantSubstr string) {
	t.Helper()
	b := NewMethodBuilder(name, params, ret)
	build(b)
	m := b.MustFinish()
	mod := moduleWith(t, m)
	err := Verify(mod)
	if err == nil {
		t.Fatalf("%s: Verify accepted invalid method", name)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Errorf("%s: error %q does not mention %q", name, err, wantSubstr)
	}
	var verr *VerifyError
	if !errorsAs(err, &verr) {
		t.Errorf("%s: error is not a *VerifyError: %T", name, err)
	}
}

// errorsAs is a tiny local stand-in for errors.As for the concrete type used
// here (the verifier returns *VerifyError directly).
func errorsAs(err error, target **VerifyError) bool {
	v, ok := err.(*VerifyError)
	if ok {
		*target = v
	}
	return ok
}

func TestVerifyRejections(t *testing.T) {
	rejectCase(t, "underflow", func(b *MethodBuilder) {
		b.OpK(Add, I32).Op(Pop).Return()
	}, nil, Scalar(Void), "underflow")

	rejectCase(t, "falloff", func(b *MethodBuilder) {
		b.ConstI(I32, 1).Op(Pop)
	}, nil, Scalar(Void), "falls off the end")

	rejectCase(t, "retval-left", func(b *MethodBuilder) {
		b.ConstI(I32, 1).Return()
	}, nil, Scalar(Void), "values left")

	rejectCase(t, "bad-local", func(b *MethodBuilder) {
		b.LoadLocal(0).Op(Pop).Return()
	}, nil, Scalar(Void), "out of range")

	rejectCase(t, "bad-arg", func(b *MethodBuilder) {
		b.LoadArg(2).Op(Pop).Return()
	}, []Type{Scalar(I32)}, Scalar(Void), "out of range")

	rejectCase(t, "kind-mismatch", func(b *MethodBuilder) {
		b.ConstI(I32, 1).ConstF(F64, 2).OpK(Add, I32).Op(Pop).Return()
	}, nil, Scalar(Void), "expected i32")

	rejectCase(t, "float-bitand", func(b *MethodBuilder) {
		b.ConstF(F64, 1).ConstF(F64, 2).OpK(And, F64).Op(Pop).Return()
	}, nil, Scalar(Void), "not defined on floating-point")

	rejectCase(t, "store-mismatch", func(b *MethodBuilder) {
		l := b.AddLocal(Scalar(F64))
		b.ConstI(I32, 1).StoreLocal(l).Return()
	}, nil, Scalar(Void), "cannot store")

	rejectCase(t, "unknown-callee", func(b *MethodBuilder) {
		b.CallMethod("nope").Return()
	}, nil, Scalar(Void), "unknown method")

	rejectCase(t, "array-elem-mismatch", func(b *MethodBuilder) {
		b.LoadArg(0).ConstI(I32, 0).OpK(LdElem, F64).Op(Pop).Return()
	}, []Type{Array(I32)}, Scalar(Void), "expected f64[]")

	rejectCase(t, "vload-on-scalar", func(b *MethodBuilder) {
		b.LoadArg(0).ConstI(I32, 0).OpK(VLoad, U8).Op(Pop).Return()
	}, []Type{Scalar(I32)}, Scalar(Void), "expected u8[]")

	rejectCase(t, "wrong-return-kind", func(b *MethodBuilder) {
		b.ConstF(F64, 1).Return()
	}, nil, Scalar(I32), "cannot store")

	rejectCase(t, "vsplat-ref", func(b *MethodBuilder) {
		b.LoadArg(0).OpK(VSplat, Ref).Op(Pop).Return()
	}, []Type{Array(U8)}, Scalar(Void), "vsplat")
}

func TestVerifyRejectsStackJoinMismatch(t *testing.T) {
	// if (arg0) push i32 else push f64; join -> mismatch.
	b := NewMethodBuilder("join", []Type{Scalar(I32)}, Scalar(Void))
	elseL := b.NewLabel()
	joinL := b.NewLabel()
	b.LoadArg(0).BranchFalse(elseL)
	b.ConstI(I32, 1)
	b.Branch(joinL)
	b.Bind(elseL)
	b.ConstF(F64, 1)
	b.Bind(joinL)
	b.Op(Pop)
	b.Return()
	mod := moduleWith(t, b.MustFinish())
	if err := Verify(mod); err == nil {
		t.Fatal("Verify accepted inconsistent stack at join point")
	}
}

func TestVerifyRejectsEmptyBodyAndBadTargets(t *testing.T) {
	mod := NewModule("test")
	empty := NewMethod("empty", nil, Scalar(Void))
	if err := mod.AddMethod(empty); err != nil {
		t.Fatal(err)
	}
	if err := Verify(mod); err == nil {
		t.Fatal("Verify accepted empty method body")
	}

	bad := NewMethod("bad", nil, Scalar(Void))
	bad.Code = []Instr{{Op: Br, Target: 99}, {Op: Ret}}
	mod2 := moduleWith(t, bad)
	if err := Verify(mod2); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Verify should reject out-of-range targets, got %v", err)
	}
}

func TestVerifyRejectsVecParam(t *testing.T) {
	m := NewMethod("v", []Type{Scalar(Vec)}, Scalar(Void))
	m.Code = []Instr{{Op: Ret}}
	mod := moduleWith(t, m)
	if err := Verify(mod); err == nil {
		t.Fatal("Verify should reject vec-typed parameters")
	}
}

func TestVerifyCallArgumentMismatch(t *testing.T) {
	callee := buildAddMethod(t)
	b := NewMethodBuilder("caller", nil, Scalar(Void))
	b.ConstF(F64, 1).ConstI(I32, 2).CallMethod("add").Op(Pop).Return()
	mod := moduleWith(t, callee, b.MustFinish())
	if err := Verify(mod); err == nil {
		t.Fatal("Verify should reject ill-typed call arguments")
	}
}
