package cil

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// Multi-module linking at the bytecode level. A module may declare imports:
// dependencies on other modules identified by the SHA-256 of their encoded
// byte stream (the same content identity the engine's code cache keys on).
// Each import lists the signatures of the methods this module calls, so the
// importer verifies and JIT-compiles without the imported module present —
// the call becomes a stub symbol (ImportSym) that the runtime resolves
// module-by-content-hash at link time.

// HashSize is the byte length of a module content hash (SHA-256).
const HashSize = 32

// ImportedMethod declares the signature of one method of an imported
// module, as the importer depends on it. Verification and JIT compilation
// of the importing module use this signature; the linker checks it against
// the imported module's real method at deploy time.
type ImportedMethod struct {
	Name   string
	Params []Type
	Ret    Type
}

// Import declares a dependency on another module by content hash. Module is
// the imported module's name, kept for diagnostics only — the hash is the
// identity.
type Import struct {
	Hash    [HashSize]byte
	Module  string
	Methods []ImportedMethod
}

// Clone returns a deep copy of the import.
func (im *Import) Clone() Import {
	c := Import{Hash: im.Hash, Module: im.Module}
	for _, m := range im.Methods {
		c.Methods = append(c.Methods, ImportedMethod{
			Name:   m.Name,
			Params: append([]Type(nil), m.Params...),
			Ret:    m.Ret,
		})
	}
	return c
}

// importSymSep separates the method name from the content-hash qualifier in
// an ImportSym. '@' cannot appear in MiniC identifiers, so qualified symbols
// never collide with local method names.
const importSymSep = "@"

// importSymHashLen is the number of hash bytes spelled into the symbol —
// enough to make accidental collisions inside one linked set implausible;
// the import table keeps the full hash for the authoritative resolution.
const importSymHashLen = 8

// ImportSym is the program-level symbol of a cross-module call: the method
// name qualified by a prefix of the imported module's content hash. The JIT
// emits calls to imported methods under this symbol; the linker maps it back
// to (module hash, method) through the import table.
func ImportSym(hash [HashSize]byte, method string) string {
	return method + importSymSep + hex.EncodeToString(hash[:importSymHashLen])
}

// IsImportSym reports whether a call symbol is hash-qualified (produced by
// ImportSym) rather than a plain local method name.
func IsImportSym(sym string) bool { return strings.Contains(sym, importSymSep) }

// SplitImportSym splits a hash-qualified symbol into the plain method name
// and the hex hash qualifier. The qualifier is empty for plain symbols.
func SplitImportSym(sym string) (method, qual string) {
	method, qual, _ = strings.Cut(sym, importSymSep)
	return method, qual
}

// HashQualifier is the hex spelling of a content hash as it appears in
// import symbols (see ImportSym).
func HashQualifier(hash [HashSize]byte) string {
	return hex.EncodeToString(hash[:importSymHashLen])
}

// AddImport records a dependency on another module. Adding the same hash
// twice merges the method lists (later signatures win on name clashes).
func (mod *Module) AddImport(im Import) {
	for i := range mod.Imports {
		if mod.Imports[i].Hash != im.Hash {
			continue
		}
		for _, m := range im.Methods {
			replaced := false
			for j := range mod.Imports[i].Methods {
				if mod.Imports[i].Methods[j].Name == m.Name {
					mod.Imports[i].Methods[j] = m
					replaced = true
					break
				}
			}
			if !replaced {
				mod.Imports[i].Methods = append(mod.Imports[i].Methods, m)
			}
		}
		return
	}
	mod.Imports = append(mod.Imports, im.Clone())
}

// ImportedMethod resolves a hash-qualified call symbol against the import
// table: the import it belongs to and the declared method signature.
func (mod *Module) ImportedMethod(sym string) (*Import, *ImportedMethod, bool) {
	name, qual, found := strings.Cut(sym, importSymSep)
	if !found {
		return nil, nil, false
	}
	for i := range mod.Imports {
		im := &mod.Imports[i]
		if hex.EncodeToString(im.Hash[:importSymHashLen]) != qual {
			continue
		}
		for j := range im.Methods {
			if im.Methods[j].Name == name {
				return im, &im.Methods[j], true
			}
		}
	}
	return nil, nil, false
}

// ResolveCall returns the signature of a call target: a local method of the
// module, or an imported method matched by its hash-qualified symbol.
func (mod *Module) ResolveCall(sym string) (params []Type, ret Type, ok bool) {
	if m := mod.Method(sym); m != nil {
		return m.Params, m.Ret, true
	}
	if _, im, found := mod.ImportedMethod(sym); found {
		return im.Params, im.Ret, true
	}
	return nil, Type{}, false
}

// ValidateImports performs the structural checks the encoder and linker
// rely on: non-empty method lists, unique hashes, unique method names per
// import, and no two imports whose symbol qualifiers collide.
func ValidateImports(mod *Module) error {
	seenHash := make(map[[HashSize]byte]bool, len(mod.Imports))
	seenQual := make(map[string]bool, len(mod.Imports))
	for _, im := range mod.Imports {
		if seenHash[im.Hash] {
			return fmt.Errorf("cil: module %q imports %x twice", mod.Name, im.Hash[:8])
		}
		seenHash[im.Hash] = true
		qual := hex.EncodeToString(im.Hash[:importSymHashLen])
		if seenQual[qual] {
			return fmt.Errorf("cil: module %q: import hash prefix collision on %s", mod.Name, qual)
		}
		seenQual[qual] = true
		if len(im.Methods) == 0 {
			return fmt.Errorf("cil: module %q: import of %x declares no methods", mod.Name, im.Hash[:8])
		}
		names := make(map[string]bool, len(im.Methods))
		for _, m := range im.Methods {
			if m.Name == "" {
				return fmt.Errorf("cil: module %q: import of %x declares an unnamed method", mod.Name, im.Hash[:8])
			}
			if names[m.Name] {
				return fmt.Errorf("cil: module %q: import of %x declares %q twice", mod.Name, im.Hash[:8], m.Name)
			}
			names[m.Name] = true
		}
	}
	return nil
}
