package cil

import "fmt"

// VerifyError describes a verification failure at a specific instruction.
type VerifyError struct {
	Module string
	Method string
	PC     int
	Msg    string
}

func (e *VerifyError) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("cil: verify %s.%s: %s", e.Module, e.Method, e.Msg)
	}
	return fmt.Sprintf("cil: verify %s.%s @%d: %s", e.Module, e.Method, e.PC, e.Msg)
}

// Verify type-checks every method of the module and computes MaxStack for
// each. Verification simulates the typed evaluation stack across all
// control-flow paths (the CLI verification discipline): stack depths and
// kinds must agree at every join point, branch targets must be in range,
// variable indices valid, call signatures respected, and every path must end
// in ret with an empty stack.
func Verify(mod *Module) error {
	for _, m := range mod.Methods {
		if err := VerifyMethod(mod, m); err != nil {
			return err
		}
	}
	return nil
}

// VerifyMethod verifies a single method in the context of its module (the
// module is needed to resolve call signatures) and sets m.MaxStack.
func VerifyMethod(mod *Module, m *Method) error {
	v := &verifier{mod: mod, m: m}
	if err := v.run(); err != nil {
		return err
	}
	// Publishing the analysis result is the verifier's only write into the
	// method; read-only consumers of the analysis (StackLayouts) stay pure
	// so already-verified modules can be JIT-compiled concurrently.
	m.MaxStack = v.maxStack
	return nil
}

type verifier struct {
	mod      *Module
	m        *Method
	states   [][]Type // entry stack per pc; nil = unvisited
	worklist []int
	maxStack int
}

func (v *verifier) errf(pc int, format string, args ...interface{}) error {
	name := "?"
	if v.mod != nil {
		name = v.mod.Name
	}
	return &VerifyError{Module: name, Method: v.m.Name, PC: pc, Msg: fmt.Sprintf(format, args...)}
}

func (v *verifier) run() error {
	m := v.m
	if len(m.Code) == 0 {
		return v.errf(-1, "empty method body")
	}
	for _, t := range m.Params {
		if t.Kind == Void || t.Kind == Vec {
			return v.errf(-1, "invalid parameter type %s", t)
		}
	}
	for _, t := range m.Locals {
		if t.Kind == Void {
			return v.errf(-1, "invalid local type %s", t)
		}
	}
	v.states = make([][]Type, len(m.Code))
	v.merge(0, []Type{})
	for len(v.worklist) > 0 {
		pc := v.worklist[len(v.worklist)-1]
		v.worklist = v.worklist[:len(v.worklist)-1]
		if err := v.step(pc); err != nil {
			return err
		}
	}
	return nil
}

// merge records the entry stack for pc, scheduling it for simulation when it
// has not been visited, and reports an inconsistency otherwise.
func (v *verifier) merge(pc int, stack []Type) error {
	if pc < 0 || pc >= len(v.m.Code) {
		return v.errf(pc, "control flow falls outside the method body")
	}
	if prev := v.states[pc]; prev != nil {
		if len(prev) != len(stack) {
			return v.errf(pc, "stack depth mismatch at join: %d vs %d", len(prev), len(stack))
		}
		for i := range prev {
			if prev[i] != stack[i] {
				return v.errf(pc, "stack kind mismatch at join slot %d: %s vs %s", i, prev[i], stack[i])
			}
		}
		return nil
	}
	// Store a non-nil slice even for an empty stack: nil means "unvisited"
	// and an empty entry state must not be confused with it (otherwise a
	// loop whose instructions all have empty entry stacks never converges).
	state := make([]Type, len(stack))
	copy(state, stack)
	v.states[pc] = state
	v.worklist = append(v.worklist, pc)
	if len(stack) > v.maxStack {
		v.maxStack = len(stack)
	}
	return nil
}

func (v *verifier) step(pc int) error {
	m := v.m
	in := m.Code[pc]
	stack := append([]Type(nil), v.states[pc]...)

	push := func(t Type) { stack = append(stack, t) }
	pop := func() (Type, error) {
		if len(stack) == 0 {
			return Type{}, v.errf(pc, "%s: evaluation stack underflow", in.Op)
		}
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return t, nil
	}
	popKind := func(want Kind) error {
		t, err := pop()
		if err != nil {
			return err
		}
		if t.Kind != want.StackKind() {
			return v.errf(pc, "%s: expected %s on stack, found %s", in.Op, want.StackKind(), t)
		}
		return nil
	}
	popArray := func(elem Kind) error {
		t, err := pop()
		if err != nil {
			return err
		}
		if !t.IsArray() || t.Elem != elem {
			return v.errf(pc, "%s: expected %s[] on stack, found %s", in.Op, elem, t)
		}
		return nil
	}

	fallthru := true
	branch := false

	switch in.Op {
	case Nop:
	case LdcI:
		if !in.Kind.IsInteger() && in.Kind != Bool {
			return v.errf(pc, "ldc.i with non-integer kind %s", in.Kind)
		}
		push(Scalar(in.Kind.StackKind()))
	case LdcF:
		if !in.Kind.IsFloat() {
			return v.errf(pc, "ldc.f with non-float kind %s", in.Kind)
		}
		push(Scalar(in.Kind))
	case LdArg, StArg:
		i := int(in.Int)
		if i < 0 || i >= len(m.Params) {
			return v.errf(pc, "%s: argument index %d out of range (%d params)", in.Op, i, len(m.Params))
		}
		t := m.Params[i]
		if in.Op == LdArg {
			push(normalize(t))
		} else if err := popAssignable(v, pc, in, &stack, t); err != nil {
			return err
		}
	case LdLoc, StLoc:
		i := int(in.Int)
		if i < 0 || i >= len(m.Locals) {
			return v.errf(pc, "%s: local index %d out of range (%d locals)", in.Op, i, len(m.Locals))
		}
		t := m.Locals[i]
		if in.Op == LdLoc {
			push(normalize(t))
		} else if err := popAssignable(v, pc, in, &stack, t); err != nil {
			return err
		}
	case Dup:
		if len(stack) == 0 {
			return v.errf(pc, "dup on empty stack")
		}
		push(stack[len(stack)-1])
	case Pop:
		if _, err := pop(); err != nil {
			return err
		}
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr:
		if !in.Kind.IsNumeric() {
			return v.errf(pc, "%s with non-numeric kind %s", in.Op, in.Kind)
		}
		if in.Kind.IsFloat() && (in.Op == And || in.Op == Or || in.Op == Xor || in.Op == Shl || in.Op == Shr || in.Op == Rem) {
			return v.errf(pc, "%s not defined on floating-point kind %s", in.Op, in.Kind)
		}
		if err := popKind(in.Kind); err != nil {
			return err
		}
		if err := popKind(in.Kind); err != nil {
			return err
		}
		push(Scalar(in.Kind.StackKind()))
	case Neg, Not:
		if in.Op == Not && !in.Kind.IsInteger() {
			return v.errf(pc, "not with non-integer kind %s", in.Kind)
		}
		if !in.Kind.IsNumeric() {
			return v.errf(pc, "%s with non-numeric kind %s", in.Op, in.Kind)
		}
		if err := popKind(in.Kind); err != nil {
			return err
		}
		push(Scalar(in.Kind.StackKind()))
	case Conv:
		if !in.Kind.IsNumeric() {
			return v.errf(pc, "conv to non-numeric kind %s", in.Kind)
		}
		t, err := pop()
		if err != nil {
			return err
		}
		if !t.Kind.IsNumeric() {
			return v.errf(pc, "conv from non-numeric %s", t)
		}
		push(Scalar(in.Kind.StackKind()))
	case CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe:
		if !in.Kind.IsNumeric() {
			return v.errf(pc, "%s with non-numeric kind %s", in.Op, in.Kind)
		}
		if err := popKind(in.Kind); err != nil {
			return err
		}
		if err := popKind(in.Kind); err != nil {
			return err
		}
		push(Scalar(I32))
	case Br:
		fallthru = false
		branch = true
	case BrTrue, BrFalse:
		if err := popKind(I32); err != nil {
			return err
		}
		branch = true
	case Call:
		// A call resolves against the module's own methods first, then the
		// import table (hash-qualified symbols of linked modules).
		params, ret, ok := v.mod.ResolveCall(in.Str)
		if !ok {
			return v.errf(pc, "call to unknown method %q", in.Str)
		}
		for i := len(params) - 1; i >= 0; i-- {
			if err := popAssignable(v, pc, in, &stack, params[i]); err != nil {
				return err
			}
		}
		if ret.Kind != Void {
			push(normalize(ret))
		}
	case Ret:
		if m.Ret.Kind != Void {
			if err := popAssignable(v, pc, in, &stack, m.Ret); err != nil {
				return err
			}
		}
		if len(stack) != 0 {
			return v.errf(pc, "ret with %d values left on the stack", len(stack))
		}
		fallthru = false
	case NewArr:
		if !in.Kind.IsNumeric() || in.Kind == Bool {
			return v.errf(pc, "newarr with element kind %s", in.Kind)
		}
		if err := popKind(I32); err != nil {
			return err
		}
		push(Array(in.Kind))
	case LdLen:
		t, err := pop()
		if err != nil {
			return err
		}
		if !t.IsArray() {
			return v.errf(pc, "ldlen on non-array %s", t)
		}
		push(Scalar(I32))
	case LdElem:
		if err := popKind(I32); err != nil {
			return err
		}
		if err := popArray(in.Kind); err != nil {
			return err
		}
		push(Scalar(in.Kind.StackKind()))
	case StElem:
		if err := popKind(in.Kind); err != nil {
			return err
		}
		if err := popKind(I32); err != nil {
			return err
		}
		if err := popArray(in.Kind); err != nil {
			return err
		}
	case VLoad:
		if in.Kind.Lanes() == 0 {
			return v.errf(pc, "vload with element kind %s", in.Kind)
		}
		if err := popKind(I32); err != nil {
			return err
		}
		if err := popArray(in.Kind); err != nil {
			return err
		}
		push(Scalar(Vec))
	case VStore:
		if in.Kind.Lanes() == 0 {
			return v.errf(pc, "vstore with element kind %s", in.Kind)
		}
		if err := popKind(Vec); err != nil {
			return err
		}
		if err := popKind(I32); err != nil {
			return err
		}
		if err := popArray(in.Kind); err != nil {
			return err
		}
	case VAdd, VSub, VMul, VMax, VMin:
		if in.Kind.Lanes() == 0 {
			return v.errf(pc, "%s with element kind %s", in.Op, in.Kind)
		}
		if err := popKind(Vec); err != nil {
			return err
		}
		if err := popKind(Vec); err != nil {
			return err
		}
		push(Scalar(Vec))
	case VSplat:
		if in.Kind.Lanes() == 0 {
			return v.errf(pc, "vsplat with element kind %s", in.Kind)
		}
		if err := popKind(in.Kind); err != nil {
			return err
		}
		push(Scalar(Vec))
	case VRedAdd, VRedMax, VRedMin:
		if in.Kind.Lanes() == 0 {
			return v.errf(pc, "%s with element kind %s", in.Op, in.Kind)
		}
		if err := popKind(Vec); err != nil {
			return err
		}
		push(Scalar(ReduceKind(in.Op, in.Kind)))
	default:
		return v.errf(pc, "invalid opcode %d", in.Op)
	}

	if len(stack) > v.maxStack {
		v.maxStack = len(stack)
	}
	if branch {
		if in.Target < 0 || in.Target >= len(m.Code) {
			return v.errf(pc, "branch target %d out of range", in.Target)
		}
		if err := v.merge(in.Target, stack); err != nil {
			return err
		}
	}
	if fallthru {
		if pc+1 >= len(m.Code) {
			return v.errf(pc, "control flow falls off the end of the method")
		}
		if err := v.merge(pc+1, stack); err != nil {
			return err
		}
	}
	return nil
}

// normalize converts a declared variable type to its evaluation-stack type.
func normalize(t Type) Type {
	if t.IsArray() {
		return t
	}
	return Scalar(t.Kind.StackKind())
}

// popAssignable pops a stack value and checks it may be stored into a slot of
// declared type want.
func popAssignable(v *verifier, pc int, in Instr, stack *[]Type, want Type) error {
	s := *stack
	if len(s) == 0 {
		return v.errf(pc, "%s: evaluation stack underflow", in.Op)
	}
	got := s[len(s)-1]
	*stack = s[:len(s)-1]
	wantN := normalize(want)
	if got != wantN {
		return v.errf(pc, "%s: cannot store %s into slot of type %s", in.Op, got, want)
	}
	return nil
}
