package cil

import (
	"fmt"
	"strings"

	"repro/internal/anno/envelope"
)

// Disassemble returns a human-readable listing of the module: signatures,
// locals, annotations (keys and payload sizes) and the instruction stream
// with branch-target markers.
func Disassemble(mod *Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", mod.Name)
	for _, k := range sortedKeys(mod.Annotations) {
		b.WriteString(annotationLine(k, mod.Annotations[k]))
	}
	for i := range mod.Imports {
		im := &mod.Imports[i]
		names := make([]string, len(im.Methods))
		for j, m := range im.Methods {
			names[j] = m.Name
		}
		fmt.Fprintf(&b, "  .import %s %x {%s}\n", im.Module, im.Hash[:8], strings.Join(names, ", "))
	}
	for _, m := range mod.Methods {
		b.WriteString(DisassembleMethod(m))
	}
	return b.String()
}

// DisassembleMethod returns a human-readable listing of a single method.
func DisassembleMethod(m *Method) string {
	var b strings.Builder
	params := make([]string, len(m.Params))
	for i, t := range m.Params {
		params[i] = t.String()
	}
	fmt.Fprintf(&b, "\nmethod %s(%s) %s\n", m.Name, strings.Join(params, ", "), m.Ret)
	if len(m.Locals) > 0 {
		locals := make([]string, len(m.Locals))
		for i, t := range m.Locals {
			locals[i] = fmt.Sprintf("[%d]%s", i, t)
		}
		fmt.Fprintf(&b, "  .locals %s\n", strings.Join(locals, " "))
	}
	fmt.Fprintf(&b, "  .maxstack %d\n", m.MaxStack)
	for _, k := range sortedKeys(m.Annotations) {
		b.WriteString(annotationLine(k, m.Annotations[k]))
	}
	targets := branchTargets(m)
	for pc, in := range m.Code {
		marker := "  "
		if targets[pc] {
			marker = "L:"
		}
		fmt.Fprintf(&b, "  %s %4d: %s\n", marker, pc, in)
	}
	return b.String()
}

// annotationLine renders one annotation: key, declared container version and
// size, plus the section table for enveloped values.
func annotationLine(k string, v []byte) string {
	if !envelope.Is(v) {
		return fmt.Sprintf("  .annotation %s (v0, %d bytes)\n", k, len(v))
	}
	e, err := envelope.Parse(v)
	if err != nil {
		ver, _ := envelope.DeclaredVersion(v)
		return fmt.Sprintf("  .annotation %s (v%d envelope, %d bytes, unreadable: %v)\n", k, ver, len(v), err)
	}
	parts := make([]string, len(e.Sections))
	for i, s := range e.Sections {
		parts[i] = fmt.Sprintf("%s@%d:%dB", s.Name, s.Version, len(s.Payload))
	}
	return fmt.Sprintf("  .annotation %s (envelope, %d bytes: %s)\n", k, len(v), strings.Join(parts, " "))
}

// branchTargets returns the set of instruction indices that are targets of a
// branch in the method.
func branchTargets(m *Method) map[int]bool {
	targets := make(map[int]bool)
	for _, in := range m.Code {
		if in.Op.IsBranch() {
			targets[in.Target] = true
		}
	}
	return targets
}

func sortedKeys(a map[string][]byte) []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	// insertion sort keeps this dependency-free and the maps are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
