package cil

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Binary format of an encoded module ("SVBC": split-compilation virtual
// bytecode). All integers are unsigned LEB128 varints unless noted; signed
// quantities use zig-zag encoding. Strings are length-prefixed UTF-8.
//
//	magic   "SVBC"
//	u8      format version
//	string  module name
//	uvarint annotation count, then (string key, bytes value)*
//	uvarint import count, then import*        (format version 2 only)
//	uvarint method count, then method*
//
// Each import (version 2):
//
//	raw32   SHA-256 of the imported module's encoded bytes
//	string  imported module name (diagnostics only)
//	uvarint method count, then (string name, uvarint param count, type*,
//	        type return)*
//
// A module without imports always encodes as format version 1, bit-for-bit
// identical to pre-linking toolchains: the code-size experiment and every
// content hash of an unlinked module are unchanged by the import feature.
//
// Each method:
//
//	string  name
//	uvarint param count,  then type*
//	type    return type
//	uvarint local count,  then type*
//	uvarint max stack
//	uvarint annotation count, then (string key, bytes value)*
//	uvarint instruction count, then instruction*
//
// Each type is one byte kind plus, for Ref, one byte element kind. Each
// instruction is one opcode byte, one kind byte, then operands selected by
// the opcode (see encodeInstr).
const (
	formatMagic = "SVBC"
	// formatVersion is the original, import-free encoding; formatVersionImports
	// adds the import table and is only emitted when a module declares one.
	formatVersion        = 1
	formatVersionImports = 2
)

// Encode serializes the module to its compact binary deployment format. The
// size of this encoding is what the code-size experiment (EXP-SIZE) compares
// against native code.
func Encode(mod *Module) []byte {
	var w encoder
	w.raw([]byte(formatMagic))
	version := uint8(formatVersion)
	if len(mod.Imports) > 0 {
		version = formatVersionImports
	}
	w.u8(version)
	w.str(mod.Name)
	w.annotations(mod.Annotations)
	if version >= formatVersionImports {
		w.imports(mod.Imports)
	}
	w.uvarint(uint64(len(mod.Methods)))
	for _, m := range mod.Methods {
		w.method(m)
	}
	return w.buf.Bytes()
}

// Decode parses a module previously produced by Encode.
func Decode(data []byte) (*Module, error) {
	r := &decoder{data: data}
	magic := r.raw(4)
	if r.err == nil && string(magic) != formatMagic {
		return nil, fmt.Errorf("cil: bad magic %q", magic)
	}
	v := r.u8()
	if r.err == nil && v != formatVersion && v != formatVersionImports {
		return nil, fmt.Errorf("cil: unsupported format version %d", v)
	}
	mod := NewModule(r.str())
	mod.Annotations = r.annotations()
	if v >= formatVersionImports {
		imports, err := r.imports()
		if err != nil {
			return nil, err
		}
		mod.Imports = imports
		if err := ValidateImports(mod); err != nil {
			return nil, err
		}
	}
	n := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("cil: implausible method count %d", n)
	}
	for i := 0; i < n; i++ {
		m, err := r.method()
		if err != nil {
			return nil, err
		}
		if err := mod.AddMethod(m); err != nil {
			return nil, err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("cil: %d trailing bytes after module", len(r.data)-r.pos)
	}
	return mod, nil
}

// EncodedSize returns the size in bytes of the module's binary encoding.
func EncodedSize(mod *Module) int { return len(Encode(mod)) }

type encoder struct {
	buf bytes.Buffer
}

func (w *encoder) raw(b []byte) { w.buf.Write(b) }
func (w *encoder) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *encoder) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}
func (w *encoder) svarint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}
func (w *encoder) f64(v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	w.buf.Write(tmp[:])
}
func (w *encoder) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}
func (w *encoder) bytesv(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf.Write(b)
}

func (w *encoder) annotations(a map[string][]byte) {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.bytesv(a[k])
	}
}

func (w *encoder) imports(imports []Import) {
	w.uvarint(uint64(len(imports)))
	for _, im := range imports {
		w.raw(im.Hash[:])
		w.str(im.Module)
		w.uvarint(uint64(len(im.Methods)))
		for _, m := range im.Methods {
			w.str(m.Name)
			w.uvarint(uint64(len(m.Params)))
			for _, t := range m.Params {
				w.typ(t)
			}
			w.typ(m.Ret)
		}
	}
}

func (w *encoder) typ(t Type) {
	w.u8(uint8(t.Kind))
	if t.Kind == Ref {
		w.u8(uint8(t.Elem))
	}
}

func (w *encoder) method(m *Method) {
	w.str(m.Name)
	w.uvarint(uint64(len(m.Params)))
	for _, t := range m.Params {
		w.typ(t)
	}
	w.typ(m.Ret)
	w.uvarint(uint64(len(m.Locals)))
	for _, t := range m.Locals {
		w.typ(t)
	}
	w.uvarint(uint64(m.MaxStack))
	w.annotations(m.Annotations)
	w.uvarint(uint64(len(m.Code)))
	for _, in := range m.Code {
		w.instr(in)
	}
}

// opNeedsKind reports whether the opcode carries an element/operand kind in
// the encoding. Untyped opcodes (loads of variables, branches, stack
// manipulation) omit the kind byte, which keeps the deployment format
// compact.
func opNeedsKind(op Opcode) bool {
	switch op {
	case Nop, LdArg, StArg, LdLoc, StLoc, Dup, Pop, Br, BrTrue, BrFalse, Call, Ret, LdLen:
		return false
	}
	return true
}

func (w *encoder) instr(in Instr) {
	w.u8(uint8(in.Op))
	if opNeedsKind(in.Op) {
		w.u8(uint8(in.Kind))
	}
	switch in.Op {
	case LdcI, LdArg, StArg, LdLoc, StLoc:
		w.svarint(in.Int)
	case LdcF:
		w.f64(in.Float)
	case Br, BrTrue, BrFalse:
		w.svarint(int64(in.Target))
	case Call:
		w.str(in.Str)
	}
}

type decoder struct {
	data []byte
	pos  int
	err  error
}

func (r *decoder) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("cil: decode at offset %d: %s", r.pos, fmt.Sprintf(format, args...))
	}
}

func (r *decoder) raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.data) {
		r.fail("truncated input (need %d bytes)", n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *decoder) u8() uint8 {
	b := r.raw(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *decoder) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *decoder) svarint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *decoder) f64() float64 {
	b := r.raw(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *decoder) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail("string length %d exceeds remaining input", n)
		return ""
	}
	return string(r.raw(int(n)))
}

func (r *decoder) bytesv() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail("byte-string length %d exceeds remaining input", n)
		return nil
	}
	return append([]byte(nil), r.raw(int(n))...)
}

func (r *decoder) annotations() map[string][]byte {
	n := int(r.uvarint())
	a := make(map[string][]byte, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.str()
		a[k] = r.bytesv()
	}
	return a
}

func (r *decoder) imports() ([]Import, error) {
	n := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || n > 1<<12 {
		return nil, fmt.Errorf("cil: implausible import count %d", n)
	}
	out := make([]Import, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var im Import
		copy(im.Hash[:], r.raw(HashSize))
		im.Module = r.str()
		nm := int(r.uvarint())
		if r.err != nil {
			break
		}
		if nm < 0 || nm > 1<<16 {
			return nil, fmt.Errorf("cil: implausible imported method count %d", nm)
		}
		for j := 0; j < nm && r.err == nil; j++ {
			m := ImportedMethod{Name: r.str()}
			np := int(r.uvarint())
			if r.err != nil {
				break
			}
			if np < 0 || np > 1<<10 {
				return nil, fmt.Errorf("cil: implausible imported param count %d", np)
			}
			for k := 0; k < np && r.err == nil; k++ {
				m.Params = append(m.Params, r.typ())
			}
			m.Ret = r.typ()
			im.Methods = append(im.Methods, m)
		}
		out = append(out, im)
	}
	return out, r.err
}

func (r *decoder) typ() Type {
	k := Kind(r.u8())
	t := Type{Kind: k}
	if k == Ref {
		t.Elem = Kind(r.u8())
	}
	if r.err == nil && int(k) >= len(kindNames) {
		r.fail("invalid kind %d", k)
	}
	return t
}

func (r *decoder) method() (*Method, error) {
	m := NewMethod(r.str(), nil, Scalar(Void))
	np := int(r.uvarint())
	for i := 0; i < np && r.err == nil; i++ {
		m.Params = append(m.Params, r.typ())
	}
	m.Ret = r.typ()
	nl := int(r.uvarint())
	for i := 0; i < nl && r.err == nil; i++ {
		m.Locals = append(m.Locals, r.typ())
	}
	m.MaxStack = int(r.uvarint())
	m.Annotations = r.annotations()
	nc := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if nc < 0 || nc > 1<<24 {
		return nil, fmt.Errorf("cil: implausible instruction count %d in %q", nc, m.Name)
	}
	m.Code = make([]Instr, 0, nc)
	for i := 0; i < nc && r.err == nil; i++ {
		m.Code = append(m.Code, r.instr())
	}
	return m, r.err
}

func (r *decoder) instr() Instr {
	in := Instr{Op: Opcode(r.u8())}
	if r.err == nil && !in.Op.Valid() {
		r.fail("invalid opcode %d", in.Op)
		return in
	}
	if opNeedsKind(in.Op) {
		in.Kind = Kind(r.u8())
	}
	switch in.Op {
	case LdcI, LdArg, StArg, LdLoc, StLoc:
		in.Int = r.svarint()
	case LdcF:
		in.Float = r.f64()
	case Br, BrTrue, BrFalse:
		in.Target = int(r.svarint())
	case Call:
		in.Str = r.str()
	}
	return in
}
