package cil

import (
	"fmt"
	"sort"

	"repro/internal/anno/envelope"
)

// Method is a single bytecode method: typed signature, typed locals, a flat
// instruction stream with instruction-index branch targets, and metadata
// annotations produced by the offline compiler.
type Method struct {
	Name        string
	Params      []Type
	Ret         Type
	Locals      []Type
	Code        []Instr
	Annotations map[string][]byte

	// MaxStack is the maximum evaluation-stack depth; it is computed by
	// Verify and stored so that deployment-side compilers do not need to
	// recompute it.
	MaxStack int
}

// NewMethod returns an empty method with the given signature.
func NewMethod(name string, params []Type, ret Type) *Method {
	return &Method{
		Name:        name,
		Params:      append([]Type(nil), params...),
		Ret:         ret,
		Annotations: make(map[string][]byte),
	}
}

// AddLocal appends a local of the given type and returns its index.
func (m *Method) AddLocal(t Type) int {
	m.Locals = append(m.Locals, t)
	return len(m.Locals) - 1
}

// SetAnnotation attaches (or replaces) an annotation on the method.
func (m *Method) SetAnnotation(key string, value []byte) {
	if m.Annotations == nil {
		m.Annotations = make(map[string][]byte)
	}
	m.Annotations[key] = append([]byte(nil), value...)
}

// Annotation returns the annotation payload for key and whether it exists.
func (m *Method) Annotation(key string) ([]byte, bool) {
	v, ok := m.Annotations[key]
	return v, ok
}

// AnnotationKeys returns the method's annotation keys in sorted order.
func (m *Method) AnnotationKeys() []string {
	keys := make([]string, 0, len(m.Annotations))
	for k := range m.Annotations {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AnnotationVersions reports the declared container version of every
// annotation on the method: 0 for grandfathered legacy streams (anything
// without the envelope magic), otherwise the highest schema version the
// value's envelope declares. It is computed from the stored bytes, so a
// loaded module reports versions without any consumer-side decoding and the
// map never goes stale across SetAnnotation.
func (m *Method) AnnotationVersions() map[string]uint32 {
	return annotationVersions(m.Annotations)
}

func annotationVersions(a map[string][]byte) map[string]uint32 {
	out := make(map[string]uint32, len(a))
	for k, v := range a {
		ver, _ := envelope.DeclaredVersion(v)
		out[k] = ver
	}
	return out
}

// Clone returns a deep copy of the method.
func (m *Method) Clone() *Method {
	c := &Method{
		Name:     m.Name,
		Params:   append([]Type(nil), m.Params...),
		Ret:      m.Ret,
		Locals:   append([]Type(nil), m.Locals...),
		Code:     append([]Instr(nil), m.Code...),
		MaxStack: m.MaxStack,
	}
	if m.Annotations != nil {
		c.Annotations = make(map[string][]byte, len(m.Annotations))
		for k, v := range m.Annotations {
			c.Annotations[k] = append([]byte(nil), v...)
		}
	}
	return c
}

// Module is a deployable unit: a named collection of methods plus
// module-level annotations (for example hardware-requirement summaries used
// by the heterogeneous runtime).
type Module struct {
	Name        string
	Methods     []*Method
	Annotations map[string][]byte

	// Imports declares the other modules this one calls into, keyed by
	// content hash (see imports.go). A module without imports encodes in
	// the original v1 format, byte-identical to pre-linking toolchains.
	Imports []Import
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module {
	return &Module{Name: name, Annotations: make(map[string][]byte)}
}

// AddMethod appends a method to the module. It returns an error if a method
// with the same name already exists.
func (mod *Module) AddMethod(m *Method) error {
	if mod.Method(m.Name) != nil {
		return fmt.Errorf("cil: duplicate method %q in module %q", m.Name, mod.Name)
	}
	mod.Methods = append(mod.Methods, m)
	return nil
}

// Method returns the method with the given name, or nil if absent.
func (mod *Module) Method(name string) *Method {
	for _, m := range mod.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// MethodNames returns the names of all methods in declaration order.
func (mod *Module) MethodNames() []string {
	names := make([]string, len(mod.Methods))
	for i, m := range mod.Methods {
		names[i] = m.Name
	}
	return names
}

// SetAnnotation attaches (or replaces) a module-level annotation.
func (mod *Module) SetAnnotation(key string, value []byte) {
	if mod.Annotations == nil {
		mod.Annotations = make(map[string][]byte)
	}
	mod.Annotations[key] = append([]byte(nil), value...)
}

// Annotation returns the module-level annotation for key.
func (mod *Module) Annotation(key string) ([]byte, bool) {
	v, ok := mod.Annotations[key]
	return v, ok
}

// AnnotationVersions reports the declared container version of every
// module-level annotation (see Method.AnnotationVersions).
func (mod *Module) AnnotationVersions() map[string]uint32 {
	return annotationVersions(mod.Annotations)
}

// Clone returns a deep copy of the module.
func (mod *Module) Clone() *Module {
	c := NewModule(mod.Name)
	for _, m := range mod.Methods {
		c.Methods = append(c.Methods, m.Clone())
	}
	for i := range mod.Imports {
		c.Imports = append(c.Imports, mod.Imports[i].Clone())
	}
	for k, v := range mod.Annotations {
		c.Annotations[k] = append([]byte(nil), v...)
	}
	return c
}

// StripAnnotations returns a deep copy of the module with every method-level
// and module-level annotation removed. It is used by ablation experiments
// that measure the cost of re-deriving information online.
func (mod *Module) StripAnnotations() *Module {
	c := mod.Clone()
	c.Annotations = make(map[string][]byte)
	for _, m := range c.Methods {
		m.Annotations = make(map[string][]byte)
	}
	return c
}
