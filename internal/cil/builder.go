package cil

import "fmt"

// Label identifies a forward or backward branch target inside a
// MethodBuilder. Labels are bound to instruction positions with Bind.
type Label int

// MethodBuilder assembles a Method instruction by instruction, resolving
// symbolic labels to instruction indices when Finish is called.
type MethodBuilder struct {
	m          *Method
	labelPos   []int   // label -> instruction index, -1 while unbound
	fixups     []fixup // branches waiting for their label position
	finishOnce bool
}

type fixup struct {
	instr int
	label Label
}

// NewMethodBuilder returns a builder for a method with the given signature.
func NewMethodBuilder(name string, params []Type, ret Type) *MethodBuilder {
	return &MethodBuilder{m: NewMethod(name, params, ret)}
}

// Method returns the method under construction. It is primarily useful for
// declaring locals before emitting code.
func (b *MethodBuilder) Method() *Method { return b.m }

// AddLocal declares a new local variable and returns its index.
func (b *MethodBuilder) AddLocal(t Type) int { return b.m.AddLocal(t) }

// NewLabel allocates a fresh, unbound label.
func (b *MethodBuilder) NewLabel() Label {
	b.labelPos = append(b.labelPos, -1)
	return Label(len(b.labelPos) - 1)
}

// Bind binds the label to the position of the next emitted instruction.
func (b *MethodBuilder) Bind(l Label) {
	b.labelPos[l] = len(b.m.Code)
}

// Emit appends a raw instruction.
func (b *MethodBuilder) Emit(in Instr) *MethodBuilder {
	b.m.Code = append(b.m.Code, in)
	return b
}

// Op emits an instruction with only an opcode.
func (b *MethodBuilder) Op(op Opcode) *MethodBuilder { return b.Emit(Instr{Op: op}) }

// OpK emits a typed instruction (arithmetic, comparison, conversion, array
// or vector operation).
func (b *MethodBuilder) OpK(op Opcode, k Kind) *MethodBuilder {
	return b.Emit(Instr{Op: op, Kind: k})
}

// ConstI emits an integer constant of the given kind.
func (b *MethodBuilder) ConstI(k Kind, v int64) *MethodBuilder {
	return b.Emit(Instr{Op: LdcI, Kind: k, Int: v})
}

// ConstF emits a floating-point constant of the given kind.
func (b *MethodBuilder) ConstF(k Kind, v float64) *MethodBuilder {
	return b.Emit(Instr{Op: LdcF, Kind: k, Float: v})
}

// LoadArg emits ldarg i.
func (b *MethodBuilder) LoadArg(i int) *MethodBuilder {
	return b.Emit(Instr{Op: LdArg, Int: int64(i)})
}

// StoreArg emits starg i.
func (b *MethodBuilder) StoreArg(i int) *MethodBuilder {
	return b.Emit(Instr{Op: StArg, Int: int64(i)})
}

// LoadLocal emits ldloc i.
func (b *MethodBuilder) LoadLocal(i int) *MethodBuilder {
	return b.Emit(Instr{Op: LdLoc, Int: int64(i)})
}

// StoreLocal emits stloc i.
func (b *MethodBuilder) StoreLocal(i int) *MethodBuilder {
	return b.Emit(Instr{Op: StLoc, Int: int64(i)})
}

// Branch emits an unconditional branch to the label.
func (b *MethodBuilder) Branch(l Label) *MethodBuilder { return b.branch(Br, l) }

// BranchTrue emits a branch taken when the popped condition is non-zero.
func (b *MethodBuilder) BranchTrue(l Label) *MethodBuilder { return b.branch(BrTrue, l) }

// BranchFalse emits a branch taken when the popped condition is zero.
func (b *MethodBuilder) BranchFalse(l Label) *MethodBuilder { return b.branch(BrFalse, l) }

func (b *MethodBuilder) branch(op Opcode, l Label) *MethodBuilder {
	b.fixups = append(b.fixups, fixup{instr: len(b.m.Code), label: l})
	return b.Emit(Instr{Op: op, Target: -1})
}

// CallMethod emits a call to the named method.
func (b *MethodBuilder) CallMethod(name string) *MethodBuilder {
	return b.Emit(Instr{Op: Call, Str: name})
}

// Return emits ret.
func (b *MethodBuilder) Return() *MethodBuilder { return b.Op(Ret) }

// Finish resolves all labels and returns the completed method. It returns an
// error if any referenced label was never bound or if finish was already
// called.
func (b *MethodBuilder) Finish() (*Method, error) {
	if b.finishOnce {
		return nil, fmt.Errorf("cil: Finish called twice on builder for %q", b.m.Name)
	}
	b.finishOnce = true
	for _, f := range b.fixups {
		pos := b.labelPos[f.label]
		if pos < 0 {
			return nil, fmt.Errorf("cil: method %q: unbound label %d", b.m.Name, f.label)
		}
		b.m.Code[f.instr].Target = pos
	}
	return b.m, nil
}

// MustFinish is like Finish but panics on error. It is intended for tests
// and internally generated code where an unbound label is a programming bug.
func (b *MethodBuilder) MustFinish() *Method {
	m, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return m
}
