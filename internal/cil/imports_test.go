package cil

import (
	"reflect"
	"strings"
	"testing"
)

// importedModule is sampleModule plus an import table: a dependency on two
// methods of one module and one method of another.
func importedModule(t testing.TB) *Module {
	mod := NewModule("importer")
	b := NewMethodBuilder("caller", []Type{Scalar(I64)}, Scalar(I64))
	b.LoadArg(0).Return()
	if err := mod.AddMethod(b.MustFinish()); err != nil {
		t.Fatal(err)
	}
	var h1, h2 [HashSize]byte
	for i := range h1 {
		h1[i] = byte(i)
		h2[i] = byte(255 - i)
	}
	mod.AddImport(Import{Hash: h1, Module: "mathlib", Methods: []ImportedMethod{
		{Name: "cube", Params: []Type{Scalar(I64)}, Ret: Scalar(I64)},
		{Name: "scale", Params: []Type{Array(F64), Scalar(F64), Scalar(I32)}, Ret: Scalar(Void)},
	}})
	mod.AddImport(Import{Hash: h2, Module: "strlib", Methods: []ImportedMethod{
		{Name: "hash32", Params: []Type{Array(I32), Scalar(I32)}, Ret: Scalar(I32)},
	}})
	if err := Verify(mod); err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestImportsEncodeDecodeRoundTrip: a module with an import table survives
// the byte stream intact — hashes, diagnostic names and declared signatures.
func TestImportsEncodeDecodeRoundTrip(t *testing.T) {
	mod := importedModule(t)
	data := Encode(mod)
	if data[len(formatMagic)] != formatVersionImports {
		t.Fatalf("version byte = %d, want %d for an importing module",
			data[len(formatMagic)], formatVersionImports)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(mod, got) {
		t.Errorf("round trip mismatch:\noriginal: %+v\ndecoded:  %+v", mod, got)
	}
}

// TestImportFreeModuleStaysV1 pins the compatibility contract: a module
// without imports must encode as format version 1, so content hashes and
// the code-size experiment are untouched by the linking feature.
func TestImportFreeModuleStaysV1(t *testing.T) {
	data := Encode(sampleModule(t))
	if data[len(formatMagic)] != formatVersion {
		t.Fatalf("version byte = %d, want %d for an import-free module",
			data[len(formatMagic)], formatVersion)
	}
}

// TestImportSymRoundTrip covers the hash-qualified call-symbol spelling.
func TestImportSymRoundTrip(t *testing.T) {
	var h [HashSize]byte
	for i := range h {
		h[i] = byte(i * 3)
	}
	sym := ImportSym(h, "cube")
	if !IsImportSym(sym) {
		t.Fatalf("IsImportSym(%q) = false", sym)
	}
	if IsImportSym("cube") {
		t.Fatal(`IsImportSym("cube") = true for a plain local symbol`)
	}
	method, qual := SplitImportSym(sym)
	if method != "cube" || qual != HashQualifier(h) {
		t.Fatalf("SplitImportSym(%q) = %q, %q", sym, method, qual)
	}
	if _, q := SplitImportSym("local"); q != "" {
		t.Fatalf("plain symbol produced qualifier %q", q)
	}
}

// TestResolveCallPrefersLocalThenImports: signature resolution covers both
// local methods and hash-qualified imports, and misses cleanly.
func TestResolveCallPrefersLocalThenImports(t *testing.T) {
	mod := importedModule(t)
	if _, ret, ok := mod.ResolveCall("caller"); !ok || ret != Scalar(I64) {
		t.Fatalf("ResolveCall(caller) = ret %v, ok %v", ret, ok)
	}
	sym := ImportSym(mod.Imports[0].Hash, "cube")
	params, ret, ok := mod.ResolveCall(sym)
	if !ok || ret != Scalar(I64) || len(params) != 1 {
		t.Fatalf("ResolveCall(%q) = %v, %v, %v", sym, params, ret, ok)
	}
	if _, _, ok := mod.ResolveCall(ImportSym(mod.Imports[0].Hash, "missing")); ok {
		t.Fatal("ResolveCall resolved a method the import never declared")
	}
}

// TestAddImportMergesByHash: re-adding a hash merges method lists instead of
// duplicating the import (later signatures win on name clashes).
func TestAddImportMerges(t *testing.T) {
	mod := importedModule(t)
	h := mod.Imports[0].Hash
	mod.AddImport(Import{Hash: h, Module: "mathlib", Methods: []ImportedMethod{
		{Name: "cube", Params: []Type{Scalar(I32)}, Ret: Scalar(I32)}, // replaces
		{Name: "pow", Params: []Type{Scalar(I64), Scalar(I64)}, Ret: Scalar(I64)},
	}})
	if len(mod.Imports) != 2 {
		t.Fatalf("AddImport duplicated the import: %d entries", len(mod.Imports))
	}
	im := mod.Imports[0]
	if len(im.Methods) != 3 {
		t.Fatalf("merged import has %d methods, want 3", len(im.Methods))
	}
	if _, m, ok := mod.ImportedMethod(ImportSym(h, "cube")); !ok || m.Ret != Scalar(I32) {
		t.Fatal("merge did not replace the clashing signature")
	}
}

// TestValidateImportsRejects enumerates the structural errors Decode and the
// linker rely on being impossible in a validated module.
func TestValidateImportsRejects(t *testing.T) {
	var h [HashSize]byte
	h[0] = 7
	cases := []struct {
		name    string
		imports []Import
		wantSub string
	}{
		{"duplicate hash", []Import{
			{Hash: h, Methods: []ImportedMethod{{Name: "a"}}},
			{Hash: h, Methods: []ImportedMethod{{Name: "b"}}},
		}, "twice"},
		{"no methods", []Import{{Hash: h}}, "no methods"},
		{"unnamed method", []Import{{Hash: h, Methods: []ImportedMethod{{}}}}, "unnamed"},
		{"duplicate method", []Import{
			{Hash: h, Methods: []ImportedMethod{{Name: "a"}, {Name: "a"}}},
		}, "twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod := NewModule("bad")
			mod.Imports = tc.imports
			err := ValidateImports(mod)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ValidateImports = %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
}

// TestDecodeRejectsInvalidImportTable: a byte stream whose import table is
// structurally broken must fail Decode, not surface later at link time.
func TestDecodeRejectsInvalidImportTable(t *testing.T) {
	mod := importedModule(t)
	mod.Imports[1].Hash = mod.Imports[0].Hash // duplicate → invalid
	data := encodeUnchecked(mod)
	if _, err := Decode(data); err == nil {
		t.Fatal("Decode accepted a duplicate import hash")
	}
}

// encodeUnchecked re-encodes a module exactly like Encode; it exists so the
// invalid-table test is explicit that no validation happens on this path.
func encodeUnchecked(mod *Module) []byte { return Encode(mod) }
