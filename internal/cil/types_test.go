package cil

import "testing"

func TestKindSize(t *testing.T) {
	cases := []struct {
		k    Kind
		size int
	}{
		{Void, 0}, {Bool, 1}, {I8, 1}, {U8, 1}, {I16, 2}, {U16, 2},
		{I32, 4}, {U32, 4}, {I64, 8}, {U64, 8}, {F32, 4}, {F64, 8},
		{Ref, 4}, {Vec, 16},
	}
	for _, c := range cases {
		if got := c.k.Size(); got != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.k, got, c.size)
		}
	}
}

func TestKindLanes(t *testing.T) {
	cases := []struct {
		k     Kind
		lanes int
	}{
		{U8, 16}, {I8, 16}, {U16, 8}, {I16, 8}, {I32, 4}, {U32, 4},
		{F32, 4}, {I64, 2}, {U64, 2}, {F64, 2}, {Ref, 0}, {Void, 0}, {Bool, 0},
	}
	for _, c := range cases {
		if got := c.k.Lanes(); got != c.lanes {
			t.Errorf("%s.Lanes() = %d, want %d", c.k, got, c.lanes)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !I8.IsSigned() || U8.IsSigned() || F32.IsSigned() {
		t.Error("IsSigned misclassifies kinds")
	}
	if !F32.IsFloat() || !F64.IsFloat() || I32.IsFloat() {
		t.Error("IsFloat misclassifies kinds")
	}
	if !U16.IsInteger() || F64.IsInteger() || Ref.IsInteger() {
		t.Error("IsInteger misclassifies kinds")
	}
	if !F64.IsNumeric() || !I64.IsNumeric() || Ref.IsNumeric() || Void.IsNumeric() {
		t.Error("IsNumeric misclassifies kinds")
	}
}

func TestStackKind(t *testing.T) {
	cases := []struct{ in, want Kind }{
		{Bool, I32}, {I8, I32}, {I16, I32}, {I32, I32},
		{U8, U32}, {U16, U32}, {U32, U32},
		{I64, I64}, {U64, U64}, {F32, F32}, {F64, F64}, {Vec, Vec}, {Ref, Ref},
	}
	for _, c := range cases {
		if got := c.in.StackKind(); got != c.want {
			t.Errorf("%s.StackKind() = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if got := Array(U8).String(); got != "u8[]" {
		t.Errorf("Array(U8).String() = %q, want %q", got, "u8[]")
	}
	if got := Scalar(F64).String(); got != "f64" {
		t.Errorf("Scalar(F64).String() = %q, want %q", got, "f64")
	}
	if !Array(I32).IsArray() || Scalar(I32).IsArray() {
		t.Error("IsArray misclassifies types")
	}
}

func TestReduceKinds(t *testing.T) {
	if ReduceAddKind(U8) != U64 || ReduceAddKind(I16) != I64 {
		t.Error("integer reductions must widen to 64-bit accumulators")
	}
	if ReduceAddKind(F32) != F32 || ReduceAddKind(F64) != F64 {
		t.Error("float reductions keep their precision")
	}
	if ReduceMinMaxKind(U8) != U32 || ReduceMinMaxKind(F64) != F64 {
		t.Error("min/max reductions produce the element stack kind")
	}
	if ReduceKind(VRedAdd, U8) != U64 || ReduceKind(VRedMax, U8) != U32 {
		t.Error("ReduceKind dispatches on opcode")
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !Br.IsBranch() || !BrTrue.IsBranch() || Ret.IsBranch() {
		t.Error("IsBranch misclassifies opcodes")
	}
	if !BrTrue.IsConditionalBranch() || Br.IsConditionalBranch() {
		t.Error("IsConditionalBranch misclassifies opcodes")
	}
	if !Ret.IsTerminator() || !Br.IsTerminator() || Add.IsTerminator() {
		t.Error("IsTerminator misclassifies opcodes")
	}
	if !VLoad.IsVector() || !VRedMin.IsVector() || Add.IsVector() {
		t.Error("IsVector misclassifies opcodes")
	}
	if !Add.IsBinaryArith() || Neg.IsBinaryArith() || CmpEq.IsBinaryArith() {
		t.Error("IsBinaryArith misclassifies opcodes")
	}
	if !CmpLt.IsCompare() || Add.IsCompare() {
		t.Error("IsCompare misclassifies opcodes")
	}
	if Opcode(200).Valid() || !Nop.Valid() {
		t.Error("Valid misclassifies opcodes")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: LdcI, Kind: I32, Int: 7}, "ldc.i.i32 7"},
		{Instr{Op: LdcF, Kind: F64, Float: 1.5}, "ldc.f.f64 1.5"},
		{Instr{Op: LdLoc, Int: 3}, "ldloc 3"},
		{Instr{Op: Add, Kind: F64}, "add.f64"},
		{Instr{Op: Br, Target: 12}, "br @12"},
		{Instr{Op: Call, Str: "f"}, "call f"},
		{Instr{Op: Ret}, "ret"},
		{Instr{Op: VRedMax, Kind: U8}, "vredmax.u8"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Instr.String() = %q, want %q", got, c.want)
		}
	}
}
