package cil

import (
	"strings"
	"testing"
)

// buildAddMethod builds: func add(a, b i32) i32 { return a + b }
func buildAddMethod(t *testing.T) *Method {
	t.Helper()
	b := NewMethodBuilder("add", []Type{Scalar(I32), Scalar(I32)}, Scalar(I32))
	b.LoadArg(0).LoadArg(1).OpK(Add, I32).Return()
	m, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return m
}

// buildSumLoop builds: func sum(a i32[], n i32) i32 { s=0; for i=0;i<n;i++ s+=a[i]; return s }
func buildSumLoop(t testing.TB) *Method {
	b := NewMethodBuilder("sum", []Type{Array(I32), Scalar(I32)}, Scalar(I32))
	s := b.AddLocal(Scalar(I32))
	i := b.AddLocal(Scalar(I32))
	head := b.NewLabel()
	exit := b.NewLabel()
	b.ConstI(I32, 0).StoreLocal(s)
	b.ConstI(I32, 0).StoreLocal(i)
	b.Bind(head)
	b.LoadLocal(i).LoadArg(1).OpK(CmpLt, I32).BranchFalse(exit)
	b.LoadLocal(s).LoadArg(0).LoadLocal(i).OpK(LdElem, I32).OpK(Add, I32).StoreLocal(s)
	b.LoadLocal(i).ConstI(I32, 1).OpK(Add, I32).StoreLocal(i)
	b.Branch(head)
	b.Bind(exit)
	b.LoadLocal(s).Return()
	m, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return m
}

func TestBuilderResolvesLabels(t *testing.T) {
	m := buildSumLoop(t)
	var sawBranch bool
	for _, in := range m.Code {
		if in.Op.IsBranch() {
			sawBranch = true
			if in.Target < 0 || in.Target >= len(m.Code) {
				t.Errorf("unresolved or out-of-range branch target %d", in.Target)
			}
		}
	}
	if !sawBranch {
		t.Fatal("expected at least one branch in the loop method")
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	b := NewMethodBuilder("bad", nil, Scalar(Void))
	l := b.NewLabel()
	b.Branch(l)
	b.Return()
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish should fail with an unbound label")
	}
}

func TestBuilderFinishTwice(t *testing.T) {
	b := NewMethodBuilder("m", nil, Scalar(Void))
	b.Return()
	if _, err := b.Finish(); err != nil {
		t.Fatalf("first Finish: %v", err)
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("second Finish should fail")
	}
}

func TestModuleAddAndLookup(t *testing.T) {
	mod := NewModule("m")
	add := buildAddMethod(t)
	if err := mod.AddMethod(add); err != nil {
		t.Fatalf("AddMethod: %v", err)
	}
	if err := mod.AddMethod(buildAddMethod(t)); err == nil {
		t.Fatal("duplicate method name should be rejected")
	}
	if mod.Method("add") != add {
		t.Error("Method lookup failed")
	}
	if mod.Method("missing") != nil {
		t.Error("Method lookup should return nil for unknown names")
	}
	names := mod.MethodNames()
	if len(names) != 1 || names[0] != "add" {
		t.Errorf("MethodNames = %v", names)
	}
}

func TestAnnotations(t *testing.T) {
	m := buildAddMethod(t)
	m.SetAnnotation("k", []byte{1, 2, 3})
	v, ok := m.Annotation("k")
	if !ok || len(v) != 3 || v[2] != 3 {
		t.Fatalf("Annotation round trip failed: %v %v", v, ok)
	}
	if _, ok := m.Annotation("missing"); ok {
		t.Error("missing annotation should not be found")
	}
	m.SetAnnotation("a", nil)
	keys := m.AnnotationKeys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "k" {
		t.Errorf("AnnotationKeys = %v", keys)
	}

	mod := NewModule("m")
	mod.SetAnnotation("mk", []byte("x"))
	if v, ok := mod.Annotation("mk"); !ok || string(v) != "x" {
		t.Error("module annotation round trip failed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	mod := NewModule("m")
	m := buildAddMethod(t)
	m.SetAnnotation("k", []byte{9})
	if err := mod.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	mod.SetAnnotation("top", []byte{1})

	c := mod.Clone()
	c.Methods[0].Code[0].Int = 99
	c.Methods[0].Annotations["k"][0] = 42
	c.Annotations["top"][0] = 42
	if m.Code[0].Int == 99 {
		t.Error("Clone shares instruction storage")
	}
	if m.Annotations["k"][0] == 42 {
		t.Error("Clone shares method annotation storage")
	}
	if mod.Annotations["top"][0] == 42 {
		t.Error("Clone shares module annotation storage")
	}
}

func TestStripAnnotations(t *testing.T) {
	mod := NewModule("m")
	m := buildAddMethod(t)
	m.SetAnnotation("k", []byte{9})
	if err := mod.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	mod.SetAnnotation("top", []byte{1})
	s := mod.StripAnnotations()
	if len(s.Annotations) != 0 || len(s.Methods[0].Annotations) != 0 {
		t.Error("StripAnnotations left annotations behind")
	}
	if len(mod.Annotations) != 1 || len(mod.Methods[0].Annotations) != 1 {
		t.Error("StripAnnotations modified the original")
	}
}

func TestDisassembleContainsStructure(t *testing.T) {
	mod := NewModule("demo")
	mod.SetAnnotation("module-key", []byte{1, 2})
	m := buildSumLoop(t)
	m.SetAnnotation("vec", []byte{0})
	if err := mod.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	if err := Verify(mod); err != nil {
		t.Fatal(err)
	}
	out := Disassemble(mod)
	for _, want := range []string{"module demo", "method sum(i32[], i32) i32", ".locals", ".maxstack", ".annotation vec", ".annotation module-key", "ldelem.i32", "br @"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
