package cil

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleModule(t testing.TB) *Module {
	mod := NewModule("sample")
	mod.SetAnnotation("hwreq", []byte{1, 2, 3})

	b := NewMethodBuilder("saxpy", []Type{Array(F64), Array(F64), Scalar(F64), Scalar(I32)}, Scalar(Void))
	i := b.AddLocal(Scalar(I32))
	head := b.NewLabel()
	exit := b.NewLabel()
	b.ConstI(I32, 0).StoreLocal(i)
	b.Bind(head)
	b.LoadLocal(i).LoadArg(3).OpK(CmpLt, I32).BranchFalse(exit)
	b.LoadArg(0).LoadLocal(i)
	b.LoadArg(1).LoadLocal(i).OpK(LdElem, F64).LoadArg(2).OpK(Mul, F64)
	b.LoadArg(0).LoadLocal(i).OpK(LdElem, F64).OpK(Add, F64)
	b.OpK(StElem, F64)
	b.LoadLocal(i).ConstI(I32, 1).OpK(Add, I32).StoreLocal(i)
	b.Branch(head)
	b.Bind(exit)
	b.Return()
	m := b.MustFinish()
	m.SetAnnotation("vectorized", []byte("loop@2 kind=f64"))
	if err := mod.AddMethod(m); err != nil {
		t.Fatal(err)
	}

	b2 := NewMethodBuilder("const_pi", nil, Scalar(F64))
	b2.ConstF(F64, 3.14159).Return()
	if err := mod.AddMethod(b2.MustFinish()); err != nil {
		t.Fatal(err)
	}
	if err := Verify(mod); err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	mod := sampleModule(t)
	data := Encode(mod)
	if len(data) == 0 {
		t.Fatal("Encode produced no bytes")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(mod, got) {
		t.Errorf("round trip mismatch:\noriginal: %+v\ndecoded:  %+v", mod, got)
	}
	if EncodedSize(mod) != len(data) {
		t.Error("EncodedSize disagrees with Encode")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	mod := sampleModule(t)
	a := Encode(mod)
	b := Encode(mod)
	if !bytes.Equal(a, b) {
		t.Error("Encode is not deterministic for the same module")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	mod := sampleModule(t)
	data := Encode(mod)

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), data[4:]...),
		"bad version": append(append([]byte{}, data[:4]...), append([]byte{99}, data[5:]...)...),
		"truncated":   data[:len(data)/2],
		"trailing":    append(append([]byte{}, data...), 0xFF),
	}
	for name, corrupt := range cases {
		if _, err := Decode(corrupt); err == nil {
			t.Errorf("Decode accepted %s input", name)
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	mod := NewModule("m")
	m := NewMethod("f", nil, Scalar(Void))
	m.Code = []Instr{{Op: Ret}}
	if err := mod.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	data := Encode(mod)
	// The last byte of the stream is the ret opcode (untyped opcodes carry
	// no kind byte).
	data[len(data)-1] = byte(numOpcodes) + 10
	if _, err := Decode(data); err == nil {
		t.Error("Decode accepted an invalid opcode")
	}
}

// randomModule builds a structurally valid (but semantically arbitrary)
// module from random data, for the encode/decode property test.
func randomModule(r *rand.Rand) *Module {
	kinds := []Kind{I8, U8, I16, U16, I32, U32, I64, U64, F32, F64}
	mod := NewModule(randName(r, "mod"))
	nAnn := r.Intn(4)
	for i := 0; i < nAnn; i++ {
		mod.SetAnnotation(randName(r, "a"), randBytes(r))
	}
	nMethods := 1 + r.Intn(4)
	for mi := 0; mi < nMethods; mi++ {
		var params []Type
		for i := r.Intn(4); i > 0; i-- {
			if r.Intn(3) == 0 {
				params = append(params, Array(kinds[r.Intn(len(kinds))]))
			} else {
				params = append(params, Scalar(kinds[r.Intn(len(kinds))]))
			}
		}
		m := NewMethod(randName(r, "m"), params, Scalar(kinds[r.Intn(len(kinds))]))
		for i := r.Intn(5); i > 0; i-- {
			m.AddLocal(Scalar(kinds[r.Intn(len(kinds))]))
		}
		for i := r.Intn(3); i > 0; i-- {
			m.SetAnnotation(randName(r, "k"), randBytes(r))
		}
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			in := Instr{Op: Opcode(r.Intn(int(numOpcodes)))}
			if opNeedsKind(in.Op) {
				in.Kind = kinds[r.Intn(len(kinds))]
			}
			switch in.Op {
			case LdcI, LdArg, StArg, LdLoc, StLoc:
				in.Int = r.Int63n(1 << 40)
				if r.Intn(2) == 0 {
					in.Int = -in.Int
				}
			case LdcF:
				in.Float = r.NormFloat64() * 1e6
			case Br, BrTrue, BrFalse:
				in.Target = r.Intn(n)
			case Call:
				in.Str = randName(r, "callee")
			}
			m.Code = append(m.Code, in)
		}
		m.MaxStack = r.Intn(16)
		// AddMethod only fails on duplicate names; regenerate in that case.
		if mod.Method(m.Name) != nil {
			m.Name += "_dup"
		}
		if err := mod.AddMethod(m); err != nil {
			panic(err)
		}
	}
	return mod
}

func randName(r *rand.Rand, prefix string) string {
	const letters = "abcdefghijklmnopqrstuvwxyz_0123456789"
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return prefix + "_" + string(b)
}

func randBytes(r *rand.Rand) []byte {
	b := make([]byte, r.Intn(24))
	r.Read(b)
	return b
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mod := randomModule(r)
		decoded, err := Decode(Encode(mod))
		if err != nil {
			t.Logf("seed %d: decode error: %v", seed, err)
			return false
		}
		return reflect.DeepEqual(mod, decoded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
