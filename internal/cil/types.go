// Package cil defines the portable, target-independent bytecode format used
// as the processor-virtualization layer of the split compiler.
//
// The format is modeled after the ECMA-335 Common Language Infrastructure the
// paper builds on: a verifiable stack machine with typed instructions, typed
// locals and arguments, array objects, and free-form metadata annotations
// attached to methods and modules. Annotations are the vehicle of split
// compilation: the offline compiler stores analysis results in them and the
// online (JIT) compiler consumes them; they are never required for
// correctness.
//
// The package also provides a compact binary encoding (Encode/Decode), a
// verifier that type-checks the evaluation stack across all control-flow
// paths (Verify), a structured builder (NewMethodBuilder), and a
// disassembler (Disassemble).
package cil

import "fmt"

// Kind identifies a primitive value kind manipulated by the evaluation stack.
type Kind uint8

// Primitive kinds. Vec is the portable 16-byte virtual vector used by the
// split vectorizer's builtins; Ref is a typed array reference.
const (
	Void Kind = iota
	Bool
	I8
	U8
	I16
	U16
	I32
	U32
	I64
	U64
	F32
	F64
	Ref
	Vec
)

// VecBytes is the size in bytes of the portable virtual vector. It matches
// the narrowest common denominator of the SIMD extensions the paper targets
// (SSE, AltiVec, VIS all provide at least 128-bit registers).
const VecBytes = 16

var kindNames = [...]string{
	Void: "void",
	Bool: "bool",
	I8:   "i8",
	U8:   "u8",
	I16:  "i16",
	U16:  "u16",
	I32:  "i32",
	U32:  "u32",
	I64:  "i64",
	U64:  "u64",
	F32:  "f32",
	F64:  "f64",
	Ref:  "ref",
	Vec:  "vec",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Size returns the storage size of the kind in bytes. Void has size zero and
// Ref has the size of a machine word on the simulated 32-bit targets.
func (k Kind) Size() int {
	switch k {
	case Void:
		return 0
	case Bool, I8, U8:
		return 1
	case I16, U16:
		return 2
	case I32, U32, F32, Ref:
		return 4
	case I64, U64, F64:
		return 8
	case Vec:
		return VecBytes
	}
	return 0
}

// IsInteger reports whether the kind is an integer (including Bool).
func (k Kind) IsInteger() bool {
	switch k {
	case Bool, I8, U8, I16, U16, I32, U32, I64, U64:
		return true
	}
	return false
}

// IsFloat reports whether the kind is a floating-point kind.
func (k Kind) IsFloat() bool { return k == F32 || k == F64 }

// IsSigned reports whether the kind is a signed integer kind.
func (k Kind) IsSigned() bool {
	switch k {
	case I8, I16, I32, I64:
		return true
	}
	return false
}

// IsNumeric reports whether the kind is an integer or floating-point kind.
func (k Kind) IsNumeric() bool { return k.IsInteger() || k.IsFloat() }

// Lanes returns the number of elements of kind k that fit in the portable
// virtual vector, or 0 if k cannot be a vector element.
func (k Kind) Lanes() int {
	if !k.IsNumeric() || k == Bool {
		return 0
	}
	return VecBytes / k.Size()
}

// StackKind returns the kind a value of kind k has once loaded on the
// evaluation stack. Sub-word integers are widened to their 32-bit
// representative, mirroring the CLI evaluation-stack rules.
func (k Kind) StackKind() Kind {
	switch k {
	case Bool, I8, I16, I32:
		return I32
	case U8, U16, U32:
		return U32
	default:
		return k
	}
}

// Type describes the type of an argument, local variable or return value.
// For Ref types, Elem is the element kind of the referenced array.
type Type struct {
	Kind Kind
	Elem Kind
}

// Scalar returns a Type with the given scalar kind.
func Scalar(k Kind) Type { return Type{Kind: k} }

// Array returns a Ref Type whose elements have kind elem.
func Array(elem Kind) Type { return Type{Kind: Ref, Elem: elem} }

func (t Type) String() string {
	if t.Kind == Ref {
		return t.Elem.String() + "[]"
	}
	return t.Kind.String()
}

// IsArray reports whether the type is an array reference.
func (t Type) IsArray() bool { return t.Kind == Ref }
