package cil

import "fmt"

// Opcode identifies a bytecode operation. The instruction set is stack based:
// operands are popped from and results pushed onto a typed evaluation stack.
type Opcode uint8

// Core opcodes.
const (
	Nop Opcode = iota

	// Constants and variable access.
	LdcI  // push integer constant Instr.Int with kind Instr.Kind
	LdcF  // push float constant Instr.Float with kind Instr.Kind
	LdArg // push argument Instr.Int
	StArg // pop into argument Instr.Int
	LdLoc // push local Instr.Int
	StLoc // pop into local Instr.Int

	// Stack manipulation.
	Dup // duplicate top of stack
	Pop // discard top of stack

	// Arithmetic and bitwise, operating on two operands of kind Instr.Kind.
	Add
	Sub
	Mul
	Div
	Rem
	Neg // unary
	And
	Or
	Xor
	Shl
	Shr
	Not // unary bitwise complement

	// Conversion of the top of stack to kind Instr.Kind.
	Conv

	// Comparisons pop two operands of kind Instr.Kind and push a Bool (I32).
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe

	// Control flow. Branch targets are instruction indices (Instr.Target).
	Br
	BrTrue
	BrFalse
	Call // call method Instr.Str
	Ret

	// Arrays of element kind Instr.Kind.
	NewArr // [n] -> [arr]
	LdLen  // [arr] -> [len]
	LdElem // [arr, idx] -> [value]
	StElem // [arr, idx, value] -> []

	// Portable vector builtins of element kind Instr.Kind. These are the
	// "set of portable builtins" of the paper's split vectorizer: the
	// offline compiler emits them, the online compiler either maps them to
	// the target SIMD unit or scalarizes them.
	VLoad   // [arr, idx] -> [vec]     loads Lanes() consecutive elements
	VStore  // [arr, idx, vec] -> []   stores Lanes() consecutive elements
	VAdd    // [vec, vec] -> [vec]
	VSub    // [vec, vec] -> [vec]
	VMul    // [vec, vec] -> [vec]
	VMax    // [vec, vec] -> [vec]
	VMin    // [vec, vec] -> [vec]
	VSplat  // [scalar] -> [vec]       broadcast
	VRedAdd // [vec] -> [scalar]       horizontal sum (widened accumulator)
	VRedMax // [vec] -> [scalar]       horizontal max
	VRedMin // [vec] -> [scalar]       horizontal min

	numOpcodes // sentinel, keep last
)

var opcodeNames = [...]string{
	Nop:     "nop",
	LdcI:    "ldc.i",
	LdcF:    "ldc.f",
	LdArg:   "ldarg",
	StArg:   "starg",
	LdLoc:   "ldloc",
	StLoc:   "stloc",
	Dup:     "dup",
	Pop:     "pop",
	Add:     "add",
	Sub:     "sub",
	Mul:     "mul",
	Div:     "div",
	Rem:     "rem",
	Neg:     "neg",
	And:     "and",
	Or:      "or",
	Xor:     "xor",
	Shl:     "shl",
	Shr:     "shr",
	Not:     "not",
	Conv:    "conv",
	CmpEq:   "ceq",
	CmpNe:   "cne",
	CmpLt:   "clt",
	CmpLe:   "cle",
	CmpGt:   "cgt",
	CmpGe:   "cge",
	Br:      "br",
	BrTrue:  "brtrue",
	BrFalse: "brfalse",
	Call:    "call",
	Ret:     "ret",
	NewArr:  "newarr",
	LdLen:   "ldlen",
	LdElem:  "ldelem",
	StElem:  "stelem",
	VLoad:   "vload",
	VStore:  "vstore",
	VAdd:    "vadd",
	VSub:    "vsub",
	VMul:    "vmul",
	VMax:    "vmax",
	VMin:    "vmin",
	VSplat:  "vsplat",
	VRedAdd: "vredadd",
	VRedMax: "vredmax",
	VRedMin: "vredmin",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// IsBranch reports whether the opcode transfers control to Instr.Target.
func (op Opcode) IsBranch() bool { return op == Br || op == BrTrue || op == BrFalse }

// IsConditionalBranch reports whether the opcode is a conditional branch.
func (op Opcode) IsConditionalBranch() bool { return op == BrTrue || op == BrFalse }

// IsTerminator reports whether the opcode ends a basic block.
func (op Opcode) IsTerminator() bool { return op.IsBranch() || op == Ret }

// IsVector reports whether the opcode is one of the portable vector builtins.
func (op Opcode) IsVector() bool { return op >= VLoad && op <= VRedMin }

// IsBinaryArith reports whether the opcode is a two-operand arithmetic or
// bitwise operation.
func (op Opcode) IsBinaryArith() bool {
	switch op {
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr:
		return true
	}
	return false
}

// IsCompare reports whether the opcode is a comparison.
func (op Opcode) IsCompare() bool { return op >= CmpEq && op <= CmpGe }

// Instr is a single bytecode instruction. The meaning of the operand fields
// depends on the opcode; unused fields are zero.
type Instr struct {
	Op     Opcode
	Kind   Kind    // element/operand kind for typed opcodes
	Int    int64   // integer immediate, arg/local index
	Float  float64 // floating-point immediate
	Str    string  // callee name for Call
	Target int     // branch target (instruction index)
}

func (in Instr) String() string {
	switch in.Op {
	case LdcI:
		return fmt.Sprintf("%s.%s %d", in.Op, in.Kind, in.Int)
	case LdcF:
		return fmt.Sprintf("%s.%s %g", in.Op, in.Kind, in.Float)
	case LdArg, StArg, LdLoc, StLoc:
		return fmt.Sprintf("%s %d", in.Op, in.Int)
	case Add, Sub, Mul, Div, Rem, Neg, And, Or, Xor, Shl, Shr, Not,
		Conv, CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
		NewArr, LdElem, StElem,
		VLoad, VStore, VAdd, VSub, VMul, VMax, VMin, VSplat, VRedAdd, VRedMax, VRedMin:
		return fmt.Sprintf("%s.%s", in.Op, in.Kind)
	case Br, BrTrue, BrFalse:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case Call:
		return fmt.Sprintf("%s %s", in.Op, in.Str)
	default:
		return in.Op.String()
	}
}
