package cil

// ReduceAddKind returns the kind of the scalar produced by VRedAdd on a
// vector with elements of kind k. Integer elements accumulate into a 64-bit
// integer so that, for example, summing byte elements over long arrays does
// not overflow; floating-point elements keep their own precision.
func ReduceAddKind(k Kind) Kind {
	if k.IsFloat() {
		return k
	}
	if k.IsSigned() {
		return I64
	}
	return U64
}

// ReduceMinMaxKind returns the kind of the scalar produced by VRedMax and
// VRedMin on a vector with elements of kind k: the element's natural
// evaluation-stack kind.
func ReduceMinMaxKind(k Kind) Kind { return k.StackKind() }

// ReduceKind returns the scalar result kind of any vector reduction opcode.
func ReduceKind(op Opcode, k Kind) Kind {
	if op == VRedAdd {
		return ReduceAddKind(k)
	}
	return ReduceMinMaxKind(k)
}
