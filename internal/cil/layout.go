package cil

// StackLayouts verifies the method and returns, for every instruction, the
// types on the evaluation stack at its entry. Unreachable instructions have
// a nil layout. Deployment-side compilers use this to reconstruct the
// abstract stack at control-flow join points without re-deriving the
// verifier's analysis themselves.
func StackLayouts(mod *Module, m *Method) ([][]Type, error) {
	v := &verifier{mod: mod, m: m}
	if err := v.run(); err != nil {
		return nil, err
	}
	return v.states, nil
}
