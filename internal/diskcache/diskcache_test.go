package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("native image bytes")
	s.Put("k1", payload)
	got, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Entries != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEntriesAreImmutable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("first"))
	s.Put("k", []byte("second")) // must be a no-op
	got, ok := s.Get("k")
	if !ok || string(got) != "first" {
		t.Fatalf("entry was rewritten: %q, %v", got, ok)
	}
	if st := s.Stats(); st.Writes != 1 {
		t.Fatalf("writes = %d, want 1", st.Writes)
	}
}

func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("aaa"))
	s.Put("b", []byte("bbbb"))

	// A fresh store over the same directory — the restart path — must see
	// both entries without any manifest.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Entries != 2 || st.Bytes != 7 {
		t.Fatalf("recovered stats = %+v, want 2 entries / 7 bytes", st)
	}
	if got, ok := s2.Get("b"); !ok || string(got) != "bbbb" {
		t.Fatalf("recovered Get = %q, %v", got, ok)
	}
}

func TestOpenSkipsGarbageAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("good", []byte("payload"))

	// Simulate a crashed writer and foreign files sharing the volume.
	if err := os.WriteFile(filepath.Join(dir, "crash-123.tmp"), []byte("half a wri"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.svdc"), []byte("SV"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Entries != 1 || st.Corrupt != 1 {
		t.Fatalf("recovered stats = %+v, want 1 entry, 1 corrupt", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "crash-123.tmp")); !os.IsNotExist(err) {
		t.Error("crashed temp file survived Open")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Error("foreign file was removed by Open")
	}
}

func TestTruncatedEntryIsAMissNeverAnError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("some longer payload to truncate"))
	path := filepath.Join(dir, "k.svdc")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); ok {
		t.Fatalf("truncated entry returned %q", got)
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats after truncation = %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry was not removed")
	}
}

func TestBitFlippedPayloadIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("payload under checksum"))
	path := filepath.Join(dir, "k.svdc")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("bit-flipped entry validated")
	}
	// The header still parses, so this corruption is only caught by the
	// payload checksum — and must still degrade to a miss.
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k%d", i%5)
				s.Put(key, []byte(key+"-payload"))
				if got, ok := s.Get(key); ok && string(got) != key+"-payload" {
					t.Errorf("goroutine %d: Get(%s) = %q", g, key, got)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 5 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSharedVolumeVisibility(t *testing.T) {
	// Two stores over one directory stand for two replicas sharing a cache
	// volume: an entry written by one must be readable by the other without
	// reopening.
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Put("shared", []byte("written by a"))
	if got, ok := b.Get("shared"); !ok || string(got) != "written by a" {
		t.Fatalf("replica b sees %q, %v", got, ok)
	}
}
