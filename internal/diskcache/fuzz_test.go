package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// frame builds a valid SVDC entry file image for payload, mirroring Put.
func frame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic)
	buf[4] = formatVersion
	binary.LittleEndian.PutUint64(buf[5:13], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[13:], sum[:])
	copy(buf[headerSize:], payload)
	return buf
}

// FuzzDiskCacheFrame throws hostile bytes at the SVDC framing parser: it
// must never panic, never allocate from the declared length, and a frame it
// accepts must checksum-verify. The seeds reproduce the corruption classes
// the PR 7 tests pinned by hand (truncation, bit flips, version skew, lying
// length fields).
func FuzzDiskCacheFrame(f *testing.F) {
	valid := frame([]byte("compiled image bytes"))
	f.Add(append([]byte(nil), valid...))
	f.Add(valid[:len(valid)-1]) // truncated payload
	f.Add(valid[:headerSize])   // header only, zero payload claimed wrong
	f.Add(valid[:headerSize-3]) // torn header
	f.Add([]byte{})             // empty file
	f.Add([]byte("SVDC"))       // magic only
	f.Add(frame(nil))           // valid empty payload
	bitflip := append([]byte(nil), valid...)
	bitflip[len(bitflip)-4] ^= 0x20 // payload bit flip
	f.Add(bitflip)
	badver := append([]byte(nil), valid...)
	badver[4] = 99 // version from the future
	f.Add(badver)
	liar := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(liar[5:13], 1<<60) // 1 EiB declared length
	f.Add(liar)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, ok := decodeFrame(data)
		if ok {
			// Anything the parser accepts must actually verify.
			if uint64(len(data)-headerSize) != binary.LittleEndian.Uint64(data[5:13]) {
				t.Fatal("accepted frame with lying length field")
			}
			sum := sha256.Sum256(payload)
			if !bytes.Equal(sum[:], data[13:13+sha256.Size]) {
				t.Fatal("accepted frame with bad checksum")
			}
		}

		// End to end: the same bytes as an on-disk entry must be either a
		// clean hit with the identical payload or a clean miss — never a
		// panic, never an error surfaced to the caller.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "k"+entrySuffix), data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open over fuzzed entry: %v", err)
		}
		got, hit := s.Get("k")
		if hit != ok {
			t.Fatalf("Get hit=%v but decodeFrame ok=%v", hit, ok)
		}
		if hit && !bytes.Equal(got, payload) {
			t.Fatal("Get returned different payload than decodeFrame")
		}
	})
}
