// Package diskcache is a persistent content-addressed blob store: the
// on-disk half of the engine's code cache. Each entry is one immutable file
// named by its cache key, written atomically (temp file + rename) and framed
// with a header and a SHA-256 payload checksum, so a store directory can be
// shared between replicas over a common volume and survives crashes without
// a manifest — Open simply scans the directory and keeps what validates.
//
// The integrity contract mirrors the annotation-negotiation policy of the
// rest of the toolchain: degrade, don't fail. A truncated, bit-flipped or
// half-written entry is reported as a miss (and removed, best-effort), never
// as an error — the caller recompiles, exactly as if the entry were absent.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/faultinject"
)

// File framing. The payload checksum lives in the header (fixed offset), so
// a truncated payload — the typical crash artifact — fails validation
// without any trailing-bytes heuristics.
//
//	magic   "SVDC" (4 bytes)
//	u8      format version (currently 1)
//	u64le   payload length
//	32 B    SHA-256 of the payload
//	payload
const (
	magic         = "SVDC"
	formatVersion = 1
	headerSize    = 4 + 1 + 8 + sha256.Size
	// entrySuffix marks completed entries; temp files in flight use
	// tmpSuffix and are never considered part of the store.
	entrySuffix = ".svdc"
	tmpSuffix   = ".tmp"
)

// Stats counts the store's traffic since Open.
type Stats struct {
	// Hits and Misses count Get outcomes (a corrupt entry is a miss).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Writes counts successful Puts (duplicate keys are skipped, not
	// rewritten — entries are immutable).
	Writes int64 `json:"writes"`
	// Corrupt counts entries rejected by the header or checksum check, at
	// Open or on read.
	Corrupt int64 `json:"corrupt"`
	// Errors counts filesystem failures (full disk, permissions) that made
	// a Put or Get degrade to a no-op.
	Errors int64 `json:"errors"`
	// Entries is the number of valid entries currently indexed.
	Entries int `json:"entries"`
	// Bytes is the payload size of the indexed entries.
	Bytes int64 `json:"bytes"`
}

// Store is one cache directory. It is safe for concurrent use by multiple
// goroutines; multiple processes may share a directory (writes are atomic
// renames and entries are immutable, so readers never observe torn state).
type Store struct {
	dir string

	mu    sync.Mutex
	index map[string]int64 // key -> payload bytes, for known-valid entries
	stats Stats
}

// Open prepares a store rooted at dir, creating the directory if needed, and
// recovers the index by scanning: every completed entry file has its header
// validated (magic, version, declared length against the file size) and is
// indexed; anything that does not validate — foreign files, torn writes,
// truncations — is skipped, and leftover temp files from a crashed writer
// are removed. Payload checksums are verified lazily on Get, so opening a
// large shared volume stays cheap.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	s := &Store{dir: dir, index: make(map[string]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(name, tmpSuffix) {
			// A writer crashed mid-Put; the rename never happened, so the
			// temp file is garbage by construction.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		key, ok := strings.CutSuffix(name, entrySuffix)
		if !ok || key == "" {
			continue
		}
		n, err := validateHeader(filepath.Join(dir, name))
		if err != nil {
			s.stats.Corrupt++
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		s.index[key] = n
		s.stats.Bytes += n
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validateHeader checks magic, version and that the file holds exactly the
// declared payload, returning the payload length.
func validateHeader(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, errors.New("diskcache: short header")
	}
	if string(hdr[:4]) != magic {
		return 0, errors.New("diskcache: bad magic")
	}
	if hdr[4] != formatVersion {
		return 0, fmt.Errorf("diskcache: unknown format version %d", hdr[4])
	}
	n := binary.LittleEndian.Uint64(hdr[5:13])
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if fi.Size() != int64(headerSize)+int64(n) {
		return 0, errors.New("diskcache: declared length does not match file size")
	}
	return int64(n), nil
}

// Get returns the payload stored under key. ok is false on a miss — absent,
// torn, truncated or bit-flipped entries all count as misses (corrupt files
// are removed, best-effort), so the caller's only fallback path is
// "recompute"; Get never returns an error.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	path := s.path(key)
	fault := faultinject.At("diskcache.get")
	if fault != nil {
		if err := fault.Apply(); err != nil {
			// Injected I/O failure: degrade exactly like a real one.
			s.miss(key, false, false)
			return nil, false
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		s.miss(key, false, os.IsNotExist(err))
		return nil, false
	}
	if fault != nil {
		fault.Corrupt(data)
	}
	payload, ok = decodeFrame(data)
	if !ok {
		s.drop(key, path)
		return nil, false
	}
	n := uint64(len(payload))
	s.mu.Lock()
	s.stats.Hits++
	if _, known := s.index[key]; !known {
		// Another replica sharing the volume wrote it after we opened.
		s.index[key] = int64(n)
		s.stats.Bytes += int64(n)
	}
	s.mu.Unlock()
	return payload, true
}

// decodeFrame validates the SVDC framing of one entry file's bytes and
// returns the payload. It only ever slices data — no allocation is sized
// from the (attacker-controlled) declared length, so hostile frames cannot
// over-allocate. FuzzDiskCacheFrame drives this parser directly.
func decodeFrame(data []byte) ([]byte, bool) {
	if len(data) < headerSize || string(data[:4]) != magic || data[4] != formatVersion {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[5:13])
	if uint64(len(data)-headerSize) != n {
		return nil, false
	}
	payload := data[headerSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[13:13+sha256.Size]) {
		return nil, false
	}
	return payload, true
}

// miss records a failed Get; notExist distinguishes plain misses from
// filesystem errors.
func (s *Store) miss(key string, corrupt, notExist bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Misses++
	if corrupt {
		s.stats.Corrupt++
	} else if !notExist {
		s.stats.Errors++
	}
	if n, known := s.index[key]; known {
		delete(s.index, key)
		s.stats.Bytes -= n
	}
}

// drop removes a corrupt entry and records the miss.
func (s *Store) drop(key, path string) {
	_ = os.Remove(path)
	s.miss(key, true, false)
}

// Put stores payload under key, atomically: the bytes are written to a temp
// file in the same directory and renamed into place, so concurrent readers
// (in this process or another sharing the volume) observe either the whole
// entry or none of it. Entries are immutable — a key that already exists is
// left untouched. Filesystem failures are counted and swallowed: a cache
// that cannot persist degrades to an in-memory cache, it does not take the
// caller down.
func (s *Store) Put(key string, payload []byte) {
	if key == "" {
		return
	}
	s.mu.Lock()
	_, exists := s.index[key]
	s.mu.Unlock()
	if exists {
		return
	}
	if f := faultinject.At("diskcache.put"); f != nil {
		if err := f.Apply(); err != nil {
			// Injected write failure: degrade to memory-only, like a full disk.
			s.fail()
			return
		}
	}
	hdr := make([]byte, headerSize, headerSize+len(payload))
	copy(hdr, magic)
	hdr[4] = formatVersion
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[13:], sum[:])

	tmp, err := os.CreateTemp(s.dir, "put-*"+tmpSuffix)
	if err != nil {
		s.fail()
		return
	}
	_, werr := tmp.Write(append(hdr, payload...))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		s.fail()
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		_ = os.Remove(tmp.Name())
		s.fail()
		return
	}
	s.mu.Lock()
	if _, known := s.index[key]; !known {
		s.index[key] = int64(len(payload))
		s.stats.Bytes += int64(len(payload))
	}
	s.stats.Writes++
	s.mu.Unlock()
}

func (s *Store) fail() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// Has reports whether the store has indexed an entry for key (without
// verifying its checksum; Get remains the source of truth).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	return st
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}
