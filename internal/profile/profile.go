// Package profile defines the runtime execution profiles that close the
// split-compilation loop: where internal/anno carries annotations the
// *offline* compiler produced for the online JIT, this package carries
// annotations the *runtime* produced about its own behavior — per-function
// invocation counts and per-branch edge counts sampled by the pre-decoded
// simulator core. A profile can promote hot functions to the tier-2
// optimizer in the machine that recorded it, and — serialized through the
// annotation envelope (anno.KeyProfile) — warm a fresh deployment of the
// same module elsewhere.
//
// Profiles are bucketed at control-flow granularity on purpose: the
// dispatch loop only touches a counter at branches and function entries, so
// straight-line code runs exactly as before and the gated simulated-cycle
// metrics are unaffected. Full per-block frequencies are reconstructed on
// demand (BlockFreqs) from the edge counts, never maintained online.
package profile

import (
	"encoding/binary"
	"fmt"

	"repro/internal/nisa"
)

// SchemaVersion is the profile payload schema this package reads and
// writes (the envelope section additionally carries the annotation schema
// version; see internal/anno).
const SchemaVersion = 1

// BranchCount is the observed outcome histogram of one branch instruction.
// For unconditional jumps NotTaken stays zero.
type BranchCount struct {
	Taken    uint64
	NotTaken uint64
}

// FuncProfile is the recorded behavior of one native function: how often it
// was entered and, for every branch instruction in pc order, how often each
// outcome occurred. Branch ordinal k counts the k-th Jump/BranchCmp of the
// function's code; the register assigner's rewrite inserts only straight-
// line spill code and never adds or removes branches, so ordinals are
// stable between a fresh translation and the final assigned code.
type FuncProfile struct {
	Name     string
	Calls    uint64
	Branches []BranchCount
}

// ModuleProfile aggregates the function profiles of one deployed module,
// sorted by function name for deterministic serialization.
type ModuleProfile struct {
	Funcs []FuncProfile
}

// Func returns the profile of the named function, or nil.
func (p *ModuleProfile) Func(name string) *FuncProfile {
	for i := range p.Funcs {
		if p.Funcs[i].Name == name {
			return &p.Funcs[i]
		}
	}
	return nil
}

// BranchOrdinals returns the number of branch instructions (Jump or
// BranchCmp) in the code — the expected length of a matching
// FuncProfile.Branches slice.
func BranchOrdinals(code []nisa.Instr) int {
	n := 0
	for i := range code {
		if code[i].Op.IsBranch() {
			n++
		}
	}
	return n
}

// BlockFreqs reconstructs the observed execution count of every
// instruction from a function's edge counts: block entries are the sum of
// incoming taken edges plus fall-through from the preceding block, seeded
// with the invocation count at pc 0. The profile must have been recorded
// over code with the same branch structure; a branch-count mismatch
// returns an error so callers can degrade to invocation counts only.
func BlockFreqs(code []nisa.Instr, fp *FuncProfile) ([]int64, error) {
	if got, want := len(fp.Branches), BranchOrdinals(code); got != want {
		return nil, fmt.Errorf("profile %s: %d branch counters for %d branches", fp.Name, got, want)
	}

	// Taken-edge counts flowing into each target pc, and block leaders.
	takenIn := make([]uint64, len(code)+1)
	leader := make([]bool, len(code)+1)
	if len(code) > 0 {
		leader[0] = true
	}
	ord := 0
	for pc := range code {
		in := &code[pc]
		if !in.Op.IsBranch() {
			if in.Op == nisa.Ret && pc+1 <= len(code) {
				leader[min(pc+1, len(code))] = true
			}
			continue
		}
		bc := fp.Branches[ord]
		ord++
		if in.Target >= 0 && in.Target <= len(code) {
			takenIn[in.Target] += bc.Taken
			leader[in.Target] = true
		}
		if pc+1 <= len(code) {
			leader[min(pc+1, len(code))] = true
		}
	}

	freqs := make([]int64, len(code))
	var cur uint64 // current block's entry count
	ord = 0
	for pc := range code {
		if leader[pc] {
			cur = takenIn[pc]
			if pc == 0 {
				cur += fp.Calls
			}
			// Fall-through from the previous instruction, unless it left
			// the block unconditionally.
			if pc > 0 {
				switch prev := &code[pc-1]; prev.Op {
				case nisa.Jump, nisa.Ret:
					// no fall-through
				case nisa.BranchCmp:
					// ord already advanced past the previous branch.
					cur += fp.Branches[ord-1].NotTaken
				default:
					cur += uint64(freqs[pc-1])
				}
			}
		}
		freqs[pc] = int64(cur)
		if code[pc].Op.IsBranch() {
			ord++
		}
	}
	return freqs, nil
}

// Policy decides when a function is hot enough for tier-2 promotion.
type Policy struct {
	// PromoteCalls is the invocation count at which a function is
	// promoted. Zero means the default; negative disables promotion
	// (profiling-only tiering).
	PromoteCalls int64
}

// DefaultPromoteCalls is the promotion threshold used when a Policy leaves
// PromoteCalls zero: low enough that short benchmark runs reach tier 2,
// high enough that one-shot invocations never pay for re-optimization.
const DefaultPromoteCalls = 8

// Threshold returns the effective promotion threshold, or -1 when
// promotion is disabled.
func (p Policy) Threshold() int64 {
	if p.PromoteCalls < 0 {
		return -1
	}
	if p.PromoteCalls == 0 {
		return DefaultPromoteCalls
	}
	return p.PromoteCalls
}

// Hot reports whether a function with the given invocation count should be
// promoted under the policy.
func (p Policy) Hot(calls uint64) bool {
	t := p.Threshold()
	return t >= 0 && calls >= uint64(t)
}

// Encode serializes the profile payload (schema v1): a version byte, the
// function count, then per function its name, invocation count and branch
// outcome counters, all varint-encoded. The payload is what travels inside
// the annotation envelope's "profile" section.
func (p *ModuleProfile) Encode() []byte {
	buf := []byte{SchemaVersion}
	buf = binary.AppendUvarint(buf, uint64(len(p.Funcs)))
	for i := range p.Funcs {
		f := &p.Funcs[i]
		buf = binary.AppendUvarint(buf, uint64(len(f.Name)))
		buf = append(buf, f.Name...)
		buf = binary.AppendUvarint(buf, f.Calls)
		buf = binary.AppendUvarint(buf, uint64(len(f.Branches)))
		for _, bc := range f.Branches {
			buf = binary.AppendUvarint(buf, bc.Taken)
			buf = binary.AppendUvarint(buf, bc.NotTaken)
		}
	}
	return buf
}

// Decode parses an Encode-produced payload.
func Decode(data []byte) (*ModuleProfile, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("profile: empty payload")
	}
	if data[0] != SchemaVersion {
		return nil, fmt.Errorf("profile: payload schema %d, want %d", data[0], SchemaVersion)
	}
	pos := 1
	uvar := func(what string) (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("profile: truncated %s", what)
		}
		pos += n
		return v, nil
	}
	nf, err := uvar("function count")
	if err != nil {
		return nil, err
	}
	if nf > uint64(len(data)) {
		return nil, fmt.Errorf("profile: function count %d exceeds payload", nf)
	}
	p := &ModuleProfile{Funcs: make([]FuncProfile, 0, nf)}
	for i := uint64(0); i < nf; i++ {
		nameLen, err := uvar("name length")
		if err != nil {
			return nil, err
		}
		if nameLen > uint64(len(data)-pos) {
			return nil, fmt.Errorf("profile: truncated name")
		}
		f := FuncProfile{Name: string(data[pos : pos+int(nameLen)])}
		pos += int(nameLen)
		if f.Calls, err = uvar("call count"); err != nil {
			return nil, err
		}
		nb, err := uvar("branch count")
		if err != nil {
			return nil, err
		}
		if nb > uint64(len(data)-pos) {
			return nil, fmt.Errorf("profile: branch count %d exceeds payload", nb)
		}
		if nb > 0 {
			f.Branches = make([]BranchCount, nb)
		}
		for j := range f.Branches {
			if f.Branches[j].Taken, err = uvar("taken count"); err != nil {
				return nil, err
			}
			if f.Branches[j].NotTaken, err = uvar("not-taken count"); err != nil {
				return nil, err
			}
		}
		p.Funcs = append(p.Funcs, f)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("profile: %d trailing bytes", len(data)-pos)
	}
	return p, nil
}
