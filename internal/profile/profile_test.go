package profile

import (
	"reflect"
	"testing"

	"repro/internal/nisa"
)

// loopCode is a minimal counted loop:
//
//	0: movi r0, #0
//	1: bcmp ge r0, r1, @5   ; guard (ordinal 0)
//	2: add  r2, r2, r0
//	3: add  r0, r0, #1
//	4: jump @1              ; back edge (ordinal 1)
//	5: ret
func loopCode() []nisa.Instr {
	return []nisa.Instr{
		{Op: nisa.MovImm},
		{Op: nisa.BranchCmp, Cond: nisa.CondGe, Target: 5},
		{Op: nisa.Add},
		{Op: nisa.Add},
		{Op: nisa.Jump, Target: 1},
		{Op: nisa.Ret},
	}
}

func TestBranchOrdinals(t *testing.T) {
	if got := BranchOrdinals(loopCode()); got != 2 {
		t.Fatalf("BranchOrdinals = %d, want 2", got)
	}
}

func TestBlockFreqs(t *testing.T) {
	// Two calls, three iterations each: the guard runs 4x per call (3
	// not-taken + 1 taken), the back edge 3x per call.
	fp := &FuncProfile{
		Name:     "loop",
		Calls:    2,
		Branches: []BranchCount{{Taken: 2, NotTaken: 6}, {Taken: 6}},
	}
	freqs, err := BlockFreqs(loopCode(), fp)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 8, 6, 6, 6, 2}
	if !reflect.DeepEqual(freqs, want) {
		t.Fatalf("BlockFreqs = %v, want %v", freqs, want)
	}
}

func TestBlockFreqsMismatch(t *testing.T) {
	fp := &FuncProfile{Name: "loop", Calls: 1, Branches: []BranchCount{{Taken: 1}}}
	if _, err := BlockFreqs(loopCode(), fp); err == nil {
		t.Fatal("BlockFreqs accepted a branch-count mismatch")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &ModuleProfile{Funcs: []FuncProfile{
		{Name: "kernel", Calls: 1 << 40, Branches: []BranchCount{{Taken: 3, NotTaken: 500}, {Taken: 0, NotTaken: 0}}},
		{Name: "helper", Calls: 1},
	}}
	data := p.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	if got.Func("kernel") == nil || got.Func("nope") != nil {
		t.Fatal("Func lookup wrong")
	}
}

func TestDecodeRejectsBadPayloads(t *testing.T) {
	p := &ModuleProfile{Funcs: []FuncProfile{{Name: "k", Calls: 9, Branches: []BranchCount{{Taken: 1, NotTaken: 2}}}}}
	good := p.Encode()
	cases := map[string][]byte{
		"empty":         nil,
		"bad version":   {9, 1},
		"truncated":     good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0),
		"runaway count": {SchemaVersion, 0xff, 0xff, 0xff, 0xff, 0x0f},
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted invalid payload", name)
		}
	}
}

func TestPolicy(t *testing.T) {
	var def Policy
	if def.Threshold() != DefaultPromoteCalls {
		t.Fatalf("default threshold = %d", def.Threshold())
	}
	if def.Hot(DefaultPromoteCalls-1) || !def.Hot(DefaultPromoteCalls) {
		t.Fatal("default policy threshold off by one")
	}
	off := Policy{PromoteCalls: -1}
	if off.Hot(1 << 62) {
		t.Fatal("disabled policy promoted")
	}
	two := Policy{PromoteCalls: 2}
	if two.Hot(1) || !two.Hot(2) {
		t.Fatal("explicit threshold off by one")
	}
}
