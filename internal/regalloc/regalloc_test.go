package regalloc

import (
	"testing"

	"repro/internal/anno"
	"repro/internal/cil"
)

// pressureMethod builds a method with one hot loop variable and several cold
// variables declared earlier, so that declaration order and profitability
// order disagree.
func pressureMethod(t *testing.T) *cil.Method {
	t.Helper()
	b := cil.NewMethodBuilder("hot", []cil.Type{cil.Scalar(cil.I32)}, cil.Scalar(cil.I32))
	cold1 := b.AddLocal(cil.Scalar(cil.I32))
	cold2 := b.AddLocal(cil.Scalar(cil.I32))
	hot := b.AddLocal(cil.Scalar(cil.I32))
	i := b.AddLocal(cil.Scalar(cil.I32))

	b.ConstI(cil.I32, 1).StoreLocal(cold1)
	b.ConstI(cil.I32, 2).StoreLocal(cold2)
	b.ConstI(cil.I32, 0).StoreLocal(hot)
	b.ConstI(cil.I32, 0).StoreLocal(i)
	head := b.NewLabel()
	exit := b.NewLabel()
	b.Bind(head)
	b.LoadLocal(i).LoadArg(0).OpK(cil.CmpLt, cil.I32).BranchFalse(exit)
	b.LoadLocal(hot).LoadLocal(i).OpK(cil.Add, cil.I32).StoreLocal(hot)
	b.LoadLocal(i).ConstI(cil.I32, 1).OpK(cil.Add, cil.I32).StoreLocal(i)
	b.Branch(head)
	b.Bind(exit)
	b.LoadLocal(hot).LoadLocal(cold1).OpK(cil.Add, cil.I32).LoadLocal(cold2).OpK(cil.Add, cil.I32).Return()
	m := b.MustFinish()
	mod := cil.NewModule("t")
	if err := mod.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	if err := cil.Verify(mod); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAnalyzePrioritizesLoopVariables(t *testing.T) {
	m := pressureMethod(t)
	a := AnalyzeMethod(m)
	if a.Info.NumSlots != 1+4 {
		t.Fatalf("NumSlots = %d, want 5", a.Info.NumSlots)
	}
	if len(a.Info.Intervals) != 5 {
		t.Fatalf("intervals = %d, want 5 (every slot is used)", len(a.Info.Intervals))
	}
	// The two hottest slots must be the loop accumulator (slot 1+2=3) and
	// the induction variable (slot 4), in some order, ahead of the cold
	// locals and the argument.
	top := map[int]bool{a.Info.Intervals[0].Slot: true, a.Info.Intervals[1].Slot: true}
	if !top[3] || !top[4] {
		t.Errorf("hottest slots = %v, want the loop variables {3,4}; intervals: %+v", top, a.Info.Intervals)
	}
	for _, iv := range a.Info.Intervals {
		if iv.End <= iv.Start {
			t.Errorf("slot %d has an empty interval [%d,%d)", iv.Slot, iv.Start, iv.End)
		}
		if iv.Slot == 3 || iv.Slot == 4 {
			if iv.Weight < 10 {
				t.Errorf("loop slot %d weight %d, want >= 10 (loop depth weighting)", iv.Slot, iv.Weight)
			}
		}
	}
	if a.Steps == 0 {
		t.Error("analysis step counter should be non-zero")
	}
}

func TestArgumentsLiveFromEntry(t *testing.T) {
	m := pressureMethod(t)
	a := AnalyzeMethod(m)
	for _, iv := range a.Info.Intervals {
		if iv.Slot == 0 && iv.Start != 0 {
			t.Errorf("argument interval starts at %d, want 0", iv.Start)
		}
	}
}

func TestLoopExtension(t *testing.T) {
	m := pressureMethod(t)
	a := AnalyzeMethod(m)
	// The accumulator is initialized before the loop and read after it, so
	// its range must cover the whole loop region.
	var hot anno.SlotInterval
	for _, iv := range a.Info.Intervals {
		if iv.Slot == 3 {
			hot = iv
		}
	}
	var loopStart, loopEnd int
	for pc, in := range m.Code {
		if in.Op.IsBranch() && in.Target <= pc {
			loopStart, loopEnd = in.Target, pc
		}
	}
	if hot.Start > loopStart || hot.End <= loopEnd {
		t.Errorf("hot interval [%d,%d) does not cover the loop [%d,%d]", hot.Start, hot.End, loopStart, loopEnd)
	}
}

func TestAnnotateMethodAndModule(t *testing.T) {
	m := pressureMethod(t)
	AnnotateMethod(m)
	if anno.RegAllocInfoOf(m) == nil {
		t.Fatal("annotation not attached")
	}
	mod := cil.NewModule("mod")
	m2 := pressureMethod(t)
	m2.Name = "hot2"
	if err := mod.AddMethod(m2); err != nil {
		t.Fatal(err)
	}
	res := AnnotateModule(mod)
	if len(res) != 1 || anno.RegAllocInfoOf(m2) == nil {
		t.Error("AnnotateModule did not annotate every method")
	}
}

func TestUnusedSlotsOmitted(t *testing.T) {
	b := cil.NewMethodBuilder("f", []cil.Type{cil.Scalar(cil.I32), cil.Scalar(cil.I32)}, cil.Scalar(cil.I32))
	b.AddLocal(cil.Scalar(cil.I32)) // never touched
	b.LoadArg(0).Return()
	m := b.MustFinish()
	a := AnalyzeMethod(m)
	if len(a.Info.Intervals) != 1 {
		t.Errorf("intervals = %d, want 1 (only arg 0 is used)", len(a.Info.Intervals))
	}
	if a.Info.NumSlots != 3 {
		t.Errorf("NumSlots = %d, want 3", a.Info.NumSlots)
	}
}
