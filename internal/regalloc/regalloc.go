// Package regalloc implements the offline half of split register allocation
// (Diouf et al., cited in Section 4 of the paper): an analysis over the
// portable bytecode that computes, for every variable slot (arguments and
// locals), its live range and an estimated dynamic access weight, and encodes
// the result as a compact, target-independent annotation.
//
// The online half lives in the JIT (internal/jit, RegAllocSplit mode): it
// reads the annotation and assigns physical registers in priority order in a
// single linear pass, instead of re-deriving spill priorities itself. The
// register-allocation experiment (EXP-RA) compares the spills produced by
// the baseline online allocator, the annotation-driven allocator and a full
// offline-quality allocation.
package regalloc

import (
	"sort"
	"sync"

	"repro/internal/anno"
	"repro/internal/cil"
)

// slotState accumulates one variable slot's live range and access weight.
type slotState struct {
	used       bool
	start, end int
	weight     uint32
}

// loopRegion is one backward-branch region of the bytecode.
type loopRegion struct{ start, end int }

// analyzeScratch holds the per-method work buffers of the offline analysis.
// They are pooled for the same reason the online JIT pools its scratch
// state: the analysis runs once per method per offline compilation, and the
// buffers never escape (the annotation intervals are built fresh).
type analyzeScratch struct {
	slots   []slotState
	regions []loopRegion
}

var analyzePool = sync.Pool{New: func() any { return new(analyzeScratch) }}

// Analysis is the offline allocation result for one method.
type Analysis struct {
	Method string
	Info   *anno.RegAllocInfo
	// Steps counts elementary analysis operations; the Figure 1 experiment
	// uses it to show how much work the offline step absorbs.
	Steps int64
}

// AnalyzeMethod computes live ranges and spill weights for every variable
// slot of the method (arguments first, then locals), over the bytecode.
func AnalyzeMethod(m *cil.Method) *Analysis {
	numSlots := len(m.Params) + len(m.Locals)
	a := &Analysis{Method: m.Name, Info: &anno.RegAllocInfo{NumSlots: numSlots}}

	// Record each slot's register class (the v1 spill-class metadata): it is
	// a byte per slot offline, and it saves the online allocator from
	// re-deriving the class of every annotated interval from the bytecode
	// types. The v0 encoding simply has no room for it.
	a.Info.Classes = make([]anno.SpillClass, 0, numSlots)
	for _, t := range m.Params {
		a.Info.Classes = append(a.Info.Classes, anno.SpillClassOf(t))
	}
	for _, t := range m.Locals {
		a.Info.Classes = append(a.Info.Classes, anno.SpillClassOf(t))
	}

	sc := analyzePool.Get().(*analyzeScratch)
	defer analyzePool.Put(sc)
	if cap(sc.slots) < numSlots {
		sc.slots = make([]slotState, numSlots)
	} else {
		sc.slots = sc.slots[:numSlots]
		clear(sc.slots)
	}
	slots := sc.slots

	// Loop regions from backward branches give the nesting depth used to
	// weight accesses (an access in a loop body is worth 10x one outside).
	regions := sc.regions[:0]
	for pc, in := range m.Code {
		if in.Op.IsBranch() && in.Target <= pc {
			regions = append(regions, loopRegion{in.Target, pc})
		}
	}
	sc.regions = regions
	depthAt := func(pc int) int {
		d := 0
		for _, r := range regions {
			if pc >= r.start && pc <= r.end {
				d++
			}
		}
		if d > 4 {
			d = 4
		}
		return d
	}

	slotOf := func(in cil.Instr) int {
		switch in.Op {
		case cil.LdArg, cil.StArg:
			return int(in.Int)
		case cil.LdLoc, cil.StLoc:
			return len(m.Params) + int(in.Int)
		}
		return -1
	}

	for pc, in := range m.Code {
		s := slotOf(in)
		if s < 0 {
			continue
		}
		a.Steps++
		st := &slots[s]
		if !st.used {
			st.used = true
			st.start, st.end = pc, pc
		}
		if pc < st.start {
			st.start = pc
		}
		if pc > st.end {
			st.end = pc
		}
		w := uint32(1)
		for i, d := 0, depthAt(pc); i < d; i++ {
			w *= 10
		}
		st.weight += w
	}

	// Arguments are live from method entry even before their first use.
	for i := range m.Params {
		if slots[i].used {
			slots[i].start = 0
		}
	}

	// Extend ranges across loops: a slot accessed anywhere inside a loop is
	// live across its back edge.
	for changed := true; changed; {
		changed = false
		for _, r := range regions {
			for i := range slots {
				st := &slots[i]
				if !st.used || st.end < r.start || st.start > r.end {
					continue
				}
				a.Steps++
				if st.start > r.start {
					st.start = r.start
					changed = true
				}
				if st.end < r.end {
					st.end = r.end
					changed = true
				}
			}
		}
	}

	for i, st := range slots {
		if !st.used {
			continue
		}
		a.Info.Intervals = append(a.Info.Intervals, anno.SlotInterval{
			Slot: i, Start: st.start, End: st.end + 1, Weight: st.weight,
		})
	}
	// Decreasing weight, ties by slot index: this order *is* the portable
	// allocation decision the online assigner follows.
	sort.Slice(a.Info.Intervals, func(i, j int) bool {
		wi, wj := a.Info.Intervals[i].Weight, a.Info.Intervals[j].Weight
		if wi != wj {
			return wi > wj
		}
		return a.Info.Intervals[i].Slot < a.Info.Intervals[j].Slot
	})
	return a
}

// AnnotateMethod runs the offline analysis and attaches its annotation to the
// method in the legacy v0 encoding. It returns the analysis for inspection.
func AnnotateMethod(m *cil.Method) *Analysis {
	a, _ := AnnotateMethodV(m, anno.V0)
	return a
}

// AnnotateMethodV runs the offline analysis and attaches its annotation at
// the given schema version (anno.V0 or anno.V1).
func AnnotateMethodV(m *cil.Method, version uint32) (*Analysis, error) {
	a := AnalyzeMethod(m)
	if err := anno.AttachRegAllocInfoV(m, a.Info, version); err != nil {
		return nil, err
	}
	return a, nil
}

// AnnotateModule runs the offline register allocation analysis on every
// method of the module, attaching legacy v0 annotations.
func AnnotateModule(mod *cil.Module) []*Analysis {
	out, _ := AnnotateModuleV(mod, anno.V0)
	return out
}

// AnnotateModuleV annotates every method at the given schema version.
func AnnotateModuleV(mod *cil.Module, version uint32) ([]*Analysis, error) {
	out := make([]*Analysis, 0, len(mod.Methods))
	for _, m := range mod.Methods {
		a, err := AnnotateMethodV(m, version)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
