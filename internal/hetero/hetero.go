// Package hetero models the whole-system scenario of Section 3 of the paper:
// a heterogeneous multicore (a Cell-like chip with a general-purpose host
// core and vector accelerators) running a single portable module. Because
// final code generation happens at deployment time, the same bytecode is
// JIT-compiled once per core type, and a small runtime maps each call onto a
// core using the hardware-requirement annotations produced by the offline
// compiler.
package hetero

import (
	"fmt"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/vm"
)

// Core is one processing element of the system.
type Core struct {
	Name string
	Desc *target.Desc
	// DispatchCycles is the fixed cost of shipping a call (arguments and
	// results) to this core; the host core has zero dispatch cost.
	DispatchCycles int64
}

// System describes a heterogeneous multicore.
type System struct {
	Name  string
	Host  Core
	Accel []Core
}

// CellLike returns a Cell-BE-like system: a PowerPC-like host core plus two
// SPU-like vector accelerators reachable over an on-chip interconnect.
func CellLike() *System {
	return &System{
		Name: "cell-like",
		Host: Core{Name: "ppe", Desc: target.MustLookup(target.PPC)},
		Accel: []Core{
			{Name: "spu0", Desc: target.MustLookup(target.SPU), DispatchCycles: 800},
			{Name: "spu1", Desc: target.MustLookup(target.SPU), DispatchCycles: 800},
		},
	}
}

// EmbeddedSoC returns a small set-top-box-like system: an MCU host and one
// SPU-like DSP/accelerator.
func EmbeddedSoC() *System {
	return &System{
		Name: "embedded-soc",
		Host: Core{Name: "mcu", Desc: target.MustLookup(target.MCU)},
		Accel: []Core{
			{Name: "dsp0", Desc: target.MustLookup(target.SPU), DispatchCycles: 1500},
		},
	}
}

// Policy selects how calls are mapped onto cores.
type Policy int

// Placement policies.
const (
	// HostOnly runs everything on the host core (the state of the art the
	// paper criticizes: accelerators closed to third-party code).
	HostOnly Policy = iota
	// Annotated uses the offline hardware-requirement annotations: methods
	// that benefit from vector/float hardware and are heavy enough to
	// amortize the dispatch cost run on an accelerator.
	Annotated
)

func (p Policy) String() string {
	if p == HostOnly {
		return "host-only"
	}
	return "annotation-guided"
}

// Arg is one argument of a heterogeneous call: either a scalar or a managed
// array (marshalled into the chosen core's memory).
type Arg struct {
	Scalar sim.Value
	Kind   cil.Kind
	Array  *vm.Array
}

// ScalarArg wraps a scalar value.
func ScalarArg(k cil.Kind, v sim.Value) Arg { return Arg{Kind: k, Scalar: v} }

// ArrayArg wraps an array argument.
func ArrayArg(a *vm.Array) Arg { return Arg{Kind: cil.Ref, Array: a} }

// CallResult describes where a call ran and what it cost.
type CallResult struct {
	CoreName  string
	Offloaded bool
	Result    sim.Value
	// Cycles is the end-to-end cost charged to the application: execution
	// cycles on the chosen core plus dispatch overhead when offloaded,
	// normalized to host-clock cycles so different policies are comparable.
	Cycles int64
	// Outputs holds the array arguments copied back after the call, in
	// argument order.
	Outputs []*vm.Array
}

// Runtime is the deployment of one module on a heterogeneous system.
type Runtime struct {
	Sys    *System
	Policy Policy

	deployments map[string]*core.Deployment
	// WorkThreshold is the minimum estimated work (from the annotation)
	// before offloading is considered worthwhile.
	WorkThreshold int64
}

// DeployFunc produces a deployment of an encoded module on one target. It
// lets callers route the per-core JIT compilations through a shared code
// cache (pkg/splitvm's engine does) instead of compiling from scratch.
type DeployFunc func(encoded []byte, tgt *target.Desc, jopts jit.Options) (*core.Deployment, error)

// NewRuntime decodes and JIT-compiles the module once per distinct core type
// of the system. This is processor virtualization at the system level: one
// byte stream, one native image per kind of core.
func NewRuntime(sys *System, encoded []byte, policy Policy) (*Runtime, error) {
	return NewRuntimeWith(sys, encoded, policy, core.Deploy)
}

// NewRuntimeWith is NewRuntime with a caller-supplied deployment function.
func NewRuntimeWith(sys *System, encoded []byte, policy Policy, deploy DeployFunc) (*Runtime, error) {
	rt := &Runtime{Sys: sys, Policy: policy, deployments: make(map[string]*core.Deployment), WorkThreshold: 16}
	cores := append([]Core{sys.Host}, sys.Accel...)
	for _, c := range cores {
		if _, done := rt.deployments[c.Name]; done {
			continue
		}
		d, err := deploy(encoded, c.Desc, jit.Options{RegAlloc: jit.RegAllocSplit})
		if err != nil {
			return nil, fmt.Errorf("hetero: deploying on %s: %w", c.Name, err)
		}
		rt.deployments[c.Name] = d
	}
	return rt, nil
}

// Deployment returns the deployment for a named core (useful in tests).
func (rt *Runtime) Deployment(coreName string) *core.Deployment { return rt.deployments[coreName] }

// place decides which core a method runs on.
func (rt *Runtime) place(method string) Core {
	if rt.Policy == HostOnly || len(rt.Sys.Accel) == 0 {
		return rt.Sys.Host
	}
	hostDep := rt.deployments[rt.Sys.Host.Name]
	m := hostDep.Module.Method(method)
	if m == nil {
		return rt.Sys.Host
	}
	req := anno.HWReqOf(m)
	if req == nil {
		return rt.Sys.Host
	}
	if (req.UsesVector || req.UsesFloat) && req.EstimatedWork >= rt.WorkThreshold {
		// Round-robin over accelerators would need call history; the first
		// accelerator is enough for the single-threaded experiments.
		return rt.Sys.Accel[0]
	}
	return rt.Sys.Host
}

// Call runs a method under the runtime's placement policy.
func (rt *Runtime) Call(method string, args ...Arg) (*CallResult, error) {
	c := rt.place(method)
	dep := rt.deployments[c.Name]

	simArgs := make([]sim.Value, len(args))
	addrs := make([]sim.Addr, len(args))
	for i, a := range args {
		if a.Kind == cil.Ref {
			addr := dep.Machine.CopyInArray(a.Array)
			addrs[i] = addr
			simArgs[i] = sim.IntArg(int64(addr))
			continue
		}
		addrs[i] = -1
		simArgs[i] = a.Scalar
	}

	before := dep.Machine.Stats.Cycles
	res, err := dep.Run(method, simArgs...)
	if err != nil {
		return nil, err
	}
	elapsed := dep.Machine.Stats.Cycles - before

	out := &CallResult{
		CoreName:  c.Name,
		Offloaded: c.Name != rt.Sys.Host.Name,
		Result:    res,
	}
	// Normalize device cycles to host cycles through the clock ratio so
	// host-only and offloaded runs are comparable, then add the dispatch
	// cost of shipping the call.
	hostClock := float64(rt.Sys.Host.Desc.ClockMHz)
	devClock := float64(c.Desc.ClockMHz)
	out.Cycles = int64(float64(elapsed)*hostClock/devClock) + c.DispatchCycles

	for i, a := range args {
		if a.Kind != cil.Ref {
			continue
		}
		back := vm.NewArray(a.Array.Elem, a.Array.Len())
		if err := dep.Machine.CopyOutArray(addrs[i], back); err != nil {
			return nil, err
		}
		out.Outputs = append(out.Outputs, back)
	}
	return out, nil
}
