package hetero

import (
	"testing"

	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/vm"
)

func compiledApp(t *testing.T) []byte {
	t.Helper()
	src := kernels.MustGet("checksum").Source + kernels.MustGet("saxpy_fp").Source
	res, err := core.CompileOffline(src, core.OfflineOptions{ModuleName: "app"})
	if err != nil {
		t.Fatal(err)
	}
	return res.Encoded
}

func TestSystemDescriptions(t *testing.T) {
	cell := CellLike()
	if cell.Host.Desc == nil || len(cell.Accel) != 2 || !cell.Accel[0].Desc.HasSIMD {
		t.Error("CellLike system malformed")
	}
	soc := EmbeddedSoC()
	if soc.Host.Desc.HasSIMD || len(soc.Accel) != 1 {
		t.Error("EmbeddedSoC system malformed")
	}
	if HostOnly.String() == "" || Annotated.String() == "" {
		t.Error("policy names missing")
	}
}

func TestPlacementFollowsAnnotations(t *testing.T) {
	encoded := compiledApp(t)
	rt, err := NewRuntime(CellLike(), encoded, Annotated)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.place("saxpy"); got.Name != "spu0" {
		t.Errorf("saxpy placed on %s, want spu0 (vector + heavy)", got.Name)
	}
	if got := rt.place("checksum"); got.Name != "ppe" {
		t.Errorf("checksum placed on %s, want the host", got.Name)
	}
	if got := rt.place("missing"); got.Name != "ppe" {
		t.Errorf("unknown methods must fall back to the host, got %s", got.Name)
	}
	host, err := NewRuntime(CellLike(), encoded, HostOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got := host.place("saxpy"); got.Name != "ppe" {
		t.Errorf("host-only policy must keep saxpy on the host, got %s", got.Name)
	}
	if host.Deployment("ppe") == nil || host.Deployment("spu0") == nil {
		t.Error("every core must have a deployment")
	}
}

func TestCallMarshalsArraysAndMatchesHost(t *testing.T) {
	encoded := compiledApp(t)
	const n = 100
	mkArrays := func() (*vm.Array, *vm.Array) {
		y := vm.NewArray(cil.F64, n)
		x := vm.NewArray(cil.F64, n)
		for i := 0; i < n; i++ {
			y.SetFloat(i, float64(i%7))
			x.SetFloat(i, float64(i%5))
		}
		return y, x
	}

	run := func(policy Policy) (*CallResult, error) {
		rt, err := NewRuntime(CellLike(), encoded, policy)
		if err != nil {
			return nil, err
		}
		y, x := mkArrays()
		return rt.Call("saxpy", ArrayArg(y), ArrayArg(x),
			ScalarArg(cil.F64, sim.FloatArg(2.0)), ScalarArg(cil.I32, sim.IntArg(n)))
	}

	hostRes, err := run(HostOnly)
	if err != nil {
		t.Fatal(err)
	}
	offRes, err := run(Annotated)
	if err != nil {
		t.Fatal(err)
	}
	if hostRes.Offloaded || !offRes.Offloaded {
		t.Errorf("offload flags wrong: host=%v annotated=%v", hostRes.Offloaded, offRes.Offloaded)
	}
	if hostRes.Cycles <= 0 || offRes.Cycles <= 0 {
		t.Error("cycle accounting missing")
	}
	for i := 0; i < n; i++ {
		if hostRes.Outputs[0].Float(i) != offRes.Outputs[0].Float(i) {
			t.Fatalf("output %d differs between host and accelerator", i)
		}
		want := 2.0*float64(i%5) + float64(i%7)
		if hostRes.Outputs[0].Float(i) != want {
			t.Fatalf("output %d = %v, want %v", i, hostRes.Outputs[0].Float(i), want)
		}
	}
}

func TestNewRuntimeRejectsBadModule(t *testing.T) {
	if _, err := NewRuntime(CellLike(), []byte("garbage"), Annotated); err == nil {
		t.Error("NewRuntime accepted garbage bytes")
	}
}
