// Package faultinject is a fault-injection harness for chaos testing the
// serving stack. Faults are armed from the SPLITVM_FAULTS environment
// variable (or programmatically via Arm) and fire at named sites that the
// production code declares with At. Disarmed — the production default —
// the harness costs a single atomic pointer load per site, returns nil,
// and allocates nothing, so instrumented hot paths stay hot.
//
// The spec grammar is a semicolon-separated list of clauses:
//
//	site:mode[:param[:prob]]
//
// where mode is one of
//
//	latency  – sleep param (a time.Duration, e.g. 250ms) before proceeding
//	error    – return an injected error from the site
//	crash    – os.Exit(3) the process at the site (simulates SIGKILL)
//	corrupt  – flip one byte of the payload passed to Fault.Corrupt
//
// and prob (default 1) is the probability in [0,1] that a given hit fires.
// Example: SPLITVM_FAULTS="server.run:latency:300ms;diskcache.get:corrupt"
//
// Site names are free-form strings owned by the instrumented package; the
// ones wired into this repo are listed in docs/operations.md.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable Init reads fault specs from.
const EnvVar = "SPLITVM_FAULTS"

// ErrInjected is the sentinel wrapped by every error-mode fault, so tests
// can assert a failure was injected rather than organic.
var ErrInjected = errors.New("injected fault")

// Mode names a fault behavior. See the package comment for semantics.
type Mode string

// The supported fault modes.
const (
	ModeLatency Mode = "latency"
	ModeError   Mode = "error"
	ModeCrash   Mode = "crash"
	ModeCorrupt Mode = "corrupt"
)

// Fault is one armed fault at one site. The zero value is not useful;
// faults are built by Arm/Init and handed out by At.
type Fault struct {
	// Site is the name the fault is armed at.
	Site string
	// Mode is the fault's behavior.
	Mode Mode
	// Latency is the injected delay for ModeLatency.
	Latency time.Duration
	// Prob is the per-hit firing probability in [0,1].
	Prob float64

	hits  atomic.Int64
	fired atomic.Int64
}

type config struct {
	faults map[string]*Fault
}

var current atomic.Pointer[config]

// exit is swapped out by tests of ModeCrash; production always os.Exit(3)s.
var exit = func() { os.Exit(3) }

// randMu serializes the package-level firing coin; fault sites are not hot
// enough when armed for this to matter.
var randMu sync.Mutex

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Arm(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring %s=%q: %v\n", EnvVar, spec, err)
		}
	}
}

// Arm parses a fault spec (the SPLITVM_FAULTS grammar) and arms it,
// replacing any previously armed set. Tests use Arm/Disarm pairs;
// production arms once at startup from the environment.
func Arm(spec string) error {
	cfg := &config{faults: make(map[string]*Fault)}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		f, err := parseClause(clause)
		if err != nil {
			return err
		}
		cfg.faults[f.Site] = f
	}
	if len(cfg.faults) == 0 {
		current.Store(nil)
		return nil
	}
	current.Store(cfg)
	return nil
}

// Disarm removes every armed fault, restoring the zero-cost path.
func Disarm() { current.Store(nil) }

// Enabled reports whether any fault is armed.
func Enabled() bool { return current.Load() != nil }

// At returns the armed fault for site, or nil — the common case — when
// nothing is armed there. The nil check is the entire disarmed cost.
func At(site string) *Fault {
	cfg := current.Load()
	if cfg == nil {
		return nil
	}
	return cfg.faults[site]
}

// Counts returns per-site hit counts (times the site was reached while
// armed) for every armed fault. Returns nil when disarmed.
func Counts() map[string]int64 {
	cfg := current.Load()
	if cfg == nil {
		return nil
	}
	out := make(map[string]int64, len(cfg.faults))
	for site, f := range cfg.faults {
		out[site] = f.hits.Load()
	}
	return out
}

func parseClause(clause string) (*Fault, error) {
	parts := strings.Split(clause, ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("clause %q: want site:mode[:param[:prob]]", clause)
	}
	f := &Fault{Site: parts[0], Mode: Mode(parts[1]), Prob: 1}
	rest := parts[2:]
	switch f.Mode {
	case ModeLatency:
		if len(rest) == 0 {
			return nil, fmt.Errorf("clause %q: latency needs a duration param", clause)
		}
		d, err := time.ParseDuration(rest[0])
		if err != nil {
			return nil, fmt.Errorf("clause %q: %v", clause, err)
		}
		f.Latency = d
		rest = rest[1:]
	case ModeError, ModeCrash, ModeCorrupt:
	default:
		return nil, fmt.Errorf("clause %q: unknown mode %q", clause, parts[1])
	}
	if len(rest) > 1 {
		return nil, fmt.Errorf("clause %q: trailing fields", clause)
	}
	if len(rest) == 1 {
		p, err := strconv.ParseFloat(rest[0], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("clause %q: probability must be in [0,1]", clause)
		}
		f.Prob = p
	}
	return f, nil
}

// fire records a hit and reports whether this hit should take effect,
// applying the fault's probability.
func (f *Fault) fire() bool {
	f.hits.Add(1)
	if f.Prob >= 1 {
		f.fired.Add(1)
		return true
	}
	if f.Prob <= 0 {
		return false
	}
	randMu.Lock()
	ok := rand.Float64() < f.Prob
	randMu.Unlock()
	if ok {
		f.fired.Add(1)
	}
	return ok
}

// Apply executes the fault's side effect for latency, error and crash
// modes: it sleeps, returns a wrapped ErrInjected, or exits the process.
// Corrupt-mode faults return nil here — they act through Corrupt instead.
func (f *Fault) Apply() error {
	if !f.fire() {
		return nil
	}
	switch f.Mode {
	case ModeLatency:
		time.Sleep(f.Latency)
	case ModeError:
		return fmt.Errorf("faultinject: %s: %w", f.Site, ErrInjected)
	case ModeCrash:
		fmt.Fprintf(os.Stderr, "faultinject: crashing at %s\n", f.Site)
		exit()
	}
	return nil
}

// Corrupt flips one byte of data in place when the fault is corrupt-mode
// and fires, reporting whether it did. Other modes (and empty payloads)
// are untouched.
func (f *Fault) Corrupt(data []byte) bool {
	if f.Mode != ModeCorrupt || len(data) == 0 {
		return false
	}
	if !f.fire() {
		return false
	}
	data[len(data)/2] ^= 0x80
	return true
}
