package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Disarm()
	if Enabled() {
		t.Fatal("Enabled() = true with nothing armed")
	}
	if f := At("server.run"); f != nil {
		t.Fatalf("At() = %+v, want nil", f)
	}
	if c := Counts(); c != nil {
		t.Fatalf("Counts() = %v, want nil", c)
	}
}

func TestArmErrorMode(t *testing.T) {
	if err := Arm("diskcache.get:error"); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	f := At("diskcache.get")
	if f == nil {
		t.Fatal("At() = nil for armed site")
	}
	if err := f.Apply(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Apply() = %v, want ErrInjected", err)
	}
	if At("other.site") != nil {
		t.Fatal("unarmed site returned a fault")
	}
	if got := Counts()["diskcache.get"]; got != 1 {
		t.Fatalf("hit count = %d, want 1", got)
	}
}

func TestArmLatencyMode(t *testing.T) {
	if err := Arm("server.run:latency:30ms"); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	f := At("server.run")
	start := time.Now()
	if err := f.Apply(); err != nil {
		t.Fatalf("Apply() = %v, want nil", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault slept %v, want ≥30ms", d)
	}
}

func TestCorruptFlipsAByte(t *testing.T) {
	if err := Arm("diskcache.get:corrupt"); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	f := At("diskcache.get")
	data := []byte{1, 2, 3, 4, 5}
	orig := append([]byte(nil), data...)
	if !f.Corrupt(data) {
		t.Fatal("Corrupt() = false, want true")
	}
	same := true
	for i := range data {
		if data[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Fatal("Corrupt() did not change the payload")
	}
	// Non-corrupt modes never touch data.
	if err := Arm("diskcache.get:error"); err != nil {
		t.Fatal(err)
	}
	if At("diskcache.get").Corrupt(data) {
		t.Fatal("error-mode fault corrupted data")
	}
}

func TestCrashModeCallsExit(t *testing.T) {
	exited := false
	old := exit
	exit = func() { exited = true }
	defer func() { exit = old }()
	if err := Arm("server.deploy:crash"); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	if err := At("server.deploy").Apply(); err != nil {
		t.Fatalf("Apply() = %v", err)
	}
	if !exited {
		t.Fatal("crash fault did not exit")
	}
}

func TestProbabilityZeroNeverFires(t *testing.T) {
	if err := Arm("x:error:0"); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	f := At("x")
	for i := 0; i < 100; i++ {
		if err := f.Apply(); err != nil {
			t.Fatal("prob-0 fault fired")
		}
	}
	if got := Counts()["x"]; got != 100 {
		t.Fatalf("hits = %d, want 100", got)
	}
}

func TestMultiClauseSpec(t *testing.T) {
	if err := Arm("a:error; b:latency:1ms ;c:corrupt:0.5"); err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	for _, site := range []string{"a", "b", "c"} {
		if At(site) == nil {
			t.Fatalf("site %q not armed", site)
		}
	}
	if got := At("c").Prob; got != 0.5 {
		t.Fatalf("c prob = %v, want 0.5", got)
	}
}

func TestBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nocolon",
		"site:unknownmode",
		"site:latency",         // missing duration
		"site:latency:notadur", // bad duration
		"site:error:2",         // prob out of range
		"site:error:0.5:extra", // trailing fields
		"site:crash:0.5:0.5:1", // trailing fields
	} {
		if err := Arm(spec); err == nil {
			Disarm()
			t.Fatalf("Arm(%q) accepted a bad spec", spec)
		}
	}
	// A failed Arm must leave the harness disarmed rather than half-armed.
	if Enabled() {
		t.Fatal("harness armed after failed Arm")
	}
}

func TestEmptySpecDisarms(t *testing.T) {
	if err := Arm("a:error"); err != nil {
		t.Fatal(err)
	}
	if err := Arm(""); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty spec left faults armed")
	}
}
