package codegen

import (
	"fmt"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/minic"
	"repro/internal/opt"
)

// genVectorLoop lowers a for loop that the offline vectorizer planned for
// vectorization. The emitted shape is the classic strip-mined form:
//
//	<init>
//	while (i + LANES <= bound) {            // vector main loop
//	        <portable vector builtins processing LANES elements>
//	        i += LANES
//	}
//	while (i < bound) {                      // scalar epilogue
//	        <original scalar body>
//	        <original post statement>
//	}
//
// The builtins are target independent; the JIT later maps them to SIMD
// instructions or scalarizes them, which is the online half of the split.
func (g *generator) genVectorLoop(loop *minic.ForStmt, plan *opt.VectorPlan) error {
	g.plans = append(g.plans, plan)

	if loop.Init != nil {
		if err := g.genStmt(loop.Init); err != nil {
			return err
		}
	}

	vhead := g.b.NewLabel()
	vexit := g.b.NewLabel()
	shead := g.b.NewLabel()
	sexit := g.b.NewLabel()

	// Hoist the vector trip-count limit out of the loop: the main loop runs
	// while i < bound - (LANES-1), so the per-iteration test is a single
	// compare-and-branch just like in the scalar loop. The limit gets its
	// own local (not a shared scratch temp) because the loop body may use
	// the scratch temps for min/max lowering.
	vlimit := g.b.AddLocal(cil.Scalar(cil.I32))
	if err := g.genExpr(plan.Bound); err != nil {
		return err
	}
	g.b.ConstI(cil.I32, int64(plan.Lanes-1))
	g.b.OpK(cil.Sub, cil.I32)
	g.b.StoreLocal(vlimit)

	// Vector main loop: while (i < vlimit)
	g.b.Bind(vhead)
	if err := g.genLoadSym(plan.Index); err != nil {
		return err
	}
	g.b.LoadLocal(vlimit)
	g.b.OpK(cil.CmpLt, cil.I32)
	g.b.BranchFalse(vexit)

	switch plan.Pattern {
	case anno.PatternMap:
		if err := g.genVectorMapBody(plan); err != nil {
			return err
		}
	case anno.PatternReduceAdd, anno.PatternReduceMax, anno.PatternReduceMin:
		if err := g.genVectorReduceBody(plan); err != nil {
			return err
		}
	default:
		return fmt.Errorf("codegen: unknown vector pattern %v", plan.Pattern)
	}

	// i += LANES
	if err := g.genLoadSym(plan.Index); err != nil {
		return err
	}
	g.b.ConstI(cil.I32, int64(plan.Lanes))
	g.b.OpK(cil.Add, cil.I32)
	if err := g.genStoreSym(plan.Index); err != nil {
		return err
	}
	g.b.Branch(vhead)
	g.b.Bind(vexit)

	// Scalar epilogue reusing the original body and post statement.
	g.b.Bind(shead)
	if err := g.genLoadSym(plan.Index); err != nil {
		return err
	}
	if err := g.genExpr(plan.Bound); err != nil {
		return err
	}
	g.b.OpK(cil.CmpLt, cil.I32)
	g.b.BranchFalse(sexit)
	if err := g.genBlock(loop.Body); err != nil {
		return err
	}
	if loop.Post != nil {
		if err := g.genStmt(loop.Post); err != nil {
			return err
		}
	}
	g.b.Branch(shead)
	g.b.Bind(sexit)
	return nil
}

// genVectorMapBody emits one vector iteration of `dst[i] = rhs`.
func (g *generator) genVectorMapBody(plan *opt.VectorPlan) error {
	dst := plan.Store.LHS.(*minic.IndexExpr)
	if err := g.genExpr(dst.Arr); err != nil {
		return err
	}
	if err := g.genLoadSym(plan.Index); err != nil {
		return err
	}
	if err := g.genVectorExpr(plan.Store.RHS, plan); err != nil {
		return err
	}
	g.b.OpK(cil.VStore, plan.Elem)
	return nil
}

// genVectorExpr emits code computing the element-wise expression as a
// portable vector value.
func (g *generator) genVectorExpr(e minic.Expr, plan *opt.VectorPlan) error {
	// Loop-invariant subexpressions are evaluated as scalars and splatted.
	if opt.IsLoopInvariantScalar(e, plan.Index) {
		if err := g.genExpr(e); err != nil {
			return err
		}
		g.b.OpK(cil.VSplat, plan.Elem)
		return nil
	}
	switch ex := e.(type) {
	case *minic.IndexExpr:
		if !opt.IndexIsInduction(ex.Index, plan.Index) {
			return fmt.Errorf("codegen: vector plan references a non-induction subscript")
		}
		if err := g.genExpr(ex.Arr); err != nil {
			return err
		}
		if err := g.genLoadSym(plan.Index); err != nil {
			return err
		}
		g.b.OpK(cil.VLoad, plan.Elem)
		return nil
	case *minic.BinaryExpr:
		var op cil.Opcode
		switch ex.Op {
		case minic.OpAdd:
			op = cil.VAdd
		case minic.OpSub:
			op = cil.VSub
		case minic.OpMul:
			op = cil.VMul
		default:
			return fmt.Errorf("codegen: operator %v is not vectorizable", ex.Op)
		}
		if err := g.genVectorExpr(ex.L, plan); err != nil {
			return err
		}
		if err := g.genVectorExpr(ex.R, plan); err != nil {
			return err
		}
		g.b.OpK(op, plan.Elem)
		return nil
	case *minic.CallExpr:
		var op cil.Opcode
		switch ex.Name {
		case minic.IntrinsicMin:
			op = cil.VMin
		case minic.IntrinsicMax:
			op = cil.VMax
		default:
			return fmt.Errorf("codegen: call to %q is not vectorizable", ex.Name)
		}
		if err := g.genVectorExpr(ex.Args[0], plan); err != nil {
			return err
		}
		if err := g.genVectorExpr(ex.Args[1], plan); err != nil {
			return err
		}
		g.b.OpK(op, plan.Elem)
		return nil
	case *minic.CastExpr:
		// Casts inside a vectorizable map expression can only be
		// representation-neutral (the vectorizer requires every node to
		// already have the element kind).
		return g.genVectorExpr(ex.X, plan)
	}
	return fmt.Errorf("codegen: expression %T is not vectorizable", e)
}

// genVectorReduceBody emits one vector iteration of a reduction:
//
//	acc = acc OP hreduce(vload(a, i))
//
// where the horizontal reduction produces a scalar partial result per vector
// so that integer reductions remain bit-exact with the scalar loop.
func (g *generator) genVectorReduceBody(plan *opt.VectorPlan) error {
	accKind := plan.Acc.Type.Kind.StackKind()

	if err := g.genLoadSym(plan.Acc); err != nil {
		return err
	}

	// Load the vector and reduce it horizontally.
	load := plan.ReduceArg.(*minic.IndexExpr)
	if err := g.genExpr(load.Arr); err != nil {
		return err
	}
	if err := g.genLoadSym(plan.Index); err != nil {
		return err
	}
	g.b.OpK(cil.VLoad, plan.Elem)

	var redOp cil.Opcode
	switch plan.Pattern {
	case anno.PatternReduceAdd:
		redOp = cil.VRedAdd
	case anno.PatternReduceMax:
		redOp = cil.VRedMax
	case anno.PatternReduceMin:
		redOp = cil.VRedMin
	}
	g.b.OpK(redOp, plan.Elem)
	partialKind := cil.ReduceKind(redOp, plan.Elem)
	if partialKind.StackKind() != accKind {
		g.b.OpK(cil.Conv, accKind)
	}

	// Combine the partial result into the accumulator.
	switch plan.Pattern {
	case anno.PatternReduceAdd:
		g.b.OpK(cil.Add, accKind)
	case anno.PatternReduceMax:
		g.emitMinMaxFromStack(accKind, true)
	case anno.PatternReduceMin:
		g.emitMinMaxFromStack(accKind, false)
	}
	return g.genStoreSym(plan.Acc)
}
