package codegen

import (
	"fmt"

	"repro/internal/cil"
	"repro/internal/minic"
)

// genLoadSym pushes the value of a named variable.
func (g *generator) genLoadSym(sym *minic.Symbol) error {
	if sym == nil {
		return fmt.Errorf("codegen: unresolved symbol")
	}
	if sym.IsParam {
		g.b.LoadArg(sym.Index)
		return nil
	}
	slot, ok := g.localSlot[sym]
	if !ok {
		return fmt.Errorf("codegen: no slot for local %q", sym.Name)
	}
	g.b.LoadLocal(slot)
	return nil
}

// genStoreSym pops the top of stack into a named variable.
func (g *generator) genStoreSym(sym *minic.Symbol) error {
	if sym == nil {
		return fmt.Errorf("codegen: unresolved symbol")
	}
	if sym.IsParam {
		g.b.StoreArg(sym.Index)
		return nil
	}
	slot, ok := g.localSlot[sym]
	if !ok {
		return fmt.Errorf("codegen: no slot for local %q", sym.Name)
	}
	g.b.StoreLocal(slot)
	return nil
}

// temp returns a scratch local of the given kind, allocating it on first
// use. Temps never live across sub-expression evaluation, so one per kind is
// enough.
func (g *generator) temp(k cil.Kind) int {
	if slot, ok := g.tempSlot[k]; ok {
		return slot
	}
	slot := g.b.AddLocal(cil.Scalar(k))
	g.tempSlot[k] = slot
	return slot
}

// temp2 returns a second scratch local of the given kind (for two-operand
// intrinsic lowering).
func (g *generator) temp2(k cil.Kind) int {
	key := cil.Kind(uint8(k) | 0x80)
	if slot, ok := g.tempSlot[key]; ok {
		return slot
	}
	slot := g.b.AddLocal(cil.Scalar(k))
	g.tempSlot[key] = slot
	return slot
}

// emitZero pushes the zero value of a scalar kind.
func (g *generator) emitZero(k cil.Kind) {
	if k.IsFloat() {
		g.b.ConstF(k, 0)
	} else {
		g.b.ConstI(k, 0)
	}
}

// genCondValue evaluates a condition and leaves a plain i32 truth value on
// the stack, ready for brtrue/brfalse.
func (g *generator) genCondValue(e minic.Expr) error {
	if err := g.genExpr(e); err != nil {
		return err
	}
	k := e.Type().Kind
	if k.StackKind() == cil.I32 {
		return nil
	}
	g.emitZero(k)
	g.b.OpK(cil.CmpNe, k)
	return nil
}

// genTruth evaluates an expression as a strict 0/1 i32 value.
func (g *generator) genTruth(e minic.Expr) error {
	if err := g.genExpr(e); err != nil {
		return err
	}
	k := e.Type().Kind
	if k == cil.Bool {
		return nil
	}
	g.emitZero(k)
	g.b.OpK(cil.CmpNe, k)
	return nil
}

var binOpcode = map[minic.BinOp]cil.Opcode{
	minic.OpAdd: cil.Add, minic.OpSub: cil.Sub, minic.OpMul: cil.Mul,
	minic.OpDiv: cil.Div, minic.OpRem: cil.Rem,
	minic.OpAnd: cil.And, minic.OpOr: cil.Or, minic.OpXor: cil.Xor,
	minic.OpShl: cil.Shl, minic.OpShr: cil.Shr,
}

var cmpOpcode = map[minic.BinOp]cil.Opcode{
	minic.OpEq: cil.CmpEq, minic.OpNe: cil.CmpNe,
	minic.OpLt: cil.CmpLt, minic.OpLe: cil.CmpLe,
	minic.OpGt: cil.CmpGt, minic.OpGe: cil.CmpGe,
}

// genExpr emits code that leaves the expression's value on the stack.
func (g *generator) genExpr(e minic.Expr) error {
	switch ex := e.(type) {
	case *minic.IntLit:
		g.b.ConstI(ex.Type().Kind, ex.Value)
		return nil
	case *minic.FloatLit:
		g.b.ConstF(ex.Type().Kind, ex.Value)
		return nil
	case *minic.Ident:
		return g.genLoadSym(ex.Sym)
	case *minic.IndexExpr:
		if err := g.genExpr(ex.Arr); err != nil {
			return err
		}
		if err := g.genExpr(ex.Index); err != nil {
			return err
		}
		g.b.OpK(cil.LdElem, ex.Type().Kind)
		return nil
	case *minic.LenExpr:
		if err := g.genExpr(ex.Arr); err != nil {
			return err
		}
		g.b.OpK(cil.LdLen, ex.Arr.Type().Elem)
		return nil
	case *minic.NewArrayExpr:
		if err := g.genExpr(ex.Len); err != nil {
			return err
		}
		g.b.OpK(cil.NewArr, ex.Elem)
		return nil
	case *minic.CastExpr:
		if err := g.genExpr(ex.X); err != nil {
			return err
		}
		from := ex.X.Type().Kind
		to := ex.To.Kind
		if from.StackKind() != to.StackKind() || from.StackKind() != to {
			// A conversion is required either when the representation
			// changes or when the target is a narrow kind (truncation).
			g.b.OpK(cil.Conv, to)
		}
		return nil
	case *minic.UnaryExpr:
		return g.genUnary(ex)
	case *minic.BinaryExpr:
		return g.genBinary(ex)
	case *minic.CallExpr:
		return g.genCall(ex)
	}
	return fmt.Errorf("codegen: unknown expression %T", e)
}

func (g *generator) genUnary(ex *minic.UnaryExpr) error {
	switch ex.Op {
	case minic.OpNeg:
		if err := g.genExpr(ex.X); err != nil {
			return err
		}
		g.b.OpK(cil.Neg, ex.Type().Kind)
		return nil
	case minic.OpCompl:
		if err := g.genExpr(ex.X); err != nil {
			return err
		}
		g.b.OpK(cil.Not, ex.Type().Kind)
		return nil
	case minic.OpNot:
		if err := g.genTruth(ex.X); err != nil {
			return err
		}
		g.b.ConstI(cil.I32, 0)
		g.b.OpK(cil.CmpEq, cil.I32)
		return nil
	}
	return fmt.Errorf("codegen: unknown unary operator %v", ex.Op)
}

func (g *generator) genBinary(ex *minic.BinaryExpr) error {
	if ex.Op.IsLogical() {
		return g.genLogical(ex)
	}
	if err := g.genExpr(ex.L); err != nil {
		return err
	}
	if err := g.genExpr(ex.R); err != nil {
		return err
	}
	if op, ok := cmpOpcode[ex.Op]; ok {
		g.b.OpK(op, ex.L.Type().Kind)
		return nil
	}
	if op, ok := binOpcode[ex.Op]; ok {
		kind := ex.Type().Kind
		if ex.Op == minic.OpShl || ex.Op == minic.OpShr {
			kind = ex.L.Type().Kind
		}
		g.b.OpK(op, kind)
		return nil
	}
	return fmt.Errorf("codegen: unknown binary operator %v", ex.Op)
}

// genLogical emits short-circuit && and || with a strict 0/1 result.
func (g *generator) genLogical(ex *minic.BinaryExpr) error {
	short := g.b.NewLabel()
	end := g.b.NewLabel()
	if err := g.genTruth(ex.L); err != nil {
		return err
	}
	if ex.Op == minic.OpLogAnd {
		g.b.BranchFalse(short)
	} else {
		g.b.BranchTrue(short)
	}
	if err := g.genTruth(ex.R); err != nil {
		return err
	}
	g.b.Branch(end)
	g.b.Bind(short)
	if ex.Op == minic.OpLogAnd {
		g.b.ConstI(cil.I32, 0)
	} else {
		g.b.ConstI(cil.I32, 1)
	}
	g.b.Bind(end)
	return nil
}

func (g *generator) genCall(ex *minic.CallExpr) error {
	if minic.IsIntrinsic(ex.Name) {
		return g.genIntrinsic(ex)
	}
	for _, a := range ex.Args {
		if err := g.genExpr(a); err != nil {
			return err
		}
	}
	g.b.CallMethod(ex.Name)
	return nil
}

// genIntrinsic lowers min, max and abs to straight-line compare-and-branch
// code using scratch locals.
func (g *generator) genIntrinsic(ex *minic.CallExpr) error {
	k := ex.Type().Kind
	switch ex.Name {
	case minic.IntrinsicMin, minic.IntrinsicMax:
		if err := g.genExpr(ex.Args[0]); err != nil {
			return err
		}
		if err := g.genExpr(ex.Args[1]); err != nil {
			return err
		}
		g.emitMinMaxFromStack(k, ex.Name == minic.IntrinsicMax)
		return nil
	case minic.IntrinsicAbs:
		if err := g.genExpr(ex.Args[0]); err != nil {
			return err
		}
		tA := g.temp(k)
		neg := g.b.NewLabel()
		end := g.b.NewLabel()
		g.b.StoreLocal(tA)
		g.b.LoadLocal(tA)
		g.emitZero(k)
		g.b.OpK(cil.CmpLt, k)
		g.b.BranchTrue(neg)
		g.b.LoadLocal(tA)
		g.b.Branch(end)
		g.b.Bind(neg)
		g.b.LoadLocal(tA)
		g.b.OpK(cil.Neg, k)
		g.b.Bind(end)
		return nil
	}
	return fmt.Errorf("codegen: unknown intrinsic %q", ex.Name)
}

// emitMinMaxFromStack assumes two values of kind k are on the stack (a below
// b) and replaces them with min(a, b) or max(a, b).
func (g *generator) emitMinMaxFromStack(k cil.Kind, isMax bool) {
	tA := g.temp(k)
	tB := g.temp2(k)
	keepA := g.b.NewLabel()
	end := g.b.NewLabel()
	g.b.StoreLocal(tB)
	g.b.StoreLocal(tA)
	g.b.LoadLocal(tA)
	g.b.LoadLocal(tB)
	if isMax {
		g.b.OpK(cil.CmpGe, k)
	} else {
		g.b.OpK(cil.CmpLe, k)
	}
	g.b.BranchTrue(keepA)
	g.b.LoadLocal(tB)
	g.b.Branch(end)
	g.b.Bind(keepA)
	g.b.LoadLocal(tA)
	g.b.Bind(end)
	return
}
