package codegen

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/kernels"
	"repro/internal/minic"
	"repro/internal/opt"
	"repro/internal/vm"
)

// compileSource runs the full offline pipeline (parse, check, fold,
// vectorize, lower) on MiniC source text.
func compileSource(t testing.TB, src string, opts Options) *cil.Module {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	opt.FoldConstants(chk)
	opt.Vectorize(chk)
	mod, err := Compile(chk, "test", opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

func run(t testing.TB, mod *cil.Module, entry string, args []vm.Value) vm.Value {
	t.Helper()
	rt, err := vm.NewRuntime(mod)
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	rt.StepLimit = 50_000_000
	v, err := rt.Call(entry, args...)
	if err != nil {
		t.Fatalf("call %s: %v", entry, err)
	}
	return v
}

func TestCompileScalarPrograms(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		entry string
		args  []vm.Value
		want  int64
	}{
		{
			name:  "arith and calls",
			src:   "i32 sq(i32 x) { return x * x; } i32 f(i32 a, i32 b) { return sq(a) + sq(b) - 1; }",
			entry: "f", args: []vm.Value{vm.IntValue(cil.I32, 3), vm.IntValue(cil.I32, 4)}, want: 24,
		},
		{
			name:  "recursion",
			src:   "i32 fib(i32 n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }",
			entry: "fib", args: []vm.Value{vm.IntValue(cil.I32, 15)}, want: 610,
		},
		{
			name: "while and compound assign",
			src: `i32 collatz(i32 n) {
				i32 steps = 0;
				while (n != 1) {
					if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
					steps++;
				}
				return steps;
			}`,
			entry: "collatz", args: []vm.Value{vm.IntValue(cil.I32, 27)}, want: 111,
		},
		{
			name:  "logical operators short circuit",
			src:   "i32 f(i32 a, i32 b) { if (a != 0 && 10 / a > 1 || b == 7) return 1; return 0; }",
			entry: "f", args: []vm.Value{vm.IntValue(cil.I32, 0), vm.IntValue(cil.I32, 7)}, want: 1,
		},
		{
			name:  "logical result is strict boolean",
			src:   "i32 f(i32 a, i32 b) { bool c = a && b; return (i32) c; }",
			entry: "f", args: []vm.Value{vm.IntValue(cil.I32, 5), vm.IntValue(cil.I32, 9)}, want: 1,
		},
		{
			name:  "intrinsics",
			src:   "i32 f(i32 a, i32 b) { return max(a, b) * 100 + min(a, b) * 10 + abs(a - b); }",
			entry: "f", args: []vm.Value{vm.IntValue(cil.I32, 3), vm.IntValue(cil.I32, 8)}, want: 835,
		},
		{
			name:  "casts and narrowing",
			src:   "i32 f(f64 x) { u8 b = (u8) x; i16 s = (i16) (x * 4.0); return b + s; }",
			entry: "f", args: []vm.Value{vm.FloatValue(cil.F64, 300.5)}, want: 300%256 + 1202,
		},
		{
			name: "new array and len",
			src: `i32 f(i32 n) {
				i32 a[] = new i32[n];
				for (i32 i = 0; i < len(a); i++) { a[i] = i * i; }
				i32 s = 0;
				for (i32 i = 0; i < n; i++) { s += a[i]; }
				return s;
			}`,
			entry: "f", args: []vm.Value{vm.IntValue(cil.I32, 10)}, want: 285,
		},
		{
			name:  "unsigned comparison",
			src:   "i32 f(u32 a, u32 b) { if (a < b) return 1; return 0; }",
			entry: "f", args: []vm.Value{vm.IntValue(cil.U32, -1), vm.IntValue(cil.U32, 1)}, want: 0,
		},
		{
			name:  "unary operators",
			src:   "i32 f(i32 a) { return -a + ~a + (i32) !a; }",
			entry: "f", args: []vm.Value{vm.IntValue(cil.I32, 5)}, want: -11,
		},
		{
			name:  "shifts",
			src:   "i64 f(i64 a, i32 s) { return (a << s) >> 2; }",
			entry: "f", args: []vm.Value{vm.IntValue(cil.I64, 3), vm.IntValue(cil.I32, 8)}, want: 192,
		},
		{
			name:  "for loop without plan",
			src:   "i32 tri(i32 n) { i32 s = 0; for (i32 i = 1; i <= n; i++) { s += i; } return s; }",
			entry: "tri", args: []vm.Value{vm.IntValue(cil.I32, 100)}, want: 5050,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mod := compileSource(t, c.src, Options{})
			got := run(t, mod, c.entry, c.args)
			if got.Int() != c.want {
				t.Errorf("%s = %d, want %d", c.entry, got.Int(), c.want)
			}
		})
	}
}

func TestCompileFloatProgram(t *testing.T) {
	src := `
f64 horner(f64 x) {
    f64 c0 = 1.0;
    f64 c1 = 0.5;
    f64 c2 = 0.25;
    return (c2 * x + c1) * x + c0;
}`
	mod := compileSource(t, src, Options{})
	got := run(t, mod, "horner", []vm.Value{vm.FloatValue(cil.F64, 2)})
	if got.Float() != 3.0 {
		t.Errorf("horner(2) = %v, want 3", got.Float())
	}
}

func TestCompileVoidFallOff(t *testing.T) {
	// A value-returning function whose last statement is a loop must still
	// verify (the generator appends a default return).
	src := "i32 f(i32 n) { for (i32 i = 0; i < n; i++) { if (i == 3) return i; } return n; }"
	mod := compileSource(t, src, Options{})
	if got := run(t, mod, "f", []vm.Value{vm.IntValue(cil.I32, 10)}); got.Int() != 3 {
		t.Errorf("f(10) = %d, want 3", got.Int())
	}
}

// hasVectorOps reports whether a method contains portable vector builtins.
func hasVectorOps(m *cil.Method) bool {
	for _, in := range m.Code {
		if in.Op.IsVector() {
			return true
		}
	}
	return false
}

func TestVectorizedKernelsMatchScalarAndReference(t *testing.T) {
	sizes := []int{0, 1, 5, 16, 17, 64, 100, 1023}
	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			scalarMod := compileSource(t, k.Source, Options{DisableVectorPlans: true})
			vectorMod := compileSource(t, k.Source, Options{})
			for _, n := range sizes {
				base, err := kernels.NewInputs(k.Name, n, int64(n)*7+1)
				if err != nil {
					t.Fatal(err)
				}
				refIn := base.Clone()
				wantScalar, err := kernels.Reference(k.Name, refIn)
				if err != nil {
					t.Fatal(err)
				}

				scalarIn := base.Clone()
				vectorIn := base.Clone()
				sres := run(t, scalarMod, k.Entry, scalarIn.Args)
				vres := run(t, vectorMod, k.Entry, vectorIn.Args)

				if k.Reduction {
					var sval, vval float64
					if k.Elem.IsFloat() || k.Name == "dotprod_fp" {
						sval, vval = sres.Float(), vres.Float()
					} else {
						sval, vval = float64(sres.Int()), float64(vres.Int())
					}
					if sval != wantScalar {
						t.Errorf("n=%d: scalar result %v != reference %v", n, sval, wantScalar)
					}
					if math.Abs(vval-sval) > 1e-9*math.Abs(sval) {
						t.Errorf("n=%d: vectorized result %v != scalar result %v", n, vval, sval)
					}
				} else {
					// Compare output arrays element by element against both
					// the scalar run and the reference.
					for ai := range refIn.Arrays {
						ref, sa, va := refIn.Arrays[ai], scalarIn.Arrays[ai], vectorIn.Arrays[ai]
						for i := 0; i < ref.Len(); i++ {
							if sa.Elem.IsFloat() {
								if sa.Float(i) != ref.Float(i) || va.Float(i) != ref.Float(i) {
									t.Fatalf("n=%d: array %d element %d mismatch: ref %v scalar %v vector %v",
										n, ai, i, ref.Float(i), sa.Float(i), va.Float(i))
								}
							} else if sa.Int(i) != ref.Int(i) || va.Int(i) != ref.Int(i) {
								t.Fatalf("n=%d: array %d element %d mismatch: ref %v scalar %v vector %v",
									n, ai, i, ref.Int(i), sa.Int(i), va.Int(i))
							}
						}
					}
				}
			}
		})
	}
}

func TestTable1KernelsAreVectorized(t *testing.T) {
	for _, k := range kernels.Table1() {
		vectorMod := compileSource(t, k.Source, Options{})
		scalarMod := compileSource(t, k.Source, Options{DisableVectorPlans: true})
		vm1 := vectorMod.Method(k.Entry)
		sm := scalarMod.Method(k.Entry)
		if !hasVectorOps(vm1) {
			t.Errorf("%s: vectorized module contains no vector builtins", k.Name)
		}
		if hasVectorOps(sm) {
			t.Errorf("%s: scalar module contains vector builtins", k.Name)
		}
		info := anno.VectorInfoOf(vm1)
		if info == nil || len(info.Loops) != 1 {
			t.Errorf("%s: missing or wrong vectorization annotation: %+v", k.Name, info)
			continue
		}
		if info.Loops[0].Elem != k.Elem || info.Loops[0].Lanes != k.Elem.Lanes() || !info.Loops[0].NoAliasProven {
			t.Errorf("%s: annotation content wrong: %+v", k.Name, info.Loops[0])
		}
		req := anno.HWReqOf(vm1)
		if req == nil || !req.UsesVector {
			t.Errorf("%s: hardware requirement annotation missing UsesVector", k.Name)
		}
		if k.Elem.IsFloat() && !req.UsesFloat {
			t.Errorf("%s: hardware requirement annotation missing UsesFloat", k.Name)
		}
	}
}

func TestNonVectorizableKernelsStayScalar(t *testing.T) {
	for _, name := range []string{"fir", "checksum", "dotprod_fp"} {
		k := kernels.MustGet(name)
		mod := compileSource(t, k.Source, Options{})
		if hasVectorOps(mod.Method(k.Entry)) {
			t.Errorf("%s: must not be vectorized (dependences / FP reassociation / control flow)", name)
		}
	}
}

func TestDisableAnnotationsOption(t *testing.T) {
	k := kernels.MustGet("saxpy_fp")
	mod := compileSource(t, k.Source, Options{DisableAnnotations: true})
	m := mod.Method(k.Entry)
	if len(m.Annotations) != 0 {
		t.Errorf("annotations present despite DisableAnnotations: %v", m.AnnotationKeys())
	}
	if !hasVectorOps(m) {
		t.Error("vector code should still be emitted when only annotations are disabled")
	}
}

func TestCompileRejectsBadStatements(t *testing.T) {
	// Directly exercise generator error paths with a malformed AST (these
	// cannot be produced by the front end, but the generator must not
	// panic).
	g := &generator{}
	if err := g.genStmt(nil); err == nil {
		t.Error("genStmt(nil) should fail")
	}
	if err := g.genExpr(nil); err == nil {
		t.Error("genExpr(nil) should fail")
	}
	if err := g.genLoadSym(nil); err == nil {
		t.Error("genLoadSym(nil) should fail")
	}
	if err := g.genStoreSym(nil); err == nil {
		t.Error("genStoreSym(nil) should fail")
	}
}

func TestVectorizedSumProperty(t *testing.T) {
	k := kernels.MustGet("sum_u8")
	scalarMod := compileSource(t, k.Source, Options{DisableVectorPlans: true})
	vectorMod := compileSource(t, k.Source, Options{})
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 300)
		in, err := kernels.NewInputs(k.Name, n, seed)
		if err != nil {
			return false
		}
		s := run(t, scalarMod, k.Entry, in.Clone().Args)
		v := run(t, vectorMod, k.Entry, in.Clone().Args)
		return s.Int() == v.Int()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedCodeDisassembles(t *testing.T) {
	k := kernels.MustGet("max_u8")
	mod := compileSource(t, k.Source, Options{})
	dis := cil.Disassemble(mod)
	for _, want := range []string{"vload.u8", "vredmax.u8", ".annotation split.vec", ".annotation split.hwreq"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}
