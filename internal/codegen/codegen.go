// Package codegen is the back half of the offline compiler: it lowers the
// type-checked (and optimized) MiniC AST to the portable bytecode, emitting
// vectorized loops from the optimizer's VectorPlans and attaching the split
// compilation annotations (vectorization facts and hardware requirements) to
// the generated methods.
//
// In the paper's toolchain this corresponds to the CLI back end of GCC: the
// point where target-independent optimization results are frozen into the
// deployment format.
package codegen

import (
	"fmt"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/minic"
	"repro/internal/opt"
)

// Options controls code generation.
type Options struct {
	// DisableVectorPlans ignores the optimizer's vectorization plans and
	// emits plain scalar loops. Used to produce the "scalar bytecode"
	// baseline of Table 1.
	DisableVectorPlans bool
	// DisableAnnotations suppresses all split-compilation annotations while
	// still emitting vectorized code. Used by ablation experiments.
	DisableAnnotations bool
	// AnnotationVersion selects the on-wire schema of the attached
	// annotations: anno.V0 (the default) emits the legacy bare streams,
	// anno.V1 the versioned envelope.
	AnnotationVersion uint32
}

// Compile lowers every function of the checked program into a verified
// bytecode module.
func Compile(chk *minic.Checked, moduleName string, opts Options) (*cil.Module, error) {
	mod := cil.NewModule(moduleName)
	// One generator serves every function: its slot maps and plan buffer
	// are cleared per function (genFunc) instead of reallocated, the same
	// allocation-lean discipline the online compile pipeline follows.
	g := &generator{chk: chk, opts: opts}
	for _, fn := range chk.Prog.Funcs {
		g.info = chk.Funcs[fn.Name]
		m, err := g.genFunc(fn)
		if err != nil {
			return nil, err
		}
		if err := mod.AddMethod(m); err != nil {
			return nil, err
		}
	}
	if err := cil.Verify(mod); err != nil {
		return nil, fmt.Errorf("codegen: generated module does not verify: %w", err)
	}
	return mod, nil
}

type generator struct {
	chk  *minic.Checked
	info *minic.FuncInfo
	opts Options

	b          *cil.MethodBuilder
	localSlot  map[*minic.Symbol]int
	tempSlot   map[cil.Kind]int
	boundDecls map[*minic.Symbol]bool
	plans      []*opt.VectorPlan
}

func (g *generator) genFunc(fn *minic.FuncDecl) (*cil.Method, error) {
	params := make([]cil.Type, len(fn.Params))
	for i, p := range fn.Params {
		params[i] = p.Type
	}
	g.b = cil.NewMethodBuilder(fn.Name, params, fn.Ret)
	if g.localSlot == nil {
		g.localSlot = make(map[*minic.Symbol]int)
	} else {
		clear(g.localSlot)
	}
	if g.tempSlot == nil {
		g.tempSlot = make(map[cil.Kind]int)
	} else {
		clear(g.tempSlot)
	}
	clear(g.boundDecls) // no-op on the nil map; it is created lazily
	g.plans = g.plans[:0]
	for _, sym := range g.info.Locals {
		g.localSlot[sym] = g.b.AddLocal(sym.Type)
	}

	if err := g.genBlock(fn.Body); err != nil {
		return nil, err
	}
	// Guarantee that control cannot fall off the end of the method. For
	// void functions this is the implicit return; for value-returning
	// functions whose control flow provably returns earlier, the epilogue
	// is unreachable but keeps the verifier's "falls off the end" rule
	// satisfied with a well-typed default value.
	if fn.Ret.Kind == cil.Void {
		g.b.Return()
	} else {
		g.emitZero(fn.Ret.Kind)
		g.b.Return()
	}

	m, err := g.b.Finish()
	if err != nil {
		return nil, err
	}
	if !g.opts.DisableAnnotations {
		if err := g.attachAnnotations(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// attachAnnotations records the vectorization facts and hardware
// requirements of the generated method at the configured schema version.
func (g *generator) attachAnnotations(m *cil.Method) error {
	if len(g.plans) > 0 {
		info := &anno.VectorInfo{}
		for _, p := range g.plans {
			info.Loops = append(info.Loops, anno.VectorLoop{
				LoopID:        p.LoopID,
				Elem:          p.Elem,
				Lanes:         p.Lanes,
				Pattern:       p.Pattern,
				NoAliasProven: true,
			})
		}
		if err := anno.AttachVectorInfoV(m, info, g.opts.AnnotationVersion); err != nil {
			return err
		}
	}

	req := &anno.HWReq{}
	vecKinds := make(map[cil.Kind]bool)
	for _, in := range m.Code {
		if in.Op.IsVector() {
			req.UsesVector = true
			vecKinds[in.Kind] = true
		}
		if in.Kind.IsFloat() && (in.Op.IsBinaryArith() || in.Op.IsCompare() || in.Op == cil.LdcF ||
			in.Op == cil.Neg || in.Op == cil.Conv || in.Op == cil.LdElem || in.Op == cil.StElem) {
			req.UsesFloat = true
		}
	}
	for k := range vecKinds {
		req.VectorKinds = append(req.VectorKinds, k)
	}
	sortKinds(req.VectorKinds)
	// Static instruction count is the work proxy the runtime scheduler uses
	// to decide whether offloading is worth the dispatch latency.
	req.EstimatedWork = int64(len(m.Code))
	return anno.AttachHWReqV(m, req, g.opts.AnnotationVersion)
}

func sortKinds(kinds []cil.Kind) {
	for i := 1; i < len(kinds); i++ {
		for j := i; j > 0 && kinds[j] < kinds[j-1]; j-- {
			kinds[j], kinds[j-1] = kinds[j-1], kinds[j]
		}
	}
}

// ---- statements ------------------------------------------------------------

func (g *generator) genBlock(b *minic.BlockStmt) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) genStmt(s minic.Stmt) error {
	switch st := s.(type) {
	case *minic.BlockStmt:
		return g.genBlock(st)
	case *minic.DeclStmt:
		return g.genDecl(st)
	case *minic.AssignStmt:
		return g.genAssign(st)
	case *minic.IfStmt:
		return g.genIf(st)
	case *minic.WhileStmt:
		return g.genWhile(st)
	case *minic.ForStmt:
		return g.genFor(st)
	case *minic.ReturnStmt:
		if st.Value != nil {
			if err := g.genExpr(st.Value); err != nil {
				return err
			}
		}
		g.b.Return()
		return nil
	case *minic.ExprStmt:
		call, ok := st.X.(*minic.CallExpr)
		if !ok {
			return fmt.Errorf("codegen: expression statement is not a call")
		}
		if err := g.genExpr(call); err != nil {
			return err
		}
		if call.Type().Kind != cil.Void {
			g.b.Op(cil.Pop)
		}
		return nil
	}
	return fmt.Errorf("codegen: unknown statement %T", s)
}

// declSymbol finds the local symbol allocated by the checker for a
// declaration statement. Declarations and symbols are matched positionally
// through the localSlot map built from FuncInfo.Locals; since a DeclStmt does
// not carry its symbol, we locate it by name among locals that have not yet
// been bound to a declaration. To keep this robust with shadowing, the
// checker allocates locals in declaration order, so the first unbound local
// with a matching name is the right one.
func (g *generator) declSymbol(d *minic.DeclStmt) (*minic.Symbol, error) {
	for _, sym := range g.info.Locals {
		if sym.Name != d.Name || sym.Type != d.Typ {
			continue
		}
		if _, bound := g.boundDecls[sym]; bound {
			continue
		}
		if g.boundDecls == nil {
			g.boundDecls = make(map[*minic.Symbol]bool)
		}
		g.boundDecls[sym] = true
		return sym, nil
	}
	return nil, fmt.Errorf("codegen: no local slot for declaration of %q", d.Name)
}

func (g *generator) genDecl(d *minic.DeclStmt) error {
	sym, err := g.declSymbol(d)
	if err != nil {
		return err
	}
	if d.Init == nil {
		return nil
	}
	if err := g.genExpr(d.Init); err != nil {
		return err
	}
	return g.genStoreSym(sym)
}

func (g *generator) genAssign(a *minic.AssignStmt) error {
	switch lhs := a.LHS.(type) {
	case *minic.Ident:
		if err := g.genExpr(a.RHS); err != nil {
			return err
		}
		return g.genStoreSym(lhs.Sym)
	case *minic.IndexExpr:
		if err := g.genExpr(lhs.Arr); err != nil {
			return err
		}
		if err := g.genExpr(lhs.Index); err != nil {
			return err
		}
		if err := g.genExpr(a.RHS); err != nil {
			return err
		}
		g.b.OpK(cil.StElem, lhs.Type().Kind)
		return nil
	}
	return fmt.Errorf("codegen: unsupported assignment target %T", a.LHS)
}

func (g *generator) genIf(s *minic.IfStmt) error {
	elseL := g.b.NewLabel()
	endL := g.b.NewLabel()
	if err := g.genCondValue(s.Cond); err != nil {
		return err
	}
	g.b.BranchFalse(elseL)
	if err := g.genBlock(s.Then); err != nil {
		return err
	}
	g.b.Branch(endL)
	g.b.Bind(elseL)
	if s.Else != nil {
		if err := g.genBlock(s.Else); err != nil {
			return err
		}
	}
	g.b.Bind(endL)
	return nil
}

func (g *generator) genWhile(s *minic.WhileStmt) error {
	head := g.b.NewLabel()
	exit := g.b.NewLabel()
	g.b.Bind(head)
	if err := g.genCondValue(s.Cond); err != nil {
		return err
	}
	g.b.BranchFalse(exit)
	if err := g.genBlock(s.Body); err != nil {
		return err
	}
	g.b.Branch(head)
	g.b.Bind(exit)
	return nil
}

func (g *generator) genFor(s *minic.ForStmt) error {
	plan := opt.PlanOf(s)
	if plan != nil && !g.opts.DisableVectorPlans {
		return g.genVectorLoop(s, plan)
	}
	if s.Init != nil {
		if err := g.genStmt(s.Init); err != nil {
			return err
		}
	}
	head := g.b.NewLabel()
	exit := g.b.NewLabel()
	g.b.Bind(head)
	if s.Cond != nil {
		if err := g.genCondValue(s.Cond); err != nil {
			return err
		}
		g.b.BranchFalse(exit)
	}
	if err := g.genBlock(s.Body); err != nil {
		return err
	}
	if s.Post != nil {
		if err := g.genStmt(s.Post); err != nil {
			return err
		}
	}
	g.b.Branch(head)
	g.b.Bind(exit)
	return nil
}
