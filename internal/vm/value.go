// Package vm implements the managed runtime of the virtualization layer: a
// module loader, verification on load, and a reference interpreter for the
// portable bytecode including the portable vector builtins.
//
// The interpreter plays the role Mono's interpreter plays in the paper's
// toolchain: it defines the semantics every JIT back end must preserve, and
// it is the oracle the differential tests compare JIT-compiled code against.
package vm

import (
	"fmt"

	"repro/internal/cil"
	"repro/internal/prim"
)

// Value is a runtime value on the evaluation stack, in a local slot or in an
// argument slot.
type Value struct {
	Kind cil.Kind
	S    prim.Scalar // scalar payload (integers normalized per Kind)
	Ref  *Array      // array payload when Kind == cil.Ref
	Vec  prim.Vec    // vector payload when Kind == cil.Vec
}

// IntValue returns a scalar integer Value of kind k: the value is truncated
// to k's width and then held in its evaluation-stack representation.
func IntValue(k cil.Kind, v int64) Value {
	return Value{Kind: k.StackKind(), S: prim.Int(k.StackKind(), prim.Normalize(k, v))}
}

// FloatValue returns a scalar floating-point Value of kind k.
func FloatValue(k cil.Kind, v float64) Value {
	return Value{Kind: k, S: prim.Float(k, v)}
}

// RefValue returns an array-reference Value.
func RefValue(a *Array) Value { return Value{Kind: cil.Ref, Ref: a} }

// VecValue returns a vector Value.
func VecValue(v prim.Vec) Value { return Value{Kind: cil.Vec, Vec: v} }

// Int returns the integer payload.
func (v Value) Int() int64 { return v.S.I }

// Float returns the floating-point payload.
func (v Value) Float() float64 { return v.S.F }

func (v Value) String() string {
	switch {
	case v.Kind == cil.Ref:
		if v.Ref == nil {
			return "null"
		}
		return fmt.Sprintf("%s[%d]", v.Ref.Elem, v.Ref.Len())
	case v.Kind == cil.Vec:
		return fmt.Sprintf("vec%x", v.Vec)
	case v.Kind.IsFloat():
		return fmt.Sprintf("%s(%g)", v.Kind, v.S.F)
	default:
		return fmt.Sprintf("%s(%d)", v.Kind, v.S.I)
	}
}

// Array is a managed, typed one-dimensional array. Its storage is a raw byte
// buffer laid out exactly like native memory (little-endian, densely packed)
// so that vector loads and stores behave identically in the interpreter and
// on the simulated machines.
type Array struct {
	Elem cil.Kind
	Data []byte
}

// NewArray allocates an array of n elements of kind elem, zero-initialized.
func NewArray(elem cil.Kind, n int) *Array {
	return &Array{Elem: elem, Data: make([]byte, n*elem.Size())}
}

// Len returns the number of elements.
func (a *Array) Len() int {
	if a == nil {
		return 0
	}
	return len(a.Data) / a.Elem.Size()
}

// check panics with a descriptive message on out-of-bounds access; the
// interpreter converts the panic into a trap error.
func (a *Array) check(i, n int) error {
	if a == nil {
		return fmt.Errorf("vm: null array dereference")
	}
	if i < 0 || i+n > a.Len() {
		return fmt.Errorf("vm: index %d (+%d) out of range for %s[%d]", i, n-1, a.Elem, a.Len())
	}
	return nil
}

// Get reads element i as a scalar.
func (a *Array) Get(i int) (prim.Scalar, error) {
	if err := a.check(i, 1); err != nil {
		return prim.Scalar{}, err
	}
	return loadScalar(a.Elem, a.Data[i*a.Elem.Size():]), nil
}

// Set writes element i from a scalar.
func (a *Array) Set(i int, s prim.Scalar) error {
	if err := a.check(i, 1); err != nil {
		return err
	}
	storeScalar(a.Elem, a.Data[i*a.Elem.Size():], s)
	return nil
}

// GetVec reads cil.VecBytes worth of consecutive elements starting at i.
func (a *Array) GetVec(i int) (prim.Vec, error) {
	lanes := a.Elem.Lanes()
	if err := a.check(i, lanes); err != nil {
		return prim.Vec{}, err
	}
	var v prim.Vec
	copy(v[:], a.Data[i*a.Elem.Size():])
	return v, nil
}

// SetVec writes cil.VecBytes worth of consecutive elements starting at i.
func (a *Array) SetVec(i int, v prim.Vec) error {
	lanes := a.Elem.Lanes()
	if err := a.check(i, lanes); err != nil {
		return err
	}
	copy(a.Data[i*a.Elem.Size():], v[:])
	return nil
}

// SetInt is a convenience wrapper storing an integer element.
func (a *Array) SetInt(i int, v int64) error { return a.Set(i, prim.Int(a.Elem, v)) }

// SetFloat is a convenience wrapper storing a floating-point element.
func (a *Array) SetFloat(i int, v float64) error { return a.Set(i, prim.Float(a.Elem, v)) }

// Int returns element i as an int64 (panics on out of range; intended for
// tests and harness code).
func (a *Array) Int(i int) int64 {
	s, err := a.Get(i)
	if err != nil {
		panic(err)
	}
	return s.I
}

// Float returns element i as a float64 (panics on out of range; intended for
// tests and harness code).
func (a *Array) Float(i int) float64 {
	s, err := a.Get(i)
	if err != nil {
		panic(err)
	}
	return s.F
}

// loadScalar reads one element of kind k from the head of buf.
func loadScalar(k cil.Kind, buf []byte) prim.Scalar {
	var vec prim.Vec
	copy(vec[:k.Size()], buf[:k.Size()])
	return prim.LaneGet(k, vec, 0)
}

// storeScalar writes one element of kind k to the head of buf.
func storeScalar(k cil.Kind, buf []byte, s prim.Scalar) {
	var vec prim.Vec
	prim.LaneSet(k, &vec, 0, s)
	copy(buf[:k.Size()], vec[:k.Size()])
}
