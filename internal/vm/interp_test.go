package vm

import (
	"strings"
	"testing"

	"repro/internal/cil"
	"repro/internal/prim"
)

func runtimeFor(t testing.TB, methods ...*cil.Method) *Runtime {
	mod := cil.NewModule("test")
	for _, m := range methods {
		if err := mod.AddMethod(m); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := NewRuntime(mod)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return rt
}

func buildAdd(t testing.TB) *cil.Method {
	b := cil.NewMethodBuilder("add", []cil.Type{cil.Scalar(cil.I32), cil.Scalar(cil.I32)}, cil.Scalar(cil.I32))
	b.LoadArg(0).LoadArg(1).OpK(cil.Add, cil.I32).Return()
	return b.MustFinish()
}

// buildSumLoop: func sum(a i32[], n i32) i32
func buildSumLoop(t testing.TB) *cil.Method {
	b := cil.NewMethodBuilder("sum", []cil.Type{cil.Array(cil.I32), cil.Scalar(cil.I32)}, cil.Scalar(cil.I32))
	s := b.AddLocal(cil.Scalar(cil.I32))
	i := b.AddLocal(cil.Scalar(cil.I32))
	head := b.NewLabel()
	exit := b.NewLabel()
	b.ConstI(cil.I32, 0).StoreLocal(s)
	b.ConstI(cil.I32, 0).StoreLocal(i)
	b.Bind(head)
	b.LoadLocal(i).LoadArg(1).OpK(cil.CmpLt, cil.I32).BranchFalse(exit)
	b.LoadLocal(s).LoadArg(0).LoadLocal(i).OpK(cil.LdElem, cil.I32).OpK(cil.Add, cil.I32).StoreLocal(s)
	b.LoadLocal(i).ConstI(cil.I32, 1).OpK(cil.Add, cil.I32).StoreLocal(i)
	b.Branch(head)
	b.Bind(exit)
	b.LoadLocal(s).Return()
	return b.MustFinish()
}

// buildFib: recursive fibonacci.
func buildFib(t testing.TB) *cil.Method {
	b := cil.NewMethodBuilder("fib", []cil.Type{cil.Scalar(cil.I32)}, cil.Scalar(cil.I32))
	rec := b.NewLabel()
	b.LoadArg(0).ConstI(cil.I32, 2).OpK(cil.CmpLt, cil.I32).BranchFalse(rec)
	b.LoadArg(0).Return()
	b.Bind(rec)
	b.LoadArg(0).ConstI(cil.I32, 1).OpK(cil.Sub, cil.I32).CallMethod("fib")
	b.LoadArg(0).ConstI(cil.I32, 2).OpK(cil.Sub, cil.I32).CallMethod("fib")
	b.OpK(cil.Add, cil.I32).Return()
	return b.MustFinish()
}

func TestInterpStraightLine(t *testing.T) {
	rt := runtimeFor(t, buildAdd(t))
	v, err := rt.Call("add", IntValue(cil.I32, 2), IntValue(cil.I32, 40))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 42 {
		t.Errorf("add(2,40) = %d, want 42", v.Int())
	}
	if rt.Steps == 0 {
		t.Error("step counter did not advance")
	}
}

func TestInterpLoopOverArray(t *testing.T) {
	rt := runtimeFor(t, buildSumLoop(t))
	a := NewArray(cil.I32, 100)
	want := int64(0)
	for i := 0; i < 100; i++ {
		if err := a.SetInt(i, int64(i)); err != nil {
			t.Fatal(err)
		}
		want += int64(i)
	}
	v, err := rt.Call("sum", RefValue(a), IntValue(cil.I32, 100))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != want {
		t.Errorf("sum = %d, want %d", v.Int(), want)
	}
}

func TestInterpRecursion(t *testing.T) {
	rt := runtimeFor(t, buildFib(t))
	v, err := rt.Call("fib", IntValue(cil.I32, 12))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 144 {
		t.Errorf("fib(12) = %d, want 144", v.Int())
	}
}

func TestInterpCallDepthLimit(t *testing.T) {
	b := cil.NewMethodBuilder("loopforever", nil, cil.Scalar(cil.Void))
	b.CallMethod("loopforever").Return()
	rt := runtimeFor(t, b.MustFinish())
	rt.MaxCallDepth = 50
	if _, err := rt.Call("loopforever"); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected call-depth error, got %v", err)
	}
}

func TestInterpStepLimit(t *testing.T) {
	b := cil.NewMethodBuilder("spin", nil, cil.Scalar(cil.Void))
	head := b.NewLabel()
	b.Bind(head)
	b.Branch(head)
	b.Return()
	rt := runtimeFor(t, b.MustFinish())
	rt.StepLimit = 1000
	if _, err := rt.Call("spin"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("expected step-limit error, got %v", err)
	}
}

func TestInterpTraps(t *testing.T) {
	// Division by zero.
	b := cil.NewMethodBuilder("divz", []cil.Type{cil.Scalar(cil.I32)}, cil.Scalar(cil.I32))
	b.LoadArg(0).ConstI(cil.I32, 0).OpK(cil.Div, cil.I32).Return()
	rt := runtimeFor(t, b.MustFinish())
	if _, err := rt.Call("divz", IntValue(cil.I32, 7)); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected division trap, got %v", err)
	}

	// Out-of-bounds element access.
	b2 := cil.NewMethodBuilder("oob", []cil.Type{cil.Array(cil.I32)}, cil.Scalar(cil.I32))
	b2.LoadArg(0).ConstI(cil.I32, 100).OpK(cil.LdElem, cil.I32).Return()
	rt2 := runtimeFor(t, b2.MustFinish())
	if _, err := rt2.Call("oob", RefValue(NewArray(cil.I32, 4))); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected bounds trap, got %v", err)
	}

	// Null array.
	if _, err := rt2.Call("oob", RefValue(nil)); err == nil {
		t.Error("expected null-array trap")
	}

	// Negative array length.
	b3 := cil.NewMethodBuilder("badnew", nil, cil.Scalar(cil.I32))
	b3.ConstI(cil.I32, -3).OpK(cil.NewArr, cil.I32).OpK(cil.LdLen, cil.I32).Return()
	rt3 := runtimeFor(t, b3.MustFinish())
	if _, err := rt3.Call("badnew"); err == nil || !strings.Contains(err.Error(), "negative array length") {
		t.Errorf("expected negative-length trap, got %v", err)
	}
}

func TestInterpArgumentChecking(t *testing.T) {
	rt := runtimeFor(t, buildAdd(t))
	if _, err := rt.Call("add", IntValue(cil.I32, 1)); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := rt.Call("add", FloatValue(cil.F64, 1), IntValue(cil.I32, 2)); err == nil {
		t.Error("wrong argument kind accepted")
	}
	if _, err := rt.Call("missing"); err == nil {
		t.Error("unknown method accepted")
	}
	rt2 := runtimeFor(t, buildSumLoop(t))
	if _, err := rt2.Call("sum", RefValue(NewArray(cil.F64, 4)), IntValue(cil.I32, 4)); err == nil {
		t.Error("array element kind mismatch accepted")
	}
}

func TestInterpNewArrAndStElem(t *testing.T) {
	// make(n): arr = new u16[n]; arr[1] = 70000; return arr[1] + len(arr)
	b := cil.NewMethodBuilder("make", []cil.Type{cil.Scalar(cil.I32)}, cil.Scalar(cil.U32))
	arr := b.AddLocal(cil.Array(cil.U16))
	b.LoadArg(0).OpK(cil.NewArr, cil.U16).StoreLocal(arr)
	b.LoadLocal(arr).ConstI(cil.I32, 1).ConstI(cil.U16, 70000).OpK(cil.StElem, cil.U16)
	b.LoadLocal(arr).ConstI(cil.I32, 1).OpK(cil.LdElem, cil.U16)
	b.LoadLocal(arr).OpK(cil.LdLen, cil.U16).OpK(cil.Conv, cil.U32).OpK(cil.Add, cil.U32).Return()
	rt := runtimeFor(t, b.MustFinish())
	v, err := rt.Call("make", IntValue(cil.I32, 8))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(70000%65536 + 8)
	if v.Int() != want {
		t.Errorf("make(8) = %d, want %d", v.Int(), want)
	}
}

func TestInterpConvAndCompare(t *testing.T) {
	// trunc(x f64) i32 { if x > 10.5 return i32(x) else return -1 }
	b := cil.NewMethodBuilder("trunc", []cil.Type{cil.Scalar(cil.F64)}, cil.Scalar(cil.I32))
	els := b.NewLabel()
	b.LoadArg(0).ConstF(cil.F64, 10.5).OpK(cil.CmpGt, cil.F64).BranchFalse(els)
	b.LoadArg(0).OpK(cil.Conv, cil.I32).Return()
	b.Bind(els)
	b.ConstI(cil.I32, -1).OpK(cil.Neg, cil.I32).OpK(cil.Neg, cil.I32).Return()
	rt := runtimeFor(t, b.MustFinish())
	v, err := rt.Call("trunc", FloatValue(cil.F64, 42.9))
	if err != nil || v.Int() != 42 {
		t.Errorf("trunc(42.9) = %d (%v), want 42", v.Int(), err)
	}
	v, err = rt.Call("trunc", FloatValue(cil.F64, 3.0))
	if err != nil || v.Int() != -1 {
		t.Errorf("trunc(3.0) = %d (%v), want -1", v.Int(), err)
	}
}

func TestInterpVectorKernel(t *testing.T) {
	// vadd(dst, a, b u8[], n i32): vectorized main loop + scalar epilogue.
	b := cil.NewMethodBuilder("vadd", []cil.Type{cil.Array(cil.U8), cil.Array(cil.U8), cil.Array(cil.U8), cil.Scalar(cil.I32)}, cil.Scalar(cil.Void))
	i := b.AddLocal(cil.Scalar(cil.I32))
	lanes := int64(cil.U8.Lanes())
	vhead, vexit, shead, sexit := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.ConstI(cil.I32, 0).StoreLocal(i)
	b.Bind(vhead)
	b.LoadLocal(i).ConstI(cil.I32, lanes).OpK(cil.Add, cil.I32).LoadArg(3).OpK(cil.CmpGt, cil.I32).BranchTrue(vexit)
	b.LoadArg(0).LoadLocal(i)
	b.LoadArg(1).LoadLocal(i).OpK(cil.VLoad, cil.U8)
	b.LoadArg(2).LoadLocal(i).OpK(cil.VLoad, cil.U8)
	b.OpK(cil.VAdd, cil.U8)
	b.OpK(cil.VStore, cil.U8)
	b.LoadLocal(i).ConstI(cil.I32, lanes).OpK(cil.Add, cil.I32).StoreLocal(i)
	b.Branch(vhead)
	b.Bind(vexit)
	b.Bind(shead)
	b.LoadLocal(i).LoadArg(3).OpK(cil.CmpLt, cil.I32).BranchFalse(sexit)
	b.LoadArg(0).LoadLocal(i)
	b.LoadArg(1).LoadLocal(i).OpK(cil.LdElem, cil.U8)
	b.LoadArg(2).LoadLocal(i).OpK(cil.LdElem, cil.U8)
	b.OpK(cil.Add, cil.U32)
	b.OpK(cil.StElem, cil.U8)
	b.LoadLocal(i).ConstI(cil.I32, 1).OpK(cil.Add, cil.I32).StoreLocal(i)
	b.Branch(shead)
	b.Bind(sexit)
	b.Return()
	rt := runtimeFor(t, b.MustFinish())

	n := 37 // deliberately not a multiple of 16 to exercise the epilogue
	dst := NewArray(cil.U8, n)
	a := NewArray(cil.U8, n)
	c := NewArray(cil.U8, n)
	for k := 0; k < n; k++ {
		a.SetInt(k, int64(3*k))
		c.SetInt(k, int64(200+k))
	}
	if _, err := rt.Call("vadd", RefValue(dst), RefValue(a), RefValue(c), IntValue(cil.I32, int64(n))); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := int64(uint8(3*k + 200 + k))
		if got := dst.Int(k); got != want {
			t.Fatalf("dst[%d] = %d, want %d", k, got, want)
		}
	}
}

func TestInterpVectorReduction(t *testing.T) {
	// maxv(a u8[]) u32: single vector load + horizontal max, plus splat use.
	b := cil.NewMethodBuilder("maxv", []cil.Type{cil.Array(cil.U8)}, cil.Scalar(cil.U32))
	b.LoadArg(0).ConstI(cil.I32, 0).OpK(cil.VLoad, cil.U8)
	b.ConstI(cil.U8, 7).OpK(cil.VSplat, cil.U8)
	b.OpK(cil.VMax, cil.U8)
	b.OpK(cil.VRedMax, cil.U8)
	b.Return()
	rt := runtimeFor(t, b.MustFinish())
	a := NewArray(cil.U8, 16)
	for k := 0; k < 16; k++ {
		a.SetInt(k, int64(k))
	}
	v, err := rt.Call("maxv", RefValue(a))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 15 {
		t.Errorf("maxv = %d, want 15", v.Int())
	}
	a2 := NewArray(cil.U8, 16) // all zero: the splatted 7 must win
	v, err = rt.Call("maxv", RefValue(a2))
	if err != nil || v.Int() != 7 {
		t.Errorf("maxv(zeros) = %d (%v), want 7", v.Int(), err)
	}
}

func TestLoadFromEncodedBytes(t *testing.T) {
	mod := cil.NewModule("wire")
	if err := mod.AddMethod(buildAdd(t)); err != nil {
		t.Fatal(err)
	}
	if err := cil.Verify(mod); err != nil {
		t.Fatal(err)
	}
	rt, err := Load(cil.Encode(mod))
	if err != nil {
		t.Fatal(err)
	}
	v, err := rt.Call("add", IntValue(cil.I32, 20), IntValue(cil.I32, 22))
	if err != nil || v.Int() != 42 {
		t.Errorf("add over the wire = %d (%v), want 42", v.Int(), err)
	}
	if _, err := Load([]byte("garbage")); err == nil {
		t.Error("Load accepted garbage bytes")
	}
	// A structurally valid but unverifiable module must be rejected at load.
	bad := cil.NewModule("bad")
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	m.Code = []cil.Instr{{Op: cil.Pop}, {Op: cil.Ret}}
	if err := bad.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(cil.Encode(bad)); err == nil {
		t.Error("Load accepted an unverifiable module")
	}
}

func TestInterpStArgAndDup(t *testing.T) {
	// f(x i32) i32 { x = x*2; return x + x }  (uses starg and dup)
	b := cil.NewMethodBuilder("f", []cil.Type{cil.Scalar(cil.I32)}, cil.Scalar(cil.I32))
	b.LoadArg(0).ConstI(cil.I32, 2).OpK(cil.Mul, cil.I32).StoreArg(0)
	b.LoadArg(0).Op(cil.Dup).OpK(cil.Add, cil.I32).Return()
	rt := runtimeFor(t, b.MustFinish())
	v, err := rt.Call("f", IntValue(cil.I32, 5))
	if err != nil || v.Int() != 20 {
		t.Errorf("f(5) = %d (%v), want 20", v.Int(), err)
	}
}

func TestZeroValueAndCoerce(t *testing.T) {
	if zeroValue(cil.Scalar(cil.F32)).Kind != cil.F32 {
		t.Error("zeroValue float kind wrong")
	}
	if zeroValue(cil.Array(cil.U8)).Kind != cil.Ref {
		t.Error("zeroValue array kind wrong")
	}
	if zeroValue(cil.Scalar(cil.Vec)).Kind != cil.Vec {
		t.Error("zeroValue vec kind wrong")
	}
	if _, err := coerce(VecValue(prim.Vec{}), cil.Scalar(cil.I32)); err == nil {
		t.Error("coerce vec to int accepted")
	}
	if _, err := coerce(IntValue(cil.I32, 1), cil.Scalar(cil.Vec)); err == nil {
		t.Error("coerce int to vec accepted")
	}
	if _, err := coerce(IntValue(cil.I32, 1), cil.Scalar(cil.F64)); err == nil {
		t.Error("coerce int to float accepted")
	}
	v, err := coerce(IntValue(cil.I32, 300), cil.Scalar(cil.U8))
	if err != nil || v.Int() != 44 {
		t.Error("coerce to u8 should truncate")
	}
}
