package vm

import (
	"testing"

	"repro/internal/cil"
	"repro/internal/prim"
)

func TestArrayScalarAccess(t *testing.T) {
	a := NewArray(cil.U8, 10)
	if a.Len() != 10 {
		t.Fatalf("Len = %d, want 10", a.Len())
	}
	if err := a.SetInt(3, 300); err != nil {
		t.Fatal(err)
	}
	if got := a.Int(3); got != 300%256 {
		t.Errorf("u8 store of 300 reads back %d, want 44", got)
	}

	f := NewArray(cil.F64, 4)
	if err := f.SetFloat(2, 2.5); err != nil {
		t.Fatal(err)
	}
	if got := f.Float(2); got != 2.5 {
		t.Errorf("f64 element = %v, want 2.5", got)
	}

	i16 := NewArray(cil.I16, 4)
	if err := i16.SetInt(0, -5); err != nil {
		t.Fatal(err)
	}
	if got := i16.Int(0); got != -5 {
		t.Errorf("i16 element = %d, want -5 (sign extension)", got)
	}
}

func TestArrayBoundsAndNil(t *testing.T) {
	a := NewArray(cil.I32, 4)
	if err := a.SetInt(4, 1); err == nil {
		t.Error("out-of-range store accepted")
	}
	if _, err := a.Get(-1); err == nil {
		t.Error("negative index accepted")
	}
	var nilArr *Array
	if nilArr.Len() != 0 {
		t.Error("nil array Len should be 0")
	}
	if _, err := nilArr.Get(0); err == nil {
		t.Error("nil array access accepted")
	}
}

func TestArrayVectorAccess(t *testing.T) {
	a := NewArray(cil.U8, 20)
	for i := 0; i < 20; i++ {
		if err := a.SetInt(i, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := a.GetVec(2)
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 16; lane++ {
		if got := prim.LaneGet(cil.U8, v, lane).I; got != int64(lane+2) {
			t.Fatalf("lane %d = %d, want %d", lane, got, lane+2)
		}
	}
	if _, err := a.GetVec(5); err == nil {
		t.Error("vector load past the end accepted")
	}
	if err := a.SetVec(4, v); err != nil {
		t.Fatal(err)
	}
	if got := a.Int(4); got != 2 {
		t.Errorf("after SetVec(4), element 4 = %d, want 2", got)
	}

	f := NewArray(cil.F64, 3)
	vv := prim.VecSplat(cil.F64, prim.Float(cil.F64, 1.25))
	if err := f.SetVec(0, vv); err != nil {
		t.Fatal(err)
	}
	if f.Float(1) != 1.25 {
		t.Error("f64 vector store did not reach element 1")
	}
	if err := f.SetVec(2, vv); err == nil {
		t.Error("f64 vector store past the end accepted")
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	if IntValue(cil.U8, 300).Int() != 44 {
		t.Error("IntValue must normalize to the stack kind")
	}
	if FloatValue(cil.F32, 1.5).Float() != 1.5 {
		t.Error("FloatValue lost its payload")
	}
	a := NewArray(cil.I32, 2)
	if RefValue(a).Ref != a {
		t.Error("RefValue lost its payload")
	}
	for _, v := range []Value{IntValue(cil.I32, 3), FloatValue(cil.F64, 2.5), RefValue(a), RefValue(nil), VecValue(prim.Vec{})} {
		if v.String() == "" {
			t.Errorf("empty String() for %v", v.Kind)
		}
	}
}
