package vm

import (
	"fmt"

	"repro/internal/cil"
	"repro/internal/prim"
)

// Runtime is a loaded, verified module plus the reference interpreter state.
// A Runtime is not safe for concurrent use; create one per goroutine.
type Runtime struct {
	Module *cil.Module

	// Steps counts executed bytecode instructions across all calls, which
	// gives a target-independent measure of work for sanity checks.
	Steps int64

	// StepLimit aborts execution when more than this many instructions run
	// (0 means no limit). It protects tests against accidental infinite
	// loops in generated code.
	StepLimit int64

	// MaxCallDepth limits recursion (default 1024).
	MaxCallDepth int
}

// NewRuntime verifies the module and returns a Runtime for it.
func NewRuntime(mod *cil.Module) (*Runtime, error) {
	if err := cil.Verify(mod); err != nil {
		return nil, err
	}
	return &Runtime{Module: mod, MaxCallDepth: 1024}, nil
}

// Load decodes an encoded module, verifies it and returns a Runtime. This is
// the "deployment side" entry point: what arrives over the distribution
// boundary is the byte stream, never in-memory structures.
func Load(data []byte) (*Runtime, error) {
	mod, err := cil.Decode(data)
	if err != nil {
		return nil, err
	}
	return NewRuntime(mod)
}

// Call interprets the named method with the given arguments.
func (rt *Runtime) Call(name string, args ...Value) (Value, error) {
	m := rt.Module.Method(name)
	if m == nil {
		return Value{}, fmt.Errorf("vm: unknown method %q", name)
	}
	return rt.call(m, args, 0)
}

func (rt *Runtime) call(m *cil.Method, args []Value, depth int) (Value, error) {
	if depth > rt.MaxCallDepth {
		return Value{}, fmt.Errorf("vm: call depth exceeds %d in %q", rt.MaxCallDepth, m.Name)
	}
	if len(args) != len(m.Params) {
		return Value{}, fmt.Errorf("vm: %q expects %d arguments, got %d", m.Name, len(m.Params), len(args))
	}
	frameArgs := make([]Value, len(args))
	for i, a := range args {
		v, err := coerce(a, m.Params[i])
		if err != nil {
			return Value{}, fmt.Errorf("vm: %q argument %d: %w", m.Name, i, err)
		}
		frameArgs[i] = v
	}
	locals := make([]Value, len(m.Locals))
	for i, t := range m.Locals {
		locals[i] = zeroValue(t)
	}
	stack := make([]Value, 0, m.MaxStack+4)

	push := func(v Value) { stack = append(stack, v) }
	pop := func() Value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	trap := func(pc int, format string, a ...interface{}) error {
		return fmt.Errorf("vm: %s @%d: %s", m.Name, pc, fmt.Sprintf(format, a...))
	}

	pc := 0
	for {
		if pc < 0 || pc >= len(m.Code) {
			return Value{}, trap(pc, "program counter out of range")
		}
		rt.Steps++
		if rt.StepLimit > 0 && rt.Steps > rt.StepLimit {
			return Value{}, trap(pc, "step limit %d exceeded", rt.StepLimit)
		}
		in := m.Code[pc]
		next := pc + 1

		switch in.Op {
		case cil.Nop:

		case cil.LdcI:
			push(IntValue(in.Kind, in.Int))
		case cil.LdcF:
			push(FloatValue(in.Kind, in.Float))
		case cil.LdArg:
			push(frameArgs[in.Int])
		case cil.StArg:
			v, err := coerce(pop(), m.Params[in.Int])
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			frameArgs[in.Int] = v
		case cil.LdLoc:
			push(locals[in.Int])
		case cil.StLoc:
			v, err := coerce(pop(), m.Locals[in.Int])
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			locals[in.Int] = v
		case cil.Dup:
			push(stack[len(stack)-1])
		case cil.Pop:
			pop()

		case cil.Add, cil.Sub, cil.Mul, cil.Div, cil.Rem, cil.And, cil.Or, cil.Xor, cil.Shl, cil.Shr:
			b := pop()
			a := pop()
			r, err := prim.Binary(in.Op, in.Kind, a.S, b.S)
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			push(scalarValue(in.Kind, r))
		case cil.Neg, cil.Not:
			a := pop()
			r, err := prim.Unary(in.Op, in.Kind, a.S)
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			push(scalarValue(in.Kind, r))
		case cil.Conv:
			a := pop()
			push(scalarValue(in.Kind, prim.Convert(a.Kind, in.Kind, a.S)))
		case cil.CmpEq, cil.CmpNe, cil.CmpLt, cil.CmpLe, cil.CmpGt, cil.CmpGe:
			b := pop()
			a := pop()
			res, err := prim.Compare(in.Op, in.Kind, a.S, b.S)
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			if res {
				push(IntValue(cil.I32, 1))
			} else {
				push(IntValue(cil.I32, 0))
			}

		case cil.Br:
			next = in.Target
		case cil.BrTrue, cil.BrFalse:
			c := pop()
			taken := prim.IsTrue(c.Kind, c.S)
			if in.Op == cil.BrFalse {
				taken = !taken
			}
			if taken {
				next = in.Target
			}
		case cil.Call:
			callee := rt.Module.Method(in.Str)
			if callee == nil {
				return Value{}, trap(pc, "unknown method %q", in.Str)
			}
			callArgs := make([]Value, len(callee.Params))
			for i := len(callee.Params) - 1; i >= 0; i-- {
				callArgs[i] = pop()
			}
			ret, err := rt.call(callee, callArgs, depth+1)
			if err != nil {
				return Value{}, err
			}
			if callee.Ret.Kind != cil.Void {
				push(ret)
			}
		case cil.Ret:
			if m.Ret.Kind == cil.Void {
				return Value{Kind: cil.Void}, nil
			}
			v, err := coerce(pop(), m.Ret)
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			return v, nil

		case cil.NewArr:
			n := pop()
			if n.S.I < 0 {
				return Value{}, trap(pc, "negative array length %d", n.S.I)
			}
			push(RefValue(NewArray(in.Kind, int(n.S.I))))
		case cil.LdLen:
			a := pop()
			if a.Ref == nil {
				return Value{}, trap(pc, "ldlen on null array")
			}
			push(IntValue(cil.I32, int64(a.Ref.Len())))
		case cil.LdElem:
			idx := pop()
			arr := pop()
			s, err := arrGet(arr, int(idx.S.I))
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			push(scalarValue(in.Kind, s))
		case cil.StElem:
			val := pop()
			idx := pop()
			arr := pop()
			if arr.Ref == nil {
				return Value{}, trap(pc, "stelem on null array")
			}
			if err := arr.Ref.Set(int(idx.S.I), val.S); err != nil {
				return Value{}, trap(pc, "%v", err)
			}

		case cil.VLoad:
			idx := pop()
			arr := pop()
			if arr.Ref == nil {
				return Value{}, trap(pc, "vload on null array")
			}
			v, err := arr.Ref.GetVec(int(idx.S.I))
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			push(VecValue(v))
		case cil.VStore:
			vec := pop()
			idx := pop()
			arr := pop()
			if arr.Ref == nil {
				return Value{}, trap(pc, "vstore on null array")
			}
			if err := arr.Ref.SetVec(int(idx.S.I), vec.Vec); err != nil {
				return Value{}, trap(pc, "%v", err)
			}
		case cil.VAdd, cil.VSub, cil.VMul, cil.VMax, cil.VMin:
			b := pop()
			a := pop()
			r, err := prim.VecBinary(in.Op, in.Kind, a.Vec, b.Vec)
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			push(VecValue(r))
		case cil.VSplat:
			a := pop()
			push(VecValue(prim.VecSplat(in.Kind, a.S)))
		case cil.VRedAdd, cil.VRedMax, cil.VRedMin:
			a := pop()
			r, err := prim.VecReduce(in.Op, in.Kind, a.Vec)
			if err != nil {
				return Value{}, trap(pc, "%v", err)
			}
			push(scalarValue(cil.ReduceKind(in.Op, in.Kind), r))

		default:
			return Value{}, trap(pc, "unimplemented opcode %s", in.Op)
		}
		pc = next
	}
}

// scalarValue wraps a prim.Scalar as a stack Value of the given kind.
func scalarValue(k cil.Kind, s prim.Scalar) Value {
	sk := k.StackKind()
	if sk.IsFloat() {
		return Value{Kind: sk, S: s}
	}
	return Value{Kind: sk, S: prim.Scalar{I: prim.Normalize(sk, s.I)}}
}

func arrGet(arr Value, idx int) (prim.Scalar, error) {
	if arr.Ref == nil {
		return prim.Scalar{}, fmt.Errorf("load from null array")
	}
	return arr.Ref.Get(idx)
}

// zeroValue returns the zero value for a declared slot type.
func zeroValue(t cil.Type) Value {
	switch {
	case t.IsArray():
		return Value{Kind: cil.Ref}
	case t.Kind == cil.Vec:
		return Value{Kind: cil.Vec}
	case t.Kind.IsFloat():
		return FloatValue(t.Kind, 0)
	default:
		return IntValue(t.Kind, 0)
	}
}

// coerce adapts a value to a declared slot type, normalizing narrow integers
// and checking array element kinds.
func coerce(v Value, t cil.Type) (Value, error) {
	switch {
	case t.IsArray():
		if v.Kind != cil.Ref {
			return Value{}, fmt.Errorf("expected %s, got %s", t, v.Kind)
		}
		if v.Ref != nil && v.Ref.Elem != t.Elem {
			return Value{}, fmt.Errorf("expected %s, got %s[]", t, v.Ref.Elem)
		}
		return v, nil
	case t.Kind == cil.Vec:
		if v.Kind != cil.Vec {
			return Value{}, fmt.Errorf("expected vec, got %s", v.Kind)
		}
		return v, nil
	case t.Kind.IsFloat():
		if !v.Kind.IsFloat() {
			return Value{}, fmt.Errorf("expected %s, got %s", t, v.Kind)
		}
		return FloatValue(t.Kind, v.S.F), nil
	case t.Kind.IsInteger() || t.Kind == cil.Bool:
		if !v.Kind.IsInteger() && v.Kind != cil.Bool {
			return Value{}, fmt.Errorf("expected %s, got %s", t, v.Kind)
		}
		return IntValue(t.Kind.StackKind(), prim.Normalize(t.Kind, v.S.I)), nil
	default:
		return Value{}, fmt.Errorf("unsupported slot type %s", t)
	}
}
