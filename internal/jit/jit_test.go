package jit

import (
	"math"
	"testing"

	"repro/internal/cil"
	"repro/internal/codegen"
	"repro/internal/kernels"
	"repro/internal/minic"
	"repro/internal/nisa"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/vm"
)

// offline compiles MiniC source through the full offline pipeline.
func offline(t testing.TB, src string, opts codegen.Options) *cil.Module {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	opt.FoldConstants(chk)
	opt.Vectorize(chk)
	mod, err := codegen.Compile(chk, "test", opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

// deploy JIT-compiles a module for a target and returns a fresh machine.
func deploy(t testing.TB, mod *cil.Module, tgt *target.Desc, opts Options) (*sim.Machine, *nisa.Program) {
	t.Helper()
	prog, err := New(tgt, opts).CompileModule(mod)
	if err != nil {
		t.Fatalf("jit %s: %v", tgt.Name, err)
	}
	return sim.New(tgt, prog), prog
}

// runKernelOnMachine marshals kernel inputs into simulated memory, runs the
// entry point and returns the scalar result plus the output arrays copied
// back into fresh VM arrays.
func runKernelOnMachine(t testing.TB, m *sim.Machine, k kernels.Kernel, in *kernels.Inputs) (sim.Value, []*vm.Array) {
	t.Helper()
	args := make([]sim.Value, len(in.Args))
	addrs := make([]sim.Addr, 0, len(in.Arrays))
	arrIdx := 0
	for i, a := range in.Args {
		if a.Kind == cil.Ref {
			addr := m.CopyInArray(in.Arrays[arrIdx])
			addrs = append(addrs, addr)
			arrIdx++
			args[i] = sim.IntArg(int64(addr))
		} else if a.Kind.IsFloat() {
			args[i] = sim.FloatArg(a.Float())
		} else {
			args[i] = sim.IntArg(a.Int())
		}
	}
	res, err := m.Call(k.Entry, args...)
	if err != nil {
		t.Fatalf("sim call %s: %v", k.Entry, err)
	}
	outs := make([]*vm.Array, len(addrs))
	for i, addr := range addrs {
		outs[i] = vm.NewArray(in.Arrays[i].Elem, in.Arrays[i].Len())
		if err := m.CopyOutArray(addr, outs[i]); err != nil {
			t.Fatalf("copy out: %v", err)
		}
	}
	return res, outs
}

// TestJITMatchesInterpreterOnKernels is the central differential test of the
// deployment side: for every kernel, every Table 1 target plus the SPU and
// MCU, scalar and vectorized bytecode, and every register allocation mode,
// the JIT-compiled code must produce exactly the results of the reference
// interpreter.
func TestJITMatchesInterpreterOnKernels(t *testing.T) {
	targets := target.All()
	modes := []RegAllocMode{RegAllocOnline, RegAllocSplit, RegAllocOptimal}
	const n = 100

	for _, k := range kernels.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, vectorized := range []bool{false, true} {
				mod := offline(t, k.Source, codegen.Options{DisableVectorPlans: !vectorized})
				rt, err := vm.NewRuntime(mod.Clone())
				if err != nil {
					t.Fatal(err)
				}
				baseIn, err := kernels.NewInputs(k.Name, n, 42)
				if err != nil {
					t.Fatal(err)
				}
				interpIn := baseIn.Clone()
				want, err := rt.Call(k.Entry, interpIn.Args...)
				if err != nil {
					t.Fatal(err)
				}

				for _, tgt := range targets {
					for _, mode := range modes {
						machine, _ := deploy(t, mod, tgt, Options{RegAlloc: mode})
						simIn := baseIn.Clone()
						got, outs := runKernelOnMachine(t, machine, k, simIn)

						if k.Reduction {
							if k.Elem.IsFloat() || k.Name == "dotprod_fp" {
								if math.Abs(got.F-want.Float()) > 1e-12*math.Abs(want.Float()) {
									t.Errorf("%s/%s/%s vectorized=%v: result %v, interpreter %v",
										k.Name, tgt.Arch, mode, vectorized, got.F, want.Float())
								}
							} else if got.I != want.Int() {
								t.Errorf("%s/%s/%s vectorized=%v: result %d, interpreter %d",
									k.Name, tgt.Arch, mode, vectorized, got.I, want.Int())
							}
						} else {
							for ai, out := range outs {
								ref := interpIn.Arrays[ai]
								for i := 0; i < ref.Len(); i++ {
									var same bool
									if ref.Elem.IsFloat() {
										same = out.Float(i) == ref.Float(i)
									} else {
										same = out.Int(i) == ref.Int(i)
									}
									if !same {
										t.Fatalf("%s/%s/%s vectorized=%v: array %d element %d differs from interpreter",
											k.Name, tgt.Arch, mode, vectorized, ai, i)
									}
								}
							}
						}
					}
				}
			}
		})
	}
}

func TestJITGeneralPrograms(t *testing.T) {
	src := `
i32 fib(i32 n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
i32 collatz(i32 n) {
    i32 steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}
f64 poly(f64 x, i32 n) {
    f64 acc = 0.0;
    for (i32 i = 0; i < n; i++) {
        acc = acc * x + (f64) i;
    }
    return acc;
}
i64 mixed(i32 a, u8 b, i64 c) {
    u16 t = (u16) (a * 3 + b);
    return c + t - abs(a) + max(a, (i32) b);
}
i32 arrays(i32 n) {
    i32 buf[] = new i32[n];
    for (i32 i = 0; i < n; i++) { buf[i] = i * i - 3; }
    i32 s = 0;
    for (i32 i = 0; i < len(buf); i++) { s += buf[i]; }
    return s;
}
i32 logic(i32 a, i32 b) {
    bool x = a > 0 && b > 0 || a == b;
    if (!x) return -1;
    return (i32) x + a;
}
`
	mod := offline(t, src, codegen.Options{})
	rt, err := vm.NewRuntime(mod.Clone())
	if err != nil {
		t.Fatal(err)
	}
	calls := []struct {
		name string
		args []vm.Value
	}{
		{"fib", []vm.Value{vm.IntValue(cil.I32, 14)}},
		{"collatz", []vm.Value{vm.IntValue(cil.I32, 97)}},
		{"poly", []vm.Value{vm.FloatValue(cil.F64, 1.5), vm.IntValue(cil.I32, 10)}},
		{"mixed", []vm.Value{vm.IntValue(cil.I32, -7), vm.IntValue(cil.U8, 250), vm.IntValue(cil.I64, 1<<40)}},
		{"arrays", []vm.Value{vm.IntValue(cil.I32, 50)}},
		{"logic", []vm.Value{vm.IntValue(cil.I32, 3), vm.IntValue(cil.I32, 0)}},
		{"logic", []vm.Value{vm.IntValue(cil.I32, 0), vm.IntValue(cil.I32, 0)}},
	}
	for _, tgt := range target.All() {
		for _, mode := range []RegAllocMode{RegAllocOnline, RegAllocSplit, RegAllocOptimal} {
			machine, _ := deploy(t, mod, tgt, Options{RegAlloc: mode})
			for _, c := range calls {
				want, err := rt.Call(c.name, c.args...)
				if err != nil {
					t.Fatal(err)
				}
				simArgs := make([]sim.Value, len(c.args))
				for i, a := range c.args {
					if a.Kind.IsFloat() {
						simArgs[i] = sim.FloatArg(a.Float())
					} else {
						simArgs[i] = sim.IntArg(a.Int())
					}
				}
				got, err := machine.Call(c.name, simArgs...)
				if err != nil {
					t.Fatalf("%s on %s/%s: %v", c.name, tgt.Arch, mode, err)
				}
				if want.Kind.IsFloat() {
					if got.F != want.Float() {
						t.Errorf("%s on %s/%s = %v, interpreter %v", c.name, tgt.Arch, mode, got.F, want.Float())
					}
				} else if got.I != want.Int() {
					t.Errorf("%s on %s/%s = %d, interpreter %d", c.name, tgt.Arch, mode, got.I, want.Int())
				}
			}
		}
	}
}

func TestJITVectorLoweringVsScalarization(t *testing.T) {
	k := kernels.MustGet("vecadd_fp")
	mod := offline(t, k.Source, codegen.Options{})

	x86 := target.MustLookup(target.X86SSE)
	sparc := target.MustLookup(target.Sparc)

	progSIMD, err := New(x86, Options{}).CompileModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	progScalarized, err := New(sparc, Options{}).CompileModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	progForced, err := New(x86, Options{ForceScalarize: true}).CompileModule(mod)
	if err != nil {
		t.Fatal(err)
	}

	if progSIMD.Func(k.Entry).Stats.VectorLowered == 0 {
		t.Error("x86 JIT should lower vector builtins to SIMD")
	}
	if progSIMD.Func(k.Entry).Stats.VectorScalarized != 0 {
		t.Error("x86 JIT should not scalarize")
	}
	if progScalarized.Func(k.Entry).Stats.VectorScalarized == 0 {
		t.Error("UltraSparc JIT should scalarize vector builtins")
	}
	if progForced.Func(k.Entry).Stats.VectorLowered != 0 {
		t.Error("ForceScalarize must prevent SIMD lowering")
	}
	hasVec := false
	for _, in := range progScalarized.Func(k.Entry).Code {
		if in.Op.IsVector() {
			hasVec = true
		}
	}
	if hasVec {
		t.Error("scalarized code must not contain native vector instructions")
	}
}

func TestJITVectorizedFasterOnSIMDTarget(t *testing.T) {
	x86 := target.MustLookup(target.X86SSE)
	for _, name := range kernels.Table1Names {
		k := kernels.MustGet(name)
		scalarMod := offline(t, k.Source, codegen.Options{DisableVectorPlans: true})
		vectorMod := offline(t, k.Source, codegen.Options{})

		in, err := kernels.NewInputs(k.Name, 1024, 7)
		if err != nil {
			t.Fatal(err)
		}
		mScalar, _ := deploy(t, scalarMod, x86, Options{})
		runKernelOnMachine(t, mScalar, k, in.Clone())
		mVector, _ := deploy(t, vectorMod, x86, Options{})
		runKernelOnMachine(t, mVector, k, in.Clone())

		sc := mScalar.Stats.Cycles
		vc := mVector.Stats.Cycles
		if vc >= sc {
			t.Errorf("%s: vectorized code (%d cycles) is not faster than scalar (%d cycles) on x86+SSE", name, vc, sc)
		}
		speedup := float64(sc) / float64(vc)
		if k.Elem == cil.F64 && speedup > 4 {
			t.Errorf("%s: implausible f64 speedup %.1fx for 2-lane vectors", name, speedup)
		}
	}
}

func TestJITScalarizedWithinReasonOfScalar(t *testing.T) {
	// On targets without SIMD, running the vectorized bytecode must stay in
	// the same ballpark as the scalar bytecode (the paper reports 0.78x to
	// 1.5x); here we only assert it is not catastrophically slower.
	for _, arch := range []target.Arch{target.Sparc, target.PPC} {
		tgt := target.MustLookup(arch)
		for _, name := range kernels.Table1Names {
			k := kernels.MustGet(name)
			scalarMod := offline(t, k.Source, codegen.Options{DisableVectorPlans: true})
			vectorMod := offline(t, k.Source, codegen.Options{})
			in, err := kernels.NewInputs(k.Name, 512, 13)
			if err != nil {
				t.Fatal(err)
			}
			mScalar, _ := deploy(t, scalarMod, tgt, Options{})
			runKernelOnMachine(t, mScalar, k, in.Clone())
			mVector, _ := deploy(t, vectorMod, tgt, Options{})
			runKernelOnMachine(t, mVector, k, in.Clone())
			ratio := float64(mScalar.Stats.Cycles) / float64(mVector.Stats.Cycles)
			if ratio < 0.4 || ratio > 3.0 {
				t.Errorf("%s on %s: scalarized 'speedup' %.2fx outside the plausible band", name, arch, ratio)
			}
		}
	}
}

func TestJITSpillsUnderSmallRegisterFiles(t *testing.T) {
	// High register pressure source: many simultaneously live locals.
	src := `
i32 pressure(i32 a, i32 b, i32 c, i32 d) {
    i32 t0 = a + b;
    i32 t1 = b + c;
    i32 t2 = c + d;
    i32 t3 = a * d;
    i32 t4 = t0 + t1;
    i32 t5 = t2 + t3;
    i32 t6 = t0 * t2;
    i32 t7 = t1 * t3;
    i32 s = 0;
    for (i32 i = 0; i < 100; i++) {
        s = s + t0 + t1 + t2 + t3 + t4 + t5 + t6 + t7 + i;
    }
    return s;
}
`
	mod := offline(t, src, codegen.Options{})
	small := target.MustLookup(target.MCU).WithIntRegs(4)
	big := target.MustLookup(target.PPC)

	progSmall, err := New(small, Options{}).CompileModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	progBig, err := New(big, Options{}).CompileModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	if progSmall.Func("pressure").Stats.SpillSlots == 0 {
		t.Error("a 4-register target must spill in the pressure kernel")
	}
	if progBig.Func("pressure").Stats.SpillSlots > progSmall.Func("pressure").Stats.SpillSlots {
		t.Error("a 26-register target must not spill more than a 4-register target")
	}

	// Both must still compute the same value as the interpreter.
	rt, err := vm.NewRuntime(mod.Clone())
	if err != nil {
		t.Fatal(err)
	}
	want, err := rt.Call("pressure", vm.IntValue(cil.I32, 3), vm.IntValue(cil.I32, 5), vm.IntValue(cil.I32, 7), vm.IntValue(cil.I32, 11))
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(small, progSmall)
	got, err := m.Call("pressure", sim.IntArg(3), sim.IntArg(5), sim.IntArg(7), sim.IntArg(11))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.Int() {
		t.Errorf("pressure = %d with spilling, interpreter %d", got.I, want.Int())
	}
	if m.Stats.SpillLoads == 0 || m.Stats.SpillStores == 0 {
		t.Error("dynamic spill counters should be non-zero on the 4-register target")
	}
}

func TestJITRejectsUnknownCall(t *testing.T) {
	m := cil.NewMethod("f", nil, cil.Scalar(cil.Void))
	m.Code = []cil.Instr{{Op: cil.Call, Str: "missing"}, {Op: cil.Ret}}
	mod := cil.NewModule("bad")
	if err := mod.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	// Note: the module does not verify, and the JIT surfaces the problem.
	if _, err := New(target.MustLookup(target.X86SSE), Options{}).CompileModule(mod); err == nil {
		t.Error("JIT accepted a call to an unknown method")
	}
}

func TestRegAllocModeString(t *testing.T) {
	if RegAllocOnline.String() != "online" || RegAllocSplit.String() != "split" || RegAllocOptimal.String() != "optimal" {
		t.Error("RegAllocMode.String wrong")
	}
	if RegAllocMode(9).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestNativeDisassemblyIsReadable(t *testing.T) {
	k := kernels.MustGet("saxpy_fp")
	mod := offline(t, k.Source, codegen.Options{})
	_, prog := deploy(t, mod, target.MustLookup(target.X86SSE), Options{})
	text := prog.Disassemble()
	if len(text) == 0 {
		t.Fatal("empty disassembly")
	}
	for _, want := range []string{"saxpy:", "vload", "vadd.f64", "getarg", "ret"} {
		if !containsStr(text, want) {
			t.Errorf("native disassembly missing %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
