package jit

import (
	"fmt"

	"repro/internal/cil"
	"repro/internal/nisa"
)

// vregInfo describes one virtual register created during translation.
type vregInfo struct {
	class nisa.RegClass
	// named is true for virtual registers that hold a bytecode-level
	// variable (argument or local); those are the slots the split register
	// allocation annotation talks about.
	named bool
	// slot is the variable index for named vregs: 0..P-1 for arguments,
	// P..P+L-1 for locals.
	slot int
}

// operand is a compile-time descriptor of one evaluation-stack entry.
type operand struct {
	kind    cil.Kind // stack kind (cil.Ref for arrays, cil.Vec for vectors)
	isConst bool
	c       int64
	f       float64
	vreg    int   // valid when !isConst and lanes == nil
	lanes   []int // per-lane virtual registers for scalarized vectors
	elem    cil.Kind
}

type canonKey struct {
	depth int
	lane  int // -1 for scalar entries
	class nisa.RegClass
}

type fixup struct {
	codeIdx  int
	bcTarget int
}

// cmpState remembers the last emitted compare so a following conditional
// branch can fuse with it.
type cmpState struct {
	valid   bool
	codeIdx int
	vreg    int
	cond    nisa.Cond
	kind    cil.Kind
	ra, rb  nisa.Reg
}

type translator struct {
	c   *Compiler
	mod *cil.Module
	m   *cil.Method
	st  *compileState

	code  []nisa.Instr
	vregs []vregInfo

	argVreg  []int
	locVreg  []int   // -1 when the local is a scalarized vector
	locLanes [][]int // lane vregs for scalarized vector locals

	stack       []operand
	layouts     [][]cil.Type
	isTarget    []bool
	nativeStart []int
	fixups      []fixup
	canon       map[canonKey]int

	lastCmp cmpState

	stats nisa.Stats
}

// reset readies a pooled translator for one method, reusing every buffer's
// capacity from the previous compilation. This is what makes the steady
// state of the compile pipeline allocation-lean: a warm translator only
// allocates when a method outgrows everything compiled on this state before.
func (t *translator) reset(c *Compiler, mod *cil.Module, m *cil.Method, st *compileState) {
	t.c, t.mod, t.m, t.st = c, mod, m, st
	t.code = t.code[:0]
	t.vregs = t.vregs[:0]
	t.argVreg = t.argVreg[:0]
	t.locVreg = t.locVreg[:0]
	t.locLanes = t.locLanes[:0]
	t.stack = t.stack[:0]
	t.layouts = nil
	t.isTarget = t.isTarget[:0]
	t.nativeStart = t.nativeStart[:0]
	t.fixups = t.fixups[:0]
	if t.canon == nil {
		t.canon = make(map[canonKey]int)
	} else {
		clear(t.canon)
	}
	t.lastCmp = cmpState{}
	t.stats = nisa.Stats{}
}

// newVreg allocates a fresh virtual register of the given class.
func (t *translator) newVreg(class nisa.RegClass) int {
	t.vregs = append(t.vregs, vregInfo{class: class})
	return len(t.vregs) - 1
}

// newNamedVreg allocates a virtual register bound to a bytecode variable.
func (t *translator) newNamedVreg(class nisa.RegClass, slot int) int {
	t.vregs = append(t.vregs, vregInfo{class: class, named: true, slot: slot})
	return len(t.vregs) - 1
}

// vr wraps a virtual register index as a nisa.Reg operand.
func (t *translator) vr(i int) nisa.Reg {
	return nisa.Reg{Class: t.vregs[i].class, Index: i, Virtual: true}
}

func (t *translator) emit(in nisa.Instr) int {
	t.code = append(t.code, in)
	return len(t.code) - 1
}

func classOfStack(k cil.Kind) nisa.RegClass {
	if k == cil.Ref {
		return nisa.ClassInt
	}
	return nisa.ClassOf(k)
}

func (t *translator) push(op operand) { t.stack = append(t.stack, op) }
func (t *translator) pushReg(v int, k cil.Kind) {
	t.push(operand{kind: k, vreg: v})
}

func (t *translator) pop() operand {
	op := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	return op
}

// materialize returns a virtual register holding the operand's value,
// emitting a constant move when needed.
func (t *translator) materialize(op operand) int {
	if op.lanes != nil {
		// Scalarized vectors never appear in scalar contexts (the verifier
		// guarantees kinds match), so this is a translator bug if reached.
		panic("jit: cannot materialize a scalarized vector as a scalar")
	}
	if !op.isConst {
		return op.vreg
	}
	class := classOfStack(op.kind)
	v := t.newVreg(class)
	if class == nisa.ClassFloat {
		t.emit(nisa.Instr{Op: nisa.MovFImm, Kind: op.kind, Rd: t.vr(v), FImm: op.f})
	} else {
		t.emit(nisa.Instr{Op: nisa.MovImm, Kind: op.kind, Rd: t.vr(v), Imm: op.c})
	}
	return v
}

// canonVreg returns the canonical virtual register for a stack slot, used to
// make the abstract stack concrete across control-flow joins.
func (t *translator) canonVreg(depth, lane int, class nisa.RegClass) int {
	key := canonKey{depth: depth, lane: lane, class: class}
	if v, ok := t.canon[key]; ok {
		return v
	}
	v := t.newVreg(class)
	t.canon[key] = v
	return v
}

// flushStack moves every abstract stack entry into its canonical virtual
// register so that all predecessors of a join point agree on locations.
func (t *translator) flushStack() {
	for d := range t.stack {
		op := t.stack[d]
		if op.lanes != nil {
			newLanes := t.st.intSlice(len(op.lanes))
			for l, lv := range op.lanes {
				cv := t.canonVreg(d, l, t.vregs[lv].class)
				if cv != lv {
					t.emit(nisa.Instr{Op: nisa.Mov, Kind: op.elem, Rd: t.vr(cv), Ra: t.vr(lv)})
				}
				newLanes[l] = cv
			}
			t.stack[d] = operand{kind: op.kind, lanes: newLanes, elem: op.elem}
			continue
		}
		class := classOfStack(op.kind)
		cv := t.canonVreg(d, -1, class)
		if op.isConst {
			if class == nisa.ClassFloat {
				t.emit(nisa.Instr{Op: nisa.MovFImm, Kind: op.kind, Rd: t.vr(cv), FImm: op.f})
			} else {
				t.emit(nisa.Instr{Op: nisa.MovImm, Kind: op.kind, Rd: t.vr(cv), Imm: op.c})
			}
		} else if op.vreg != cv {
			t.emit(nisa.Instr{Op: nisa.Mov, Kind: op.kind, Rd: t.vr(cv), Ra: t.vr(op.vreg)})
		}
		t.stack[d] = operand{kind: op.kind, vreg: cv}
	}
}

// reconstructStack sets the abstract stack to the canonical registers
// corresponding to the verified entry layout of a join point.
func (t *translator) reconstructStack(layout []cil.Type) {
	t.stack = t.stack[:0]
	scalarize := !t.c.useSIMD()
	for d, typ := range layout {
		k := typ.Kind
		if typ.IsArray() {
			k = cil.Ref
		}
		if k == cil.Vec && scalarize {
			// Scalarized vector entries at join points are keyed per lane.
			// The element kind is unknown from the layout alone; joins with
			// live vector values do not occur in compiler-generated code,
			// so byte lanes are assumed (the widest lane count).
			lanes := t.st.intSlice(cil.VecBytes)
			for l := range lanes {
				lanes[l] = t.canonVreg(d, l, nisa.ClassInt)
			}
			t.push(operand{kind: cil.Vec, lanes: lanes, elem: cil.U8})
			continue
		}
		t.push(operand{kind: k, vreg: t.canonVreg(d, -1, classOfStack(k))})
	}
}

// guardVreg materializes any pending stack operand that aliases the given
// virtual register, so a following store to the variable cannot retroactively
// change values already pushed on the evaluation stack.
func (t *translator) guardVreg(v int) {
	for d := range t.stack {
		op := t.stack[d]
		if op.lanes != nil {
			for l, lv := range op.lanes {
				if lv == v {
					nv := t.newVreg(t.vregs[v].class)
					t.emit(nisa.Instr{Op: nisa.Mov, Kind: op.elem, Rd: t.vr(nv), Ra: t.vr(v)})
					op.lanes[l] = nv
				}
			}
			continue
		}
		if !op.isConst && op.vreg == v {
			nv := t.newVreg(t.vregs[v].class)
			t.emit(nisa.Instr{Op: nisa.Mov, Kind: op.kind, Rd: t.vr(nv), Ra: t.vr(v)})
			t.stack[d] = operand{kind: op.kind, vreg: nv}
		}
	}
}

// slotKindOf returns the declared kind of a variable slot.
func slotKindOf(typ cil.Type) cil.Kind {
	if typ.IsArray() {
		return cil.Ref
	}
	return typ.Kind
}

func (t *translator) run() error {
	m := t.m
	layouts, err := cil.StackLayouts(t.mod, m)
	if err != nil {
		return err
	}
	t.layouts = layouts
	t.isTarget = growBools(t.isTarget, len(m.Code))
	for _, in := range m.Code {
		if in.Op.IsBranch() {
			t.isTarget[in.Target] = true
		}
	}
	t.nativeStart = growInts(t.nativeStart, len(m.Code)+1)

	// Allocate named virtual registers and emit the argument prologue.
	t.argVreg = growInts(t.argVreg, len(m.Params))
	for i, p := range m.Params {
		class := classOfStack(slotKindOf(p))
		t.argVreg[i] = t.newNamedVreg(class, i)
		t.emit(nisa.Instr{Op: nisa.GetArg, Kind: slotKindOf(p), Rd: t.vr(t.argVreg[i]), Imm: int64(i)})
	}
	t.locVreg = growInts(t.locVreg, len(m.Locals))
	t.locLanes = growLanes(t.locLanes, len(m.Locals))
	for j, l := range m.Locals {
		if l.Kind == cil.Vec && !t.c.useSIMD() {
			t.locVreg[j] = -1
			lanes := t.st.intSlice(cil.VecBytes)
			for i := range lanes {
				lanes[i] = t.newVreg(nisa.ClassInt)
			}
			t.locLanes[j] = lanes
			continue
		}
		t.locVreg[j] = t.newNamedVreg(classOfStack(slotKindOf(l)), len(m.Params)+j)
	}

	for pc, in := range m.Code {
		if t.isTarget[pc] {
			// Fall-through edges into a join point must agree with branch
			// edges on where stack values live.
			if pc == 0 || !m.Code[pc-1].Op.IsTerminator() {
				t.flushStack()
			}
			if t.layouts[pc] != nil {
				t.reconstructStack(t.layouts[pc])
			}
		}
		t.nativeStart[pc] = len(t.code)
		if t.layouts[pc] == nil {
			// Unreachable instruction: skip (nothing can branch here).
			continue
		}
		if err := t.translate(pc, in); err != nil {
			return fmt.Errorf("bytecode @%d (%s): %w", pc, in, err)
		}
	}
	t.nativeStart[len(m.Code)] = len(t.code)

	// Resolve branch targets from bytecode indices to native indices.
	for _, f := range t.fixups {
		t.code[f.codeIdx].Target = t.nativeStart[f.bcTarget]
	}
	t.stats.CompileSteps += int64(len(t.code))
	return nil
}

func (t *translator) invalidateCmp() { t.lastCmp.valid = false }

func (t *translator) translate(pc int, in cil.Instr) error {
	switch in.Op {
	case cil.Nop:

	case cil.LdcI:
		t.push(operand{kind: in.Kind.StackKind(), isConst: true, c: in.Int})
	case cil.LdcF:
		t.push(operand{kind: in.Kind, isConst: true, f: in.Float})

	case cil.LdArg:
		i := int(in.Int)
		t.pushReg(t.argVreg[i], slotKindOf(t.m.Params[i]).StackKind())
	case cil.StArg:
		i := int(in.Int)
		v := t.pop()
		t.guardVreg(t.argVreg[i])
		t.storeToSlotVreg(t.argVreg[i], slotKindOf(t.m.Params[i]), v)
	case cil.LdLoc:
		j := int(in.Int)
		if t.locVreg[j] < 0 {
			lanes := t.st.intSliceCopy(t.locLanes[j])
			t.push(operand{kind: cil.Vec, lanes: lanes, elem: cil.U8})
			return nil
		}
		t.pushReg(t.locVreg[j], slotKindOf(t.m.Locals[j]).StackKind())
	case cil.StLoc:
		j := int(in.Int)
		v := t.pop()
		if t.locVreg[j] < 0 {
			if v.lanes == nil {
				return fmt.Errorf("store of non-vector value into vector local")
			}
			for l, lv := range t.locLanes[j] {
				t.guardVreg(lv)
				t.emit(nisa.Instr{Op: nisa.Mov, Kind: v.elem, Rd: t.vr(lv), Ra: t.vr(v.lanes[l])})
			}
			return nil
		}
		t.guardVreg(t.locVreg[j])
		t.storeToSlotVreg(t.locVreg[j], slotKindOf(t.m.Locals[j]), v)

	case cil.Dup:
		top := t.stack[len(t.stack)-1]
		if top.lanes != nil {
			top.lanes = t.st.intSliceCopy(top.lanes)
		}
		t.push(top)
	case cil.Pop:
		t.pop()

	case cil.Add, cil.Sub, cil.Mul, cil.Div, cil.Rem, cil.And, cil.Or, cil.Xor, cil.Shl, cil.Shr:
		b := t.pop()
		a := t.pop()
		ra, rb := t.materialize(a), t.materialize(b)
		class := classOfStack(in.Kind.StackKind())
		rd := t.newVreg(class)
		t.emit(nisa.Instr{Op: aluOp(in.Op, in.Kind), Kind: in.Kind, Rd: t.vr(rd), Ra: t.vr(ra), Rb: t.vr(rb)})
		t.pushReg(rd, in.Kind.StackKind())
	case cil.Neg:
		a := t.pop()
		ra := t.materialize(a)
		class := classOfStack(in.Kind.StackKind())
		rd := t.newVreg(class)
		op := nisa.Neg
		if in.Kind.IsFloat() {
			op = nisa.FNeg
		}
		t.emit(nisa.Instr{Op: op, Kind: in.Kind, Rd: t.vr(rd), Ra: t.vr(ra)})
		t.pushReg(rd, in.Kind.StackKind())
	case cil.Not:
		a := t.pop()
		ra := t.materialize(a)
		rd := t.newVreg(nisa.ClassInt)
		t.emit(nisa.Instr{Op: nisa.Not, Kind: in.Kind, Rd: t.vr(rd), Ra: t.vr(ra)})
		t.pushReg(rd, in.Kind.StackKind())

	case cil.Conv:
		a := t.pop()
		ra := t.materialize(a)
		rd := t.newVreg(classOfStack(in.Kind.StackKind()))
		t.emit(nisa.Instr{Op: nisa.Conv, Kind: in.Kind, SrcKind: a.kind, Rd: t.vr(rd), Ra: t.vr(ra)})
		t.pushReg(rd, in.Kind.StackKind())

	case cil.CmpEq, cil.CmpNe, cil.CmpLt, cil.CmpLe, cil.CmpGt, cil.CmpGe:
		b := t.pop()
		a := t.pop()
		ra, rb := t.materialize(a), t.materialize(b)
		rd := t.newVreg(nisa.ClassInt)
		idx := t.emit(nisa.Instr{Op: nisa.SetCmp, Kind: in.Kind, Cond: nisa.CondOf(in.Op),
			Rd: t.vr(rd), Ra: t.vr(ra), Rb: t.vr(rb)})
		t.pushReg(rd, cil.I32)
		t.lastCmp.valid = true
		t.lastCmp.codeIdx = idx
		t.lastCmp.vreg = rd
		t.lastCmp.cond = nisa.CondOf(in.Op)
		t.lastCmp.kind = in.Kind
		t.lastCmp.ra, t.lastCmp.rb = t.vr(ra), t.vr(rb)
		return nil // keep lastCmp valid

	case cil.Br:
		t.flushStack()
		idx := t.emit(nisa.Instr{Op: nisa.Jump})
		t.fixups = append(t.fixups, fixup{codeIdx: idx, bcTarget: in.Target})
	case cil.BrTrue, cil.BrFalse:
		cond := t.pop()
		fused := false
		if t.lastCmp.valid && !cond.isConst && cond.lanes == nil &&
			cond.vreg == t.lastCmp.vreg && t.lastCmp.codeIdx == len(t.code)-1 {
			// Fuse the preceding compare into the branch.
			c := t.lastCmp.cond
			if in.Op == cil.BrFalse {
				c = c.Negate()
			}
			kind, ra, rb := t.lastCmp.kind, t.lastCmp.ra, t.lastCmp.rb
			t.code = t.code[:len(t.code)-1]
			t.flushStack()
			idx := t.emit(nisa.Instr{Op: nisa.BranchCmp, Kind: kind, Cond: c, Ra: ra, Rb: rb})
			t.fixups = append(t.fixups, fixup{codeIdx: idx, bcTarget: in.Target})
			fused = true
		}
		if !fused {
			ra := t.materialize(cond)
			rz := t.newVreg(nisa.ClassInt)
			t.emit(nisa.Instr{Op: nisa.MovImm, Kind: cil.I32, Rd: t.vr(rz)})
			c := nisa.CondNe
			if in.Op == cil.BrFalse {
				c = nisa.CondEq
			}
			t.flushStack()
			idx := t.emit(nisa.Instr{Op: nisa.BranchCmp, Kind: cil.I32, Cond: c, Ra: t.vr(ra), Rb: t.vr(rz)})
			t.fixups = append(t.fixups, fixup{codeIdx: idx, bcTarget: in.Target})
		}

	case cil.Call:
		// Local methods and imported ones translate identically — the import
		// table carries the signature, and the hash-qualified symbol stays in
		// the native code as the stub the linker resolves at run time.
		params, ret, ok := t.mod.ResolveCall(in.Str)
		if !ok {
			return fmt.Errorf("call to unknown method %q", in.Str)
		}
		args := make([]nisa.Reg, len(params))
		for i := len(params) - 1; i >= 0; i-- {
			args[i] = t.vr(t.materialize(t.pop()))
		}
		call := nisa.Instr{Op: nisa.Call, Sym: in.Str, Args: args}
		if ret.Kind != cil.Void {
			retKind := slotKindOf(ret).StackKind()
			rd := t.newVreg(classOfStack(retKind))
			call.Rd = t.vr(rd)
			call.Kind = retKind
			t.emit(call)
			t.pushReg(rd, retKind)
		} else {
			t.emit(call)
		}

	case cil.Ret:
		ret := nisa.Instr{Op: nisa.Ret}
		if t.m.Ret.Kind != cil.Void {
			v := t.pop()
			ret.Ra = t.vr(t.materialize(v))
			ret.Kind = slotKindOf(t.m.Ret)
		}
		t.emit(ret)

	case cil.NewArr:
		n := t.pop()
		ra := t.materialize(n)
		rd := t.newVreg(nisa.ClassInt)
		t.emit(nisa.Instr{Op: nisa.Alloc, Kind: in.Kind, Rd: t.vr(rd), Ra: t.vr(ra)})
		t.pushReg(rd, cil.Ref)
	case cil.LdLen:
		arr := t.pop()
		rd := t.newVreg(nisa.ClassInt)
		t.emit(nisa.Instr{Op: nisa.ArrLen, Rd: t.vr(rd), Ra: t.vr(t.materialize(arr))})
		t.pushReg(rd, cil.I32)
	case cil.LdElem:
		idx := t.pop()
		arr := t.pop()
		rd := t.newVreg(classOfStack(in.Kind.StackKind()))
		t.emit(nisa.Instr{Op: nisa.Load, Kind: in.Kind,
			Rd: t.vr(rd), Ra: t.vr(t.materialize(arr)), Rb: t.vr(t.materialize(idx))})
		t.pushReg(rd, in.Kind.StackKind())
	case cil.StElem:
		val := t.pop()
		idx := t.pop()
		arr := t.pop()
		t.emit(nisa.Instr{Op: nisa.Store, Kind: in.Kind,
			Rd: t.vr(t.materialize(val)), Ra: t.vr(t.materialize(arr)), Rb: t.vr(t.materialize(idx))})

	case cil.VLoad, cil.VStore, cil.VAdd, cil.VSub, cil.VMul, cil.VMax, cil.VMin,
		cil.VSplat, cil.VRedAdd, cil.VRedMax, cil.VRedMin:
		if t.c.useSIMD() {
			t.translateVectorSIMD(in)
		} else {
			t.translateVectorScalarized(in)
		}

	default:
		return fmt.Errorf("unsupported opcode %s", in.Op)
	}
	t.invalidateCmp()
	return nil
}

// storeToSlotVreg moves an operand into a named variable's register,
// truncating to the declared kind when it is narrower than the stack kind.
func (t *translator) storeToSlotVreg(dst int, declared cil.Kind, v operand) {
	rd := t.vr(dst)
	if v.isConst {
		if classOfStack(v.kind) == nisa.ClassFloat {
			t.emit(nisa.Instr{Op: nisa.MovFImm, Kind: v.kind, Rd: rd, FImm: v.f})
		} else {
			t.emit(nisa.Instr{Op: nisa.MovImm, Kind: v.kind, Rd: rd, Imm: v.c})
		}
	} else {
		t.emit(nisa.Instr{Op: nisa.Mov, Kind: v.kind, Rd: rd, Ra: t.vr(v.vreg)})
	}
	if declared != declared.StackKind() && declared != cil.Ref && declared != cil.Vec {
		// Narrow variable: keep its register normalized to the declared
		// width, mirroring the interpreter's store semantics.
		t.emit(nisa.Instr{Op: nisa.Conv, Kind: declared, SrcKind: declared.StackKind(), Rd: rd, Ra: rd})
	}
}

// aluOp maps a bytecode arithmetic opcode to its native counterpart for the
// given operand kind.
func aluOp(op cil.Opcode, k cil.Kind) nisa.Op {
	if k.IsFloat() {
		switch op {
		case cil.Add:
			return nisa.FAdd
		case cil.Sub:
			return nisa.FSub
		case cil.Mul:
			return nisa.FMul
		case cil.Div:
			return nisa.FDiv
		}
	}
	switch op {
	case cil.Add:
		return nisa.Add
	case cil.Sub:
		return nisa.Sub
	case cil.Mul:
		return nisa.Mul
	case cil.Div:
		return nisa.Div
	case cil.Rem:
		return nisa.Rem
	case cil.And:
		return nisa.And
	case cil.Or:
		return nisa.Or
	case cil.Xor:
		return nisa.Xor
	case cil.Shl:
		return nisa.Shl
	case cil.Shr:
		return nisa.Shr
	}
	return nisa.Nop
}
