package jit

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/nisa"
	"repro/internal/target"
)

// TestCompileDeterministicAcrossWorkers is the differential gate of the
// parallel compile pipeline: for every Table 1 kernel, every registered
// target and every register allocation mode, the program compiled with one
// worker must be byte-identical to the program compiled with many workers —
// same instructions, same stats (the gated compile-steps and spill metrics),
// same annotation-negotiation report. Run under -race in CI, it also proves
// the worker pool shares no mutable state.
func TestCompileDeterministicAcrossWorkers(t *testing.T) {
	modes := []RegAllocMode{RegAllocOnline, RegAllocSplit, RegAllocOptimal}

	sources := map[string]string{"multi": manyMethodSource(6)}
	for _, name := range kernels.Table1Names {
		sources[name] = kernels.MustGet(name).Source
	}

	for srcName, src := range sources {
		mod := benchModule(t, src)
		for _, tgt := range target.All() {
			for _, mode := range modes {
				name := fmt.Sprintf("%s/%s/%s", srcName, tgt.Arch, mode)
				seqC := New(tgt, Options{RegAlloc: mode, CompileWorkers: 1})
				parC := New(tgt, Options{RegAlloc: mode, CompileWorkers: 8})

				seqProg, seqRep, err := seqC.CompileModuleReport(mod)
				if err != nil {
					t.Fatalf("%s: sequential compile: %v", name, err)
				}
				parProg, parRep, err := parC.CompileModuleReport(mod)
				if err != nil {
					t.Fatalf("%s: parallel compile: %v", name, err)
				}

				if !reflect.DeepEqual(seqProg, parProg) {
					t.Errorf("%s: parallel compilation diverged from sequential", name)
				}
				if got, want := parProg.Disassemble(), seqProg.Disassemble(); got != want {
					t.Errorf("%s: disassembly differs between workers=1 and workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
						name, want, got)
				}
				if !reflect.DeepEqual(seqRep, parRep) {
					t.Errorf("%s: annotation report differs between workers=1 and workers=8", name)
				}
			}
		}
	}
}

// TestCompileDeterministicRepeatedOnWarmPool compiles the same module many
// times through the package-level scratch pool and requires every result to
// equal the first: a dirty pooled state that leaks anything between
// compilations shows up as drift here.
func TestCompileDeterministicRepeatedOnWarmPool(t *testing.T) {
	mod := benchModule(t, manyMethodSource(4))
	tgt := target.MustLookup(target.MCU) // smallest register file: spill paths run
	c := New(tgt, Options{RegAlloc: RegAllocSplit})

	first, _, err := c.CompileModuleReport(mod)
	if err != nil {
		t.Fatal(err)
	}
	ref := first.Disassemble()
	for i := 0; i < 16; i++ {
		prog, _, err := c.CompileModuleReport(mod)
		if err != nil {
			t.Fatal(err)
		}
		if got := prog.Disassemble(); got != ref {
			t.Fatalf("compilation %d differs from the first on a warm pool", i+1)
		}
		if !reflect.DeepEqual(first, prog) {
			t.Fatalf("compilation %d not deeply equal to the first", i+1)
		}
	}
}

// TestScratchStateResetBetweenCompilations pins the pool-reuse contract
// directly: compiling on a state dirtied by a much larger, spill-heavy
// module must produce exactly what a brand-new state produces, and reset
// must leave no residue in the translator's buffers.
func TestScratchStateResetBetweenCompilations(t *testing.T) {
	big := benchModule(t, manyMethodSource(6))
	small := benchModule(t, `
i32 tiny(i32 a, i32 b) { return a * b + 1; }
`)
	tgt := target.MustLookup(target.MCU).WithIntRegs(4) // force spills on big
	c := New(tgt, Options{RegAlloc: RegAllocSplit})

	dirty := new(compileState)
	for _, m := range big.Methods {
		if _, _, err := c.compileMethod(dirty, big, m); err != nil {
			t.Fatalf("dirtying compile: %v", err)
		}
	}

	gotF, _, err := c.compileMethod(dirty, small, small.Methods[0])
	if err != nil {
		t.Fatal(err)
	}
	wantF, _, err := c.compileMethod(new(compileState), small, small.Methods[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotF, wantF) {
		t.Error("compiling on a dirty scratch state diverged from a fresh state")
	}

	// The reset itself must empty every translator buffer (capacity may and
	// should survive; contents must not).
	tr := &dirty.tr
	tr.reset(c, small, small.Methods[0], dirty)
	switch {
	case len(tr.code) != 0, len(tr.vregs) != 0, len(tr.stack) != 0,
		len(tr.argVreg) != 0, len(tr.locVreg) != 0, len(tr.locLanes) != 0,
		len(tr.isTarget) != 0, len(tr.nativeStart) != 0, len(tr.fixups) != 0:
		t.Error("translator reset left a non-empty buffer")
	case len(tr.canon) != 0:
		t.Error("translator reset left canonical-vreg map entries")
	case tr.lastCmp.valid:
		t.Error("translator reset left a fused-compare state")
	case tr.stats != (nisa.Stats{}):
		t.Error("translator reset left statistics")
	}

	// The arena rewinds per method: after beginMethod nothing is handed out.
	dirty.beginMethod()
	if len(dirty.ints) != 0 {
		t.Error("beginMethod did not rewind the lane arena")
	}
}
