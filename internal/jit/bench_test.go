package jit

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/codegen"
	"repro/internal/kernels"
	"repro/internal/minic"
	"repro/internal/opt"
	"repro/internal/regalloc"
	"repro/internal/target"
)

// benchModule compiles MiniC source through the offline pipeline including
// the split register allocation annotation, the way deployable modules are
// produced, so the compile benchmarks exercise the annotated path.
func benchModule(tb testing.TB, src string) *cil.Module {
	tb.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		tb.Fatalf("check: %v", err)
	}
	opt.FoldConstants(chk)
	opt.Vectorize(chk)
	mod, err := codegen.Compile(chk, "bench", codegen.Options{AnnotationVersion: anno.CurrentVersion})
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	if _, err := regalloc.AnnotateModuleV(mod, anno.CurrentVersion); err != nil {
		tb.Fatalf("annotate: %v", err)
	}
	if err := cil.Verify(mod); err != nil {
		tb.Fatalf("verify: %v", err)
	}
	return mod
}

// manyMethodSource synthesizes a module with n independent mid-size methods:
// the shape of a real application module, where the parallel compile pipeline
// has work to fan out (the Table 1 kernels are single-method and measure the
// per-method path instead).
func manyMethodSource(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
f64 m%d(f64 a[], f64 b[], i32 n) {
    f64 s = 0.0;
    for (i32 i = 0; i < n; i++) {
        f64 t0 = a[i] * b[i];
        f64 t1 = a[i] + b[i];
        f64 t2 = t0 * t1 - (f64) %d;
        s = s + t2;
    }
    return s;
}
i32 g%d(i32 a, i32 b, i32 c) {
    i32 acc = 0;
    for (i32 i = 0; i < a; i++) {
        i32 t0 = i * b + c;
        i32 t1 = t0 %% 7;
        if (t1 > 3) { acc += t0; } else { acc -= t1; }
    }
    return acc + %d;
}`, i, i, i, i)
	}
	return b.String()
}

// BenchmarkCompileMethod measures the steady-state online compile path per
// kernel × target × regalloc mode: one op is one full module compilation
// (translate + register assignment + program assembly) of an already decoded
// and verified module — exactly the work a warm deploy server repeats.
func BenchmarkCompileMethod(b *testing.B) {
	modes := []RegAllocMode{RegAllocOnline, RegAllocSplit, RegAllocOptimal}
	for _, name := range []string{"saxpy_fp", "max_u8"} {
		k := kernels.MustGet(name)
		mod := benchModule(b, k.Source)
		for _, arch := range []target.Arch{target.X86SSE, target.MCU} {
			tgt := target.MustLookup(arch)
			for _, mode := range modes {
				b.Run(fmt.Sprintf("%s/%s/%s", name, arch, mode), func(b *testing.B) {
					c := New(tgt, Options{RegAlloc: mode})
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := c.CompileModuleReport(mod); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkCompileModuleParallel measures a multi-method module compile with
// the worker pool at 1 and at GOMAXPROCS: the wall-clock win of the parallel
// compile pipeline. methods/sec is reported as a custom metric.
func BenchmarkCompileModuleParallel(b *testing.B) {
	const methods = 16
	mod := benchModule(b, manyMethodSource(methods/2))
	tgt := target.MustLookup(target.X86SSE)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := New(tgt, Options{RegAlloc: RegAllocSplit, CompileWorkers: workers})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.CompileModuleReport(mod); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(methods)*float64(b.N)/b.Elapsed().Seconds(), "methods/sec")
		})
	}
}
