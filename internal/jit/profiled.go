package jit

import (
	"fmt"

	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/profile"
)

// CompileMethodProfiled re-runs the translate → register-assignment
// pipeline for one method with the observed execution profile standing in
// for the static loop-depth weight heuristic: per-instruction block
// frequencies reconstructed from the profile's branch counters drive the
// allocator's profitability weights. The tiering controller (internal/core)
// uses it to validate the deployed allocation against observed behavior —
// the result is compared, never swapped in, so it cannot perturb execution.
//
// The frequencies are reconstructed over the pre-rewrite code, which has
// the same branches in the same order as the final code (spill rewriting
// only inserts straight-line code), so the profile's branch ordinals line
// up. A profile whose shape does not match the code is an error here; the
// caller treats it as "could not check", not as a failure.
func (c *Compiler) CompileMethodProfiled(mod *cil.Module, m *cil.Method, fp *profile.FuncProfile) (*nisa.Func, error) {
	st := getState()
	defer putState(st)
	annot, _ := c.negotiateAnnotations(m)
	st.beginMethod()
	tr := &st.tr
	tr.reset(c, mod, m, st)
	if err := tr.run(); err != nil {
		return nil, fmt.Errorf("jit: %s: %w", m.Name, err)
	}
	f := &nisa.Func{
		Name:   m.Name,
		Params: append([]cil.Type(nil), m.Params...),
		Ret:    m.Ret,
		Code:   tr.code,
		Stats:  tr.stats,
	}
	freqs, err := profile.BlockFreqs(f.Code, fp)
	if err != nil {
		return nil, fmt.Errorf("jit: %s: profile does not match code: %w", m.Name, err)
	}
	ra := &st.as
	ra.reset(c, tr, f, annot)
	ra.freqs = freqs
	if err := ra.run(); err != nil {
		return nil, fmt.Errorf("jit: %s: register assignment: %w", m.Name, err)
	}
	return f, nil
}
