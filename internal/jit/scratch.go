package jit

import (
	"sync"
)

// compileState is the reusable per-worker scratch of one compile pipeline
// lane: the translator and assigner with all their growable buffers, plus an
// integer arena for the short-lived per-lane virtual-register slices of
// scalarized vector code. One state serves one method compilation at a time;
// a worker checks a state out of the pool, reuses it for every method it
// compiles, and returns it when the module is done. Nothing reachable from a
// compiled nisa.Func ever aliases pooled memory: the assigner's rewrite step
// copies the final instruction slice into an exactly-sized fresh allocation.
type compileState struct {
	tr translator
	as assigner

	// ints is the current arena chunk that lane-vreg slices are carved
	// from. Chunks are recycled wholesale at the start of each method
	// (beginMethod); slices handed out never escape a single method's
	// translation.
	ints []int
}

// statePool recycles compile states across compilations and workers.
var statePool = sync.Pool{New: func() any { return new(compileState) }}

func getState() *compileState { return statePool.Get().(*compileState) }

func putState(st *compileState) { statePool.Put(st) }

// beginMethod readies the state for the next method: the arena rewinds so
// lane slices of the previous method (all dead by now) are reused.
func (st *compileState) beginMethod() {
	st.ints = st.ints[:0]
}

// intSlice carves an n-int slice out of the arena. The result has full
// capacity n so an accidental append can never bleed into a neighbor.
func (st *compileState) intSlice(n int) []int {
	if n == 0 {
		return nil
	}
	if len(st.ints)+n > cap(st.ints) {
		c := 1024
		if n > c {
			c = n
		}
		// The old chunk stays alive through the slices already handed out;
		// only the arena pointer moves on.
		st.ints = make([]int, 0, c)
	}
	out := st.ints[len(st.ints) : len(st.ints)+n : len(st.ints)+n]
	st.ints = st.ints[:len(st.ints)+n]
	return out
}

// intSliceCopy is intSlice plus a copy of src (the Dup / LdLoc clone).
func (st *compileState) intSliceCopy(src []int) []int {
	out := st.intSlice(len(src))
	copy(out, src)
	return out
}

// growInts resizes a pooled int buffer to n without zeroing; callers assign
// every element.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growLanes resizes a pooled slice-of-lane-slices to n and clears it (only
// scalarized vector locals are ever assigned, so stale entries must not leak
// through).
func growLanes(buf [][]int, n int) [][]int {
	if cap(buf) < n {
		return make([][]int, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growBools resizes a pooled bool buffer to n and clears it.
func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}
