package jit

import (
	"repro/internal/cil"
	"repro/internal/nisa"
)

// translateVectorSIMD maps one portable vector builtin onto the target's
// 128-bit vector unit. This is the cheap online half of split vectorization:
// a one-to-one lowering with no analysis.
func (t *translator) translateVectorSIMD(in cil.Instr) {
	t.stats.VectorLowered++
	switch in.Op {
	case cil.VLoad:
		idx := t.pop()
		arr := t.pop()
		vd := t.newVreg(nisa.ClassVec)
		t.emit(nisa.Instr{Op: nisa.VLoad, Kind: in.Kind,
			Rd: t.vr(vd), Ra: t.vr(t.materialize(arr)), Rb: t.vr(t.materialize(idx))})
		t.push(operand{kind: cil.Vec, vreg: vd, elem: in.Kind})
	case cil.VStore:
		vec := t.pop()
		idx := t.pop()
		arr := t.pop()
		t.emit(nisa.Instr{Op: nisa.VStore, Kind: in.Kind,
			Rd: t.vr(vec.vreg), Ra: t.vr(t.materialize(arr)), Rb: t.vr(t.materialize(idx))})
	case cil.VAdd, cil.VSub, cil.VMul, cil.VMax, cil.VMin:
		b := t.pop()
		a := t.pop()
		vd := t.newVreg(nisa.ClassVec)
		t.emit(nisa.Instr{Op: vecOp(in.Op), Kind: in.Kind,
			Rd: t.vr(vd), Ra: t.vr(a.vreg), Rb: t.vr(b.vreg)})
		t.push(operand{kind: cil.Vec, vreg: vd, elem: in.Kind})
	case cil.VSplat:
		s := t.pop()
		vd := t.newVreg(nisa.ClassVec)
		t.emit(nisa.Instr{Op: nisa.VSplat, Kind: in.Kind, Rd: t.vr(vd), Ra: t.vr(t.materialize(s))})
		t.push(operand{kind: cil.Vec, vreg: vd, elem: in.Kind})
	case cil.VRedAdd, cil.VRedMax, cil.VRedMin:
		v := t.pop()
		resKind := cil.ReduceKind(in.Op, in.Kind).StackKind()
		rd := t.newVreg(classOfStack(resKind))
		t.emit(nisa.Instr{Op: vecOp(in.Op), Kind: in.Kind, Rd: t.vr(rd), Ra: t.vr(v.vreg)})
		t.pushReg(rd, resKind)
	}
}

func vecOp(op cil.Opcode) nisa.Op {
	switch op {
	case cil.VAdd:
		return nisa.VAdd
	case cil.VSub:
		return nisa.VSub
	case cil.VMul:
		return nisa.VMul
	case cil.VMax:
		return nisa.VMax
	case cil.VMin:
		return nisa.VMin
	case cil.VRedAdd:
		return nisa.VRedAdd
	case cil.VRedMax:
		return nisa.VRedMax
	case cil.VRedMin:
		return nisa.VRedMin
	}
	return nisa.Nop
}

// translateVectorScalarized expands one portable vector builtin into an
// unrolled sequence of scalar operations, one per lane. This is what the
// paper describes as the JIT "simply ignoring the vectorization": the code
// stays correct and the implied unrolling even helps small loops, at the
// cost of register pressure for narrow element kinds.
func (t *translator) translateVectorScalarized(in cil.Instr) {
	t.stats.VectorScalarized++
	lanes := in.Kind.Lanes()
	laneClass := nisa.ClassInt
	if in.Kind.IsFloat() {
		laneClass = nisa.ClassFloat
	}
	switch in.Op {
	case cil.VLoad:
		idx := t.pop()
		arr := t.pop()
		arrR := t.vr(t.materialize(arr))
		idxR := t.vr(t.materialize(idx))
		lv := t.st.intSlice(lanes)
		for l := 0; l < lanes; l++ {
			lv[l] = t.newVreg(laneClass)
			t.emit(nisa.Instr{Op: nisa.Load, Kind: in.Kind, Rd: t.vr(lv[l]), Ra: arrR, Rb: idxR, Imm: int64(l)})
		}
		t.push(operand{kind: cil.Vec, lanes: lv, elem: in.Kind})
	case cil.VStore:
		vec := t.pop()
		idx := t.pop()
		arr := t.pop()
		arrR := t.vr(t.materialize(arr))
		idxR := t.vr(t.materialize(idx))
		for l := 0; l < lanes; l++ {
			t.emit(nisa.Instr{Op: nisa.Store, Kind: in.Kind, Rd: t.vr(vec.lanes[l]), Ra: arrR, Rb: idxR, Imm: int64(l)})
		}
	case cil.VAdd, cil.VSub, cil.VMul:
		b := t.pop()
		a := t.pop()
		lv := t.st.intSlice(lanes)
		var op cil.Opcode
		switch in.Op {
		case cil.VAdd:
			op = cil.Add
		case cil.VSub:
			op = cil.Sub
		default:
			op = cil.Mul
		}
		for l := 0; l < lanes; l++ {
			lv[l] = t.newVreg(laneClass)
			t.emit(nisa.Instr{Op: aluOp(op, in.Kind), Kind: in.Kind,
				Rd: t.vr(lv[l]), Ra: t.vr(a.lanes[l]), Rb: t.vr(b.lanes[l])})
		}
		t.push(operand{kind: cil.Vec, lanes: lv, elem: in.Kind})
	case cil.VMax, cil.VMin:
		b := t.pop()
		a := t.pop()
		cond := nisa.CondGt
		if in.Op == cil.VMin {
			cond = nisa.CondLt
		}
		lv := t.st.intSlice(lanes)
		for l := 0; l < lanes; l++ {
			lv[l] = t.newVreg(laneClass)
			t.emit(nisa.Instr{Op: nisa.Select, Kind: in.Kind, Cond: cond,
				Rd: t.vr(lv[l]), Ra: t.vr(a.lanes[l]), Rb: t.vr(b.lanes[l])})
		}
		t.push(operand{kind: cil.Vec, lanes: lv, elem: in.Kind})
	case cil.VSplat:
		s := t.pop()
		sr := t.materialize(s)
		lv := t.st.intSlice(lanes)
		for l := 0; l < lanes; l++ {
			lv[l] = sr
		}
		t.push(operand{kind: cil.Vec, lanes: lv, elem: in.Kind})
	case cil.VRedAdd:
		v := t.pop()
		resKind := cil.ReduceAddKind(in.Kind).StackKind()
		acc := t.newVreg(classOfStack(resKind))
		t.emit(nisa.Instr{Op: nisa.Mov, Kind: resKind, Rd: t.vr(acc), Ra: t.vr(v.lanes[0])})
		for l := 1; l < lanes; l++ {
			t.emit(nisa.Instr{Op: aluOp(cil.Add, resKind), Kind: resKind,
				Rd: t.vr(acc), Ra: t.vr(acc), Rb: t.vr(v.lanes[l])})
		}
		t.pushReg(acc, resKind)
	case cil.VRedMax, cil.VRedMin:
		v := t.pop()
		resKind := cil.ReduceMinMaxKind(in.Kind)
		cond := nisa.CondGt
		if in.Op == cil.VRedMin {
			cond = nisa.CondLt
		}
		acc := t.newVreg(classOfStack(resKind))
		t.emit(nisa.Instr{Op: nisa.Mov, Kind: resKind, Rd: t.vr(acc), Ra: t.vr(v.lanes[0])})
		for l := 1; l < lanes; l++ {
			t.emit(nisa.Instr{Op: nisa.Select, Kind: in.Kind, Cond: cond,
				Rd: t.vr(acc), Ra: t.vr(v.lanes[l]), Rb: t.vr(acc)})
		}
		t.pushReg(acc, resKind)
	}
}
