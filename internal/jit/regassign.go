package jit

import (
	"fmt"
	"sort"

	"repro/internal/anno"
	"repro/internal/nisa"
)

// ScratchRegs is the number of per-class scratch registers the JIT reserves
// beyond the allocatable register file for spill reloads. The simulated
// register files are sized to target.IntRegs + ScratchRegs (and likewise for
// the other classes).
const ScratchRegs = 3

// interval is the live range and estimated dynamic weight of one virtual
// register over the linearized native code.
type interval struct {
	used   bool
	start  int
	end    int
	weight int64
}

// lsActive is one live register assignment of the linear-scan allocator.
type lsActive struct{ vreg, reg int }

// weighted pairs a virtual register with its allocation priority.
type weighted struct {
	vreg   int
	weight int64
}

// assigner performs register assignment and spill-code insertion on the
// virtual-register code produced by the translator. Like the translator it
// is pooled per compile worker: every work buffer below keeps its capacity
// between compilations, so a warm assigner runs allocation-free except for
// the final exactly-sized instruction slice it hands the compiled function.
type assigner struct {
	c  *Compiler
	tr *translator
	f  *nisa.Func

	annot *anno.RegAllocInfo
	// freqs, when non-nil, holds observed per-instruction execution
	// frequencies (profile.BlockFreqs) that replace the static 10^depth
	// weight heuristic (CompileMethodProfiled).
	freqs []int64

	intervals []interval
	assigned  []int // physical register index per vreg, -1 = spilled/unused
	slot      []int // spill slot per vreg, -1 = none
	numSlots  int

	steps int64

	// Reusable work buffers (capacities survive across compilations).
	defBuf, usesBuf []*nisa.Reg // regRefs results
	classBuf        []int       // vregsOfClass result
	orderBuf        []int       // linearScan / weightOrder allocation order
	freeBuf         []int       // linearScan free-register stack
	activeBuf       []lsActive  // linearScan active set
	inClassBuf      []bool      // splitOrder: vreg is in the current class
	takenBuf        []bool      // splitOrder: vreg already ordered
	slotVregBuf     []int       // splitOrder: variable slot -> named vreg
	namedBuf        []weighted  // splitOrder: annotated variables
	restBuf         []weighted  // splitOrder: temporaries
	mergeBuf        []int       // splitOrder merged order
	perRegBuf       [][]int     // priorityAllocate per-register assignments
	outBuf          []nisa.Instr
	preBuf, postBuf []nisa.Instr // rewrite spill loads/stores around one instr
	posMapBuf       []int        // rewrite old->new instruction positions
}

// reset readies a pooled assigner for one method. annot is the method's
// register-allocation annotation after load-time negotiation (nil when
// absent or fallen back); it is only consulted in RegAllocSplit mode.
func (a *assigner) reset(c *Compiler, tr *translator, f *nisa.Func, annot *anno.RegAllocInfo) {
	a.c, a.tr, a.f = c, tr, f
	a.annot = nil
	a.freqs = nil
	if c.Opts.RegAlloc == RegAllocSplit {
		a.annot = annot
	}
	a.numSlots = 0
	a.steps = 0
}

func (a *assigner) run() error {
	n := len(a.tr.vregs)
	if cap(a.intervals) < n {
		a.intervals = make([]interval, n)
	} else {
		a.intervals = a.intervals[:n]
		clear(a.intervals)
	}
	a.assigned = growInts(a.assigned, n)
	a.slot = growInts(a.slot, n)
	for i := range a.assigned {
		a.assigned[i] = -1
		a.slot[i] = -1
	}

	a.computeIntervals()
	a.extendAcrossLoops()
	a.computeWeights()

	for _, class := range []nisa.RegClass{nisa.ClassInt, nisa.ClassFloat, nisa.ClassVec} {
		if err := a.allocateClass(class); err != nil {
			return err
		}
	}
	a.rewrite()

	a.f.FrameSlots = a.numSlots
	a.f.Stats.CompileSteps += a.steps
	return nil
}

// regRefs returns the register operands of an instruction split into
// definitions and uses. The returned pointers alias the instruction so the
// rewriter can substitute physical registers in place; the backing slices
// are reused on the next call.
func (a *assigner) regRefs(in *nisa.Instr) (defs, uses []*nisa.Reg) {
	defs, uses = a.defBuf[:0], a.usesBuf[:0]
	add := func(list []*nisa.Reg, r *nisa.Reg) []*nisa.Reg {
		if r.Class == nisa.ClassNone {
			return list
		}
		return append(list, r)
	}
	switch in.Op {
	case nisa.Store, nisa.VStore, nisa.SpillStore:
		uses = add(uses, &in.Rd)
		uses = add(uses, &in.Ra)
		uses = add(uses, &in.Rb)
	case nisa.Ret:
		uses = add(uses, &in.Ra)
	case nisa.Call:
		for i := range in.Args {
			uses = add(uses, &in.Args[i])
		}
		defs = add(defs, &in.Rd)
	default:
		defs = add(defs, &in.Rd)
		uses = add(uses, &in.Ra)
		uses = add(uses, &in.Rb)
	}
	a.defBuf, a.usesBuf = defs, uses
	return defs, uses
}

func (a *assigner) touch(vreg, pos int) {
	iv := &a.intervals[vreg]
	if !iv.used {
		iv.used = true
		iv.start, iv.end = pos, pos
		return
	}
	if pos < iv.start {
		iv.start = pos
	}
	if pos > iv.end {
		iv.end = pos
	}
}

func (a *assigner) computeIntervals() {
	for pos := range a.f.Code {
		defs, uses := a.regRefs(&a.f.Code[pos])
		for _, r := range defs {
			if r.Virtual {
				a.touch(r.Index, pos)
			}
		}
		for _, r := range uses {
			if r.Virtual {
				a.touch(r.Index, pos)
			}
		}
	}
}

// loopRegions returns the [start, end] index ranges of backward branches.
func (a *assigner) loopRegions() [][2]int {
	var regions [][2]int
	for pos, in := range a.f.Code {
		if in.Op.IsBranch() && in.Target <= pos {
			regions = append(regions, [2]int{in.Target, pos})
		}
	}
	return regions
}

// extendAcrossLoops widens every live interval that overlaps a loop so it
// covers the whole loop: a value live anywhere inside the loop must keep its
// location across the back edge.
func (a *assigner) extendAcrossLoops() {
	regions := a.loopRegions()
	for changed := true; changed; {
		changed = false
		for _, reg := range regions {
			for i := range a.intervals {
				iv := &a.intervals[i]
				if !iv.used || iv.end < reg[0] || iv.start > reg[1] {
					continue
				}
				if iv.start > reg[0] {
					iv.start = reg[0]
					changed = true
				}
				if iv.end < reg[1] {
					iv.end = reg[1]
					changed = true
				}
				a.steps++
			}
		}
	}
}

// computeWeights estimates dynamic use counts: every occurrence counts
// 10^loop-depth — or, when an execution profile supplied observed block
// frequencies, exactly the frequency of its instruction's block.
func (a *assigner) computeWeights() {
	if a.freqs != nil {
		for pos := range a.f.Code {
			w := a.freqs[pos]
			if w < 1 {
				w = 1
			}
			defs, uses := a.regRefs(&a.f.Code[pos])
			for _, r := range defs {
				if r.Virtual {
					a.intervals[r.Index].weight += w
				}
			}
			for _, r := range uses {
				if r.Virtual {
					a.intervals[r.Index].weight += w
				}
			}
		}
		return
	}
	regions := a.loopRegions()
	depthAt := func(pos int) int {
		d := 0
		for _, reg := range regions {
			if pos >= reg[0] && pos <= reg[1] {
				d++
			}
		}
		if d > 4 {
			d = 4
		}
		return d
	}
	for pos := range a.f.Code {
		defs, uses := a.regRefs(&a.f.Code[pos])
		w := int64(1)
		for i, d := 0, depthAt(pos); i < d; i++ {
			w *= 10
		}
		for _, r := range defs {
			if r.Virtual {
				a.intervals[r.Index].weight += w
			}
		}
		for _, r := range uses {
			if r.Virtual {
				a.intervals[r.Index].weight += w
			}
		}
	}
}

// classRegs returns the allocatable register count for a class.
func (a *assigner) classRegs(class nisa.RegClass) int {
	switch class {
	case nisa.ClassInt:
		return a.c.Target.IntRegs
	case nisa.ClassFloat:
		return a.c.Target.FloatRegs
	default:
		return a.c.Target.VecRegs
	}
}

// vregsOfClass lists the used virtual registers of a class. The result is
// valid until the next call.
func (a *assigner) vregsOfClass(class nisa.RegClass) []int {
	out := a.classBuf[:0]
	for i, info := range a.tr.vregs {
		if info.class == class && a.intervals[i].used {
			out = append(out, i)
		}
	}
	a.classBuf = out
	return out
}

func (a *assigner) allocateClass(class nisa.RegClass) error {
	vregs := a.vregsOfClass(class)
	if len(vregs) == 0 {
		return nil
	}
	numRegs := a.classRegs(class)
	if numRegs <= 0 {
		if class == nisa.ClassVec {
			return fmt.Errorf("vector registers required but target %q has none", a.c.Target.Name)
		}
		// Pathological configuration: everything spills.
		for _, v := range vregs {
			a.spill(v)
		}
		return nil
	}

	mode := a.c.Opts.RegAlloc
	if mode == RegAllocSplit && a.annot == nil {
		mode = RegAllocOnline
	}
	// Charge each mode the analysis work it has to perform online. The
	// split mode follows the offline priority order directly; the other
	// modes pay for ordering the intervals themselves, and the
	// offline-quality mode additionally pays for recomputing profitability
	// weights over the whole native code (the work the annotation avoids).
	sortCost := int64(len(vregs)) * int64(log2(len(vregs)))
	switch mode {
	case RegAllocOnline:
		a.steps += sortCost
		a.linearScan(vregs, numRegs)
	case RegAllocSplit:
		a.priorityAllocate(numRegs, a.splitOrder(class, vregs))
	case RegAllocOptimal:
		a.steps += int64(len(a.f.Code)) + sortCost
		a.priorityAllocate(numRegs, a.weightOrder(vregs))
	default:
		return fmt.Errorf("unknown register allocation mode %v", mode)
	}
	return nil
}

// log2 returns the integer binary logarithm of n (at least 1).
func log2(n int) int {
	l := 1
	for n > 2 {
		n >>= 1
		l++
	}
	return l
}

func (a *assigner) spill(v int) {
	if a.slot[v] >= 0 {
		return
	}
	a.slot[v] = a.numSlots
	a.numSlots++
	a.f.Stats.SpillSlots++
	a.f.Stats.SpillWeight += a.intervals[v].weight
}

// linearScan is the baseline purely-online allocator: Poletto/Sarkar linear
// scan in interval start order with the furthest-end spill heuristic and no
// profitability information.
func (a *assigner) linearScan(vregs []int, numRegs int) {
	order := append(a.orderBuf[:0], vregs...)
	sort.Slice(order, func(i, j int) bool {
		si, sj := a.intervals[order[i]].start, a.intervals[order[j]].start
		if si != sj {
			return si < sj
		}
		return order[i] < order[j]
	})
	free := a.freeBuf[:0]
	for r := numRegs - 1; r >= 0; r-- {
		free = append(free, r)
	}
	active := a.activeBuf[:0]

	expire := func(pos int) {
		keep := active[:0]
		for _, x := range active {
			if a.intervals[x.vreg].end < pos {
				free = append(free, x.reg)
			} else {
				keep = append(keep, x)
			}
		}
		active = keep
	}

	for _, v := range order {
		a.steps++
		iv := a.intervals[v]
		expire(iv.start)
		if len(free) > 0 {
			reg := free[len(free)-1]
			free = free[:len(free)-1]
			a.assigned[v] = reg
			active = append(active, lsActive{v, reg})
			continue
		}
		// Spill the interval that ends furthest in the future.
		furthest := -1
		for i, x := range active {
			if furthest < 0 || a.intervals[x.vreg].end > a.intervals[active[furthest].vreg].end {
				furthest = i
			}
		}
		if furthest >= 0 && a.intervals[active[furthest].vreg].end > iv.end {
			victim := active[furthest]
			a.spill(victim.vreg)
			a.assigned[victim.vreg] = -1
			a.assigned[v] = victim.reg
			active[furthest] = lsActive{v, victim.reg}
		} else {
			a.spill(v)
		}
	}
	a.orderBuf, a.freeBuf, a.activeBuf = order, free, active
}

// splitOrder builds the allocation order from the offline annotation. Named
// variables take their spill priority (weight) from the annotation — the
// offline half already ordered them — while the JIT's own short-lived
// temporaries keep their locally-computed weight; the two sorted sequences
// are merged by weight. This is the linear-time online half of the split
// register allocator: no interference or profitability analysis is redone
// for the program's variables.
func (a *assigner) splitOrder(class nisa.RegClass, vregs []int) []int {
	nv := len(a.tr.vregs)
	inClass := growBools(a.inClassBuf, nv)
	for _, v := range vregs {
		inClass[v] = true
	}
	// Variable slot -> named vreg of this class (the annotation talks in
	// slots). Slots are params first, then locals; a slot the annotation
	// names beyond that range is simply ignored, like a map miss was.
	numSlots := len(a.tr.m.Params) + len(a.tr.m.Locals)
	slotVreg := growInts(a.slotVregBuf, numSlots)
	for i := range slotVreg {
		slotVreg[i] = -1
	}
	for v, info := range a.tr.vregs {
		if info.named && inClass[v] {
			slotVreg[info.slot] = v
		}
	}
	// Named variables in annotation order (already sorted by weight).
	named := a.namedBuf[:0]
	taken := growBools(a.takenBuf, nv)
	// With v1 spill-class metadata the annotation itself says which
	// register class each slot belongs to, so intervals of other classes
	// are skipped up front instead of being re-derived (looked up against
	// this class's slot set) on every per-class pass.
	classes := a.annot.Classes
	want := spillClassOf(class)
	for _, iv := range a.annot.Intervals {
		if classes != nil && iv.Slot < len(classes) && classes[iv.Slot] != anno.SpillClassUnknown && classes[iv.Slot] != want {
			continue
		}
		if iv.Slot >= 0 && iv.Slot < numSlots {
			if v := slotVreg[iv.Slot]; v >= 0 && !taken[v] {
				named = append(named, weighted{vreg: v, weight: int64(iv.Weight)})
				taken[v] = true
			}
		}
		a.steps++
	}
	// Temporaries (and any named slot missing from the annotation) by
	// decreasing native weight.
	rest := a.restBuf[:0]
	for _, v := range vregs {
		if !taken[v] {
			rest = append(rest, weighted{vreg: v, weight: a.intervals[v].weight})
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].weight != rest[j].weight {
			return rest[i].weight > rest[j].weight
		}
		return rest[i].vreg < rest[j].vreg
	})
	// Merge the two weight-sorted sequences (linear).
	order := a.mergeBuf[:0]
	i, j := 0, 0
	for i < len(named) || j < len(rest) {
		a.steps++
		if j >= len(rest) || (i < len(named) && named[i].weight >= rest[j].weight) {
			order = append(order, named[i].vreg)
			i++
		} else {
			order = append(order, rest[j].vreg)
			j++
		}
	}
	a.inClassBuf, a.takenBuf, a.slotVregBuf = inClass, taken, slotVreg
	a.namedBuf, a.restBuf, a.mergeBuf = named, rest, order
	return order
}

// spillClassOf maps a native register class to its annotation-level spill
// class.
func spillClassOf(class nisa.RegClass) anno.SpillClass {
	switch class {
	case nisa.ClassInt:
		return anno.SpillClassInt
	case nisa.ClassFloat:
		return anno.SpillClassFloat
	case nisa.ClassVec:
		return anno.SpillClassVec
	}
	return anno.SpillClassUnknown
}

// weightOrder orders every virtual register by decreasing locally-computed
// weight: the "offline quality" reference allocation.
func (a *assigner) weightOrder(vregs []int) []int {
	order := append(a.orderBuf[:0], vregs...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := a.intervals[order[i]].weight, a.intervals[order[j]].weight
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	a.orderBuf = order
	return order
}

// priorityAllocate assigns registers greedily in the given priority order,
// using exact interval overlap as the interference test.
func (a *assigner) priorityAllocate(numRegs int, order []int) {
	if cap(a.perRegBuf) < numRegs {
		a.perRegBuf = make([][]int, numRegs)
	}
	perReg := a.perRegBuf[:numRegs] // vregs assigned to each register
	for r := range perReg {
		perReg[r] = perReg[r][:0]
	}
	overlaps := func(x, y int) bool {
		ix, iy := a.intervals[x], a.intervals[y]
		return ix.start <= iy.end && iy.start <= ix.end
	}
	for _, v := range order {
		placed := false
		for r := 0; r < numRegs && !placed; r++ {
			conflict := false
			for _, other := range perReg[r] {
				a.steps++
				if overlaps(v, other) {
					conflict = true
					break
				}
			}
			if !conflict {
				perReg[r] = append(perReg[r], v)
				a.assigned[v] = r
				placed = true
			}
		}
		if !placed {
			a.spill(v)
		}
	}
}

// rewrite replaces virtual registers with physical ones and inserts spill
// loads/stores around instructions that touch spilled values. The final
// instruction slice handed to the compiled function is a fresh, exactly
// sized allocation — never pooled memory.
func (a *assigner) rewrite() {
	out := a.outBuf[:0]
	// oldToNew maps original instruction indices to their new positions so
	// branch targets can be fixed afterwards.
	oldToNew := growInts(a.posMapBuf, len(a.f.Code)+1)

	phys := func(r nisa.Reg) nisa.Reg {
		return nisa.Reg{Class: r.Class, Index: a.assigned[r.Index]}
	}
	scratch := func(class nisa.RegClass, n int) nisa.Reg {
		return nisa.Reg{Class: class, Index: a.classRegs(class) + n}
	}

	for pos := range a.f.Code {
		oldToNew[pos] = len(out)
		in := a.f.Code[pos] // copy
		// Calls keep spilled arguments in their frame slots; the simulator
		// reads them from there directly.
		if in.Op == nisa.Call {
			args := make([]nisa.Reg, len(in.Args))
			slots := make([]int, len(in.Args))
			for i, r := range in.Args {
				slots[i] = -1
				if r.Virtual && a.assigned[r.Index] < 0 {
					slots[i] = a.slot[r.Index]
					args[i] = nisa.NoReg
					a.f.Stats.SpillLoads++
				} else if r.Virtual {
					args[i] = phys(r)
				} else {
					args[i] = r
				}
			}
			in.Args = args
			in.ArgSlots = slots
			if in.Rd.Class != nisa.ClassNone && in.Rd.Virtual {
				if a.assigned[in.Rd.Index] < 0 {
					slot := a.slot[in.Rd.Index]
					in.Rd = scratch(in.Rd.Class, 0)
					out = append(out, in)
					out = append(out, nisa.Instr{Op: nisa.SpillStore, Rd: in.Rd, Imm: int64(slot)})
					a.f.Stats.SpillStores++
					continue
				}
				in.Rd = phys(in.Rd)
			}
			out = append(out, in)
			continue
		}

		defs, uses := a.regRefs(&in)
		nextScratch := 0
		pre, post := a.preBuf[:0], a.postBuf[:0]
		for _, u := range uses {
			if !u.Virtual {
				continue
			}
			if a.assigned[u.Index] >= 0 {
				*u = phys(*u)
				continue
			}
			s := scratch(u.Class, nextScratch)
			nextScratch++
			pre = append(pre, nisa.Instr{Op: nisa.SpillLoad, Rd: s, Imm: int64(a.slot[u.Index])})
			a.f.Stats.SpillLoads++
			*u = s
		}
		for _, d := range defs {
			if !d.Virtual {
				continue
			}
			if a.assigned[d.Index] >= 0 {
				*d = phys(*d)
				continue
			}
			s := scratch(d.Class, 0)
			post = append(post, nisa.Instr{Op: nisa.SpillStore, Rd: s, Imm: int64(a.slot[d.Index])})
			a.f.Stats.SpillStores++
			*d = s
		}
		out = append(out, pre...)
		out = append(out, in)
		out = append(out, post...)
		a.preBuf, a.postBuf = pre, post
	}
	oldToNew[len(a.f.Code)] = len(out)

	// Re-target branches to the new instruction positions.
	for i := range out {
		if out[i].Op.IsBranch() {
			out[i].Target = oldToNew[out[i].Target]
		}
	}
	final := make([]nisa.Instr, len(out))
	copy(final, out)
	a.f.Code = final
	a.outBuf, a.posMapBuf = out, oldToNew
}
