// Package jit implements the online half of the split compiler: the
// target-specific just-in-time compiler that translates portable bytecode
// into native code for one simulated target.
//
// The two split optimizations of the paper meet here:
//
//   - Vectorization: the portable vector builtins emitted by the offline
//     compiler are mapped one-to-one onto the target's SIMD unit when it has
//     one, and scalarized into unrolled per-lane scalar code otherwise. The
//     JIT never re-runs the dependence analysis — the offline step already
//     proved safety and said so in the bytecode (and its annotation).
//
//   - Register allocation: the annotation produced by the offline allocator
//     (internal/regalloc) orders variables by spill priority, so the online
//     assignment is a single linear pass; without the annotation the JIT
//     falls back to its plain linear-scan allocator (the baseline of the
//     split register allocation experiment).
package jit

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/target"
)

// RegAllocMode selects the register allocation strategy of the JIT.
type RegAllocMode int

// Register allocation modes.
const (
	// RegAllocOnline is the baseline purely-online allocator: linear scan
	// in interval-start order with the classic furthest-end spill
	// heuristic, no profitability weights.
	RegAllocOnline RegAllocMode = iota
	// RegAllocSplit consumes the split register allocation annotation: the
	// offline step ordered named variables by spill priority; the online
	// step assigns registers in that order in linear time. Without an
	// annotation it silently degrades to RegAllocOnline.
	RegAllocSplit
	// RegAllocOptimal recomputes full weights from the native code and
	// allocates by decreasing weight with exact interference information.
	// It stands in for an "offline optimal" allocation and serves as the
	// quality reference in the experiments (it is too slow for a real JIT).
	RegAllocOptimal
)

func (m RegAllocMode) String() string {
	switch m {
	case RegAllocOnline:
		return "online"
	case RegAllocSplit:
		return "split"
	case RegAllocOptimal:
		return "optimal"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configures a Compiler.
type Options struct {
	// RegAlloc selects the register allocation strategy.
	RegAlloc RegAllocMode
	// ForceScalarize makes the JIT ignore the target's SIMD unit and
	// scalarize every vector builtin (ablation: "the JIT simply ignores the
	// vectorization").
	ForceScalarize bool
	// MinAnnotationVersion rejects annotation sections older than this
	// schema version during load-time negotiation: they fall back to
	// online-only compilation like any section the reader cannot
	// understand. Zero (the default) accepts everything, including the
	// grandfathered v0 streams.
	MinAnnotationVersion uint32
	// CompileWorkers bounds the number of methods CompileModuleReport
	// compiles concurrently. Zero (the default) uses GOMAXPROCS; negative
	// or 1 compiles sequentially. The generated program is bit-identical
	// regardless of the worker count — parallelism only changes wall-clock
	// time, never code (see TestCompileDeterministicAcrossWorkers).
	CompileWorkers int
}

// Compiler is a JIT compiler instance for one target.
type Compiler struct {
	Target *target.Desc
	Opts   Options
}

// New returns a JIT compiler for the given target.
func New(t *target.Desc, opts Options) *Compiler {
	return &Compiler{Target: t, Opts: opts}
}

// useSIMD reports whether vector builtins are mapped to the vector unit.
func (c *Compiler) useSIMD() bool { return c.Target.HasSIMD && !c.Opts.ForceScalarize }

// Report summarizes the load-time annotation negotiation of one module
// compilation: the per-method outcome of every annotation that was present,
// and how many of them fell back to online-only compilation because the
// reader could not (or was configured not to) consume them.
type Report struct {
	Outcomes []anno.MethodOutcome
	// Fallbacks counts annotation sections that were present but degraded
	// to online-only compilation. The compilation itself never fails on
	// them: annotations are advisory.
	Fallbacks int
}

// add records one method's negotiation outcomes.
func (rep *Report) add(method string, outcomes []anno.Outcome) {
	for _, out := range outcomes {
		rep.Outcomes = append(rep.Outcomes, anno.MethodOutcome{Method: method, Outcome: out})
		if out.Fallback {
			rep.Fallbacks++
		}
	}
}

// CompileModule compiles every method of a verified module into a native
// program for the compiler's target.
func (c *Compiler) CompileModule(mod *cil.Module) (*nisa.Program, error) {
	prog, _, err := c.CompileModuleReport(mod)
	return prog, err
}

// envCompileWorkers is the SPLITVM_COMPILE_WORKERS override, read once: it
// lets a whole process (CI proving workers=1 vs workers=N equivalence, a
// benchmark sweep) pin the worker pool without threading an option through
// every caller. Options.CompileWorkers still wins when set.
var envCompileWorkers = sync.OnceValue(func() int {
	n, err := strconv.Atoi(os.Getenv("SPLITVM_COMPILE_WORKERS"))
	if err != nil || n < 1 {
		return 0
	}
	return n
})

// DefaultCompileWorkers is the worker count used when Options.CompileWorkers
// is zero: the SPLITVM_COMPILE_WORKERS environment override when set,
// otherwise GOMAXPROCS.
func DefaultCompileWorkers() int {
	if n := envCompileWorkers(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// compileWorkers resolves the worker count for a module of n methods.
func (c *Compiler) compileWorkers(methods int) int {
	w := c.Opts.CompileWorkers
	if w == 0 {
		w = DefaultCompileWorkers()
	}
	if w > methods {
		w = methods
	}
	if w < 1 {
		w = 1
	}
	return w
}

// methodResult is one slot of the parallel pipeline's output: results are
// written by index, so the assembled program and report are deterministic
// regardless of which worker finished first.
type methodResult struct {
	f        *nisa.Func
	outcomes []anno.Outcome
	err      error
}

// CompileModuleReport is CompileModule plus the annotation-negotiation
// report of the build. Methods compile concurrently across a bounded worker
// pool (Options.CompileWorkers); each worker reuses one pooled scratch state
// for every method it compiles, and the emitted program is assembled in
// module method order so the result is bit-identical to a sequential
// compilation.
func (c *Compiler) CompileModuleReport(mod *cil.Module) (*nisa.Program, *Report, error) {
	prog := nisa.NewProgram(c.Target.Name)
	rep := &Report{}
	// Module-level annotations negotiate once per compilation (Method "" in
	// the report). The execution profile is not consumed here — tiering
	// imports it at deploy time — but a stream carrying one the reader
	// cannot negotiate must surface as a fallback, never as an error.
	if _, out, present := anno.ReadProfile(mod, c.Opts.MinAnnotationVersion); present {
		rep.add("", []anno.Outcome{out})
	}
	methods := mod.Methods
	workers := c.compileWorkers(len(methods))
	if workers <= 1 {
		st := getState()
		defer putState(st)
		for _, m := range methods {
			f, outcomes, err := c.compileMethod(st, mod, m)
			if err != nil {
				return nil, nil, err
			}
			rep.add(m.Name, outcomes)
			prog.Add(f)
		}
		return prog, rep, nil
	}

	results := make([]methodResult, len(methods))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := getState()
			defer putState(st)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(methods) {
					return
				}
				r := &results[i]
				r.f, r.outcomes, r.err = c.compileMethod(st, mod, methods[i])
			}
		}()
	}
	wg.Wait()

	// Deterministic assembly: module method order, first error wins (the
	// same error a sequential compilation would have stopped on).
	for i, m := range methods {
		r := results[i]
		if r.err != nil {
			return nil, nil, r.err
		}
		rep.add(m.Name, r.outcomes)
		prog.Add(r.f)
	}
	return prog, rep, nil
}

// CompileMethod compiles a single method.
func (c *Compiler) CompileMethod(mod *cil.Module, m *cil.Method) (*nisa.Func, error) {
	f, _, err := c.CompileMethodReport(mod, m)
	return f, err
}

// CompileMethodReport compiles a single method and returns its
// annotation-negotiation outcomes. It is the entry point of lazy on-demand
// compilation: the runtime calls it once per method on first call, and the
// emitted code is bit-identical to the same method's slot in a
// CompileModuleReport build (both run the same translate → register-assignment
// pipeline on a pooled scratch state).
func (c *Compiler) CompileMethodReport(mod *cil.Module, m *cil.Method) (*nisa.Func, []anno.Outcome, error) {
	st := getState()
	defer putState(st)
	return c.compileMethod(st, mod, m)
}

// negotiateAnnotations runs load-time negotiation for every annotation the
// deployment side knows about, and returns the split register-allocation
// info when it survived negotiation (the vector and hardware-requirement
// sections are validated and surfaced here but consumed elsewhere: vector
// facts travel in the bytecode itself, hardware requirements feed the
// heterogeneous runtime).
func (c *Compiler) negotiateAnnotations(m *cil.Method) (*anno.RegAllocInfo, []anno.Outcome) {
	var outcomes []anno.Outcome
	ra, out, present := anno.ReadRegAllocInfo(m, c.Opts.MinAnnotationVersion)
	if present {
		outcomes = append(outcomes, out)
	}
	if _, out, present := anno.ReadVectorInfo(m, c.Opts.MinAnnotationVersion); present {
		outcomes = append(outcomes, out)
	}
	if _, out, present := anno.ReadHWReq(m, c.Opts.MinAnnotationVersion); present {
		outcomes = append(outcomes, out)
	}
	return ra, outcomes
}

// compileMethod runs the translate → register-assignment pipeline for one
// method on the given scratch state. The returned Func owns all its memory:
// the assigner's rewrite step always replaces the pooled code buffer with an
// exactly-sized fresh slice.
func (c *Compiler) compileMethod(st *compileState, mod *cil.Module, m *cil.Method) (*nisa.Func, []anno.Outcome, error) {
	annot, outcomes := c.negotiateAnnotations(m)
	st.beginMethod()
	tr := &st.tr
	tr.reset(c, mod, m, st)
	if err := tr.run(); err != nil {
		return nil, nil, fmt.Errorf("jit: %s: %w", m.Name, err)
	}
	f := &nisa.Func{
		Name:   m.Name,
		Params: append([]cil.Type(nil), m.Params...),
		Ret:    m.Ret,
		Code:   tr.code,
		Stats:  tr.stats,
	}
	ra := &st.as
	ra.reset(c, tr, f, annot)
	if err := ra.run(); err != nil {
		return nil, nil, fmt.Errorf("jit: %s: register assignment: %w", m.Name, err)
	}
	return f, outcomes, nil
}
