// Package jit implements the online half of the split compiler: the
// target-specific just-in-time compiler that translates portable bytecode
// into native code for one simulated target.
//
// The two split optimizations of the paper meet here:
//
//   - Vectorization: the portable vector builtins emitted by the offline
//     compiler are mapped one-to-one onto the target's SIMD unit when it has
//     one, and scalarized into unrolled per-lane scalar code otherwise. The
//     JIT never re-runs the dependence analysis — the offline step already
//     proved safety and said so in the bytecode (and its annotation).
//
//   - Register allocation: the annotation produced by the offline allocator
//     (internal/regalloc) orders variables by spill priority, so the online
//     assignment is a single linear pass; without the annotation the JIT
//     falls back to its plain linear-scan allocator (the baseline of the
//     split register allocation experiment).
package jit

import (
	"fmt"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/target"
)

// RegAllocMode selects the register allocation strategy of the JIT.
type RegAllocMode int

// Register allocation modes.
const (
	// RegAllocOnline is the baseline purely-online allocator: linear scan
	// in interval-start order with the classic furthest-end spill
	// heuristic, no profitability weights.
	RegAllocOnline RegAllocMode = iota
	// RegAllocSplit consumes the split register allocation annotation: the
	// offline step ordered named variables by spill priority; the online
	// step assigns registers in that order in linear time. Without an
	// annotation it silently degrades to RegAllocOnline.
	RegAllocSplit
	// RegAllocOptimal recomputes full weights from the native code and
	// allocates by decreasing weight with exact interference information.
	// It stands in for an "offline optimal" allocation and serves as the
	// quality reference in the experiments (it is too slow for a real JIT).
	RegAllocOptimal
)

func (m RegAllocMode) String() string {
	switch m {
	case RegAllocOnline:
		return "online"
	case RegAllocSplit:
		return "split"
	case RegAllocOptimal:
		return "optimal"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configures a Compiler.
type Options struct {
	// RegAlloc selects the register allocation strategy.
	RegAlloc RegAllocMode
	// ForceScalarize makes the JIT ignore the target's SIMD unit and
	// scalarize every vector builtin (ablation: "the JIT simply ignores the
	// vectorization").
	ForceScalarize bool
	// MinAnnotationVersion rejects annotation sections older than this
	// schema version during load-time negotiation: they fall back to
	// online-only compilation like any section the reader cannot
	// understand. Zero (the default) accepts everything, including the
	// grandfathered v0 streams.
	MinAnnotationVersion uint32
}

// Compiler is a JIT compiler instance for one target.
type Compiler struct {
	Target *target.Desc
	Opts   Options
}

// New returns a JIT compiler for the given target.
func New(t *target.Desc, opts Options) *Compiler {
	return &Compiler{Target: t, Opts: opts}
}

// useSIMD reports whether vector builtins are mapped to the vector unit.
func (c *Compiler) useSIMD() bool { return c.Target.HasSIMD && !c.Opts.ForceScalarize }

// Report summarizes the load-time annotation negotiation of one module
// compilation: the per-method outcome of every annotation that was present,
// and how many of them fell back to online-only compilation because the
// reader could not (or was configured not to) consume them.
type Report struct {
	Outcomes []anno.MethodOutcome
	// Fallbacks counts annotation sections that were present but degraded
	// to online-only compilation. The compilation itself never fails on
	// them: annotations are advisory.
	Fallbacks int
}

// CompileModule compiles every method of a verified module into a native
// program for the compiler's target.
func (c *Compiler) CompileModule(mod *cil.Module) (*nisa.Program, error) {
	prog, _, err := c.CompileModuleReport(mod)
	return prog, err
}

// CompileModuleReport is CompileModule plus the annotation-negotiation
// report of the build.
func (c *Compiler) CompileModuleReport(mod *cil.Module) (*nisa.Program, *Report, error) {
	prog := nisa.NewProgram(c.Target.Name)
	rep := &Report{}
	for _, m := range mod.Methods {
		f, outcomes, err := c.compileMethod(mod, m)
		if err != nil {
			return nil, nil, err
		}
		for _, out := range outcomes {
			rep.Outcomes = append(rep.Outcomes, anno.MethodOutcome{Method: m.Name, Outcome: out})
			if out.Fallback {
				rep.Fallbacks++
			}
		}
		prog.Add(f)
	}
	return prog, rep, nil
}

// CompileMethod compiles a single method.
func (c *Compiler) CompileMethod(mod *cil.Module, m *cil.Method) (*nisa.Func, error) {
	f, _, err := c.compileMethod(mod, m)
	return f, err
}

// negotiateAnnotations runs load-time negotiation for every annotation the
// deployment side knows about, and returns the split register-allocation
// info when it survived negotiation (the vector and hardware-requirement
// sections are validated and surfaced here but consumed elsewhere: vector
// facts travel in the bytecode itself, hardware requirements feed the
// heterogeneous runtime).
func (c *Compiler) negotiateAnnotations(m *cil.Method) (*anno.RegAllocInfo, []anno.Outcome) {
	var outcomes []anno.Outcome
	ra, out, present := anno.ReadRegAllocInfo(m, c.Opts.MinAnnotationVersion)
	if present {
		outcomes = append(outcomes, out)
	}
	if _, out, present := anno.ReadVectorInfo(m, c.Opts.MinAnnotationVersion); present {
		outcomes = append(outcomes, out)
	}
	if _, out, present := anno.ReadHWReq(m, c.Opts.MinAnnotationVersion); present {
		outcomes = append(outcomes, out)
	}
	return ra, outcomes
}

func (c *Compiler) compileMethod(mod *cil.Module, m *cil.Method) (*nisa.Func, []anno.Outcome, error) {
	annot, outcomes := c.negotiateAnnotations(m)
	tr := newTranslator(c, mod, m)
	if err := tr.run(); err != nil {
		return nil, nil, fmt.Errorf("jit: %s: %w", m.Name, err)
	}
	f := &nisa.Func{
		Name:   m.Name,
		Params: append([]cil.Type(nil), m.Params...),
		Ret:    m.Ret,
		Code:   tr.code,
		Stats:  tr.stats,
	}
	ra := newAssigner(c, tr, f, annot)
	if err := ra.run(); err != nil {
		return nil, nil, fmt.Errorf("jit: %s: register assignment: %w", m.Name, err)
	}
	return f, outcomes, nil
}
