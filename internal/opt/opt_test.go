package opt

import (
	"testing"

	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/kernels"
	"repro/internal/minic"
)

func checked(t *testing.T, src string) *minic.Checked {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return chk
}

func plansOf(t *testing.T, src, fn string) []*VectorPlan {
	t.Helper()
	chk := checked(t, src)
	results := Vectorize(chk)
	for _, r := range results {
		if r.Function == fn {
			return r.Plans
		}
	}
	t.Fatalf("function %q not found in results", fn)
	return nil
}

func TestVectorizeTable1Kernels(t *testing.T) {
	expect := map[string]anno.VecPattern{
		"vecadd_fp": anno.PatternMap,
		"saxpy_fp":  anno.PatternMap,
		"dscal_fp":  anno.PatternMap,
		"max_u8":    anno.PatternReduceMax,
		"sum_u8":    anno.PatternReduceAdd,
		"sum_u16":   anno.PatternReduceAdd,
	}
	for name, pattern := range expect {
		k := kernels.MustGet(name)
		plans := plansOf(t, k.Source, k.Entry)
		if len(plans) != 1 {
			t.Errorf("%s: %d plans, want 1", name, len(plans))
			continue
		}
		p := plans[0]
		if p.Pattern != pattern {
			t.Errorf("%s: pattern %v, want %v", name, p.Pattern, pattern)
		}
		if p.Elem != k.Elem || p.Lanes != k.Elem.Lanes() {
			t.Errorf("%s: elem %v lanes %d, want %v/%d", name, p.Elem, p.Lanes, k.Elem, k.Elem.Lanes())
		}
		if p.Index == nil || p.Bound == nil {
			t.Errorf("%s: plan missing induction variable or bound", name)
		}
		info := AnnotationLoops(VectorizeResult{Plans: plans})
		if len(info.Loops) != 1 || !info.Loops[0].NoAliasProven {
			t.Errorf("%s: annotation conversion wrong: %+v", name, info)
		}
	}
}

func TestVectorizeRejections(t *testing.T) {
	cases := map[string]string{
		"shifted subscript (loop-carried reuse)": kernels.MustGet("fir").Source,
		"control flow in body":                   kernels.MustGet("checksum").Source,
		"fp reduction (reassociation)":           kernels.MustGet("dotprod_fp").Source,
		"non-unit step": `
void f(f64 a[], i32 n) { for (i32 i = 0; i < n; i += 2) { a[i] = a[i] * 2.0; } }`,
		"decrementing induction variable": `
void f(f64 a[], i32 n) { for (i32 i = n - 1; i < n; i--) { a[i] = 1.0; } }`,
		"bound modified in body": `
void f(f64 a[], i32 n) { for (i32 i = 0; i < n; i++) { a[i] = 1.0; n = n - 1; } }`,
		"accumulator is float": `
f32 f(f32 a[], i32 n) { f32 s = 0.0; for (i32 i = 0; i < n; i++) { s = s + a[i]; } return s; }`,
		"call in body": `
i32 g(i32 x) { return x; }
void f(i32 a[], i32 n) { for (i32 i = 0; i < n; i++) { a[i] = g(a[i]); } }`,
		"i64 induction": `
void f(f64 a[], i64 n) { for (i64 i = 0; i < n; i++) { a[(i32) i] = 1.0; } }`,
	}
	for name, src := range cases {
		chk := checked(t, src)
		results := Vectorize(chk)
		for _, r := range results {
			if len(r.Plans) != 0 {
				t.Errorf("%s: loop in %q was vectorized but must not be", name, r.Function)
			}
		}
	}
}

func TestVectorizeMarksForStmtPlan(t *testing.T) {
	k := kernels.MustGet("vecadd_fp")
	chk := checked(t, k.Source)
	Vectorize(chk)
	fn := chk.Prog.Func(k.Entry)
	loop := fn.Body.Stmts[0].(*minic.ForStmt)
	if PlanOf(loop) == nil {
		t.Fatal("plan not attached to the ForStmt")
	}
	scalarLoop := &minic.ForStmt{}
	if PlanOf(scalarLoop) != nil {
		t.Error("PlanOf on an unplanned loop should be nil")
	}
}

func TestFoldConstants(t *testing.T) {
	src := `
f64 f(f64 x) {
    f64 a = 2.0 * 3.0 + 1.0;
    i32 b = (10 / 2) << 1;
    i32 c = -(3 - 5);
    bool d = 3 < 4;
    i32 e = (i32) 2.75;
    return x + a + (f64) (b + c + (i32) d + e);
}
i32 trap() { return 1 / 0; }
`
	chk := checked(t, src)
	folded := FoldConstants(chk)
	if folded < 6 {
		t.Errorf("folded %d expressions, want at least 6", folded)
	}
	// The division by a zero literal must survive folding (it traps at run
	// time).
	trapFn := chk.Prog.Func("trap")
	ret := trapFn.Body.Stmts[0].(*minic.ReturnStmt)
	if _, isLit := ret.Value.(*minic.IntLit); isLit {
		t.Error("division by zero was folded away")
	}
	// The initializer of a should now be a literal 7.0.
	f := chk.Prog.Func("f")
	decl := f.Body.Stmts[0].(*minic.DeclStmt)
	lit, ok := decl.Init.(*minic.FloatLit)
	if !ok || lit.Value != 7.0 {
		t.Errorf("2*3+1 folded to %v, want the literal 7.0", decl.Init)
	}
	if lit.Type() != cil.Scalar(cil.F64) {
		t.Errorf("folded literal type %v, want f64", lit.Type())
	}
}

func TestHelpers(t *testing.T) {
	k := kernels.MustGet("saxpy_fp")
	chk := checked(t, k.Source)
	results := Vectorize(chk)
	plan := results[0].Plans[0]
	loop := chk.Prog.Func(k.Entry).Body.Stmts[0].(*minic.ForStmt)
	asg := loop.Body.Stmts[0].(*minic.AssignStmt)
	rhs := asg.RHS.(*minic.BinaryExpr) // a*x[i] + y[i]
	mul := rhs.L.(*minic.BinaryExpr)
	if !IsLoopInvariantScalar(mul.L, plan.Index) {
		t.Error("the scalar a should be loop invariant")
	}
	if IsLoopInvariantScalar(mul.R, plan.Index) {
		t.Error("x[i] is not loop invariant")
	}
	idx := mul.R.(*minic.IndexExpr)
	if !IndexIsInduction(idx.Index, plan.Index) {
		t.Error("x[i] subscript should be the induction variable")
	}
	if StripCasts(idx.Index) == nil {
		t.Error("StripCasts should return the underlying expression")
	}
}
