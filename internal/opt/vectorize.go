package opt

import (
	"repro/internal/anno"
	"repro/internal/cil"
	"repro/internal/minic"
)

// VectorPlan is the offline vectorizer's decision for one for loop. It is
// attached to minic.ForStmt.Plan and consumed by the offline code generator,
// which emits a vectorized main loop built from portable vector builtins plus
// a scalar epilogue.
//
// The plan is the "expensive half" of split vectorization: proving the
// absence of loop-carried dependences and classifying the loop. The "cheap
// half" — mapping the builtins to SIMD instructions or scalarizing them — is
// left to the target-specific JIT.
type VectorPlan struct {
	// LoopID is the ordinal of the loop within its function (source order).
	LoopID int
	// Index is the canonical induction variable (starts at a loop-invariant
	// lower bound, increments by one, only assigned by the loop post
	// statement).
	Index *minic.Symbol
	// Bound is the loop-invariant upper bound expression of `index < bound`.
	Bound minic.Expr
	// Elem is the element kind the loop operates on.
	Elem cil.Kind
	// Lanes is Elem.Lanes(): the number of elements per portable vector.
	Lanes int
	// Pattern classifies the loop.
	Pattern anno.VecPattern

	// Map pattern: the single `dst[index] = rhs` assignment.
	Store *minic.AssignStmt

	// Reduction patterns: the accumulator variable and the reduced
	// array-load expression (an IndexExpr at the induction variable,
	// possibly wrapped in widening casts).
	Acc       *minic.Symbol
	ReduceArg minic.Expr
}

// VectorizeResult summarizes what the vectorizer did to one function.
type VectorizeResult struct {
	Function string
	Plans    []*VectorPlan
	// Rejected counts analyzable for loops that were considered but not
	// vectorized (failed the dependence or shape tests).
	Rejected int
}

// Vectorize runs the offline auto-vectorizer over every function of the
// checked program. Vectorizable loops get a VectorPlan attached to their
// ForStmt; the returned results describe the decisions (they also feed the
// bytecode annotations emitted by the code generator).
func Vectorize(chk *minic.Checked) []VectorizeResult {
	var results []VectorizeResult
	for _, fn := range chk.Prog.Funcs {
		v := &vectorizer{fn: fn}
		v.block(fn.Body)
		results = append(results, VectorizeResult{Function: fn.Name, Plans: v.plans, Rejected: v.rejected})
	}
	return results
}

type vectorizer struct {
	fn       *minic.FuncDecl
	loopID   int
	plans    []*VectorPlan
	rejected int
}

func (v *vectorizer) block(b *minic.BlockStmt) {
	for _, s := range b.Stmts {
		v.stmt(s)
	}
}

func (v *vectorizer) stmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		v.block(st)
	case *minic.IfStmt:
		v.block(st.Then)
		if st.Else != nil {
			v.block(st.Else)
		}
	case *minic.WhileStmt:
		v.block(st.Body)
	case *minic.ForStmt:
		id := v.loopID
		v.loopID++
		if plan := v.analyze(st, id); plan != nil {
			st.Plan = plan
			v.plans = append(v.plans, plan)
		} else {
			v.rejected++
			// Inner loops of a rejected loop may still be vectorizable.
			v.block(st.Body)
		}
	}
}

// analyze decides whether the for loop is vectorizable and builds its plan.
func (v *vectorizer) analyze(loop *minic.ForStmt, id int) *VectorPlan {
	index, bound, ok := canonicalInduction(loop)
	if !ok {
		return nil
	}
	// The loop body must be a single statement (after the front end's block
	// wrapping): either a map store or a reduction update.
	if len(loop.Body.Stmts) != 1 {
		return nil
	}
	asg, ok := loop.Body.Stmts[0].(*minic.AssignStmt)
	if !ok {
		return nil
	}
	// The bound must be loop invariant: it must not mention the induction
	// variable or anything assigned in the body, and must have i32 type so
	// the vector trip-count test stays a plain i32 comparison.
	if bound.Type().Kind.StackKind() != cil.I32 {
		return nil
	}
	if mentionsSymbol(bound, index) || mentionsSymbol(bound, assignedSymbol(asg)) {
		return nil
	}

	if plan := v.analyzeMap(loop, id, index, bound, asg); plan != nil {
		return plan
	}
	return v.analyzeReduction(loop, id, index, bound, asg)
}

// canonicalInduction recognizes `for (i = <invariant>; i < bound; i++)`
// (with or without a declaration in the init clause) and returns the
// induction variable and bound.
func canonicalInduction(loop *minic.ForStmt) (*minic.Symbol, minic.Expr, bool) {
	if loop.Init == nil || loop.Cond == nil || loop.Post == nil {
		return nil, nil, false
	}
	var index *minic.Symbol
	switch init := loop.Init.(type) {
	case *minic.DeclStmt:
		// The checker allocated a slot for the declared variable; find it
		// through the condition below since DeclStmt carries no symbol.
	case *minic.AssignStmt:
		id, ok := init.LHS.(*minic.Ident)
		if !ok {
			return nil, nil, false
		}
		index = id.Sym
	default:
		return nil, nil, false
	}
	cond, ok := loop.Cond.(*minic.BinaryExpr)
	if !ok || cond.Op != minic.OpLt {
		return nil, nil, false
	}
	condVar, ok := cond.L.(*minic.Ident)
	if !ok || condVar.Sym == nil {
		return nil, nil, false
	}
	if index == nil {
		// Declared induction variable: match it by name against the decl.
		decl, isDecl := loop.Init.(*minic.DeclStmt)
		if !isDecl || decl.Name != condVar.Name {
			return nil, nil, false
		}
		index = condVar.Sym
	} else if condVar.Sym != index {
		return nil, nil, false
	}
	if index.Type.Kind.StackKind() != cil.I32 {
		return nil, nil, false
	}
	// Post must be `i = i + 1`.
	post, ok := loop.Post.(*minic.AssignStmt)
	if !ok {
		return nil, nil, false
	}
	postLHS, ok := post.LHS.(*minic.Ident)
	if !ok || postLHS.Sym != index {
		return nil, nil, false
	}
	inc, ok := post.RHS.(*minic.BinaryExpr)
	if !ok || inc.Op != minic.OpAdd {
		return nil, nil, false
	}
	incVar, okL := inc.L.(*minic.Ident)
	incLit, okR := inc.R.(*minic.IntLit)
	if !okL || !okR || incVar.Sym != index || incLit.Value != 1 {
		return nil, nil, false
	}
	return index, cond.R, true
}

// analyzeMap recognizes `dst[i] = rhs` where rhs is an element-wise
// expression over array loads at i and loop-invariant scalars, all of the
// destination's element kind.
func (v *vectorizer) analyzeMap(loop *minic.ForStmt, id int, index *minic.Symbol, bound minic.Expr, asg *minic.AssignStmt) *VectorPlan {
	dst, ok := asg.LHS.(*minic.IndexExpr)
	if !ok {
		return nil
	}
	if !indexIsInduction(dst.Index, index) {
		return nil
	}
	dstArr, ok := dst.Arr.(*minic.Ident)
	if !ok || !dstArr.Sym.Type.IsArray() {
		return nil
	}
	elem := dstArr.Sym.Type.Elem
	lanes := elem.Lanes()
	if lanes == 0 {
		return nil
	}
	// Every other use of the induction variable must be as a direct
	// subscript (guaranteeing iteration independence: iteration k touches
	// only element k of each array), and the RHS must be expressible with
	// the portable element-wise builtins.
	if !vectorizableElementwise(asg.RHS, index, elem) {
		return nil
	}
	return &VectorPlan{
		LoopID:  id,
		Index:   index,
		Bound:   bound,
		Elem:    elem,
		Lanes:   lanes,
		Pattern: anno.PatternMap,
		Store:   asg,
	}
}

// analyzeReduction recognizes `acc = acc + a[i]`, `acc = max(acc, a[i])` and
// `acc = min(acc, a[i])` (the array load possibly wrapped in widening casts).
func (v *vectorizer) analyzeReduction(loop *minic.ForStmt, id int, index *minic.Symbol, bound minic.Expr, asg *minic.AssignStmt) *VectorPlan {
	accIdent, ok := asg.LHS.(*minic.Ident)
	if !ok || accIdent.Sym == nil || accIdent.Sym.Type.IsArray() {
		return nil
	}
	acc := accIdent.Sym

	var pattern anno.VecPattern
	var arg minic.Expr
	switch rhs := asg.RHS.(type) {
	case *minic.BinaryExpr:
		if rhs.Op != minic.OpAdd {
			return nil
		}
		// Accept acc + X and X + acc.
		if isAccRef(rhs.L, acc) {
			arg = rhs.R
		} else if isAccRef(rhs.R, acc) {
			arg = rhs.L
		} else {
			return nil
		}
		pattern = anno.PatternReduceAdd
	case *minic.CallExpr:
		if rhs.Name == minic.IntrinsicMax {
			pattern = anno.PatternReduceMax
		} else if rhs.Name == minic.IntrinsicMin {
			pattern = anno.PatternReduceMin
		} else {
			return nil
		}
		if len(rhs.Args) != 2 {
			return nil
		}
		if isAccRef(rhs.Args[0], acc) {
			arg = rhs.Args[1]
		} else if isAccRef(rhs.Args[1], acc) {
			arg = rhs.Args[0]
		} else {
			return nil
		}
	default:
		return nil
	}

	// The reduced argument must be a single array load at the induction
	// variable, under any number of pure conversions, and must not mention
	// the accumulator.
	load := stripCasts(arg)
	idx, ok := load.(*minic.IndexExpr)
	if !ok || !indexIsInduction(idx.Index, index) {
		return nil
	}
	arrIdent, ok := idx.Arr.(*minic.Ident)
	if !ok || mentionsSymbol(arg, acc) {
		return nil
	}
	elem := arrIdent.Sym.Type.Elem
	lanes := elem.Lanes()
	if lanes == 0 {
		return nil
	}
	// Floating-point reductions are not vectorized: the horizontal
	// reduction reassociates the sum, which the offline compiler only
	// allows for exact (integer) arithmetic. This mirrors GCC refusing to
	// vectorize FP reductions without -ffast-math.
	if elem.IsFloat() || acc.Type.Kind.IsFloat() {
		return nil
	}
	return &VectorPlan{
		LoopID:    id,
		Index:     index,
		Bound:     bound,
		Elem:      elem,
		Lanes:     lanes,
		Pattern:   pattern,
		Acc:       acc,
		ReduceArg: idx,
	}
}

// vectorizableElementwise checks that an expression can be evaluated with
// the element-wise portable builtins at element kind elem: array loads
// subscripted exactly by the induction variable, loop-invariant scalar
// subexpressions (splat), and +, -, *, min, max over those.
func vectorizableElementwise(e minic.Expr, index *minic.Symbol, elem cil.Kind) bool {
	if e.Type().Kind != elem {
		// A loop-invariant subexpression of a different kind could still be
		// splatted after conversion, but the offline compiler keeps the
		// profitable, simple case: everything at the element kind.
		return false
	}
	switch ex := e.(type) {
	case *minic.IndexExpr:
		arr, ok := ex.Arr.(*minic.Ident)
		return ok && arr.Sym.Type.Elem == elem && indexIsInduction(ex.Index, index)
	case *minic.BinaryExpr:
		switch ex.Op {
		case minic.OpAdd, minic.OpSub, minic.OpMul:
			return vectorizableElementwise(ex.L, index, elem) && vectorizableElementwise(ex.R, index, elem)
		}
		return isInvariantScalar(e, index)
	case *minic.CallExpr:
		if ex.Name == minic.IntrinsicMin || ex.Name == minic.IntrinsicMax {
			return len(ex.Args) == 2 &&
				vectorizableElementwise(ex.Args[0], index, elem) &&
				vectorizableElementwise(ex.Args[1], index, elem)
		}
		return false
	default:
		// Anything else (identifier, literal, cast of an invariant) is
		// acceptable if it is loop invariant: it will be evaluated once and
		// splatted.
		return isInvariantScalar(e, index)
	}
}

// isInvariantScalar reports whether the expression does not depend on the
// induction variable and contains no array accesses or calls (so it can be
// hoisted and splatted).
func isInvariantScalar(e minic.Expr, index *minic.Symbol) bool {
	switch ex := e.(type) {
	case *minic.IntLit, *minic.FloatLit:
		return true
	case *minic.Ident:
		return ex.Sym != index && !ex.Sym.Type.IsArray()
	case *minic.CastExpr:
		return isInvariantScalar(ex.X, index)
	case *minic.UnaryExpr:
		return isInvariantScalar(ex.X, index)
	case *minic.BinaryExpr:
		return isInvariantScalar(ex.L, index) && isInvariantScalar(ex.R, index)
	default:
		return false
	}
}

// indexIsInduction reports whether the subscript expression is exactly the
// induction variable (possibly behind the checker's i32 conversion).
func indexIsInduction(e minic.Expr, index *minic.Symbol) bool {
	id, ok := stripCasts(e).(*minic.Ident)
	return ok && id.Sym == index
}

// isAccRef reports whether the expression reads the accumulator (possibly
// behind conversions inserted by the checker).
func isAccRef(e minic.Expr, acc *minic.Symbol) bool {
	id, ok := stripCasts(e).(*minic.Ident)
	return ok && id.Sym == acc
}

// stripCasts removes any chain of CastExpr wrappers.
func stripCasts(e minic.Expr) minic.Expr {
	for {
		c, ok := e.(*minic.CastExpr)
		if !ok {
			return e
		}
		e = c.X
	}
}

// assignedSymbol returns the symbol written by an assignment to a plain
// variable, or nil when the assignment writes an array element.
func assignedSymbol(asg *minic.AssignStmt) *minic.Symbol {
	if id, ok := asg.LHS.(*minic.Ident); ok {
		return id.Sym
	}
	return nil
}

// mentionsSymbol reports whether the expression references the symbol. A nil
// symbol is never mentioned.
func mentionsSymbol(e minic.Expr, sym *minic.Symbol) bool {
	if sym == nil || e == nil {
		return false
	}
	switch ex := e.(type) {
	case *minic.Ident:
		return ex.Sym == sym
	case *minic.BinaryExpr:
		return mentionsSymbol(ex.L, sym) || mentionsSymbol(ex.R, sym)
	case *minic.UnaryExpr:
		return mentionsSymbol(ex.X, sym)
	case *minic.CastExpr:
		return mentionsSymbol(ex.X, sym)
	case *minic.IndexExpr:
		return mentionsSymbol(ex.Arr, sym) || mentionsSymbol(ex.Index, sym)
	case *minic.LenExpr:
		return mentionsSymbol(ex.Arr, sym)
	case *minic.NewArrayExpr:
		return mentionsSymbol(ex.Len, sym)
	case *minic.CallExpr:
		for _, a := range ex.Args {
			if mentionsSymbol(a, sym) {
				return true
			}
		}
	}
	return false
}

// PlanOf returns the vector plan attached to a for statement, or nil.
func PlanOf(loop *minic.ForStmt) *VectorPlan {
	if loop.Plan == nil {
		return nil
	}
	p, _ := loop.Plan.(*VectorPlan)
	return p
}

// AnnotationLoops converts vectorizer results into the annotation payload
// recorded in the bytecode for the function.
func AnnotationLoops(res VectorizeResult) *anno.VectorInfo {
	info := &anno.VectorInfo{}
	for _, p := range res.Plans {
		info.Loops = append(info.Loops, anno.VectorLoop{
			LoopID:        p.LoopID,
			Elem:          p.Elem,
			Lanes:         p.Lanes,
			Pattern:       p.Pattern,
			NoAliasProven: true,
		})
	}
	return info
}
