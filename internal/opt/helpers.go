package opt

import "repro/internal/minic"

// IsLoopInvariantScalar reports whether the expression does not depend on the
// induction variable and contains no array accesses or calls, so the code
// generator may evaluate it once per iteration as a scalar and splat it into
// a vector. Exported for use by the offline code generator when it lowers a
// VectorPlan.
func IsLoopInvariantScalar(e minic.Expr, index *minic.Symbol) bool {
	return isInvariantScalar(e, index)
}

// StripCasts removes any chain of conversion wrappers around an expression.
func StripCasts(e minic.Expr) minic.Expr { return stripCasts(e) }

// IndexIsInduction reports whether the subscript expression is exactly the
// induction variable (possibly behind the checker's i32 conversion).
func IndexIsInduction(e minic.Expr, index *minic.Symbol) bool {
	return indexIsInduction(e, index)
}
