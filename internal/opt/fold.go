// Package opt implements the offline optimizer of the split compiler. It
// runs on the type-checked MiniC AST (the stand-in for GCC's middle end in
// the paper's toolchain) and performs the expensive analyses whose results
// are either applied directly (constant folding) or recorded as vectorization
// plans that the offline code generator lowers to portable vector builtins
// and annotations.
package opt

import (
	"repro/internal/cil"
	"repro/internal/minic"
	"repro/internal/prim"
)

// FoldConstants performs constant folding over every function of the checked
// program, in place. Only arithmetic on literals of the same type is folded;
// division by zero is left untouched so that run-time trapping semantics are
// preserved.
func FoldConstants(chk *minic.Checked) int {
	f := &folder{}
	for _, fn := range chk.Prog.Funcs {
		f.foldBlock(fn.Body)
	}
	return f.folded
}

type folder struct {
	folded int
}

func (f *folder) foldBlock(b *minic.BlockStmt) {
	for _, s := range b.Stmts {
		f.foldStmt(s)
	}
}

func (f *folder) foldStmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		f.foldBlock(st)
	case *minic.DeclStmt:
		if st.Init != nil {
			st.Init = f.foldExpr(st.Init)
		}
	case *minic.AssignStmt:
		st.LHS = f.foldExpr(st.LHS)
		st.RHS = f.foldExpr(st.RHS)
	case *minic.IfStmt:
		st.Cond = f.foldExpr(st.Cond)
		f.foldBlock(st.Then)
		if st.Else != nil {
			f.foldBlock(st.Else)
		}
	case *minic.WhileStmt:
		st.Cond = f.foldExpr(st.Cond)
		f.foldBlock(st.Body)
	case *minic.ForStmt:
		if st.Init != nil {
			f.foldStmt(st.Init)
		}
		if st.Cond != nil {
			st.Cond = f.foldExpr(st.Cond)
		}
		if st.Post != nil {
			f.foldStmt(st.Post)
		}
		f.foldBlock(st.Body)
	case *minic.ReturnStmt:
		if st.Value != nil {
			st.Value = f.foldExpr(st.Value)
		}
	case *minic.ExprStmt:
		st.X = f.foldExpr(st.X)
	}
}

func (f *folder) foldExpr(e minic.Expr) minic.Expr {
	switch ex := e.(type) {
	case *minic.BinaryExpr:
		ex.L = f.foldExpr(ex.L)
		ex.R = f.foldExpr(ex.R)
		return f.foldBinary(ex)
	case *minic.UnaryExpr:
		ex.X = f.foldExpr(ex.X)
		return f.foldUnary(ex)
	case *minic.CastExpr:
		ex.X = f.foldExpr(ex.X)
		return f.foldCast(ex)
	case *minic.CallExpr:
		for i := range ex.Args {
			ex.Args[i] = f.foldExpr(ex.Args[i])
		}
		return ex
	case *minic.IndexExpr:
		ex.Index = f.foldExpr(ex.Index)
		return ex
	case *minic.LenExpr:
		return ex
	case *minic.NewArrayExpr:
		ex.Len = f.foldExpr(ex.Len)
		return ex
	default:
		return e
	}
}

// literalOf extracts a constant scalar from an expression, if it is one.
func literalOf(e minic.Expr) (prim.Scalar, cil.Kind, bool) {
	switch v := e.(type) {
	case *minic.IntLit:
		return prim.Int(v.Type().Kind, v.Value), v.Type().Kind, true
	case *minic.FloatLit:
		return prim.Float(v.Type().Kind, v.Value), v.Type().Kind, true
	}
	return prim.Scalar{}, cil.Void, false
}

// makeLiteral builds a literal expression of the given kind from a scalar.
// Folded literals inherit the type of the expression they replace.
func makeLiteral(pos minic.Pos, k cil.Kind, s prim.Scalar, t cil.Type) minic.Expr {
	if k.IsFloat() {
		lit := &minic.FloatLit{Pos: pos, Value: s.F}
		lit.SetType(t)
		return lit
	}
	lit := &minic.IntLit{Pos: pos, Value: s.I}
	lit.SetType(t)
	return lit
}

var binOpToCil = map[minic.BinOp]cil.Opcode{
	minic.OpAdd: cil.Add, minic.OpSub: cil.Sub, minic.OpMul: cil.Mul,
	minic.OpDiv: cil.Div, minic.OpRem: cil.Rem,
	minic.OpAnd: cil.And, minic.OpOr: cil.Or, minic.OpXor: cil.Xor,
	minic.OpShl: cil.Shl, minic.OpShr: cil.Shr,
}

var cmpOpToCil = map[minic.BinOp]cil.Opcode{
	minic.OpEq: cil.CmpEq, minic.OpNe: cil.CmpNe,
	minic.OpLt: cil.CmpLt, minic.OpLe: cil.CmpLe,
	minic.OpGt: cil.CmpGt, minic.OpGe: cil.CmpGe,
}

func (f *folder) foldBinary(ex *minic.BinaryExpr) minic.Expr {
	l, lk, okL := literalOf(ex.L)
	r, _, okR := literalOf(ex.R)
	if !okL || !okR || ex.Op.IsLogical() {
		return ex
	}
	if op, ok := binOpToCil[ex.Op]; ok {
		// Keep division/remainder by a zero literal: it must trap at run time.
		if (ex.Op == minic.OpDiv || ex.Op == minic.OpRem) && !lk.IsFloat() && r.I == 0 {
			return ex
		}
		res, err := prim.Binary(op, ex.Type().Kind, l, r)
		if err != nil {
			return ex
		}
		f.folded++
		return makeLiteral(ex.Pos, ex.Type().Kind, res, ex.Type())
	}
	if op, ok := cmpOpToCil[ex.Op]; ok {
		// Comparison operands share the type of the left operand after the
		// checker's conversions.
		res, err := prim.Compare(op, ex.L.Type().Kind, l, r)
		if err != nil {
			return ex
		}
		f.folded++
		v := int64(0)
		if res {
			v = 1
		}
		return makeLiteral(ex.Pos, cil.Bool, prim.Scalar{I: v}, ex.Type())
	}
	return ex
}

func (f *folder) foldUnary(ex *minic.UnaryExpr) minic.Expr {
	v, _, ok := literalOf(ex.X)
	if !ok {
		return ex
	}
	switch ex.Op {
	case minic.OpNeg:
		res, err := prim.Unary(cil.Neg, ex.Type().Kind, v)
		if err != nil {
			return ex
		}
		f.folded++
		return makeLiteral(ex.Pos, ex.Type().Kind, res, ex.Type())
	case minic.OpCompl:
		res, err := prim.Unary(cil.Not, ex.Type().Kind, v)
		if err != nil {
			return ex
		}
		f.folded++
		return makeLiteral(ex.Pos, ex.Type().Kind, res, ex.Type())
	case minic.OpNot:
		f.folded++
		out := int64(1)
		if prim.IsTrue(ex.X.Type().Kind, v) {
			out = 0
		}
		return makeLiteral(ex.Pos, cil.Bool, prim.Scalar{I: out}, ex.Type())
	}
	return ex
}

func (f *folder) foldCast(ex *minic.CastExpr) minic.Expr {
	v, fromKind, ok := literalOf(ex.X)
	if !ok {
		return ex
	}
	f.folded++
	res := prim.Convert(fromKind, ex.To.Kind, v)
	return makeLiteral(ex.Pos, ex.To.Kind, res, ex.To)
}
