// Package target describes the simulated deployment targets of the split
// toolchain: the machine-level parameters the online compiler (internal/jit)
// and the cycle-approximate simulator (internal/sim) need about each
// processor the portable bytecode may be deployed on.
//
// The built-in descriptors model the three evaluation machines of the
// paper's Table 1 (an x86 with a 128-bit SSE unit, an UltraSparc and a
// PowerPC without usable SIMD from the JIT) plus the two device-side cores of
// the Section 3 scenarios (a Cell-SPU-like vector accelerator and a small
// embedded MCU with a tiny register file). Absolute latencies are not meant
// to match any real silicon; they are chosen so the *relative* numbers the
// experiments report (scalar versus vectorized code on one target, the same
// bytecode across targets) behave like the paper's.
//
// The registry is extensible: user-defined targets can be added with
// Register and then looked up by every tool that accepts a target name.
package target

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Arch identifies a target architecture in the registry. The value doubles
// as the command-line spelling used by the tools (svrun -target x86-sse).
type Arch string

// Built-in architectures.
const (
	// X86SSE is the paper's general-purpose evaluation machine: a variable
	// instruction length CISC with few architectural registers and a 128-bit
	// SIMD unit the JIT maps the portable vector builtins onto.
	X86SSE Arch = "x86-sse"
	// Sparc is the UltraSparc column of Table 1: a classic RISC with a large
	// register file and no SIMD unit reachable from the JIT, so vector
	// builtins are scalarized.
	Sparc Arch = "ultrasparc"
	// PPC is the PowerPC column of Table 1, treated like the paper's
	// machine: plenty of registers, no SIMD lowering (the JIT scalarizes).
	PPC Arch = "powerpc"
	// SPU is a Cell-SPU-like vector accelerator: a fast core with a large
	// unified register file and a 128-bit vector unit, reachable only
	// through the heterogeneous runtime of Section 3.
	SPU Arch = "spu"
	// MCU is a small embedded microcontroller: slow clock, short
	// instructions, a tiny register file (the register-pressure sweep of the
	// split register allocation experiment resizes it) and no vector unit.
	MCU Arch = "mcu"
	// WideVec is an AVX2-class machine with a 256-bit vector unit — twice
	// the width of the portable 128-bit vector builtins, so each builtin
	// uses half the datapath and vector operations come cheap. It is
	// installed through Register (not the built-in table) as the reference
	// user-registered target, and stresses a lane width no paper target
	// uses in the compile benchmarks and scalarization paths.
	WideVec Arch = "widevec-256"
)

// String returns the registry spelling of the architecture.
func (a Arch) String() string { return string(a) }

// CostModel gives per-instruction latencies in cycles for one target. The
// simulator charges these values; the JIT never reads them (the split design
// keeps target-specific profitability knowledge offline or in the hardware
// model, not in the online compiler).
type CostModel struct {
	// Scalar integer unit.
	Move   int // register moves, immediates, argument fetch
	IntALU int // add/sub/logic/shift/compare
	IntMul int
	IntDiv int

	// Scalar floating-point unit.
	FloatALU int // add/sub/neg
	FloatMul int
	FloatDiv int

	// Conversions between kinds.
	Convert int

	// Scalar memory accesses and their penalties.
	Load            int
	Store           int
	AddrCalcPenalty int // indexed address computation
	SubWordPenalty  int // byte/halfword access on word-oriented memory paths

	// Control flow.
	Call           int
	BranchTaken    int
	BranchNotTaken int

	// 128-bit vector unit (ignored when the target has none).
	VecLoad   int
	VecStore  int
	VecALU    int // add/sub/min/max, any lane kind
	VecMul    int
	VecSplat  int
	VecReduce int // horizontal add/min/max
}

// Desc describes one deployment target.
type Desc struct {
	// Arch is the registry key.
	Arch Arch
	// Name is the human-readable name used in reports and disassembly.
	Name string
	// ClockMHz scales simulated cycles to the wall-clock-style numbers of
	// Table 1 and normalizes cycles between cores of a heterogeneous system.
	ClockMHz int
	// BytesPerInstr is the average encoded size of one native instruction,
	// used for the code-size comparison (values below 4 mark variable-length
	// encodings, which pay extra bytes for vector prefixes and wide
	// immediates).
	BytesPerInstr int
	// HasSIMD reports whether the JIT may map portable vector builtins onto
	// the target's vector unit. Without it the JIT scalarizes.
	HasSIMD bool
	// VecBits is the native width of the vector unit in bits. Zero means
	// 128 — the width of the portable vector builtins and of every
	// descriptor that predates the field. A wider unit (e.g. the 256-bit
	// WideVec target) executes each 128-bit builtin on half its datapath;
	// the cost model, not the instruction semantics, reflects the headroom.
	VecBits int
	// IntRegs, FloatRegs and VecRegs size the allocatable register files by
	// class. The JIT reserves a few scratch registers beyond these for spill
	// reloads.
	IntRegs   int
	FloatRegs int
	VecRegs   int
	// Cost is the target's latency model.
	Cost CostModel
}

// WithIntRegs returns a copy of the descriptor with the integer register
// file resized (the knob of the split register allocation sweep). The copy
// keeps the original architecture key but documents the resize in its name.
func (d *Desc) WithIntRegs(n int) *Desc {
	c := *d
	c.IntRegs = n
	c.Name = fmt.Sprintf("%s/%dr", d.Name, n)
	return &c
}

// baseCost is the latency model shared by the general-purpose targets;
// per-target descriptors tweak the fields where the machines differ.
var baseCost = CostModel{
	Move:   1,
	IntALU: 1,
	IntMul: 3,
	IntDiv: 12,

	FloatALU: 3,
	FloatMul: 4,
	FloatDiv: 16,

	Convert: 2,

	Load:            3,
	Store:           3,
	AddrCalcPenalty: 1,
	SubWordPenalty:  1,

	Call:           10,
	BranchTaken:    2,
	BranchNotTaken: 1,

	VecLoad:   4,
	VecStore:  4,
	VecALU:    2,
	VecMul:    5,
	VecSplat:  2,
	VecReduce: 4,
}

// registry holds the known targets. Built-ins are installed at package
// initialization; Register adds user-defined ones. The lock makes the
// registry safe to extend and read from concurrent deployments.
var (
	mu       sync.RWMutex
	registry = map[Arch]*Desc{}
)

func init() {
	x86 := &Desc{
		Arch:          X86SSE,
		Name:          "x86+SSE",
		ClockMHz:      2667,
		BytesPerInstr: 3,
		HasSIMD:       true,
		IntRegs:       6,
		FloatRegs:     8,
		VecRegs:       8,
		Cost:          baseCost,
	}

	sparc := &Desc{
		Arch:          Sparc,
		Name:          "UltraSparc",
		ClockMHz:      900,
		BytesPerInstr: 4,
		HasSIMD:       false,
		IntRegs:       24,
		FloatRegs:     16,
		VecRegs:       0,
		Cost:          baseCost,
	}
	// In-order RISC: cheaper taken branches, slower divides.
	sparc.Cost.BranchTaken = 1
	sparc.Cost.IntDiv = 20
	sparc.Cost.FloatDiv = 22

	ppc := &Desc{
		Arch:          PPC,
		Name:          "PowerPC",
		ClockMHz:      2000,
		BytesPerInstr: 4,
		HasSIMD:       false,
		IntRegs:       26,
		FloatRegs:     26,
		VecRegs:       0,
		Cost:          baseCost,
	}

	spu := &Desc{
		Arch:          SPU,
		Name:          "SPU",
		ClockMHz:      3200,
		BytesPerInstr: 4,
		HasSIMD:       true,
		IntRegs:       32,
		FloatRegs:     32,
		VecRegs:       32,
		Cost:          baseCost,
	}
	// The SPU's local store is fast and vector-oriented; scalar sub-word
	// accesses pay for the read-modify-write path instead.
	spu.Cost.VecLoad = 3
	spu.Cost.VecStore = 3
	spu.Cost.SubWordPenalty = 2

	mcu := &Desc{
		Arch:          MCU,
		Name:          "MCU",
		ClockMHz:      200,
		BytesPerInstr: 2,
		HasSIMD:       false,
		IntRegs:       8,
		FloatRegs:     4,
		VecRegs:       0,
		Cost:          baseCost,
	}
	// Software-assisted FP and a slow multiplier.
	mcu.Cost.IntMul = 5
	mcu.Cost.IntDiv = 24
	mcu.Cost.FloatALU = 8
	mcu.Cost.FloatMul = 12
	mcu.Cost.FloatDiv = 40

	for _, d := range []*Desc{x86, sparc, ppc, spu, mcu} {
		registry[d.Arch] = d
	}

	// The wide-vector machine goes through Register like any user-defined
	// target (it is the ROADMAP "more targets via target.Register" item):
	// it exercises the registration path at startup and keeps the built-in
	// table identical to the paper's machine set.
	wide := &Desc{
		Arch:          WideVec,
		Name:          "WideVec-256",
		ClockMHz:      3000,
		BytesPerInstr: 4,
		HasSIMD:       true,
		VecBits:       256,
		IntRegs:       16,
		FloatRegs:     16,
		VecRegs:       16,
		Cost:          baseCost,
	}
	// A 256-bit unit runs the 128-bit portable builtins on half its
	// datapath: vector ops are cheap, and the wide loads amortize the
	// address path.
	wide.Cost.VecLoad = 3
	wide.Cost.VecStore = 3
	wide.Cost.VecALU = 1
	wide.Cost.VecMul = 4
	wide.Cost.VecSplat = 1
	wide.Cost.VecReduce = 3
	if err := Register(wide); err != nil {
		panic(err)
	}
}

// VectorBits returns the native vector width of the target in bits (128 for
// descriptors that predate the VecBits field).
func (d *Desc) VectorBits() int {
	if d.VecBits == 0 {
		return 128
	}
	return d.VecBits
}

// Register adds a user-defined target to the registry (or replaces an
// existing registration with the same Arch). The descriptor is copied, so
// later mutation of the argument does not affect the registry. It returns an
// error for descriptors a JIT deployment could not use.
func Register(d *Desc) error {
	if d == nil || d.Arch == "" {
		return fmt.Errorf("target: Register needs a descriptor with a non-empty Arch")
	}
	if d.IntRegs < 1 {
		return fmt.Errorf("target %q: at least one integer register is required", d.Arch)
	}
	if d.HasSIMD && d.VecRegs < 1 {
		return fmt.Errorf("target %q: HasSIMD requires vector registers", d.Arch)
	}
	if d.HasSIMD && d.VecBits != 0 && d.VecBits < 128 {
		return fmt.Errorf("target %q: vector unit narrower than the 128-bit portable builtins", d.Arch)
	}
	c := *d
	if c.Name == "" {
		c.Name = string(c.Arch)
	}
	mu.Lock()
	defer mu.Unlock()
	registry[c.Arch] = &c
	return nil
}

// Lookup returns the descriptor registered for an architecture.
func Lookup(a Arch) (*Desc, error) {
	mu.RLock()
	d, ok := registry[a]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("target: unknown architecture %q (known: %s)", a, knownNames())
	}
	return d, nil
}

// MustLookup is Lookup for known-good architectures; it panics on unknown
// ones.
func MustLookup(a Arch) *Desc {
	d, err := Lookup(a)
	if err != nil {
		panic(err)
	}
	return d
}

// Table1 returns the three evaluation targets of the paper's Table 1, in the
// paper's column order.
func Table1() []*Desc {
	return []*Desc{MustLookup(X86SSE), MustLookup(Sparc), MustLookup(PPC)}
}

// All returns every built-in target: the Table 1 columns first, then the
// device-side cores of the Section 3 scenarios. User-registered targets
// follow in name order.
func All() []*Desc {
	builtin := []Arch{X86SSE, Sparc, PPC, SPU, MCU}
	out := make([]*Desc, 0, len(builtin))
	seen := make(map[Arch]bool, len(builtin))
	for _, a := range builtin {
		out = append(out, MustLookup(a))
		seen[a] = true
	}
	mu.RLock()
	var extra []*Desc
	for a, d := range registry {
		if !seen[a] {
			extra = append(extra, d)
		}
	}
	mu.RUnlock()
	sort.Slice(extra, func(i, j int) bool { return extra[i].Arch < extra[j].Arch })
	return append(out, extra...)
}

func knownNames() string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for a := range registry {
		names = append(names, string(a))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
