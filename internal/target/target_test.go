package target

import (
	"strings"
	"testing"
)

func TestBuiltinRegistry(t *testing.T) {
	for _, a := range []Arch{X86SSE, Sparc, PPC, SPU, MCU} {
		d, err := Lookup(a)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", a, err)
		}
		if d.Arch != a || d.Name == "" || d.ClockMHz <= 0 || d.BytesPerInstr <= 0 {
			t.Errorf("%s: incomplete descriptor %+v", a, d)
		}
		if d.IntRegs <= 0 {
			t.Errorf("%s: no integer registers", a)
		}
		if d.HasSIMD != (d.VecRegs > 0) {
			t.Errorf("%s: HasSIMD=%v but VecRegs=%d", a, d.HasSIMD, d.VecRegs)
		}
	}
	if _, err := Lookup("vax"); err == nil || !strings.Contains(err.Error(), "unknown architecture") {
		t.Errorf("unknown arch accepted: %v", err)
	}
	if len(Table1()) != 3 || Table1()[0].Arch != X86SSE {
		t.Error("Table1 must be the three paper columns, x86 first")
	}
	if got := len(All()); got < 5 {
		t.Errorf("All() = %d targets, want at least the 5 built-ins", got)
	}
}

func TestOnlyX86AndSPUHaveSIMD(t *testing.T) {
	// Table 1 depends on exactly one SIMD column; Section 3 depends on the
	// SPU accelerator being vector-capable. The invariant covers the
	// paper's built-in machine set — registered extras (WideVec, user
	// targets) may be vector-capable.
	for _, a := range []Arch{X86SSE, Sparc, PPC, SPU, MCU} {
		d := MustLookup(a)
		wantSIMD := d.Arch == X86SSE || d.Arch == SPU
		if d.HasSIMD != wantSIMD {
			t.Errorf("%s: HasSIMD = %v, want %v", d.Arch, d.HasSIMD, wantSIMD)
		}
	}
}

func TestWithIntRegsIsACopy(t *testing.T) {
	base := MustLookup(MCU)
	small := base.WithIntRegs(4)
	if small.IntRegs != 4 {
		t.Fatalf("WithIntRegs: got %d", small.IntRegs)
	}
	if base.IntRegs == 4 {
		t.Fatal("WithIntRegs mutated the registry descriptor")
	}
	if small.Arch != base.Arch || small.Cost != base.Cost {
		t.Error("WithIntRegs must keep arch and cost model")
	}
	if !strings.Contains(small.Name, "4r") {
		t.Errorf("resized name should record the register file: %q", small.Name)
	}
}

func TestRegisterUserTarget(t *testing.T) {
	d := &Desc{
		Arch:          "riscv-test",
		ClockMHz:      1000,
		BytesPerInstr: 4,
		IntRegs:       28,
		FloatRegs:     28,
		Cost:          baseCost,
	}
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	got, err := Lookup("riscv-test")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "riscv-test" {
		t.Errorf("Register should default the name, got %q", got.Name)
	}
	// The registry holds a copy.
	d.IntRegs = 1
	if got2 := MustLookup("riscv-test"); got2.IntRegs != 28 {
		t.Error("Register must copy the descriptor")
	}
	found := false
	for _, x := range All() {
		if x.Arch == "riscv-test" {
			found = true
		}
	}
	if !found {
		t.Error("user target missing from All()")
	}

	if err := Register(nil); err == nil {
		t.Error("nil descriptor accepted")
	}
	if err := Register(&Desc{Arch: "bad", IntRegs: 0}); err == nil {
		t.Error("descriptor without integer registers accepted")
	}
	if err := Register(&Desc{Arch: "bad", IntRegs: 4, HasSIMD: true, VecRegs: 0}); err == nil {
		t.Error("SIMD descriptor without vector registers accepted")
	}
}

func TestWideVecTargetRegistered(t *testing.T) {
	d, err := Lookup(WideVec)
	if err != nil {
		t.Fatalf("wide-vector target not registered: %v", err)
	}
	if !d.HasSIMD || d.VecBits != 256 || d.VectorBits() != 256 {
		t.Errorf("WideVec should be a 256-bit SIMD target, got HasSIMD=%v VecBits=%d", d.HasSIMD, d.VecBits)
	}
	if d.Cost.VecALU >= MustLookup(X86SSE).Cost.VecALU+1 {
		t.Error("the wide unit should make vector ALU ops at least as cheap as the 128-bit x86 unit")
	}
	// 128-bit default for every descriptor predating the field.
	for _, a := range []Arch{X86SSE, SPU} {
		if got := MustLookup(a).VectorBits(); got != 128 {
			t.Errorf("%s: VectorBits() = %d, want 128", a, got)
		}
	}
	// Table 1 keeps the paper's machine set: the wide target must not
	// change any gated experiment's target matrix.
	for _, tgt := range Table1() {
		if tgt.Arch == WideVec {
			t.Error("WideVec leaked into the Table 1 target set")
		}
	}
	found := false
	for _, x := range All() {
		if x.Arch == WideVec {
			found = true
		}
	}
	if !found {
		t.Error("WideVec missing from All()")
	}
}

func TestRegisterRejectsNarrowVectorUnit(t *testing.T) {
	err := Register(&Desc{Arch: "narrow", IntRegs: 4, HasSIMD: true, VecRegs: 4, VecBits: 64})
	if err == nil {
		t.Error("a 64-bit vector unit cannot run the 128-bit portable builtins and must be rejected")
	}
}
