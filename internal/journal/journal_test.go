package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func tempJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "svd.journal")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tempJournal(t)
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Op: "module", Data: []byte("module-bytes")},
		{Op: "deploy", Data: []byte(`{"id":"d-000001"}`)},
		{Op: "evict", Data: nil},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := j2.Stats()
	if st.Replayed != 3 || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v, want 3 replayed, 0 truncated", st)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	path := tempJournal(t)
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Record{Op: "deploy", Data: []byte("one")})
	j.Append(Record{Op: "deploy", Data: []byte("two")})
	j.Close()

	// Simulate a crash mid-append: chop bytes off the last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Data) != "one" {
		t.Fatalf("replayed %+v, want just the first record", recs)
	}
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("torn tail not counted in TruncatedBytes")
	}
	// The file was repaired in place: appending and replaying again works.
	if err := j2.Append(Record{Op: "deploy", Data: []byte("three")}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[1].Data) != "three" {
		t.Fatalf("after repair+append replayed %+v", recs)
	}
}

func TestBitFlippedRecordStopsReplay(t *testing.T) {
	path := tempJournal(t)
	j, _, _ := Open(path)
	j.Append(Record{Op: "a", Data: []byte("first")})
	j.Append(Record{Op: "b", Data: []byte("second")})
	j.Close()

	data, _ := os.ReadFile(path)
	// Flip a payload byte of the second record (near the end of the file).
	data[len(data)-2] ^= 0x40
	os.WriteFile(path, data, 0o644)

	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != "a" {
		t.Fatalf("replayed %+v, want only the intact first record", recs)
	}
}

func TestBadHeaderResetsFile(t *testing.T) {
	path := tempJournal(t)
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from garbage", len(recs))
	}
	if st := j.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("garbage file not counted as truncated")
	}
	if err := j.Append(Record{Op: "deploy", Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records after reset, want 1", len(recs))
	}
}

func TestRewriteCompacts(t *testing.T) {
	path := tempJournal(t)
	j, _, _ := Open(path)
	for i := 0; i < 10; i++ {
		j.Append(Record{Op: "deploy", Data: []byte("dead")})
	}
	before := j.Stats().Bytes
	live := []Record{{Op: "deploy", Data: []byte("live")}}
	if err := j.Rewrite(live); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Bytes >= before {
		t.Fatalf("rewrite did not shrink the file: %d -> %d", before, st.Bytes)
	}
	if st.Rewrites != 1 || st.Records != 1 {
		t.Fatalf("stats after rewrite = %+v", st)
	}
	// Appends continue to land after the rename swapped the fd.
	if err := j.Append(Record{Op: "evict", Data: nil}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Data) != "live" || recs[1].Op != "evict" {
		t.Fatalf("replay after rewrite = %+v", recs)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	path := tempJournal(t)
	j, _, _ := Open(path)
	defer j.Close()
	if err := j.Append(Record{Op: "x", Data: make([]byte, maxRecordBytes)}); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestHostileLengthFieldDoesNotOverAllocate(t *testing.T) {
	path := tempJournal(t)
	// Header plus a record claiming a 4 GiB payload.
	data := append([]byte(fileMagic), fileVersion)
	data = append(data, 0xFF, 0xFF, 0xFF, 0xFF)
	data = append(data, make([]byte, 64)...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from hostile file", len(recs))
	}
}

func TestClosedJournalRejectsAppends(t *testing.T) {
	path := tempJournal(t)
	j, _, _ := Open(path)
	j.Close()
	if err := j.Append(Record{Op: "x"}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := j.Rewrite(nil); err == nil {
		t.Fatal("rewrite after Close succeeded")
	}
}

// FuzzJournalReplay feeds arbitrary bytes to Open: it must never panic or
// over-allocate, and whatever survives must leave an appendable journal.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SVJL\x01"))
	f.Add([]byte("SVJL\x02junkversion"))
	good, _ := encodeRecord(Record{Op: "deploy", Data: []byte("payload")})
	full := append([]byte("SVJL\x01"), good...)
	f.Add(full)
	f.Add(full[:len(full)-3])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		j, _, err := Open(path)
		if err != nil {
			return
		}
		if err := j.Append(Record{Op: "probe", Data: []byte("x")}); err != nil {
			t.Fatalf("append after replaying fuzz input: %v", err)
		}
		j.Close()
		_, recs, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		if len(recs) == 0 || recs[len(recs)-1].Op != "probe" {
			t.Fatalf("appended record lost: %+v", recs)
		}
	})
}
