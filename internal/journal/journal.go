// Package journal is an append-only, crash-safe deployment journal for the
// svd backend. Every record is framed with a length prefix and a SHA-256
// checksum (the same trust-nothing discipline as the SVDC disk cache), so
// a journal torn by SIGKILL or a full disk replays up to the last complete
// record and truncates the rest — corruption degrades to lost tail
// records, never to a failed startup.
//
// File layout:
//
//	"SVJL" (4 bytes) | version (1 byte) | records...
//
// and each record:
//
//	payload length (u32 LE) | SHA-256(payload) (32 bytes) | payload
//
// where the payload encodes Record as: op length (u16 LE) | op | data.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

const (
	fileMagic   = "SVJL"
	fileVersion = 1
	headerSize  = 5
	// recHeaderSize is the per-record framing overhead: u32 length + sha256.
	recHeaderSize = 4 + sha256.Size
	// maxRecordBytes bounds one record's payload so a hostile or corrupt
	// length field can never drive a huge allocation. Generous: the
	// largest legitimate record is a module upload, capped well below
	// this by the server's own -max-module-bytes.
	maxRecordBytes = 64 << 20
)

// Record is one journal entry: an operation name and its opaque payload.
// The journal does not interpret either — replay semantics belong to the
// caller.
type Record struct {
	// Op names the operation ("module", "deploy", "evict", ...).
	Op string
	// Data is the operation's payload.
	Data []byte
}

// Stats are the journal's persistence counters, surfaced in /v1/stats.
type Stats struct {
	// Path is the journal file location.
	Path string `json:"path"`
	// Records is the number of live records appended or replayed into the
	// current file.
	Records int64 `json:"records"`
	// Bytes is the current file size.
	Bytes int64 `json:"bytes"`
	// Replayed counts records recovered by Open from an existing file.
	Replayed int64 `json:"replayed"`
	// TruncatedBytes counts bytes of torn or corrupt tail discarded by
	// Open. Nonzero after recovering from a mid-append crash.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Rewrites counts compactions (Rewrite calls).
	Rewrites int64 `json:"rewrites"`
}

// Journal is an open journal file. Appends are serialized and durable
// against process crash (the data reaches the kernel before Append
// returns); replay tolerates a torn final record.
type Journal struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	stats Stats
}

// Open opens (creating if absent) the journal at path and replays its
// records. A corrupt or torn tail is truncated in place; a file with an
// unrecognized header is reset to empty (the records' framing version is
// the file version — there is nothing safe to salvage). The returned
// records are in append order.
func Open(path string) (*Journal, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, valid := parseFile(data)
	j := &Journal{path: path}
	j.stats.Path = path
	j.stats.Replayed = int64(len(recs))
	j.stats.Records = int64(len(recs))
	j.stats.TruncatedBytes = int64(len(data)) - valid

	if len(data) == 0 || valid < headerSize {
		// New file, or nothing salvageable: start fresh.
		if err := j.reset(nil); err != nil {
			return nil, nil, err
		}
		return j, recs, nil
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.stats.Bytes = valid
	return j, recs, nil
}

// parseFile decodes records from data, returning the parsed records and
// the byte offset of the last fully valid record (0 when even the header
// is bad).
func parseFile(data []byte) ([]Record, int64) {
	if len(data) < headerSize || string(data[:4]) != fileMagic || data[4] != fileVersion {
		return nil, 0
	}
	var recs []Record
	off := int64(headerSize)
	rest := data[headerSize:]
	for len(rest) >= recHeaderSize {
		n := binary.LittleEndian.Uint32(rest[:4])
		if n > maxRecordBytes || int(n) > len(rest)-recHeaderSize {
			break
		}
		payload := rest[recHeaderSize : recHeaderSize+int(n)]
		sum := sha256.Sum256(payload)
		if !bytes.Equal(sum[:], rest[4:recHeaderSize]) {
			break
		}
		rec, ok := decodePayload(payload)
		if !ok {
			break
		}
		recs = append(recs, rec)
		step := int64(recHeaderSize) + int64(n)
		off += step
		rest = rest[step:]
	}
	return recs, off
}

func decodePayload(payload []byte) (Record, bool) {
	if len(payload) < 2 {
		return Record{}, false
	}
	opLen := int(binary.LittleEndian.Uint16(payload[:2]))
	if 2+opLen > len(payload) {
		return Record{}, false
	}
	return Record{
		Op:   string(payload[2 : 2+opLen]),
		Data: append([]byte(nil), payload[2+opLen:]...),
	}, true
}

func encodeRecord(rec Record) ([]byte, error) {
	if len(rec.Op) > 0xFFFF {
		return nil, fmt.Errorf("journal: op name too long (%d bytes)", len(rec.Op))
	}
	payloadLen := 2 + len(rec.Op) + len(rec.Data)
	if payloadLen > maxRecordBytes {
		return nil, fmt.Errorf("journal: record too large (%d bytes)", payloadLen)
	}
	buf := make([]byte, recHeaderSize+payloadLen)
	payload := buf[recHeaderSize:]
	binary.LittleEndian.PutUint16(payload[:2], uint16(len(rec.Op)))
	copy(payload[2:], rec.Op)
	copy(payload[2+len(rec.Op):], rec.Data)
	binary.LittleEndian.PutUint32(buf[:4], uint32(payloadLen))
	sum := sha256.Sum256(payload)
	copy(buf[4:recHeaderSize], sum[:])
	return buf, nil
}

// Append writes one record. The write is a single write(2) into an
// O_APPEND file, so a crash mid-call leaves at most one torn record,
// which the next Open truncates.
func (j *Journal) Append(rec Record) error {
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.stats.Records++
	j.stats.Bytes += int64(len(buf))
	return nil
}

// Rewrite atomically replaces the journal's contents with recs
// (compaction: the caller collapses its replayed history into the minimal
// record set). The new file is written beside the old and renamed over
// it, so a crash mid-rewrite leaves either the old or the new journal,
// never a mix.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	defer os.Remove(tmp.Name())
	var buf bytes.Buffer
	buf.WriteString(fileMagic)
	buf.WriteByte(fileVersion)
	for _, rec := range recs {
		b, err := encodeRecord(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		buf.Write(b)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	j.f.Close()
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		return fmt.Errorf("journal: rewrite: %w", err)
	}
	j.f = f
	j.stats.Records = int64(len(recs))
	j.stats.Bytes = int64(buf.Len())
	j.stats.Rewrites++
	return nil
}

// reset writes a fresh file containing only the header plus recs.
// Called with no lock held (only from Open, before the journal escapes).
func (j *Journal) reset(recs []Record) error {
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(fileMagic)
	buf.WriteByte(fileVersion)
	for _, rec := range recs {
		b, err := encodeRecord(rec)
		if err != nil {
			f.Close()
			return err
		}
		buf.Write(b)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.stats.Bytes = int64(buf.Len())
	return nil
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Close closes the journal file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
