package prim

import "repro/internal/cil"

// This file provides non-erroring fast-path variants of the primitive
// semantics for callers that have already validated the operation shape —
// first of all the pre-decoded simulator core (internal/sim), whose
// steady-state dispatch loop must not pay for error plumbing on operations
// that cannot fail. Every variant computes bit-identical results to its
// erroring counterpart; only the failure reporting differs.

// NormMode describes how Normalize(k, ·) re-extends a wrapped value, in a
// shape that applies with two shifts instead of a per-call kind switch. It
// is meant to be computed once per decoded instruction.
type NormMode struct {
	// Shift is 64 minus the bit width of the kind (0 for 64-bit kinds).
	Shift uint8
	// Signed selects arithmetic (sign-extending) right shifts.
	Signed bool
	// Bool normalizes to 0/1 instead of shifting.
	Bool bool
}

// NormModeOf returns the normalization parameters of kind k, such that
// NormModeOf(k).Apply(v) == Normalize(k, v) for every v. Kinds Normalize
// leaves untouched (floats, Ref, Vec, Void, 64-bit integers) yield the
// identity mode.
func NormModeOf(k cil.Kind) NormMode {
	if k == cil.Bool {
		return NormMode{Bool: true}
	}
	if !k.IsInteger() || k.Size() >= 8 {
		return NormMode{} // shift by zero: identity, like Normalize
	}
	return NormMode{Shift: uint8(64 - 8*k.Size()), Signed: k.IsSigned()}
}

// Apply normalizes v like Normalize of the kind the mode was built from.
func (n NormMode) Apply(v int64) int64 {
	if n.Bool {
		if v != 0 {
			return 1
		}
		return 0
	}
	if n.Signed {
		return v << n.Shift >> n.Shift
	}
	return int64(uint64(v) << n.Shift >> n.Shift)
}

// BinaryNoTrap is Binary for operations that cannot trap: every float
// operation and the integer operations other than Div and Rem. Passing an
// integer Div/Rem with a zero divisor, or an opcode Binary would reject,
// returns the zero Scalar instead of an error.
func BinaryNoTrap(op cil.Opcode, k cil.Kind, a, b Scalar) Scalar {
	if k.IsFloat() {
		var r float64
		switch op {
		case cil.Add:
			r = a.F + b.F
		case cil.Sub:
			r = a.F - b.F
		case cil.Mul:
			r = a.F * b.F
		case cil.Div:
			r = a.F / b.F
		default:
			return Scalar{}
		}
		return Float(k, r)
	}
	x, y := a.I, b.I
	var r int64
	switch op {
	case cil.Add:
		r = x + y
	case cil.Sub:
		r = x - y
	case cil.Mul:
		r = x * y
	case cil.Div:
		if y == 0 {
			return Scalar{}
		}
		if k.IsSigned() {
			r = x / y
		} else {
			r = int64(uint64(x) / uint64(y))
		}
	case cil.Rem:
		if y == 0 {
			return Scalar{}
		}
		if k.IsSigned() {
			r = x % y
		} else {
			r = int64(uint64(x) % uint64(y))
		}
	case cil.And:
		r = x & y
	case cil.Or:
		r = x | y
	case cil.Xor:
		r = x ^ y
	case cil.Shl:
		r = x << (uint64(y) & 63)
	case cil.Shr:
		if k.IsSigned() {
			r = x >> (uint64(y) & 63)
		} else {
			r = int64(uint64(x) >> (uint64(y) & 63))
		}
	default:
		return Scalar{}
	}
	return Int(k, r)
}

// CompareNoTrap is Compare restricted to the comparison opcodes, which never
// fail; other opcodes return false.
func CompareNoTrap(op cil.Opcode, k cil.Kind, a, b Scalar) bool {
	var lt, eq bool
	if k.IsFloat() {
		lt, eq = a.F < b.F, a.F == b.F
	} else if k.IsSigned() {
		lt, eq = a.I < b.I, a.I == b.I
	} else {
		lt, eq = uint64(a.I) < uint64(b.I), a.I == b.I
	}
	switch op {
	case cil.CmpEq:
		return eq
	case cil.CmpNe:
		return !eq
	case cil.CmpLt:
		return lt
	case cil.CmpLe:
		return lt || eq
	case cil.CmpGt:
		return !lt && !eq
	case cil.CmpGe:
		return !lt
	}
	return false
}

// VecBinaryNoTrap is VecBinary for the element-wise vector operations, none
// of which can trap (there is no vector division). An opcode VecBinary would
// reject returns the zero vector. The common element kinds run specialized
// lane loops with direct little-endian access; results are bit-identical to
// the generic LaneGet/LaneSet path (integer lanes wrap at the lane width,
// float lanes follow the same float64-compute-then-round sequence).
func VecBinaryNoTrap(op cil.Opcode, k cil.Kind, a, b Vec) Vec {
	var out Vec
	switch k {
	case cil.I8:
		for i := 0; i < 16; i++ {
			out[i] = byte(vecIntLane(op, int64(int8(a[i])), int64(int8(b[i]))))
		}
	case cil.U8:
		for i := 0; i < 16; i++ {
			out[i] = byte(vecIntLane(op, int64(a[i]), int64(b[i])))
		}
	case cil.I16:
		for i := 0; i < 16; i += 2 {
			x := int64(int16(uint16(a[i]) | uint16(a[i+1])<<8))
			y := int64(int16(uint16(b[i]) | uint16(b[i+1])<<8))
			r := uint16(vecIntLane(op, x, y))
			out[i], out[i+1] = byte(r), byte(r>>8)
		}
	case cil.U16:
		for i := 0; i < 16; i += 2 {
			x := int64(uint16(a[i]) | uint16(a[i+1])<<8)
			y := int64(uint16(b[i]) | uint16(b[i+1])<<8)
			r := uint16(vecIntLane(op, x, y))
			out[i], out[i+1] = byte(r), byte(r>>8)
		}
	case cil.I32, cil.U32:
		for off := 0; off < 16; off += 4 {
			xb := uint32(a[off]) | uint32(a[off+1])<<8 | uint32(a[off+2])<<16 | uint32(a[off+3])<<24
			yb := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
			var x, y int64
			if k == cil.I32 {
				x, y = int64(int32(xb)), int64(int32(yb))
			} else {
				x, y = int64(xb), int64(yb)
			}
			r := uint32(vecIntLane(op, x, y))
			out[off], out[off+1], out[off+2], out[off+3] = byte(r), byte(r>>8), byte(r>>16), byte(r>>24)
		}
	case cil.F32, cil.F64, cil.I64, cil.U64:
		return vecBinary64(op, k, a, b)
	default:
		// Zero-lane kinds (Bool, Ref, Void) produce the zero vector, like
		// the generic lane loop over zero lanes did.
	}
	return out
}

// vecIntLane applies one element-wise integer operation to two normalized
// lane values. Results are re-truncated to the lane width by the caller, so
// wrap-around matches Binary+Normalize exactly; comparisons on normalized
// int64 values order both signed and unsigned lanes correctly (sub-64-bit
// unsigned values are non-negative after zero extension).
func vecIntLane(op cil.Opcode, x, y int64) int64 {
	switch op {
	case cil.VAdd:
		return x + y
	case cil.VSub:
		return x - y
	case cil.VMul:
		return x * y
	case cil.VMax:
		if x > y {
			return x
		}
		return y
	case cil.VMin:
		if x < y {
			return x
		}
		return y
	}
	return 0
}

// vecBinary64 handles the 8-byte and float lanes of VecBinaryNoTrap via the
// generic lane accessors (these kinds have at most 4 lanes, so the generic
// path is cheap; 64-bit integer comparisons also need their own signedness
// handling).
func vecBinary64(op cil.Opcode, k cil.Kind, a, b Vec) Vec {
	var out Vec
	lanes := k.Lanes()
	switch op {
	case cil.VAdd, cil.VSub, cil.VMul:
		sop := cil.Add
		switch op {
		case cil.VSub:
			sop = cil.Sub
		case cil.VMul:
			sop = cil.Mul
		}
		for lane := 0; lane < lanes; lane++ {
			r := BinaryNoTrap(sop, k, LaneGet(k, a, lane), LaneGet(k, b, lane))
			LaneSet(k, &out, lane, r)
		}
	case cil.VMax, cil.VMin:
		cmp := cil.CmpGt
		if op == cil.VMin {
			cmp = cil.CmpLt
		}
		for lane := 0; lane < lanes; lane++ {
			x, y := LaneGet(k, a, lane), LaneGet(k, b, lane)
			if !CompareNoTrap(cmp, k, x, y) {
				x = y
			}
			LaneSet(k, &out, lane, x)
		}
	}
	return out
}

// VecReduceNoTrap is VecReduce restricted to the reduction opcodes, which
// never fail; other opcodes return the zero Scalar. Like VecBinaryNoTrap,
// the common element kinds run specialized lane loops; the accumulation
// order and per-step rounding match the generic path exactly.
func VecReduceNoTrap(op cil.Opcode, k cil.Kind, v Vec) Scalar {
	switch op {
	case cil.VRedAdd, cil.VRedMax, cil.VRedMin:
	default:
		return Scalar{}
	}
	switch k {
	case cil.I8, cil.U8, cil.I16, cil.U16, cil.I32, cil.U32:
		signed := k.IsSigned()
		sz := k.Size()
		acc := intLaneAt(v, 0, sz, signed)
		switch op {
		case cil.VRedAdd:
			for off := sz; off < cil.VecBytes; off += sz {
				acc += intLaneAt(v, off, sz, signed)
			}
		case cil.VRedMax:
			for off := sz; off < cil.VecBytes; off += sz {
				if x := intLaneAt(v, off, sz, signed); x > acc {
					acc = x
				}
			}
		default:
			for off := sz; off < cil.VecBytes; off += sz {
				if x := intLaneAt(v, off, sz, signed); x < acc {
					acc = x
				}
			}
		}
		return Scalar{I: Normalize(cil.ReduceKind(op, k), acc)}
	}
	return vecReduceGeneric(op, k, v)
}

// intLaneAt reads the normalized integer lane starting at byte off (sz is 1,
// 2 or 4; 8-byte lanes take the generic path).
func intLaneAt(v Vec, off, sz int, signed bool) int64 {
	switch sz {
	case 1:
		if signed {
			return int64(int8(v[off]))
		}
		return int64(v[off])
	case 2:
		bits := uint16(v[off]) | uint16(v[off+1])<<8
		if signed {
			return int64(int16(bits))
		}
		return int64(bits)
	default:
		bits := uint32(v[off]) | uint32(v[off+1])<<8 | uint32(v[off+2])<<16 | uint32(v[off+3])<<24
		if signed {
			return int64(int32(bits))
		}
		return int64(bits)
	}
}

// vecReduceGeneric is the LaneGet-based reduction used for float, 64-bit and
// degenerate element kinds.
func vecReduceGeneric(op cil.Opcode, k cil.Kind, v Vec) Scalar {
	rk := cil.ReduceKind(op, k)
	lanes := k.Lanes()
	acc := LaneGet(k, v, 0)
	for lane := 1; lane < lanes; lane++ {
		x := LaneGet(k, v, lane)
		switch op {
		case cil.VRedAdd:
			if k.IsFloat() {
				acc = Float(rk, acc.F+x.F)
			} else {
				acc = Scalar{I: acc.I + x.I}
			}
		case cil.VRedMax, cil.VRedMin:
			cmp := cil.CmpGt
			if op == cil.VRedMin {
				cmp = cil.CmpLt
			}
			if CompareNoTrap(cmp, k, x, acc) {
				acc = x
			}
		}
	}
	if !k.IsFloat() {
		acc.I = Normalize(rk, acc.I)
	}
	return acc
}
