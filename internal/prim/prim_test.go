package prim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cil"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		k    cil.Kind
		in   int64
		want int64
	}{
		{cil.U8, 256, 0},
		{cil.U8, 255, 255},
		{cil.I8, 128, -128},
		{cil.I8, -1, -1},
		{cil.U16, 65536 + 3, 3},
		{cil.I16, 32768, -32768},
		{cil.U32, 1 << 32, 0},
		{cil.I32, 1 << 31, -(1 << 31)},
		{cil.I64, -5, -5},
		{cil.Bool, 17, 1},
		{cil.Bool, 0, 0},
	}
	for _, c := range cases {
		if got := Normalize(c.k, c.in); got != c.want {
			t.Errorf("Normalize(%s, %d) = %d, want %d", c.k, c.in, got, c.want)
		}
	}
}

func TestBinaryIntegerWrap(t *testing.T) {
	r, err := Binary(cil.Add, cil.U8, Int(cil.U8, 200), Int(cil.U8, 100))
	if err != nil || r.I != 44 {
		t.Errorf("u8 200+100 = %d (err %v), want 44", r.I, err)
	}
	r, err = Binary(cil.Mul, cil.I16, Int(cil.I16, 300), Int(cil.I16, 300))
	if err != nil || r.I != Normalize(cil.I16, 90000) {
		t.Errorf("i16 300*300 = %d, want wrapped", r.I)
	}
	r, err = Binary(cil.Sub, cil.U32, Int(cil.U32, 0), Int(cil.U32, 1))
	if err != nil || uint32(r.I) != math.MaxUint32 {
		t.Errorf("u32 0-1 = %d, want MaxUint32", uint32(r.I))
	}
}

func TestBinaryDivision(t *testing.T) {
	r, err := Binary(cil.Div, cil.I32, Int(cil.I32, -7), Int(cil.I32, 2))
	if err != nil || r.I != -3 {
		t.Errorf("i32 -7/2 = %d, want -3 (C truncation)", r.I)
	}
	r, err = Binary(cil.Div, cil.U32, Int(cil.U32, -1), Int(cil.U32, 2))
	if err != nil || r.I != math.MaxUint32/2 {
		t.Errorf("u32 0xffffffff/2 = %d, want %d", r.I, math.MaxUint32/2)
	}
	if _, err := Binary(cil.Div, cil.I32, Int(cil.I32, 1), Int(cil.I32, 0)); err == nil {
		t.Error("division by zero must trap")
	}
	if _, err := Binary(cil.Rem, cil.U64, Int(cil.U64, 1), Int(cil.U64, 0)); err == nil {
		t.Error("remainder by zero must trap")
	}
	r, err = Binary(cil.Rem, cil.I32, Int(cil.I32, -7), Int(cil.I32, 3))
	if err != nil || r.I != -1 {
		t.Errorf("i32 -7%%3 = %d, want -1", r.I)
	}
}

func TestBinaryShifts(t *testing.T) {
	r, _ := Binary(cil.Shr, cil.I32, Int(cil.I32, -8), Int(cil.I32, 1))
	if r.I != -4 {
		t.Errorf("arithmetic shift right: got %d, want -4", r.I)
	}
	r, _ = Binary(cil.Shr, cil.U32, Int(cil.U32, -8), Int(cil.U32, 1))
	if r.I != int64((uint32(0xFFFFFFF8))>>1) {
		t.Errorf("logical shift right: got %d", r.I)
	}
	r, _ = Binary(cil.Shl, cil.U8, Int(cil.U8, 0x81), Int(cil.U8, 1))
	if r.I != 2 {
		t.Errorf("u8 shl wrap: got %d, want 2", r.I)
	}
}

func TestBinaryFloat(t *testing.T) {
	r, err := Binary(cil.Div, cil.F64, Float(cil.F64, 1), Float(cil.F64, 0))
	if err != nil || !math.IsInf(r.F, 1) {
		t.Errorf("f64 1/0 = %v, want +Inf", r.F)
	}
	r, _ = Binary(cil.Add, cil.F32, Float(cil.F32, 1e-8), Float(cil.F32, 1))
	if r.F != float64(float32(1e-8)+1) {
		t.Errorf("f32 arithmetic must round to single precision: %v", r.F)
	}
	if _, err := Binary(cil.And, cil.F64, Float(cil.F64, 1), Float(cil.F64, 1)); err == nil {
		t.Error("bitwise and on float must be rejected")
	}
	if _, err := Binary(cil.Ret, cil.I32, Scalar{}, Scalar{}); err == nil {
		t.Error("non-binary opcode must be rejected")
	}
}

func TestUnary(t *testing.T) {
	r, err := Unary(cil.Neg, cil.I32, Int(cil.I32, 5))
	if err != nil || r.I != -5 {
		t.Errorf("neg i32 5 = %d", r.I)
	}
	r, err = Unary(cil.Neg, cil.F64, Float(cil.F64, 2.5))
	if err != nil || r.F != -2.5 {
		t.Errorf("neg f64 2.5 = %v", r.F)
	}
	r, err = Unary(cil.Not, cil.U8, Int(cil.U8, 0x0F))
	if err != nil || r.I != 0xF0 {
		t.Errorf("not u8 0x0F = %x, want 0xF0", r.I)
	}
	if _, err := Unary(cil.Not, cil.F32, Scalar{}); err == nil {
		t.Error("not on float must be rejected")
	}
	if _, err := Unary(cil.Add, cil.I32, Scalar{}); err == nil {
		t.Error("non-unary opcode must be rejected")
	}
}

func TestCompareSignedness(t *testing.T) {
	lt, err := Compare(cil.CmpLt, cil.I32, Int(cil.I32, -1), Int(cil.I32, 1))
	if err != nil || !lt {
		t.Error("signed -1 < 1 must hold")
	}
	lt, err = Compare(cil.CmpLt, cil.U32, Int(cil.U32, -1), Int(cil.U32, 1))
	if err != nil || lt {
		t.Error("unsigned 0xffffffff < 1 must not hold")
	}
	ge, _ := Compare(cil.CmpGe, cil.F64, Float(cil.F64, 2), Float(cil.F64, 2))
	if !ge {
		t.Error("2 >= 2 must hold")
	}
	eq, _ := Compare(cil.CmpEq, cil.U8, Int(cil.U8, 256), Int(cil.U8, 0))
	if !eq {
		t.Error("u8 256 == 0 after normalization")
	}
	if _, err := Compare(cil.Add, cil.I32, Scalar{}, Scalar{}); err == nil {
		t.Error("non-comparison opcode must be rejected")
	}
}

func TestConvert(t *testing.T) {
	if got := Convert(cil.F64, cil.I32, Float(cil.F64, -3.9)); got.I != -3 {
		t.Errorf("f64->i32 -3.9 = %d, want -3", got.I)
	}
	if got := Convert(cil.I32, cil.U8, Int(cil.I32, 300)); got.I != 44 {
		t.Errorf("i32->u8 300 = %d, want 44", got.I)
	}
	if got := Convert(cil.U32, cil.F64, Int(cil.U32, -1)); got.F != float64(math.MaxUint32) {
		t.Errorf("u32->f64 0xffffffff = %v", got.F)
	}
	if got := Convert(cil.I8, cil.F32, Int(cil.I8, -2)); got.F != -2 {
		t.Errorf("i8->f32 -2 = %v", got.F)
	}
	if got := Convert(cil.F64, cil.F32, Float(cil.F64, 1e-300)); got.F != 0 {
		t.Errorf("f64->f32 underflow = %v, want 0", got.F)
	}
	if got := Convert(cil.I32, cil.I64, Int(cil.I32, -7)); got.I != -7 {
		t.Errorf("i32->i64 -7 = %d", got.I)
	}
}

func TestIsTrue(t *testing.T) {
	if !IsTrue(cil.I32, Int(cil.I32, 3)) || IsTrue(cil.I32, Int(cil.I32, 0)) {
		t.Error("IsTrue integer misbehaves")
	}
	if !IsTrue(cil.F64, Float(cil.F64, 0.5)) || IsTrue(cil.F64, Float(cil.F64, 0)) {
		t.Error("IsTrue float misbehaves")
	}
}

func TestLaneGetSetRoundTrip(t *testing.T) {
	kinds := []cil.Kind{cil.U8, cil.I8, cil.U16, cil.I16, cil.I32, cil.U32, cil.I64, cil.F32, cil.F64}
	for _, k := range kinds {
		var v Vec
		for lane := 0; lane < k.Lanes(); lane++ {
			var s Scalar
			if k.IsFloat() {
				s = Float(k, float64(lane)*1.5-3)
			} else {
				s = Int(k, int64(lane*7-20))
			}
			LaneSet(k, &v, lane, s)
			got := LaneGet(k, v, lane)
			if k.IsFloat() {
				if got.F != s.F {
					t.Errorf("%s lane %d: got %v want %v", k, lane, got.F, s.F)
				}
			} else if got.I != s.I {
				t.Errorf("%s lane %d: got %d want %d", k, lane, got.I, s.I)
			}
		}
	}
}

func TestVecBinaryAndSplat(t *testing.T) {
	a := VecSplat(cil.U8, Int(cil.U8, 200))
	b := VecSplat(cil.U8, Int(cil.U8, 100))
	sum, err := VecBinary(cil.VAdd, cil.U8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 16; lane++ {
		if got := LaneGet(cil.U8, sum, lane).I; got != 44 {
			t.Fatalf("lane %d: u8 200+100 = %d, want 44 (wrap)", lane, got)
		}
	}
	mx, err := VecBinary(cil.VMax, cil.U8, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if LaneGet(cil.U8, mx, 3).I != 200 {
		t.Error("vmax.u8 should keep the larger unsigned value")
	}
	if _, err := VecBinary(cil.Add, cil.U8, a, b); err == nil {
		t.Error("non-vector opcode must be rejected")
	}

	fa := VecSplat(cil.F64, Float(cil.F64, 1.5))
	fb := VecSplat(cil.F64, Float(cil.F64, 2.0))
	fm, err := VecBinary(cil.VMul, cil.F64, fa, fb)
	if err != nil || LaneGet(cil.F64, fm, 1).F != 3.0 {
		t.Error("vmul.f64 wrong")
	}
}

func TestVecReduce(t *testing.T) {
	var v Vec
	for lane := 0; lane < 16; lane++ {
		LaneSet(cil.U8, &v, lane, Int(cil.U8, int64(lane+240))) // lanes hold 240..255
	}
	sum, err := VecReduce(cil.VRedAdd, cil.U8, v)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for lane := 0; lane < 16; lane++ {
		want += int64(uint8(lane + 240))
	}
	if sum.I != want {
		t.Errorf("vredadd.u8 = %d, want %d", sum.I, want)
	}
	mx, err := VecReduce(cil.VRedMax, cil.U8, v)
	if err != nil || mx.I != 255 {
		t.Errorf("vredmax.u8 = %d, want 255", mx.I)
	}
	mn, err := VecReduce(cil.VRedMin, cil.U8, v)
	if err != nil || mn.I != 240 {
		t.Errorf("vredmin.u8 = %d, want 240", mn.I)
	}

	fv := VecSplat(cil.F64, Float(cil.F64, 2.5))
	fs, err := VecReduce(cil.VRedAdd, cil.F64, fv)
	if err != nil || fs.F != 5.0 {
		t.Errorf("vredadd.f64 = %v, want 5", fs.F)
	}
	if _, err := VecReduce(cil.VAdd, cil.F64, fv); err == nil {
		t.Error("non-reduction opcode must be rejected")
	}
}

// Property: for every integer kind, Binary at kind k agrees with doing the
// arithmetic in full 64-bit and normalizing afterwards.
func TestBinaryMatchesNormalizedWideArithmetic(t *testing.T) {
	kinds := []cil.Kind{cil.I8, cil.U8, cil.I16, cil.U16, cil.I32, cil.U32, cil.I64, cil.U64}
	ops := []cil.Opcode{cil.Add, cil.Sub, cil.Mul, cil.And, cil.Or, cil.Xor}
	f := func(a, b int64, ki, oi uint8) bool {
		k := kinds[int(ki)%len(kinds)]
		op := ops[int(oi)%len(ops)]
		x, y := Int(k, a), Int(k, b)
		got, err := Binary(op, k, x, y)
		if err != nil {
			return false
		}
		var wide int64
		switch op {
		case cil.Add:
			wide = x.I + y.I
		case cil.Sub:
			wide = x.I - y.I
		case cil.Mul:
			wide = x.I * y.I
		case cil.And:
			wide = x.I & y.I
		case cil.Or:
			wide = x.I | y.I
		case cil.Xor:
			wide = x.I ^ y.I
		}
		return got.I == Normalize(k, wide)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: LaneSet followed by LaneGet is the identity after normalization,
// for random lanes and values.
func TestLaneRoundTripProperty(t *testing.T) {
	kinds := []cil.Kind{cil.I8, cil.U8, cil.I16, cil.U16, cil.I32, cil.U32, cil.I64, cil.U64}
	f := func(v int64, ki, lane uint8) bool {
		k := kinds[int(ki)%len(kinds)]
		l := int(lane) % k.Lanes()
		var vec Vec
		LaneSet(k, &vec, l, Int(k, v))
		return LaneGet(k, vec, l).I == Normalize(k, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
