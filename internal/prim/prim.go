// Package prim implements the primitive scalar and vector value semantics
// shared by the bytecode interpreter (internal/vm) and the native-code
// simulator (internal/sim). Keeping one implementation of integer
// wrap-around, signedness-aware comparison, conversion and per-lane vector
// arithmetic guarantees that the reference interpreter and the JIT-compiled
// code agree bit-for-bit, which the differential tests rely on.
package prim

import (
	"fmt"
	"math"

	"repro/internal/cil"
)

// Scalar is a primitive value: integers (of any width and signedness) are
// carried in I using their normalized 64-bit representation, floating-point
// values in F. Which field is meaningful is determined by the cil.Kind the
// value is used with.
type Scalar struct {
	I int64
	F float64
}

// Int returns a Scalar holding the integer v normalized to kind k.
func Int(k cil.Kind, v int64) Scalar { return Scalar{I: Normalize(k, v)} }

// Float returns a Scalar holding the floating-point v (rounded to float32
// when k is F32).
func Float(k cil.Kind, v float64) Scalar {
	if k == cil.F32 {
		v = float64(float32(v))
	}
	return Scalar{F: v}
}

// Normalize wraps v to the width of kind k and re-extends it into an int64:
// sign-extended for signed kinds, zero-extended for unsigned kinds. Bool is
// normalized to 0 or 1.
func Normalize(k cil.Kind, v int64) int64 {
	switch k {
	case cil.Bool:
		if v != 0 {
			return 1
		}
		return 0
	case cil.I8:
		return int64(int8(v))
	case cil.U8:
		return int64(uint8(v))
	case cil.I16:
		return int64(int16(v))
	case cil.U16:
		return int64(uint16(v))
	case cil.I32:
		return int64(int32(v))
	case cil.U32:
		return int64(uint32(v))
	case cil.I64:
		return v
	case cil.U64:
		return v // representation is the raw 64-bit pattern
	default:
		return v
	}
}

// Binary applies the two-operand arithmetic or bitwise operation op (one of
// cil.Add..cil.Shr) to a and b at kind k. Integer results wrap at the width
// of k. Division or remainder by zero returns an error (the simulated trap).
func Binary(op cil.Opcode, k cil.Kind, a, b Scalar) (Scalar, error) {
	if k.IsFloat() {
		var r float64
		switch op {
		case cil.Add:
			r = a.F + b.F
		case cil.Sub:
			r = a.F - b.F
		case cil.Mul:
			r = a.F * b.F
		case cil.Div:
			r = a.F / b.F
		default:
			return Scalar{}, fmt.Errorf("prim: %s not defined on %s", op, k)
		}
		return Float(k, r), nil
	}
	x, y := a.I, b.I
	var r int64
	switch op {
	case cil.Add:
		r = x + y
	case cil.Sub:
		r = x - y
	case cil.Mul:
		r = x * y
	case cil.Div:
		if y == 0 {
			return Scalar{}, fmt.Errorf("prim: integer division by zero")
		}
		if k.IsSigned() {
			r = x / y
		} else {
			r = int64(uint64(x) / uint64(y))
		}
	case cil.Rem:
		if y == 0 {
			return Scalar{}, fmt.Errorf("prim: integer remainder by zero")
		}
		if k.IsSigned() {
			r = x % y
		} else {
			r = int64(uint64(x) % uint64(y))
		}
	case cil.And:
		r = x & y
	case cil.Or:
		r = x | y
	case cil.Xor:
		r = x ^ y
	case cil.Shl:
		r = x << (uint64(y) & 63)
	case cil.Shr:
		if k.IsSigned() {
			r = x >> (uint64(y) & 63)
		} else {
			r = int64(uint64(x) >> (uint64(y) & 63))
		}
	default:
		return Scalar{}, fmt.Errorf("prim: %s is not a binary operation", op)
	}
	return Int(k, r), nil
}

// Unary applies a one-operand operation (cil.Neg or cil.Not) at kind k.
func Unary(op cil.Opcode, k cil.Kind, a Scalar) (Scalar, error) {
	switch op {
	case cil.Neg:
		if k.IsFloat() {
			return Float(k, -a.F), nil
		}
		return Int(k, -a.I), nil
	case cil.Not:
		if k.IsFloat() {
			return Scalar{}, fmt.Errorf("prim: not on %s", k)
		}
		return Int(k, ^a.I), nil
	}
	return Scalar{}, fmt.Errorf("prim: %s is not a unary operation", op)
}

// Compare evaluates the comparison op (cil.CmpEq..cil.CmpGe) at kind k.
func Compare(op cil.Opcode, k cil.Kind, a, b Scalar) (bool, error) {
	var lt, eq bool
	if k.IsFloat() {
		lt, eq = a.F < b.F, a.F == b.F
	} else if k.IsSigned() {
		lt, eq = a.I < b.I, a.I == b.I
	} else {
		lt, eq = uint64(a.I) < uint64(b.I), a.I == b.I
	}
	switch op {
	case cil.CmpEq:
		return eq, nil
	case cil.CmpNe:
		return !eq, nil
	case cil.CmpLt:
		return lt, nil
	case cil.CmpLe:
		return lt || eq, nil
	case cil.CmpGt:
		return !lt && !eq, nil
	case cil.CmpGe:
		return !lt, nil
	}
	return false, fmt.Errorf("prim: %s is not a comparison", op)
}

// Convert converts a from kind `from` to kind `to` following C-like
// conversion rules (truncation of integers, rounding of floats toward zero
// when converting to integer).
func Convert(from, to cil.Kind, a Scalar) Scalar {
	switch {
	case from.IsFloat() && to.IsFloat():
		return Float(to, a.F)
	case from.IsFloat() && to.IsInteger():
		return Int(to, int64(a.F))
	case from.IsInteger() && to.IsFloat():
		if from.IsSigned() || from == cil.Bool {
			return Float(to, float64(a.I))
		}
		return Float(to, float64(uint64(a.I)))
	default:
		return Int(to, a.I)
	}
}

// IsTrue reports whether the scalar is non-zero when interpreted at kind k.
func IsTrue(k cil.Kind, a Scalar) bool {
	if k.IsFloat() {
		return a.F != 0
	}
	return a.I != 0
}

// Vec is the portable 16-byte virtual vector payload.
type Vec [cil.VecBytes]byte

// LaneGet reads lane i of the vector interpreted with element kind k.
func LaneGet(k cil.Kind, v Vec, lane int) Scalar {
	sz := k.Size()
	off := lane * sz
	var bits uint64
	for b := 0; b < sz; b++ {
		bits |= uint64(v[off+b]) << (8 * b)
	}
	switch k {
	case cil.F32:
		return Scalar{F: float64(math.Float32frombits(uint32(bits)))}
	case cil.F64:
		return Scalar{F: math.Float64frombits(bits)}
	default:
		return Int(k, int64(bits))
	}
}

// LaneSet writes lane i of the vector with element kind k.
func LaneSet(k cil.Kind, v *Vec, lane int, s Scalar) {
	sz := k.Size()
	off := lane * sz
	var bits uint64
	switch k {
	case cil.F32:
		bits = uint64(math.Float32bits(float32(s.F)))
	case cil.F64:
		bits = math.Float64bits(s.F)
	default:
		bits = uint64(Normalize(k, s.I))
	}
	for b := 0; b < sz; b++ {
		v[off+b] = byte(bits >> (8 * b))
	}
}

// VecBinary applies the element-wise vector operation op (cil.VAdd, cil.VSub,
// cil.VMul, cil.VMax or cil.VMin) with element kind k.
func VecBinary(op cil.Opcode, k cil.Kind, a, b Vec) (Vec, error) {
	switch op {
	case cil.VAdd, cil.VSub, cil.VMul, cil.VMax, cil.VMin:
		return VecBinaryNoTrap(op, k, a, b), nil
	}
	return Vec{}, fmt.Errorf("prim: %s is not an element-wise vector operation", op)
}

// VecSplat broadcasts the scalar s to all lanes of a vector with element
// kind k.
func VecSplat(k cil.Kind, s Scalar) Vec {
	var out Vec
	for lane := 0; lane < k.Lanes(); lane++ {
		LaneSet(k, &out, lane, s)
	}
	return out
}

// VecReduce performs the horizontal reduction op (cil.VRedAdd, cil.VRedMax or
// cil.VRedMin) over the vector with element kind k. The result kind follows
// cil.ReduceKind.
func VecReduce(op cil.Opcode, k cil.Kind, v Vec) (Scalar, error) {
	rk := cil.ReduceKind(op, k)
	acc := LaneGet(k, v, 0)
	for lane := 1; lane < k.Lanes(); lane++ {
		x := LaneGet(k, v, lane)
		switch op {
		case cil.VRedAdd:
			if k.IsFloat() {
				acc = Float(rk, acc.F+x.F)
			} else {
				acc = Scalar{I: acc.I + x.I}
			}
		case cil.VRedMax, cil.VRedMin:
			cmp := cil.CmpGt
			if op == cil.VRedMin {
				cmp = cil.CmpLt
			}
			keep, err := Compare(cmp, k, x, acc)
			if err != nil {
				return Scalar{}, err
			}
			if keep {
				acc = x
			}
		default:
			return Scalar{}, fmt.Errorf("prim: %s is not a vector reduction", op)
		}
	}
	if !k.IsFloat() {
		acc.I = Normalize(rk, acc.I)
	}
	return acc, nil
}
