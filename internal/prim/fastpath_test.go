package prim

import (
	"math"
	"testing"

	"repro/internal/cil"
)

var intKinds = []cil.Kind{cil.Bool, cil.I8, cil.U8, cil.I16, cil.U16, cil.I32, cil.U32, cil.I64, cil.U64}

// scalarEq compares scalars bitwise so NaN results compare equal.
func scalarEq(a, b Scalar) bool {
	return a.I == b.I && math.Float64bits(a.F) == math.Float64bits(b.F)
}

// interesting integer operand patterns: boundaries, sign bits, wrap cases.
var intProbes = []int64{0, 1, -1, 2, 127, 128, 255, 256, -128, -129, 32767, 65535,
	1<<31 - 1, 1 << 31, -1 << 31, 1<<63 - 1, -1 << 63, 0x55AA55AA55AA55AA, -42}

func TestNormModeMatchesNormalize(t *testing.T) {
	// Every kind, not just the integer ones: Normalize is the identity on
	// floats, Ref, Vec and Void, and NormModeOf must agree.
	allKinds := append([]cil.Kind{cil.Void, cil.F32, cil.F64, cil.Ref, cil.Vec}, intKinds...)
	for _, k := range allKinds {
		nm := NormModeOf(k)
		for _, v := range intProbes {
			if got, want := nm.Apply(v), Normalize(k, v); got != want {
				t.Errorf("NormModeOf(%s).Apply(%d) = %d, Normalize = %d", k, v, got, want)
			}
		}
	}
}

func TestBinaryNoTrapMatchesBinary(t *testing.T) {
	ops := []cil.Opcode{cil.Add, cil.Sub, cil.Mul, cil.Div, cil.Rem, cil.And, cil.Or, cil.Xor, cil.Shl, cil.Shr}
	for _, k := range intKinds {
		for _, op := range ops {
			for _, x := range intProbes {
				for _, y := range intProbes {
					a, b := Int(k, x), Int(k, y)
					want, err := Binary(op, k, a, b)
					if err != nil {
						continue // trapping case: NoTrap is not defined for it
					}
					if got := BinaryNoTrap(op, k, a, b); got != want {
						t.Fatalf("BinaryNoTrap(%s, %s, %d, %d) = %+v, want %+v", op, k, a.I, b.I, got, want)
					}
				}
			}
		}
	}
	for _, k := range []cil.Kind{cil.F32, cil.F64} {
		for _, op := range []cil.Opcode{cil.Add, cil.Sub, cil.Mul, cil.Div} {
			for _, x := range []float64{0, 1, -2.5, 1e30, -1e-30, math.Pi} {
				for _, y := range []float64{1, -1, 0.5, 3e7} {
					a, b := Float(k, x), Float(k, y)
					want, _ := Binary(op, k, a, b)
					if got := BinaryNoTrap(op, k, a, b); !scalarEq(got, want) {
						t.Fatalf("BinaryNoTrap(%s, %s, %g, %g) = %+v, want %+v", op, k, x, y, got, want)
					}
				}
			}
		}
	}
}

func TestCompareNoTrapMatchesCompare(t *testing.T) {
	ops := []cil.Opcode{cil.CmpEq, cil.CmpNe, cil.CmpLt, cil.CmpLe, cil.CmpGt, cil.CmpGe}
	for _, k := range intKinds {
		for _, op := range ops {
			for _, x := range intProbes {
				for _, y := range intProbes {
					a, b := Int(k, x), Int(k, y)
					want, err := Compare(op, k, a, b)
					if err != nil {
						t.Fatal(err)
					}
					if got := CompareNoTrap(op, k, a, b); got != want {
						t.Fatalf("CompareNoTrap(%s, %s, %d, %d) = %v, want %v", op, k, a.I, b.I, got, want)
					}
				}
			}
		}
	}
	// Float comparisons including NaN ordering.
	for _, op := range ops {
		for _, x := range []float64{0, 1, -1, math.NaN(), math.Inf(1)} {
			for _, y := range []float64{0, 2, math.NaN()} {
				a, b := Scalar{F: x}, Scalar{F: y}
				want, _ := Compare(op, cil.F64, a, b)
				if got := CompareNoTrap(op, cil.F64, a, b); got != want {
					t.Fatalf("CompareNoTrap(%s, f64, %g, %g) = %v, want %v", op, x, y, got, want)
				}
			}
		}
	}
}

// referenceVecBinary is the pre-specialization lane loop, kept as the test
// oracle for the specialized fast paths.
func referenceVecBinary(op cil.Opcode, k cil.Kind, a, b Vec) Vec {
	var out Vec
	for lane := 0; lane < k.Lanes(); lane++ {
		x, y := LaneGet(k, a, lane), LaneGet(k, b, lane)
		var r Scalar
		switch op {
		case cil.VAdd, cil.VSub, cil.VMul:
			sop := map[cil.Opcode]cil.Opcode{cil.VAdd: cil.Add, cil.VSub: cil.Sub, cil.VMul: cil.Mul}[op]
			r, _ = Binary(sop, k, x, y)
		case cil.VMax, cil.VMin:
			cmp := cil.CmpGt
			if op == cil.VMin {
				cmp = cil.CmpLt
			}
			if keep, _ := Compare(cmp, k, x, y); keep {
				r = x
			} else {
				r = y
			}
		}
		LaneSet(k, &out, lane, r)
	}
	return out
}

func referenceVecReduce(op cil.Opcode, k cil.Kind, v Vec) Scalar {
	rk := cil.ReduceKind(op, k)
	acc := LaneGet(k, v, 0)
	for lane := 1; lane < k.Lanes(); lane++ {
		x := LaneGet(k, v, lane)
		switch op {
		case cil.VRedAdd:
			if k.IsFloat() {
				acc = Float(rk, acc.F+x.F)
			} else {
				acc = Scalar{I: acc.I + x.I}
			}
		default:
			cmp := cil.CmpGt
			if op == cil.VRedMin {
				cmp = cil.CmpLt
			}
			if keep, _ := Compare(cmp, k, x, acc); keep {
				acc = x
			}
		}
	}
	if !k.IsFloat() {
		acc.I = Normalize(rk, acc.I)
	}
	return acc
}

var vecKinds = []cil.Kind{cil.I8, cil.U8, cil.I16, cil.U16, cil.I32, cil.U32, cil.I64, cil.U64, cil.F32, cil.F64}

func testVectors() []Vec {
	patterns := [][16]byte{
		{},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x80, 0x00, 0x80, 0x7F, 0xFF, 0x80, 0x01, 0xFE, 0x80, 0x00, 0x80, 0x7F, 0xFF, 0x80, 0x01, 0xFE},
		{0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0},
	}
	out := make([]Vec, len(patterns))
	for i, p := range patterns {
		out[i] = Vec(p)
	}
	// A vector of float lanes (f32 1.5, -2.25, 3e7, -0.0 / f64 views of same bits).
	var f Vec
	for lane, v := range []float32{1.5, -2.25, 3e7, math.Float32frombits(0x80000000)} {
		bits := math.Float32bits(v)
		for b := 0; b < 4; b++ {
			f[lane*4+b] = byte(bits >> (8 * b))
		}
	}
	return append(out, f)
}

func TestVecBinaryNoTrapMatchesReference(t *testing.T) {
	vecs := testVectors()
	for _, k := range vecKinds {
		for _, op := range []cil.Opcode{cil.VAdd, cil.VSub, cil.VMul, cil.VMax, cil.VMin} {
			for _, a := range vecs {
				for _, b := range vecs {
					want := referenceVecBinary(op, k, a, b)
					if got := VecBinaryNoTrap(op, k, a, b); got != want {
						t.Fatalf("VecBinaryNoTrap(%s, %s, %x, %x) = %x, want %x", op, k, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestVecReduceNoTrapMatchesReference(t *testing.T) {
	vecs := testVectors()
	for _, k := range vecKinds {
		for _, op := range []cil.Opcode{cil.VRedAdd, cil.VRedMax, cil.VRedMin} {
			for _, v := range vecs {
				want := referenceVecReduce(op, k, v)
				if got := VecReduceNoTrap(op, k, v); !scalarEq(got, want) {
					t.Fatalf("VecReduceNoTrap(%s, %s, %x) = %+v, want %+v", op, k, v, got, want)
				}
			}
		}
	}
}
