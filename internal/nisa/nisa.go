// Package nisa defines the native instruction set of the simulated target
// processors: a load/store register machine with integer, floating-point and
// (on SIMD-capable targets) 128-bit vector register classes.
//
// The JIT (internal/jit) translates portable bytecode into nisa programs; the
// machine simulator (internal/sim) executes them with the per-target cycle
// costs from internal/target. The instruction set is deliberately close to
// the common denominator of the paper's evaluation machines so that per-
// instruction cost accounting is meaningful.
package nisa

import (
	"fmt"
	"strings"

	"repro/internal/cil"
)

// RegClass identifies a register file.
type RegClass uint8

// Register classes.
const (
	ClassInt RegClass = iota
	ClassFloat
	ClassVec
	ClassNone // operand not used
)

func (c RegClass) String() string {
	switch c {
	case ClassInt:
		return "r"
	case ClassFloat:
		return "f"
	case ClassVec:
		return "v"
	default:
		return "-"
	}
}

// ClassOf returns the register class used to hold values of the given kind.
func ClassOf(k cil.Kind) RegClass {
	switch {
	case k == cil.Vec:
		return ClassVec
	case k.IsFloat():
		return ClassFloat
	default:
		return ClassInt // integers, booleans and array references
	}
}

// Reg is a physical or virtual register. Virtual registers (used between
// translation and register assignment) have Virtual == true.
type Reg struct {
	Class   RegClass
	Index   int
	Virtual bool
}

func (r Reg) String() string {
	if r.Class == ClassNone {
		return "_"
	}
	if r.Virtual {
		return fmt.Sprintf("%s%%%d", r.Class, r.Index)
	}
	return fmt.Sprintf("%s%d", r.Class, r.Index)
}

// NoReg is the absent-operand register.
var NoReg = Reg{Class: ClassNone}

// Op is a native opcode.
type Op uint8

// Native opcodes.
const (
	Nop Op = iota

	// Constants and moves.
	MovImm  // Rd <- Imm (integer / reference)
	MovFImm // Rd <- FImm (float)
	Mov     // Rd <- Ra (same class)

	// Integer ALU, operating at the width/signedness of Kind.
	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Neg
	Not

	// Floating-point ALU (Kind is F32 or F64).
	FAdd
	FSub
	FMul
	FDiv
	FNeg

	// SetCmp Rd <- (Ra cond Rb) as 0/1, at kind/signedness Kind.
	SetCmp
	// Select Rd <- (Ra cond Rb) ? Ra : Rb, at kind/signedness Kind (the
	// conditional-move every evaluation target provides in some form).
	Select

	// Conversions between kinds (and register classes): Rd <- conv(Ra),
	// converting from SrcKind to Kind.
	Conv

	// GetArg Rd <- incoming argument number Imm (function prologue only).
	GetArg

	// Memory. Addresses are formed as Ra + Rb*size(Kind): Ra holds the
	// array base address, Rb the element index.
	Load  // Rd <- mem[Ra + Rb*size]
	Store // mem[Ra + Rb*size] <- Rd
	// Spill slots live in the function frame and are addressed by slot
	// index (Imm).
	SpillLoad  // Rd <- frame[Imm]
	SpillStore // frame[Imm] <- Rd
	// Array runtime support.
	Alloc  // Rd <- new array of Imm? no: Rd <- allocate(Ra elements of Kind)
	ArrLen // Rd <- length of array at Ra

	// Control flow.
	Jump      // unconditional branch to Target
	BranchCmp // if (Ra cond Rb) at Kind, branch to Target
	Call      // call Sym; arguments follow the ABI (see package sim)
	Ret       // return; value (if any) is in the ABI return register

	// Vector unit (only emitted for SIMD-capable targets).
	VLoad  // Vd <- mem[Ra + Rb*size] (16 bytes)
	VStore // mem[Ra + Rb*size] <- Vd (16 bytes)
	VAdd   // element-wise, element kind Kind
	VSub
	VMul
	VMax
	VMin
	VSplat  // Vd <- broadcast Ra/Fa
	VRedAdd // Rd/Fd <- horizontal sum of Va
	VRedMax
	VRedMin

	numOps
)

var opNames = [...]string{
	Nop: "nop", MovImm: "movi", MovFImm: "movf", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Neg: "neg", Not: "not",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FNeg: "fneg",
	SetCmp: "setcmp", Select: "select", Conv: "conv", GetArg: "getarg",
	Load: "load", Store: "store", SpillLoad: "ld.spill", SpillStore: "st.spill",
	Alloc: "alloc", ArrLen: "arrlen",
	Jump: "jump", BranchCmp: "bcmp", Call: "call", Ret: "ret",
	VLoad: "vload", VStore: "vstore", VAdd: "vadd", VSub: "vsub", VMul: "vmul",
	VMax: "vmax", VMin: "vmin", VSplat: "vsplat",
	VRedAdd: "vredadd", VRedMax: "vredmax", VRedMin: "vredmin",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OpCount is the number of defined opcodes; [OpCount]-sized arrays make
// handy dense per-opcode tables (the pre-decoded simulator core indexes a
// few of them).
const OpCount = int(numOps)

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps }

// IsVector reports whether the opcode uses the vector unit.
func (op Op) IsVector() bool { return op >= VLoad && op <= VRedMin }

// IsBranch reports whether the opcode may transfer control to Target.
func (op Op) IsBranch() bool { return op == Jump || op == BranchCmp }

// aluOpcodes maps native scalar ALU opcodes to the shared primitive
// semantics of internal/prim (cil opcodes). Zero (cil.Nop) marks opcodes
// without a scalar ALU equivalent.
var aluOpcodes = [OpCount]cil.Opcode{
	Add: cil.Add, Sub: cil.Sub, Mul: cil.Mul, Div: cil.Div, Rem: cil.Rem,
	And: cil.And, Or: cil.Or, Xor: cil.Xor, Shl: cil.Shl, Shr: cil.Shr,
	FAdd: cil.Add, FSub: cil.Sub, FMul: cil.Mul, FDiv: cil.Div,
}

// ALUOpcode returns the cil opcode carrying the shared scalar semantics of a
// native ALU opcode (Add..Shr, FAdd..FDiv), or cil.Nop for opcodes that are
// not two-operand ALU instructions.
func (op Op) ALUOpcode() cil.Opcode { return aluOpcodes[op] }

// vectorOpcodes maps native vector opcodes to the portable vector builtin
// semantics of internal/prim.
var vectorOpcodes = [OpCount]cil.Opcode{
	VAdd: cil.VAdd, VSub: cil.VSub, VMul: cil.VMul, VMax: cil.VMax, VMin: cil.VMin,
	VRedAdd: cil.VRedAdd, VRedMax: cil.VRedMax, VRedMin: cil.VRedMin,
}

// VectorOpcode returns the cil opcode carrying the shared element-wise or
// reduction semantics of a native vector opcode, or cil.Nop for opcodes
// without one (VLoad, VStore, VSplat and every scalar opcode).
func (op Op) VectorOpcode() cil.Opcode { return vectorOpcodes[op] }

// Cond is a comparison condition for SetCmp and BranchCmp.
type Cond uint8

// Conditions.
const (
	CondEq Cond = iota
	CondNe
	CondLt
	CondLe
	CondGt
	CondGe
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Opcode returns the cil comparison opcode carrying the condition's shared
// semantics (the inverse of CondOf).
func (c Cond) Opcode() cil.Opcode {
	switch c {
	case CondEq:
		return cil.CmpEq
	case CondNe:
		return cil.CmpNe
	case CondLt:
		return cil.CmpLt
	case CondLe:
		return cil.CmpLe
	case CondGt:
		return cil.CmpGt
	default:
		return cil.CmpGe
	}
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEq:
		return CondNe
	case CondNe:
		return CondEq
	case CondLt:
		return CondGe
	case CondLe:
		return CondGt
	case CondGt:
		return CondLe
	default:
		return CondLt
	}
}

// CondOf maps a bytecode comparison opcode to the native condition.
func CondOf(op cil.Opcode) Cond {
	switch op {
	case cil.CmpEq:
		return CondEq
	case cil.CmpNe:
		return CondNe
	case cil.CmpLt:
		return CondLt
	case cil.CmpLe:
		return CondLe
	case cil.CmpGt:
		return CondGt
	default:
		return CondGe
	}
}

// Instr is one native instruction. Field use depends on the opcode.
type Instr struct {
	Op   Op
	Kind cil.Kind
	// SrcKind is the source kind of a Conv (the destination kind is Kind).
	SrcKind cil.Kind
	Cond    Cond
	Rd      Reg
	Ra      Reg
	Rb      Reg
	// Imm is the integer immediate; for Load/Store/VLoad/VStore it is an
	// additional element displacement (address = Ra + (Rb+Imm)*size), which
	// the scalarizer uses for per-lane accesses.
	Imm    int64
	FImm   float64
	Target int
	Sym    string
	// Args lists the argument registers of a Call in ABI order; it is used
	// by the simulator to marshal the callee frame.
	Args []Reg
	// ArgSlots, when non-nil, gives for each argument the frame spill slot
	// it lives in (-1 when the argument is in Args[i]); filled in by the
	// register assigner when arguments had to be spilled.
	ArgSlots []int
}

func (in Instr) String() string {
	switch in.Op {
	case Nop, Ret:
		return in.Op.String()
	case MovImm:
		return fmt.Sprintf("%-8s %s, #%d", in.Op, in.Rd, in.Imm)
	case MovFImm:
		return fmt.Sprintf("%-8s %s, #%g", in.Op, in.Rd, in.FImm)
	case Mov:
		return fmt.Sprintf("%-8s %s, %s", in.Op, in.Rd, in.Ra)
	case SpillLoad:
		return fmt.Sprintf("%-8s %s, [frame+%d]", in.Op, in.Rd, in.Imm)
	case SpillStore:
		return fmt.Sprintf("%-8s [frame+%d], %s", in.Op, in.Imm, in.Rd)
	case Load, VLoad:
		return fmt.Sprintf("%-8s %s, [%s + (%s+%d)*%d]", opKind(in), in.Rd, in.Ra, in.Rb, in.Imm, in.Kind.Size())
	case Store, VStore:
		return fmt.Sprintf("%-8s [%s + (%s+%d)*%d], %s", opKind(in), in.Ra, in.Rb, in.Imm, in.Kind.Size(), in.Rd)
	case GetArg:
		return fmt.Sprintf("%-8s %s, arg%d", in.Op, in.Rd, in.Imm)
	case Select:
		return fmt.Sprintf("%-8s %s, %s, %s", opKind(in)+"."+in.Cond.String(), in.Rd, in.Ra, in.Rb)
	case Alloc:
		return fmt.Sprintf("%-8s %s, %s x %s", opKind(in), in.Rd, in.Ra, in.Kind)
	case ArrLen:
		return fmt.Sprintf("%-8s %s, %s", in.Op, in.Rd, in.Ra)
	case Jump:
		return fmt.Sprintf("%-8s @%d", in.Op, in.Target)
	case BranchCmp:
		return fmt.Sprintf("%-8s %s %s, %s, @%d", opKind(in)+"."+in.Cond.String(), "", in.Ra, in.Rb, in.Target)
	case SetCmp:
		return fmt.Sprintf("%-8s %s, %s, %s", opKind(in)+"."+in.Cond.String(), in.Rd, in.Ra, in.Rb)
	case Call:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = a.String()
		}
		return fmt.Sprintf("%-8s %s(%s) -> %s", in.Op, in.Sym, strings.Join(args, ", "), in.Rd)
	case Neg, Not, FNeg, Conv, VSplat, VRedAdd, VRedMax, VRedMin:
		return fmt.Sprintf("%-8s %s, %s", opKind(in), in.Rd, in.Ra)
	default:
		return fmt.Sprintf("%-8s %s, %s, %s", opKind(in), in.Rd, in.Ra, in.Rb)
	}
}

func opKind(in Instr) string {
	if in.Kind == cil.Void {
		return in.Op.String()
	}
	return in.Op.String() + "." + in.Kind.String()
}

// Func is one compiled native function.
type Func struct {
	Name   string
	Params []cil.Type
	Ret    cil.Type
	Code   []Instr
	// FrameSlots is the number of 16-byte spill slots in the frame.
	FrameSlots int

	// Compile-time statistics reported by the experiments.
	Stats Stats
}

// Stats captures per-function JIT statistics.
type Stats struct {
	// SpillSlots is the number of virtual registers that did not receive a
	// physical register.
	SpillSlots int
	// SpillLoads and SpillStores count emitted spill instructions (static).
	SpillLoads  int
	SpillStores int
	// SpillWeight is the estimated number of dynamic accesses to spilled
	// values (each spilled virtual register contributes its loop-depth
	// weighted use count); it approximates the spill memory traffic the
	// register allocation experiment reports.
	SpillWeight int64
	// VectorLowered counts portable vector builtins mapped to native vector
	// instructions; VectorScalarized counts builtins expanded to scalar
	// sequences.
	VectorLowered    int
	VectorScalarized int
	// CompileSteps approximates the JIT's own work (translation + register
	// assignment elementary steps); the Figure 1 experiment uses it to
	// compare online compilation effort with and without annotations.
	CompileSteps int64
}

// Program is a set of compiled functions forming a deployable native image
// for one target.
type Program struct {
	TargetName string
	Funcs      map[string]*Func
}

// NewProgram returns an empty program for the named target.
func NewProgram(targetName string) *Program {
	return &Program{TargetName: targetName, Funcs: make(map[string]*Func)}
}

// Add registers a compiled function.
func (p *Program) Add(f *Func) { p.Funcs[f.Name] = f }

// Func returns the named function or nil.
func (p *Program) Func(name string) *Func { return p.Funcs[name] }

// Disassemble renders the whole program as text.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; native image for %s\n", p.TargetName)
	for _, name := range sortedNames(p.Funcs) {
		b.WriteString(DisassembleFunc(p.Funcs[name]))
	}
	return b.String()
}

// DisassembleFunc renders one function as text.
func DisassembleFunc(f *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n%s: ; frame=%d slots, spills=%d\n", f.Name, f.FrameSlots, f.Stats.SpillSlots)
	for pc, in := range f.Code {
		fmt.Fprintf(&b, "  %4d: %s\n", pc, in)
	}
	return b.String()
}

func sortedNames(m map[string]*Func) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// CodeBytes estimates the encoded size in bytes of the function's code for a
// target with the given average instruction size. Vector instructions and
// memory operations with large immediates are charged one extra byte on
// variable-length targets (bytesPerInstr < 4), mimicking x86 prefixes.
func (f *Func) CodeBytes(bytesPerInstr int) int {
	total := 0
	for _, in := range f.Code {
		sz := bytesPerInstr
		if bytesPerInstr < 4 {
			if in.Op.IsVector() {
				sz += 2 // SSE prefix + ModRM
			}
			if in.Op == MovImm && (in.Imm > 127 || in.Imm < -128) || in.Op == MovFImm {
				sz += 3
			}
		}
		total += sz
	}
	return total
}

// CodeBytes sums the code size estimate over all functions of the program.
func (p *Program) CodeBytes(bytesPerInstr int) int {
	total := 0
	for _, f := range p.Funcs {
		total += f.CodeBytes(bytesPerInstr)
	}
	return total
}
