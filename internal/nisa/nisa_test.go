package nisa

import (
	"strings"
	"testing"

	"repro/internal/cil"
)

func TestRegAndOpStrings(t *testing.T) {
	if (Reg{Class: ClassInt, Index: 3}).String() != "r3" {
		t.Error("physical register formatting wrong")
	}
	if (Reg{Class: ClassVec, Index: 2, Virtual: true}).String() != "v%2" {
		t.Error("virtual register formatting wrong")
	}
	if NoReg.String() != "_" {
		t.Error("NoReg formatting wrong")
	}
	if Add.String() != "add" || VRedMax.String() != "vredmax" || Op(200).String() == "" {
		t.Error("opcode names wrong")
	}
	if !VLoad.IsVector() || Add.IsVector() {
		t.Error("IsVector misclassifies")
	}
	if !Jump.IsBranch() || !BranchCmp.IsBranch() || Ret.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !Add.Valid() || Op(250).Valid() {
		t.Error("Valid misclassifies")
	}
}

func TestCondHelpers(t *testing.T) {
	pairs := map[Cond]Cond{CondEq: CondNe, CondLt: CondGe, CondLe: CondGt, CondGt: CondLe, CondGe: CondLt, CondNe: CondEq}
	for c, want := range pairs {
		if c.Negate() != want {
			t.Errorf("%v.Negate() = %v, want %v", c, c.Negate(), want)
		}
	}
	if CondOf(cil.CmpLt) != CondLt || CondOf(cil.CmpGe) != CondGe || CondOf(cil.CmpEq) != CondEq {
		t.Error("CondOf mapping wrong")
	}
	if CondLt.String() != "lt" || Cond(99).String() == "" {
		t.Error("condition names wrong")
	}
}

func TestInstrStringsAndDisassembly(t *testing.T) {
	r0 := Reg{Class: ClassInt, Index: 0}
	f := &Func{
		Name: "demo",
		Ret:  cil.Scalar(cil.I32),
		Code: []Instr{
			{Op: GetArg, Kind: cil.I32, Rd: r0},
			{Op: MovImm, Kind: cil.I32, Rd: r0, Imm: 300},
			{Op: MovFImm, Kind: cil.F64, Rd: Reg{Class: ClassFloat}, FImm: 1.5},
			{Op: Load, Kind: cil.U8, Rd: r0, Ra: r0, Rb: r0, Imm: 3},
			{Op: Store, Kind: cil.U8, Rd: r0, Ra: r0, Rb: r0},
			{Op: SpillLoad, Rd: r0, Imm: 2},
			{Op: SpillStore, Rd: r0, Imm: 2},
			{Op: BranchCmp, Kind: cil.I32, Cond: CondLt, Ra: r0, Rb: r0, Target: 9},
			{Op: Select, Kind: cil.I32, Cond: CondGt, Rd: r0, Ra: r0, Rb: r0},
			{Op: Call, Sym: "callee", Args: []Reg{r0}, Rd: r0},
			{Op: VSplat, Kind: cil.U8, Rd: Reg{Class: ClassVec}, Ra: r0},
			{Op: Alloc, Kind: cil.I32, Rd: r0, Ra: r0},
			{Op: ArrLen, Rd: r0, Ra: r0},
			{Op: Jump, Target: 0},
			{Op: Ret, Kind: cil.I32, Ra: r0},
		},
	}
	for i, in := range f.Code {
		if in.String() == "" {
			t.Errorf("instruction %d has empty rendering", i)
		}
	}
	p := NewProgram("demo target")
	p.Add(f)
	if p.Func("demo") != f || p.Func("missing") != nil {
		t.Error("program lookup wrong")
	}
	text := p.Disassemble()
	for _, want := range []string{"demo target", "demo:", "movi", "bcmp", "ld.spill", "call"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestCodeBytes(t *testing.T) {
	r0 := Reg{Class: ClassInt, Index: 0}
	f := &Func{Name: "f", Code: []Instr{
		{Op: MovImm, Rd: r0, Imm: 100000},
		{Op: Add, Rd: r0, Ra: r0, Rb: r0},
		{Op: VAdd, Kind: cil.U8, Rd: Reg{Class: ClassVec}, Ra: Reg{Class: ClassVec}, Rb: Reg{Class: ClassVec}},
	}}
	risc := f.CodeBytes(4)
	if risc != 12 {
		t.Errorf("fixed-width size = %d, want 12", risc)
	}
	x86 := f.CodeBytes(3)
	if x86 <= 9 {
		t.Errorf("variable-width size = %d, want extra bytes for the large immediate and the SSE op", x86)
	}
	p := NewProgram("t")
	p.Add(f)
	if p.CodeBytes(4) != risc {
		t.Error("program size must sum function sizes")
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(cil.F32) != ClassFloat || ClassOf(cil.U8) != ClassInt || ClassOf(cil.Vec) != ClassVec || ClassOf(cil.Ref) != ClassInt {
		t.Error("ClassOf mapping wrong")
	}
	if ClassInt.String() != "r" || ClassFloat.String() != "f" || ClassVec.String() != "v" || ClassNone.String() != "-" {
		t.Error("class names wrong")
	}
}
