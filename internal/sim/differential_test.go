package sim_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/nisa"
	"repro/internal/prim"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/vm"
)

// TestPreDecodedCoreMatchesReferenceInterpreter is the differential gate of
// the pre-decoded execution core: every bench kernel, compiled both scalar
// and vectorized, deployed on every registered target, is executed by the
// production machine and by refMachine — an independent re-implementation of
// the original generic dispatch loop built only on the generic internal/prim
// entry points. Results, output arrays and every Stats counter (cycles,
// instructions, loads, stores, spills, vector ops, branches, calls) must
// match exactly.
func TestPreDecodedCoreMatchesReferenceInterpreter(t *testing.T) {
	const n = 257 // odd length exercises the vectorized loops' scalar tails
	for _, name := range kernels.Table1Names {
		k := kernels.MustGet(name)
		for _, variant := range []struct {
			label string
			opts  core.OfflineOptions
		}{
			{"scalar", core.OfflineOptions{DisableVectorize: true}},
			{"vectorized", core.OfflineOptions{}},
		} {
			res, err := core.CompileOffline(k.Source, variant.opts)
			if err != nil {
				t.Fatalf("%s %s: %v", name, variant.label, err)
			}
			for _, tgt := range target.All() {
				t.Run(name+"/"+variant.label+"/"+string(tgt.Arch), func(t *testing.T) {
					dep, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
					if err != nil {
						t.Fatal(err)
					}
					in, err := kernels.NewInputs(name, n, 7)
					if err != nil {
						t.Fatal(err)
					}

					fastVal, fastStats, fastOut, fastErr := runFast(dep.Machine, k, in)
					ref := newRefMachine(tgt, dep.Program)
					refVal, refStats, refOut, refErr := runRef(ref, k, in)

					if (fastErr == nil) != (refErr == nil) {
						t.Fatalf("error mismatch: fast=%v ref=%v", fastErr, refErr)
					}
					if fastErr != nil {
						return
					}
					if fastVal != refVal {
						t.Errorf("result mismatch: fast=%+v ref=%+v", fastVal, refVal)
					}
					if fastStats != refStats {
						t.Errorf("stats mismatch:\nfast %+v\nref  %+v", fastStats, refStats)
					}
					for i := range refOut {
						if !bytes.Equal(fastOut[i].Data, refOut[i].Data) {
							t.Errorf("output array %d differs", i)
						}
					}
				})
			}
		}
	}
}

// runFast marshals the kernel inputs into the production machine (via the
// shared bench.MarshalKernelArgs protocol), runs the entry point and copies
// the arrays back out.
func runFast(m *sim.Machine, k kernels.Kernel, in *kernels.Inputs) (sim.Value, sim.Stats, []*vm.Array, error) {
	work := in.Clone()
	args, addrs := bench.MarshalKernelArgs(m, work)
	val, err := m.Call(k.Entry, args...)
	if err != nil {
		return sim.Value{}, sim.Stats{}, nil, err
	}
	var outs []*vm.Array
	for i, addr := range addrs {
		out := vm.NewArray(work.Arrays[i].Elem, work.Arrays[i].Len())
		if err := m.CopyOutArray(addr, out); err != nil {
			return sim.Value{}, sim.Stats{}, nil, err
		}
		outs = append(outs, out)
	}
	return val, m.Stats, outs, nil
}

func runRef(m *refMachine, k kernels.Kernel, in *kernels.Inputs) (sim.Value, sim.Stats, []*vm.Array, error) {
	work := in.Clone()
	args := make([]sim.Value, len(work.Args))
	var addrs []int64
	arrIdx := 0
	for i, a := range work.Args {
		switch {
		case a.Kind == cil.Ref:
			addr := m.copyInArray(work.Arrays[arrIdx])
			addrs = append(addrs, addr)
			arrIdx++
			args[i] = sim.IntArg(addr)
		case a.Kind.IsFloat():
			args[i] = sim.FloatArg(a.Float())
		default:
			args[i] = sim.IntArg(a.Int())
		}
	}
	val, err := m.call(k.Entry, args...)
	if err != nil {
		return sim.Value{}, sim.Stats{}, nil, err
	}
	var outs []*vm.Array
	for i, addr := range addrs {
		out := vm.NewArray(work.Arrays[i].Elem, work.Arrays[i].Len())
		copy(out.Data, m.mem[addr:int(addr)+len(out.Data)])
		outs = append(outs, out)
	}
	return val, m.stats, outs, nil
}

// refMachine re-implements the simulator's original generic dispatch loop:
// per-instruction dispatch on nisa.Instr, generic prim.Binary/Compare/Unary
// calls for the scalar semantics, LaneGet/LaneSet lane loops for the vector
// semantics, and freshly allocated frames per activation. It intentionally
// shares no code with the pre-decoded core beyond the prim generic entry
// points, so any divergence in either implementation breaks the test.
type refMachine struct {
	tgt     *target.Desc
	prog    *nisa.Program
	stats   sim.Stats
	mem     []byte
	callDep int
}

const (
	refArrayHeader  = 8
	refMaxCallDepth = 512
)

func newRefMachine(tgt *target.Desc, prog *nisa.Program) *refMachine {
	return &refMachine{tgt: tgt, prog: prog, mem: make([]byte, 64)}
}

func (m *refMachine) allocArray(elem cil.Kind, n int) int64 {
	size := n * elem.Size()
	base := len(m.mem)
	grow := refArrayHeader + size
	if rem := (base + refArrayHeader + grow) % 16; rem != 0 {
		grow += 16 - rem
	}
	m.mem = append(m.mem, make([]byte, grow)...)
	m.mem[base] = byte(n)
	m.mem[base+1] = byte(n >> 8)
	m.mem[base+2] = byte(n >> 16)
	m.mem[base+3] = byte(n >> 24)
	return int64(base + refArrayHeader)
}

func (m *refMachine) copyInArray(a *vm.Array) int64 {
	addr := m.allocArray(a.Elem, a.Len())
	copy(m.mem[addr:], a.Data)
	return addr
}

type refFrame struct {
	ints  []int64
	flts  []float64
	vecs  []prim.Vec
	spill []prim.Vec
	args  []sim.Value
}

func (m *refMachine) call(name string, args ...sim.Value) (sim.Value, error) {
	f := m.prog.Func(name)
	if f == nil {
		return sim.Value{}, fmt.Errorf("ref: unknown function %q", name)
	}
	return m.exec(f, args)
}

func (m *refMachine) exec(f *nisa.Func, args []sim.Value) (sim.Value, error) {
	m.callDep++
	defer func() { m.callDep-- }()
	if m.callDep > refMaxCallDepth {
		return sim.Value{}, fmt.Errorf("ref: call depth exceeds %d", refMaxCallDepth)
	}
	fr := &refFrame{
		ints:  make([]int64, m.tgt.IntRegs+4),
		flts:  make([]float64, m.tgt.FloatRegs+4),
		vecs:  make([]prim.Vec, m.tgt.VecRegs+4),
		spill: make([]prim.Vec, f.FrameSlots),
		args:  args,
	}
	cost := &m.tgt.Cost

	pc := 0
	for {
		if pc < 0 || pc >= len(f.Code) {
			return sim.Value{}, fmt.Errorf("ref: %s: pc %d out of range", f.Name, pc)
		}
		in := &f.Code[pc]
		m.stats.Instructions++
		next := pc + 1

		switch in.Op {
		case nisa.Nop:
			m.stats.Cycles += int64(cost.Move)
		case nisa.MovImm:
			fr.ints[in.Rd.Index] = in.Imm
			m.stats.Cycles += int64(cost.Move)
		case nisa.MovFImm:
			fr.flts[in.Rd.Index] = in.FImm
			m.stats.Cycles += int64(cost.Move)
		case nisa.Mov:
			switch in.Rd.Class {
			case nisa.ClassInt:
				fr.ints[in.Rd.Index] = fr.ints[in.Ra.Index]
			case nisa.ClassFloat:
				fr.flts[in.Rd.Index] = fr.flts[in.Ra.Index]
			default:
				fr.vecs[in.Rd.Index] = fr.vecs[in.Ra.Index]
			}
			m.stats.Cycles += int64(cost.Move)
		case nisa.GetArg:
			a := fr.args[in.Imm]
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = a.F
			} else {
				fr.ints[in.Rd.Index] = a.I
			}
			m.stats.Cycles += int64(cost.Move)

		case nisa.Add, nisa.Sub, nisa.Mul, nisa.Div, nisa.Rem,
			nisa.And, nisa.Or, nisa.Xor, nisa.Shl, nisa.Shr:
			a := prim.Scalar{I: fr.ints[in.Ra.Index]}
			b := prim.Scalar{I: fr.ints[in.Rb.Index]}
			r, err := prim.Binary(in.Op.ALUOpcode(), in.Kind, a, b)
			if err != nil {
				return sim.Value{}, fmt.Errorf("ref: %s @%d: %v", f.Name, pc, err)
			}
			fr.ints[in.Rd.Index] = r.I
			m.stats.Cycles += refALUCost(cost, in.Op)
		case nisa.Neg, nisa.Not:
			op := cil.Neg
			if in.Op == nisa.Not {
				op = cil.Not
			}
			r, err := prim.Unary(op, in.Kind, prim.Scalar{I: fr.ints[in.Ra.Index]})
			if err != nil {
				return sim.Value{}, fmt.Errorf("ref: %s @%d: %v", f.Name, pc, err)
			}
			fr.ints[in.Rd.Index] = r.I
			m.stats.Cycles += int64(cost.IntALU)

		case nisa.FAdd, nisa.FSub, nisa.FMul, nisa.FDiv:
			a := prim.Scalar{F: fr.flts[in.Ra.Index]}
			b := prim.Scalar{F: fr.flts[in.Rb.Index]}
			r, err := prim.Binary(in.Op.ALUOpcode(), in.Kind, a, b)
			if err != nil {
				return sim.Value{}, fmt.Errorf("ref: %s @%d: %v", f.Name, pc, err)
			}
			fr.flts[in.Rd.Index] = r.F
			m.stats.Cycles += refFPUCost(cost, in.Op)
		case nisa.FNeg:
			fr.flts[in.Rd.Index] = -fr.flts[in.Ra.Index]
			m.stats.Cycles += int64(cost.FloatALU)

		case nisa.SetCmp, nisa.Select:
			res, err := m.compare(fr, in)
			if err != nil {
				return sim.Value{}, err
			}
			if in.Op == nisa.SetCmp {
				if res {
					fr.ints[in.Rd.Index] = 1
				} else {
					fr.ints[in.Rd.Index] = 0
				}
				m.stats.Cycles += int64(cost.IntALU)
			} else {
				src := in.Rb
				if res {
					src = in.Ra
				}
				if in.Rd.Class == nisa.ClassFloat {
					fr.flts[in.Rd.Index] = fr.flts[src.Index]
				} else {
					fr.ints[in.Rd.Index] = fr.ints[src.Index]
				}
				m.stats.Cycles += 2 * int64(cost.IntALU)
			}

		case nisa.Conv:
			var src prim.Scalar
			if in.Ra.Class == nisa.ClassFloat {
				src = prim.Scalar{F: fr.flts[in.Ra.Index]}
			} else {
				src = prim.Scalar{I: fr.ints[in.Ra.Index]}
			}
			r := prim.Convert(in.SrcKind, in.Kind, src)
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = r.F
			} else {
				fr.ints[in.Rd.Index] = r.I
			}
			m.stats.Cycles += int64(cost.Convert)

		case nisa.Load:
			addr, err := m.elemAddr(fr, in)
			if err != nil {
				return sim.Value{}, fmt.Errorf("ref: %s @%d: %v", f.Name, pc, err)
			}
			var vec prim.Vec
			copy(vec[:in.Kind.Size()], m.mem[addr:])
			s := prim.LaneGet(in.Kind, vec, 0)
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = s.F
			} else {
				fr.ints[in.Rd.Index] = s.I
			}
			m.stats.Loads++
			m.stats.Cycles += m.memCost(in.Kind, cost.Load)
		case nisa.Store:
			addr, err := m.elemAddr(fr, in)
			if err != nil {
				return sim.Value{}, fmt.Errorf("ref: %s @%d: %v", f.Name, pc, err)
			}
			var s prim.Scalar
			if in.Rd.Class == nisa.ClassFloat {
				s = prim.Scalar{F: fr.flts[in.Rd.Index]}
			} else {
				s = prim.Scalar{I: fr.ints[in.Rd.Index]}
			}
			var vec prim.Vec
			prim.LaneSet(in.Kind, &vec, 0, s)
			copy(m.mem[addr:addr+int64(in.Kind.Size())], vec[:in.Kind.Size()])
			m.stats.Stores++
			m.stats.Cycles += m.memCost(in.Kind, cost.Store)

		case nisa.SpillLoad:
			slot := fr.spill[in.Imm]
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = math.Float64frombits(refUint64(slot[:8]))
			} else if in.Rd.Class == nisa.ClassVec {
				fr.vecs[in.Rd.Index] = slot
			} else {
				fr.ints[in.Rd.Index] = int64(refUint64(slot[:8]))
			}
			m.stats.SpillLoads++
			m.stats.Cycles += int64(cost.Load)
		case nisa.SpillStore:
			var slot prim.Vec
			if in.Rd.Class == nisa.ClassFloat {
				refPutUint64(slot[:8], math.Float64bits(fr.flts[in.Rd.Index]))
			} else if in.Rd.Class == nisa.ClassVec {
				slot = fr.vecs[in.Rd.Index]
			} else {
				refPutUint64(slot[:8], uint64(fr.ints[in.Rd.Index]))
			}
			fr.spill[in.Imm] = slot
			m.stats.SpillStores++
			m.stats.Cycles += int64(cost.Store)

		case nisa.Alloc:
			n := fr.ints[in.Ra.Index]
			if n < 0 {
				return sim.Value{}, fmt.Errorf("ref: %s @%d: negative array length", f.Name, pc)
			}
			fr.ints[in.Rd.Index] = m.allocArray(in.Kind, int(n))
			m.stats.Cycles += int64(cost.Call)
		case nisa.ArrLen:
			base := fr.ints[in.Ra.Index]
			if base < refArrayHeader || int(base) > len(m.mem) {
				return sim.Value{}, fmt.Errorf("ref: %s @%d: arrlen on invalid address", f.Name, pc)
			}
			h := m.mem[base-refArrayHeader:]
			fr.ints[in.Rd.Index] = int64(uint32(h[0]) | uint32(h[1])<<8 | uint32(h[2])<<16 | uint32(h[3])<<24)
			m.stats.Cycles += m.memCost(cil.I32, cost.Load)

		case nisa.Jump:
			next = in.Target
			m.stats.Branches++
			m.stats.Cycles += int64(cost.BranchTaken)
		case nisa.BranchCmp:
			res, err := m.compare(fr, in)
			if err != nil {
				return sim.Value{}, err
			}
			m.stats.Branches++
			if res {
				next = in.Target
				m.stats.Cycles += int64(cost.BranchTaken)
			} else {
				m.stats.Cycles += int64(cost.BranchNotTaken)
			}

		case nisa.Call:
			callee := m.prog.Func(in.Sym)
			if callee == nil {
				return sim.Value{}, fmt.Errorf("ref: %s @%d: unknown callee %q", f.Name, pc, in.Sym)
			}
			cargs := make([]sim.Value, len(in.Args))
			for i := range in.Args {
				if in.ArgSlots != nil && in.ArgSlots[i] >= 0 {
					slot := fr.spill[in.ArgSlots[i]]
					bits := refUint64(slot[:8])
					cargs[i] = sim.Value{I: int64(bits), F: math.Float64frombits(bits)}
					m.stats.Cycles += int64(cost.Load)
					continue
				}
				r := in.Args[i]
				if r.Class == nisa.ClassFloat {
					cargs[i] = sim.Value{F: fr.flts[r.Index]}
				} else {
					cargs[i] = sim.Value{I: fr.ints[r.Index]}
				}
				m.stats.Cycles += int64(cost.Move)
			}
			m.stats.Calls++
			m.stats.Cycles += int64(cost.Call)
			ret, err := m.exec(callee, cargs)
			if err != nil {
				return sim.Value{}, err
			}
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = ret.F
			} else if in.Rd.Class == nisa.ClassInt {
				fr.ints[in.Rd.Index] = ret.I
			}

		case nisa.Ret:
			m.stats.Cycles += int64(cost.BranchTaken)
			var ret sim.Value
			if in.Ra.Class == nisa.ClassFloat {
				ret.F = fr.flts[in.Ra.Index]
			} else if in.Ra.Class == nisa.ClassInt {
				ret.I = fr.ints[in.Ra.Index]
			}
			return ret, nil

		default:
			if in.Op.IsVector() {
				if err := m.execVector(fr, in); err != nil {
					return sim.Value{}, fmt.Errorf("ref: %s @%d: %v", f.Name, pc, err)
				}
				break
			}
			return sim.Value{}, fmt.Errorf("ref: %s @%d: unimplemented opcode %s", f.Name, pc, in.Op)
		}
		pc = next
	}
}

func (m *refMachine) compare(fr *refFrame, in *nisa.Instr) (bool, error) {
	var a, b prim.Scalar
	if in.Ra.Class == nisa.ClassFloat {
		a, b = prim.Scalar{F: fr.flts[in.Ra.Index]}, prim.Scalar{F: fr.flts[in.Rb.Index]}
	} else {
		a, b = prim.Scalar{I: fr.ints[in.Ra.Index]}, prim.Scalar{I: fr.ints[in.Rb.Index]}
	}
	return prim.Compare(in.Cond.Opcode(), in.Kind, a, b)
}

func (m *refMachine) elemAddr(fr *refFrame, in *nisa.Instr) (int64, error) {
	base := fr.ints[in.Ra.Index]
	idx := fr.ints[in.Rb.Index] + in.Imm
	addr := base + idx*int64(in.Kind.Size())
	span := int64(in.Kind.Size())
	if in.Op == nisa.VLoad || in.Op == nisa.VStore {
		span = cil.VecBytes
	}
	if base == 0 {
		return 0, fmt.Errorf("null reference access")
	}
	if addr < refArrayHeader || addr+span > int64(len(m.mem)) {
		return 0, fmt.Errorf("out of bounds")
	}
	return addr, nil
}

// execVector interprets one vector instruction with per-lane generic
// primitive calls (the pre-fast-path semantics).
func (m *refMachine) execVector(fr *refFrame, in *nisa.Instr) error {
	c := &m.tgt.Cost
	if !m.tgt.HasSIMD {
		return fmt.Errorf("vector instruction %s on a target without a vector unit", in.Op)
	}
	m.stats.VectorOps++
	switch in.Op {
	case nisa.VLoad:
		addr, err := m.elemAddr(fr, in)
		if err != nil {
			return err
		}
		var v prim.Vec
		copy(v[:], m.mem[addr:addr+cil.VecBytes])
		fr.vecs[in.Rd.Index] = v
		m.stats.Loads++
		m.stats.Cycles += int64(c.VecLoad + c.AddrCalcPenalty)
	case nisa.VStore:
		addr, err := m.elemAddr(fr, in)
		if err != nil {
			return err
		}
		v := fr.vecs[in.Rd.Index]
		copy(m.mem[addr:addr+cil.VecBytes], v[:])
		m.stats.Stores++
		m.stats.Cycles += int64(c.VecStore + c.AddrCalcPenalty)
	case nisa.VAdd, nisa.VSub, nisa.VMul, nisa.VMax, nisa.VMin:
		a, b := fr.vecs[in.Ra.Index], fr.vecs[in.Rb.Index]
		var out prim.Vec
		for lane := 0; lane < in.Kind.Lanes(); lane++ {
			x, y := prim.LaneGet(in.Kind, a, lane), prim.LaneGet(in.Kind, b, lane)
			var r prim.Scalar
			switch in.Op {
			case nisa.VAdd, nisa.VSub, nisa.VMul:
				sop := map[nisa.Op]cil.Opcode{nisa.VAdd: cil.Add, nisa.VSub: cil.Sub, nisa.VMul: cil.Mul}[in.Op]
				var err error
				r, err = prim.Binary(sop, in.Kind, x, y)
				if err != nil {
					return err
				}
			default:
				cmp := cil.CmpGt
				if in.Op == nisa.VMin {
					cmp = cil.CmpLt
				}
				keepX, err := prim.Compare(cmp, in.Kind, x, y)
				if err != nil {
					return err
				}
				if keepX {
					r = x
				} else {
					r = y
				}
			}
			prim.LaneSet(in.Kind, &out, lane, r)
		}
		fr.vecs[in.Rd.Index] = out
		if in.Op == nisa.VMul {
			m.stats.Cycles += int64(c.VecMul)
		} else {
			m.stats.Cycles += int64(c.VecALU)
		}
	case nisa.VSplat:
		var s prim.Scalar
		if in.Ra.Class == nisa.ClassFloat {
			s = prim.Scalar{F: fr.flts[in.Ra.Index]}
		} else {
			s = prim.Scalar{I: fr.ints[in.Ra.Index]}
		}
		var out prim.Vec
		for lane := 0; lane < in.Kind.Lanes(); lane++ {
			prim.LaneSet(in.Kind, &out, lane, s)
		}
		fr.vecs[in.Rd.Index] = out
		m.stats.Cycles += int64(c.VecSplat)
	case nisa.VRedAdd, nisa.VRedMax, nisa.VRedMin:
		op := map[nisa.Op]cil.Opcode{
			nisa.VRedAdd: cil.VRedAdd, nisa.VRedMax: cil.VRedMax, nisa.VRedMin: cil.VRedMin,
		}[in.Op]
		rk := cil.ReduceKind(op, in.Kind)
		v := fr.vecs[in.Ra.Index]
		acc := prim.LaneGet(in.Kind, v, 0)
		for lane := 1; lane < in.Kind.Lanes(); lane++ {
			x := prim.LaneGet(in.Kind, v, lane)
			switch op {
			case cil.VRedAdd:
				if in.Kind.IsFloat() {
					acc = prim.Float(rk, acc.F+x.F)
				} else {
					acc = prim.Scalar{I: acc.I + x.I}
				}
			default:
				cmp := cil.CmpGt
				if op == cil.VRedMin {
					cmp = cil.CmpLt
				}
				keep, err := prim.Compare(cmp, in.Kind, x, acc)
				if err != nil {
					return err
				}
				if keep {
					acc = x
				}
			}
		}
		if !in.Kind.IsFloat() {
			acc.I = prim.Normalize(rk, acc.I)
		}
		if in.Rd.Class == nisa.ClassFloat {
			fr.flts[in.Rd.Index] = acc.F
		} else {
			fr.ints[in.Rd.Index] = acc.I
		}
		m.stats.Cycles += int64(c.VecReduce)
	default:
		return fmt.Errorf("unimplemented vector opcode %s", in.Op)
	}
	return nil
}

func (m *refMachine) memCost(k cil.Kind, base int) int64 {
	c := base + m.tgt.Cost.AddrCalcPenalty
	if k.Size() < 4 {
		c += m.tgt.Cost.SubWordPenalty
	}
	return int64(c)
}

func refALUCost(c *target.CostModel, op nisa.Op) int64 {
	switch op {
	case nisa.Mul:
		return int64(c.IntMul)
	case nisa.Div, nisa.Rem:
		return int64(c.IntDiv)
	default:
		return int64(c.IntALU)
	}
}

func refFPUCost(c *target.CostModel, op nisa.Op) int64 {
	switch op {
	case nisa.FMul:
		return int64(c.FloatMul)
	case nisa.FDiv:
		return int64(c.FloatDiv)
	default:
		return int64(c.FloatALU)
	}
}

func refUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func refPutUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
