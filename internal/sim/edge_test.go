package sim

import (
	"strings"
	"testing"

	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/target"
	"repro/internal/vm"
)

func intReg(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassInt, Index: i} }
func fltReg(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassFloat, Index: i} }
func vecReg(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassVec, Index: i} }

func machineFor(t *testing.T, arch target.Arch, fns ...*nisa.Func) *Machine {
	t.Helper()
	p := nisa.NewProgram("edge")
	for _, f := range fns {
		p.Add(f)
	}
	return New(target.MustLookup(arch), p)
}

// TestVectorAccessOutOfBounds checks that a VLoad whose 16-byte span hangs
// over the end of an array's heap allocation traps instead of reading the
// neighbouring allocation, and that a VLoad through a null base traps as a
// null dereference.
func TestVectorAccessOutOfBounds(t *testing.T) {
	f := &nisa.Func{
		Name:   "f",
		Params: []cil.Type{cil.Array(cil.U8), cil.Scalar(cil.I32)},
		Ret:    cil.Scalar(cil.U64),
		Code: []nisa.Instr{
			{Op: nisa.GetArg, Kind: cil.Ref, Rd: intReg(0), Imm: 0},
			{Op: nisa.GetArg, Kind: cil.I32, Rd: intReg(1), Imm: 1},
			{Op: nisa.VLoad, Kind: cil.U8, Rd: vecReg(0), Ra: intReg(0), Rb: intReg(1)},
			{Op: nisa.VRedAdd, Kind: cil.U8, Rd: intReg(2), Ra: vecReg(0)},
			{Op: nisa.Ret, Kind: cil.U64, Ra: intReg(2)},
		},
	}
	m := machineFor(t, target.X86SSE, f)
	arr := vm.NewArray(cil.U8, 16)
	addr := m.CopyInArray(arr)

	// In bounds: a full vector starting at element 0.
	if _, err := m.Call("f", IntArg(int64(addr)), IntArg(0)); err != nil {
		t.Fatalf("in-bounds vector load failed: %v", err)
	}
	// The heap is padded for alignment, so probe far past the end: the
	// 16-byte span starting there must trap.
	if _, err := m.Call("f", IntArg(int64(addr)), IntArg(1<<28)); err == nil || !strings.Contains(err.Error(), "outside the heap") {
		t.Errorf("overhanging vector load: got %v, want bounds trap", err)
	}
	// Null base.
	if _, err := m.Call("f", IntArg(0), IntArg(0)); err == nil || !strings.Contains(err.Error(), "null reference") {
		t.Errorf("null vector load: got %v, want null trap", err)
	}
}

// TestSpillRoundTripAllClasses spills and reloads a value in each register
// class (int, float, vector) and checks both the reloaded values and the
// spill statistics.
func TestSpillRoundTripAllClasses(t *testing.T) {
	f := &nisa.Func{
		Name:       "f",
		Ret:        cil.Scalar(cil.F64),
		FrameSlots: 3,
		Code: []nisa.Instr{
			// Spill an integer, a float and a vector.
			{Op: nisa.MovImm, Kind: cil.I64, Rd: intReg(0), Imm: -123456789},
			{Op: nisa.SpillStore, Rd: intReg(0), Imm: 0},
			{Op: nisa.MovFImm, Rd: fltReg(0), FImm: 2.75},
			{Op: nisa.SpillStore, Rd: fltReg(0), Imm: 1},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: intReg(1), Imm: 9},
			{Op: nisa.VSplat, Kind: cil.I32, Rd: vecReg(0), Ra: intReg(1)},
			{Op: nisa.SpillStore, Rd: vecReg(0), Imm: 2},
			// Clobber every register involved.
			{Op: nisa.MovImm, Kind: cil.I64, Rd: intReg(0), Imm: 0},
			{Op: nisa.MovFImm, Rd: fltReg(0), FImm: 0},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: intReg(2)},
			{Op: nisa.VSplat, Kind: cil.I32, Rd: vecReg(0), Ra: intReg(2)},
			// Reload and combine: ret = float(int + vredadd(vec)) + flt
			{Op: nisa.SpillLoad, Rd: intReg(0), Imm: 0},
			{Op: nisa.SpillLoad, Rd: fltReg(0), Imm: 1},
			{Op: nisa.SpillLoad, Rd: vecReg(0), Imm: 2},
			{Op: nisa.VRedAdd, Kind: cil.I32, Rd: intReg(3), Ra: vecReg(0)},
			{Op: nisa.Add, Kind: cil.I64, Rd: intReg(0), Ra: intReg(0), Rb: intReg(3)},
			{Op: nisa.Conv, Kind: cil.F64, SrcKind: cil.I64, Rd: fltReg(1), Ra: intReg(0)},
			{Op: nisa.FAdd, Kind: cil.F64, Rd: fltReg(0), Ra: fltReg(0), Rb: fltReg(1)},
			{Op: nisa.Ret, Kind: cil.F64, Ra: fltReg(0)},
		},
	}
	m := machineFor(t, target.X86SSE, f)
	res, err := m.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	want := float64(-123456789+4*9) + 2.75
	if res.F != want {
		t.Errorf("spill round trip = %v, want %v", res.F, want)
	}
	if m.Stats.SpillStores != 3 || m.Stats.SpillLoads != 3 {
		t.Errorf("spill stats = %d stores, %d loads, want 3/3", m.Stats.SpillStores, m.Stats.SpillLoads)
	}
}

// TestMaxCallDepth checks that unbounded recursion is cut off at the call
// depth limit rather than exhausting the host stack.
func TestMaxCallDepth(t *testing.T) {
	f := &nisa.Func{
		Name: "f",
		Ret:  cil.Scalar(cil.I32),
		Code: []nisa.Instr{
			{Op: nisa.Call, Sym: "f", Rd: intReg(0)},
			{Op: nisa.Ret, Kind: cil.I32, Ra: intReg(0)},
		},
	}
	m := machineFor(t, target.MCU, f)
	if _, err := m.Call("f"); err == nil || !strings.Contains(err.Error(), "call depth exceeds") {
		t.Errorf("unbounded recursion: got %v, want call depth trap", err)
	}
	// The machine must stay usable after unwinding.
	g := &nisa.Func{
		Name: "g",
		Ret:  cil.Scalar(cil.I32),
		Code: []nisa.Instr{
			{Op: nisa.MovImm, Kind: cil.I32, Rd: intReg(0), Imm: 7},
			{Op: nisa.Ret, Kind: cil.I32, Ra: intReg(0)},
		},
	}
	m.Program.Add(g)
	res, err := m.Call("g")
	if err != nil || res.I != 7 {
		t.Errorf("machine unusable after depth trap: res=%v err=%v", res, err)
	}
}

// TestCopyOutArrayHardening checks that CopyOutArray rejects addresses
// outside the heap with an error instead of panicking on the slice index.
func TestCopyOutArrayHardening(t *testing.T) {
	m := machineFor(t, target.X86SSE)
	src := vm.NewArray(cil.I32, 4)
	addr := m.CopyInArray(src)
	dst := vm.NewArray(cil.I32, 4)

	for _, bad := range []Addr{-1, 0, arrayHeader - 1, 1 << 40} {
		if err := m.CopyOutArray(bad, dst); err == nil {
			t.Errorf("CopyOutArray(%d) accepted an out-of-range address", bad)
		}
	}
	// An address so close to the end that the data would overrun.
	end := Addr(len(m.memBytes()))
	if err := m.CopyOutArray(end-2, dst); err == nil {
		t.Error("CopyOutArray accepted an overrunning copy")
	}
	if err := m.CopyOutArray(addr, dst); err != nil {
		t.Errorf("valid CopyOutArray failed: %v", err)
	}
}

// memBytes exposes the heap size to the hardening test.
func (m *Machine) memBytes() []byte { return m.mem }

// TestReusedFramesAreZeroed guards the frame pool: a function reading a
// register it never wrote must see zero even when an earlier call left other
// values in the pooled frame.
func TestReusedFramesAreZeroed(t *testing.T) {
	dirty := &nisa.Func{
		Name: "dirty",
		Ret:  cil.Scalar(cil.I64),
		Code: []nisa.Instr{
			{Op: nisa.MovImm, Kind: cil.I64, Rd: intReg(5), Imm: 777},
			{Op: nisa.Ret, Kind: cil.I64, Ra: intReg(5)},
		},
	}
	// Reads r5 without initializing it.
	lazy := &nisa.Func{
		Name: "lazy",
		Ret:  cil.Scalar(cil.I64),
		Code: []nisa.Instr{
			{Op: nisa.Ret, Kind: cil.I64, Ra: intReg(5)},
		},
	}
	m := machineFor(t, target.PPC, dirty, lazy)
	if res, err := m.Call("dirty"); err != nil || res.I != 777 {
		t.Fatalf("dirty = %v, %v", res, err)
	}
	if res, err := m.Call("lazy"); err != nil || res.I != 0 {
		t.Errorf("reused frame leaked state: lazy = %d (err %v), want 0", res.I, err)
	}
}
