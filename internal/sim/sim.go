// Package sim executes native programs produced by the JIT on a
// cycle-approximate model of one simulated target processor.
//
// The simulator is the stand-in for the paper's physical evaluation machines:
// it interprets the native instruction set of internal/nisa over a flat
// little-endian memory, charging each instruction the latency given by the
// target's cost model (internal/target). Absolute cycle counts are not meant
// to match 2010 silicon; the relative numbers (scalar vs vectorized code on
// the same target, the same bytecode across targets) are what the experiments
// report.
package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/prim"
	"repro/internal/target"
	"repro/internal/vm"
)

// Value is a native-level value: integers and addresses in I, floating-point
// values in F.
type Value struct {
	I int64
	F float64
}

// IntArg builds an integer argument.
func IntArg(v int64) Value { return Value{I: v} }

// FloatArg builds a floating-point argument.
func FloatArg(v float64) Value { return Value{F: v} }

// Addr is an address in simulated memory.
type Addr = int64

// Stats aggregates execution statistics.
type Stats struct {
	Cycles       int64
	Instructions int64
	Loads        int64
	Stores       int64
	SpillLoads   int64
	SpillStores  int64
	VectorOps    int64
	Branches     int64
	Calls        int64
}

// Machine is one simulated processor executing one native program. It is not
// safe for concurrent use.
type Machine struct {
	Target  *target.Desc
	Program *nisa.Program

	// MaxSteps aborts execution after this many instructions (a safety net
	// against generated infinite loops); 0 means the default of 2e9.
	MaxSteps int64

	Stats Stats

	mem     []byte
	callDep int
}

const (
	arrayHeader  = 8 // length (4 bytes) + padding to keep data 8-aligned
	maxCallDepth = 512
)

// New returns a machine for the target and program. The initial heap is
// small and grows on demand.
func New(t *target.Desc, prog *nisa.Program) *Machine {
	m := &Machine{Target: t, Program: prog, MaxSteps: 2_000_000_000}
	// Address 0 is the null reference; start the heap past it.
	m.mem = make([]byte, 64)
	return m
}

// ResetStats clears the execution statistics (the memory image is kept).
func (m *Machine) ResetStats() { m.Stats = Stats{} }

// AllocArray allocates an array of n elements of kind elem in simulated
// memory and returns the address of its first element.
func (m *Machine) AllocArray(elem cil.Kind, n int) Addr {
	size := n * elem.Size()
	base := len(m.mem)
	grow := arrayHeader + size
	// Keep subsequent arrays 16-byte aligned so vector accesses behave.
	if rem := (base + arrayHeader + grow) % 16; rem != 0 {
		grow += 16 - rem
	}
	m.mem = append(m.mem, make([]byte, grow)...)
	binary.LittleEndian.PutUint32(m.mem[base:], uint32(n))
	return Addr(base + arrayHeader)
}

// CopyInArray copies a managed VM array into simulated memory and returns its
// address. It is how the experiment harness shares one set of inputs between
// the interpreter and the simulated targets.
func (m *Machine) CopyInArray(a *vm.Array) Addr {
	addr := m.AllocArray(a.Elem, a.Len())
	copy(m.mem[addr:], a.Data)
	return addr
}

// CopyOutArray copies array contents from simulated memory back into a
// managed VM array (sizes must match).
func (m *Machine) CopyOutArray(addr Addr, a *vm.Array) error {
	n := int(binary.LittleEndian.Uint32(m.mem[addr-arrayHeader:]))
	if n != a.Len() {
		return fmt.Errorf("sim: array length mismatch: %d in memory, %d in destination", n, a.Len())
	}
	copy(a.Data, m.mem[addr:int(addr)+len(a.Data)])
	return nil
}

// frame is one activation record.
type frame struct {
	fn    *nisa.Func
	ints  []int64
	flts  []float64
	vecs  []prim.Vec
	spill []prim.Vec
	args  []argval
}

type argval struct {
	i int64
	f float64
}

// Call executes the named function with the given arguments and returns its
// result (integers and addresses in I, floats in F).
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	f := m.Program.Func(name)
	if f == nil {
		return Value{}, fmt.Errorf("sim: unknown function %q", name)
	}
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("sim: %q expects %d arguments, got %d", name, len(f.Params), len(args))
	}
	av := make([]argval, len(args))
	for i, a := range args {
		av[i] = argval{i: a.I, f: a.F}
	}
	return m.exec(f, av)
}

func (m *Machine) regCounts() (ints, flts, vecs int) {
	return m.Target.IntRegs + 4, m.Target.FloatRegs + 4, m.Target.VecRegs + 4
}

func (m *Machine) exec(f *nisa.Func, args []argval) (Value, error) {
	m.callDep++
	defer func() { m.callDep-- }()
	if m.callDep > maxCallDepth {
		return Value{}, fmt.Errorf("sim: call depth exceeds %d", maxCallDepth)
	}
	ni, nf, nv := m.regCounts()
	fr := &frame{
		fn:    f,
		ints:  make([]int64, ni),
		flts:  make([]float64, nf),
		vecs:  make([]prim.Vec, nv),
		spill: make([]prim.Vec, f.FrameSlots),
		args:  args,
	}
	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	cost := &m.Target.Cost

	pc := 0
	for {
		if pc < 0 || pc >= len(f.Code) {
			return Value{}, fmt.Errorf("sim: %s: program counter %d out of range", f.Name, pc)
		}
		if m.Stats.Instructions >= maxSteps {
			return Value{}, fmt.Errorf("sim: instruction budget of %d exhausted in %s", maxSteps, f.Name)
		}
		in := &f.Code[pc]
		m.Stats.Instructions++
		next := pc + 1

		switch in.Op {
		case nisa.Nop:
			m.Stats.Cycles += int64(cost.Move)

		case nisa.MovImm:
			fr.setInt(in.Rd, in.Imm)
			m.Stats.Cycles += int64(cost.Move)
		case nisa.MovFImm:
			fr.flts[in.Rd.Index] = in.FImm
			m.Stats.Cycles += int64(cost.Move)
		case nisa.Mov:
			switch in.Rd.Class {
			case nisa.ClassInt:
				fr.ints[in.Rd.Index] = fr.ints[in.Ra.Index]
			case nisa.ClassFloat:
				fr.flts[in.Rd.Index] = fr.flts[in.Ra.Index]
			default:
				fr.vecs[in.Rd.Index] = fr.vecs[in.Ra.Index]
			}
			m.Stats.Cycles += int64(cost.Move)
		case nisa.GetArg:
			a := fr.args[in.Imm]
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = a.f
			} else {
				fr.ints[in.Rd.Index] = a.i
			}
			m.Stats.Cycles += int64(cost.Move)

		case nisa.Add, nisa.Sub, nisa.Mul, nisa.Div, nisa.Rem, nisa.And, nisa.Or, nisa.Xor, nisa.Shl, nisa.Shr:
			a := prim.Scalar{I: fr.ints[in.Ra.Index]}
			b := prim.Scalar{I: fr.ints[in.Rb.Index]}
			r, err := prim.Binary(cilALUOp(in.Op), in.Kind, a, b)
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			fr.ints[in.Rd.Index] = r.I
			m.Stats.Cycles += aluCost(cost, in.Op)
		case nisa.Neg, nisa.Not:
			a := prim.Scalar{I: fr.ints[in.Ra.Index]}
			op := cil.Neg
			if in.Op == nisa.Not {
				op = cil.Not
			}
			r, err := prim.Unary(op, in.Kind, a)
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			fr.ints[in.Rd.Index] = r.I
			m.Stats.Cycles += int64(cost.IntALU)

		case nisa.FAdd, nisa.FSub, nisa.FMul, nisa.FDiv:
			a := prim.Scalar{F: fr.flts[in.Ra.Index]}
			b := prim.Scalar{F: fr.flts[in.Rb.Index]}
			r, err := prim.Binary(cilALUOp(in.Op), in.Kind, a, b)
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			fr.flts[in.Rd.Index] = r.F
			m.Stats.Cycles += fpuCost(cost, in.Op)
		case nisa.FNeg:
			fr.flts[in.Rd.Index] = -fr.flts[in.Ra.Index]
			m.Stats.Cycles += int64(cost.FloatALU)

		case nisa.SetCmp, nisa.Select:
			res, err := m.compare(fr, in)
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			if in.Op == nisa.SetCmp {
				if res {
					fr.ints[in.Rd.Index] = 1
				} else {
					fr.ints[in.Rd.Index] = 0
				}
				m.Stats.Cycles += int64(cost.IntALU)
			} else {
				src := in.Rb
				if res {
					src = in.Ra
				}
				if in.Rd.Class == nisa.ClassFloat {
					fr.flts[in.Rd.Index] = fr.flts[src.Index]
				} else {
					fr.ints[in.Rd.Index] = fr.ints[src.Index]
				}
				m.Stats.Cycles += 2 * int64(cost.IntALU) // compare + conditional move
			}

		case nisa.Conv:
			var src prim.Scalar
			if in.Ra.Class == nisa.ClassFloat {
				src = prim.Scalar{F: fr.flts[in.Ra.Index]}
			} else {
				src = prim.Scalar{I: fr.ints[in.Ra.Index]}
			}
			r := prim.Convert(in.SrcKind, in.Kind, src)
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = r.F
			} else {
				fr.ints[in.Rd.Index] = r.I
			}
			m.Stats.Cycles += int64(cost.Convert)

		case nisa.Load:
			addr, err := m.elemAddr(fr, in)
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			s := m.loadScalar(in.Kind, addr)
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = s.F
			} else {
				fr.ints[in.Rd.Index] = s.I
			}
			m.Stats.Loads++
			m.Stats.Cycles += m.memCost(in.Kind, cost.Load)
		case nisa.Store:
			addr, err := m.elemAddr(fr, in)
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			var s prim.Scalar
			if in.Rd.Class == nisa.ClassFloat {
				s = prim.Scalar{F: fr.flts[in.Rd.Index]}
			} else {
				s = prim.Scalar{I: fr.ints[in.Rd.Index]}
			}
			m.storeScalar(in.Kind, addr, s)
			m.Stats.Stores++
			m.Stats.Cycles += m.memCost(in.Kind, cost.Store)

		case nisa.SpillLoad:
			slot := fr.spill[in.Imm]
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = math.Float64frombits(binary.LittleEndian.Uint64(slot[:8]))
			} else if in.Rd.Class == nisa.ClassVec {
				fr.vecs[in.Rd.Index] = slot
			} else {
				fr.ints[in.Rd.Index] = int64(binary.LittleEndian.Uint64(slot[:8]))
			}
			m.Stats.SpillLoads++
			m.Stats.Cycles += int64(cost.Load)
		case nisa.SpillStore:
			var slot prim.Vec
			if in.Rd.Class == nisa.ClassFloat {
				binary.LittleEndian.PutUint64(slot[:8], math.Float64bits(fr.flts[in.Rd.Index]))
			} else if in.Rd.Class == nisa.ClassVec {
				slot = fr.vecs[in.Rd.Index]
			} else {
				binary.LittleEndian.PutUint64(slot[:8], uint64(fr.ints[in.Rd.Index]))
			}
			fr.spill[in.Imm] = slot
			m.Stats.SpillStores++
			m.Stats.Cycles += int64(cost.Store)

		case nisa.Alloc:
			n := fr.ints[in.Ra.Index]
			if n < 0 {
				return Value{}, fmt.Errorf("sim: %s @%d: negative array length %d", f.Name, pc, n)
			}
			fr.ints[in.Rd.Index] = m.AllocArray(in.Kind, int(n))
			m.Stats.Cycles += int64(cost.Call)
		case nisa.ArrLen:
			base := fr.ints[in.Ra.Index]
			if base < arrayHeader || int(base) > len(m.mem) {
				return Value{}, fmt.Errorf("sim: %s @%d: arrlen on invalid address %d", f.Name, pc, base)
			}
			fr.ints[in.Rd.Index] = int64(binary.LittleEndian.Uint32(m.mem[base-arrayHeader:]))
			m.Stats.Cycles += m.memCost(cil.I32, cost.Load)

		case nisa.Jump:
			next = in.Target
			m.Stats.Branches++
			m.Stats.Cycles += int64(cost.BranchTaken)
		case nisa.BranchCmp:
			res, err := m.compare(fr, in)
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			m.Stats.Branches++
			if res {
				next = in.Target
				m.Stats.Cycles += int64(cost.BranchTaken)
			} else {
				m.Stats.Cycles += int64(cost.BranchNotTaken)
			}

		case nisa.Call:
			callee := m.Program.Func(in.Sym)
			if callee == nil {
				return Value{}, fmt.Errorf("sim: %s @%d: unknown callee %q", f.Name, pc, in.Sym)
			}
			cargs := make([]argval, len(in.Args))
			for i := range in.Args {
				if in.ArgSlots != nil && in.ArgSlots[i] >= 0 {
					slot := fr.spill[in.ArgSlots[i]]
					cargs[i] = argval{
						i: int64(binary.LittleEndian.Uint64(slot[:8])),
						f: math.Float64frombits(binary.LittleEndian.Uint64(slot[:8])),
					}
					m.Stats.Cycles += int64(cost.Load)
					continue
				}
				r := in.Args[i]
				if r.Class == nisa.ClassFloat {
					cargs[i] = argval{f: fr.flts[r.Index]}
				} else {
					cargs[i] = argval{i: fr.ints[r.Index]}
				}
				m.Stats.Cycles += int64(cost.Move)
			}
			m.Stats.Calls++
			m.Stats.Cycles += int64(cost.Call)
			ret, err := m.exec(callee, cargs)
			if err != nil {
				return Value{}, err
			}
			if in.Rd.Class == nisa.ClassFloat {
				fr.flts[in.Rd.Index] = ret.F
			} else if in.Rd.Class == nisa.ClassInt {
				fr.ints[in.Rd.Index] = ret.I
			}

		case nisa.Ret:
			m.Stats.Cycles += int64(cost.BranchTaken)
			var ret Value
			if in.Ra.Class == nisa.ClassFloat {
				ret.F = fr.flts[in.Ra.Index]
			} else if in.Ra.Class == nisa.ClassInt {
				ret.I = fr.ints[in.Ra.Index]
			}
			return ret, nil

		default:
			if in.Op.IsVector() {
				if err := m.execVector(fr, in); err != nil {
					return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
				}
				break
			}
			return Value{}, fmt.Errorf("sim: %s @%d: unimplemented opcode %s", f.Name, pc, in.Op)
		}
		pc = next
	}
}

func (fr *frame) setInt(r nisa.Reg, v int64) { fr.ints[r.Index] = v }

// compare evaluates the condition of SetCmp, Select and BranchCmp.
func (m *Machine) compare(fr *frame, in *nisa.Instr) (bool, error) {
	var a, b prim.Scalar
	if in.Ra.Class == nisa.ClassFloat {
		a, b = prim.Scalar{F: fr.flts[in.Ra.Index]}, prim.Scalar{F: fr.flts[in.Rb.Index]}
	} else {
		a, b = prim.Scalar{I: fr.ints[in.Ra.Index]}, prim.Scalar{I: fr.ints[in.Rb.Index]}
	}
	return prim.Compare(cilCondOp(in.Cond), in.Kind, a, b)
}

// elemAddr computes the effective address of an indexed access and checks it
// against the heap bounds.
func (m *Machine) elemAddr(fr *frame, in *nisa.Instr) (int, error) {
	base := fr.ints[in.Ra.Index]
	idx := fr.ints[in.Rb.Index] + in.Imm
	addr := base + idx*int64(in.Kind.Size())
	span := int64(in.Kind.Size())
	if in.Op == nisa.VLoad || in.Op == nisa.VStore {
		span = cil.VecBytes
	}
	if base == 0 {
		return 0, fmt.Errorf("null reference access")
	}
	if addr < arrayHeader || addr+span > int64(len(m.mem)) {
		return 0, fmt.Errorf("memory access at %d (+%d) outside the heap of %d bytes", addr, span, len(m.mem))
	}
	return int(addr), nil
}

func (m *Machine) loadScalar(k cil.Kind, addr int) prim.Scalar {
	var vec prim.Vec
	copy(vec[:k.Size()], m.mem[addr:addr+k.Size()])
	return prim.LaneGet(k, vec, 0)
}

func (m *Machine) storeScalar(k cil.Kind, addr int, s prim.Scalar) {
	var vec prim.Vec
	prim.LaneSet(k, &vec, 0, s)
	copy(m.mem[addr:addr+k.Size()], vec[:k.Size()])
}

// memCost charges a scalar memory access, including the target's sub-word and
// address-calculation penalties.
func (m *Machine) memCost(k cil.Kind, base int) int64 {
	c := base + m.Target.Cost.AddrCalcPenalty
	if k.Size() < 4 {
		c += m.Target.Cost.SubWordPenalty
	}
	return int64(c)
}

func aluCost(c *target.CostModel, op nisa.Op) int64 {
	switch op {
	case nisa.Mul:
		return int64(c.IntMul)
	case nisa.Div, nisa.Rem:
		return int64(c.IntDiv)
	default:
		return int64(c.IntALU)
	}
}

func fpuCost(c *target.CostModel, op nisa.Op) int64 {
	switch op {
	case nisa.FMul:
		return int64(c.FloatMul)
	case nisa.FDiv:
		return int64(c.FloatDiv)
	default:
		return int64(c.FloatALU)
	}
}

// cilALUOp maps native ALU opcodes back to the shared primitive semantics.
func cilALUOp(op nisa.Op) cil.Opcode {
	switch op {
	case nisa.Add, nisa.FAdd:
		return cil.Add
	case nisa.Sub, nisa.FSub:
		return cil.Sub
	case nisa.Mul, nisa.FMul:
		return cil.Mul
	case nisa.Div, nisa.FDiv:
		return cil.Div
	case nisa.Rem:
		return cil.Rem
	case nisa.And:
		return cil.And
	case nisa.Or:
		return cil.Or
	case nisa.Xor:
		return cil.Xor
	case nisa.Shl:
		return cil.Shl
	case nisa.Shr:
		return cil.Shr
	}
	return cil.Nop
}

func cilCondOp(c nisa.Cond) cil.Opcode {
	switch c {
	case nisa.CondEq:
		return cil.CmpEq
	case nisa.CondNe:
		return cil.CmpNe
	case nisa.CondLt:
		return cil.CmpLt
	case nisa.CondLe:
		return cil.CmpLe
	case nisa.CondGt:
		return cil.CmpGt
	default:
		return cil.CmpGe
	}
}

// execVector executes one native vector instruction.
func (m *Machine) execVector(fr *frame, in *nisa.Instr) error {
	c := &m.Target.Cost
	if !m.Target.HasSIMD {
		return fmt.Errorf("vector instruction %s on a target without a vector unit", in.Op)
	}
	m.Stats.VectorOps++
	switch in.Op {
	case nisa.VLoad:
		addr, err := m.elemAddr(fr, in)
		if err != nil {
			return err
		}
		var v prim.Vec
		copy(v[:], m.mem[addr:addr+cil.VecBytes])
		fr.vecs[in.Rd.Index] = v
		m.Stats.Loads++
		m.Stats.Cycles += int64(c.VecLoad + c.AddrCalcPenalty)
	case nisa.VStore:
		addr, err := m.elemAddr(fr, in)
		if err != nil {
			return err
		}
		v := fr.vecs[in.Rd.Index]
		copy(m.mem[addr:addr+cil.VecBytes], v[:])
		m.Stats.Stores++
		m.Stats.Cycles += int64(c.VecStore + c.AddrCalcPenalty)
	case nisa.VAdd, nisa.VSub, nisa.VMul, nisa.VMax, nisa.VMin:
		op := map[nisa.Op]cil.Opcode{
			nisa.VAdd: cil.VAdd, nisa.VSub: cil.VSub, nisa.VMul: cil.VMul,
			nisa.VMax: cil.VMax, nisa.VMin: cil.VMin,
		}[in.Op]
		r, err := prim.VecBinary(op, in.Kind, fr.vecs[in.Ra.Index], fr.vecs[in.Rb.Index])
		if err != nil {
			return err
		}
		fr.vecs[in.Rd.Index] = r
		if in.Op == nisa.VMul {
			m.Stats.Cycles += int64(c.VecMul)
		} else {
			m.Stats.Cycles += int64(c.VecALU)
		}
	case nisa.VSplat:
		var s prim.Scalar
		if in.Ra.Class == nisa.ClassFloat {
			s = prim.Scalar{F: fr.flts[in.Ra.Index]}
		} else {
			s = prim.Scalar{I: fr.ints[in.Ra.Index]}
		}
		fr.vecs[in.Rd.Index] = prim.VecSplat(in.Kind, s)
		m.Stats.Cycles += int64(c.VecSplat)
	case nisa.VRedAdd, nisa.VRedMax, nisa.VRedMin:
		op := map[nisa.Op]cil.Opcode{
			nisa.VRedAdd: cil.VRedAdd, nisa.VRedMax: cil.VRedMax, nisa.VRedMin: cil.VRedMin,
		}[in.Op]
		s, err := prim.VecReduce(op, in.Kind, fr.vecs[in.Ra.Index])
		if err != nil {
			return err
		}
		if in.Rd.Class == nisa.ClassFloat {
			fr.flts[in.Rd.Index] = s.F
		} else {
			fr.ints[in.Rd.Index] = s.I
		}
		m.Stats.Cycles += int64(c.VecReduce)
	default:
		return fmt.Errorf("unimplemented vector opcode %s", in.Op)
	}
	return nil
}
