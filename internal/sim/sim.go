// Package sim executes native programs produced by the JIT on a
// cycle-approximate model of one simulated target processor.
//
// The simulator is the stand-in for the paper's physical evaluation machines:
// it interprets the native instruction set of internal/nisa over a flat
// little-endian memory, charging each instruction the latency given by the
// target's cost model (internal/target). Absolute cycle counts are not meant
// to match 2010 silicon; the relative numbers (scalar vs vectorized code on
// the same target, the same bytecode across targets) are what the experiments
// report.
//
// Execution uses a pre-decoded core (see decode.go): each function is
// lowered once, on its first call, into flat records with operand classes,
// signedness, cycle costs and callee pointers resolved, and the dispatch
// loop below runs those records with zero heap allocations in steady state
// (frames and argument buffers are pooled per call depth). The machine
// assumes the program's code is not mutated after its first execution.
package sim

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/prim"
	"repro/internal/target"
	"repro/internal/vm"
)

// Value is a native-level value: integers and addresses in I, floating-point
// values in F.
type Value struct {
	I int64
	F float64
}

// IntArg builds an integer argument.
func IntArg(v int64) Value { return Value{I: v} }

// FloatArg builds a floating-point argument.
func FloatArg(v float64) Value { return Value{F: v} }

// Addr is an address in simulated memory.
type Addr = int64

// Stats aggregates execution statistics.
type Stats struct {
	Cycles       int64
	Instructions int64
	Loads        int64
	Stores       int64
	SpillLoads   int64
	SpillStores  int64
	VectorOps    int64
	Branches     int64
	Calls        int64
}

// Machine is one simulated processor executing one native program. It is not
// safe for concurrent use.
type Machine struct {
	Target  *target.Desc
	Program *nisa.Program

	// MaxSteps aborts execution after this many instructions (a safety net
	// against generated infinite loops); 0 means the default of 2e9.
	MaxSteps int64

	// MemLimit bounds the guest memory the machine may consume (simulated
	// heap plus the pooled frame and argument buffers), in bytes; a breach
	// returns a *ResourceError with Kind ResourceMem, checked before the
	// offending allocation so a hostile length never reaches the host
	// allocator. 0 — the default — leaves guest memory ungoverned.
	MemLimit int64

	Stats Stats

	mem     []byte
	callDep int
	// memCharged accumulates the guest memory charges (see resource.go); it
	// is bookkeeping, never part of the simulated statistics.
	memCharged int64

	// Register-file sizes (allocatable registers plus JIT scratch), fixed
	// per target at construction.
	ni, nf, nv int

	// decoded caches the pre-decoded form of each executed function.
	decoded map[*nisa.Func]*dfunc
	// frames pools one activation record per call depth, so the steady-state
	// dispatch loop allocates nothing.
	frames []*dframe

	// tier holds the profiling and promotion state of tiered execution
	// (tier.go); nil — the default — runs plain tier 1.
	tier *tierState

	// runCtx, when set by CallContext, is polled every interruptStride
	// instructions so a cancelled context aborts execution between
	// instructions. interruptAt is the instruction count of the next poll;
	// math.MaxInt64 — the Call default — disables polling, keeping the
	// uncancellable path at one always-false compare per instruction.
	runCtx      context.Context
	interruptAt int64

	// resolver, when set, supplies functions the program does not hold yet:
	// the lazy-JIT trampoline. A call to an unknown symbol asks the resolver
	// once, patches the machine's program and the pre-decoded call site, and
	// re-dispatches; without a resolver unknown callees keep reporting the
	// original runtime error.
	resolver Resolver
}

// Resolver produces the native code of a symbol on first call. The context is
// the one the enclosing CallContext run carries (context.Background for plain
// Call): a cancelled run aborts resolution without patching anything, so a
// later call retries cleanly.
type Resolver func(ctx context.Context, sym string) (*nisa.Func, error)

// SetResolver installs the machine's lazy-call resolver (nil disables it).
// Resolution results are patched into the machine's own Program, so machines
// sharing compiled functions must each carry their own Program value.
func (m *Machine) SetResolver(r Resolver) { m.resolver = r }

// resolve asks the resolver for sym and patches the program on success. The
// program map is keyed by the call symbol, not the function's own name: a
// hash-qualified cross-module symbol resolves to a function whose Name is the
// plain method name in its home module.
func (m *Machine) resolve(sym string) (*nisa.Func, error) {
	ctx := m.runCtx
	if ctx == nil {
		ctx = context.Background()
	}
	f, err := m.resolver(ctx, sym)
	if err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("sim: resolver returned no function for %q", sym)
	}
	m.Program.Funcs[sym] = f
	return f, nil
}

// interruptStride is how many instructions run between context polls in
// CallContext. Large enough that the ctx.Err() call vanishes from the
// per-instruction cost, small enough that cancellation lands within
// microseconds of simulated work.
const interruptStride = 16384

const (
	arrayHeader  = 8 // length (4 bytes) + padding to keep data 8-aligned
	maxCallDepth = 512
)

// New returns a machine for the target and program. The initial heap is
// small and grows on demand.
func New(t *target.Desc, prog *nisa.Program) *Machine {
	m := &Machine{Target: t, Program: prog, MaxSteps: 2_000_000_000, interruptAt: math.MaxInt64}
	// Address 0 is the null reference; start the heap past it.
	m.mem = make([]byte, 64)
	// The JIT reserves a few scratch registers beyond the allocatable files.
	m.ni, m.nf, m.nv = t.IntRegs+4, t.FloatRegs+4, t.VecRegs+4
	m.decoded = make(map[*nisa.Func]*dfunc)
	return m
}

// ResetStats clears the execution statistics (the memory image is kept).
// Tiering profile counters are not statistics and survive a reset: they
// describe the code's observed behavior since deployment, which resetting
// a measurement window must not erase.
func (m *Machine) ResetStats() { m.Stats = Stats{} }

// AllocArray allocates an array of n elements of kind elem in simulated
// memory and returns the address of its first element.
func (m *Machine) AllocArray(elem cil.Kind, n int) Addr {
	size := n * elem.Size()
	base := len(m.mem)
	grow := arrayHeader + size
	// Keep subsequent arrays 16-byte aligned so vector accesses behave.
	if rem := (base + arrayHeader + grow) % 16; rem != 0 {
		grow += 16 - rem
	}
	m.memCharged += int64(grow)
	m.mem = append(m.mem, make([]byte, grow)...)
	binary.LittleEndian.PutUint32(m.mem[base:], uint32(n))
	return Addr(base + arrayHeader)
}

// CopyInArray copies a managed VM array into simulated memory and returns its
// address. It is how the experiment harness shares one set of inputs between
// the interpreter and the simulated targets.
func (m *Machine) CopyInArray(a *vm.Array) Addr {
	addr := m.AllocArray(a.Elem, a.Len())
	copy(m.mem[addr:], a.Data)
	return addr
}

// CopyOutArray copies array contents from simulated memory back into a
// managed VM array (sizes must match). The address must point at the data of
// an array previously allocated in this machine's heap; out-of-range
// addresses return an error.
func (m *Machine) CopyOutArray(addr Addr, a *vm.Array) error {
	if addr < arrayHeader || addr > int64(len(m.mem)) {
		return fmt.Errorf("sim: copy-out address %d outside the heap of %d bytes", addr, len(m.mem))
	}
	if addr+int64(len(a.Data)) > int64(len(m.mem)) {
		return fmt.Errorf("sim: copy-out of %d bytes at %d overruns the heap of %d bytes", len(a.Data), addr, len(m.mem))
	}
	n := int(binary.LittleEndian.Uint32(m.mem[addr-arrayHeader:]))
	if n != a.Len() {
		return fmt.Errorf("sim: array length mismatch: %d in memory, %d in destination", n, a.Len())
	}
	copy(a.Data, m.mem[addr:int(addr)+len(a.Data)])
	return nil
}

// dframe is one pooled activation record: the register files, the spill
// area, and the buffer the caller marshals this frame's arguments into.
type dframe struct {
	ints  []int64
	flts  []float64
	vecs  []prim.Vec
	spill []prim.Vec
	args  []argval
}

type argval struct {
	i int64
	f float64
}

// frameAt returns the pooled frame for a call depth, growing the pool on
// first use of that depth.
func (m *Machine) frameAt(depth int) *dframe {
	for len(m.frames) <= depth {
		m.frames = append(m.frames, &dframe{
			ints: make([]int64, m.ni),
			flts: make([]float64, m.nf),
			vecs: make([]prim.Vec, m.nv),
		})
		m.memCharged += m.frameBytes()
	}
	return m.frames[depth]
}

// argBuf returns the frame's argument buffer resized to n entries, charging
// the machine's memory accounting when the buffer grows.
func (m *Machine) argBuf(fr *dframe, n int) []argval {
	if cap(fr.args) < n {
		fr.args = make([]argval, n)
		m.memCharged += int64(n) * 16
	}
	fr.args = fr.args[:n]
	return fr.args
}

// Call executes the named function with the given arguments and returns its
// result (integers and addresses in I, floats in F).
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	injectPanic(name)
	f := m.Program.Func(name)
	if f == nil && m.resolver != nil {
		var err error
		if f, err = m.resolve(name); err != nil {
			return Value{}, fmt.Errorf("sim: %q: %w", name, err)
		}
	}
	if f == nil {
		return Value{}, fmt.Errorf("sim: unknown function %q", name)
	}
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("sim: %q expects %d arguments, got %d", name, len(f.Params), len(args))
	}
	av := m.argBuf(m.frameAt(m.callDep+1), len(args))
	for i, a := range args {
		av[i] = argval{i: a.I, f: a.F}
	}
	return m.exec(f, av)
}

// CallContext is Call with cooperative cancellation: once ctx is done, the
// dispatch loop aborts between simulated instructions and returns an error
// wrapping ctx.Err(). The context is polled every interruptStride
// instructions, so an uncancelled run executes the exact same instruction
// and cycle sequence as Call — cancellation support never moves a gated
// metric. A ctx that can never be cancelled delegates straight to Call.
func (m *Machine) CallContext(ctx context.Context, name string, args ...Value) (Value, error) {
	if ctx == nil || ctx.Done() == nil {
		return m.Call(name, args...)
	}
	if err := ctx.Err(); err != nil {
		return Value{}, fmt.Errorf("sim: %q not started: %w", name, err)
	}
	prevCtx, prevAt := m.runCtx, m.interruptAt
	m.runCtx = ctx
	m.interruptAt = m.Stats.Instructions + interruptStride
	defer func() { m.runCtx, m.interruptAt = prevCtx, prevAt }()
	return m.Call(name, args...)
}

// dAddrOK computes the effective address of a pre-decoded indexed access and
// checks it against the heap bounds. It is small enough to inline into the
// dispatch loop; the failing path rebuilds the precise error in memFault.
func (m *Machine) dAddrOK(fr *dframe, d *dinstr) (int64, bool) {
	base := fr.ints[d.ra]
	addr := base + (fr.ints[d.rb]+d.imm)*int64(d.size)
	if base == 0 || addr < arrayHeader || addr+int64(d.span) > int64(len(m.mem)) {
		return 0, false
	}
	return addr, true
}

// memFault reports a failed memory access with the original interpreter's
// error message (null dereference takes precedence over the bounds check).
func (m *Machine) memFault(f *nisa.Func, pc int, fr *dframe, d *dinstr) error {
	base := fr.ints[d.ra]
	addr := base + (fr.ints[d.rb]+d.imm)*int64(d.size)
	if base == 0 {
		return fmt.Errorf("sim: %s @%d: null reference access", f.Name, pc)
	}
	return fmt.Errorf("sim: %s @%d: memory access at %d (+%d) outside the heap of %d bytes",
		f.Name, pc, addr, d.span, len(m.mem))
}

// exec runs one function activation. The hot loop dispatches on pre-decoded
// records; every per-instruction decision that does not depend on run-time
// values (operand classes, signedness, cycle costs, callees, access spans)
// was resolved by decode.go.
func (m *Machine) exec(f *nisa.Func, args []argval) (Value, error) {
	m.callDep++
	defer func() { m.callDep-- }()
	if m.callDep > maxCallDepth {
		return Value{}, fmt.Errorf("sim: call depth exceeds %d", maxCallDepth)
	}
	df := m.decodedFunc(f)
	fr := m.frameAt(m.callDep)
	clear(fr.ints)
	clear(fr.flts)
	clear(fr.vecs)
	if cap(fr.spill) < f.FrameSlots {
		fr.spill = make([]prim.Vec, f.FrameSlots)
		m.memCharged += int64(f.FrameSlots) * vecBytes
	} else {
		fr.spill = fr.spill[:f.FrameSlots]
		clear(fr.spill)
	}
	// The per-activation limit check catches frame, spill, argument and
	// copy-in growth; the allocation instruction pre-checks its own growth
	// below. One predictable branch per activation when ungoverned.
	if m.MemLimit > 0 {
		if err := m.memCheck(f); err != nil {
			return Value{}, err
		}
	}
	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	stats := &m.Stats
	var bcnt []uint64 // branch profile counters; nil keeps tiering free
	if t := m.tier; t != nil {
		df.calls++
		if !df.promoted && t.threshold >= 0 && df.calls >= uint64(t.threshold) {
			m.promoteFunc(df)
		}
		bcnt = df.branchCounts
	}
	code := df.code

	pc := 0
	for {
		if uint(pc) >= uint(len(code)) {
			return Value{}, fmt.Errorf("sim: %s: program counter %d out of range", f.Name, pc)
		}
		if stats.Instructions >= maxSteps {
			return Value{}, budgetExhausted(maxSteps, f.Name)
		}
		if stats.Instructions >= m.interruptAt {
			if err := m.runCtx.Err(); err != nil {
				return Value{}, fmt.Errorf("sim: %s interrupted: %w", f.Name, err)
			}
			m.interruptAt += interruptStride
		}
		d := &code[pc]
		stats.Instructions++
		next := pc + 1

		switch d.x {
		case xNop:
			stats.Cycles += int64(d.cost)

		case xMovImm:
			fr.ints[d.rd] = d.imm
			stats.Cycles += int64(d.cost)
		case xMovFImm:
			fr.flts[d.rd] = d.fimm
			stats.Cycles += int64(d.cost)
		case xMovInt:
			fr.ints[d.rd] = fr.ints[d.ra]
			stats.Cycles += int64(d.cost)
		case xMovFloat:
			fr.flts[d.rd] = fr.flts[d.ra]
			stats.Cycles += int64(d.cost)
		case xMovVec:
			fr.vecs[d.rd] = fr.vecs[d.ra]
			stats.Cycles += int64(d.cost)
		case xGetArgInt:
			fr.ints[d.rd] = args[d.imm].i
			stats.Cycles += int64(d.cost)
		case xGetArgFloat:
			fr.flts[d.rd] = args[d.imm].f
			stats.Cycles += int64(d.cost)

		case xAdd:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] + fr.ints[d.rb])
			stats.Cycles += int64(d.cost)
		case xSub:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] - fr.ints[d.rb])
			stats.Cycles += int64(d.cost)
		case xMul:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] * fr.ints[d.rb])
			stats.Cycles += int64(d.cost)
		case xAnd:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] & fr.ints[d.rb])
			stats.Cycles += int64(d.cost)
		case xOr:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] | fr.ints[d.rb])
			stats.Cycles += int64(d.cost)
		case xXor:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] ^ fr.ints[d.rb])
			stats.Cycles += int64(d.cost)
		case xShl:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] << (uint64(fr.ints[d.rb]) & 63))
			stats.Cycles += int64(d.cost)
		case xShrS:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] >> (uint64(fr.ints[d.rb]) & 63))
			stats.Cycles += int64(d.cost)
		case xShrU:
			fr.ints[d.rd] = d.norm.Apply(int64(uint64(fr.ints[d.ra]) >> (uint64(fr.ints[d.rb]) & 63)))
			stats.Cycles += int64(d.cost)
		case xDivS:
			y := fr.ints[d.rb]
			if y == 0 {
				return Value{}, fmt.Errorf("sim: %s @%d: prim: integer division by zero", f.Name, pc)
			}
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] / y)
			stats.Cycles += int64(d.cost)
		case xDivU:
			y := fr.ints[d.rb]
			if y == 0 {
				return Value{}, fmt.Errorf("sim: %s @%d: prim: integer division by zero", f.Name, pc)
			}
			fr.ints[d.rd] = d.norm.Apply(int64(uint64(fr.ints[d.ra]) / uint64(y)))
			stats.Cycles += int64(d.cost)
		case xRemS:
			y := fr.ints[d.rb]
			if y == 0 {
				return Value{}, fmt.Errorf("sim: %s @%d: prim: integer remainder by zero", f.Name, pc)
			}
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] % y)
			stats.Cycles += int64(d.cost)
		case xRemU:
			y := fr.ints[d.rb]
			if y == 0 {
				return Value{}, fmt.Errorf("sim: %s @%d: prim: integer remainder by zero", f.Name, pc)
			}
			fr.ints[d.rd] = d.norm.Apply(int64(uint64(fr.ints[d.ra]) % uint64(y)))
			stats.Cycles += int64(d.cost)
		case xNeg:
			fr.ints[d.rd] = d.norm.Apply(-fr.ints[d.ra])
			stats.Cycles += int64(d.cost)
		case xNot:
			fr.ints[d.rd] = d.norm.Apply(^fr.ints[d.ra])
			stats.Cycles += int64(d.cost)

		case xFAdd:
			r := fr.flts[d.ra] + fr.flts[d.rb]
			if d.f32 {
				r = float64(float32(r))
			}
			fr.flts[d.rd] = r
			stats.Cycles += int64(d.cost)
		case xFSub:
			r := fr.flts[d.ra] - fr.flts[d.rb]
			if d.f32 {
				r = float64(float32(r))
			}
			fr.flts[d.rd] = r
			stats.Cycles += int64(d.cost)
		case xFMul:
			r := fr.flts[d.ra] * fr.flts[d.rb]
			if d.f32 {
				r = float64(float32(r))
			}
			fr.flts[d.rd] = r
			stats.Cycles += int64(d.cost)
		case xFDiv:
			r := fr.flts[d.ra] / fr.flts[d.rb]
			if d.f32 {
				r = float64(float32(r))
			}
			fr.flts[d.rd] = r
			stats.Cycles += int64(d.cost)
		case xFNeg:
			fr.flts[d.rd] = -fr.flts[d.ra]
			stats.Cycles += int64(d.cost)

		case xSetCmp:
			if d.evalCond(fr) {
				fr.ints[d.rd] = 1
			} else {
				fr.ints[d.rd] = 0
			}
			stats.Cycles += int64(d.cost)
		case xSelect:
			src := d.rb
			if d.evalCond(fr) {
				src = d.ra
			}
			if d.dstFloat {
				fr.flts[d.rd] = fr.flts[src]
			} else {
				fr.ints[d.rd] = fr.ints[src]
			}
			stats.Cycles += int64(d.cost)

		case xConv:
			var src prim.Scalar
			if d.srcFloat {
				src = prim.Scalar{F: fr.flts[d.ra]}
			} else {
				src = prim.Scalar{I: fr.ints[d.ra]}
			}
			r := prim.Convert(d.srcKind, d.kind, src)
			if d.dstFloat {
				fr.flts[d.rd] = r.F
			} else {
				fr.ints[d.rd] = r.I
			}
			stats.Cycles += int64(d.cost)

		case xLoadInt:
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			mem := m.mem
			var v int64
			switch d.kind {
			case cil.Bool:
				if mem[addr] != 0 {
					v = 1
				}
			case cil.I8:
				v = int64(int8(mem[addr]))
			case cil.U8:
				v = int64(mem[addr])
			case cil.I16:
				v = int64(int16(binary.LittleEndian.Uint16(mem[addr:])))
			case cil.U16:
				v = int64(binary.LittleEndian.Uint16(mem[addr:]))
			case cil.I32:
				v = int64(int32(binary.LittleEndian.Uint32(mem[addr:])))
			case cil.U32, cil.Ref:
				v = int64(binary.LittleEndian.Uint32(mem[addr:]))
			default: // I64, U64
				v = int64(binary.LittleEndian.Uint64(mem[addr:]))
			}
			fr.ints[d.rd] = v
			stats.Loads++
			stats.Cycles += int64(d.cost)
		case xLoadFloat:
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			if d.kind == cil.F32 {
				fr.flts[d.rd] = float64(math.Float32frombits(binary.LittleEndian.Uint32(m.mem[addr:])))
			} else {
				fr.flts[d.rd] = math.Float64frombits(binary.LittleEndian.Uint64(m.mem[addr:]))
			}
			stats.Loads++
			stats.Cycles += int64(d.cost)
		case xStoreInt:
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			mem := m.mem
			v := fr.ints[d.rd]
			switch d.kind {
			case cil.Bool:
				b := byte(0)
				if v != 0 {
					b = 1
				}
				mem[addr] = b
			case cil.I8, cil.U8:
				mem[addr] = byte(v)
			case cil.I16, cil.U16:
				binary.LittleEndian.PutUint16(mem[addr:], uint16(v))
			case cil.I32, cil.U32, cil.Ref:
				binary.LittleEndian.PutUint32(mem[addr:], uint32(v))
			default: // I64, U64
				binary.LittleEndian.PutUint64(mem[addr:], uint64(v))
			}
			stats.Stores++
			stats.Cycles += int64(d.cost)
		case xStoreFloat:
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			if d.kind == cil.F32 {
				binary.LittleEndian.PutUint32(m.mem[addr:], math.Float32bits(float32(fr.flts[d.rd])))
			} else {
				binary.LittleEndian.PutUint64(m.mem[addr:], math.Float64bits(fr.flts[d.rd]))
			}
			stats.Stores++
			stats.Cycles += int64(d.cost)

		case xSpillLoadInt:
			slot := fr.spill[d.imm]
			fr.ints[d.rd] = int64(binary.LittleEndian.Uint64(slot[:8]))
			stats.SpillLoads++
			stats.Cycles += int64(d.cost)
		case xSpillLoadFloat:
			slot := fr.spill[d.imm]
			fr.flts[d.rd] = math.Float64frombits(binary.LittleEndian.Uint64(slot[:8]))
			stats.SpillLoads++
			stats.Cycles += int64(d.cost)
		case xSpillLoadVec:
			fr.vecs[d.rd] = fr.spill[d.imm]
			stats.SpillLoads++
			stats.Cycles += int64(d.cost)
		case xSpillStoreInt:
			var slot prim.Vec
			binary.LittleEndian.PutUint64(slot[:8], uint64(fr.ints[d.rd]))
			fr.spill[d.imm] = slot
			stats.SpillStores++
			stats.Cycles += int64(d.cost)
		case xSpillStoreFloat:
			var slot prim.Vec
			binary.LittleEndian.PutUint64(slot[:8], math.Float64bits(fr.flts[d.rd]))
			fr.spill[d.imm] = slot
			stats.SpillStores++
			stats.Cycles += int64(d.cost)
		case xSpillStoreVec:
			fr.spill[d.imm] = fr.vecs[d.rd]
			stats.SpillStores++
			stats.Cycles += int64(d.cost)

		case xAlloc:
			n := fr.ints[d.ra]
			if n < 0 {
				return Value{}, fmt.Errorf("sim: %s @%d: negative array length %d", f.Name, pc, n)
			}
			if err := m.injectMemGrow(f); err != nil {
				return Value{}, err
			}
			if m.MemLimit > 0 {
				if err := m.allocGoverned(f, d.kind, n); err != nil {
					return Value{}, err
				}
			}
			fr.ints[d.rd] = m.AllocArray(d.kind, int(n))
			stats.Cycles += int64(d.cost)
		case xArrLen:
			base := fr.ints[d.ra]
			if base < arrayHeader || int(base) > len(m.mem) {
				return Value{}, fmt.Errorf("sim: %s @%d: arrlen on invalid address %d", f.Name, pc, base)
			}
			fr.ints[d.rd] = int64(binary.LittleEndian.Uint32(m.mem[base-arrayHeader:]))
			stats.Cycles += int64(d.cost)

		case xJump:
			next = int(d.target)
			stats.Branches++
			stats.Cycles += int64(d.cost)
			if bcnt != nil {
				bcnt[d.prof]++
			}
		case xBranchCmp:
			stats.Branches++
			if d.evalCond(fr) {
				next = int(d.target)
				stats.Cycles += int64(d.cost)
				if bcnt != nil {
					bcnt[d.prof]++
				}
			} else {
				stats.Cycles += int64(d.cost2)
				if bcnt != nil {
					bcnt[d.prof+1]++
				}
			}

		case xCall:
			if d.callee == nil {
				// Slow path, taken at most once per call site: lazy callees
				// resolve through the machine's resolver and patch the
				// pre-decoded record; without a resolver the decode-time
				// error is reported here, like the original interpreter.
				if m.resolver == nil {
					return Value{}, fmt.Errorf("sim: %s @%d: %s", f.Name, pc, d.errMsg)
				}
				callee := m.Program.Func(d.sym)
				if callee == nil {
					var err error
					if callee, err = m.resolve(d.sym); err != nil {
						return Value{}, fmt.Errorf("sim: %s @%d: call %q: %w", f.Name, pc, d.sym, err)
					}
				}
				d.callee = callee
			}
			cargs := m.argBuf(m.frameAt(m.callDep+1), len(d.args))
			for i := range d.args {
				src := &d.args[i]
				if src.slot >= 0 {
					bits := binary.LittleEndian.Uint64(fr.spill[src.slot][:8])
					cargs[i] = argval{i: int64(bits), f: math.Float64frombits(bits)}
				} else if src.float {
					cargs[i] = argval{f: fr.flts[src.idx]}
				} else {
					cargs[i] = argval{i: fr.ints[src.idx]}
				}
			}
			stats.Cycles += int64(d.cost) // marshalling + call overhead
			stats.Calls++
			ret, err := m.exec(d.callee, cargs)
			if err != nil {
				return Value{}, err
			}
			switch d.mode {
			case retFloat:
				fr.flts[d.rd] = ret.F
			case retInt:
				fr.ints[d.rd] = ret.I
			}

		case xRetInt:
			stats.Cycles += int64(d.cost)
			return Value{I: fr.ints[d.ra]}, nil
		case xRetFloat:
			stats.Cycles += int64(d.cost)
			return Value{F: fr.flts[d.ra]}, nil
		case xRetVoid:
			stats.Cycles += int64(d.cost)
			return Value{}, nil

		case xVLoad:
			stats.VectorOps++
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			var v prim.Vec
			copy(v[:], m.mem[addr:addr+cil.VecBytes])
			fr.vecs[d.rd] = v
			stats.Loads++
			stats.Cycles += int64(d.cost)
		case xVStore:
			stats.VectorOps++
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			v := fr.vecs[d.rd]
			copy(m.mem[addr:addr+cil.VecBytes], v[:])
			stats.Stores++
			stats.Cycles += int64(d.cost)
		case xVBin:
			stats.VectorOps++
			fr.vecs[d.rd] = prim.VecBinaryNoTrap(d.vop, d.kind, fr.vecs[d.ra], fr.vecs[d.rb])
			stats.Cycles += int64(d.cost)
		case xVSplatInt:
			stats.VectorOps++
			fr.vecs[d.rd] = prim.VecSplat(d.kind, prim.Scalar{I: fr.ints[d.ra]})
			stats.Cycles += int64(d.cost)
		case xVSplatFloat:
			stats.VectorOps++
			fr.vecs[d.rd] = prim.VecSplat(d.kind, prim.Scalar{F: fr.flts[d.ra]})
			stats.Cycles += int64(d.cost)
		case xVRedInt:
			stats.VectorOps++
			fr.ints[d.rd] = prim.VecReduceNoTrap(d.vop, d.kind, fr.vecs[d.ra]).I
			stats.Cycles += int64(d.cost)
		case xVRedFloat:
			stats.VectorOps++
			fr.flts[d.rd] = prim.VecReduceNoTrap(d.vop, d.kind, fr.vecs[d.ra]).F
			stats.Cycles += int64(d.cost)

		case xAluGeneric:
			r, err := prim.Binary(d.vop, d.kind, prim.Scalar{I: fr.ints[d.ra]}, prim.Scalar{I: fr.ints[d.rb]})
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			fr.ints[d.rd] = r.I
			stats.Cycles += int64(d.cost)
		case xUnaryGeneric:
			r, err := prim.Unary(d.vop, d.kind, prim.Scalar{I: fr.ints[d.ra]})
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			fr.ints[d.rd] = r.I
			stats.Cycles += int64(d.cost)
		case xFpuGeneric:
			r, err := prim.Binary(d.vop, d.kind, prim.Scalar{F: fr.flts[d.ra]}, prim.Scalar{F: fr.flts[d.rb]})
			if err != nil {
				return Value{}, fmt.Errorf("sim: %s @%d: %v", f.Name, pc, err)
			}
			fr.flts[d.rd] = r.F
			stats.Cycles += int64(d.cost)
		case xLoadGeneric:
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			s := m.loadScalar(d.kind, int(addr))
			if d.dstFloat {
				fr.flts[d.rd] = s.F
			} else {
				fr.ints[d.rd] = s.I
			}
			stats.Loads++
			stats.Cycles += int64(d.cost)
		case xStoreGeneric:
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			var s prim.Scalar
			if d.srcFloat {
				s = prim.Scalar{F: fr.flts[d.rd]}
			} else {
				s = prim.Scalar{I: fr.ints[d.rd]}
			}
			m.storeScalar(d.kind, int(addr), s)
			stats.Stores++
			stats.Cycles += int64(d.cost)

		// Tier-2 superinstructions (tier.go). Each case runs the fused
		// record's own operation, then — after reproducing the exact
		// per-instruction budget check of the loop head — the partner
		// record at pc+1, so statistics, cycles and every error path stay
		// bit-identical to dispatching the two instructions separately.
		case xFusedMovImmAdd:
			fr.ints[d.rd] = d.imm
			stats.Cycles += int64(d.cost)
			if stats.Instructions >= maxSteps {
				return Value{}, budgetExhausted(maxSteps, f.Name)
			}
			stats.Instructions++
			d2 := &code[pc+1]
			fr.ints[d2.rd] = d2.norm.Apply(fr.ints[d2.ra] + fr.ints[d2.rb])
			stats.Cycles += int64(d2.cost)
			next = pc + 2

		case xFusedAddMov:
			fr.ints[d.rd] = d.norm.Apply(fr.ints[d.ra] + fr.ints[d.rb])
			stats.Cycles += int64(d.cost)
			if stats.Instructions >= maxSteps {
				return Value{}, budgetExhausted(maxSteps, f.Name)
			}
			stats.Instructions++
			d2 := &code[pc+1]
			fr.ints[d2.rd] = fr.ints[d2.ra]
			stats.Cycles += int64(d2.cost)
			next = pc + 2

		case xFusedMovJump:
			fr.ints[d.rd] = fr.ints[d.ra]
			stats.Cycles += int64(d.cost)
			if stats.Instructions >= maxSteps {
				return Value{}, budgetExhausted(maxSteps, f.Name)
			}
			stats.Instructions++
			d2 := &code[pc+1]
			next = int(d2.target)
			stats.Branches++
			stats.Cycles += int64(d2.cost)
			if bcnt != nil {
				bcnt[d2.prof]++
			}

		case xFusedVLoadVBin:
			stats.VectorOps++
			addr, ok := m.dAddrOK(fr, d)
			if !ok {
				return Value{}, m.memFault(f, pc, fr, d)
			}
			var v prim.Vec
			copy(v[:], m.mem[addr:addr+cil.VecBytes])
			fr.vecs[d.rd] = v
			stats.Loads++
			stats.Cycles += int64(d.cost)
			if stats.Instructions >= maxSteps {
				return Value{}, budgetExhausted(maxSteps, f.Name)
			}
			stats.Instructions++
			d2 := &code[pc+1]
			stats.VectorOps++
			fr.vecs[d2.rd] = prim.VecBinaryNoTrap(d2.vop, d2.kind, fr.vecs[d2.ra], fr.vecs[d2.rb])
			stats.Cycles += int64(d2.cost)
			next = pc + 2

		case xFusedVBinVStore:
			stats.VectorOps++
			fr.vecs[d.rd] = prim.VecBinaryNoTrap(d.vop, d.kind, fr.vecs[d.ra], fr.vecs[d.rb])
			stats.Cycles += int64(d.cost)
			if stats.Instructions >= maxSteps {
				return Value{}, budgetExhausted(maxSteps, f.Name)
			}
			stats.Instructions++
			d2 := &code[pc+1]
			stats.VectorOps++
			addr, ok := m.dAddrOK(fr, d2)
			if !ok {
				return Value{}, m.memFault(f, pc+1, fr, d2)
			}
			v := fr.vecs[d2.rd]
			copy(m.mem[addr:addr+cil.VecBytes], v[:])
			stats.Stores++
			stats.Cycles += int64(d2.cost)
			next = pc + 2

		default: // xTrap
			return Value{}, fmt.Errorf("sim: %s @%d: %s", f.Name, pc, d.errMsg)
		}
		pc = next
	}
}

// loadScalar is the generic scalar load used by the slow path (unusual
// kind/class combinations); the common kinds load directly in the dispatch
// loop.
func (m *Machine) loadScalar(k cil.Kind, addr int) prim.Scalar {
	var vec prim.Vec
	copy(vec[:k.Size()], m.mem[addr:addr+k.Size()])
	return prim.LaneGet(k, vec, 0)
}

// storeScalar is the generic scalar store counterpart of loadScalar.
func (m *Machine) storeScalar(k cil.Kind, addr int, s prim.Scalar) {
	var vec prim.Vec
	prim.LaneSet(k, &vec, 0, s)
	copy(m.mem[addr:addr+k.Size()], vec[:k.Size()])
}

// memCost charges a scalar memory access, including the target's sub-word and
// address-calculation penalties.
func (m *Machine) memCost(k cil.Kind, base int) int64 {
	c := base + m.Target.Cost.AddrCalcPenalty
	if k.Size() < 4 {
		c += m.Target.Cost.SubWordPenalty
	}
	return int64(c)
}

func aluCost(c *target.CostModel, op nisa.Op) int64 {
	switch op {
	case nisa.Mul:
		return int64(c.IntMul)
	case nisa.Div, nisa.Rem:
		return int64(c.IntDiv)
	default:
		return int64(c.IntALU)
	}
}

func fpuCost(c *target.CostModel, op nisa.Op) int64 {
	switch op {
	case nisa.FMul:
		return int64(c.FloatMul)
	case nisa.FDiv:
		return int64(c.FloatDiv)
	default:
		return int64(c.FloatALU)
	}
}
