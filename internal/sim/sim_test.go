package sim

import (
	"strings"
	"testing"

	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/target"
	"repro/internal/vm"
)

// handProgram builds a small native function directly (no JIT): it sums the
// elements of an i32 array.
//
//	sum(arr, n): r2 = 0 (acc); r3 = 0 (i)
//	loop: if i >= n goto done; r4 = load arr[i]; acc += r4; i += 1; jump loop
//	done: ret acc
func handProgram() *nisa.Program {
	r := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassInt, Index: i} }
	f := &nisa.Func{
		Name:   "sum",
		Params: []cil.Type{cil.Array(cil.I32), cil.Scalar(cil.I32)},
		Ret:    cil.Scalar(cil.I32),
		Code: []nisa.Instr{
			{Op: nisa.GetArg, Kind: cil.Ref, Rd: r(0), Imm: 0},                                     // 0
			{Op: nisa.GetArg, Kind: cil.I32, Rd: r(1), Imm: 1},                                     // 1
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(2)},                                             // 2: acc = 0
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(3)},                                             // 3: i = 0
			{Op: nisa.BranchCmp, Kind: cil.I32, Cond: nisa.CondGe, Ra: r(3), Rb: r(1), Target: 10}, // 4
			{Op: nisa.Load, Kind: cil.I32, Rd: r(4), Ra: r(0), Rb: r(3)},                           // 5
			{Op: nisa.Add, Kind: cil.I32, Rd: r(2), Ra: r(2), Rb: r(4)},                            // 6
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(5), Imm: 1},                                     // 7
			{Op: nisa.Add, Kind: cil.I32, Rd: r(3), Ra: r(3), Rb: r(5)},                            // 8
			{Op: nisa.Jump, Target: 4},                                                             // 9
			{Op: nisa.Ret, Kind: cil.I32, Ra: r(2)},                                                // 10
		},
	}
	prog := nisa.NewProgram("hand")
	prog.Add(f)
	return prog
}

func TestMachineExecutesHandWrittenLoop(t *testing.T) {
	tgt := target.MustLookup(target.PPC)
	m := New(tgt, handProgram())
	arr := vm.NewArray(cil.I32, 10)
	want := int64(0)
	for i := 0; i < 10; i++ {
		arr.SetInt(i, int64(i*i))
		want += int64(i * i)
	}
	addr := m.CopyInArray(arr)
	res, err := m.Call("sum", IntArg(int64(addr)), IntArg(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != want {
		t.Errorf("sum = %d, want %d", res.I, want)
	}
	if m.Stats.Cycles == 0 || m.Stats.Instructions == 0 || m.Stats.Loads != 10 || m.Stats.Branches == 0 {
		t.Errorf("statistics look wrong: %+v", m.Stats)
	}
	m.ResetStats()
	if m.Stats.Cycles != 0 {
		t.Error("ResetStats did not clear cycles")
	}
}

func TestMachineArrayRoundTrip(t *testing.T) {
	m := New(target.MustLookup(target.X86SSE), nisa.NewProgram("empty"))
	src := vm.NewArray(cil.F64, 5)
	for i := 0; i < 5; i++ {
		src.SetFloat(i, float64(i)+0.5)
	}
	addr := m.CopyInArray(src)
	dst := vm.NewArray(cil.F64, 5)
	if err := m.CopyOutArray(addr, dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if dst.Float(i) != src.Float(i) {
			t.Fatalf("element %d mismatch", i)
		}
	}
	wrong := vm.NewArray(cil.F64, 3)
	if err := m.CopyOutArray(addr, wrong); err == nil {
		t.Error("length mismatch accepted")
	}
	// A second allocation must not overlap the first.
	addr2 := m.AllocArray(cil.U8, 32)
	if addr2 <= addr {
		t.Error("allocations overlap")
	}
}

func TestMachineTraps(t *testing.T) {
	r := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassInt, Index: i} }
	mk := func(code ...nisa.Instr) *Machine {
		f := &nisa.Func{Name: "f", Ret: cil.Scalar(cil.I32), Code: code}
		p := nisa.NewProgram("t")
		p.Add(f)
		return New(target.MustLookup(target.MCU), p)
	}

	// Division by zero.
	m := mk(
		nisa.Instr{Op: nisa.MovImm, Kind: cil.I32, Rd: r(0), Imm: 3},
		nisa.Instr{Op: nisa.MovImm, Kind: cil.I32, Rd: r(1), Imm: 0},
		nisa.Instr{Op: nisa.Div, Kind: cil.I32, Rd: r(2), Ra: r(0), Rb: r(1)},
		nisa.Instr{Op: nisa.Ret, Kind: cil.I32, Ra: r(2)},
	)
	if _, err := m.Call("f"); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected division trap, got %v", err)
	}

	// Null / out-of-range memory access.
	m = mk(
		nisa.Instr{Op: nisa.MovImm, Kind: cil.I32, Rd: r(0), Imm: 0},
		nisa.Instr{Op: nisa.Load, Kind: cil.I32, Rd: r(1), Ra: r(0), Rb: r(0)},
		nisa.Instr{Op: nisa.Ret, Kind: cil.I32, Ra: r(1)},
	)
	if _, err := m.Call("f"); err == nil || !strings.Contains(err.Error(), "null reference") {
		t.Errorf("expected null trap, got %v", err)
	}
	m = mk(
		nisa.Instr{Op: nisa.MovImm, Kind: cil.I32, Rd: r(0), Imm: 1 << 30},
		nisa.Instr{Op: nisa.Load, Kind: cil.I32, Rd: r(1), Ra: r(0), Rb: r(0)},
		nisa.Instr{Op: nisa.Ret, Kind: cil.I32, Ra: r(1)},
	)
	if _, err := m.Call("f"); err == nil || !strings.Contains(err.Error(), "outside the heap") {
		t.Errorf("expected bounds trap, got %v", err)
	}

	// Vector instruction on a target without SIMD.
	m = mk(
		nisa.Instr{Op: nisa.VSplat, Kind: cil.U8, Rd: nisa.Reg{Class: nisa.ClassVec}, Ra: r(0)},
		nisa.Instr{Op: nisa.Ret, Kind: cil.I32, Ra: r(0)},
	)
	if _, err := m.Call("f"); err == nil || !strings.Contains(err.Error(), "without a vector unit") {
		t.Errorf("expected missing-SIMD trap, got %v", err)
	}

	// Step budget.
	m = mk(nisa.Instr{Op: nisa.Jump, Target: 0})
	m.MaxSteps = 1000
	if _, err := m.Call("f"); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("expected step budget trap, got %v", err)
	}

	// Unknown function and wrong arity.
	if _, err := m.Call("missing"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := m.Call("f", IntArg(1)); err == nil {
		t.Error("wrong arity accepted")
	}
	// Negative allocation.
	m = mk(
		nisa.Instr{Op: nisa.MovImm, Kind: cil.I32, Rd: r(0), Imm: -1},
		nisa.Instr{Op: nisa.Alloc, Kind: cil.I32, Rd: r(1), Ra: r(0)},
		nisa.Instr{Op: nisa.Ret, Kind: cil.I32, Ra: r(1)},
	)
	if _, err := m.Call("f"); err == nil || !strings.Contains(err.Error(), "negative array length") {
		t.Errorf("expected negative-length trap, got %v", err)
	}
}

func TestVectorInstructionSemantics(t *testing.T) {
	tgt := target.MustLookup(target.X86SSE)
	r := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassInt, Index: i} }
	v := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassVec, Index: i} }
	// f(arr): v0 = vload arr[0]; v1 = splat(3); v2 = vmax(v0, v1); ret vredadd(v2)
	f := &nisa.Func{
		Name:   "f",
		Params: []cil.Type{cil.Array(cil.U8)},
		Ret:    cil.Scalar(cil.U64),
		Code: []nisa.Instr{
			{Op: nisa.GetArg, Kind: cil.Ref, Rd: r(0), Imm: 0},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(1)},
			{Op: nisa.VLoad, Kind: cil.U8, Rd: v(0), Ra: r(0), Rb: r(1)},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(2), Imm: 3},
			{Op: nisa.VSplat, Kind: cil.U8, Rd: v(1), Ra: r(2)},
			{Op: nisa.VMax, Kind: cil.U8, Rd: v(2), Ra: v(0), Rb: v(1)},
			{Op: nisa.VRedAdd, Kind: cil.U8, Rd: r(3), Ra: v(2)},
			{Op: nisa.Ret, Kind: cil.U64, Ra: r(3)},
		},
	}
	p := nisa.NewProgram("t")
	p.Add(f)
	m := New(tgt, p)
	arr := vm.NewArray(cil.U8, 16)
	want := int64(0)
	for i := 0; i < 16; i++ {
		arr.SetInt(i, int64(i))
		if i > 3 {
			want += int64(i)
		} else {
			want += 3
		}
	}
	addr := m.CopyInArray(arr)
	res, err := m.Call("f", IntArg(int64(addr)))
	if err != nil {
		t.Fatal(err)
	}
	if res.I != want {
		t.Errorf("vector pipeline = %d, want %d", res.I, want)
	}
	if m.Stats.VectorOps != 4 {
		t.Errorf("vector op count = %d, want 4", m.Stats.VectorOps)
	}
}
