package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/cil"
	"repro/internal/faultinject"
	"repro/internal/nisa"
	"repro/internal/target"
	"repro/internal/vm"
)

func TestResourceErrorMessages(t *testing.T) {
	// The cycles rendering is the historical budget message, byte for byte:
	// callers (and tests) matched on its prose long before the error was
	// typed, and typing it must not break them.
	cyc := &ResourceError{Kind: ResourceCycles, Limit: 42, Func: "f"}
	if got, want := cyc.Error(), "sim: instruction budget of 42 exhausted in f"; got != want {
		t.Errorf("cycles message = %q, want %q", got, want)
	}
	mem := &ResourceError{Kind: ResourceMem, Limit: 100, Need: 164, Func: "g"}
	if got := mem.Error(); !strings.Contains(got, "memory limit of 100") || !strings.Contains(got, "164") {
		t.Errorf("mem message = %q", got)
	}
	dl := &ResourceError{Kind: ResourceDeadline, Limit: int64(1e9), Func: "h"}
	if got := dl.Error(); !strings.Contains(got, "deadline of 1s") {
		t.Errorf("deadline message = %q", got)
	}
}

func TestBudgetExhaustionIsTyped(t *testing.T) {
	prog := nisa.NewProgram("p")
	prog.Add(&nisa.Func{
		Name: "f",
		Ret:  cil.Scalar(cil.I32),
		Code: []nisa.Instr{{Op: nisa.Jump, Target: 0}},
	})
	m := New(target.MustLookup(target.PPC), prog)
	m.MaxSteps = 1000
	_, err := m.Call("f")
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("budget exhaustion = %v, want *ResourceError", err)
	}
	if re.Kind != ResourceCycles || re.Limit != 1000 || re.Func != "f" {
		t.Errorf("ResourceError = %+v", re)
	}
	if !strings.Contains(err.Error(), "instruction budget") {
		t.Errorf("typed budget error lost the historical message: %q", err)
	}
}

// runSum executes the hand-written array-sum program once on a fresh
// machine with the given memory limit and returns the machine and outcome.
func runSum(limit int64) (*Machine, Value, error) {
	m := New(target.MustLookup(target.PPC), handProgram())
	m.MemLimit = limit
	arr := vm.NewArray(cil.I32, 16)
	for i := 0; i < 16; i++ {
		arr.SetInt(i, int64(i))
	}
	addr := m.CopyInArray(arr)
	v, err := m.Call("sum", IntArg(int64(addr)), IntArg(16))
	return m, v, err
}

func TestMemAccountingDeterministicAndTight(t *testing.T) {
	m1, want, err := runSum(0)
	if err != nil {
		t.Fatal(err)
	}
	used := m1.MemUsed()
	if used <= 0 {
		t.Fatalf("MemUsed = %d after a run that copied an array in", used)
	}
	m2, _, err := runSum(0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.MemUsed() != used {
		t.Fatalf("accounting not deterministic: %d then %d", used, m2.MemUsed())
	}

	// The reported usage is the exact smallest sufficient limit: governed at
	// MemUsed the run is identical, one byte lower it fails typed.
	gov, got, err := runSum(used)
	if err != nil {
		t.Fatalf("run under just-sufficient limit: %v", err)
	}
	if got.I != want.I {
		t.Fatalf("governed run computed %d, want %d", got.I, want.I)
	}
	if gov.MemUsed() != used {
		t.Fatalf("governed run charged %d, ungoverned %d", gov.MemUsed(), used)
	}
	_, _, err = runSum(used - 1)
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceMem {
		t.Fatalf("one-byte-lower limit = %v, want ResourceError{mem}", err)
	}
}

// allocProgram returns a program whose single function allocates an i64
// array of n elements and returns its address.
func allocProgram(n int64) *nisa.Program {
	r := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassInt, Index: i} }
	prog := nisa.NewProgram("p")
	prog.Add(&nisa.Func{
		Name: "f",
		Ret:  cil.Scalar(cil.I64),
		Code: []nisa.Instr{
			{Op: nisa.MovImm, Kind: cil.I64, Rd: r(0), Imm: n},
			{Op: nisa.Alloc, Kind: cil.I64, Rd: r(1), Ra: r(0)},
			{Op: nisa.Ret, Kind: cil.I64, Ra: r(1)},
		},
	})
	return prog
}

func TestHostileAllocationCheckedBeforeHostAllocator(t *testing.T) {
	// A hostile length must fail the governed run before the host allocator
	// ever sees it — the whole point of pre-checking xAlloc. 1<<40 i64
	// elements would be 8 TiB; if the check ran after allocation this test
	// would OOM instead of failing typed.
	m := New(target.MustLookup(target.PPC), allocProgram(1<<40))
	m.MemLimit = 1 << 20
	_, err := m.Call("f")
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceMem {
		t.Fatalf("hostile alloc = %v, want ResourceError{mem}", err)
	}

	// Lengths whose byte size overflows int64 take the overflow guard to the
	// same typed error.
	m = New(target.MustLookup(target.PPC), allocProgram(math.MaxInt64/4))
	m.MemLimit = 1 << 20
	_, err = m.Call("f")
	if !errors.As(err, &re) || re.Kind != ResourceMem {
		t.Fatalf("overflowing alloc = %v, want ResourceError{mem}", err)
	}
}

func TestMemGrowFaultSite(t *testing.T) {
	if err := faultinject.Arm("sim.memgrow:error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()
	m := New(target.MustLookup(target.PPC), allocProgram(4))
	_, err := m.Call("f")
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceMem {
		t.Fatalf("injected memgrow = %v, want ResourceError{mem}", err)
	}
	if re.Need != math.MaxInt64 {
		t.Errorf("injected breach Need = %d, want MaxInt64", re.Need)
	}
}

func TestPanicFaultSitePanics(t *testing.T) {
	if err := faultinject.Arm("sim.panic:error"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()
	defer func() {
		if r := recover(); r == nil {
			t.Error("sim.panic fault site did not panic")
		}
	}()
	m := New(target.MustLookup(target.PPC), allocProgram(4))
	_, _ = m.Call("f")
}
