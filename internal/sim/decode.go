package sim

import (
	"fmt"

	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/prim"
)

// This file implements the pre-decoded execution core: the split-compilation
// idea of the paper applied to the simulator itself. All the work that
// depends only on the instruction and the target — operand-class resolution,
// signedness and normalization parameters, per-instruction cycle costs from
// the cost model, callee lookup, memory-access spans — is done once per
// function (on its first call on a machine) and recorded in a flat dinstr
// array. The steady-state dispatch loop in sim.go then runs without generic
// dispatch, map lookups, error plumbing for infallible operations, or
// allocations.
//
// Decoding never rejects a program: instructions the fast paths do not
// cover (mismatched kind/class combinations, unknown opcodes, vector
// instructions on targets without a vector unit) are lowered to generic or
// trapping records that reproduce the original interpreter's behavior —
// including its error messages — only if and when they execute.

// xop is a pre-decoded execution opcode: one dispatch-loop case, with the
// operand classes and signedness already resolved.
type xop uint8

const (
	xNop xop = iota
	xMovImm
	xMovFImm
	xMovInt
	xMovFloat
	xMovVec
	xGetArgInt
	xGetArgFloat

	// Integer ALU with precomputed normalization (norm).
	xAdd
	xSub
	xMul
	xAnd
	xOr
	xXor
	xShl
	xShrS
	xShrU
	xDivS
	xDivU
	xRemS
	xRemU
	xNeg
	xNot

	// Floating-point ALU; f32 selects single-precision rounding.
	xFAdd
	xFSub
	xFMul
	xFDiv
	xFNeg

	xSetCmp
	xSelect
	xConv

	// Memory with precomputed element size, span and cycle cost.
	xLoadInt
	xLoadFloat
	xStoreInt
	xStoreFloat
	xSpillLoadInt
	xSpillLoadFloat
	xSpillLoadVec
	xSpillStoreInt
	xSpillStoreFloat
	xSpillStoreVec
	xAlloc
	xArrLen

	xJump
	xBranchCmp
	xCall
	xRetInt
	xRetFloat
	xRetVoid

	// Vector unit.
	xVLoad
	xVStore
	xVBin
	xVSplatInt
	xVSplatFloat
	xVRedInt
	xVRedFloat

	// Slow paths: unusual kind/class combinations fall back to the shared
	// generic primitives so behavior stays bit-identical to the original
	// interpreter loop.
	xAluGeneric
	xUnaryGeneric
	xFpuGeneric
	xLoadGeneric
	xStoreGeneric

	// xTrap reproduces a lazily-reported decode-time error (unimplemented
	// opcode, vector instruction without a vector unit) at execution time.
	xTrap

	// Tier-2 superinstructions (see tier.go): slot i executes both itself
	// and the record at i+1, charging exactly the cycles and statistics of
	// the two constituents. The partner record at i+1 stays in place for
	// branches that target it.
	xFusedMovImmAdd  // xMovImm + xAdd (loop-latch increment setup)
	xFusedAddMov     // xAdd + xMovInt (induction-variable update)
	xFusedMovJump    // xMovInt + xJump (loop back edge)
	xFusedVLoadVBin  // xVLoad + xVBin
	xFusedVBinVStore // xVBin + xVStore
)

// mode values for the per-xop "mode" field.
const (
	// Comparison source interpretation (xSetCmp, xSelect, xBranchCmp).
	cmpUnsigned = iota
	cmpSigned
	cmpFloat
	// cmpMismatch marks a class/kind mismatch (float kind comparing integer
	// registers or vice versa): the generic path compared the zero-valued
	// halves of both scalars, so the operands always evaluate as equal.
	cmpMismatch
)

// Comparison outcome states and the per-condition acceptance masks
// (bit state set when the condition holds in that state).
const (
	stateGt = 0
	stateEq = 1
	stateLt = 2
)

var condMasks = [...]uint8{
	nisa.CondEq: 1 << stateEq,
	nisa.CondNe: 1<<stateGt | 1<<stateLt,
	nisa.CondLt: 1 << stateLt,
	nisa.CondLe: 1<<stateLt | 1<<stateEq,
	nisa.CondGt: 1 << stateGt,
	nisa.CondGe: 1<<stateGt | 1<<stateEq,
}

const (
	// Call return-register class (xCall).
	retNone = iota
	retInt
	retFloat
)

// argsrc describes where one call argument lives: a frame spill slot, or a
// register of the given class.
type argsrc struct {
	slot  int32 // spill slot index, -1 when the argument is in a register
	idx   int32 // register index
	float bool  // register class (float vs int)
}

// dinstr is one pre-decoded instruction. Field use depends on x; rd/ra/rb
// are register-file indices with the class resolved by the xop.
type dinstr struct {
	x        xop
	mode     uint8 // cmp* for comparisons, ret* for calls
	srcFloat bool  // comparison/conversion source register file
	dstFloat bool  // conversion destination register file
	f32      bool  // single-precision rounding of float ALU results
	condMask uint8 // comparison acceptance mask over {gt, eq, lt} states
	kind     cil.Kind
	srcKind  cil.Kind
	vop      cil.Opcode // cil opcode for generic and vector records
	norm     prim.NormMode

	rd, ra, rb int32
	target     int32
	cost       int32 // cycles charged on the common path
	cost2      int32 // cycles of the branch-not-taken path
	size       int32 // element size scaling the index of a memory access
	span       int32 // byte span of a memory access (bounds check)
	prof       int32 // branch-counter base index (xJump/xBranchCmp): 2*ordinal

	imm  int64
	fimm float64

	callee *nisa.Func
	sym    string // call symbol, kept for resolver-based late binding
	args   []argsrc
	errMsg string
}

// dfunc is one pre-decoded function, plus its tiering state (see tier.go):
// the profile counters are per machine and per function, live outside
// Stats (ResetStats does not clear them), and are only allocated when
// tiering is enabled — the tier-1 steady state stays allocation-free.
type dfunc struct {
	code []dinstr
	fn   *nisa.Func

	// calls counts invocations; branchCounts holds one taken/not-taken
	// counter pair per branch in pc order (nil with tiering off). seeded
	// remembers the invocation count imported from a warm profile, so
	// promotion latency is measured in local calls only.
	calls        uint64
	seeded       uint64
	branchCounts []uint64
	promoted     bool
}

// decodedFunc returns the pre-decoded form of f, decoding it on first use.
func (m *Machine) decodedFunc(f *nisa.Func) *dfunc {
	if df, ok := m.decoded[f]; ok {
		return df
	}
	df := m.decodeFunc(f)
	m.decoded[f] = df
	return df
}

func (m *Machine) decodeFunc(f *nisa.Func) *dfunc {
	code := make([]dinstr, len(f.Code))
	branches := int32(0)
	for pc := range f.Code {
		m.decodeInstr(&f.Code[pc], &code[pc])
		if f.Code[pc].Op.IsBranch() {
			code[pc].prof = 2 * branches
			branches++
		}
	}
	df := &dfunc{code: code, fn: f}
	if m.tier != nil {
		m.tier.initFunc(df)
	}
	return df
}

func (m *Machine) decodeInstr(in *nisa.Instr, d *dinstr) {
	cost := &m.Target.Cost
	d.kind = in.Kind
	d.rd = int32(in.Rd.Index)
	d.ra = int32(in.Ra.Index)
	d.rb = int32(in.Rb.Index)
	d.imm = in.Imm

	switch in.Op {
	case nisa.Nop:
		d.x, d.cost = xNop, int32(cost.Move)

	case nisa.MovImm:
		d.x, d.cost = xMovImm, int32(cost.Move)
	case nisa.MovFImm:
		d.x, d.cost, d.fimm = xMovFImm, int32(cost.Move), in.FImm
	case nisa.Mov:
		d.cost = int32(cost.Move)
		switch in.Rd.Class {
		case nisa.ClassInt:
			d.x = xMovInt
		case nisa.ClassFloat:
			d.x = xMovFloat
		default:
			d.x = xMovVec
		}
	case nisa.GetArg:
		d.cost = int32(cost.Move)
		if in.Rd.Class == nisa.ClassFloat {
			d.x = xGetArgFloat
		} else {
			d.x = xGetArgInt
		}

	case nisa.Add, nisa.Sub, nisa.Mul, nisa.Div, nisa.Rem,
		nisa.And, nisa.Or, nisa.Xor, nisa.Shl, nisa.Shr:
		d.cost = int32(aluCost(cost, in.Op))
		if !in.Kind.IsInteger() {
			// Unusual: an integer ALU opcode at a float, Ref, Vec or Void
			// kind. The generic path reproduces prim.Binary exactly
			// (including its errors and its identity normalization of the
			// non-integer kinds).
			d.x, d.vop = xAluGeneric, in.Op.ALUOpcode()
			return
		}
		d.norm = prim.NormModeOf(in.Kind)
		signed := in.Kind.IsSigned()
		switch in.Op {
		case nisa.Add:
			d.x = xAdd
		case nisa.Sub:
			d.x = xSub
		case nisa.Mul:
			d.x = xMul
		case nisa.And:
			d.x = xAnd
		case nisa.Or:
			d.x = xOr
		case nisa.Xor:
			d.x = xXor
		case nisa.Shl:
			d.x = xShl
		case nisa.Shr:
			d.x = xShrU
			if signed {
				d.x = xShrS
			}
		case nisa.Div:
			d.x = xDivU
			if signed {
				d.x = xDivS
			}
		case nisa.Rem:
			d.x = xRemU
			if signed {
				d.x = xRemS
			}
		}
	case nisa.Neg, nisa.Not:
		d.cost = int32(cost.IntALU)
		if !in.Kind.IsInteger() {
			d.x = xUnaryGeneric
			d.vop = cil.Neg
			if in.Op == nisa.Not {
				d.vop = cil.Not
			}
			return
		}
		d.norm = prim.NormModeOf(in.Kind)
		if in.Op == nisa.Neg {
			d.x = xNeg
		} else {
			d.x = xNot
		}

	case nisa.FAdd, nisa.FSub, nisa.FMul, nisa.FDiv:
		d.cost = int32(fpuCost(cost, in.Op))
		if !in.Kind.IsFloat() {
			d.x, d.vop = xFpuGeneric, in.Op.ALUOpcode()
			return
		}
		d.f32 = in.Kind == cil.F32
		switch in.Op {
		case nisa.FAdd:
			d.x = xFAdd
		case nisa.FSub:
			d.x = xFSub
		case nisa.FMul:
			d.x = xFMul
		case nisa.FDiv:
			d.x = xFDiv
		}
	case nisa.FNeg:
		d.x, d.cost = xFNeg, int32(cost.FloatALU)

	case nisa.SetCmp:
		d.x, d.cost = xSetCmp, int32(cost.IntALU)
		d.decodeCmp(in)
	case nisa.Select:
		d.x, d.cost = xSelect, int32(2*cost.IntALU) // compare + conditional move
		d.decodeCmp(in)
		d.dstFloat = in.Rd.Class == nisa.ClassFloat

	case nisa.Conv:
		d.x, d.cost = xConv, int32(cost.Convert)
		d.srcKind = in.SrcKind
		d.srcFloat = in.Ra.Class == nisa.ClassFloat
		d.dstFloat = in.Rd.Class == nisa.ClassFloat

	case nisa.Load:
		d.decodeMem(in, m.memCost(in.Kind, cost.Load))
		switch {
		case in.Rd.Class == nisa.ClassFloat && in.Kind.IsFloat():
			d.x = xLoadFloat
		case in.Rd.Class != nisa.ClassFloat && (in.Kind.IsInteger() || in.Kind == cil.Ref):
			d.x = xLoadInt
		default:
			d.x = xLoadGeneric
			d.dstFloat = in.Rd.Class == nisa.ClassFloat
		}
	case nisa.Store:
		d.decodeMem(in, m.memCost(in.Kind, cost.Store))
		switch {
		case in.Rd.Class == nisa.ClassFloat && in.Kind.IsFloat():
			d.x = xStoreFloat
		case in.Rd.Class != nisa.ClassFloat && (in.Kind.IsInteger() || in.Kind == cil.Ref):
			d.x = xStoreInt
		default:
			d.x = xStoreGeneric
			d.srcFloat = in.Rd.Class == nisa.ClassFloat
		}

	case nisa.SpillLoad:
		d.cost = int32(cost.Load)
		switch in.Rd.Class {
		case nisa.ClassFloat:
			d.x = xSpillLoadFloat
		case nisa.ClassVec:
			d.x = xSpillLoadVec
		default:
			d.x = xSpillLoadInt
		}
	case nisa.SpillStore:
		d.cost = int32(cost.Store)
		switch in.Rd.Class {
		case nisa.ClassFloat:
			d.x = xSpillStoreFloat
		case nisa.ClassVec:
			d.x = xSpillStoreVec
		default:
			d.x = xSpillStoreInt
		}

	case nisa.Alloc:
		d.x, d.cost = xAlloc, int32(cost.Call)
	case nisa.ArrLen:
		d.x, d.cost = xArrLen, int32(m.memCost(cil.I32, cost.Load))

	case nisa.Jump:
		d.x, d.cost, d.target = xJump, int32(cost.BranchTaken), int32(in.Target)
	case nisa.BranchCmp:
		d.x, d.target = xBranchCmp, int32(in.Target)
		d.cost, d.cost2 = int32(cost.BranchTaken), int32(cost.BranchNotTaken)
		d.decodeCmp(in)

	case nisa.Call:
		d.x = xCall
		// The callee is resolved once; unknown callees keep reporting the
		// original runtime error if the call ever executes — unless the
		// machine has a resolver, which binds the kept symbol on first call.
		d.callee = m.Program.Func(in.Sym)
		d.sym = in.Sym
		if d.callee == nil {
			d.errMsg = fmt.Sprintf("unknown callee %q", in.Sym)
		}
		// Argument marshalling cost is fixed per call site: one load per
		// spilled argument, one move per register argument.
		marshal := 0
		d.args = make([]argsrc, len(in.Args))
		for i, r := range in.Args {
			src := argsrc{slot: -1, idx: int32(r.Index), float: r.Class == nisa.ClassFloat}
			if in.ArgSlots != nil && in.ArgSlots[i] >= 0 {
				src.slot = int32(in.ArgSlots[i])
				marshal += cost.Load
			} else {
				marshal += cost.Move
			}
			d.args[i] = src
		}
		d.cost = int32(marshal + cost.Call)
		switch in.Rd.Class {
		case nisa.ClassFloat:
			d.mode = retFloat
		case nisa.ClassInt:
			d.mode = retInt
		default:
			d.mode = retNone
		}

	case nisa.Ret:
		d.cost = int32(cost.BranchTaken)
		switch in.Ra.Class {
		case nisa.ClassFloat:
			d.x = xRetFloat
		case nisa.ClassInt:
			d.x = xRetInt
		default:
			d.x = xRetVoid
		}

	case nisa.VLoad, nisa.VStore, nisa.VAdd, nisa.VSub, nisa.VMul, nisa.VMax, nisa.VMin,
		nisa.VSplat, nisa.VRedAdd, nisa.VRedMax, nisa.VRedMin:
		if !m.Target.HasSIMD {
			d.x = xTrap
			d.errMsg = fmt.Sprintf("vector instruction %s on a target without a vector unit", in.Op)
			return
		}
		switch in.Op {
		case nisa.VLoad:
			d.decodeMem(in, int64(cost.VecLoad+cost.AddrCalcPenalty))
			d.x, d.span = xVLoad, cil.VecBytes
		case nisa.VStore:
			d.decodeMem(in, int64(cost.VecStore+cost.AddrCalcPenalty))
			d.x, d.span = xVStore, cil.VecBytes
		case nisa.VAdd, nisa.VSub, nisa.VMul, nisa.VMax, nisa.VMin:
			d.x, d.vop = xVBin, in.Op.VectorOpcode()
			if in.Op == nisa.VMul {
				d.cost = int32(cost.VecMul)
			} else {
				d.cost = int32(cost.VecALU)
			}
		case nisa.VSplat:
			d.cost = int32(cost.VecSplat)
			if in.Ra.Class == nisa.ClassFloat {
				d.x = xVSplatFloat
			} else {
				d.x = xVSplatInt
			}
		default: // VRedAdd, VRedMax, VRedMin
			d.cost, d.vop = int32(cost.VecReduce), in.Op.VectorOpcode()
			if in.Rd.Class == nisa.ClassFloat {
				d.x = xVRedFloat
			} else {
				d.x = xVRedInt
			}
		}

	default:
		d.x = xTrap
		if in.Op.IsVector() {
			d.errMsg = fmt.Sprintf("unimplemented vector opcode %s", in.Op)
		} else {
			d.errMsg = fmt.Sprintf("unimplemented opcode %s", in.Op)
		}
	}
}

// decodeCmp resolves the comparison source file, interpretation and
// condition mask for SetCmp, Select and BranchCmp. Operands are read from
// the file selected by Ra's class and compared at the instruction kind's
// signedness, like the generic path; a mismatched combination compares the
// zero-valued halves of both scalars, i.e. always evaluates as equal.
func (d *dinstr) decodeCmp(in *nisa.Instr) {
	cond := in.Cond
	if int(cond) >= len(condMasks) {
		cond = nisa.CondGe // unknown conditions compared as Ge, like cilCondOp did
	}
	d.condMask = condMasks[cond]
	srcFloat := in.Ra.Class == nisa.ClassFloat
	switch {
	case in.Kind.IsFloat() && srcFloat:
		d.mode = cmpFloat
	case in.Kind.IsFloat() || srcFloat:
		d.mode = cmpMismatch
	case in.Kind.IsSigned():
		d.mode = cmpSigned
	default:
		d.mode = cmpUnsigned
	}
}

// decodeMem precomputes the addressing parameters and cycle cost of a
// scalar or vector memory access. For vector accesses the caller widens the
// span to the full vector afterwards.
func (d *dinstr) decodeMem(in *nisa.Instr, cycles int64) {
	sz := int32(in.Kind.Size())
	d.size, d.span = sz, sz
	d.cost = int32(cycles)
}

// evalCond evaluates the pre-decoded condition of SetCmp, Select and
// BranchCmp against the frame: one three-way comparison in the mode decoded
// by decodeCmp, then a lookup in the precomputed condition mask. Small
// enough to inline into the dispatch loop.
func (d *dinstr) evalCond(fr *dframe) bool {
	state := uint8(stateEq)
	switch d.mode {
	case cmpSigned:
		a, b := fr.ints[d.ra], fr.ints[d.rb]
		if a < b {
			state = stateLt
		} else if a > b {
			state = stateGt
		}
	case cmpUnsigned:
		a, b := uint64(fr.ints[d.ra]), uint64(fr.ints[d.rb])
		if a < b {
			state = stateLt
		} else if a > b {
			state = stateGt
		}
	case cmpFloat:
		a, b := fr.flts[d.ra], fr.flts[d.rb]
		if a < b {
			state = stateLt
		} else if a == b {
			state = stateEq
		} else {
			state = stateGt // also the NaN outcome: neither lt nor eq
		}
	}
	return d.condMask>>state&1 != 0
}
