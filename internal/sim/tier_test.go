package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/profile"
	"repro/internal/target"
	"repro/internal/vm"
)

// vecProgram builds a vectorized loop by hand so the vector fusion
// patterns have something to bite on: out[i..i+16) = max(in[i..i+16), 3)
// over one 32-element u8 array, vector step 16.
//
//	pc 0-1: args; 2: vc = splat(3); 3: i = 0; 4: n = 32; 5: step = 16
//	loop 6: if i >= n goto 12
//	     7: v0 = vload in[i]        (fuses with 8)
//	     8: v1 = vmax(v0, vc)
//	     9: vstore out[i] = v1
//	    10: i += step
//	    11: jump 6
//	done 12: ret i
func vecProgram() *nisa.Program {
	r := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassInt, Index: i} }
	v := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassVec, Index: i} }
	f := &nisa.Func{
		Name:   "vmax3",
		Params: []cil.Type{cil.Array(cil.U8), cil.Array(cil.U8)},
		Ret:    cil.Scalar(cil.I32),
		Code: []nisa.Instr{
			{Op: nisa.GetArg, Kind: cil.Ref, Rd: r(0), Imm: 0},
			{Op: nisa.GetArg, Kind: cil.Ref, Rd: r(1), Imm: 1},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(2), Imm: 3},
			{Op: nisa.VSplat, Kind: cil.U8, Rd: v(2), Ra: r(2)},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(3)},                                             // i = 0
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(4), Imm: 32},                                    // n
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(5), Imm: 16},                                    // step
			{Op: nisa.BranchCmp, Kind: cil.I32, Cond: nisa.CondGe, Ra: r(3), Rb: r(4), Target: 13}, // 7
			{Op: nisa.VLoad, Kind: cil.U8, Rd: v(0), Ra: r(0), Rb: r(3)},                           // 8
			{Op: nisa.VMax, Kind: cil.U8, Rd: v(1), Ra: v(0), Rb: v(2)},                            // 9
			{Op: nisa.VStore, Kind: cil.U8, Rd: v(1), Ra: r(1), Rb: r(3)},                          // 10
			{Op: nisa.Add, Kind: cil.I32, Rd: r(3), Ra: r(3), Rb: r(5)},                            // 11
			{Op: nisa.Jump, Target: 7},                                                             // 12
			{Op: nisa.Ret, Kind: cil.I32, Ra: r(3)},                                                // 13
		},
	}
	prog := nisa.NewProgram("vec")
	prog.Add(f)
	return prog
}

func sumInput(m *Machine) (addr Addr, want int64) {
	arr := vm.NewArray(cil.I32, 10)
	for i := 0; i < 10; i++ {
		arr.SetInt(i, int64(i*i))
		want += int64(i * i)
	}
	return m.CopyInArray(arr), want
}

// TestTieredExecutionBitIdentical is the sim-level differential gate: a
// tiered machine promoting mid-run must produce the same per-call results
// and the same cumulative Stats — cycles included — as a plain tier-1
// machine, before and after promotion.
func TestTieredExecutionBitIdentical(t *testing.T) {
	tgt := target.MustLookup(target.PPC)
	plain := New(tgt, handProgram())
	tiered := New(tgt, handProgram())
	tiered.EnableTiering(profile.Policy{PromoteCalls: 3})

	addrP, want := sumInput(plain)
	addrT, _ := sumInput(tiered)

	for call := 1; call <= 8; call++ {
		rp, errP := plain.Call("sum", IntArg(int64(addrP)), IntArg(10))
		rt, errT := tiered.Call("sum", IntArg(int64(addrT)), IntArg(10))
		if errP != nil || errT != nil {
			t.Fatalf("call %d: errors %v / %v", call, errP, errT)
		}
		if rp != rt || rt.I != want {
			t.Fatalf("call %d: plain %v tiered %v want %d", call, rp, rt, want)
		}
		if plain.Stats != tiered.Stats {
			t.Fatalf("call %d: stats diverged\nplain:  %+v\ntiered: %+v", call, plain.Stats, tiered.Stats)
		}
	}

	ts := tiered.TierStats()
	if ts.Promotions != 1 || ts.PromoteCallsSum != 3 {
		t.Errorf("promotion bookkeeping = %+v, want 1 promotion at call 3", ts)
	}
	// handProgram's loop latch is MovImm #1; Add — one fusible pair.
	if ts.FusedPairs < 1 {
		t.Errorf("FusedPairs = %d, want >= 1", ts.FusedPairs)
	}
	if plain.TierStats() != (TierStats{}) || plain.TieringEnabled() {
		t.Error("plain machine reports tiering activity")
	}
}

func TestTieredVectorLoopBitIdentical(t *testing.T) {
	tgt := target.MustLookup(target.X86SSE)
	plain := New(tgt, vecProgram())
	tiered := New(tgt, vecProgram())
	tiered.EnableTiering(profile.Policy{PromoteCalls: 2})

	in := vm.NewArray(cil.U8, 32)
	for i := 0; i < 32; i++ {
		in.SetInt(i, int64(i%7))
	}
	run := func(m *Machine) (Value, []int64) {
		inAddr := m.CopyInArray(in)
		outAddr := m.AllocArray(cil.U8, 32)
		var res Value
		for call := 0; call < 4; call++ {
			var err error
			res, err = m.Call("vmax3", IntArg(int64(inAddr)), IntArg(int64(outAddr)))
			if err != nil {
				t.Fatal(err)
			}
		}
		out := vm.NewArray(cil.U8, 32)
		if err := m.CopyOutArray(outAddr, out); err != nil {
			t.Fatal(err)
		}
		vals := make([]int64, 32)
		for i := range vals {
			vals[i] = out.Int(i)
		}
		return res, vals
	}
	rp, outP := run(plain)
	rt, outT := run(tiered)
	if rp != rt || !reflect.DeepEqual(outP, outT) {
		t.Fatalf("vector results diverged: %v/%v", rp, rt)
	}
	for i, v := range outP {
		want := int64(i % 7)
		if want < 3 {
			want = 3
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
	if plain.Stats != tiered.Stats {
		t.Fatalf("stats diverged\nplain:  %+v\ntiered: %+v", plain.Stats, tiered.Stats)
	}
	ts := tiered.TierStats()
	// VLoad;VMax fuses (the VStore partner is consumed by the pair ahead
	// of it); the Add;Jump latch does not match any pattern here.
	if ts.Promotions != 1 || ts.FusedPairs < 1 {
		t.Errorf("tier stats = %+v, want a promotion with fused vector pairs", ts)
	}
}

// TestTieredBudgetTrapIdentical pins the subtlest invariance case: the
// instruction budget can expire between the two halves of a fused pair,
// and the error plus the statistics at the point of the trap must match
// tier 1 exactly.
func TestTieredBudgetTrapIdentical(t *testing.T) {
	tgt := target.MustLookup(target.PPC)
	plain := New(tgt, handProgram())
	tiered := New(tgt, handProgram())
	tiered.EnableTiering(profile.Policy{PromoteCalls: 2})

	addrP, _ := sumInput(plain)
	addrT, _ := sumInput(tiered)
	for call := 0; call < 3; call++ { // past promotion, fused code in place
		if _, err := tiered.Call("sum", IntArg(int64(addrT)), IntArg(10)); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Call("sum", IntArg(int64(addrP)), IntArg(10)); err != nil {
			t.Fatal(err)
		}
	}
	if tiered.TierStats().FusedPairs < 1 {
		t.Fatal("loop did not fuse; budget test would not cover fused dispatch")
	}
	// Walk the budget through every expiry point in the loop body.
	for extra := int64(1); extra <= 8; extra++ {
		plain.ResetStats()
		tiered.ResetStats()
		plain.MaxSteps = plain.Stats.Instructions + 20 + extra
		tiered.MaxSteps = tiered.Stats.Instructions + 20 + extra
		_, errP := plain.Call("sum", IntArg(int64(addrP)), IntArg(10))
		_, errT := tiered.Call("sum", IntArg(int64(addrT)), IntArg(10))
		if errP == nil || errT == nil {
			t.Fatalf("budget %d: expected traps, got %v / %v", extra, errP, errT)
		}
		if errP.Error() != errT.Error() {
			t.Fatalf("budget %d: error mismatch\nplain:  %v\ntiered: %v", extra, errP, errT)
		}
		if !strings.Contains(errT.Error(), "instruction budget") {
			t.Fatalf("budget %d: unexpected trap %v", extra, errT)
		}
		if plain.Stats != tiered.Stats {
			t.Fatalf("budget %d: stats at trap diverged\nplain:  %+v\ntiered: %+v", extra, plain.Stats, tiered.Stats)
		}
	}
}

// TestResetStatsKeepsProfileCounters: Stats are per-measurement and reset
// freely; the profile counters live outside them and must survive, or
// promotion would restart whenever a benchmark harness resets statistics.
func TestResetStatsKeepsProfileCounters(t *testing.T) {
	tgt := target.MustLookup(target.MCU)
	m := New(tgt, handProgram())
	m.EnableTiering(profile.Policy{PromoteCalls: 4})
	addr, _ := sumInput(m)
	for call := 0; call < 2; call++ {
		if _, err := m.Call("sum", IntArg(int64(addr)), IntArg(10)); err != nil {
			t.Fatal(err)
		}
	}
	m.ResetStats()
	if m.Stats.Cycles != 0 || m.Stats.Instructions != 0 {
		t.Fatalf("ResetStats left statistics: %+v", m.Stats)
	}
	p := m.ProfileSnapshot()
	fp := p.Func("sum")
	if fp == nil || fp.Calls != 2 {
		t.Fatalf("profile counters did not survive ResetStats: %+v", p)
	}
	// Guard branch (ordinal 0): not-taken once per iteration, taken once
	// per call; back-edge jump (ordinal 1): taken once per iteration.
	want := []profile.BranchCount{{Taken: 2, NotTaken: 20}, {Taken: 20}}
	if !reflect.DeepEqual(fp.Branches, want) {
		t.Fatalf("branch counters = %+v, want %+v", fp.Branches, want)
	}
	// Promotion still lands on schedule (call 4) after the reset.
	for call := 0; call < 2; call++ {
		if _, err := m.Call("sum", IntArg(int64(addr)), IntArg(10)); err != nil {
			t.Fatal(err)
		}
	}
	if ts := m.TierStats(); ts.Promotions != 1 || ts.PromoteCallsSum != 4 {
		t.Fatalf("promotion after ResetStats = %+v", ts)
	}
}

// TestWarmProfilePromotesImmediately: importing a hot profile means the
// first local call promotes — the split-compilation payoff the tier
// metric family measures as promotion latency 1 instead of threshold.
func TestWarmProfilePromotesImmediately(t *testing.T) {
	tgt := target.MustLookup(target.PPC)
	exporter := New(tgt, handProgram())
	exporter.EnableTiering(profile.Policy{PromoteCalls: -1}) // profile only
	addr, _ := sumInput(exporter)
	for call := 0; call < 6; call++ {
		if _, err := exporter.Call("sum", IntArg(int64(addr)), IntArg(10)); err != nil {
			t.Fatal(err)
		}
	}
	if ts := exporter.TierStats(); ts.Promotions != 0 {
		t.Fatalf("profile-only machine promoted: %+v", ts)
	}
	exported := exporter.ProfileSnapshot()

	warm := New(tgt, handProgram())
	warm.EnableTiering(profile.Policy{PromoteCalls: 4})
	warm.WarmProfile(exported)
	addrW, want := sumInput(warm)
	res, err := warm.Call("sum", IntArg(int64(addrW)), IntArg(10))
	if err != nil || res.I != want {
		t.Fatalf("warm call: %v %v", res, err)
	}
	ts := warm.TierStats()
	if ts.WarmSeeded != 1 || ts.WarmDegraded != 0 {
		t.Fatalf("warm seeding = %+v", ts)
	}
	if ts.Promotions != 1 || ts.PromoteCallsSum != 1 {
		t.Fatalf("warm promotion latency = %+v, want promotion on local call 1", ts)
	}
	if ts.FusedPairs < 1 {
		t.Errorf("imported edge counts did not drive fusion: %+v", ts)
	}
	// The re-exported profile includes the imported history plus our call.
	if fp := warm.ProfileSnapshot().Func("sum"); fp == nil || fp.Calls != 7 {
		t.Errorf("re-exported profile = %+v", fp)
	}
}

// TestTieredSteadyStateZeroAlloc: with the counters bucketed into the
// pre-allocated dfunc, a profiled (and promoted) machine keeps the
// tier-1 zero-allocation steady state.
func TestTieredSteadyStateZeroAlloc(t *testing.T) {
	m := New(target.MustLookup(target.PPC), handProgram())
	m.EnableTiering(profile.Policy{PromoteCalls: 2})
	addr, _ := sumInput(m)
	args := []Value{IntArg(int64(addr)), IntArg(10)}
	for call := 0; call < 3; call++ { // warm up past promotion
		if _, err := m.Call("sum", args...); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := m.Call("sum", args...); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("tiered steady state allocates %.1f per call, want 0", allocs)
	}
}

// TestWarmProfileShapeMismatchDegrades: a profile whose branch counters do
// not match the code (recorded on code that translated differently) seeds
// the invocation count only — negotiate-or-fallback, never an error.
func TestWarmProfileShapeMismatchDegrades(t *testing.T) {
	tgt := target.MustLookup(target.PPC)
	m := New(tgt, handProgram())
	m.EnableTiering(profile.Policy{PromoteCalls: 4})
	m.WarmProfile(&profile.ModuleProfile{Funcs: []profile.FuncProfile{
		{Name: "sum", Calls: 100, Branches: []profile.BranchCount{{Taken: 5}}}, // code has 2 branches
	}})
	addr, want := sumInput(m)
	res, err := m.Call("sum", IntArg(int64(addr)), IntArg(10))
	if err != nil || res.I != want {
		t.Fatalf("degraded warm call: %v %v", res, err)
	}
	ts := m.TierStats()
	if ts.WarmDegraded != 1 || ts.WarmSeeded != 0 {
		t.Fatalf("degraded seeding = %+v", ts)
	}
	// The call count still promotes on the first call, but with no edge
	// counts there is nothing to fuse.
	if ts.Promotions != 1 || ts.PromoteCallsSum != 1 || ts.FusedPairs != 0 {
		t.Fatalf("degraded promotion = %+v", ts)
	}
}
