package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cil"
	"repro/internal/nisa"
	"repro/internal/target"
	"repro/internal/vm"
)

// countProgram builds count(n): a pure counting loop with no memory
// traffic, so tests can make runs arbitrarily long without allocating
// simulated arrays.
func countProgram() *nisa.Program {
	r := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassInt, Index: i} }
	f := &nisa.Func{
		Name:   "count",
		Params: []cil.Type{cil.Scalar(cil.I64)},
		Ret:    cil.Scalar(cil.I64),
		Code: []nisa.Instr{
			{Op: nisa.GetArg, Kind: cil.I64, Rd: r(0), Imm: 0},
			{Op: nisa.MovImm, Kind: cil.I64, Rd: r(1)},
			{Op: nisa.MovImm, Kind: cil.I64, Rd: r(2), Imm: 1},
			{Op: nisa.BranchCmp, Kind: cil.I64, Cond: nisa.CondGe, Ra: r(1), Rb: r(0), Target: 6},
			{Op: nisa.Add, Kind: cil.I64, Rd: r(1), Ra: r(1), Rb: r(2)},
			{Op: nisa.Jump, Target: 3},
			{Op: nisa.Ret, Kind: cil.I64, Ra: r(1)},
		},
	}
	prog := nisa.NewProgram("cancel")
	prog.Add(f)
	return prog
}

func TestCallContextCancelMidRun(t *testing.T) {
	m := New(target.MustLookup(target.PPC), countProgram())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := m.CallContext(ctx, "count", IntArg(1<<40))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CallContext = %v, want context.Canceled", err)
	}
	if m.Stats.Instructions == 0 {
		t.Fatal("cancelled run executed nothing")
	}
	// The machine survives an interrupted run: a fresh call works and the
	// disabled-polling sentinel is restored.
	res, err := m.CallContext(context.Background(), "count", IntArg(100))
	if err != nil || res.I != 100 {
		t.Fatalf("call after cancel = %v, %v; want 100", res.I, err)
	}
}

func TestCallContextDeadline(t *testing.T) {
	m := New(target.MustLookup(target.PPC), countProgram())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := m.CallContext(ctx, "count", IntArg(1<<40))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CallContext = %v, want context.DeadlineExceeded", err)
	}
}

func TestCallContextPreCancelled(t *testing.T) {
	m := New(target.MustLookup(target.PPC), countProgram())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.CallContext(ctx, "count", IntArg(10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CallContext = %v, want context.Canceled", err)
	}
	if m.Stats.Instructions != 0 {
		t.Fatalf("pre-cancelled run executed %d instructions", m.Stats.Instructions)
	}
}

// TestCallContextIsMeteringInvisible pins the zero-drift contract: running
// under a live (never-cancelled) context must produce exactly the cycles,
// instructions and result of a plain Call — cancellation support may not
// move a gated metric.
func TestCallContextIsMeteringInvisible(t *testing.T) {
	tgt := target.MustLookup(target.X86SSE)
	run := func(withCtx bool) (Value, Stats) {
		m := New(tgt, handProgram())
		arr := vm.NewArray(cil.I32, 64)
		for i := 0; i < 64; i++ {
			arr.SetInt(i, int64(i))
		}
		addr := m.CopyInArray(arr)
		var res Value
		var err error
		if withCtx {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			res, err = m.CallContext(ctx, "sum", IntArg(int64(addr)), IntArg(64))
		} else {
			res, err = m.Call("sum", IntArg(int64(addr)), IntArg(64))
		}
		if err != nil {
			t.Fatal(err)
		}
		return res, m.Stats
	}
	plainRes, plainStats := run(false)
	ctxRes, ctxStats := run(true)
	if plainRes != ctxRes {
		t.Fatalf("results differ: %v vs %v", plainRes, ctxRes)
	}
	if plainStats != ctxStats {
		t.Fatalf("stats differ:\nplain = %+v\n  ctx = %+v", plainStats, ctxStats)
	}
}
