package sim

// Per-machine resource governance. A machine executing an untrusted module
// must be able to bound what the guest consumes: simulated instructions
// (MaxSteps, the budget the machine always had), guest memory (MemLimit,
// covering the simulated heap and the pooled frame/argument buffers that
// grow on the guest's behalf), and wall-clock time (a deadline on the run
// context, checked on the cancellation stride). Every breach is reported as
// a typed *ResourceError so callers can map "the guest hit its limit" to a
// different failure class than "the guest is broken".
//
// Accounting is always on — charging a counter at the rare growth sites is
// free compared to the allocation itself, and it lets an ungoverned run
// report MemUsed so an operator can derive a just-sufficient limit. The
// limit checks only arm when MemLimit > 0, and none of this feeds the
// simulated statistics: a governed run that stays inside its limits is
// bit-identical (results, outputs, cycles) to an ungoverned one.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cil"
	"repro/internal/faultinject"
	"repro/internal/nisa"
	"repro/internal/prim"
)

// ResourceKind names which limit a ResourceError reports.
type ResourceKind string

// The governed resources.
const (
	// ResourceCycles is the instruction budget (Machine.MaxSteps).
	ResourceCycles ResourceKind = "cycles"
	// ResourceMem is the guest memory limit (Machine.MemLimit).
	ResourceMem ResourceKind = "mem"
	// ResourceDeadline is the wall-clock run deadline (applied by callers
	// through the run context; see core's RunDeadline).
	ResourceDeadline ResourceKind = "deadline"
)

// String returns the kind's name.
func (k ResourceKind) String() string { return string(k) }

// ResourceError reports that a run exceeded one of its governed limits. It
// is a deterministic property of the module and its limits — the same run
// under the same limits fails the same way — which is why servers map it to
// a non-retryable "resource_exhausted" class instead of a generic execution
// failure.
type ResourceError struct {
	// Kind is the exhausted resource.
	Kind ResourceKind
	// Limit is the configured bound: instructions for cycles, bytes for
	// mem, nanoseconds for deadline.
	Limit int64
	// Need is how much the run wanted when it tripped (bytes for mem;
	// zero when unknown or not meaningful for the kind).
	Need int64
	// Func is the simulated function that was executing.
	Func string
}

// Error renders the breach. The cycles form is byte-for-byte the message
// the instruction budget has always produced, so existing callers matching
// on it keep working.
func (e *ResourceError) Error() string {
	switch e.Kind {
	case ResourceCycles:
		return fmt.Sprintf("sim: instruction budget of %d exhausted in %s", e.Limit, e.Func)
	case ResourceMem:
		return fmt.Sprintf("sim: memory limit of %d bytes exceeded (%d bytes needed) in %s", e.Limit, e.Need, e.Func)
	default:
		return fmt.Sprintf("sim: run deadline of %s exceeded in %s", time.Duration(e.Limit), e.Func)
	}
}

// budgetExhausted builds the instruction-budget breach. One cold helper
// replaces the fmt.Errorf calls that used to be duplicated across the
// dispatch loop and every fused superinstruction case.
func budgetExhausted(maxSteps int64, name string) error {
	return &ResourceError{Kind: ResourceCycles, Limit: maxSteps, Func: name}
}

// Fault-injection sites of the simulator (see internal/faultinject):
// sim.panic fires at Call entry and panics out of dispatch — exercising the
// panic firewall above the machine — and sim.memgrow fires at the guest
// allocation instruction and reports a deterministic memory breach.
const (
	faultSitePanic   = "sim.panic"
	faultSiteMemGrow = "sim.memgrow"
)

// vecBytes is the host size of one pooled vector register / spill slot.
var vecBytes = int64(len(prim.Vec{}))

// MemUsed returns the guest memory charged so far: simulated heap bytes
// plus the pooled frame, spill and argument buffers grown on the guest's
// behalf. Charging is deterministic, so an ungoverned run's MemUsed is
// exactly the smallest MemLimit under which the same run still succeeds.
func (m *Machine) MemUsed() int64 { return m.memCharged }

// frameBytes is the charge for one freshly grown activation record.
func (m *Machine) frameBytes() int64 {
	return int64(m.ni)*8 + int64(m.nf)*8 + int64(m.nv)*vecBytes
}

// memCheck is the per-activation limit check, called from the exec prologue
// after the frame pool and spill area grew: it catches every charge the
// allocation instruction's own pre-check does not cover. Only called when
// MemLimit > 0.
func (m *Machine) memCheck(f *nisa.Func) error {
	if m.memCharged > m.MemLimit {
		return &ResourceError{Kind: ResourceMem, Limit: m.MemLimit, Need: m.memCharged, Func: f.Name}
	}
	return nil
}

// allocGoverned checks a guest allocation of n elements against the memory
// limit before any host memory is allocated, so a hostile length cannot
// drive the host out of memory on a governed machine. It mirrors
// AllocArray's growth arithmetic exactly (header plus alignment padding)
// and guards the multiplication itself. Only called when MemLimit > 0.
func (m *Machine) allocGoverned(f *nisa.Func, elem cil.Kind, n int64) error {
	es := int64(elem.Size())
	if es > 0 && n > (math.MaxInt64-arrayHeader-16)/es {
		return &ResourceError{Kind: ResourceMem, Limit: m.MemLimit, Need: math.MaxInt64, Func: f.Name}
	}
	grow := arrayHeader + n*es
	base := int64(len(m.mem))
	if rem := (base + arrayHeader + grow) % 16; rem != 0 {
		grow += 16 - rem
	}
	if m.memCharged+grow > m.MemLimit {
		return &ResourceError{Kind: ResourceMem, Limit: m.MemLimit, Need: m.memCharged + grow, Func: f.Name}
	}
	return nil
}

// injectPanic fires the sim.panic fault site (a no-op when disarmed): an
// armed error-mode fault panics out of the dispatch stack, which is how
// chaos tests drive the panic firewall above the machine.
func injectPanic(name string) {
	if flt := faultinject.At(faultSitePanic); flt != nil {
		if err := flt.Apply(); err != nil {
			panic(fmt.Sprintf("sim: injected guest panic in %s", name))
		}
	}
}

// injectMemGrow fires the sim.memgrow fault site at the guest allocation
// instruction (nil when disarmed): an armed error-mode fault reports a
// deterministic memory breach as if the allocation had blown the limit.
func (m *Machine) injectMemGrow(f *nisa.Func) error {
	if flt := faultinject.At(faultSiteMemGrow); flt != nil {
		if err := flt.Apply(); err != nil {
			return &ResourceError{Kind: ResourceMem, Limit: m.MemLimit, Need: math.MaxInt64, Func: f.Name}
		}
	}
	return nil
}
