// Host-throughput benchmarks of the simulator's dispatch loop. Unlike the
// repository-root benchmarks (which report deterministic simulated cycles),
// these measure real wall-clock time of the host running the interpreter, so
// `go test -bench . -benchmem ./internal/sim` + benchstat track how fast the
// simulator itself is. The steady-state loop is expected to run with zero
// allocations per call.
package sim_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cil"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/nisa"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/vm"
)

// sumProgram is a hand-written scalar loop (no JIT) summing an i32 array:
// the smallest possible steady-state workload for the dispatch loop.
func sumProgram() *nisa.Program {
	r := func(i int) nisa.Reg { return nisa.Reg{Class: nisa.ClassInt, Index: i} }
	f := &nisa.Func{
		Name:   "sum",
		Params: []cil.Type{cil.Array(cil.I32), cil.Scalar(cil.I32)},
		Ret:    cil.Scalar(cil.I32),
		Code: []nisa.Instr{
			{Op: nisa.GetArg, Kind: cil.Ref, Rd: r(0), Imm: 0},
			{Op: nisa.GetArg, Kind: cil.I32, Rd: r(1), Imm: 1},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(2)},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(3)},
			{Op: nisa.BranchCmp, Kind: cil.I32, Cond: nisa.CondGe, Ra: r(3), Rb: r(1), Target: 10},
			{Op: nisa.Load, Kind: cil.I32, Rd: r(4), Ra: r(0), Rb: r(3)},
			{Op: nisa.Add, Kind: cil.I32, Rd: r(2), Ra: r(2), Rb: r(4)},
			{Op: nisa.MovImm, Kind: cil.I32, Rd: r(5), Imm: 1},
			{Op: nisa.Add, Kind: cil.I32, Rd: r(3), Ra: r(3), Rb: r(5)},
			{Op: nisa.Jump, Target: 4},
			{Op: nisa.Ret, Kind: cil.I32, Ra: r(2)},
		},
	}
	p := nisa.NewProgram("hand")
	p.Add(f)
	return p
}

// BenchmarkDispatchScalarLoop measures the raw scalar dispatch loop on a
// hand-written program: 6 instructions per element, no calls, no vector
// unit. The interesting -benchmem number is allocs/op, which must be 0 in
// steady state.
func BenchmarkDispatchScalarLoop(b *testing.B) {
	const n = 4096
	m := sim.New(target.MustLookup(target.PPC), sumProgram())
	arr := vm.NewArray(cil.I32, n)
	for i := 0; i < n; i++ {
		arr.SetInt(i, int64(i))
	}
	addr := m.CopyInArray(arr)
	args := []sim.Value{sim.IntArg(int64(addr)), sim.IntArg(n)}
	// One warm-up call so one-time per-function work is off the clock.
	if _, err := m.Call("sum", args...); err != nil {
		b.Fatal(err)
	}
	m.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Call("sum", args...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHostThroughput(b, m)
}

// BenchmarkDispatchScalarLoopTiered is the tiered twin of
// BenchmarkDispatchScalarLoop: profiling on, function promoted to tier 2
// during warm-up, so benchstat comparisons against the plain benchmark
// show what the profile counters cost and what superinstruction fusion
// buys on the host. Simulated cycles are identical by construction.
func BenchmarkDispatchScalarLoopTiered(b *testing.B) {
	const n = 4096
	m := sim.New(target.MustLookup(target.PPC), sumProgram())
	m.EnableTiering(profile.Policy{PromoteCalls: 2})
	arr := vm.NewArray(cil.I32, n)
	for i := 0; i < n; i++ {
		arr.SetInt(i, int64(i))
	}
	addr := m.CopyInArray(arr)
	args := []sim.Value{sim.IntArg(int64(addr)), sim.IntArg(n)}
	for call := 0; call < 3; call++ { // warm up past promotion
		if _, err := m.Call("sum", args...); err != nil {
			b.Fatal(err)
		}
	}
	if m.TierStats().Promotions == 0 {
		b.Fatal("warm-up did not promote")
	}
	m.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Call("sum", args...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHostThroughput(b, m)
}

// BenchmarkKernelDispatch deploys each Table 1 kernel (vectorized bytecode,
// split register allocation) on each Table 1 target and times repeated
// executions of the entry point over in-place inputs. This is the wall-clock
// twin of the simulated-cycle numbers the root benchmarks report.
func BenchmarkKernelDispatch(b *testing.B) {
	const n = 4096
	for _, name := range kernels.Table1Names {
		res, k, err := core.CompileKernel(name, core.OfflineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, tgt := range target.Table1() {
			dep, err := core.Deploy(res.Encoded, tgt, jit.Options{RegAlloc: jit.RegAllocSplit})
			if err != nil {
				b.Fatal(err)
			}
			in, err := kernels.NewInputs(name, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			// Marshal the inputs once; the kernels in Table 1 execute the
			// same instruction sequence regardless of array contents, so
			// re-running over the same memory is a faithful steady state.
			args, _ := bench.MarshalKernelArgs(dep.Machine, in)
			b.Run(name+"/"+string(tgt.Arch), func(b *testing.B) {
				m := dep.Machine
				if _, err := m.Call(k.Entry, args...); err != nil {
					b.Fatal(err)
				}
				m.ResetStats()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := m.Call(k.Entry, args...); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportHostThroughput(b, m)
			})
		}
	}
}

// reportHostThroughput derives simulated-instructions-per-host-second from
// the machine's instruction counter and the benchmark's elapsed time.
func reportHostThroughput(b *testing.B, m *sim.Machine) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(m.Stats.Instructions)/sec/1e6, "sim_MIPS")
	}
}
