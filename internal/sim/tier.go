package sim

import (
	"sort"

	"repro/internal/nisa"
	"repro/internal/profile"
)

// Tiered execution. The pre-decoded core of decode.go is tier 1; with
// tiering enabled the machine additionally keeps per-function profile
// counters — an invocation count and one taken/not-taken pair per branch,
// bucketed at control-flow granularity so straight-line code is untouched —
// and promotes a function to tier 2 once the policy calls it hot.
//
// Tier-2 execution is architecturally invariant by construction: promotion
// may fuse frequent adjacent instruction pairs into superinstructions that
// save dispatch work on the host, but every fused case charges exactly the
// cycles and statistics of its two constituents, so simulated cycles,
// statistics and results stay bit-identical to tier 1 (the differential
// tests pin this across the Table 1 matrix). The controller hook lets
// internal/core additionally re-run register allocation with the observed
// block frequencies and compare it against the deployed code — validating
// the offline annotation online, without ever switching execution away
// from the code the image shipped.

// PromoteResult is what a tier controller reports back about one
// promotion: whether it re-ran register allocation with the observed
// frequencies and whether the result matched the deployed code.
type PromoteResult struct {
	ReallocChecked   bool
	ReallocConfirmed bool
}

// PromoteFunc is the optional tier-2 controller callback, invoked once per
// promoted function with a snapshot of its profile.
type PromoteFunc func(f *nisa.Func, fp *profile.FuncProfile) PromoteResult

// TierStats aggregates the machine's tiering activity. Everything here is
// host-side bookkeeping: none of it feeds the simulated statistics.
type TierStats struct {
	// Promotions counts functions promoted to tier 2.
	Promotions int64 `json:"promotions"`
	// PromoteCallsSum sums, over all promotions, the invocation count at
	// which the function was promoted — the promotion latency in calls
	// (threshold when cold, 1 when an imported profile warmed the machine).
	PromoteCallsSum int64 `json:"promote_calls_sum"`
	// FusedPairs counts instruction pairs fused into superinstructions.
	FusedPairs int64 `json:"fused_pairs"`
	// ReallocChecked/Confirmed/Diverged count controller re-allocations:
	// checked promotions, those whose profile-weighted register allocation
	// reproduced the deployed code exactly, and those that diverged (the
	// deployed code keeps executing either way).
	ReallocChecked   int64 `json:"realloc_checked"`
	ReallocConfirmed int64 `json:"realloc_confirmed"`
	ReallocDiverged  int64 `json:"realloc_diverged"`
	// WarmSeeded counts functions whose counters were seeded from an
	// imported profile; WarmDegraded counts imports whose branch counters
	// did not match the code and seeded the invocation count only.
	WarmSeeded   int64 `json:"warm_seeded"`
	WarmDegraded int64 `json:"warm_degraded"`
}

// tierState is the machine's tiering control block (nil when tiering is
// off, which is the default and costs the dispatch loop nothing beyond one
// nil check per branch and call).
type tierState struct {
	threshold int64 // promotion threshold in calls, -1 = profile only
	promote   PromoteFunc
	warm      map[string]*profile.FuncProfile
	stats     TierStats
}

// EnableTiering turns on profiling and tier-2 promotion under the given
// policy. It must be called before or between executions, not
// concurrently with them; functions decoded earlier start profiling from
// zero at their next call.
func (m *Machine) EnableTiering(p profile.Policy) {
	if m.tier == nil {
		m.tier = &tierState{}
	}
	m.tier.threshold = p.Threshold()
	for _, df := range m.decoded {
		if df.branchCounts == nil {
			m.tier.initFunc(df)
		}
	}
}

// TieringEnabled reports whether the machine profiles and promotes.
func (m *Machine) TieringEnabled() bool { return m.tier != nil }

// SetTierController installs the promotion callback (used by
// internal/core to validate register allocation against the observed
// frequencies). A nil controller leaves promotion as fusion-only.
func (m *Machine) SetTierController(fn PromoteFunc) {
	if m.tier == nil {
		m.tier = &tierState{threshold: profile.Policy{}.Threshold()}
	}
	m.tier.promote = fn
}

// WarmProfile seeds the machine's counters from an imported profile, so a
// function the exporter found hot is promoted on its first call here
// instead of after the full promotion threshold. Must be called before the
// functions run; profiles whose branch shape does not match the code
// degrade to seeding the invocation count only.
func (m *Machine) WarmProfile(p *profile.ModuleProfile) {
	if m.tier == nil {
		m.tier = &tierState{threshold: profile.Policy{}.Threshold()}
	}
	if m.tier.warm == nil {
		m.tier.warm = make(map[string]*profile.FuncProfile, len(p.Funcs))
	}
	for i := range p.Funcs {
		m.tier.warm[p.Funcs[i].Name] = &p.Funcs[i]
	}
	// Re-seed functions that were already decoded.
	for _, df := range m.decoded {
		if df.branchCounts != nil && !df.promoted {
			m.tier.seedFunc(df)
		}
	}
}

// TierStats returns a snapshot of the machine's tiering activity.
func (m *Machine) TierStats() TierStats {
	if m.tier == nil {
		return TierStats{}
	}
	return m.tier.stats
}

// initFunc readies a freshly decoded function for profiling: branch
// counters in pc order (two per branch) and, when an imported profile
// covers the function, warm-seeded counts.
func (t *tierState) initFunc(df *dfunc) {
	nb := 0
	for i := range df.code {
		switch df.code[i].x {
		case xJump, xBranchCmp:
			nb++
		}
	}
	df.branchCounts = make([]uint64, 2*nb)
	t.seedFunc(df)
}

func (t *tierState) seedFunc(df *dfunc) {
	fp := t.warm[df.fn.Name]
	if fp == nil {
		return
	}
	df.calls = fp.Calls
	df.seeded = fp.Calls
	if 2*len(fp.Branches) == len(df.branchCounts) {
		for i, bc := range fp.Branches {
			df.branchCounts[2*i] = bc.Taken
			df.branchCounts[2*i+1] = bc.NotTaken
		}
		t.stats.WarmSeeded++
	} else {
		// Shape mismatch (e.g. a profile recorded on a target whose code
		// translated differently): keep the invocation count, drop the
		// edge counts — negotiate-or-fallback, never an error.
		t.stats.WarmDegraded++
	}
}

// snapshot builds the function's profile from the live counters.
func (df *dfunc) snapshot() profile.FuncProfile {
	fp := profile.FuncProfile{Name: df.fn.Name, Calls: df.calls}
	if n := len(df.branchCounts) / 2; n > 0 {
		fp.Branches = make([]profile.BranchCount, n)
		for i := range fp.Branches {
			fp.Branches[i] = profile.BranchCount{
				Taken:    df.branchCounts[2*i],
				NotTaken: df.branchCounts[2*i+1],
			}
		}
	}
	return fp
}

// ProfileSnapshot returns the machine's observed behavior as a module
// profile: one entry per executed function, sorted by name. It is the
// payload behind anno.KeyProfile — the annotation the runtime writes.
func (m *Machine) ProfileSnapshot() *profile.ModuleProfile {
	p := &profile.ModuleProfile{}
	for _, df := range m.decoded {
		if df.branchCounts == nil && df.calls == 0 {
			continue
		}
		p.Funcs = append(p.Funcs, df.snapshot())
	}
	sort.Slice(p.Funcs, func(i, j int) bool { return p.Funcs[i].Name < p.Funcs[j].Name })
	return p
}

// promoteFunc moves one hot function to tier 2: snapshot the profile, let
// the controller validate register allocation against it, then fuse the
// hot adjacent pairs. Runs once per function, outside the steady state.
func (m *Machine) promoteFunc(df *dfunc) {
	t := m.tier
	df.promoted = true
	t.stats.Promotions++
	t.stats.PromoteCallsSum += int64(df.calls - df.seeded)
	fp := df.snapshot()
	if t.promote != nil {
		res := t.promote(df.fn, &fp)
		if res.ReallocChecked {
			t.stats.ReallocChecked++
			if res.ReallocConfirmed {
				t.stats.ReallocConfirmed++
			} else {
				t.stats.ReallocDiverged++
			}
		}
	}
	t.stats.FusedPairs += int64(m.fuseFunc(df, &fp))
}

// fusedOp lists the fusible pairs: the first xop of each row may fuse
// with the second when the pair is hot and the partner is not a branch
// target. The patterns cover the latches and bodies the JIT emits for the
// Table 1 kernels' hot loops: the immediate-plus-add increment, the
// induction-variable update, the loop back edge, a vector load feeding a
// vector ALU op, and a vector ALU op feeding the store.
func fusedOp(first, second xop) xop {
	switch {
	case first == xMovImm && second == xAdd:
		return xFusedMovImmAdd
	case first == xAdd && second == xMovInt:
		return xFusedAddMov
	case first == xMovInt && second == xJump:
		return xFusedMovJump
	case first == xVLoad && second == xVBin:
		return xFusedVLoadVBin
	case first == xVBin && second == xVStore:
		return xFusedVBinVStore
	}
	return xNop
}

// fuseFunc rewrites hot adjacent pairs into superinstructions and returns
// the number of pairs fused. The code array keeps its length and every
// original record: slot i gets the fused opcode (executing both
// operations and continuing at pc+2), slot i+1 keeps the original partner
// record so branches into it — and the exact tier-1 instruction-budget
// error path — still see unfused code. A pair only fuses when its block
// ran at least once per invocation on average and the partner is not a
// branch target.
func (m *Machine) fuseFunc(df *dfunc, fp *profile.FuncProfile) int {
	freqs, err := profile.BlockFreqs(df.fn.Code, fp)
	if err != nil {
		// Warm-degraded counters: no edge information, nothing to fuse.
		return 0
	}
	isTarget := make([]bool, len(df.code)+1)
	for i := range df.code {
		switch df.code[i].x {
		case xJump, xBranchCmp:
			if t := int(df.code[i].target); t >= 0 && t < len(isTarget) {
				isTarget[t] = true
			}
		}
	}
	hot := int64(df.calls)
	if hot < 1 {
		hot = 1
	}
	fused := 0
	for i := 0; i+1 < len(df.code); i++ {
		if freqs[i] < hot || isTarget[i+1] {
			continue
		}
		x := fusedOp(df.code[i].x, df.code[i+1].x)
		if x == xNop {
			continue
		}
		df.code[i].x = x
		fused++
		i++ // the partner record must stay original: never fuse it as a head
	}
	return fused
}
