package splitvm

// Tiered execution on the public surface: profiles and tiering are deploy
// options (per machine, never part of the code-cache key — the shared
// image is identical with tiering on or off, which is the architectural
// invariance the differential tests pin), and the observed profile is
// exportable as a standalone versioned annotation value that a later
// deployment — on this engine or another — imports to skip the warm-up.

import (
	"fmt"

	"repro/internal/anno"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
)

// Profile is a module execution profile: per-function invocation counts
// and branch taken/not-taken counters, the runtime-produced annotation of
// the split-compilation loop.
type Profile = profile.ModuleProfile

// TierStats aggregates a deployment's tiering activity: promotions,
// promotion latency, fused superinstruction pairs, profile-guided register
// allocation validations and warm-profile imports. All host-side
// bookkeeping — none of it feeds simulated statistics.
type TierStats = sim.TierStats

// WithTiering enables runtime profiling and tier-2 promotion on a
// deployment (default off). Tiering is per machine and deliberately not
// part of the code-cache key: tier 2 never changes simulated cycles,
// statistics or results, so tiered and plain deployments share images.
func WithTiering(on bool) DeployOption {
	return deployOption(func(c *config) { c.tiering = on })
}

// WithPromoteCalls sets the tier-2 promotion threshold in calls (implies
// WithTiering(true); n < 0 profiles without ever promoting; 0 uses the
// default threshold).
func WithPromoteCalls(n int64) DeployOption {
	return deployOption(func(c *config) { c.tiering = true; c.promoteCalls = n })
}

// WithProfile carries a previously exported profile into either stage — the
// one genuinely two-sided option, which is why it is a SharedOption. At
// deploy time it warms the machine (implies WithTiering(true)): functions
// the exporter observed hot are promoted on their first call here instead
// of after the full threshold. At compile time it embeds the profile in the
// produced module as a versioned annotation, so the byte stream itself
// carries the warm-up — any later deployment of that module (on any engine)
// imports it through the ordinary annotation negotiation.
func WithProfile(p *Profile) SharedOption {
	return sharedOption(func(c *config) {
		c.tiering = true
		c.profile = p
	})
}

// applyTiering wires the resolved tiering configuration onto a freshly
// instantiated deployment.
func (c *config) applyTiering(d *core.Deployment) {
	if !c.tiering {
		return
	}
	d.EnableTiering(core.TierOptions{
		Policy:  profile.Policy{PromoteCalls: c.promoteCalls},
		Profile: c.profile,
	})
}

// Profile returns the execution profile the module carries as a
// module-level annotation (a deployment re-exported it into the stream), or
// nil when the module has none or this reader cannot negotiate it —
// unreadable profiles degrade to nil exactly like every other annotation.
func (m *Module) Profile() *Profile { return anno.ProfileOf(m.mod) }

// TieringEnabled reports whether this deployment profiles and promotes.
func (dp *Deployment) TieringEnabled() bool { return dp.d.Machine.TieringEnabled() }

// TierStats returns a snapshot of the deployment's tiering activity.
func (dp *Deployment) TierStats() TierStats { return dp.d.TierStats() }

// ExportProfile returns the execution profile the deployment's machine has
// observed so far (one entry per executed function). Returns an empty
// profile when nothing ran; the machine need not be tiered — profiling
// counters exist whenever tiering was enabled.
func (dp *Deployment) ExportProfile() *Profile { return dp.d.ExportProfile() }

// EncodeProfile serializes a profile as a standalone versioned annotation
// value (the same envelope format the annotation container uses), suitable
// for storage or transport and for WithProfile after DecodeProfile.
func EncodeProfile(p *Profile) ([]byte, error) {
	return anno.EncodeProfileV(p, anno.CurrentVersion)
}

// DecodeProfile parses a profile annotation value produced by
// EncodeProfile (possibly by a different toolchain version). A value this
// reader cannot negotiate — a future schema, a malformed payload — is an
// error here; callers wanting the annotation contract's
// negotiate-or-fallback semantics treat it as "deploy without a profile",
// never as a failed deployment.
func DecodeProfile(data []byte) (*Profile, error) {
	p, out := anno.ReadProfileValue(data, 0)
	if p == nil {
		return nil, fmt.Errorf("splitvm: profile not usable: %s", out.Reason)
	}
	return p, nil
}
