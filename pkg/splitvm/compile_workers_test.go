package splitvm

import (
	"testing"

	"repro/internal/target"
)

// TestCompileWorkersShareCacheEntries pins the cache-key contract of the
// parallel compile pipeline: the worker count changes wall-clock time, never
// the generated program, so deployments that differ only in
// WithCompileWorkers must share one cached image.
func TestCompileWorkersShareCacheEntries(t *testing.T) {
	eng := New(WithTarget(target.X86SSE))
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}

	seq, err := eng.Deploy(m, WithCompileWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := eng.Deploy(m, WithCompileWorkers(8))
	if err != nil {
		t.Fatal(err)
	}

	st := eng.CacheStats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("cache stats %+v: worker counts must share one image (1 miss, 1 hit, 1 entry)", st)
	}
	if !par.FromCache() {
		t.Error("the second deployment (different worker count) should be a cache hit")
	}
	if seq.DisassembleNative() != par.DisassembleNative() {
		t.Error("sequential and parallel deployments must execute identical native code")
	}

	// Both deployments compute the same result, and the engine's compile
	// stats carry the wall-clock cost of the single compilation.
	a, err := seq.Run("sumsq", IntArg(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run("sumsq", IntArg(100))
	if err != nil {
		t.Fatal(err)
	}
	if a.I != b.I {
		t.Errorf("results diverge: %d vs %d", a.I, b.I)
	}
	cs := eng.CompileStats()
	if cs.Compilations != 1 || cs.CompileNanosTotal <= 0 {
		t.Errorf("compile stats %+v: want exactly one timed compilation", cs)
	}
	if seq.CompileNanos() <= 0 || seq.CompileReport().CompileNanos != seq.CompileNanos() {
		t.Error("deployment must surface the image's compile time")
	}
	if par.CompileNanos() != seq.CompileNanos() {
		t.Error("a cache hit inherits the original compilation's cost figure")
	}
}

// TestDeployOnWideVecTarget deploys through the public API on the
// register-installed 256-bit target and cross-checks the result against the
// default x86 deployment.
func TestDeployOnWideVecTarget(t *testing.T) {
	eng := New()
	m, err := eng.Compile(sumsqSource)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := eng.Deploy(m, WithTarget(target.WideVec))
	if err != nil {
		t.Fatalf("deploying on the wide-vector target: %v", err)
	}
	x86, err := eng.Deploy(m, WithTarget(target.X86SSE))
	if err != nil {
		t.Fatal(err)
	}
	want, err := x86.Run("sumsq", IntArg(1000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := wide.Run("sumsq", IntArg(1000))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I {
		t.Errorf("wide-vector target computed %d, x86 computed %d", got.I, want.I)
	}
	if wide.Target().VectorBits() != 256 {
		t.Errorf("wide target VectorBits = %d, want 256", wide.Target().VectorBits())
	}
}
