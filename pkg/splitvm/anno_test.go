package splitvm

import (
	"strings"
	"testing"

	"repro/internal/anno"
	"repro/internal/anno/envelope"
	"repro/internal/cil"
	"repro/internal/target"
)

const annoTestSource = `
i32 accum(i32 n) {
    i32 acc = 0;
    for (i32 i = 0; i < n; i++) {
        acc = acc + i * i;
    }
    return acc;
}
`

// futureModule compiles the test source and rewrites its regalloc
// annotation into an envelope declaring schema version 99 — the byte stream
// a future offline compiler would ship.
func futureModule(t *testing.T, eng *Engine) *Module {
	t.Helper()
	m, err := eng.Compile(annoTestSource, WithModuleName("future"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := cil.Decode(m.Encoded())
	if err != nil {
		t.Fatal(err)
	}
	meth := mod.Method("accum")
	data, _ := meth.Annotation(anno.KeyRegAlloc)
	meth.SetAnnotation(anno.KeyRegAlloc, envelope.Encode(&envelope.Envelope{Sections: []envelope.Section{
		{Name: "regalloc", Version: 99, Payload: data},
	}}))
	loaded, err := eng.Load(cil.Encode(mod))
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func TestCompileEmitsEnvelopesByDefault(t *testing.T) {
	eng := New()
	m, err := eng.Compile(annoTestSource)
	if err != nil {
		t.Fatal(err)
	}
	infos := m.AnnotationInfo()
	if len(infos) == 0 {
		t.Fatal("no annotation info recorded")
	}
	for _, info := range infos {
		if !info.Enveloped || info.Version != AnnotationVersionCurrent || !info.Supported {
			t.Errorf("annotation %s/%s: %+v, want supported v%d envelope",
				info.Method, info.Key, info, AnnotationVersionCurrent)
		}
	}
}

func TestWithAnnotationVersionZeroEmitsLegacy(t *testing.T) {
	eng := New()
	m, err := eng.Compile(annoTestSource, WithAnnotationVersion(AnnotationV0))
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range m.AnnotationInfo() {
		if info.Enveloped || info.Version != 0 || !info.Supported {
			t.Errorf("annotation %s/%s: %+v, want supported bare v0", info.Method, info.Key, info)
		}
	}
}

func TestCompileRejectsUnknownWriterVersion(t *testing.T) {
	eng := New()
	if _, err := eng.Compile(annoTestSource, WithAnnotationVersion(99)); err == nil {
		t.Fatal("Compile accepted writer version 99")
	}
}

func TestFutureAnnotationFallsBackAndIsCounted(t *testing.T) {
	eng := New()
	m := futureModule(t, eng)

	// Load-time info shows the unsupported stream without failing the load.
	sawFuture := false
	for _, info := range m.AnnotationInfo() {
		if info.Key == anno.KeyRegAlloc {
			sawFuture = true
			if info.Supported || info.Version != 99 {
				t.Errorf("future regalloc info: %+v", info)
			}
		}
	}
	if !sawFuture {
		t.Fatal("regalloc annotation missing from AnnotationInfo")
	}

	// Deploy must succeed, degrade to online-only regalloc, and surface it.
	dep, err := eng.Deploy(m, WithTarget(target.X86SSE))
	if err != nil {
		t.Fatalf("deploying a module from the future must not fail: %v", err)
	}
	rep := dep.CompileReport()
	if rep.AnnotationFallbacks < 1 {
		t.Errorf("CompileReport.AnnotationFallbacks = %d, want >= 1", rep.AnnotationFallbacks)
	}
	found := false
	for _, o := range rep.AnnotationOutcomes {
		if o.Key == anno.KeyRegAlloc && o.Fallback {
			found = true
			if o.Version != 99 || !strings.Contains(o.Reason, "newer than supported") {
				t.Errorf("fallback outcome: %+v", o)
			}
		}
	}
	if !found {
		t.Errorf("no regalloc fallback in outcomes: %+v", rep.AnnotationOutcomes)
	}

	// The machine still runs correctly: accum(12) = 506.
	v, err := dep.Run("accum", IntArg(12))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 506 {
		t.Errorf("accum(12) = %d, want 506", v.I)
	}

	// Engine counters: one compilation, one fallback compilation; a second
	// deployment is a cache hit and is not re-counted.
	if st := eng.CompileStats(); st.Compilations != 1 || st.FallbackCompilations != 1 {
		t.Errorf("CompileStats = %+v, want 1/1", st)
	}
	dep2, err := eng.Deploy(m, WithTarget(target.X86SSE))
	if err != nil {
		t.Fatal(err)
	}
	if !dep2.FromCache() {
		t.Error("second deployment missed the cache")
	}
	if rep2 := dep2.CompileReport(); rep2.AnnotationFallbacks < 1 || !rep2.FromCache {
		t.Errorf("cached CompileReport = %+v", rep2)
	}
	if st := eng.CompileStats(); st.Compilations != 1 || st.FallbackCompilations != 1 {
		t.Errorf("CompileStats after cache hit = %+v, want unchanged 1/1", st)
	}
}

func TestMinAnnotationVersionForcesFallbackAndSplitsCacheKey(t *testing.T) {
	eng := New()
	m, err := eng.Compile(annoTestSource, WithAnnotationVersion(AnnotationV0))
	if err != nil {
		t.Fatal(err)
	}

	dep, err := eng.Deploy(m, WithTarget(target.X86SSE))
	if err != nil {
		t.Fatal(err)
	}
	if rep := dep.CompileReport(); rep.AnnotationFallbacks != 0 {
		t.Errorf("v0 stream fell back without a minimum: %+v", rep.AnnotationOutcomes)
	}

	// Raising the floor rejects the stale stream — and must not share the
	// permissive deployment's cached image.
	strict, err := eng.Deploy(m, WithTarget(target.X86SSE), WithMinAnnotationVersion(AnnotationV1))
	if err != nil {
		t.Fatal(err)
	}
	if strict.FromCache() {
		t.Error("min-version deployment reused the permissive cache entry")
	}
	rep := strict.CompileReport()
	if rep.AnnotationFallbacks == 0 {
		t.Errorf("v0 stream survived min version 1: %+v", rep.AnnotationOutcomes)
	}

	// Both produce the same results regardless.
	a, err := dep.Run("accum", IntArg(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := strict.Run("accum", IntArg(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.I != b.I {
		t.Errorf("results diverge: %d vs %d", a.I, b.I)
	}
}

// TestDeployHeteroHonorsMinVersionAndCounters pins the hetero deploy path
// to the same negotiation contract as Deploy: the min-version floor applies
// to every per-core compilation and the engine counters see them, including
// with the cache disabled.
func TestDeployHeteroHonorsMinVersionAndCounters(t *testing.T) {
	eng := New()
	m, err := eng.Compile(annoTestSource, WithAnnotationVersion(AnnotationV0))
	if err != nil {
		t.Fatal(err)
	}
	sys := EmbeddedSoC() // two distinct core types -> two compilations
	rt, err := eng.DeployHetero(sys, m, HostOnly, WithCache(false), WithMinAnnotationVersion(AnnotationV1))
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CompileStats()
	if st.Compilations != 2 {
		t.Errorf("CompileStats.Compilations = %d, want 2 (one per core type, cache off)", st.Compilations)
	}
	if st.FallbackCompilations != 2 {
		t.Errorf("CompileStats.FallbackCompilations = %d, want 2 (v0 module below min version 1)", st.FallbackCompilations)
	}
	for _, core := range []string{sys.Host.Name} {
		if d := rt.Deployment(core); d == nil || d.AnnotationFallbacks == 0 {
			t.Errorf("core %s: min-version floor not applied (deployment %+v)", core, d)
		}
	}
}

// TestV0AndV1DeployIdentically pins the interop rule: the same source
// compiled at both writer versions deploys to machines with identical
// behavior and identical spill decisions (the envelope is a re-encoding,
// not a different allocation).
func TestV0AndV1DeployIdentically(t *testing.T) {
	eng := New()
	for _, arch := range []target.Arch{target.X86SSE, target.MCU} {
		var spills [2]int
		var results [2]int64
		for i, version := range []uint32{AnnotationV0, AnnotationV1} {
			m, err := eng.Compile(annoTestSource, WithAnnotationVersion(version))
			if err != nil {
				t.Fatal(err)
			}
			dep, err := eng.Deploy(m, WithTarget(arch))
			if err != nil {
				t.Fatal(err)
			}
			slots, loads, stores := dep.SpillSummary()
			spills[i] = slots*10000 + loads*100 + stores
			v, err := dep.Run("accum", IntArg(31))
			if err != nil {
				t.Fatal(err)
			}
			results[i] = v.I
		}
		if spills[0] != spills[1] {
			t.Errorf("%s: spill decisions diverge between v0 and v1: %d vs %d", arch, spills[0], spills[1])
		}
		if results[0] != results[1] {
			t.Errorf("%s: results diverge between v0 and v1: %d vs %d", arch, results[0], results[1])
		}
	}
}
